(* One function per reproduced table/figure (see DESIGN.md, Sec. 5 for the
   experiment index). Sizes are scaled down from the paper's 125K-4M; pass
   --full for larger runs. Every experiment prints the series the paper's
   figure plots. *)

(* Console output is this program's purpose, and executables have no
   interface files: R2/R5 are opted out explicitly rather than scoped
   away, so the rest of the rules (R1 above all) still apply. *)
[@@@lint.allow io mli]

module E = Containment.Engine
module S = Containment.Semantics
module IF = Invfile.Inverted_file
module H = Harness

type scale = { sizes : int list; deep_sizes : int list; real_sizes : int list }

let default_scale =
  { sizes = [ 1_000; 2_000; 4_000; 8_000 ];
    deep_sizes = [ 1_000; 2_000; 4_000 ];
    real_sizes = [ 1_000; 2_000; 4_000; 8_000 ] }

let full_scale =
  { sizes = [ 8_000; 16_000; 32_000; 64_000; 128_000 ];
    deep_sizes = [ 8_000; 16_000; 32_000 ];
    real_sizes = [ 8_000; 16_000; 32_000; 64_000 ] }

(* --- data sources --- *)

(* Deep records are capped at depth 10 here: Table 3's deep parameters
   describe a supercritical branching process, and the default cap of 16
   yields thousands of nodes per record — far heavier than the paper's
   setting allows at any scale (see DESIGN.md, inventory entry 14). *)
let synthetic shape dist ~seed count =
  let max_depth =
    match shape with Datagen.Synthetic.Wide -> 16 | Datagen.Synthetic.Deep -> 10
  in
  Datagen.Synthetic.seq
    (Datagen.Synthetic.make ~seed
       ~params:(Datagen.Synthetic.params_of_shape ~max_depth shape)
       dist)
    count

let twitter ~seed count =
  Datagen.Twitter_sim.seq (Datagen.Twitter_sim.make ~seed ()) count

let dblp ~seed count = Datagen.Dblp_sim.seq (Datagen.Dblp_sim.make ~seed ()) count

(* --- the Figure-6 harness: 4 series (algorithm × cache) over sizes --- *)

let cache_budget = 250 (* the paper's setting for all experiments *)

let fig6_series ~name ~title ~source sizes =
  H.print_header title
    (Printf.sprintf
       "100 queries (50 pos / 50 neg) per size; cache = %d hottest lists; \
        elapsed ms for the whole workload (paper Fig. 6 reports the same \
        quantity)."
       cache_budget);
  let rows =
    List.map
      (fun size ->
        H.with_collection ~name:(Printf.sprintf "%s_%d" name size)
          (source size)
          (fun inv ->
            let queries = H.paper_queries inv in
            let run algorithm cached =
              IF.detach_cache inv;
              if cached then Containment.Collection.with_static_cache inv ~budget:cache_budget;
              H.measure_workload ~config:{ E.default with E.algorithm } inv queries
            in
            let td = run E.Top_down false in
            let td_c = run E.Top_down true in
            let bu = run E.Bottom_up false in
            let bu_c = run E.Bottom_up true in
            [ H.i size; H.ms td; H.ms td_c; H.ms bu; H.ms bu_c ]))
      sizes
  in
  H.print_table
    ~columns:[ "records"; "td"; "td+cache"; "bu"; "bu+cache" ]
    rows

let fig6a scale =
  fig6_series ~name:"uw" ~title:"Figure 6a: uniform wide synthetic"
    ~source:(fun n -> synthetic Datagen.Synthetic.Wide Datagen.Synthetic.Uniform ~seed:1 n)
    scale.sizes

let fig6b scale =
  fig6_series ~name:"ud" ~title:"Figure 6b: uniform deep synthetic"
    ~source:(fun n -> synthetic Datagen.Synthetic.Deep Datagen.Synthetic.Uniform ~seed:2 n)
    scale.deep_sizes

let fig6c scale =
  fig6_series ~name:"sw" ~title:"Figure 6c: skewed (θ=0.7) wide synthetic"
    ~source:(fun n ->
      synthetic Datagen.Synthetic.Wide (Datagen.Synthetic.Zipfian 0.7) ~seed:3 n)
    scale.sizes

let fig6d scale =
  fig6_series ~name:"sd" ~title:"Figure 6d: skewed (θ=0.7) deep synthetic"
    ~source:(fun n ->
      synthetic Datagen.Synthetic.Deep (Datagen.Synthetic.Zipfian 0.7) ~seed:4 n)
    scale.deep_sizes

let fig6e scale =
  fig6_series ~name:"tw" ~title:"Figure 6e: Twitter (synthetic stand-in, skewed)"
    ~source:(fun n -> twitter ~seed:5 n)
    scale.real_sizes

let fig6f scale =
  fig6_series ~name:"db" ~title:"Figure 6f: DBLP (synthetic stand-in, skewed)"
    ~source:(fun n -> dblp ~seed:6 n)
    scale.real_sizes

(* --- skew sweep: the full paper also varies θ ∈ {0.5, 0.7, 0.9} --- *)

let skew_sweep scale =
  H.print_header "Skew sweep: θ ∈ {0.5, 0.7, 0.9} on wide synthetic"
    "Fixed size, bottom-up; the paper observes that skew raises costs.";
  let size = List.nth scale.sizes (List.length scale.sizes - 1) in
  let rows =
    List.map
      (fun theta ->
        H.with_collection ~name:(Printf.sprintf "skew_%.1f" theta)
          (synthetic Datagen.Synthetic.Wide (Datagen.Synthetic.Zipfian theta) ~seed:7 size)
          (fun inv ->
            let queries = H.paper_queries inv in
            let plain = H.measure_workload inv queries in
            Containment.Collection.with_static_cache inv ~budget:cache_budget;
            let cached = H.measure_workload inv queries in
            [ Printf.sprintf "%.1f" theta; H.i size; H.ms plain; H.ms cached ]))
      [ 0.5; 0.7; 0.9 ]
  in
  let uniform_row =
    H.with_collection ~name:"skew_uniform"
      (synthetic Datagen.Synthetic.Wide Datagen.Synthetic.Uniform ~seed:7 size)
      (fun inv ->
        let queries = H.paper_queries inv in
        let plain = H.measure_workload inv queries in
        Containment.Collection.with_static_cache inv ~budget:cache_budget;
        let cached = H.measure_workload inv queries in
        [ "unif"; H.i size; H.ms plain; H.ms cached ])
  in
  H.print_table ~columns:[ "θ"; "records"; "bu"; "bu+cache" ] (uniform_row :: rows)

(* --- E4: naive baseline vs the inverted-file algorithms --- *)

let naive_baseline scale =
  H.print_header "E4: naive full-scan baseline vs indexed algorithms"
    "Sec. 3, comment (1): pairwise subtree-homomorphism over every record.";
  let rows =
    List.map
      (fun size ->
        H.with_collection ~name:(Printf.sprintf "naive_%d" size)
          (synthetic Datagen.Synthetic.Wide Datagen.Synthetic.Uniform ~seed:8 size)
          (fun inv ->
            (* the naive scan is expensive: 10 queries, 3 repeats *)
            let queries =
              H.paper_queries ~count:10 inv
            in
            let run algorithm =
              H.measure_workload ~repeats:3 ~config:{ E.default with E.algorithm } inv
                queries
            in
            let naive = run E.Naive_scan in
            let td = run E.Top_down in
            let bu = run E.Bottom_up in
            [ H.i size; H.ms naive; H.ms td; H.ms bu;
              Printf.sprintf "%.0f×" (naive /. Float.max 0.001 (Float.min td bu)) ]))
      (List.filteri (fun i _ -> i < 3) scale.sizes)
  in
  H.print_table ~columns:[ "records"; "naive"; "td"; "bu"; "speedup" ] rows

(* --- E5: Bloom prefilters --- *)

let bloom_prefilter scale =
  H.print_header "E5: hierarchical Bloom prefilters (Sec. 3.3)"
    "Breadth vs Depth filters; positive and negative query halves timed \
     separately (filters mainly reject negatives early).";
  let size = List.nth scale.sizes (List.length scale.sizes - 1) in
  H.with_collection ~name:"bloom"
    (synthetic Datagen.Synthetic.Wide (Datagen.Synthetic.Zipfian 0.7) ~seed:9 size)
    (fun inv ->
      let all = Datagen.Workload.benchmark_queries ~seed:271 ~count:100 inv in
      let pos =
        Datagen.Workload.values (List.filter (fun q -> q.Datagen.Workload.positive) all)
      in
      let neg =
        Datagen.Workload.values
          (List.filter (fun q -> not q.Datagen.Workload.positive) all)
      in
      let breadth = Containment.Filter_index.build ~kind:Containment.Filter_index.Breadth inv in
      let depth = Containment.Filter_index.build ~kind:Containment.Filter_index.Depth inv in
      let run filter_index queries =
        H.measure_workload ~config:{ E.default with E.filter_index } inv queries
      in
      let survivors fi queries =
        (* average prefilter selectivity *)
        let total, n =
          List.fold_left
            (fun (t, n) q ->
              match
                (E.query ~config:{ E.default with E.filter_index = Some fi } inv q)
                  .E.prefilter_survivors
              with
              | Some s -> (t + s, n + 1)
              | None -> (t, n))
            (0, 0) queries
        in
        if n = 0 then 0. else Float.of_int total /. Float.of_int n
      in
      H.print_table
        ~columns:[ "filter"; "mem KiB"; "pos"; "neg"; "avg survivors (neg)" ]
        [
          [ "none"; "0"; H.ms (run None pos); H.ms (run None neg); H.i size ];
          [
            "breadth";
            H.i (Containment.Filter_index.memory_bytes breadth / 1024);
            H.ms (run (Some breadth) pos);
            H.ms (run (Some breadth) neg);
            Printf.sprintf "%.1f" (survivors breadth neg);
          ];
          [
            "depth";
            H.i (Containment.Filter_index.memory_bytes depth / 1024);
            H.ms (run (Some depth) pos);
            H.ms (run (Some depth) neg);
            Printf.sprintf "%.1f" (survivors depth neg);
          ];
        ])

(* --- E6: join extensions --- *)

let join_extensions scale =
  H.print_header "E6: set-based join extensions (Sec. 4.1)"
    "100-query workloads per join type, bottom-up, cache on.";
  let size = List.nth scale.sizes (List.length scale.sizes - 1) in
  H.with_collection ~name:"joins"
    (synthetic Datagen.Synthetic.Wide (Datagen.Synthetic.Zipfian 0.7) ~seed:10 size)
    (fun inv ->
      Containment.Collection.with_static_cache inv ~budget:cache_budget;
      let queries = H.paper_queries inv in
      let results join =
        let s = E.run_workload ~config:{ E.default with E.join } inv queries in
        (H.measure_workload ~config:{ E.default with E.join } inv queries, s.E.results_total)
      in
      let rows =
        List.map
          (fun (label, join) ->
            let t, total = results join in
            [ label; H.ms t; H.i total ])
          [
            ("containment", S.Containment);
            ("equality", S.Equality);
            ("superset", S.Superset);
            ("overlap ε=1", S.Overlap 1);
            ("overlap ε=2", S.Overlap 2);
          ]
      in
      H.print_table ~columns:[ "join"; "elapsed"; "results" ] rows)

(* --- E7: embedding semantics --- *)

let embedding_semantics scale =
  H.print_header "E7: embedding semantics (Sec. 4.2)"
    "hom vs iso vs homeo on the same workload, both algorithms.";
  let size = List.nth scale.sizes (List.length scale.sizes - 1) in
  H.with_collection ~name:"semantics"
    (synthetic Datagen.Synthetic.Deep Datagen.Synthetic.Uniform ~seed:11 size)
    (fun inv ->
      Containment.Collection.with_static_cache inv ~budget:cache_budget;
      let queries = H.paper_queries inv in
      let rows =
        List.map
          (fun (label, embedding) ->
            let run algorithm =
              H.measure_workload
                ~config:{ E.default with E.embedding; E.algorithm }
                inv queries
            in
            [ label; H.ms (run E.Top_down); H.ms (run E.Bottom_up) ])
          [ ("hom", S.Hom); ("iso", S.Iso); ("homeo", S.Homeo);
            ("homeo-full", S.Homeo_full) ]
      in
      H.print_table ~columns:[ "semantics"; "td"; "bu" ] rows)

(* --- E8: cache budget ablation --- *)

let cache_ablation scale =
  H.print_header "E8: cache budget ablation (Sec. 3.3 / 6)"
    "Static most-frequent-list cache of varying budget; skewed data, \
     bottom-up. The paper fixes budget = 250.";
  let size = List.nth scale.sizes (List.length scale.sizes - 1) in
  H.with_collection ~name:"cachebudget"
    (synthetic Datagen.Synthetic.Wide (Datagen.Synthetic.Zipfian 0.9) ~seed:12 size)
    (fun inv ->
      let queries = H.paper_queries inv in
      let rows =
        List.map
          (fun budget ->
            IF.detach_cache inv;
            if budget > 0 then Containment.Collection.with_static_cache inv ~budget;
            let t = H.measure_workload inv queries in
            let stats = E.run_workload inv queries in
            [
              H.i budget;
              H.ms t;
              Printf.sprintf "%.0f%%"
                (100.
                *. Float.of_int stats.E.cache_hits
                /. Float.of_int (max 1 (stats.E.cache_hits + stats.E.cache_misses)));
            ])
          [ 0; 10; 50; 100; 250; 500; 1000 ]
      in
      H.print_table ~columns:[ "budget (lists)"; "elapsed"; "hit rate" ] rows)

(* --- E9: cache policy comparison (static / LRU / LFU) --- *)

let cache_policies scale =
  H.print_header "E9: cache policies (Sec. 6 future work: workload-adaptive caching)"
    "Same budget (250), different policies, skewed data.";
  let size = List.nth scale.sizes (List.length scale.sizes - 1) in
  H.with_collection ~name:"cachepol"
    (synthetic Datagen.Synthetic.Wide (Datagen.Synthetic.Zipfian 0.7) ~seed:13 size)
    (fun inv ->
      let queries = H.paper_queries inv in
      let rows =
        List.map
          (fun (label, attach) ->
            IF.detach_cache inv;
            attach ();
            let t = H.measure_workload inv queries in
            [ label; H.ms t ])
          [
            ("none", fun () -> ());
            ( "static-250",
              fun () -> Containment.Collection.with_static_cache inv ~budget:250 );
            ( "lru-250",
              fun () ->
                IF.attach_cache inv (Invfile.Cache.create Invfile.Cache.Lru ~capacity:250) );
            ( "lfu-250",
              fun () ->
                IF.attach_cache inv (Invfile.Cache.create Invfile.Cache.Lfu ~capacity:250) );
          ]
      in
      H.print_table ~columns:[ "policy"; "elapsed" ] rows)

(* --- E10: storage backends --- *)

let backends scale =
  H.print_header "E10: storage backends"
    "Same collection and workload on the in-memory store, the on-disk hash \
     store (the paper's setting), and the on-disk B+tree.";
  let size = List.nth scale.sizes 1 in
  let values () =
    synthetic Datagen.Synthetic.Wide Datagen.Synthetic.Uniform ~seed:14 size
  in
  let rows =
    List.map
      (fun (label, backend) ->
        H.with_collection ~backend ~name:("backend_" ^ label) (values ())
          (fun inv ->
            let queries = H.paper_queries inv in
            [ label; H.ms (H.measure_workload inv queries) ]))
      [ ("mem", H.Mem); ("hash", H.Hash) ]
    @ [
        (let path = H.scratch_path "backend_btree.tcb" in
         H.remove_if_exists path;
         let store = Storage.Btree_store.create path in
         let builder = Invfile.Builder.create store in
         Seq.iter (fun v -> ignore (Invfile.Builder.add_value builder v)) (values ());
         let inv = Invfile.Builder.finish builder in
         Fun.protect
           ~finally:(fun () ->
             IF.close inv;
             H.remove_if_exists path)
           (fun () ->
             let queries = H.paper_queries inv in
             [ "btree"; H.ms (H.measure_workload inv queries) ]));
      ]
  in
  H.print_table ~columns:[ "backend"; "elapsed" ] rows

(* --- E11: top-down variants (published vs strict) --- *)

let td_variants scale =
  H.print_header "E11: top-down variants"
    "The algorithm exactly as published (head-granular intersection) vs the \
     strict per-path variant; result counts may differ on branching queries \
     (see DESIGN.md).";
  let size = List.nth scale.sizes (List.length scale.sizes - 1) in
  H.with_collection ~name:"tdvar"
    (synthetic Datagen.Synthetic.Deep Datagen.Synthetic.Uniform ~seed:15 size)
    (fun inv ->
      Containment.Collection.with_static_cache inv ~budget:cache_budget;
      let queries = H.paper_queries inv in
      let row label algorithm =
        let s = E.run_workload ~config:{ E.default with E.algorithm } inv queries in
        [
          label;
          H.ms (H.measure_workload ~config:{ E.default with E.algorithm } inv queries);
          H.i s.E.results_total;
        ]
      in
      H.print_table ~columns:[ "variant"; "elapsed"; "results" ]
        [ row "published" E.Top_down_paper; row "strict" E.Top_down;
          row "bottom-up" E.Bottom_up ])

(* --- E12: low-memory modes (the paper's 'other assumptions') --- *)

let low_memory scale =
  H.print_header "E12: low-memory modes (Sec. 5.1, assumptions (1) and (2))"
    "Streamed (blocked) candidate intersection and the external-memory \
     bottom-up stack vs the in-memory defaults.";
  let size = List.nth scale.sizes (List.length scale.sizes - 1) in
  H.with_collection ~name:"lowmem"
    (synthetic Datagen.Synthetic.Wide (Datagen.Synthetic.Zipfian 0.7) ~seed:16 size)
    (fun inv ->
      let queries = H.paper_queries inv in
      let spill_path = H.scratch_path "lowmem.stk" in
      let rows =
        [
          [ "materialized (default)"; H.ms (H.measure_workload inv queries) ];
          [
            "streamed lists";
            H.ms (H.measure_workload ~config:{ E.default with E.streamed = true } inv queries);
          ];
          [
            "external stack";
            H.ms
              (H.measure_workload
                 ~config:{ E.default with E.spill_to = Some spill_path }
                 inv queries);
          ];
        ]
      in
      H.remove_if_exists spill_path;
      H.print_table ~columns:[ "mode"; "elapsed" ] rows)

(* --- E13: top-down child ordering --- *)

let td_ordering scale =
  H.print_header "E13: top-down child-processing order (Sec. 6, item (1))"
    "Query order vs most-selective-first on skewed data.";
  let size = List.nth scale.sizes (List.length scale.sizes - 1) in
  H.with_collection ~name:"tdorder"
    (synthetic Datagen.Synthetic.Wide (Datagen.Synthetic.Zipfian 0.9) ~seed:17 size)
    (fun inv ->
      Containment.Collection.with_static_cache inv ~budget:cache_budget;
      let queries = H.paper_queries inv in
      let run td_order =
        H.measure_workload
          ~config:{ E.default with E.algorithm = E.Top_down; E.td_order }
          inv queries
      in
      H.print_table ~columns:[ "order"; "elapsed" ]
        [
          [ "query order"; H.ms (run Containment.Top_down.Query_order) ];
          [ "selectivity"; H.ms (run Containment.Top_down.Selectivity) ];
        ])

(* --- E14: postings codec ablation --- *)

let codec_ablation scale =
  H.print_header "E14: postings codec ablation"
    "Varint/delta (default) vs columnar frame-of-reference bitpacking: \
     index size and query time on the same collection.";
  let size = List.nth scale.sizes (List.length scale.sizes - 1) in
  let values =
    List.of_seq (synthetic Datagen.Synthetic.Wide (Datagen.Synthetic.Zipfian 0.7) ~seed:18 size)
  in
  let rows =
    List.map
      (fun (label, codec) ->
        let inv = Containment.Collection.of_values ~codec values in
        let postings_bytes = ref 0 in
        (IF.store inv).Storage.Kv.iter (fun key payload ->
            if String.length key > 0 && key.[0] = 'a' then
              postings_bytes := !postings_bytes + String.length payload);
        let queries = H.paper_queries inv in
        let t = H.measure_workload inv queries in
        [ label; H.i (!postings_bytes / 1024); H.ms t ])
      [
        ("varint", Invfile.Plist.Varint);
        ("bitpacked", Invfile.Plist.Bitpacked);
        ("blocked", Invfile.Plist.Blocked);
      ]
  in
  H.print_table ~columns:[ "codec"; "postings KiB"; "elapsed" ] rows

(* --- E16: signature-file baseline --- *)

let signature_baseline scale =
  H.print_header "E16: signature-file baseline vs inverted file"
    "Per-record hierarchical signatures scanned and oracle-verified, vs the \
     inverted-file algorithms; positive and negative halves separately.";
  let size = List.nth scale.sizes (List.length scale.sizes - 1) in
  H.with_collection ~name:"sig"
    (synthetic Datagen.Synthetic.Wide (Datagen.Synthetic.Zipfian 0.7) ~seed:20 size)
    (fun inv ->
      let fi = Containment.Filter_index.build inv in
      let all = Datagen.Workload.benchmark_queries ~seed:271 ~count:100 inv in
      let pos = Datagen.Workload.values (List.filter (fun q -> q.Datagen.Workload.positive) all) in
      let neg =
        Datagen.Workload.values (List.filter (fun q -> not q.Datagen.Workload.positive) all)
      in
      let run config queries = H.measure_workload ~config inv queries in
      let sig_config =
        { E.default with E.algorithm = E.Signature_scan; E.filter_index = Some fi }
      in
      Containment.Collection.with_static_cache inv ~budget:cache_budget;
      H.print_table ~columns:[ "algorithm"; "pos"; "neg" ]
        [
          [ "bottom-up (cache)"; H.ms (run E.default pos); H.ms (run E.default neg) ];
          [ "signature scan"; H.ms (run sig_config pos); H.ms (run sig_config neg) ];
        ])

(* --- E15: multicore scale-up --- *)

let multicore scale =
  H.print_header "E15: multicore scale-up (the paper runs single-threaded)"
    "Same workload split across OCaml 5 domains, one store handle and cache \
     per domain; on-disk hash store.";
  let size = List.nth scale.sizes (List.length scale.sizes - 1) in
  let path = H.scratch_path "multicore.tch" in
  H.remove_if_exists path;
  let store = Storage.Hash_store.create ~buckets:(1 lsl 16) path in
  let builder = Invfile.Builder.create store in
  Seq.iter
    (fun v -> ignore (Invfile.Builder.add_value builder v))
    (synthetic Datagen.Synthetic.Wide (Datagen.Synthetic.Zipfian 0.7) ~seed:19 size);
  let inv0 = Invfile.Builder.finish builder in
  let queries =
    (* a heavier batch so the spawn overhead amortizes *)
    List.concat (List.init 10 (fun _ -> H.paper_queries inv0))
  in
  IF.close inv0;
  let open_handle () = IF.open_store (Storage.Hash_store.open_existing path) in
  let base = ref 0. in
  let available = Containment.Parallel.default_domains () in
  Printf.printf
    "(default worker count %d — NSCQ_DOMAINS or cores - 1; speedups need real \
     cores)\n"
    available;
  let counts =
    (* always include 2 domains to exercise the parallel path; larger counts
       only when the host has the cores *)
    List.filter (fun d -> d <= max 2 available) [ 1; 2; 4; 8 ]
  in
  let rows =
    List.map
      (fun domains ->
        let r =
          Containment.Parallel.run_workload ~domains ~open_handle ~cache_budget:250
            queries
        in
        if domains = 1 then base := r.Containment.Parallel.elapsed_s;
        [
          H.i domains;
          H.ms (1000. *. r.Containment.Parallel.elapsed_s);
          Printf.sprintf "%.2f×" (!base /. r.Containment.Parallel.elapsed_s);
          H.i r.Containment.Parallel.results_total;
        ])
      counts
  in
  H.remove_if_exists path;
  H.print_table ~columns:[ "domains"; "elapsed"; "speedup"; "results" ] rows

(* --- E17: preflight atom-existence check --- *)

let preflight scale =
  H.print_header "E17: preflight atom-existence short-circuit"
    "Containment queries with a missing atom can be rejected by key probes \
     alone; positive and negative workload halves timed separately.";
  let size = List.nth scale.sizes (List.length scale.sizes - 1) in
  H.with_collection ~name:"preflight"
    (synthetic Datagen.Synthetic.Wide (Datagen.Synthetic.Zipfian 0.7) ~seed:21 size)
    (fun inv ->
      let all = Datagen.Workload.benchmark_queries ~seed:271 ~count:100 inv in
      let pos = Datagen.Workload.values (List.filter (fun q -> q.Datagen.Workload.positive) all) in
      let neg =
        Datagen.Workload.values (List.filter (fun q -> not q.Datagen.Workload.positive) all)
      in
      let run preflight queries =
        H.measure_workload ~config:{ E.default with E.preflight } inv queries
      in
      H.print_table ~columns:[ "preflight"; "pos"; "neg" ]
        [
          [ "off"; H.ms (run false pos); H.ms (run false neg) ];
          [ "on"; H.ms (run true pos); H.ms (run true neg) ];
        ])

(* --- E18: record storage format --- *)

let record_format scale =
  H.print_header "E18: record storage format (syntax vs dictionary-coded binary)"
    "Size of the stored record values and the cost of the scans that read \
     them (naive baseline over 10 queries).";
  let size = List.nth scale.sizes 1 in
  let values =
    List.of_seq (synthetic Datagen.Synthetic.Wide (Datagen.Synthetic.Zipfian 0.7) ~seed:22 size)
  in
  let rows =
    List.map
      (fun (label, record_format) ->
        let inv = Containment.Collection.of_values ~record_format values in
        let record_bytes = ref 0 in
        (IF.store inv).Storage.Kv.iter (fun key payload ->
            if String.length key > 1 && key.[0] = 'r' && key.[1] = ':' then
              record_bytes := !record_bytes + String.length payload);
        let queries = H.paper_queries ~count:10 inv in
        let t =
          H.measure_workload ~repeats:3
            ~config:{ E.default with E.algorithm = E.Naive_scan }
            inv queries
        in
        [ label; H.i (!record_bytes / 1024); H.ms t ])
      [ ("syntax", `Syntax); ("binary", `Binary) ]
  in
  H.print_table ~columns:[ "format"; "records KiB"; "naive scan" ] rows

(* --- E19: complexity validation, time vs |q| --- *)

(* Chain records of fixed depth; query k = the chain prefix of depth k, so
   |q| grows linearly while the collection is fixed — the paper's
   O(|q| · |S|) analysis predicts linear growth in both coordinates (the
   |S| coordinate is the size sweep of the Figure-6 experiments). *)
let complexity scale =
  H.print_header "E19: worst-case analysis check — query time vs |q|"
    "Fixed collection of depth-24 chains; queries are chain prefixes of \
     growing depth. O(|q|·|S|) predicts linear growth.";
  let size = List.nth scale.sizes 0 in
  let depth = 24 in
  let rng = Random.State.make [| 23 |] in
  let label () = "c" ^ string_of_int (Random.State.int rng 50) in
  let rec chain d =
    let leaves = [ Nested.Value.atom (label ()); Nested.Value.atom (label ()) ] in
    if d = 0 then Nested.Value.set leaves
    else Nested.Value.set (leaves @ [ chain (d - 1) ])
  in
  let records = List.init size (fun _ -> chain (depth - 1)) in
  H.with_collection ~name:"complexity" (List.to_seq records) (fun inv ->
      Containment.Collection.with_static_cache inv ~budget:cache_budget;
      let base = List.nth records 7 in
      (* prefix of the query chain at depth k *)
      let rec prefix k v =
        if k <= 1 then Nested.Value.set (List.filter Nested.Value.is_atom (Nested.Value.elements v))
        else
          Nested.Value.set
            (List.map
               (fun e -> if Nested.Value.is_set e then prefix (k - 1) e else e)
               (Nested.Value.elements v))
      in
      let rows =
        List.map
          (fun k ->
            let q = prefix k base in
            let queries = [ q ] in
            let td =
              H.measure_workload ~repeats:7
                ~config:{ E.default with E.algorithm = E.Top_down }
                inv queries
            in
            let bu =
              H.measure_workload ~repeats:7
                ~config:{ E.default with E.algorithm = E.Bottom_up }
                inv queries
            in
            [ H.i k; H.i (Nested.Value.internal_count q); H.ms td; H.ms bu ])
          [ 2; 4; 8; 12; 16; 20; 24 ]
      in
      H.print_table ~columns:[ "depth"; "|q| nodes"; "td (ms)"; "bu (ms)" ] rows)

(* --- E20: server under closed-loop load --- *)

let serve_load scale =
  H.print_header "E20: server throughput under closed-loop load"
    "An in-process nscq server (wire protocol, domain pool, batching) \
     driven by N closed-loop clients, each issuing the 100-query paper \
     workload back-to-back over its own connection; throughput and tail \
     latency per concurrency level. One JSON line per row for scripted \
     consumption.";
  let size = List.nth scale.sizes (List.length scale.sizes - 1) in
  let path = H.scratch_path "serve_load.tch" in
  H.remove_if_exists path;
  let store = Storage.Hash_store.create ~buckets:(1 lsl 16) path in
  let builder = Invfile.Builder.create store in
  Seq.iter
    (fun v -> ignore (Invfile.Builder.add_value builder v))
    (synthetic Datagen.Synthetic.Wide (Datagen.Synthetic.Zipfian 0.7) ~seed:29 size);
  let inv0 = Invfile.Builder.finish builder in
  let queries = List.map Nested.Value.to_string (H.paper_queries inv0) in
  IF.close inv0;
  let open_handle () = IF.open_store (Storage.Hash_store.open_existing path) in
  let domains = Containment.Parallel.default_domains () in
  Printf.printf "(server runs %d worker domain(s))\n" domains;
  let rows =
    List.map
      (fun clients ->
        let cfg =
          {
            Server.Service.default_config with
            Server.Service.port = 0;
            domains;
            queue_cap = 128;
            stats_interval_s = 0.;
          }
        in
        let srv = Server.Service.start cfg ~open_handle in
        let errors = Atomic.make 0 in
        let t0 = Unix.gettimeofday () in
        let threads =
          List.init clients (fun _ ->
              Thread.create
                (fun () ->
                  let c =
                    Server.Client.connect ~port:(Server.Service.port srv) ()
                  in
                  Fun.protect
                    ~finally:(fun () -> Server.Client.close c)
                    (fun () ->
                      List.iter
                        (fun q ->
                          match Server.Client.query c q with
                          | Ok _ -> ()
                          | Error _ -> Atomic.incr errors)
                        queries))
                ())
        in
        List.iter Thread.join threads;
        let elapsed = Unix.gettimeofday () -. t0 in
        let stats = Server.Service.stats srv in
        let p50 = Server.Server_stats.quantile stats 0.50
        and p95 = Server.Server_stats.quantile stats 0.95
        and mean_batch = Server.Server_stats.mean_batch stats in
        Server.Service.stop srv;
        let requests = clients * List.length queries in
        let throughput = float_of_int requests /. elapsed in
        Printf.printf
          "{\"experiment\":\"serve-load\",\"clients\":%d,\"domains\":%d,\
           \"requests\":%d,\"errors\":%d,\"elapsed_s\":%.3f,\
           \"throughput_rps\":%.1f,\"p50_ms\":%.3f,\"p95_ms\":%.3f,\
           \"mean_batch\":%.2f}\n"
          clients domains requests (Atomic.get errors) elapsed throughput p50
          p95 mean_batch;
        [
          H.i clients;
          H.i requests;
          H.ms (1000. *. elapsed);
          Printf.sprintf "%.0f" throughput;
          H.ms p50;
          H.ms p95;
          Printf.sprintf "%.2f" mean_batch;
        ])
      [ 1; 2; 4; 8 ]
  in
  H.remove_if_exists path;
  H.print_table
    ~columns:[ "clients"; "requests"; "elapsed"; "req/s"; "p50 (ms)";
               "p95 (ms)"; "batch" ]
    rows

(* --- E21: sharded scatter-gather scaling --- *)

let shard_scaling scale =
  H.print_header "E21: throughput vs shard count (scatter-gather router)"
    "One collection of fixed size partitioned into 1/2/4/8 shards (hash \
     placement), queried through the shard router with the 100-query \
     paper workload; per-query latency quantiles and throughput per \
     shard count. The 1-shard row is the single-store baseline plus \
     router overhead. One JSON line per row for scripted consumption.";
  let size = List.nth scale.sizes (List.length scale.sizes - 1) in
  let values =
    List.of_seq
      (synthetic Datagen.Synthetic.Wide (Datagen.Synthetic.Zipfian 0.7)
         ~seed:29 size)
  in
  (* workload selected against a throwaway single-store build *)
  let queries =
    let path = H.scratch_path "shard_scaling_oracle.tch" in
    H.remove_if_exists path;
    let b =
      Invfile.Builder.create
        (Storage.Hash_store.create ~buckets:(1 lsl 16) path)
    in
    List.iter (fun v -> ignore (Invfile.Builder.add_value b v)) values;
    let inv = Invfile.Builder.finish b in
    let qs = H.paper_queries inv in
    IF.close inv;
    H.remove_if_exists path;
    qs
  in
  let quantile sorted q =
    if Array.length sorted = 0 then 0.
    else
      sorted.(min
                (Array.length sorted - 1)
                (int_of_float (q *. float_of_int (Array.length sorted))))
  in
  let rows =
    List.map
      (fun shards ->
        let manifest_path = H.scratch_path "shard_scaling.manifest" in
        let m = Shard.Partitioner.build ~shards ~manifest_path values in
        let r = Shard.Router.open_manifest m in
        let latencies =
          Array.of_list
            (List.map
               (fun q ->
                 let t0 = Unix.gettimeofday () in
                 ignore (Shard.Router.query r q);
                 1000. *. (Unix.gettimeofday () -. t0))
               queries)
        in
        Shard.Router.close r;
        Array.iter
          (fun (s : Shard.Manifest.shard) ->
            match s.Shard.Manifest.location with
            | Shard.Manifest.Local { path; _ } -> H.remove_if_exists path
            | Shard.Manifest.Remote _ -> ())
          m.Shard.Manifest.shards;
        H.remove_if_exists manifest_path;
        let elapsed_ms = Array.fold_left ( +. ) 0. latencies in
        let sorted = Array.copy latencies in
        Array.sort Float.compare sorted;
        let p50 = quantile sorted 0.50 and p95 = quantile sorted 0.95 in
        let throughput =
          1000. *. float_of_int (List.length queries) /. elapsed_ms
        in
        Printf.printf
          "{\"experiment\":\"shard-scaling\",\"shards\":%d,\"records\":%d,\
           \"queries\":%d,\"elapsed_ms\":%.3f,\"throughput_qps\":%.1f,\
           \"p50_ms\":%.3f,\"p95_ms\":%.3f}\n"
          shards size (List.length queries) elapsed_ms throughput p50 p95;
        [
          H.i shards;
          H.i size;
          H.ms elapsed_ms;
          Printf.sprintf "%.0f" throughput;
          H.ms p50;
          H.ms p95;
        ])
      [ 1; 2; 4; 8 ]
  in
  H.print_table
    ~columns:[ "shards"; "records"; "elapsed"; "q/s"; "p50 (ms)"; "p95 (ms)" ]
    rows

(* --- E22: observability overhead --- *)

let obs_overhead scale =
  H.print_header "E22: observability overhead (tracing off vs. on)"
    "The paper workload against one wide-zipfian collection, run three \
     ways: tracing disabled (no ?trace argument — the default), a second \
     disabled pass (A/B pair: the instrumentation cost when off is an \
     Option match per phase, so the pair bounds it together with run \
     noise), and tracing enabled (a fresh span tree per query). Each \
     mode is best-of-5 after a warmup. Summary also written to \
     BENCH_obs.json; acceptance is overhead_disabled_pct <= 5.";
  let size = List.nth scale.sizes (List.length scale.sizes - 1) in
  H.with_collection ~name:"obs_overhead"
    (synthetic Datagen.Synthetic.Wide (Datagen.Synthetic.Zipfian 0.7) ~seed:31
       size)
    (fun inv ->
      Containment.Collection.with_static_cache inv ~budget:cache_budget;
      let queries = H.paper_queries inv in
      let nq = List.length queries in
      let disabled () =
        let t0 = Unix.gettimeofday () in
        List.iter (fun q -> ignore (E.query inv q)) queries;
        Unix.gettimeofday () -. t0
      in
      let enabled () =
        let t0 = Unix.gettimeofday () in
        List.iter
          (fun q ->
            let trace = Obs.Trace.create "query" in
            ignore (E.query ~trace inv q);
            ignore (Obs.Trace.finish trace))
          queries;
        Unix.gettimeofday () -. t0
      in
      (* warm the cache and the minor heap before timing *)
      ignore (disabled ());
      let runs = 5 in
      (* interleave the three modes so drift hits them equally *)
      let best = Array.make 3 infinity in
      for _ = 1 to runs do
        best.(0) <- min best.(0) (disabled ());
        best.(1) <- min best.(1) (disabled ());
        best.(2) <- min best.(2) (enabled ())
      done;
      let qps s = float_of_int nq /. s in
      let off_a = qps best.(0)
      and off_b = qps best.(1)
      and on_ = qps best.(2) in
      let overhead base v = 100. *. (base -. v) /. base in
      let disabled_pct = Float.abs (overhead off_a off_b) in
      let enabled_pct = overhead (Float.max off_a off_b) on_ in
      let json =
        Printf.sprintf
          "{\"experiment\":\"obs-overhead\",\"records\":%d,\"queries\":%d,\
           \"runs\":%d,\"throughput_disabled_qps\":%.1f,\
           \"throughput_disabled_rerun_qps\":%.1f,\
           \"throughput_enabled_qps\":%.1f,\"overhead_disabled_pct\":%.2f,\
           \"overhead_enabled_pct\":%.2f}"
          size nq runs off_a off_b on_ disabled_pct enabled_pct
      in
      print_endline json;
      let oc = open_out "BENCH_obs.json" in
      output_string oc json;
      output_char oc '\n';
      close_out oc;
      H.print_table
        ~columns:[ "mode"; "best (ms)"; "q/s"; "overhead" ]
        [
          [ "tracing off"; H.ms (1000. *. best.(0));
            Printf.sprintf "%.0f" off_a; "baseline" ];
          [ "tracing off (rerun)"; H.ms (1000. *. best.(1));
            Printf.sprintf "%.0f" off_b;
            Printf.sprintf "%.2f%%" disabled_pct ];
          [ "tracing on"; H.ms (1000. *. best.(2));
            Printf.sprintf "%.0f" on_;
            Printf.sprintf "%.2f%%" enabled_pct ];
        ])

(* --- E23: intersection kernels --- *)

let intersect scale =
  H.print_header "E23: intersection kernels (galloping, blocked skipping)"
    "Micro-benchmark of the list-intersection kernels over synthetic \
     postings: two-pointer merge on materialized arrays (the Plist_ref \
     oracle), galloping Plist.inter, decode-then-merge over 'V' payloads \
     (the pre-blocked streamed path), and the block-skipping streamed \
     intersection over 'C' payloads. Sweeps the length ratio of the two \
     lists and the density of the big one; every kernel's result is \
     checked against the oracle before timing. Summary written to \
     BENCH_intersect.json; acceptance is headline_speedup >= 5 (varint \
     decode+merge over blocked streaming, most skewed sparse pair).";
  let module L = Invfile.Plist in
  let module R = Invfile.Plist_ref in
  let module St = Invfile.Plist_stream in
  let module P = Invfile.Posting in
  let posting_of_id node =
    let h = (node * 2654435761) land 0x3FFFFFFF in
    {
      P.node;
      children = Array.init (h land 3) (fun k -> node + 1 + k + ((h lsr 2) land 7));
      leaf_count = (h lsr 8) land 15;
      post = node + ((h lsr 12) land 255);
      parent = (if node = 0 then -1 else (h lsr 5) mod node);
    }
  in
  let size = List.nth scale.sizes (List.length scale.sizes - 1) in
  let big_n = min 400_000 (size * 25) in
  let sample big k =
    (* every (n/k)-th posting of [big]: all hits, evenly spread *)
    let step = max 1 (Array.length big / k) in
    Array.init k (fun i -> big.(i * step))
  in
  (* per-op seconds: inner reps grown until a sample spans >= 10 ms,
     best of 3 samples *)
  let time f =
    let reps = ref 1 in
    let once () =
      let t0 = Unix.gettimeofday () in
      for _ = 1 to !reps do
        ignore (Sys.opaque_identity (f ()))
      done;
      (Unix.gettimeofday () -. t0) /. float_of_int !reps
    in
    let t = ref (once ()) in
    while !t *. float_of_int !reps < 0.01 && !reps < 1_000_000 do
      reps := !reps * 4;
      t := once ()
    done;
    let best = ref !t in
    for _ = 1 to 2 do
      best := min !best (once ())
    done;
    !best
  in
  let json_rows = ref [] in
  let headline = ref 0. in
  let rows =
    List.concat_map
      (fun (density, stride) ->
        let big = Array.init big_n (fun i -> posting_of_id (i * stride)) in
        let big_v = L.to_bytes ~codec:L.Varint big in
        let big_c = L.to_bytes ~codec:L.Blocked big in
        List.map
          (fun ratio ->
            let small = sample big (max 1 (big_n / ratio)) in
            let small_v = L.to_bytes ~codec:L.Varint small in
            let small_c = L.to_bytes ~codec:L.Blocked small in
            let expect = R.inter small big in
            let check name got =
              if got <> expect then
                failwith
                  (Printf.sprintf "E23: %s kernel diverges from the oracle (%s 1:%d)"
                     name density ratio)
            in
            check "gallop" (L.inter small big);
            check "varint" (R.inter (L.of_bytes small_v) (L.of_bytes big_v));
            check "blocked" (St.inter_many [ small_c; big_c ]);
            let t_merge = time (fun () -> R.inter small big) in
            let t_gallop = time (fun () -> L.inter small big) in
            let t_varint =
              time (fun () -> R.inter (L.of_bytes small_v) (L.of_bytes big_v))
            in
            let t_blocked = time (fun () -> St.inter_many [ small_c; big_c ]) in
            let speedup = t_varint /. t_blocked in
            if stride > 1 && ratio = 4096 then headline := speedup;
            json_rows :=
              Printf.sprintf
                "{\"density\":\"%s\",\"ratio\":%d,\"merge_us\":%.2f,\
                 \"gallop_us\":%.2f,\"varint_us\":%.2f,\"blocked_us\":%.2f,\
                 \"speedup\":%.2f}"
                density ratio (1e6 *. t_merge) (1e6 *. t_gallop)
                (1e6 *. t_varint) (1e6 *. t_blocked) speedup
              :: !json_rows;
            [
              density;
              "1:" ^ string_of_int ratio;
              H.ms (1000. *. t_merge);
              H.ms (1000. *. t_gallop);
              H.ms (1000. *. t_varint);
              H.ms (1000. *. t_blocked);
              Printf.sprintf "%.1fx" speedup;
            ])
          [ 1; 16; 256; 4096 ])
      [ ("dense", 1); ("sparse", 17) ]
  in
  H.print_table
    ~columns:
      [ "density"; "ratio"; "merge"; "gallop"; "varint+merge"; "blocked"; "speedup" ]
    rows;
  let json =
    Printf.sprintf
      "{\"experiment\":\"intersect\",\"big\":%d,\"headline_speedup\":%.2f,\
       \"acceptance\":\"headline_speedup >= 5\",\"rows\":[%s]}"
      big_n !headline
      (String.concat "," (List.rev !json_rows))
  in
  print_endline json;
  let oc = open_out "BENCH_intersect.json" in
  output_string oc json;
  output_char oc '\n';
  close_out oc;
  Printf.printf "headline speedup (sparse 1:4096): %.1fx — %s\n" !headline
    (if !headline >= 5. then "PASS (>= 5x)" else "below the 5x target");
  (* phase attribution: one streamed query over a blocked-codec collection,
     rendered through the tracing spans so retrieval/merge time is visible *)
  let values =
    List.of_seq
      (synthetic Datagen.Synthetic.Wide (Datagen.Synthetic.Zipfian 0.7) ~seed:23
         (min size 4_000))
  in
  let inv = Containment.Collection.of_values values in
  (match H.paper_queries ~count:2 inv with
  | q :: _ ->
    let trace = Obs.Trace.create "intersect" in
    ignore (E.query ~config:{ E.default with E.streamed = true } ~trace inv q);
    print_string (Obs.Trace.render (Obs.Trace.finish trace))
  | [] -> ());
  IF.close inv

(* --- E24: set-containment join scaling --- *)

let join_scaling scale =
  H.print_header "E24: set-containment join (prefix tree vs naive loop)"
    "Paired collections from Datagen.Paired (containment selectivity 0.3, \
     Zipf θ=0.7, label pool scaled to inner/16 so atoms repeat across \
     outer sets — the regime a prefix tree amortizes): the inner \
     collection is indexed, the outer collection is joined against it two \
     ways — the naive per-query engine loop and the PRETTI-style \
     prefix-tree join with adaptive LIMIT+ cuts. Every row is gated on \
     pair-set equality against the naive oracle. The headline (largest \
     outer×inner) speedup is also written to BENCH_join.json; acceptance \
     is headline_speedup >= 5.";
  let json_rows = ref [] and headline = ref 0. in
  (* rows grow 4x faster than the shared size ladder (the join amortizes
     over volume), and the ladder always ends on the acceptance workload's
     10k x 100k row — that is the row the headline is judged on *)
  let inner_sizes =
    100_000 :: List.map (fun s -> min (4 * s) 100_000) scale.sizes
    |> List.sort_uniq Int.compare
  in
  let rows =
    List.map
      (fun inner_n ->
        let outer_n = max 50 (min (inner_n / 5) 10_000) in
        let pool_n = max 500 (inner_n / 16) in
        let w =
          Datagen.Paired.make ~seed:67
            ~pool:(Datagen.Label_pool.create pool_n)
            ~label_dist:(Datagen.Synthetic.Zipfian 0.7) ~selectivity:0.3
            ~inner:inner_n ~outer:outer_n ()
        in
        H.with_collection ~name:"join_scaling" (List.to_seq w.Datagen.Paired.inner)
        @@ fun inv ->
        Containment.Collection.with_static_cache inv ~budget:cache_budget;
        let outers = Datagen.Workload.values w.Datagen.Paired.outer in
        let t0 = Unix.gettimeofday () in
        let naive_pairs = Join.Engine.naive inv outers in
        let naive_ms = 1000. *. (Unix.gettimeofday () -. t0) in
        let t0 = Unix.gettimeofday () in
        let r = Join.Engine.join inv outers in
        let join_ms = 1000. *. (Unix.gettimeofday () -. t0) in
        (* the oracle gate: cuts, root lifting, and verification must not
           change the answer, at any scale *)
        if r.Join.Engine.pairs <> naive_pairs then
          failwith
            (Printf.sprintf
               "E24 oracle violation at %dx%d: join returned %d pairs, naive \
                %d"
               outer_n inner_n
               (List.length r.Join.Engine.pairs)
               (List.length naive_pairs));
        let s = r.Join.Engine.stats in
        let speedup = if join_ms > 0. then naive_ms /. join_ms else 0. in
        headline := speedup;
        json_rows :=
          Printf.sprintf
            "{\"outer\":%d,\"inner\":%d,\"pairs\":%d,\"naive_ms\":%.3f,\
             \"join_ms\":%.3f,\"speedup\":%.2f,\"tree_nodes\":%d,\
             \"nodes_expanded\":%d,\"intersections_shared\":%d,\
             \"intersections_recomputed\":%d,\"limit_cuts\":%d,\
             \"fallback\":%d}"
            outer_n inner_n s.Join.Engine.pairs naive_ms join_ms speedup
            s.Join.Engine.tree_nodes s.Join.Engine.nodes_expanded
            s.Join.Engine.intersections_shared
            s.Join.Engine.intersections_recomputed s.Join.Engine.limit_cuts
            s.Join.Engine.fallback
          :: !json_rows;
        [
          H.i outer_n;
          H.i inner_n;
          H.i s.Join.Engine.pairs;
          H.ms naive_ms;
          H.ms join_ms;
          Printf.sprintf "%.1fx" speedup;
          H.i s.Join.Engine.intersections_shared;
          H.i s.Join.Engine.limit_cuts;
        ])
      inner_sizes
  in
  H.print_table
    ~columns:
      [ "outer"; "inner"; "pairs"; "naive"; "join"; "speedup"; "shared";
        "cuts" ]
    rows;
  let json =
    Printf.sprintf
      "{\"experiment\":\"join-scaling\",\"headline_speedup\":%.2f,\
       \"acceptance\":\"headline_speedup >= 5\",\"rows\":[%s]}"
      !headline
      (String.concat "," (List.rev !json_rows))
  in
  print_endline json;
  let oc = open_out "BENCH_join.json" in
  output_string oc json;
  output_char oc '\n';
  close_out oc;
  Printf.printf "headline speedup (largest outer×inner): %.1fx — %s\n"
    !headline
    (if !headline >= 5. then "PASS (>= 5x)" else "below the 5x target")

(* --- E25: query latency under live ingestion --- *)

(* live stores are directories; the harness scratch helpers only know files *)
let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then (
      Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
      Sys.rmdir path)
    else Sys.remove path

let ingest scale =
  let module LS = Live.Live_store in
  H.print_header "E25: query latency under live ingestion (lib/live)"
    "One live store per row, the same wide-zipfian records sealed into \
     1/4/16 segments; the paper workload is timed twice — against the \
     idle store, then again while a writer domain ingests ~1.6k fresh \
     records/s in bursts, flushing every 1024 so the memtable stays \
     bounded and segment seals land mid-measurement (the LSM steady \
     state). Every idle answer is gated on id-sequence equality against \
     a from-scratch rebuild, and the post-ingest store is gated the \
     same way once the writer stops. WAL fsync is off so the \
     interference measured is lock, memtable, and seal work — not disk \
     sync. Summary written to BENCH_ingest.json; acceptance is \
     p99_ratio <= 2 on every row.";
  let size = List.nth scale.sizes (List.length scale.sizes - 1) in
  let values =
    List.of_seq
      (synthetic Datagen.Synthetic.Wide (Datagen.Synthetic.Zipfian 0.7)
         ~seed:31 size)
  in
  (* fresh records for the concurrent writer, disjoint seed *)
  let feed =
    Array.of_seq
      (synthetic Datagen.Synthetic.Wide (Datagen.Synthetic.Zipfian 0.7)
         ~seed:97 2_000)
  in
  (* the workload and its expected answers, from one rebuilt oracle *)
  let queries, expected =
    H.with_collection ~name:"ingest_oracle" (List.to_seq values) (fun inv ->
        let qs = H.paper_queries inv in
        (qs, List.map (fun q -> (E.query inv q).E.records) qs))
  in
  let quantile sorted q =
    if Array.length sorted = 0 then 0.
    else
      sorted.(min
                (Array.length sorted - 1)
                (int_of_float (q *. float_of_int (Array.length sorted))))
  in
  (* 20 passes x 100 queries = 2000 samples per phase, so the p99 is the
     20th-worst — a steady-state quantile, not one unlucky seal stall *)
  let reps = 20 in
  let json_rows = ref [] and worst_ratio = ref 0. in
  let rows =
    List.map
      (fun segments ->
        let dir = H.scratch_path (Printf.sprintf "ingest_%d.live" segments) in
        rm_rf dir;
        let config =
          { LS.default with LS.flush_records = 0; max_segments = 0;
            auto_compact = false; wal_sync = false }
        in
        let store = LS.create ~config dir in
        (* seal the load into exactly [segments] segments *)
        let chunk = (size + segments - 1) / segments in
        List.iteri
          (fun i v ->
            ignore (LS.insert store v);
            if (i + 1) mod chunk = 0 then ignore (LS.flush store))
          values;
        if LS.memtable_records store > 0 then ignore (LS.flush store);
        (* idle gate: the live store must answer exactly like the rebuild *)
        List.iter2
          (fun q want ->
            let got = LS.query store q in
            if got <> want then
              failwith
                (Printf.sprintf
                   "E25 oracle violation at %d segments (idle): %d ids, \
                    want %d"
                   segments (List.length got) (List.length want)))
          queries expected;
        let measure () =
          let lat = ref [] in
          for _ = 1 to reps do
            List.iter
              (fun q ->
                let t0 = Unix.gettimeofday () in
                ignore (LS.query store q);
                lat := (1000. *. (Unix.gettimeofday () -. t0)) :: !lat)
              queries
          done;
          let a = Array.of_list !lat in
          Array.sort Float.compare a;
          a
        in
        let idle = measure () in
        let stop = Atomic.make false and ingested = Atomic.make 0 in
        let writer =
          Domain.spawn (fun () ->
              let i = ref 0 in
              while not (Atomic.get stop) do
                (* short bursts: the same ~1.6k/s spread thin, so a query
                   never queues behind a long run of writer lock holds *)
                for _ = 1 to 4 do
                  ignore (LS.insert store feed.(!i mod Array.length feed));
                  incr i;
                  if !i mod 1024 = 0 then ignore (LS.flush store)
                done;
                Atomic.set ingested !i;
                Unix.sleepf 0.0025
              done;
              Atomic.set ingested !i)
        in
        let t0 = Unix.gettimeofday () in
        let busy = measure () in
        let busy_wall = Unix.gettimeofday () -. t0 in
        Atomic.set stop true;
        Domain.join writer;
        let ingested = Atomic.get ingested in
        (* post-ingest gate: rebuild from the final live records (ids are
           0..n-1 on both sides — the workload was insert-only) *)
        let final =
          List.rev (LS.fold_live store ~init:[] ~f:(fun acc _ v -> v :: acc))
        in
        H.with_collection ~name:"ingest_rebuild" (List.to_seq final)
          (fun inv ->
            List.iter
              (fun q ->
                if LS.query store q <> (E.query inv q).E.records then
                  failwith
                    (Printf.sprintf
                       "E25 oracle violation at %d segments (post-ingest)"
                       segments))
              queries);
        let seg_end = LS.segment_count store in
        LS.close store;
        rm_rf dir;
        let idle_p50 = quantile idle 0.50 and idle_p99 = quantile idle 0.99 in
        let busy_p50 = quantile busy 0.50 and busy_p99 = quantile busy 0.99 in
        let ratio = if idle_p99 > 0. then busy_p99 /. idle_p99 else 0. in
        if ratio > !worst_ratio then worst_ratio := ratio;
        let ingest_rps =
          if busy_wall > 0. then float_of_int ingested /. busy_wall else 0.
        in
        json_rows :=
          Printf.sprintf
            "{\"segments\":%d,\"segments_end\":%d,\"records\":%d,\
             \"ingested\":%d,\"ingest_rps\":%.0f,\"idle_p50_ms\":%.3f,\
             \"idle_p99_ms\":%.3f,\"ingest_p50_ms\":%.3f,\
             \"ingest_p99_ms\":%.3f,\"p99_ratio\":%.2f}"
            segments seg_end size ingested ingest_rps idle_p50 idle_p99
            busy_p50 busy_p99 ratio
          :: !json_rows;
        [
          H.i segments;
          H.i seg_end;
          H.i size;
          H.i ingested;
          H.ms idle_p50;
          H.ms idle_p99;
          H.ms busy_p50;
          H.ms busy_p99;
          Printf.sprintf "%.2fx" ratio;
        ])
      [ 1; 4; 16 ]
  in
  H.print_table
    ~columns:
      [ "segs"; "segs'"; "records"; "ingested"; "idle p50"; "idle p99";
        "busy p50"; "busy p99"; "p99 ratio" ]
    rows;
  let json =
    Printf.sprintf
      "{\"experiment\":\"ingest\",\"worst_p99_ratio\":%.2f,\
       \"acceptance\":\"p99_ratio <= 2\",\"rows\":[%s]}"
      !worst_ratio
      (String.concat "," (List.rev !json_rows))
  in
  print_endline json;
  let oc = open_out "BENCH_ingest.json" in
  output_string oc json;
  output_char oc '\n';
  close_out oc;
  Printf.printf "worst p99 under ingest: %.2fx idle — %s\n" !worst_ratio
    (if !worst_ratio <= 2. then "PASS (<= 2x)"
     else "over the 2x acceptance line")

(* --- E26: flight-recorder overhead --- *)

let recorder_overhead scale =
  H.print_header "E26: flight-recorder overhead (always-on vs. disabled)"
    "The E22 workload (paper queries against one wide-zipfian collection) \
     with per-query latency sampled under the flight recorder disabled \
     and enabled (query/phase events into the per-domain ring, exactly \
     what nscq serve leaves on). Oracle-gated: both modes must return \
     the same id lists as a pre-timing evaluation before any sample \
     counts. Each query's latency is its best over interleaved passes, \
     so the percentiles compare steady-state instrumentation cost, not \
     scheduler noise. Summary written to BENCH_obs2.json; acceptance is \
     overhead_p50_pct <= 5 and overhead_p99_pct <= 5.";
  let size = List.nth scale.sizes (List.length scale.sizes - 1) in
  H.with_collection ~name:"recorder_overhead"
    (synthetic Datagen.Synthetic.Wide (Datagen.Synthetic.Zipfian 0.7) ~seed:31
       size)
    (fun inv ->
      Containment.Collection.with_static_cache inv ~budget:cache_budget;
      let queries = Array.of_list (H.paper_queries inv) in
      let nq = Array.length queries in
      (* oracle gate: turning the recorder on must not change any answer *)
      Obs.Recorder.disable ();
      let expected = Array.map (fun q -> (E.query inv q).E.records) queries in
      Obs.Recorder.enable ();
      let oracle_ok =
        Array.for_all2
          (fun q want -> (E.query inv q).E.records = want)
          queries expected
      in
      Obs.Recorder.disable ();
      if not oracle_ok then
        failwith "E26: recorder-on results diverge from recorder-off";
      let lat_off = Array.make nq infinity
      and lat_on = Array.make nq infinity in
      let run lat =
        Array.iteri
          (fun i q ->
            let t0 = Unix.gettimeofday () in
            ignore (E.query inv q);
            let dt = 1e6 *. (Unix.gettimeofday () -. t0) in
            if dt < lat.(i) then lat.(i) <- dt)
          queries
      in
      (* warm the cache and the minor heap before timing *)
      Array.iter (fun q -> ignore (E.query inv q)) queries;
      let passes = 7 in
      for _ = 1 to passes do
        Obs.Recorder.disable ();
        run lat_off;
        Obs.Recorder.enable ();
        run lat_on
      done;
      Obs.Recorder.disable ();
      let events, dropped = Obs.Recorder.stats () in
      let pct lat q =
        let s = Array.copy lat in
        Array.sort Float.compare s;
        s.(min (nq - 1) (int_of_float (q *. float_of_int nq)))
      in
      let p50_off = pct lat_off 0.50
      and p99_off = pct lat_off 0.99
      and p50_on = pct lat_on 0.50
      and p99_on = pct lat_on 0.99 in
      let overhead base v =
        if base > 0. then 100. *. (v -. base) /. base else 0.
      in
      let p50_pct = overhead p50_off p50_on
      and p99_pct = overhead p99_off p99_on in
      let json =
        Printf.sprintf
          "{\"experiment\":\"recorder-overhead\",\"records\":%d,\
           \"queries\":%d,\"passes\":%d,\"oracle\":\"pass\",\
           \"events\":%d,\"events_dropped\":%d,\
           \"p50_disabled_us\":%.2f,\"p50_enabled_us\":%.2f,\
           \"p99_disabled_us\":%.2f,\"p99_enabled_us\":%.2f,\
           \"overhead_p50_pct\":%.2f,\"overhead_p99_pct\":%.2f}"
          size nq passes events dropped p50_off p50_on p99_off p99_on
          p50_pct p99_pct
      in
      print_endline json;
      let oc = open_out "BENCH_obs2.json" in
      output_string oc json;
      output_char oc '\n';
      close_out oc;
      H.print_table
        ~columns:[ "mode"; "p50 (µs)"; "p99 (µs)"; "overhead p50"; "overhead p99" ]
        [
          [ "recorder off"; Printf.sprintf "%.2f" p50_off;
            Printf.sprintf "%.2f" p99_off; "baseline"; "baseline" ];
          [ "recorder on"; Printf.sprintf "%.2f" p50_on;
            Printf.sprintf "%.2f" p99_on;
            Printf.sprintf "%.2f%%" p50_pct;
            Printf.sprintf "%.2f%%" p99_pct ];
        ])

(* --- E27: race-sanitizer overhead --- *)

let racesan_overhead scale =
  let module LS = Live.Live_store in
  H.print_header "E27: race-sanitizer overhead (NSCQ_TSAN on vs. off)"
    "The E22-style paper workload against a live store, whose query \
     path crosses a Racesan-guarded mutex per query — per-query latency \
     sampled with the sanitizer off and on (held-lock bookkeeping plus \
     a guarded-cell assert per locked section), interleaved best-of \
     passes as in E26. Oracle-gated: both modes must return identical \
     id lists, and the enabled run must record zero findings — the \
     tree's lock contracts hold under measurement. The disabled path is \
     gated directly: the cost of a disabled check (one atomic load and \
     a branch, micro-benched) times the checks per query (calibrated \
     from the sanitizer's own counter) must stay under 1%% of the \
     disabled-mode p50. Summary written to BENCH_racesan.json; \
     acceptance is disabled_overhead_pct <= 1.";
  let size = List.nth scale.sizes (List.length scale.sizes - 1) in
  let values =
    List.of_seq
      (synthetic Datagen.Synthetic.Wide (Datagen.Synthetic.Zipfian 0.7)
         ~seed:31 size)
  in
  let dir = H.scratch_path "racesan.live" in
  rm_rf dir;
  let config =
    { LS.default with LS.flush_records = 0; max_segments = 0;
      auto_compact = false; wal_sync = false }
  in
  let store = LS.create ~config dir in
  List.iteri
    (fun i v ->
      ignore (LS.insert store v);
      if (i + 1) mod 2048 = 0 then ignore (LS.flush store))
    values;
  if LS.memtable_records store > 0 then ignore (LS.flush store);
  Fun.protect ~finally:(fun () -> LS.close store; rm_rf dir) (fun () ->
  (* the workload and the oracle gate: sanitizing must not change answers *)
  let queries =
    H.with_collection ~name:"racesan_oracle" (List.to_seq values) (fun inv ->
        Array.of_list (H.paper_queries inv))
  in
  let nq = Array.length queries in
  Racesan.set_enabled false;
  let expected = Array.map (LS.query store) queries in
  Racesan.set_enabled true;
  Racesan.reset ();
  let oracle_ok =
    Array.for_all2 (fun q want -> LS.query store q = want) queries expected
  in
  (* checks per query, from the sanitizer's own counter over that pass *)
  let checks_before = Racesan.checks () in
  Array.iter (fun q -> ignore (LS.query store q)) queries;
  let checks_per_query =
    float_of_int (Racesan.checks () - checks_before) /. float_of_int nq
  in
  let finding_count = List.length (Racesan.findings ()) in
  Racesan.set_enabled false;
  if not oracle_ok then
    failwith "E27: sanitizer-on results diverge from sanitizer-off";
  if finding_count > 0 then
    failwith
      (Printf.sprintf "E27: %d race finding(s) under measurement"
         finding_count);
  (* disabled-path unit cost: one check with the sanitizer off *)
  let probe_lock = Lockdep.create "bench.racesan.probe" in
  let probe = Racesan.register ~name:"bench.racesan.probe" ~lock:probe_lock in
  let disabled_check_ns =
    let iters = 10_000_000 in
    let t0 = Unix.gettimeofday () in
    for _ = 1 to iters do Racesan.check probe done;
    1e9 *. (Unix.gettimeofday () -. t0) /. float_of_int iters
  in
  let lat_off = Array.make nq infinity and lat_on = Array.make nq infinity in
  let run lat =
    Array.iteri
      (fun i q ->
        let t0 = Unix.gettimeofday () in
        ignore (LS.query store q);
        let dt = 1e6 *. (Unix.gettimeofday () -. t0) in
        if dt < lat.(i) then lat.(i) <- dt)
      queries
  in
  Array.iter (fun q -> ignore (LS.query store q)) queries;
  let passes = 7 in
  for _ = 1 to passes do
    Racesan.set_enabled false;
    run lat_off;
    Racesan.set_enabled true;
    run lat_on
  done;
  Racesan.set_enabled false;
  Racesan.reset ();
  let pct lat q =
    let s = Array.copy lat in
    Array.sort Float.compare s;
    s.(min (nq - 1) (int_of_float (q *. float_of_int nq)))
  in
  let p50_off = pct lat_off 0.50
  and p99_off = pct lat_off 0.99
  and p50_on = pct lat_on 0.50
  and p99_on = pct lat_on 0.99 in
  let overhead base v =
    if base > 0. then 100. *. (v -. base) /. base else 0.
  in
  let p50_pct = overhead p50_off p50_on
  and p99_pct = overhead p99_off p99_on in
  (* the 1% gate for the compiled-in disabled path: per-check cost times
     checks per query, as a share of the disabled-mode p50 *)
  let disabled_overhead_pct =
    if p50_off > 0. then
      100. *. (disabled_check_ns *. checks_per_query /. 1e3) /. p50_off
    else 0.
  in
  if disabled_overhead_pct > 1. then
    failwith
      (Printf.sprintf
         "E27: disabled-path cost %.4f%% of p50 exceeds the 1%% gate"
         disabled_overhead_pct);
  let json =
    Printf.sprintf
      "{\"experiment\":\"racesan-overhead\",\"records\":%d,\
       \"queries\":%d,\"passes\":%d,\"oracle\":\"pass\",\"findings\":0,\
       \"checks_per_query\":%.2f,\"disabled_check_ns\":%.2f,\
       \"p50_disabled_us\":%.2f,\"p50_enabled_us\":%.2f,\
       \"p99_disabled_us\":%.2f,\"p99_enabled_us\":%.2f,\
       \"overhead_p50_pct\":%.2f,\"overhead_p99_pct\":%.2f,\
       \"disabled_overhead_pct\":%.4f}"
      size nq passes checks_per_query disabled_check_ns p50_off p50_on
      p99_off p99_on p50_pct p99_pct disabled_overhead_pct
  in
  print_endline json;
  let oc = open_out "BENCH_racesan.json" in
  output_string oc json;
  output_char oc '\n';
  close_out oc;
  H.print_table
    ~columns:
      [ "mode"; "p50 (µs)"; "p99 (µs)"; "overhead p50"; "overhead p99" ]
    [
      [ "sanitizer off"; Printf.sprintf "%.2f" p50_off;
        Printf.sprintf "%.2f" p99_off; "baseline"; "baseline" ];
      [ "sanitizer on"; Printf.sprintf "%.2f" p50_on;
        Printf.sprintf "%.2f" p99_on;
        Printf.sprintf "%.2f%%" p50_pct;
        Printf.sprintf "%.2f%%" p99_pct ];
      [ "disabled path"; "-"; "-";
        Printf.sprintf "%.4f%% (gate <= 1%%)" disabled_overhead_pct; "-" ];
    ])

(* --- registry --- *)

let all : (string * string * (scale -> unit)) list =
  [
    ("fig6a", "uniform wide synthetic (Experiment 1)", fig6a);
    ("fig6b", "uniform deep synthetic (Experiment 1)", fig6b);
    ("fig6c", "skewed wide synthetic (Experiment 2)", fig6c);
    ("fig6d", "skewed deep synthetic (Experiment 2)", fig6d);
    ("fig6e", "Twitter collection (Experiment 3)", fig6e);
    ("fig6f", "DBLP collection (Experiment 3)", fig6f);
    ("skew", "skew sweep θ ∈ {0.5,0.7,0.9}", skew_sweep);
    ("naive", "naive baseline (E4)", naive_baseline);
    ("bloom", "Bloom prefilters (E5)", bloom_prefilter);
    ("joins", "join extensions (E6)", join_extensions);
    ("semantics", "embedding semantics (E7)", embedding_semantics);
    ("cache-ablation", "cache budget ablation (E8)", cache_ablation);
    ("cache-policies", "cache policies (E9)", cache_policies);
    ("backends", "storage backends (E10)", backends);
    ("td-variants", "top-down variants (E11)", td_variants);
    ("low-memory", "streamed lists / external stack (E12)", low_memory);
    ("td-ordering", "top-down child ordering (E13)", td_ordering);
    ("codec", "postings codec ablation (E14)", codec_ablation);
    ("multicore", "multicore scale-up (E15)", multicore);
    ("signature", "signature-file baseline (E16)", signature_baseline);
    ("preflight", "preflight atom checks (E17)", preflight);
    ("record-format", "record storage format (E18)", record_format);
    ("complexity", "time vs |q| analysis check (E19)", complexity);
    ("serve-load", "server under closed-loop load (E20)", serve_load);
    ("shard-scaling", "sharded scatter-gather router (E21)", shard_scaling);
    ("obs-overhead", "observability overhead (E22)", obs_overhead);
    ("intersect", "intersection kernels (E23)", intersect);
    ("join-scaling", "set-containment join engine (E24)", join_scaling);
    ("ingest", "live ingest-while-query (E25)", ingest);
    ("recorder-overhead", "flight recorder always-on (E26)", recorder_overhead);
    ("racesan-overhead", "race sanitizer on/off (E27)", racesan_overhead);
  ]
