(* Benchmark driver.

     dune exec bench/main.exe                 -- all experiments, scaled down
     dune exec bench/main.exe -- --full       -- larger sizes
     dune exec bench/main.exe -- --only fig6a,naive
     dune exec bench/main.exe -- --no-micro   -- skip the bechamel suite

   Each paper table/figure has a figure-series harness (Experiments) that
   prints the rows the paper plots, and a bechamel Test.make below that
   measures one representative workload for that figure. *)

(* Console output is this program's purpose, and executables have no
   interface files: R2/R5 are opted out explicitly rather than scoped
   away, so the rest of the rules (R1 above all) still apply. *)
[@@@lint.allow io mli]

module E = Containment.Engine
module Sem = Containment.Semantics

(* --- bechamel micro/per-figure suite --- *)

let bechamel_suite () =
  let open Bechamel in
  (* one shared small collection per shape, built once *)
  let size = 1_000 in
  let build shape dist name =
    (* deep data capped at depth 10, as in the figure harness *)
    let max_depth =
      match shape with Datagen.Synthetic.Wide -> 16 | Datagen.Synthetic.Deep -> 10
    in
    Harness.build ~backend:Harness.Mem ~name
      (Datagen.Synthetic.seq
         (Datagen.Synthetic.make ~seed:99
            ~params:(Datagen.Synthetic.params_of_shape ~max_depth shape)
            dist)
         size)
  in
  let uw, _ = build Datagen.Synthetic.Wide Datagen.Synthetic.Uniform "bch_uw" in
  let ud, _ = build Datagen.Synthetic.Deep Datagen.Synthetic.Uniform "bch_ud" in
  let sw, _ = build Datagen.Synthetic.Wide (Datagen.Synthetic.Zipfian 0.7) "bch_sw" in
  let sd, _ = build Datagen.Synthetic.Deep (Datagen.Synthetic.Zipfian 0.7) "bch_sd" in
  let tw, _ =
    Harness.build ~backend:Harness.Mem ~name:"bch_tw"
      (Datagen.Twitter_sim.seq (Datagen.Twitter_sim.make ~seed:99 ()) size)
  in
  let db, _ =
    Harness.build ~backend:Harness.Mem ~name:"bch_db"
      (Datagen.Dblp_sim.seq (Datagen.Dblp_sim.make ~seed:99 ()) size)
  in
  let queries inv = Harness.paper_queries ~count:10 inv in
  let q_uw = queries uw and q_ud = queries ud and q_sw = queries sw in
  let q_sd = queries sd and q_tw = queries tw and q_db = queries db in
  let workload ?(config = E.default) inv qs =
    Staged.stage (fun () -> ignore (E.run_workload ~config inv qs))
  in
  (* one Test.make per reproduced table/figure *)
  let figure_tests =
    [
      Test.make ~name:"fig6a/uniform-wide" (workload uw q_uw);
      Test.make ~name:"fig6b/uniform-deep" (workload ud q_ud);
      Test.make ~name:"fig6c/skewed-wide" (workload sw q_sw);
      Test.make ~name:"fig6d/skewed-deep" (workload sd q_sd);
      Test.make ~name:"fig6e/twitter" (workload tw q_tw);
      Test.make ~name:"fig6f/dblp" (workload db q_db);
      Test.make ~name:"table1/paper-example"
        (Staged.stage (fun () ->
             let inv = Containment.Collection.paper_example () in
             ignore (E.query inv Containment.Collection.paper_example_query)));
      Test.make ~name:"e4/naive-scan"
        (workload ~config:{ E.default with E.algorithm = E.Naive_scan } uw q_uw);
      Test.make ~name:"e6/superset-join"
        (workload ~config:{ E.default with E.join = Sem.Superset } sw q_sw);
      Test.make ~name:"e6/overlap-join"
        (workload ~config:{ E.default with E.join = Sem.Overlap 1 } sw q_sw);
      Test.make ~name:"e7/iso" (workload ~config:{ E.default with E.embedding = Sem.Iso } ud q_ud);
      Test.make ~name:"e7/homeo"
        (workload ~config:{ E.default with E.embedding = Sem.Homeo } ud q_ud);
      (let fi = Containment.Filter_index.build sw in
       Test.make ~name:"e5/bloom-prefilter"
         (workload ~config:{ E.default with E.filter_index = Some fi } sw q_sw));
      (Containment.Collection.with_static_cache sw ~budget:250;
       Test.make ~name:"e8/cached-250" (workload sw q_sw));
      Test.make ~name:"e12/streamed"
        (workload ~config:{ E.default with E.streamed = true } uw q_uw);
      Test.make ~name:"e17/preflight"
        (workload ~config:{ E.default with E.preflight = true } sw q_sw);
    ]
  in
  (* core-operation micro benches *)
  let l1 =
    Invfile.Plist.of_list
      (List.init 10_000 (fun i ->
           { Invfile.Posting.node = 3 * i; children = [| (3 * i) + 1 |];
             leaf_count = 2; post = 3 * i; parent = -1 }))
  in
  let l2 =
    Invfile.Plist.of_list
      (List.init 10_000 (fun i ->
           { Invfile.Posting.node = 5 * i; children = [| (5 * i) + 1 |];
             leaf_count = 2; post = 5 * i; parent = -1 }))
  in
  let bloom_a = Containment.Bloom.create ~bits:1024 () in
  let bloom_b = Containment.Bloom.create ~bits:1024 () in
  let () =
    for i = 0 to 19 do
      Containment.Bloom.add bloom_a ("k" ^ string_of_int i);
      Containment.Bloom.add bloom_b ("k" ^ string_of_int i)
    done
  in
  let zipf = Datagen.Zipf.create ~n:100_000 ~theta:0.7 in
  let rng = Random.State.make [| 1 |] in
  let micro_tests =
    [
      Test.make ~name:"micro/plist-inter-10k"
        (Staged.stage (fun () -> ignore (Invfile.Plist.inter l1 l2)));
      Test.make ~name:"micro/plist-codec-10k"
        (Staged.stage (fun () -> ignore (Invfile.Plist.of_bytes (Invfile.Plist.to_bytes l1))));
      Test.make ~name:"micro/bloom-subset"
        (Staged.stage (fun () -> ignore (Containment.Bloom.subset bloom_a bloom_b)));
      Test.make ~name:"micro/zipf-sample"
        (Staged.stage (fun () -> ignore (Datagen.Zipf.sample zipf rng)));
      Test.make ~name:"micro/value-parse"
        (Staged.stage (fun () ->
             ignore
               (Nested.Syntax.of_string
                  "{London, UK, {UK, {A, B, C, car, motorbike}}, {UK, {A, motorbike}}}")));
    ]
  in
  let test =
    Test.make_grouped ~name:"nscq" ~fmt:"%s/%s" [
      Test.make_grouped ~name:"figures" ~fmt:"%s %s" figure_tests;
      Test.make_grouped ~name:"micro" ~fmt:"%s %s" micro_tests;
    ]
  in
  let benchmark () =
    let ols =
      Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |]
    in
    let instances = Toolkit.Instance.[ monotonic_clock ] in
    let cfg =
      Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~stabilize:true ()
    in
    let raw = Benchmark.all cfg instances test in
    let results =
      List.map (fun instance -> Analyze.all ols instance raw) instances
    in
    Analyze.merge ols instances results
  in
  Printf.printf "\n=== bechamel suite (ns per run, OLS estimate) ===\n%!";
  let results = benchmark () in
  (match
     Hashtbl.find_opt results
       (Bechamel.Measure.label Bechamel.Toolkit.Instance.monotonic_clock)
   with
  | None -> print_endline "no results"
  | Some per_test ->
    let rows = ref [] in
    Hashtbl.iter
      (fun name ols ->
        let est =
          match Analyze.OLS.estimates ols with
          | Some [ x ] -> x
          | _ -> Float.nan
        in
        rows := (name, est) :: !rows)
      per_test;
    List.iter
      (fun (name, est) ->
        if Float.is_nan est then Printf.printf "%-28s  (no estimate)\n" name
        else if est > 1e6 then Printf.printf "%-28s  %10.3f ms/run\n" name (est /. 1e6)
        else Printf.printf "%-28s  %10.0f ns/run\n" name est)
      (List.sort (fun (a, _) (b, _) -> String.compare a b) !rows))

(* --- driver --- *)

let run_experiments ~full ~only ~micro ~csv =
  Harness.csv_dir := csv;
  let scale = if full then Experiments.full_scale else Experiments.default_scale in
  let selected =
    match only with
    | [] -> Experiments.all
    | names ->
      List.filter (fun (name, _, _) -> List.exists (String.equal name) names) Experiments.all
  in
  if selected = [] then begin
    Printf.eprintf "No matching experiments. Available:\n";
    List.iter (fun (n, d, _) -> Printf.eprintf "  %-16s %s\n" n d) Experiments.all;
    exit 1
  end;
  Printf.printf "nscq benchmark harness — %d experiment(s), %s scale\n"
    (List.length selected)
    (if full then "full" else "default");
  Printf.printf
    "(sizes are scaled down from the paper's 125K-4M records; shapes, not \
     absolute numbers, are the reproduction target — see EXPERIMENTS.md)\n%!";
  List.iter
    (fun (_, _, f) ->
      f scale;
      print_newline ())
    selected;
  if micro then bechamel_suite ()

let () =
  let open Cmdliner in
  let full =
    Arg.(value & flag & info [ "full" ] ~doc:"Run the larger size sweep.")
  in
  let only =
    Arg.(
      value
      & opt (list string) []
      & info [ "only" ] ~docv:"NAMES"
          ~doc:"Comma-separated experiment names (e.g. fig6a,naive).")
  in
  let no_micro =
    Arg.(value & flag & info [ "no-micro" ] ~doc:"Skip the bechamel suite.")
  in
  let micro_only =
    Arg.(value & flag & info [ "micro-only" ] ~doc:"Run only the bechamel suite.")
  in
  let csv =
    Arg.(
      value
      & opt (some string) None
      & info [ "csv" ] ~docv:"DIR" ~doc:"Also write each table as CSV into $(docv).")
  in
  let main full only no_micro micro_only csv =
    if micro_only then bechamel_suite ()
    else run_experiments ~full ~only ~micro:(not no_micro) ~csv
  in
  let term = Term.(const main $ full $ only $ no_micro $ micro_only $ csv) in
  let info =
    Cmd.info "nscq-bench"
      ~doc:"Reproduce the tables and figures of Ibrahim & Fletcher, EDBT 2013."
  in
  exit (Cmd.eval (Cmd.v info term))
