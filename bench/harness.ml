(* Shared plumbing for the figure experiments: collection builders over a
   choice of backend, workload timing, and table printing. *)

(* Console output is this program's purpose, and executables have no
   interface files: R2/R5 are opted out explicitly rather than scoped
   away, so the rest of the rules (R1 above all) still apply. *)
[@@@lint.allow io mli]

module E = Containment.Engine
module IF = Invfile.Inverted_file

type backend = Mem | Hash

let scratch_dir = Filename.concat (Filename.get_temp_dir_name ()) "nscq_bench"

let () = try Unix.mkdir scratch_dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()

let scratch_path name = Filename.concat scratch_dir name

let remove_if_exists path = try Sys.remove path with Sys_error _ -> ()

(* Builds an indexed collection from a value sequence. The on-disk hash
   store mirrors the paper's Tokyo Cabinet setting (no caching). *)
let build ?(backend = Hash) ~name (values : Nested.Value.t Seq.t) =
  let store, cleanup =
    match backend with
    | Mem -> (Storage.Mem_store.create (), fun () -> ())
    | Hash ->
      let path = scratch_path (name ^ ".tch") in
      remove_if_exists path;
      (Storage.Hash_store.create ~buckets:(1 lsl 16) path, fun () -> remove_if_exists path)
  in
  let builder = Invfile.Builder.create store in
  Seq.iter (fun v -> ignore (Invfile.Builder.add_value builder v)) values;
  let inv = Invfile.Builder.finish builder in
  (inv, fun () -> IF.close inv; cleanup ())

let with_collection ?backend ~name values f =
  let inv, cleanup = build ?backend ~name values in
  Fun.protect ~finally:cleanup (fun () -> f inv)

(* The paper's measurement: elapsed time of sequentially executing the
   whole benchmark workload; repeat, drop min and max, average the rest
   (Sec. 5.2 uses 10 runs and averages the middle 8). *)
let measure_workload ?(repeats = 5) ?(config = E.default) inv queries =
  let times =
    List.init repeats (fun _ ->
        let s = E.run_workload ~config inv queries in
        s.E.elapsed_s)
  in
  let sorted = List.sort Float.compare times in
  let trimmed =
    if repeats >= 3 then List.filteri (fun i _ -> i > 0 && i < repeats - 1) sorted
    else sorted
  in
  1000. *. List.fold_left ( +. ) 0. trimmed /. Float.of_int (List.length trimmed)

(* --- table printing (and optional CSV export for plotting) --- *)

let csv_dir : string option ref = ref None
let current_slug = ref "experiment"

let slugify title =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' -> Char.lowercase_ascii c
      | _ -> '-')
    title
  |> fun s ->
  (* squeeze dashes *)
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      if c <> '-' || (Buffer.length b > 0 && Buffer.nth b (Buffer.length b - 1) <> '-')
      then Buffer.add_char b c)
    s;
  Buffer.contents b

let print_header title explanation =
  current_slug := slugify title;
  Printf.printf "\n=== %s ===\n" title;
  if explanation <> "" then Printf.printf "%s\n" explanation

let write_csv ~columns rows =
  match !csv_dir with
  | None -> ()
  | Some dir ->
    (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
    let path = Filename.concat dir (!current_slug ^ ".csv") in
    let oc = open_out path in
    let quote cell =
      if String.exists (fun c -> c = ',' || c = '"' || c = '\n') cell then
        "\"" ^ String.concat "\"\"" (String.split_on_char '"' cell) ^ "\""
      else cell
    in
    let emit cells = output_string oc (String.concat "," (List.map quote cells) ^ "\n") in
    emit columns;
    List.iter emit rows;
    close_out oc

let print_table ~columns rows =
  write_csv ~columns rows;
  let widths =
    List.mapi
      (fun i c ->
        List.fold_left (fun w row -> max w (String.length (List.nth row i)))
          (String.length c) rows)
      columns
  in
  let print_row cells =
    List.iteri
      (fun i cell -> Printf.printf "%-*s  " (List.nth widths i) cell)
      cells;
    print_newline ()
  in
  print_row columns;
  print_row (List.map (fun w -> String.make w '-') widths);
  List.iter print_row rows

let ms v = Printf.sprintf "%.2f" v
let i = string_of_int

(* Workload queries per the paper: 100 selected records, half distorted. *)
let paper_queries ?(count = 100) inv =
  Datagen.Workload.values (Datagen.Workload.benchmark_queries ~seed:271 ~count inv)
