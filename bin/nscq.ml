(* nscq — nested-set containment queries from the command line.

   Subcommands: generate, build, query, workload, stats, shard, serve, …

     nscq generate --kind wide-zipf --count 10000 -o data.ns
     nscq build -i data.ns -o data.tch
     nscq query -s data.tch '{USA, {UK, {A, motorbike}}}'
     nscq workload -s data.tch --cache 250
     nscq stats -s data.tch
     nscq shard build -i data.ns --shards 4 -o data.manifest
     nscq query -s data.manifest '{USA}'     # routed over the shards *)

(* Console output is this program's purpose, and executables have no
   interface files: R2/R5 are opted out explicitly rather than scoped
   away, so the rest of the rules (R1 above all) still apply. *)
[@@@lint.allow io mli]

open Cmdliner

module E = Containment.Engine
module Sem = Containment.Semantics
module IF = Invfile.Inverted_file
module L = Live.Live_store

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let with_out path f =
  match path with
  | None -> f stdout
  | Some p ->
    let oc = open_out p in
    Fun.protect ~finally:(fun () -> close_out oc) (fun () -> f oc)

(* --- shared arguments --- *)

let store_arg =
  Arg.(
    required
    & opt (some string) None
    & info [ "s"; "store" ] ~docv:"PATH" ~doc:"Path of the collection store.")

let backend_arg =
  Arg.(
    value
    & opt (enum [ ("hash", `Hash); ("btree", `Btree); ("log", `Log) ]) `Hash
    & info [ "backend" ] ~docv:"KIND"
        ~doc:"Storage engine: $(b,hash), $(b,btree), or $(b,log) (crash-safe
              append-only).")

let open_store backend path =
  if not (Sys.file_exists path) then begin
    Printf.eprintf "nscq: store '%s' does not exist\n" path;
    exit 1
  end;
  if Live.Live_store.is_live_dir path then begin
    Printf.eprintf
      "nscq: '%s' is a live store; this command only works on built \
       stores (query/join/trace/stats/check/repair/export/compact and \
       insert/delete/flush handle live stores)\n"
      path;
    exit 1
  end;
  match backend with
  | `Hash -> Storage.Hash_store.open_existing path
  | `Btree -> Storage.Btree_store.open_existing path
  | `Log -> Storage.Log_store.open_existing path

let cache_arg =
  Arg.(
    value
    & opt int 0
    & info [ "cache" ] ~docv:"N"
        ~doc:"Buffer the $(docv) most frequent inverted lists in memory \
              (the paper uses 250; 0 disables).")

let algorithm_arg =
  Arg.(
    value
    & opt
        (enum
           [ ("bottom-up", E.Bottom_up); ("top-down", E.Top_down);
             ("top-down-paper", E.Top_down_paper); ("naive", E.Naive_scan) ])
        E.Bottom_up
    & info [ "algorithm" ] ~docv:"ALG"
        ~doc:"$(b,bottom-up), $(b,top-down), $(b,top-down-paper) (the \
              algorithm exactly as published), or $(b,naive).")

let join_arg =
  let parse s =
    match String.lowercase_ascii s with
    | "containment" | "subset" -> Ok Sem.Containment
    | "equality" -> Ok Sem.Equality
    | "superset" -> Ok Sem.Superset
    | s when String.length s > 8 && String.sub s 0 8 = "overlap=" -> (
      match int_of_string_opt (String.sub s 8 (String.length s - 8)) with
      | Some eps when eps >= 1 -> Ok (Sem.Overlap eps)
      | _ -> Error (`Msg "overlap needs a positive integer, e.g. overlap=2"))
    | s when String.length s > 11 && String.sub s 0 11 = "similarity=" -> (
      match float_of_string_opt (String.sub s 11 (String.length s - 11)) with
      | Some r when r > 0. && r <= 1. -> Ok (Sem.Similarity r)
      | _ -> Error (`Msg "similarity needs a ratio in (0,1], e.g. similarity=0.5"))
    | _ -> Error (`Msg ("unknown join type " ^ s))
  in
  let print ppf j = Sem.pp_join ppf j in
  Arg.(
    value
    & opt (conv (parse, print)) Sem.Containment
    & info [ "join" ] ~docv:"JOIN"
        ~doc:"$(b,containment), $(b,equality), $(b,superset), \
              $(b,overlap=)$(i,ε), or $(b,similarity=)$(i,r).")

let embedding_arg =
  Arg.(
    value
    & opt
        (enum
           [ ("hom", Sem.Hom); ("iso", Sem.Iso); ("homeo", Sem.Homeo);
             ("homeo-full", Sem.Homeo_full) ])
        Sem.Hom
    & info [ "embedding" ] ~docv:"SEM"
        ~doc:"$(b,hom) (default), $(b,iso), or $(b,homeo).")

let anywhere_arg =
  Arg.(
    value & flag
    & info [ "anywhere" ]
        ~doc:"Match the query at any internal node, not only record roots.")

let verify_arg =
  Arg.(
    value & flag
    & info [ "verify" ] ~doc:"Re-check matches with the value-level oracle.")

let wildcards_arg =
  Arg.(
    value & flag
    & info [ "wildcards" ]
        ~doc:"Interpret trailing-* query leaves as atom-prefix patterns
              (containment join only).")

let streamed_arg =
  Arg.(
    value & flag
    & info [ "streamed" ]
        ~doc:"Intersect candidate lists straight from their encoded payloads \
              (blocked I/O; containment join only).")

let spill_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "spill" ] ~docv:"FILE"
        ~doc:"Run the bottom-up stack through an external-memory stack \
              backed by $(docv).")

let partial_arg =
  Arg.(
    value & flag
    & info [ "partial" ]
        ~doc:"Over a shard manifest: answer from the surviving shards (with \
              a warning per failure) instead of failing when a shard is \
              unreachable.")

(* A live store is a directory with a manifest inside; every read and
   admin command detects one by path, exactly as shard manifests are. *)
let open_live ?config dir =
  if not (L.is_live_dir dir) then begin
    Printf.eprintf "nscq: '%s' is not a live store directory\n" dir;
    exit 1
  end;
  match L.open_store ?config dir with
  | t -> t
  | exception (Live.Live_manifest.Corrupt m | Live.Wal.Corrupt m) ->
    Printf.eprintf "nscq: %s: %s (try 'nscq repair')\n" dir m;
    exit 1

let load_manifest path =
  if not (Sys.file_exists path) then begin
    Printf.eprintf "nscq: manifest '%s' does not exist\n" path;
    exit 1
  end;
  match Shard.Manifest.load path with
  | m -> m
  | exception Shard.Manifest.Corrupt msg ->
    Printf.eprintf "nscq: %s: %s\n" path msg;
    exit 1

(* Resolves --host to a numeric address up front so a typo is a one-line
   error, not a silent bind to loopback. *)
let resolve_host host =
  match Unix.inet_addr_of_string host with
  | _ -> host
  | exception Failure _ -> (
    match Unix.gethostbyname host with
    | exception Not_found ->
      Printf.eprintf "nscq: cannot resolve host '%s'\n" host;
      exit 1
    | { Unix.h_addr_list = [||]; _ } ->
      Printf.eprintf "nscq: cannot resolve host '%s'\n" host;
      exit 1
    | he -> Unix.string_of_inet_addr he.Unix.h_addr_list.(0))

let verbose_arg =
  Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Log engine internals to stderr.")

let setup_logging verbose =
  Logs.set_reporter (Logs.format_reporter ());
  Logs.set_level (Some (if verbose then Logs.Debug else Logs.Warning))

let setup_engine inv ~cache =
  if cache > 0 then Containment.Collection.with_static_cache inv ~budget:cache

(* --- generate --- *)

let generate_cmd =
  let kind_arg =
    Arg.(
      value
      & opt
          (enum
             [ ("wide-uniform", `WU); ("wide-zipf", `WZ); ("deep-uniform", `DU);
               ("deep-zipf", `DZ); ("twitter", `TW); ("dblp", `DB) ])
          `WU
      & info [ "kind" ] ~docv:"KIND"
          ~doc:"$(b,wide-uniform), $(b,wide-zipf), $(b,deep-uniform), \
                $(b,deep-zipf) (Table 3), $(b,twitter) (JSON lines), or \
                $(b,dblp) (XML).")
  in
  let count_arg =
    Arg.(value & opt int 1000 & info [ "n"; "count" ] ~docv:"N" ~doc:"Records to generate.")
  in
  let seed_arg = Arg.(value & opt int 42 & info [ "seed" ] ~docv:"S" ~doc:"RNG seed.") in
  let theta_arg =
    Arg.(value & opt float 0.7 & info [ "theta" ] ~docv:"θ" ~doc:"Zipf skew (0 < θ < 1).")
  in
  let labels_arg =
    Arg.(
      value & opt int 100_000
      & info [ "labels" ] ~docv:"N"
          ~doc:"Leaf-label domain size (the paper uses 10,000,000).")
  in
  let out_arg =
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Output file (default stdout).")
  in
  let run kind count seed theta labels out =
    with_out out @@ fun oc ->
    let synthetic shape dist =
      let g =
        Datagen.Synthetic.make ~seed
          ~pool:(Datagen.Label_pool.create labels)
          ~params:(Datagen.Synthetic.params_of_shape shape)
          dist
      in
      Seq.iter
        (fun v -> output_string oc (Nested.Syntax.to_string v ^ "\n"))
        (Datagen.Synthetic.seq g count)
    in
    match kind with
    | `WU -> synthetic Datagen.Synthetic.Wide Datagen.Synthetic.Uniform
    | `WZ -> synthetic Datagen.Synthetic.Wide (Datagen.Synthetic.Zipfian theta)
    | `DU -> synthetic Datagen.Synthetic.Deep Datagen.Synthetic.Uniform
    | `DZ -> synthetic Datagen.Synthetic.Deep (Datagen.Synthetic.Zipfian theta)
    | `TW ->
      let g = Datagen.Twitter_sim.make ~seed ~theta () in
      for _ = 1 to count do
        output_string oc (Textformats.Json.to_string (Datagen.Twitter_sim.tweet_json g));
        output_char oc '\n'
      done
    | `DB ->
      let g = Datagen.Dblp_sim.make ~seed ~theta () in
      for _ = 1 to count do
        output_string oc (Textformats.Xml.to_string (Datagen.Dblp_sim.article_xml g));
        output_char oc '\n'
      done
  in
  Cmd.v
    (Cmd.info "generate" ~doc:"Generate a synthetic collection (Sec. 5.1).")
    Term.(const run $ kind_arg $ count_arg $ seed_arg $ theta_arg $ labels_arg $ out_arg)

(* --- build --- *)

let input_arg =
  Arg.(
    required
    & opt (some file) None
    & info [ "i"; "input" ] ~docv:"FILE"
        ~doc:"Input collection: nested-set literals, JSON lines, or XML \
              records (one per line).")

let format_arg =
  Arg.(
    value
    & opt (enum [ ("nested", `Nested); ("json", `Json); ("xml", `Xml) ]) `Nested
    & info [ "format" ] ~docv:"FMT" ~doc:"$(b,nested), $(b,json), or $(b,xml).")

let tokenize_arg =
  Arg.(value & flag & info [ "tokenize" ] ~doc:"Tokenize XML text into word atoms.")

let recfmt_arg =
  Arg.(
    value
    & opt (enum [ ("syntax", `Syntax); ("binary", `Binary) ]) `Syntax
    & info [ "record-format" ] ~docv:"FMT"
        ~doc:"Stored-record encoding: $(b,syntax) (readable) or $(b,binary)
              (dictionary-coded, ~3x smaller).")

let codec_arg =
  Arg.(
    value
    & opt
        (enum
           [
             ("blocked", Invfile.Plist.Blocked);
             ("varint", Invfile.Plist.Varint);
             ("bitpacked", Invfile.Plist.Bitpacked);
           ])
        Invfile.Plist.Blocked
    & info [ "codec" ] ~docv:"CODEC"
        ~doc:"Postings payload format: $(b,blocked) (block-partitioned
              varint/bitmap with a skip directory, the default),
              $(b,varint) (plain delta/varint) or $(b,bitpacked)
              (columnar, not streamable).")

let parse_collection ~format ~tokenize contents =
  match format with
  | `Nested -> Nested.Syntax.parse_many contents
  | `Json ->
    List.map Textformats.Json_nested.of_json (Textformats.Json.parse_many contents)
  | `Xml ->
    List.map (Textformats.Xml_nested.of_xml ~tokenize)
      (Textformats.Xml.parse_many contents)

let build_cmd =
  let output_arg =
    Arg.(
      required
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"PATH" ~doc:"Store file to create.")
  in
  let buckets_arg =
    Arg.(value & opt int 65536 & info [ "buckets" ] ~docv:"N" ~doc:"Hash store buckets.")
  in
  let live_arg =
    Arg.(
      value & flag
      & info [ "live" ]
          ~doc:"Build a live (mutable) store: $(b,--output) names a \
                directory holding WAL-protected segments; records can then \
                be inserted and deleted online ($(b,nscq insert/delete)).")
  in
  let run input format tokenize output backend buckets record_format codec live
      =
    let values = parse_collection ~format ~tokenize (read_file input) in
    if live then begin
      let t =
        try L.create output
        with Invalid_argument m ->
          Printf.eprintf "nscq: %s\n" m;
          exit 1
      in
      Fun.protect ~finally:(fun () -> L.close t) @@ fun () ->
      List.iter (fun v -> ignore (L.insert t v)) values;
      ignore (L.flush t);
      Printf.printf "ingested %d record(s) into live store %s (%d segment(s))\n"
        (L.live_records t) output (L.segment_count t)
    end
    else
    let store =
      match backend with
      | `Hash -> Storage.Hash_store.create ~buckets output
      | `Btree -> Storage.Btree_store.create output
      | `Log -> Storage.Log_store.create output
    in
    let builder = Invfile.Builder.create ~record_format ~codec store in
    List.iter (fun v -> ignore (Invfile.Builder.add_value builder v)) values;
    let inv = Invfile.Builder.finish builder in
    Printf.printf "indexed %d records, %d atoms, %d internal nodes into %s\n"
      (IF.record_count inv) (IF.atom_count inv) (IF.node_count inv) output;
    IF.close inv
  in
  Cmd.v
    (Cmd.info "build" ~doc:"Build the inverted file for a collection.")
    Term.(
      const run $ input_arg $ format_arg $ tokenize_arg $ output_arg $ backend_arg
      $ buckets_arg $ recfmt_arg $ codec_arg $ live_arg)

(* --- query --- *)

(* Remote mode: ship the query text to a running `nscq serve` over the
   wire protocol instead of opening the store in-process. *)
let with_remote_client ~connect f =
  let host, port =
    match String.rindex_opt connect ':' with
    | Some i -> (
      let host = String.sub connect 0 i in
      let port_s = String.sub connect (i + 1) (String.length connect - i - 1) in
      match int_of_string_opt port_s with
      | Some p when p > 0 && p < 65536 -> ((if host = "" then "127.0.0.1" else host), p)
      | _ ->
        prerr_endline "nscq: --connect expects HOST:PORT";
        exit 1)
    | None ->
      prerr_endline "nscq: --connect expects HOST:PORT";
      exit 1
  in
  let client =
    try Server.Client.connect ~host ~port ()
    with
    | Unix.Unix_error (e, _, _) ->
      Printf.eprintf "nscq: cannot connect to %s:%d: %s\n" host port
        (Unix.error_message e);
      exit 1
    | Server.Client.Handshake_failed m ->
      Printf.eprintf "nscq: handshake with %s:%d failed: %s\n" host port m;
      exit 1
  in
  Fun.protect ~finally:(fun () -> Server.Client.close client) @@ fun () ->
  f client

let run_remote_query ~connect ~deadline_ms ~limit qs =
  with_remote_client ~connect @@ fun client ->
  match Server.Client.query client ~deadline_ms qs with
  | Ok payload ->
    if String.length (String.trim qs) > 0 && (String.trim qs).[0] = '{' then begin
      (* literal query: the payload is the matching record ids *)
      let ids =
        if payload = "" then []
        else String.split_on_char ' ' payload
      in
      Printf.printf "%d matching record(s)\n" (List.length ids);
      List.iteri (fun i id -> if i < limit then Printf.printf "  #%s\n" id) ids;
      if List.length ids > limit then
        Printf.printf "  … and %d more (raise --limit)\n" (List.length ids - limit)
    end
    else begin
      print_string payload;
      let n = String.length payload in
      if n > 0 && payload.[n - 1] <> '\n' then print_newline ()
    end
  | Error (code, message) ->
    Format.eprintf "nscq: server refused: %a: %s@." Server.Wire.pp_error_code
      code message;
    exit 1

(* Sharded mode: scatter-gather over a manifest's shards instead of one
   store handle. *)
let run_sharded_query ~manifest_path ~engine ~partial ~deadline_ms ~cache
    ~limit qs =
  let m = load_manifest manifest_path in
  let config =
    {
      Shard.Router.default_config with
      Shard.Router.engine;
      fail_mode = (if partial then Shard.Router.Partial else Shard.Router.Fail_fast);
      remote_deadline_ms = deadline_ms;
      cache_budget = cache;
    }
  in
  let r = Shard.Router.open_manifest ~config m in
  Fun.protect ~finally:(fun () -> Shard.Router.close r) @@ fun () ->
  let q = Nested.Syntax.of_string qs in
  let t0 = Unix.gettimeofday () in
  match Shard.Router.query r q with
  | exception Shard.Router.Shard_failed (i, reason) ->
    Printf.eprintf
      "nscq: shard %d failed: %s (use --partial for a degraded answer)\n" i
      reason;
    exit 1
  | o ->
    let dt = 1000. *. (Unix.gettimeofday () -. t0) in
    List.iter
      (fun (i, reason) ->
        Printf.eprintf "nscq: warning: shard %d dropped from answer: %s\n" i
          reason)
      o.Shard.Router.warnings;
    Printf.printf
      "%d matching record(s) in %.3f ms (%d shard(s) queried, %d pruned)\n"
      (List.length o.Shard.Router.records)
      dt o.Shard.Router.shards_queried o.Shard.Router.shards_skipped;
    List.iteri
      (fun i id ->
        if i < limit then
          match Shard.Router.record_value r id with
          | Some v -> Format.printf "  #%d: %a@." id Nested.Value.pp v
          | None -> Printf.printf "  #%d (remote shard)\n" id)
      o.Shard.Router.records;
    if List.length o.Shard.Router.records > limit then
      Printf.printf "  … and %d more (raise --limit)\n"
        (List.length o.Shard.Router.records - limit)

(* Live mode: one store directory, queried across its sealed segments
   and memtable — same semantics as a from-scratch rebuild. *)
let run_live_query ~config ~limit store qs =
  let t = open_live store in
  Fun.protect ~finally:(fun () -> L.close t) @@ fun () ->
  let q = Nested.Syntax.of_string qs in
  let t0 = Unix.gettimeofday () in
  let records = L.query ~config t q in
  let dt = 1000. *. (Unix.gettimeofday () -. t0) in
  Printf.printf "%d matching record(s) in %.3f ms (%d segment(s) + memtable)\n"
    (List.length records) dt (L.segment_count t);
  List.iteri
    (fun i id ->
      if i < limit then
        match L.record_value t id with
        | Some v -> Format.printf "  #%d: %a@." id Nested.Value.pp v
        | None -> Printf.printf "  #%d\n" id)
    records;
  if List.length records > limit then
    Printf.printf "  … and %d more (raise --limit)\n"
      (List.length records - limit)

let query_cmd =
  let query_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"QUERY" ~doc:"Query in nested-set literal syntax.")
  in
  let limit_arg =
    Arg.(value & opt int 10 & info [ "limit" ] ~docv:"N" ~doc:"Print at most $(docv) results.")
  in
  let explain_arg =
    Arg.(value & flag & info [ "explain" ] ~doc:"Print per-node candidate statistics.")
  in
  let store_opt_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "s"; "store" ] ~docv:"PATH"
          ~doc:"Path of the collection store (omit with $(b,--connect)).")
  in
  let connect_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "connect" ] ~docv:"HOST:PORT"
          ~doc:"Send the query to a running $(b,nscq serve) instead of \
                opening a store in-process.")
  in
  let deadline_arg =
    Arg.(
      value & opt int 0
      & info [ "deadline-ms" ] ~docv:"MS"
          ~doc:"Per-request deadline for $(b,--connect) (0 = none).")
  in
  let run store connect deadline_ms backend cache algorithm join embedding anywhere
      verify streamed spill wildcards partial explain verbose qs limit =
    setup_logging verbose;
    let config =
      {
        E.algorithm;
        join;
        embedding;
        scope = (if anywhere then E.Anywhere else E.Roots);
        verify;
        filter_index = None;
        td_order = Containment.Top_down.Query_order;
        streamed;
        spill_to = spill;
        preflight = false;
        wildcards;
        minimize = false;
      }
    in
    match connect with
    | Some connect -> run_remote_query ~connect ~deadline_ms ~limit qs
    | None ->
    let store =
      match store with
      | Some s -> s
      | None ->
        prerr_endline "nscq: either --store or --connect is required";
        exit 1
    in
    if Shard.Manifest.is_manifest_file store then
      run_sharded_query ~manifest_path:store ~engine:config ~partial
        ~deadline_ms ~cache ~limit qs
    else if L.is_live_dir store then begin
      run_live_query ~config ~limit store qs;
      if explain then begin
        let t = open_live store in
        Fun.protect ~finally:(fun () -> L.close t) @@ fun () ->
        Printf.printf "\nplan:\n";
        print_string (Obs.Explain.render (L.explain ~config t (Nested.Syntax.of_string qs)))
      end
    end
    else begin
    let inv = IF.open_store (open_store backend store) in
    Fun.protect ~finally:(fun () -> IF.close inv) @@ fun () ->
    setup_engine inv ~cache;
    let q = Nested.Syntax.of_string qs in
    let t0 = Unix.gettimeofday () in
    let r = E.query ~config inv q in
    let dt = 1000. *. (Unix.gettimeofday () -. t0) in
    Printf.printf "%d matching record(s) in %.3f ms\n" (List.length r.E.records) dt;
    List.iteri
      (fun i id ->
        if i < limit then
          Format.printf "  #%d: %a@." id Nested.Value.pp (IF.record_value inv id))
      r.E.records;
    if List.length r.E.records > limit then
      Printf.printf "  … and %d more (raise --limit)\n" (List.length r.E.records - limit);
    if explain then Format.printf "@.plan:@.%a" E.pp_plan (E.explain ~config inv q)
    end
  in
  Cmd.v
    (Cmd.info "query"
       ~doc:"Run one containment query against a store, a shard manifest, \
             or a running server (with --connect).")
    Term.(
      const run $ store_opt_arg $ connect_arg $ deadline_arg $ backend_arg
      $ cache_arg $ algorithm_arg $ join_arg $ embedding_arg $ anywhere_arg
      $ verify_arg $ streamed_arg $ spill_arg $ wildcards_arg $ partial_arg
      $ explain_arg $ verbose_arg $ query_arg $ limit_arg)

(* --- join --- *)

(* The three execution modes of `nscq query`, for a whole outer
   collection at once: a local store runs the prefix-tree join engine
   in-process, a manifest scatter-gathers through the router, and
   --connect ships the outer collection under the wire Join verb. All
   three parse the outer file with the server's own line parser so a
   collection accepted locally is accepted remotely, byte for byte. *)
let join_cmd =
  let queries_arg =
    Arg.(
      required
      & opt (some file) None
      & info [ "q"; "queries" ] ~docv:"FILE"
          ~doc:"Outer collection: one nested-set literal per line.")
  in
  let store_opt_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "s"; "store" ] ~docv:"PATH"
          ~doc:"Path of the inner collection store or shard manifest (omit \
                with $(b,--connect)).")
  in
  let connect_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "connect" ] ~docv:"HOST:PORT"
          ~doc:"Send the join to a running $(b,nscq serve) instead of \
                opening a store in-process.")
  in
  let deadline_arg =
    Arg.(
      value & opt int 0
      & info [ "deadline-ms" ] ~docv:"MS"
          ~doc:"Per-request deadline for $(b,--connect) and remote shards \
                (0 = none).")
  in
  let limit_arg =
    Arg.(
      value & opt int 20
      & info [ "limit" ] ~docv:"N"
          ~doc:"Print at most $(docv) outer-query result lines.")
  in
  let max_depth_arg =
    Arg.(
      value & opt int Join.Engine.default.Join.Engine.max_depth
      & info [ "max-depth" ] ~docv:"D"
          ~doc:"Adaptive depth cap: stop expanding prefix-tree nodes below \
                depth $(docv) (0 = unbounded).")
  in
  let cut_candidates_arg =
    Arg.(
      value & opt int Join.Engine.default.Join.Engine.cut_candidates
      & info [ "cut-candidates" ] ~docv:"N"
          ~doc:"Stop refining a prefix-tree node once its candidate list \
                has at most $(docv) records, finishing with per-record \
                verification.")
  in
  let cut_fanout_arg =
    Arg.(
      value & opt int Join.Engine.default.Join.Engine.cut_fanout
      & info [ "cut-fanout" ] ~docv:"N"
          ~doc:"Stop refining a prefix-tree node shared by fewer than \
                $(docv) outer queries.")
  in
  let print_groups ~limit groups =
    List.iteri
      (fun qi ids ->
        if qi < limit then
          Printf.printf "  q%d: %s\n" qi
            (if ids = [] then "-"
             else String.concat " " (List.map string_of_int ids)))
      groups;
    let n = List.length groups in
    if n > limit then
      Printf.printf "  … and %d more outer quer%s (raise --limit)\n" (n - limit)
        (if n - limit = 1 then "y" else "ies")
  in
  let run store connect deadline_ms backend cache algorithm join_sem embedding
      anywhere verify wildcards partial max_depth cut_candidates cut_fanout
      verbose queries limit =
    setup_logging verbose;
    let engine =
      {
        E.default with
        E.algorithm;
        join = join_sem;
        embedding;
        scope = (if anywhere then E.Anywhere else E.Roots);
        verify;
        wildcards;
      }
    in
    let text = read_file queries in
    let values =
      match Server.Batcher.parse_join text with
      | Ok (Server.Batcher.Join values) -> values
      | Ok _ ->
        prerr_endline "nscq: internal: unexpected parse outcome";
        exit 1
      | Error message ->
        Printf.eprintf "nscq: %s: %s\n" queries message;
        exit 1
    in
    let n_outer = List.length values in
    match connect with
    | Some connect -> (
      with_remote_client ~connect @@ fun client ->
      let t0 = Unix.gettimeofday () in
      match Server.Client.join client ~deadline_ms text with
      | Ok payload -> (
        let dt = 1000. *. (Unix.gettimeofday () -. t0) in
        match Server.Wire.split_join payload with
        | Ok groups ->
          Printf.printf "%d pair(s) across %d outer quer%s in %.3f ms\n"
            (List.fold_left (fun acc g -> acc + List.length g) 0 groups)
            n_outer
            (if n_outer = 1 then "y" else "ies")
            dt;
          print_groups ~limit groups
        | Error m ->
          Printf.eprintf "nscq: malformed join payload: %s\n" m;
          exit 1)
      | Error (code, message) ->
        Format.eprintf "nscq: server refused: %a: %s@." Server.Wire.pp_error_code
          code message;
        exit 1)
    | None -> (
      let store =
        match store with
        | Some s -> s
        | None ->
          prerr_endline "nscq: either --store or --connect is required";
          exit 1
      in
      if Shard.Manifest.is_manifest_file store then begin
        let m = load_manifest store in
        let config =
          {
            Shard.Router.default_config with
            Shard.Router.engine;
            fail_mode =
              (if partial then Shard.Router.Partial else Shard.Router.Fail_fast);
            remote_deadline_ms = deadline_ms;
            cache_budget = cache;
          }
        in
        let r = Shard.Router.open_manifest ~config m in
        Fun.protect ~finally:(fun () -> Shard.Router.close r) @@ fun () ->
        let t0 = Unix.gettimeofday () in
        match Shard.Router.join r values with
        | exception Shard.Router.Shard_failed (i, reason) ->
          Printf.eprintf
            "nscq: shard %d failed: %s (use --partial for a degraded answer)\n"
            i reason;
          exit 1
        | o ->
          let dt = 1000. *. (Unix.gettimeofday () -. t0) in
          List.iter
            (fun (i, reason) ->
              Printf.eprintf "nscq: warning: shard %d dropped from join: %s\n" i
                reason)
            o.Shard.Router.join_warnings;
          Printf.printf
            "%d pair(s) across %d outer quer%s in %.3f ms (%d shard(s) \
             queried, %d pruned)\n"
            (List.length o.Shard.Router.pairs)
            n_outer
            (if n_outer = 1 then "y" else "ies")
            dt o.Shard.Router.join_shards_queried
            o.Shard.Router.join_shards_skipped;
          print_groups ~limit
            (Join.Engine.group ~outer:n_outer o.Shard.Router.pairs)
      end
      else if L.is_live_dir store then begin
        let t = open_live store in
        Fun.protect ~finally:(fun () -> L.close t) @@ fun () ->
        let config =
          { Join.Engine.engine; max_depth; cut_candidates; cut_fanout }
        in
        let t0 = Unix.gettimeofday () in
        let pairs = L.join ~config t values in
        let dt = 1000. *. (Unix.gettimeofday () -. t0) in
        Printf.printf
          "%d pair(s) across %d outer quer%s in %.3f ms (%d segment(s) + \
           memtable)\n"
          (List.length pairs) n_outer
          (if n_outer = 1 then "y" else "ies")
          dt (L.segment_count t);
        print_groups ~limit (Join.Engine.group ~outer:n_outer pairs)
      end
      else begin
        let inv = IF.open_store (open_store backend store) in
        Fun.protect ~finally:(fun () -> IF.close inv) @@ fun () ->
        setup_engine inv ~cache;
        let config =
          { Join.Engine.engine; max_depth; cut_candidates; cut_fanout }
        in
        let t0 = Unix.gettimeofday () in
        let r = Join.Engine.join ~config inv values in
        let dt = 1000. *. (Unix.gettimeofday () -. t0) in
        let s = r.Join.Engine.stats in
        Printf.printf "%d pair(s) across %d outer quer%s in %.3f ms\n"
          s.Join.Engine.pairs n_outer
          (if n_outer = 1 then "y" else "ies")
          dt;
        Printf.printf
          "  prefix tree: %d node(s), %d expanded, %d intersection(s) shared \
           / %d recomputed, %d adaptive cut(s), %d candidate(s) verified, %d \
           preflight-rejected, %d fallback quer%s\n"
          s.Join.Engine.tree_nodes s.Join.Engine.nodes_expanded
          s.Join.Engine.intersections_shared
          s.Join.Engine.intersections_recomputed s.Join.Engine.limit_cuts
          s.Join.Engine.candidates_checked s.Join.Engine.preflight_rejected
          s.Join.Engine.fallback
          (if s.Join.Engine.fallback = 1 then "y" else "ies");
        print_groups ~limit (Join.Engine.group ~outer:n_outer r.Join.Engine.pairs)
      end)
  in
  Cmd.v
    (Cmd.info "join"
       ~doc:"Set-containment join: match every query of an outer collection \
             against a store, a shard manifest, or a running server \
             (with --connect) in one pass over a shared prefix tree.")
    Term.(
      const run $ store_opt_arg $ connect_arg $ deadline_arg $ backend_arg
      $ cache_arg $ algorithm_arg $ join_arg $ embedding_arg $ anywhere_arg
      $ verify_arg $ wildcards_arg $ partial_arg $ max_depth_arg
      $ cut_candidates_arg $ cut_fanout_arg $ verbose_arg $ queries_arg
      $ limit_arg)

(* --- trace --- *)

let print_id_count payload =
  let ids =
    if payload = "" then []
    else List.filter (fun s -> s <> "") (String.split_on_char ' ' payload)
  in
  Printf.printf "%d matching record(s)\n" (List.length ids)

let trace_cmd =
  let query_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"QUERY" ~doc:"Query in nested-set literal syntax.")
  in
  let store_opt_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "s"; "store" ] ~docv:"PATH"
          ~doc:"Path of the collection store or shard manifest (omit with \
                $(b,--connect)).")
  in
  let connect_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "connect" ] ~docv:"HOST:PORT"
          ~doc:"Trace the query on a running $(b,nscq serve): the server \
                executes it under the wire $(b,Trace) verb and ships its \
                span tree back.")
  in
  let deadline_arg =
    Arg.(
      value & opt int 0
      & info [ "deadline-ms" ] ~docv:"MS"
          ~doc:"Per-request deadline for $(b,--connect) (0 = none).")
  in
  let run store connect deadline_ms backend cache algorithm join embedding
      anywhere verify streamed wildcards partial verbose qs =
    setup_logging verbose;
    let config =
      {
        E.default with
        E.algorithm;
        join;
        embedding;
        scope = (if anywhere then E.Anywhere else E.Roots);
        verify;
        streamed;
        wildcards;
      }
    in
    let print_span id span =
      Printf.printf "trace %08x\n" id;
      print_string (Obs.Trace.render span)
    in
    match connect with
    | Some connect -> (
      with_remote_client ~connect @@ fun client ->
      match Server.Client.trace client ~deadline_ms qs with
      | Ok payload -> (
        let result, spans = Server.Wire.split_traced payload in
        print_id_count result;
        match Obs.Trace.of_wire spans with
        | Some (id, span) -> print_span id span
        | None ->
          prerr_endline "nscq: the server's reply carried no span tree";
          exit 1)
      | Error (code, message) ->
        Format.eprintf "nscq: server refused: %a: %s@."
          Server.Wire.pp_error_code code message;
        exit 1)
    | None -> (
      let store =
        match store with
        | Some s -> s
        | None ->
          prerr_endline "nscq: either --store or --connect is required";
          exit 1
      in
      let q = Nested.Syntax.of_string qs in
      let trace = Obs.Trace.create "query" in
      if Shard.Manifest.is_manifest_file store then begin
        let m = load_manifest store in
        let rconfig =
          {
            Shard.Router.default_config with
            Shard.Router.engine = config;
            fail_mode =
              (if partial then Shard.Router.Partial else Shard.Router.Fail_fast);
            remote_deadline_ms = deadline_ms;
            cache_budget = cache;
          }
        in
        let r = Shard.Router.open_manifest ~config:rconfig m in
        Fun.protect ~finally:(fun () -> Shard.Router.close r) @@ fun () ->
        match Shard.Router.query ~trace r q with
        | exception Shard.Router.Shard_failed (i, reason) ->
          Printf.eprintf
            "nscq: shard %d failed: %s (use --partial for a degraded answer)\n"
            i reason;
          exit 1
        | o ->
          List.iter
            (fun (i, reason) ->
              Printf.eprintf "nscq: warning: shard %d dropped from answer: %s\n"
                i reason)
            o.Shard.Router.warnings;
          Printf.printf "%d matching record(s)\n"
            (List.length o.Shard.Router.records);
          print_span (Obs.Trace.id trace) (Obs.Trace.finish trace)
      end
      else if L.is_live_dir store then begin
        let t = open_live store in
        Fun.protect ~finally:(fun () -> L.close t) @@ fun () ->
        let records = L.query ~config ~trace t q in
        Printf.printf "%d matching record(s)\n" (List.length records);
        print_span (Obs.Trace.id trace) (Obs.Trace.finish trace)
      end
      else begin
        let inv = IF.open_store (open_store backend store) in
        Fun.protect ~finally:(fun () -> IF.close inv) @@ fun () ->
        setup_engine inv ~cache;
        let r = E.query ~config ~trace inv q in
        Printf.printf "%d matching record(s)\n" (List.length r.E.records);
        print_span (Obs.Trace.id trace) (Obs.Trace.finish trace)
      end)
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:"Run one containment query and print its span tree — per-phase \
             timings (minimize, prefilter, retrieval per atom, merge, \
             verify) with I/O deltas, per shard over a manifest, and \
             server-side with --connect.")
    Term.(
      const run $ store_opt_arg $ connect_arg $ deadline_arg $ backend_arg
      $ cache_arg $ algorithm_arg $ join_arg $ embedding_arg $ anywhere_arg
      $ verify_arg $ streamed_arg $ wildcards_arg $ partial_arg $ verbose_arg
      $ query_arg)

(* --- explain --- *)

(* Plan-and-profile: unlike `trace` (wall-clock spans), `explain` answers
   the planner questions — atom order with posting stats, estimated vs
   actual candidates per phase — against any execution target: a plain
   store, a live directory (per-segment sub-plans), a shard manifest
   (per-shard sub-plans), or a running server over the wire Explain
   verb. *)
let explain_cmd =
  let query_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"QUERY" ~doc:"Query in nested-set literal syntax.")
  in
  let store_opt_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "s"; "store" ] ~docv:"PATH"
          ~doc:"Path of the collection store, live directory or shard \
                manifest (omit with $(b,--connect)).")
  in
  let connect_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "connect" ] ~docv:"HOST:PORT"
          ~doc:"Explain on a running $(b,nscq serve): the server plans and \
                profiles under the wire $(b,Explain) verb and ships the \
                plan back.")
  in
  let deadline_arg =
    Arg.(
      value & opt int 0
      & info [ "deadline-ms" ] ~docv:"MS"
          ~doc:"Per-request deadline for $(b,--connect) (0 = none).")
  in
  let json_arg =
    Arg.(
      value & flag
      & info [ "json" ] ~doc:"Emit the plan as JSON instead of text.")
  in
  let run store connect deadline_ms backend cache algorithm join embedding
      anywhere verify streamed wildcards partial json verbose qs =
    setup_logging verbose;
    let config =
      {
        E.default with
        E.algorithm;
        join;
        embedding;
        scope = (if anywhere then E.Anywhere else E.Roots);
        verify;
        streamed;
        wildcards;
      }
    in
    let print p =
      if json then print_endline (Obs.Explain.to_json p)
      else print_string (Obs.Explain.render p)
    in
    match connect with
    | Some connect -> (
      with_remote_client ~connect @@ fun client ->
      match Server.Client.explain client ~deadline_ms qs with
      | Ok payload -> (
        match Obs.Explain.of_wire payload with
        | Some p -> print p
        | None ->
          prerr_endline "nscq: the server's reply carried no plan";
          exit 1)
      | Error (code, message) ->
        Format.eprintf "nscq: server refused: %a: %s@."
          Server.Wire.pp_error_code code message;
        exit 1)
    | None -> (
      let store =
        match store with
        | Some s -> s
        | None ->
          prerr_endline "nscq: either --store or --connect is required";
          exit 1
      in
      let q = Nested.Syntax.of_string qs in
      if Shard.Manifest.is_manifest_file store then begin
        let m = load_manifest store in
        let rconfig =
          {
            Shard.Router.default_config with
            Shard.Router.engine = config;
            fail_mode =
              (if partial then Shard.Router.Partial else Shard.Router.Fail_fast);
            remote_deadline_ms = deadline_ms;
            cache_budget = cache;
          }
        in
        let r = Shard.Router.open_manifest ~config:rconfig m in
        Fun.protect ~finally:(fun () -> Shard.Router.close r) @@ fun () ->
        print (Shard.Router.explain r q)
      end
      else if L.is_live_dir store then begin
        let t = open_live store in
        Fun.protect ~finally:(fun () -> L.close t) @@ fun () ->
        print (L.explain ~config t q)
      end
      else begin
        let inv = IF.open_store (open_store backend store) in
        Fun.protect ~finally:(fun () -> IF.close inv) @@ fun () ->
        setup_engine inv ~cache;
        print (E.explain_profile ~config inv q)
      end)
  in
  Cmd.v
    (Cmd.info "explain"
       ~doc:"Plan and profile one containment query: the planned atom \
             order with posting-list stats, and estimated vs actual \
             candidate counts per phase — per segment over a live store, \
             per shard over a manifest, server-side with --connect.")
    Term.(
      const run $ store_opt_arg $ connect_arg $ deadline_arg $ backend_arg
      $ cache_arg $ algorithm_arg $ join_arg $ embedding_arg $ anywhere_arg
      $ verify_arg $ streamed_arg $ wildcards_arg $ partial_arg $ json_arg
      $ verbose_arg $ query_arg)

(* --- flight --- *)

(* Decode a flight-recorder dump — written by `nscq serve` on SIGUSR1 or
   automatically next to a slow-query line — into one merged timeline. *)
let flight_cmd =
  let dump_cmd =
    let file_arg =
      Arg.(
        required
        & pos 0 (some string) None
        & info [] ~docv:"FILE"
            ~doc:"A flight-recorder dump ($(b,nscq serve --flight) path; \
                  written on SIGUSR1 or on slow queries).")
    in
    let json_arg =
      Arg.(
        value & flag
        & info [ "json" ] ~doc:"Emit the timeline as JSON instead of text.")
    in
    let run json file =
      match Obs.Recorder.read_dump file with
      | names, events ->
        if json then print_endline (Obs.Recorder.render_json ~names events)
        else print_string (Obs.Recorder.render ~names events)
      | exception Sys_error m ->
        Printf.eprintf "nscq: cannot read %s: %s\n" file m;
        exit 1
      | exception Obs.Recorder.Corrupt m ->
        Printf.eprintf "nscq: corrupt flight dump %s: %s\n" file m;
        exit 1
    in
    Cmd.v
      (Cmd.info "dump"
         ~doc:"Decode a flight-recorder dump file into one timeline \
               merged across the server's worker domains.")
      Term.(const run $ json_arg $ file_arg)
  in
  Cmd.group
    (Cmd.info "flight"
       ~doc:"Inspect the always-on flight recorder: decode the binary \
             event-ring dumps a server writes on SIGUSR1 or alongside \
             slow-query log lines.")
    [ dump_cmd ]

(* --- workload --- *)

let workload_cmd =
  let count_arg =
    Arg.(value & opt int 100 & info [ "n"; "count" ] ~docv:"N" ~doc:"Workload size (paper: 100).")
  in
  let seed_arg = Arg.(value & opt int 271 & info [ "seed" ] ~docv:"S" ~doc:"Selection seed.") in
  let run store backend cache algorithm count seed =
    let inv = IF.open_store (open_store backend store) in
    Fun.protect ~finally:(fun () -> IF.close inv) @@ fun () ->
    setup_engine inv ~cache;
    let queries =
      Datagen.Workload.values (Datagen.Workload.benchmark_queries ~seed ~count inv)
    in
    let stats = E.run_workload ~config:{ E.default with E.algorithm } inv queries in
    Format.printf "%a@." E.pp_workload_stats stats
  in
  Cmd.v
    (Cmd.info "workload"
       ~doc:"Time the paper's benchmark workload (Sec. 5.1) against a store.")
    Term.(const run $ store_arg $ backend_arg $ cache_arg $ algorithm_arg $ count_arg $ seed_arg)

(* --- check (integrity) --- *)

let check_cmd =
  let run store backend =
    if L.is_live_dir store then begin
      let t = open_live store in
      Fun.protect ~finally:(fun () -> L.close t) @@ fun () ->
      match L.verify t with
      | [] ->
        Printf.printf
          "ok: %d live record(s) across %d segment(s) + memtable, %d \
           tombstone(s) — consistent\n"
          (L.live_records t) (L.segment_count t) (L.tombstone_count t)
      | problems ->
        List.iteri
          (fun i (what, detail) ->
            if i < 20 then Printf.printf "PROBLEM %s: %s\n" what detail
            else if i = 20 then
              Printf.printf "... (%d more)\n" (List.length problems - 20))
          problems;
        Printf.printf
          "%d problem(s); run 'nscq repair' to rebuild the damaged segments\n"
          (List.length problems);
        exit 1
    end
    else
    let kv = open_store backend store in
    let inv = IF.open_store ~lenient:true kv in
    Fun.protect ~finally:(fun () -> IF.close inv) @@ fun () ->
    let recoveries = Storage.Io_stats.recoveries kv.Storage.Kv.stats in
    if recoveries > 0 then
      Printf.printf "note: %d recovery action(s) ran while opening the store\n"
        recoveries;
    match E.verify_store inv with
    | [] ->
      Printf.printf "ok: %d records, %d atoms, %d nodes — consistent\n"
        (IF.record_count inv) (IF.atom_count inv) (IF.node_count inv)
    | problems ->
      List.iteri
        (fun i p ->
          if i < 20 then
            Format.printf "PROBLEM %a@." Invfile.Integrity.pp_problem p
          else if i = 20 then
            Printf.printf "... (%d more)\n" (List.length problems - 20))
        problems;
      Printf.printf "%d problem(s); run 'nscq repair' to rebuild the index from the records\n"
        (List.length problems);
      exit 1
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:"Verify a store's integrity (index vs stored records).")
    Term.(const run $ store_arg $ backend_arg)

(* --- repair --- *)

let repair_cmd =
  let dry_arg =
    Arg.(
      value & flag
      & info [ "dry-run" ]
          ~doc:"Report what repair would do without rewriting anything.")
  in
  let run store backend dry =
    if L.is_live_dir store then begin
      let t = open_live store in
      Fun.protect ~finally:(fun () -> L.close t) @@ fun () ->
      if dry then begin
        match L.verify t with
        | [] -> print_endline "live store is consistent; nothing to repair"
        | problems ->
          List.iter
            (fun (what, detail) -> Printf.printf "WOULD FIX %s: %s\n" what detail)
            problems;
          exit 1
      end
      else begin
        (match L.repair t with
        | [] -> print_endline "live store is consistent; nothing to repair"
        | actions -> List.iter print_endline actions);
        match L.verify t with
        | [] -> ()
        | problems ->
          List.iter
            (fun (what, detail) ->
              Printf.printf "STILL BROKEN %s: %s\n" what detail)
            problems;
          exit 1
      end
    end
    else
    let inv = IF.open_store ~lenient:true (open_store backend store) in
    Fun.protect ~finally:(fun () -> IF.close inv) @@ fun () ->
    if dry then begin
      match E.verify_store inv with
      | [] -> print_endline "store is consistent; nothing to repair"
      | problems ->
        List.iter
          (fun p -> Format.printf "WOULD FIX %a@." Invfile.Integrity.pp_problem p)
          problems;
        exit 1
    end
    else begin
      let report = E.repair inv in
      Format.printf "%a" E.pp_repair_report report;
      if report.E.problems_after <> [] then exit 1
    end
  in
  Cmd.v
    (Cmd.info "repair"
       ~doc:"Recover a store: finish pending journal rollbacks and rebuild \
             the index from the stored records if it is inconsistent.")
    Term.(const run $ store_arg $ backend_arg $ dry_arg)

(* --- export --- *)

let export_cmd =
  let out_arg =
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Output file (default stdout).")
  in
  let run store backend out =
    if L.is_live_dir store then begin
      let t = open_live store in
      Fun.protect ~finally:(fun () -> L.close t) @@ fun () ->
      with_out out @@ fun oc ->
      L.fold_live t ~init:() ~f:(fun () _ v ->
          output_string oc (Nested.Syntax.to_string v);
          output_char oc '\n')
    end
    else begin
      let inv = IF.open_store (open_store backend store) in
      Fun.protect ~finally:(fun () -> IF.close inv) @@ fun () ->
      with_out out @@ fun oc ->
      IF.iter_records inv (fun _ v ->
          output_string oc (Nested.Syntax.to_string v);
          output_char oc '\n')
    end
  in
  Cmd.v
    (Cmd.info "export"
       ~doc:"Write the live records back out as nested-set literals.")
    Term.(const run $ store_arg $ backend_arg $ out_arg)

(* --- merge --- *)

let merge_cmd =
  let src_arg =
    Arg.(
      required
      & opt (some string) None
      & info [ "from" ] ~docv:"PATH" ~doc:"Source store to append (read-only).")
  in
  let src_backend_arg =
    Arg.(
      value
      & opt (enum [ ("hash", `Hash); ("btree", `Btree); ("log", `Log) ]) `Hash
      & info [ "from-backend" ] ~docv:"KIND" ~doc:"Source storage engine.")
  in
  let run store backend src src_backend =
    let dst = IF.open_store (open_store backend store) in
    Fun.protect ~finally:(fun () -> IF.close dst) @@ fun () ->
    let src = IF.open_store (open_store src_backend src) in
    Fun.protect ~finally:(fun () -> IF.close src) @@ fun () ->
    let before = IF.record_count dst in
    Invfile.Merger.append ~dst ~src;
    Printf.printf "merged: %d + %d live record(s) -> %d\n" before
      (IF.record_count src) (IF.record_count dst)
  in
  Cmd.v
    (Cmd.info "merge" ~doc:"Append another collection's records to a store.")
    Term.(const run $ store_arg $ backend_arg $ src_arg $ src_backend_arg)

(* --- compact --- *)

let compact_cmd =
  let all_arg =
    Arg.(
      value & flag
      & info [ "all" ]
          ~doc:"Over a live store: merge $(i,every) segment into one \
                (default: one leveled step — the cheapest adjacent pair).")
  in
  let run store backend all =
    if L.is_live_dir store then begin
      let t = open_live store in
      Fun.protect ~finally:(fun () -> L.close t) @@ fun () ->
      match L.compact ~all t with
      | Some n ->
        Printf.printf "compacted %d segment(s) -> %d remaining, %d tombstone(s)\n"
          n (L.segment_count t) (L.tombstone_count t)
      | None -> print_endline "nothing to compact"
    end
    else
    (match backend with
    | `Hash ->
      let kv = Storage.Hash_store.open_existing store in
      let before = Storage.Hash_store.file_size kv in
      Storage.Hash_store.optimize kv;
      Printf.printf "optimized: %d -> %d bytes\n" before (Storage.Hash_store.file_size kv);
      kv.Storage.Kv.close ()
    | `Log ->
      let kv = Storage.Log_store.open_existing store in
      let dead = Storage.Log_store.dead_bytes kv in
      Storage.Log_store.compact kv;
      Printf.printf "compacted: reclaimed %d dead byte(s)\n" dead;
      kv.Storage.Kv.close ()
    | `Btree ->
      prerr_endline "compact: not supported for the btree backend";
      exit 1)
  in
  Cmd.v
    (Cmd.info "compact"
       ~doc:"Reclaim dead space: merge a live store's segments (purging \
             tombstones), or rewrite a hash/log store file.")
    Term.(const run $ store_arg $ backend_arg $ all_arg)

(* --- insert / delete / flush (live stores) --- *)

let live_store_opt_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "s"; "store" ] ~docv:"DIR"
        ~doc:"Live store directory (omit with $(b,--connect)).")

let live_connect_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "connect" ] ~docv:"HOST:PORT"
        ~doc:"Send the write to a running $(b,nscq serve) over a live \
              store instead of opening it in-process.")

let write_deadline_arg =
  Arg.(
    value & opt int 0
    & info [ "deadline-ms" ] ~docv:"MS"
        ~doc:"Per-request deadline for $(b,--connect) (0 = none).")

let require_live_store = function
  | Some s -> s
  | None ->
    prerr_endline "nscq: either --store or --connect is required";
    exit 1

let insert_cmd =
  let value_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"RECORD" ~doc:"The record, in nested-set literal syntax.")
  in
  let run store connect deadline_ms vs =
    match connect with
    | Some connect -> (
      with_remote_client ~connect @@ fun client ->
      match Server.Client.insert client ~deadline_ms vs with
      | Ok id -> Printf.printf "record %d inserted\n" id
      | Error (code, message) ->
        Format.eprintf "nscq: server refused: %a: %s@."
          Server.Wire.pp_error_code code message;
        exit 1)
    | None -> (
      let t = open_live (require_live_store store) in
      Fun.protect ~finally:(fun () -> L.close t) @@ fun () ->
      match Nested.Syntax.of_string_opt vs with
      | None ->
        prerr_endline "nscq: parse error: expected a nested-set literal";
        exit 1
      | Some v -> (
        match L.insert t v with
        | id -> Printf.printf "record %d inserted\n" id
        | exception Invalid_argument m ->
          Printf.eprintf "nscq: %s\n" m;
          exit 1))
  in
  Cmd.v
    (Cmd.info "insert"
       ~doc:"Insert one record into a live store (WAL-logged, durable on \
             return), in-process or on a running server with --connect.")
    Term.(
      const run $ live_store_opt_arg $ live_connect_arg $ write_deadline_arg
      $ value_arg)

let delete_cmd =
  let id_arg =
    Arg.(
      required
      & pos 0 (some int) None
      & info [] ~docv:"ID" ~doc:"Global record id to delete.")
  in
  let run store connect deadline_ms id =
    let deleted =
      match connect with
      | Some connect -> (
        with_remote_client ~connect @@ fun client ->
        match Server.Client.delete client ~deadline_ms id with
        | Ok deleted -> deleted
        | Error (code, message) ->
          Format.eprintf "nscq: server refused: %a: %s@."
            Server.Wire.pp_error_code code message;
          exit 1)
      | None ->
        let t = open_live (require_live_store store) in
        Fun.protect ~finally:(fun () -> L.close t) @@ fun () ->
        L.delete t id
    in
    if deleted then Printf.printf "record %d deleted\n" id
    else begin
      Printf.printf "no such live record %d\n" id;
      exit 1
    end
  in
  Cmd.v
    (Cmd.info "delete"
       ~doc:"Delete one record from a live store by global id, in-process \
             or on a running server with --connect.")
    Term.(
      const run $ live_store_opt_arg $ live_connect_arg $ write_deadline_arg
      $ id_arg)

let flush_cmd =
  let run store =
    let t = open_live store in
    Fun.protect ~finally:(fun () -> L.close t) @@ fun () ->
    let sealed = L.flush t in
    Printf.printf "sealed %d record(s); %d segment(s), %d live record(s)\n"
      sealed (L.segment_count t) (L.live_records t)
  in
  Cmd.v
    (Cmd.info "flush"
       ~doc:"Seal a live store's memtable into a new segment and rotate \
             the WAL (offline admin; a serving store flushes on its own).")
    Term.(const run $ store_arg)

(* --- sql (one-shot NSCQL) --- *)

let sql_cmd =
  let stmt_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"STATEMENT"
          ~doc:"An NSCQL statement, e.g. 'COUNT CONTAINS {a, {b}} UNDER homeo'.")
  in
  let run store backend cache verbose stmt =
    setup_logging verbose;
    let inv = IF.open_store (open_store backend store) in
    Fun.protect ~finally:(fun () -> IF.close inv) @@ fun () ->
    setup_engine inv ~cache;
    match Containment.Nscql.run inv stmt with
    | Ok outcome ->
      Format.printf "%a" (Containment.Nscql.pp_outcome ~collection:inv) outcome
    | Error m ->
      prerr_endline m;
      exit 1
  in
  Cmd.v
    (Cmd.info "sql" ~doc:"Run one NSCQL statement against a store.")
    Term.(const run $ store_arg $ backend_arg $ cache_arg $ verbose_arg $ stmt_arg)

(* --- repl --- *)

let repl_cmd =
  let run store backend cache =
    let inv = IF.open_store (open_store backend store) in
    Fun.protect ~finally:(fun () -> IF.close inv) @@ fun () ->
    setup_engine inv ~cache;
    let config =
      ref { E.default with E.verify = false }
    in
    let print_help () =
      print_string
        "Enter a query in nested-set syntax, e.g. {USA, {UK, {A, motorbike}}},\n\
         or an NSCQL statement, e.g. COUNT CONTAINS {gatk} UNDER homeo\n\
         (FIND | COUNT | EXPLAIN | WITNESS, CONTAINS | EQUALS | WITHIN |\n\
         OVERLAPS .. BY n | SIMILAR TO .. AT r, INSERT v, DELETE id, STATS)\n\
         Commands:\n\
         \t.algorithm bottom-up|top-down|top-down-paper|naive\n\
         \t.join containment|equality|superset|overlap=N|similarity=R\n\
         \t.embedding hom|iso|homeo|homeo-full\n\
         \t.scope roots|anywhere     .verify on|off\n\
         \t.explain QUERY            plan + est-vs-actual phase profile\n\
         \t.witness QUERY            show one embedding per match\n\
         \t.add RECORD               insert a record incrementally\n\
         \t.delete ID                tombstone a record\n\
         \t.config  .stats  .help  .quit\n"
    in
    let parse_join s =
      match String.lowercase_ascii s with
      | "containment" | "subset" -> Some Sem.Containment
      | "equality" -> Some Sem.Equality
      | "superset" -> Some Sem.Superset
      | s when String.length s > 8 && String.sub s 0 8 = "overlap=" ->
        Option.map (fun e -> Sem.Overlap e) (int_of_string_opt (String.sub s 8 (String.length s - 8)))
      | s when String.length s > 11 && String.sub s 0 11 = "similarity=" ->
        Option.map (fun r -> Sem.Similarity r)
          (float_of_string_opt (String.sub s 11 (String.length s - 11)))
      | _ -> None
    in
    let run_nscql line =
      match Containment.Nscql.run inv line with
      | Ok outcome ->
        Format.printf "%a" (Containment.Nscql.pp_outcome ~collection:inv) outcome
      | Error m -> print_endline m
    in
    let run_query qs =
      match Nested.Syntax.of_string_opt qs with
      | None -> print_endline "parse error: expected a nested-set literal"
      | Some q -> (
        match E.query ~config:!config inv q with
        | exception Sem.Unsupported msg -> Printf.printf "unsupported: %s\n" msg
        | exception Invalid_argument msg -> Printf.printf "invalid: %s\n" msg
        | r ->
          Printf.printf "%d matching record(s)\n" (List.length r.E.records);
          List.iteri
            (fun i id ->
              if i < 5 then
                Format.printf "  #%d: %a@." id Nested.Value.pp (IF.record_value inv id))
            r.E.records;
          if List.length r.E.records > 5 then
            Printf.printf "  … and %d more\n" (List.length r.E.records - 5))
    in
    let dot_command line =
      let cmd, arg =
        match String.index_opt line ' ' with
        | Some i ->
          ( String.sub line 0 i,
            String.trim (String.sub line i (String.length line - i)) )
        | None -> (line, "")
      in
      match cmd with
      | ".help" -> print_help ()
      | ".quit" | ".exit" -> raise Exit
      | ".config" ->
        Format.printf "algorithm=%s join=%a embedding=%a scope=%s verify=%b@."
          (match !config.E.algorithm with
          | E.Bottom_up -> "bottom-up"
          | E.Top_down -> "top-down"
          | E.Top_down_paper -> "top-down-paper"
          | E.Naive_scan -> "naive"
          | E.Signature_scan -> "signature-scan")
          Sem.pp_join !config.E.join Sem.pp_embedding !config.E.embedding
          (match !config.E.scope with E.Roots -> "roots" | E.Anywhere -> "anywhere")
          !config.E.verify
      | ".stats" -> Format.printf "%a@." Invfile.Stats.pp (Invfile.Stats.compute inv)
      | ".algorithm" -> (
        match arg with
        | "bottom-up" -> config := { !config with E.algorithm = E.Bottom_up }
        | "top-down" -> config := { !config with E.algorithm = E.Top_down }
        | "top-down-paper" -> config := { !config with E.algorithm = E.Top_down_paper }
        | "naive" -> config := { !config with E.algorithm = E.Naive_scan }
        | _ -> print_endline "unknown algorithm")
      | ".join" -> (
        match parse_join arg with
        | Some j -> config := { !config with E.join = j }
        | None -> print_endline "unknown join type")
      | ".embedding" -> (
        match arg with
        | "hom" -> config := { !config with E.embedding = Sem.Hom }
        | "iso" -> config := { !config with E.embedding = Sem.Iso }
        | "homeo" -> config := { !config with E.embedding = Sem.Homeo }
        | "homeo-full" -> config := { !config with E.embedding = Sem.Homeo_full }
        | _ -> print_endline "unknown embedding")
      | ".scope" -> (
        match arg with
        | "roots" -> config := { !config with E.scope = E.Roots }
        | "anywhere" -> config := { !config with E.scope = E.Anywhere }
        | _ -> print_endline "roots or anywhere")
      | ".verify" -> config := { !config with E.verify = arg = "on" }
      | ".explain" -> (
        match Nested.Syntax.of_string_opt arg with
        | Some q ->
          print_string
            (Obs.Explain.render (E.explain_profile ~config:!config inv q))
        | None -> print_endline "parse error")
      | ".witness" -> (
        match Nested.Syntax.of_string_opt arg with
        | None -> print_endline "parse error"
        | Some q ->
          let ws = E.witnesses ~config:!config inv q in
          if ws = [] then print_endline "no matches"
          else
            List.iteri
              (fun i (root, w) ->
                if i < 3 then begin
                  Printf.printf "match at node %d:\n" root;
                  List.iter
                    (fun (path, id) ->
                      Format.printf "  %-12s -> node %d = %a@." path id
                        Nested.Value.pp (IF.subtree_value inv id))
                    w
                end)
              ws)
      | ".add" -> (
        match Nested.Syntax.of_string_opt arg with
        | Some v when Nested.Value.is_set v ->
          Printf.printf "record %d added\n" (Invfile.Updater.add_value inv v)
        | _ -> print_endline "parse error: expected a set value")
      | ".delete" -> (
        match int_of_string_opt arg with
        | Some id ->
          if Invfile.Updater.delete_record inv id then print_endline "deleted"
          else print_endline "no such live record"
        | None -> print_endline "expected a record id")
      | _ -> Printf.printf "unknown command %s (try .help)\n" cmd
    in
    Printf.printf "nscq repl — %d records. Type .help for commands, .quit to leave.\n"
      (IF.record_count inv);
    (try
       while true do
         print_string "nscq> ";
         flush stdout;
         match input_line stdin with
         | exception End_of_file -> raise Exit
         | "" -> ()
         | line when line.[0] = '.' -> dot_command (String.trim line)
         | line when line.[0] = '{' || line.[0] = '"' -> run_query line
         | line -> run_nscql line
       done
     with Exit -> ());
    print_endline "bye"
  in
  Cmd.v
    (Cmd.info "repl" ~doc:"Interactive query shell over a store.")
    Term.(const run $ store_arg $ backend_arg $ cache_arg)

(* --- serve --- *)

let serve_cmd =
  let port_arg =
    Arg.(
      value & opt int 7411
      & info [ "p"; "port" ] ~docv:"PORT"
          ~doc:"TCP port to listen on (0 picks an ephemeral port).")
  in
  let host_arg =
    Arg.(
      value & opt string "127.0.0.1"
      & info [ "host" ] ~docv:"ADDR" ~doc:"Interface to bind.")
  in
  let domains_arg =
    Arg.(
      value & opt int 0
      & info [ "domains" ] ~docv:"N"
          ~doc:"Worker domains, one store handle + cache each (0 = \
                default: NSCQ_DOMAINS or the host's core count - 1).")
  in
  let queue_cap_arg =
    Arg.(
      value & opt int 64
      & info [ "queue-cap" ] ~docv:"N"
          ~doc:"Admission queue bound; requests beyond it are shed with \
                an $(i,overloaded) error instead of queueing unboundedly.")
  in
  let max_batch_arg =
    Arg.(
      value & opt int 8
      & info [ "max-batch" ] ~docv:"N"
          ~doc:"Coalesce up to $(docv) compatible queued queries into one \
                block probe of the inverted file.")
  in
  let stats_interval_arg =
    Arg.(
      value & opt float 10.
      & info [ "stats-interval" ] ~docv:"SECONDS"
          ~doc:"Period of the stats log line (0 disables).")
  in
  let slow_query_arg =
    Arg.(
      value & opt float 0.
      & info [ "slow-query-ms" ] ~docv:"MS"
          ~doc:"Log one structured line (query digest, phase breakdown, \
                I/O deltas) for every request slower than $(docv) \
                milliseconds from admission to reply (0 disables).")
  in
  let flight_arg =
    Arg.(
      value
      & opt string "nscq-flight.bin"
      & info [ "flight" ] ~docv:"PATH"
          ~doc:"Where flight-recorder dumps land: SIGUSR1 writes one on \
                demand, and any slow-query log line triggers one \
                automatically (rate-limited). Decode with $(b,nscq \
                flight dump).")
  in
  let no_flight_arg =
    Arg.(
      value & flag
      & info [ "no-flight" ]
          ~doc:"Disable the always-on flight recorder entirely.")
  in
  let store_opt_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "s"; "store" ] ~docv:"PATH"
          ~doc:"Path of the collection store (or a shard manifest — \
                detected automatically).")
  in
  let manifest_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "shard-manifest" ] ~docv:"PATH"
          ~doc:"Serve a sharded collection: every worker scatter-gathers \
                over the manifest's shards instead of opening one store.")
  in
  let run store manifest backend cache port host domains queue_cap max_batch
      stats_interval slow_query_ms flight no_flight partial verbose =
    setup_logging verbose;
    Logs.set_level (Some (if verbose then Logs.Debug else Logs.Info));
    let host = resolve_host host in
    (* the flight recorder is on for the server's whole life: per-event
       cost is one atomic fetch-and-add plus a 16-byte ring write, cheap
       enough to leave running so tail-latency incidents are always
       attributable after the fact *)
    let flight = if no_flight then None else Some flight in
    if flight <> None then Obs.Recorder.enable ();
    let source =
      match (manifest, store) with
      | Some m, _ -> `Manifest m
      | None, Some s when Shard.Manifest.is_manifest_file s -> `Manifest s
      | None, Some s when L.is_live_dir s -> `Live s
      | None, Some s -> `Store s
      | None, None ->
        prerr_endline "nscq: either --store or --shard-manifest is required";
        exit 1
    in
    let domains =
      if domains > 0 then domains else Containment.Parallel.default_domains ()
    in
    let cfg =
      {
        Server.Service.default_config with
        Server.Service.host;
        port;
        domains;
        queue_cap;
        max_batch;
        cache_budget = cache;
        stats_interval_s = stats_interval;
        slow_query_ms;
        flight_path = flight;
      }
    in
    (* probe up front either way: fail fast (and with the one-line error)
       before binding the port, and report the collection size *)
    let records, described, start, cleanup =
      match source with
      | `Store store ->
        let open_handle () = IF.open_store (open_store backend store) in
        let probe = open_handle () in
        let records = IF.record_count probe in
        IF.close probe;
        ( records,
          store,
          (fun () -> Server.Service.start cfg ~open_handle),
          ignore )
      | `Live dir ->
        (* one shared handle across every worker (the store serializes
           internally); the server accepts writes, so compaction runs in
           the background and NSCQL INSERT/DELETE are admitted *)
        let t = open_live ~config:{ L.default with L.auto_compact = true } dir in
        ( L.live_records t,
          Printf.sprintf "%s (live, %d segment(s))" dir (L.segment_count t),
          (fun () ->
            Server.Service.start_with
              { cfg with Server.Service.writable = true }
              ~open_backend:(fun () -> Server.Dispatch.live_backend ~store:t ())),
          fun () -> L.close t )
      | `Manifest path ->
        let m = load_manifest path in
        let rconfig =
          {
            Shard.Router.default_config with
            Shard.Router.cache_budget = cache;
            fail_mode =
              (if partial then Shard.Router.Partial else Shard.Router.Fail_fast);
          }
        in
        Shard.Router.close (Shard.Router.open_manifest ~config:rconfig m);
        ( Shard.Manifest.live_records m,
          Printf.sprintf "%s (%d shard(s))" path
            (Array.length m.Shard.Manifest.shards),
          (fun () ->
            Server.Service.start_with cfg
              ~open_backend:(Shard.Router.dispatch_backend ~config:rconfig m)),
          ignore )
    in
    let srv =
      try start ()
      with Unix.Unix_error (e, _, _) ->
        Printf.eprintf "nscq: cannot bind %s:%d: %s\n" host port
          (Unix.error_message e);
        exit 1
    in
    Printf.printf
      "nscq serve: %d record(s) from %s; listening on %s:%d (%d domain(s), \
       queue cap %d, batch <= %d)\n\
       %!"
      records described host (Server.Service.port srv) domains queue_cap
      max_batch;
    let stop = Atomic.make false in
    let request_stop _ = Atomic.set stop true in
    Sys.set_signal Sys.sigint (Sys.Signal_handle request_stop);
    Sys.set_signal Sys.sigterm (Sys.Signal_handle request_stop);
    (match flight with
    | None -> ()
    | Some path ->
      Printf.printf "nscq serve: flight recorder on (SIGUSR1 dumps to %s)\n%!"
        path;
      Sys.set_signal Sys.sigusr1
        (Sys.Signal_handle
           (fun _ ->
             match Obs.Recorder.write_dump path with
             | n -> Printf.printf "nscq serve: %d flight event(s) → %s\n%!" n path
             | exception (Sys_error _ | Unix.Unix_error _) ->
               Printf.eprintf "nscq serve: flight dump to %s failed\n%!" path)));
    while not (Atomic.get stop) do
      (try Unix.sleepf 0.2 with Unix.Unix_error (Unix.EINTR, _, _) -> ())
    done;
    Printf.printf "nscq serve: draining…\n%!";
    Server.Service.stop srv;
    cleanup ();
    Printf.printf "nscq serve: stopped cleanly\n%!"
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Serve containment queries over the nscq wire protocol until \
             SIGINT (which drains in-flight requests and closes the \
             store cleanly). With --shard-manifest, each worker routes \
             queries over the manifest's shards.")
    Term.(
      const run $ store_opt_arg $ manifest_arg $ backend_arg $ cache_arg
      $ port_arg $ host_arg $ domains_arg $ queue_cap_arg $ max_batch_arg
      $ stats_interval_arg $ slow_query_arg $ flight_arg $ no_flight_arg
      $ partial_arg $ verbose_arg)

(* --- stats --- *)

let stats_cmd =
  let detailed_arg =
    Arg.(value & flag & info [ "detailed" ] ~doc:"Scan the collection for shape and frequency profiles.")
  in
  let store_opt_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "s"; "store" ] ~docv:"PATH"
          ~doc:"Path of the collection store (omit with $(b,--connect)).")
  in
  let connect_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "connect" ] ~docv:"HOST:PORT"
          ~doc:"Ask a running $(b,nscq serve) for its server statistics \
                (throughput, queue, batching, latency quantiles).")
  in
  let metrics_arg =
    Arg.(
      value & flag
      & info [ "metrics" ]
          ~doc:"Also print the unified metrics registry (Prometheus text \
                exposition) for the store or manifest — the same registry \
                a server exposes under $(b,--connect).")
  in
  let json_arg =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:"Print the metrics registry as JSON instead of the text \
                exposition (implies $(b,--metrics); local stores and \
                manifests only).")
  in
  let render_registry ~json reg =
    print_newline ();
    if json then print_string (Obs.Metrics.render_json reg)
    else print_string (Obs.Metrics.render_text reg)
  in
  let run store connect backend detailed metrics json =
    let metrics = metrics || json in
    match connect with
    | Some connect -> (
      if json then begin
        prerr_endline
          "nscq: --json applies to local stores and manifests (a server's \
           stats verb returns the text exposition)";
        exit 1
      end;
      with_remote_client ~connect @@ fun client ->
      match Server.Client.stats client with
      | Ok payload -> print_string payload
      | Error (code, message) ->
        Format.eprintf "nscq: server refused: %a: %s@."
          Server.Wire.pp_error_code code message;
        exit 1)
    | None ->
      let store =
        match store with
        | Some s -> s
        | None ->
          prerr_endline "nscq: either --store or --connect is required";
          exit 1
      in
      if Shard.Manifest.is_manifest_file store then begin
        (* a sharded collection: the manifest summary, plus per-shard
           index sizes straight from the shard stores *)
        let m = load_manifest store in
        Format.printf "%a" Shard.Manifest.pp m;
        Array.iteri
          (fun i (s : Shard.Manifest.shard) ->
            match s.Shard.Manifest.location with
            | Shard.Manifest.Local { path; _ } when not (Sys.file_exists path)
              -> Printf.printf "warning: shard %d store %s is missing\n" i path
            | _ -> ())
          m.Shard.Manifest.shards;
        if metrics then begin
          let router = Shard.Router.open_manifest m in
          Fun.protect ~finally:(fun () -> Shard.Router.close router)
          @@ fun () ->
          let reg = Obs.Metrics.create () in
          Shard.Router.register reg router;
          render_registry ~json reg
        end
      end
      else if L.is_live_dir store then begin
        let t = open_live store in
        Fun.protect ~finally:(fun () -> L.close t) @@ fun () ->
        List.iter
          (fun (name, v) -> Printf.printf "%-18s %d\n" name v)
          (L.totals t);
        if metrics then begin
          let reg = Obs.Metrics.create () in
          L.register reg t;
          render_registry ~json reg
        end
      end
      else begin
      let inv = IF.open_store (open_store backend store) in
      Fun.protect ~finally:(fun () -> IF.close inv) @@ fun () ->
      if detailed then Format.printf "%a@." Invfile.Stats.pp (Invfile.Stats.compute inv)
      else begin
        Printf.printf "records        %d\n" (IF.record_count inv);
        Printf.printf "atoms          %d\n" (IF.atom_count inv);
        Printf.printf "internal nodes %d\n" (IF.node_count inv);
        Printf.printf "top atoms:\n";
        List.iteri
          (fun i (a, c) -> if i < 10 then Printf.printf "  %-24s %d postings\n" a c)
          (IF.top_atoms inv)
      end;
      if metrics then begin
        let reg = Obs.Metrics.create () in
        Storage.Io_stats.register reg ~labels:[ ("source", "lists") ]
          (IF.lookup_stats inv);
        Storage.Io_stats.register reg ~labels:[ ("source", "store") ]
          (IF.store inv).Storage.Kv.stats;
        render_registry ~json reg
      end
      end
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:"Show collection statistics (a store's, a shard manifest's, or \
             a running server's with --connect); --metrics adds the \
             unified registry view.")
    Term.(
      const run $ store_opt_arg $ connect_arg $ backend_arg $ detailed_arg
      $ metrics_arg $ json_arg)

(* --- shard (build | status | reshard) --- *)

let manifest_path_arg =
  Arg.(
    required
    & opt (some string) None
    & info [ "m"; "manifest" ] ~docv:"PATH" ~doc:"Path of the shard manifest.")

let shards_arg =
  Arg.(
    required
    & opt (some int) None
    & info [ "shards" ] ~docv:"N" ~doc:"Number of shards.")

let policy_arg =
  Arg.(
    value
    & opt (enum [ ("hash", Shard.Manifest.Hash); ("round-robin", Shard.Manifest.Round_robin) ])
        Shard.Manifest.Hash
    & info [ "policy" ] ~docv:"POLICY"
        ~doc:"Record placement: $(b,hash) (stable under reordering) or \
              $(b,round-robin) (perfectly balanced).")

let shard_build_cmd =
  let output_arg =
    Arg.(
      required
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"PATH"
          ~doc:"Manifest file to create; shard stores are placed next to it.")
  in
  let domains_arg =
    Arg.(
      value & opt int 0
      & info [ "domains" ] ~docv:"N"
          ~doc:"Shard builders run in parallel, at most $(docv) at once \
                (0 = default: NSCQ_DOMAINS or the host's core count - 1).")
  in
  let run input format tokenize output backend record_format policy shards
      domains =
    if shards < 1 then begin
      prerr_endline "nscq: --shards must be at least 1";
      exit 1
    end;
    let values = parse_collection ~format ~tokenize (read_file input) in
    let max_domains =
      if domains > 0 then domains else Containment.Parallel.default_domains ()
    in
    let m =
      Shard.Partitioner.build ~policy ~backend ~record_format ~max_domains
        ~shards ~manifest_path:output values
    in
    Format.printf "%a" Shard.Manifest.pp m
  in
  Cmd.v
    (Cmd.info "build"
       ~doc:"Partition a collection into N shard stores (built in \
             parallel) plus the manifest tying them together.")
    Term.(
      const run $ input_arg $ format_arg $ tokenize_arg $ output_arg
      $ backend_arg $ recfmt_arg $ policy_arg $ shards_arg $ domains_arg)

let shard_status_cmd =
  let run manifest_path =
    let m = load_manifest manifest_path in
    Format.printf "%a" Shard.Manifest.pp m;
    let missing = ref 0 in
    Array.iteri
      (fun i (s : Shard.Manifest.shard) ->
        match s.Shard.Manifest.location with
        | Shard.Manifest.Local { path; _ } when not (Sys.file_exists path) ->
          incr missing;
          Printf.printf "shard %d store %s is MISSING\n" i path
        | _ -> ())
      m.Shard.Manifest.shards;
    if !missing > 0 then exit 1
  in
  Cmd.v
    (Cmd.info "status"
       ~doc:"Describe a shard manifest and check its local stores exist.")
    Term.(const run $ manifest_path_arg)

let shard_reshard_cmd =
  let output_arg =
    Arg.(
      required
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"PATH"
          ~doc:"Manifest file to write the resharded collection under \
                (source stores are left intact).")
  in
  let run manifest_path shards output backend =
    let m = load_manifest manifest_path in
    match Shard.Partitioner.reshard ~backend ~shards ~output m with
    | m' -> Format.printf "%a" Shard.Manifest.pp m'
    | exception Invalid_argument msg ->
      Printf.eprintf "nscq: %s\n" msg;
      exit 1
  in
  Cmd.v
    (Cmd.info "reshard"
       ~doc:"Rewrite a sharded collection with a different shard count \
             (merging via the id-shifting reduce when shrinking, \
             re-partitioning when growing). Query results are unchanged.")
    Term.(const run $ manifest_path_arg $ shards_arg $ output_arg $ backend_arg)

let shard_cmd =
  Cmd.group
    (Cmd.info "shard"
       ~doc:"Sharded collections: partitioned build, status, reshard.")
    [ shard_build_cmd; shard_status_cmd; shard_reshard_cmd ]

let () =
  let info =
    Cmd.info "nscq" ~version:"1.0.0"
      ~doc:"Containment queries on nested sets (Ibrahim & Fletcher, EDBT 2013)."
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [ generate_cmd; build_cmd; query_cmd; join_cmd; trace_cmd;
            explain_cmd; flight_cmd; workload_cmd; stats_cmd; repl_cmd;
            sql_cmd; serve_cmd; shard_cmd; check_cmd; repair_cmd; export_cmd;
            merge_cmd; compact_cmd; insert_cmd; delete_cmd; flush_cmd ]))
