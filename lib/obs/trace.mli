(** Per-query span tracing.

    A trace is a tree of timed spans, one trace per query, threaded through
    {!Containment.Engine.query} so each evaluation phase (minimize,
    prefilter, per-atom list retrieval, merge, verify) records where its
    time and I/O went. The router grafts per-shard sub-traces into the
    caller's tree, and {!to_wire}/{!of_wire} carry a span tree across the
    wire protocol so [nscq trace --connect] sees remote phases too.

    Tracing is strictly opt-in: the engine takes [?trace] and records
    nothing when it is absent, so the zero-trace hot path stays free of
    observability cost (the [obs-overhead] bench holds it under 5%). *)

type span = {
  name : string;
  start_s : float;  (** absolute start, [Unix.gettimeofday] seconds *)
  mutable duration_s : float;  (** [-1.] while the span is still open *)
  mutable attrs : (string * string) list;
  mutable children : span list;
  mutable closed : bool;
      (** while open, [attrs]/[children] are in reverse recording order;
          {!finish} closes the tree and restores forward order *)
}

type t
(** A trace context: an id, a root span, and a stack of open spans. Not
    thread-safe — each domain records into its own trace and finished
    sub-trees are {!graft}ed back. *)

val create : ?id:int -> string -> t
(** [create name] opens a trace whose root span is [name]. A fresh id
    (31-bit, so it rides in a u32 wire field) is drawn unless given. *)

val id : t -> int

val span : t -> string -> (unit -> 'a) -> 'a
(** [span t name f] runs [f] inside a child span of the innermost open
    span, timing it. The span is closed even if [f] raises. *)

val add_attr : t -> string -> string -> unit
(** Attaches [key=value] to the innermost open span (the root if none). *)

val finish : t -> span
(** Closes the root span (and any spans left open) and returns the tree.
    Children and attrs come out in recording order. *)

val root : t -> span
(** The root span as recorded so far, without closing anything. *)

(** {1 Assembling trees by hand}

    The router builds shard spans from wire payloads and pre-measured
    timings rather than by running code under {!span}. *)

val make_span :
  ?attrs:(string * string) list -> ?children:span list ->
  name:string -> start_s:float -> duration_s:float -> unit -> span

val graft : t -> span -> unit
(** Adds a finished sub-tree as a child of the innermost open span. *)

(** {1 Rendering and wire form} *)

val render : span -> string
(** A human-readable indented tree: name, duration in ms, attrs. *)

val to_wire : ?id:int -> span -> string
(** Serializes a finished span tree as text lines (header [trace <id>],
    then one tab-separated line per span with depth, start µs, duration
    µs, name, attrs). Line-based so it composes with the existing
    line-oriented result payloads. *)

val of_wire : string -> (int * span) option
(** Parses {!to_wire} output; [None] if the payload is not a trace. *)

val escape : string -> string
(** %-escapes tab, newline, [=] and [%] — the encoding the tab/line
    wire forms (this module's and {!Explain}'s) use for free-text
    fields. *)

val unescape : string -> string
