(** Always-on flight recorder: lock-free per-domain event rings.

    Every domain that emits gets its own fixed-size binary ring of
    16-byte event slots; a slot is claimed with one [fetch_and_add], so
    recording neither locks nor allocates. The server leaves the
    recorder on permanently ([nscq serve]) and dumps the merged,
    time-sorted timeline next to slow-query log lines, on [SIGUSR1],
    and on demand — attributing a p99 outlier to compaction, an fsync
    stall, queueing, or lock contention after the fact.

    When disabled (the default), {!emit} is one atomic load and a
    branch. Readers ({!events}, {!write_dump}) race benignly with
    writers: a slot overwritten mid-read decodes as garbage at the
    oldest edge of the timeline and is dropped, never mis-parsed. *)

type kind =
  | Query_begin  (** a32 = query sequence id *)
  | Query_end  (** a32 = id, a16 = result count (clamped) *)
  | Phase_begin  (** a8 = interned phase name, a32 = query id *)
  | Phase_end
  | Wal_fsync  (** a32 = fsync duration µs *)
  | Flush_begin  (** a32 = memtable records *)
  | Flush_end
  | Compact_begin  (** a32 = segments merged *)
  | Compact_end
  | Batch  (** a16 = coalesced batch size *)
  | Lock_wait  (** a8 = interned lock class, a32 = wait µs *)
  | Race_suspect
      (** a8 = interned guarded-cell name, a16 = violating domain — a
          {!Racesan} finding placed on the timeline *)

val kind_name : kind -> string

(** {1 Lifecycle} *)

val enable : unit -> unit
(** Turns recording on and installs the {!Lockdep.set_wait_hook} that
    turns contended mutex acquires into [Lock_wait] events, plus the
    {!Racesan.set_report_hook} that turns sanitizer findings into
    [Race_suspect] events. *)

val disable : unit -> unit

val enabled : unit -> bool

val configure : slots:int -> unit
(** Ring capacity in events for rings created {e after} the call,
    rounded up to a power of two (min 16; default 4096 ≈ 64 KiB per
    domain). Call before {!enable}. *)

val reset : unit -> unit
(** Test hook: clears every ring. *)

val stats : unit -> int * int
(** [(total, overwritten)] events across all rings since start. *)

(** {1 Recording} *)

val emit : ?a8:int -> ?a16:int -> ?a32:int -> kind -> unit

val intern : string -> int
(** Stable u8 code for a phase / lock-class name. Instrumentation sites
    intern once at init so the emit path never touches the name table;
    a full table (>255 names) interns to 0, which decodes as unknown. *)

val name_of : int -> string option

val begin_query : unit -> int
(** Fresh query id and a [Query_begin] event; [0] when disabled. *)

val end_query : int -> results:int -> unit
(** No-op for id [0], so begin/end pair cleanly across enable states. *)

val phase_begin : int -> qid:int -> unit
val phase_end : int -> qid:int -> unit
val wal_fsync : dur_us:int -> unit
val flush_begin : records:int -> unit
val flush_end : records:int -> unit
val compact_begin : segments:int -> unit
val compact_end : segments:int -> unit
val batch : size:int -> unit

(** {1 Decoding} *)

type event = {
  time_us : int64;
  domain : int;
  kind : kind;
  a8 : int;
  a16 : int;
  a32 : int;
}

val events : unit -> event list
(** Live snapshot: every ring's surviving events merged and sorted by
    timestamp. *)

exception Corrupt of string

val write_dump : string -> int
(** Writes the merged timeline plus the name table to a binary file
    (atomic rename); returns the event count. *)

val read_dump : string -> (int * string) list * event list
(** Name table and events of a {!write_dump} file.
    @raise Corrupt on a malformed file. *)

(** {1 Rendering} *)

val render : ?names:(int * string) list -> event list -> string
(** One line per event — relative ms, domain, kind, decoded payload —
    with end events annotated with the elapsed time since their
    matching begin on the same domain. *)

val render_json : ?names:(int * string) list -> event list -> string
