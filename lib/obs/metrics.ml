(* Instrument cells are Atomic so recording never takes a lock; the
   registry mutex guards only the name table, touched at registration and
   render time. *)

type labels = (string * string) list

let normalize labels =
  List.sort_uniq (fun (a, _) (b, _) -> String.compare a b) labels

type counter = int Atomic.t
type gauge = float Atomic.t

let hist_buckets = 64

type histogram = {
  buckets : int Atomic.t array; (* bucket i holds (2^i, 2^(i+1)]; 0 also <= 1 *)
  sum_bits : int64 Atomic.t; (* float sum as bits, CAS-accumulated *)
}

type instrument =
  | Counter of counter
  | Gauge of gauge
  | Histogram of histogram
  | Callback of [ `Counter | `Gauge ] * (unit -> float)

type series = {
  name : string;
  labels : labels;
  help : string;
  mutable inst : instrument;
}

type t = {
  lock : Lockdep.t;
  race : Racesan.cell;
  table : (string * labels, series) Hashtbl.t;
  mutable order : series list; (* registration order, reversed *)
}

let create () =
  let lock = Lockdep.create "obs.metrics" in
  {
    lock;
    race = Racesan.register ~name:"obs.metrics.registry" ~lock;
    table = Hashtbl.create 64;
    order = [];
  }

let valid_name name =
  String.length name > 0
  && String.for_all
       (fun c ->
         (c >= 'a' && c <= 'z')
         || (c >= 'A' && c <= 'Z')
         || (c >= '0' && c <= '9')
         || c = '_' || c = ':')
       name
  && not (name.[0] >= '0' && name.[0] <= '9')

let kind_name = function
  | Counter _ | Callback (`Counter, _) -> "counter"
  | Gauge _ | Callback (`Gauge, _) -> "gauge"
  | Histogram _ -> "histogram"

let register t ?(help = "") ?(labels = []) name make =
  if not (valid_name name) then
    invalid_arg (Printf.sprintf "Metrics: invalid metric name %S" name);
  let labels = normalize labels in
  Lockdep.protect t.lock (fun () ->
      Racesan.check t.race;
      match Hashtbl.find_opt t.table (name, labels) with
      | Some s -> s
      | None ->
          let s = { name; labels; help; inst = make () } in
          Hashtbl.replace t.table (name, labels) s;
          t.order <- s :: t.order;
          s)

let kind_clash name existing wanted =
  invalid_arg
    (Printf.sprintf "Metrics: %s already registered as a %s, not a %s" name
       (kind_name existing) wanted)

let counter t ?help ?labels name =
  let s = register t ?help ?labels name (fun () -> Counter (Atomic.make 0)) in
  match s.inst with
  | Counter c -> c
  | other -> kind_clash name other "counter"

let inc c = ignore (Atomic.fetch_and_add c 1)
let add c n = ignore (Atomic.fetch_and_add c n)
let counter_value c = Atomic.get c

let gauge t ?help ?labels name =
  let s = register t ?help ?labels name (fun () -> Gauge (Atomic.make 0.)) in
  match s.inst with
  | Gauge g -> g
  | other -> kind_clash name other "gauge"

let set g v = Atomic.set g v

let rec set_max g v =
  let cur = Atomic.get g in
  if v > cur && not (Atomic.compare_and_set g cur v) then set_max g v

let gauge_value g = Atomic.get g

let make_histogram () =
  {
    buckets = Array.init hist_buckets (fun _ -> Atomic.make 0);
    sum_bits = Atomic.make 0L;
  }

let histogram t ?help ?labels name =
  let s =
    register t ?help ?labels name (fun () -> Histogram (make_histogram ()))
  in
  match s.inst with
  | Histogram h -> h
  | other -> kind_clash name other "histogram"

let bucket_upper i = Float.of_int (Int.shift_left 1 (i + 1))

let bucket_of v =
  if v <= 2. then 0
  else
    let b = int_of_float (ceil (Float.log2 v)) - 1 in
    (* float log2 can land a hair off at exact powers of two *)
    let b = if bucket_upper b < v then b + 1 else if b > 0 && bucket_upper (b - 1) >= v then b - 1 else b in
    max 0 (min (hist_buckets - 1) b)

let rec add_sum h v =
  let cur = Atomic.get h.sum_bits in
  let next = Int64.bits_of_float (Int64.float_of_bits cur +. v) in
  if not (Atomic.compare_and_set h.sum_bits cur next) then add_sum h v

let observe h v =
  ignore (Atomic.fetch_and_add h.buckets.(bucket_of v) 1);
  add_sum h v

let hist_count h =
  Array.fold_left (fun acc b -> acc + Atomic.get b) 0 h.buckets

let hist_sum h = Int64.float_of_bits (Atomic.get h.sum_bits)

let quantile h p =
  let counts = Array.map Atomic.get h.buckets in
  let total = Array.fold_left ( + ) 0 counts in
  if total = 0 then 0.
  else begin
    let rank = max 1 (min total (int_of_float (ceil (p *. float_of_int total)))) in
    let acc = ref 0 and result = ref (bucket_upper (hist_buckets - 1)) in
    (try
       Array.iteri
         (fun i c ->
           acc := !acc + c;
           if !acc >= rank then begin
             result := bucket_upper i;
             raise Exit
           end)
         counts
     with Exit -> ());
    !result
  end

let register_callback t ?help ?labels ~kind name f =
  let s = register t ?help ?labels name (fun () -> Callback (kind, f)) in
  match s.inst with
  | Callback (k, _) when k = kind ->
      (* replace: a reopened handle takes over its series *)
      s.inst <- Callback (kind, f)
  | other -> kind_clash name other (match kind with `Counter -> "counter" | `Gauge -> "gauge")

(* ---- rendering ---- *)

let sorted_series t =
  let all =
    Lockdep.protect t.lock (fun () ->
        Racesan.check t.race;
        List.rev t.order)
  in
  List.stable_sort
    (fun a b ->
      match String.compare a.name b.name with
      | 0 -> compare a.labels b.labels
      | c -> c)
    all

let escape_label v =
  let buf = Buffer.create (String.length v) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' -> Buffer.add_string buf "\\\""
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    v;
  Buffer.contents buf

(* HELP text is free-form to end of line: the exposition format escapes
   backslash and newline there (label values additionally escape the
   double quote, [escape_label]). *)
let escape_help v =
  let buf = Buffer.create (String.length v) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    v;
  Buffer.contents buf

let label_str labels =
  match labels with
  | [] -> ""
  | ls ->
      "{"
      ^ String.concat ","
          (List.map
             (fun (k, v) -> Printf.sprintf "%s=\"%s\"" k (escape_label v))
             ls)
      ^ "}"

let fmt_float v =
  if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%g" v

(* Bucket lines splice the series labels before the [le] label. *)
let bucket_label_prefix labels =
  String.concat ""
    (List.map (fun (k, v) -> Printf.sprintf "%s=\"%s\"," k (escape_label v))
       labels)

let render_text t =
  let buf = Buffer.create 1024 in
  let seen_header = Hashtbl.create 16 in
  List.iter
    (fun s ->
      if not (Hashtbl.mem seen_header s.name) then begin
        Hashtbl.add seen_header s.name ();
        if s.help <> "" then
          Buffer.add_string buf
            (Printf.sprintf "# HELP %s %s\n" s.name (escape_help s.help));
        Buffer.add_string buf
          (Printf.sprintf "# TYPE %s %s\n" s.name (kind_name s.inst))
      end;
      let ls = label_str s.labels in
      match s.inst with
      | Counter c ->
          Buffer.add_string buf
            (Printf.sprintf "%s%s %d\n" s.name ls (Atomic.get c))
      | Gauge g ->
          Buffer.add_string buf
            (Printf.sprintf "%s%s %s\n" s.name ls (fmt_float (Atomic.get g)))
      | Callback (_, f) ->
          Buffer.add_string buf
            (Printf.sprintf "%s%s %s\n" s.name ls (fmt_float (f ())))
      | Histogram h ->
          let counts = Array.map Atomic.get h.buckets in
          let cum = ref 0 in
          Array.iteri
            (fun i c ->
              cum := !cum + c;
              if c > 0 || i = 0 then
                Buffer.add_string buf
                  (Printf.sprintf "%s_bucket{%sle=\"%s\"} %d\n" s.name
                     (bucket_label_prefix s.labels)
                     (fmt_float (bucket_upper i))
                     !cum))
            counts;
          Buffer.add_string buf
            (Printf.sprintf "%s_bucket{%sle=\"+Inf\"} %d\n" s.name
               (bucket_label_prefix s.labels)
               !cum);
          Buffer.add_string buf
            (Printf.sprintf "%s_sum%s %s\n" s.name ls (fmt_float (hist_sum h)));
          Buffer.add_string buf
            (Printf.sprintf "%s_count%s %d\n" s.name ls !cum))
    (sorted_series t);
  Buffer.contents buf

let json_escape v =
  let buf = Buffer.create (String.length v) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    v;
  Buffer.contents buf

let json_labels labels =
  "{"
  ^ String.concat ","
      (List.map
         (fun (k, v) ->
           Printf.sprintf "\"%s\":\"%s\"" (json_escape k) (json_escape v))
         labels)
  ^ "}"

let render_json t =
  let entry s =
    let base =
      Printf.sprintf "\"name\":\"%s\",\"labels\":%s,\"kind\":\"%s\""
        (json_escape s.name) (json_labels s.labels) (kind_name s.inst)
    in
    match s.inst with
    | Counter c -> Printf.sprintf "{%s,\"value\":%d}" base (Atomic.get c)
    | Gauge g -> Printf.sprintf "{%s,\"value\":%s}" base (fmt_float (Atomic.get g))
    | Callback (_, f) -> Printf.sprintf "{%s,\"value\":%s}" base (fmt_float (f ()))
    | Histogram h ->
        Printf.sprintf
          "{%s,\"count\":%d,\"sum\":%s,\"p50\":%s,\"p95\":%s,\"p99\":%s}" base
          (hist_count h) (fmt_float (hist_sum h))
          (fmt_float (quantile h 0.50))
          (fmt_float (quantile h 0.95))
          (fmt_float (quantile h 0.99))
  in
  "[" ^ String.concat "," (List.map entry (sorted_series t)) ^ "]"
