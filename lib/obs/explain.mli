(** Structured query plans and profiles (EXPLAIN).

    One value describes both the {e plan} — the atom retrieval order
    with posting-list lengths, payload sizes and codecs the paper's
    cost model ranks by (Sec. 3–4) — and the {e profile}: per phase
    (minimize / preflight / prefilter / retrieve / eval / verify, or
    build-tree / intersect / verify for joins) an estimated and a
    measured candidate count plus elapsed time. Layers nest: a live
    store attaches one sub-plan per segment, the router one per shard,
    so a single tree explains a query end to end.

    The engines ({!Containment.Engine.explain_profile},
    [Join.Engine.explain], [Live.Live_store.explain],
    [Shard.Router.explain]) build values; this module is pure data plus
    rendering (text, JSON) and a line-oriented wire form for the
    [Explain] verb and NSCQL [EXPLAIN]. *)

type atom_plan = {
  atom : string;
  list_len : int;  (** postings in [S_IF(atom)] *)
  bytes : int;  (** encoded payload size *)
  codec : string;  (** ["blocked"], ["varint"], ["bitpacked"], or ["-"] *)
  blocks : int;  (** blocks in a blocked payload, [0] otherwise *)
}

type phase = {
  phase : string;
  est : int;  (** estimated candidates; [-1] = not applicable *)
  actual : int;  (** measured candidates; [-1] = not applicable *)
  ms : float;
  notes : (string * string) list;
}

type t = {
  target : string;
      (** what was explained: ["store"], ["live"], ["segment:<file>"],
          ["memtable"], ["shard:<i>"], ["join"], ... *)
  query : string;
  config : (string * string) list;
  atoms : atom_plan list;  (** planned retrieval order, rarest first *)
  phases : phase list;
  records : int;  (** result size; [-1] = unknown *)
  subs : t list;  (** per-segment / per-shard sub-plans *)
}

val make :
  ?config:(string * string) list ->
  ?atoms:atom_plan list ->
  ?phases:phase list ->
  ?records:int ->
  ?subs:t list ->
  target:string ->
  query:string ->
  unit ->
  t

val render : t -> string
(** Human-readable indented text. *)

val to_json : t -> string

val to_wire : t -> string
(** Line-oriented serialization (header [explain 1], then one
    tab-separated line per plan node / config / atom / phase, each
    carrying its depth) — the payload of the wire [Explain] verb, and
    what the router parses to graft remote shards' sub-plans. *)

val of_wire : string -> t option
(** Parses {!to_wire} output; [None] if malformed. *)
