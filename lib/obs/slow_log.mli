(** Slow-query log line formatting.

    The server emits one structured line per request whose latency crosses
    the configured threshold ([Service.config.slow_query_ms]): a stable
    [key=value] format carrying the query digest, latency vs. threshold,
    the per-phase breakdown and I/O deltas pulled from the request's
    trace. One line per offence keeps the log greppable and cheap —
    aggregation lives in the metrics registry, not here.

    Retention is bounded: {!t} is a fixed-capacity ring — sustained slow
    traffic overwrites the oldest entries and bumps {!dropped} instead
    of growing memory. *)

type t
(** A bounded, thread-safe buffer of recent slow-query lines. *)

val create : ?capacity:int -> unit -> t
(** Default capacity 128 entries. *)

val capacity : t -> int

val add : t -> string -> unit
(** Appends, evicting the oldest entry once full. *)

val entries : t -> string list
(** Retained entries, oldest first. *)

val length : t -> int

val dropped : t -> int
(** Entries evicted so far — how much history the ring has lost. *)

val line :
  ?digest:string ->
  ?trace:Trace.span ->
  ?extra:(string * string) list ->
  latency_ms:float ->
  threshold_ms:float ->
  unit ->
  string
(** [line ~latency_ms ~threshold_ms ()] renders
    [slow_query digest=... latency_ms=... threshold_ms=...
     phases=[name=ms,...] io=[k=v,...]].
    [phases] comes from the trace root's direct children, [io] from the
    root span's attributes; both are omitted without a trace. [extra]
    pairs (queue depth, shard id, ...) are appended verbatim. *)
