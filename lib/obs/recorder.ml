(* A flight recorder: per-domain fixed-size binary rings of compact
   events, cheap enough to leave on in production. Each event is one
   16-byte slot claimed with a fetch-and-add, so recording never takes a
   lock; the rings are merged into one time-sorted timeline at dump
   time. Readers tolerate the races inherent in a lock-free ring — a
   slot being overwritten while a dump reads it decodes as garbage at
   the timeline's oldest edge, never as a crash. *)

type kind =
  | Query_begin
  | Query_end
  | Phase_begin
  | Phase_end
  | Wal_fsync
  | Flush_begin
  | Flush_end
  | Compact_begin
  | Compact_end
  | Batch
  | Lock_wait
  | Race_suspect

let kind_code = function
  | Query_begin -> 1
  | Query_end -> 2
  | Phase_begin -> 3
  | Phase_end -> 4
  | Wal_fsync -> 5
  | Flush_begin -> 6
  | Flush_end -> 7
  | Compact_begin -> 8
  | Compact_end -> 9
  | Batch -> 10
  | Lock_wait -> 11
  | Race_suspect -> 12

let kind_of_code = function
  | 1 -> Some Query_begin
  | 2 -> Some Query_end
  | 3 -> Some Phase_begin
  | 4 -> Some Phase_end
  | 5 -> Some Wal_fsync
  | 6 -> Some Flush_begin
  | 7 -> Some Flush_end
  | 8 -> Some Compact_begin
  | 9 -> Some Compact_end
  | 10 -> Some Batch
  | 11 -> Some Lock_wait
  | 12 -> Some Race_suspect
  | _ -> None

let kind_name = function
  | Query_begin -> "query.begin"
  | Query_end -> "query.end"
  | Phase_begin -> "phase.begin"
  | Phase_end -> "phase.end"
  | Wal_fsync -> "wal.fsync"
  | Flush_begin -> "flush.begin"
  | Flush_end -> "flush.end"
  | Compact_begin -> "compact.begin"
  | Compact_end -> "compact.end"
  | Batch -> "batch"
  | Lock_wait -> "lock.wait"
  | Race_suspect -> "race.suspect"

(* Slot layout, little-endian:
   [0..7] timestamp µs  [8] kind  [9] a8  [10..11] a16  [12..15] a32 *)
let slot_bytes = 16

let enabled_flag = Atomic.make false
let enabled () = Atomic.get enabled_flag

(* ---- the name table ----

   Event slots carry small integer codes, not strings; [intern] maps a
   name (phase, lock class) to a stable u8 code. Instrumentation sites
   intern once at module init, so the emit path never touches this
   table. A plain [Mutex] (not {!Lockdep}) guards it: the lock-wait
   hook below fires on contended Lockdep acquires, and routing its own
   bookkeeping through Lockdep would recurse. *)

let names_mu = Mutex.create ()
let name_table : (string, int) Hashtbl.t = Hashtbl.create 32
  [@@lint.guarded_by names_mu]
let name_by_code : string array ref = ref (Array.make 256 "")
  [@@lint.guarded_by names_mu]
let next_code = ref 1 [@@lint.guarded_by names_mu]

let intern name =
  Mutex.protect names_mu (fun () ->
      match Hashtbl.find_opt name_table name with
      | Some c -> c
      | None ->
        if !next_code > 255 then 0 (* table full: decode as "?" *)
        else begin
          let c = !next_code in
          incr next_code;
          Hashtbl.add name_table name c;
          !name_by_code.(c) <- name;
          c
        end)

let name_of code =
  Mutex.protect names_mu (fun () ->
      if code > 0 && code < 256 && !name_by_code.(code) <> "" then
        Some !name_by_code.(code)
      else None)

let name_snapshot () =
  Mutex.protect names_mu (fun () ->
      let out = ref [] in
      Array.iteri
        (fun i n -> if n <> "" then out := (i, n) :: !out)
        !name_by_code;
      List.rev !out)

(* ---- per-domain rings ---- *)

type ring = {
  buf : Bytes.t;
  slots : int; (* power of two *)
  cursor : int Atomic.t; (* total events ever claimed on this ring *)
  domain : int;
}

let default_slots = Atomic.make 4096

let rec pow2_at_least n k = if k >= n then k else pow2_at_least n (k * 2)

let configure ~slots =
  Atomic.set default_slots (pow2_at_least (max 16 slots) 16)

let rings_mu = Mutex.create ()
let rings : ring list ref = ref [] [@@lint.guarded_by rings_mu]

let make_ring () =
  let slots = Atomic.get default_slots in
  let r =
    {
      buf = Bytes.make (slots * slot_bytes) '\000';
      slots;
      cursor = Atomic.make 0;
      domain = (Domain.self () :> int);
    }
  in
  Mutex.protect rings_mu (fun () -> rings := r :: !rings);
  r

let ring_key = Domain.DLS.new_key make_ring

let now_us () = Int64.of_float (Unix.gettimeofday () *. 1e6)

let emit ?(a8 = 0) ?(a16 = 0) ?(a32 = 0) kind =
  if Atomic.get enabled_flag then begin
    let r = Domain.DLS.get ring_key in
    let slot = Atomic.fetch_and_add r.cursor 1 in
    let off = slot land (r.slots - 1) * slot_bytes in
    Bytes.set_int64_le r.buf off (now_us ());
    Bytes.unsafe_set r.buf (off + 8) (Char.unsafe_chr (kind_code kind));
    Bytes.unsafe_set r.buf (off + 9) (Char.unsafe_chr (a8 land 0xff));
    Bytes.set_uint16_le r.buf (off + 10) (a16 land 0xffff);
    Bytes.set_int32_le r.buf (off + 12) (Int32.of_int a32)
  end

(* ---- convenience emitters ---- *)

let query_seq = Atomic.make 1

let begin_query () =
  if Atomic.get enabled_flag then begin
    let id = Atomic.fetch_and_add query_seq 1 land 0x3FFFFFFF in
    emit ~a32:id Query_begin;
    id
  end
  else 0

let end_query id ~results =
  if id <> 0 then emit ~a16:(min results 0xffff) ~a32:id Query_end

let phase_begin code ~qid = emit ~a8:code ~a32:qid Phase_begin
let phase_end code ~qid = emit ~a8:code ~a32:qid Phase_end
let wal_fsync ~dur_us = emit ~a32:dur_us Wal_fsync
let flush_begin ~records = emit ~a32:records Flush_begin
let flush_end ~records = emit ~a32:records Flush_end
let compact_begin ~segments = emit ~a32:segments Compact_begin
let compact_end ~segments = emit ~a32:segments Compact_end
let batch ~size = emit ~a16:(min size 0xffff) Batch

(* ---- lifecycle ---- *)

let lock_wait_hook name wait_us =
  emit ~a8:(intern name) ~a32:wait_us Lock_wait

(* Racesan findings land on the timeline too: a p99 outlier that
   coincides with a race.suspect event is a corruption candidate, not a
   performance mystery. a8 carries the interned cell name, a16 the
   violating domain. *)
let race_suspect_hook name domain =
  emit ~a8:(intern name) ~a16:(domain land 0xffff) Race_suspect

let enable () =
  Atomic.set enabled_flag true;
  Lockdep.set_wait_hook (Some lock_wait_hook);
  Racesan.set_report_hook (Some race_suspect_hook)

let disable () =
  Atomic.set enabled_flag false;
  Lockdep.set_wait_hook None;
  Racesan.set_report_hook None

let reset () =
  Mutex.protect rings_mu (fun () ->
      List.iter
        (fun r ->
          Atomic.set r.cursor 0;
          Bytes.fill r.buf 0 (Bytes.length r.buf) '\000')
        !rings)

let stats () =
  Mutex.protect rings_mu (fun () ->
      List.fold_left
        (fun (total, dropped) r ->
          let c = Atomic.get r.cursor in
          (total + c, dropped + max 0 (c - r.slots)))
        (0, 0) !rings)

(* ---- decoding ---- *)

type event = {
  time_us : int64;
  domain : int;
  kind : kind;
  a8 : int;
  a16 : int;
  a32 : int;
}

let decode_slot buf off domain =
  match kind_of_code (Char.code (Bytes.get buf (off + 8))) with
  | None -> None (* never written, or torn by a concurrent writer *)
  | Some kind ->
    Some
      {
        time_us = Bytes.get_int64_le buf off;
        domain;
        kind;
        a8 = Char.code (Bytes.get buf (off + 9));
        a16 = Bytes.get_uint16_le buf (off + 10);
        a32 = Int32.to_int (Bytes.get_int32_le buf (off + 12)) land 0x7FFFFFFF;
      }

let ring_events r =
  let c = Atomic.get r.cursor in
  let valid = min c r.slots in
  let out = ref [] in
  for i = c - valid to c - 1 do
    match decode_slot r.buf (i land (r.slots - 1) * slot_bytes) r.domain with
    | Some e -> out := e :: !out
    | None -> ()
  done;
  List.rev !out

let events () =
  let rs = Mutex.protect rings_mu (fun () -> !rings) in
  List.concat_map ring_events rs
  |> List.stable_sort (fun a b -> Int64.compare a.time_us b.time_us)

(* ---- binary dump ---- *)

let magic = "NSCQFR1\n"

let write_dump path =
  let evs = events () in
  let names = name_snapshot () in
  let oc = open_out_bin (path ^ ".tmp") in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      (* dump time, not the emit path — file writes are the point here *)
      (output_string [@lint.allow io]) oc magic;
      let b = Buffer.create 4096 in
      Buffer.add_uint16_le b (List.length names);
      List.iter
        (fun (code, n) ->
          Buffer.add_uint8 b code;
          Buffer.add_uint16_le b (String.length n);
          Buffer.add_string b n)
        names;
      Buffer.add_int32_le b (Int32.of_int (List.length evs));
      List.iter
        (fun e ->
          Buffer.add_int64_le b e.time_us;
          Buffer.add_uint8 b (kind_code e.kind);
          Buffer.add_uint8 b e.a8;
          Buffer.add_uint16_le b e.a16;
          Buffer.add_int32_le b (Int32.of_int e.a32);
          Buffer.add_uint16_le b (e.domain land 0xffff))
        evs;
      Buffer.output_buffer oc b);
  Sys.rename (path ^ ".tmp") path;
  List.length evs

exception Corrupt of string

let read_dump path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let contents = really_input_string ic (in_channel_length ic) in
      let n = String.length contents in
      if n < String.length magic + 6
         || String.sub contents 0 (String.length magic) <> magic
      then raise (Corrupt "not a flight-recorder dump");
      let pos = ref (String.length magic) in
      let need k =
        if !pos + k > n then raise (Corrupt "truncated dump");
        let p = !pos in
        pos := p + k;
        p
      in
      let u8 () = Char.code contents.[need 1] in
      let u16 () = String.get_uint16_le contents (need 2) in
      let i32 () = Int32.to_int (String.get_int32_le contents (need 4)) in
      let i64 () = String.get_int64_le contents (need 8) in
      let n_names = u16 () in
      let names =
        List.init n_names (fun _ ->
            let code = u8 () in
            let len = u16 () in
            (code, String.sub contents (need len) len))
      in
      let n_events = i32 () in
      if n_events < 0 || n_events > (n / 18) + 1 then
        raise (Corrupt "implausible event count");
      let evs =
        List.init n_events (fun _ ->
            let time_us = i64 () in
            let kc = u8 () in
            let a8 = u8 () in
            let a16 = u16 () in
            let a32 = i32 () land 0x7FFFFFFF in
            let domain = u16 () in
            match kind_of_code kc with
            | Some kind -> Some { time_us; domain; kind; a8; a16; a32 }
            | None -> None)
        |> List.filter_map Fun.id
      in
      (names, evs))

(* ---- rendering ---- *)

let begin_of = function
  | Query_end -> Some Query_begin
  | Phase_end -> Some Phase_begin
  | Flush_end -> Some Flush_begin
  | Compact_end -> Some Compact_begin
  | _ -> None

let describe names e =
  let named code =
    match List.assoc_opt code names with
    | Some n -> n
    | None -> Printf.sprintf "name:%d" code
  in
  match e.kind with
  | Query_begin -> Printf.sprintf "q%d" e.a32
  | Query_end -> Printf.sprintf "q%d results=%d" e.a32 e.a16
  | Phase_begin | Phase_end -> Printf.sprintf "q%d %s" e.a32 (named e.a8)
  | Wal_fsync -> Printf.sprintf "%dus" e.a32
  | Flush_begin | Flush_end -> Printf.sprintf "records=%d" e.a32
  | Compact_begin | Compact_end -> Printf.sprintf "segments=%d" e.a32
  | Batch -> Printf.sprintf "size=%d" e.a16
  | Lock_wait -> Printf.sprintf "%s %dus" (named e.a8) e.a32
  | Race_suspect -> Printf.sprintf "%s d%d" (named e.a8) e.a16

(* Pair an end event with the most recent matching begin on the same
   domain (same query id / payload) to print the elapsed time inline. *)
let render ?(names = []) evs =
  let buf = Buffer.create 1024 in
  let t0 = match evs with [] -> 0L | e :: _ -> e.time_us in
  let opens : (int * int * int, int64) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun e ->
      let rel = Int64.to_float (Int64.sub e.time_us t0) /. 1000. in
      let dur =
        match begin_of e.kind with
        | None ->
          (match e.kind with
          | Query_begin | Phase_begin | Flush_begin | Compact_begin ->
            Hashtbl.replace opens
              (e.domain, kind_code e.kind, e.a32 lxor (e.a8 lsl 24))
              e.time_us
          | _ -> ());
          ""
        | Some b -> (
          let key = (e.domain, kind_code b, e.a32 lxor (e.a8 lsl 24)) in
          match Hashtbl.find_opt opens key with
          | None -> ""
          | Some t ->
            Hashtbl.remove opens key;
            Printf.sprintf "  (%.3f ms)"
              (Int64.to_float (Int64.sub e.time_us t) /. 1000.))
      in
      Buffer.add_string buf
        (Printf.sprintf "%+12.3f ms  d%-2d %-13s %s%s\n" rel e.domain
           (kind_name e.kind) (describe names e) dur))
    evs;
  Buffer.contents buf

let render_json ?(names = []) evs =
  let entry e =
    let name =
      match e.kind with
      | Phase_begin | Phase_end | Lock_wait | Race_suspect -> (
        match List.assoc_opt e.a8 names with
        | Some n -> Printf.sprintf ",\"name\":\"%s\"" (String.escaped n)
        | None -> "")
      | _ -> ""
    in
    Printf.sprintf
      "{\"t_us\":%Ld,\"domain\":%d,\"kind\":\"%s\",\"a8\":%d,\"a16\":%d,\"a32\":%d%s}"
      e.time_us e.domain (kind_name e.kind) e.a8 e.a16 e.a32 name
  in
  "[" ^ String.concat "," (List.map entry evs) ^ "]"
