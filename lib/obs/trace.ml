type span = {
  name : string;
  start_s : float;
  mutable duration_s : float;
  mutable attrs : (string * string) list; (* reversed while recording *)
  mutable children : span list; (* reversed while recording *)
  mutable closed : bool; (* once closed, attrs/children are forward order *)
}

type t = { trace_id : int; root_span : span; mutable stack : span list }

let next_seq = Atomic.make 1

let fresh_id () =
  (* µs clock xor a process-wide sequence, masked to 31 bits so the id
     fits the u32 wire field on 32-bit and 64-bit builds alike *)
  let us = Int64.of_float (Unix.gettimeofday () *. 1e6) in
  let seq = Atomic.fetch_and_add next_seq 1 in
  Int64.to_int (Int64.logand (Int64.logxor us (Int64.of_int (seq * 2654435761))) 0x3FFFFFFFL)
  lor 1

let open_span name =
  { name; start_s = Unix.gettimeofday (); duration_s = -1.; attrs = [];
    children = []; closed = false }

let create ?id name =
  let trace_id = match id with Some i -> i land 0x7FFFFFFF | None -> fresh_id () in
  { trace_id; root_span = open_span name; stack = [] }

let id t = t.trace_id

let innermost t = match t.stack with s :: _ -> s | [] -> t.root_span

let span t name f =
  let s = open_span name in
  let parent = innermost t in
  parent.children <- s :: parent.children;
  t.stack <- s :: t.stack;
  Fun.protect
    ~finally:(fun () ->
      s.duration_s <- Unix.gettimeofday () -. s.start_s;
      (match t.stack with
      | top :: rest when top == s -> t.stack <- rest
      | _ ->
          (* f leaked spans (raised past a nested open): drop down to s *)
          let rec pop = function
            | top :: rest when top == s -> rest
            | _ :: rest -> pop rest
            | [] -> []
          in
          t.stack <- pop t.stack))
    f

let add_attr t k v =
  let s = innermost t in
  s.attrs <- (k, v) :: s.attrs

let rec close_rec s =
  if not s.closed then begin
    s.closed <- true;
    List.iter close_rec s.children;
    s.children <- List.rev s.children;
    s.attrs <- List.rev s.attrs;
    if s.duration_s < 0. then s.duration_s <- Unix.gettimeofday () -. s.start_s
  end

let finish t =
  t.stack <- [];
  close_rec t.root_span;
  t.root_span

let root t = t.root_span

let make_span ?(attrs = []) ?(children = []) ~name ~start_s ~duration_s () =
  { name; start_s; duration_s; attrs; children; closed = true }

let graft t sub =
  let parent = innermost t in
  parent.children <- sub :: parent.children

(* ---- rendering ---- *)

let in_order l =
  (* spans still recording hold children reversed; finished ones hold
     them forward. Render in start order either way. *)
  List.stable_sort (fun a b -> Float.compare a.start_s b.start_s) l

let render span =
  let buf = Buffer.create 256 in
  let rec go depth s =
    let dur =
      if s.duration_s < 0. then "open"
      else Printf.sprintf "%.3f ms" (s.duration_s *. 1e3)
    in
    let attrs =
      match (if s.closed then s.attrs else List.rev s.attrs) with
      | [] -> ""
      | l -> "  " ^ String.concat " " (List.map (fun (k, v) -> k ^ "=" ^ v) l)
    in
    Buffer.add_string buf
      (Printf.sprintf "%s%-*s %10s%s\n" (String.make (depth * 2) ' ')
         (max 1 (28 - (depth * 2)))
         s.name dur attrs);
    List.iter (go (depth + 1)) (in_order s.children)
  in
  go 0 span;
  Buffer.contents buf

(* ---- wire form ---- *)

let escape v =
  let buf = Buffer.create (String.length v) in
  String.iter
    (fun c ->
      match c with
      | '\t' -> Buffer.add_string buf "%09"
      | '\n' -> Buffer.add_string buf "%0a"
      | '=' -> Buffer.add_string buf "%3d"
      | '%' -> Buffer.add_string buf "%25"
      | c -> Buffer.add_char buf c)
    v;
  Buffer.contents buf

let unescape v =
  let buf = Buffer.create (String.length v) in
  let n = String.length v in
  let i = ref 0 in
  while !i < n do
    (if v.[!i] = '%' && !i + 2 < n then begin
       (match String.sub v (!i + 1) 2 with
       | "09" -> Buffer.add_char buf '\t'
       | "0a" -> Buffer.add_char buf '\n'
       | "3d" -> Buffer.add_char buf '='
       | "25" -> Buffer.add_char buf '%'
       | other -> Buffer.add_char buf '%'; Buffer.add_string buf other);
       i := !i + 3
     end
     else begin
       Buffer.add_char buf v.[!i];
       incr i
     end)
  done;
  Buffer.contents buf

let to_wire ?(id = 0) span =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "trace %d\n" id);
  let rec go depth s =
    let attrs =
      String.concat "\t"
        (List.map (fun (k, v) -> escape k ^ "=" ^ escape v) s.attrs)
    in
    Buffer.add_string buf
      (Printf.sprintf "%d\t%.0f\t%.0f\t%s%s\n" depth (s.start_s *. 1e6)
         (Float.max 0. s.duration_s *. 1e6)
         (escape s.name)
         (if attrs = "" then "" else "\t" ^ attrs));
    List.iter (go (depth + 1)) s.children
  in
  go 0 span;
  Buffer.contents buf

let of_wire text =
  let lines = String.split_on_char '\n' text in
  match lines with
  | header :: rest when String.length header > 6 && String.sub header 0 6 = "trace " -> (
      match int_of_string_opt (String.sub header 6 (String.length header - 6)) with
      | None -> None
      | Some id -> (
          let parse_line line =
            match String.split_on_char '\t' line with
            | depth :: start_us :: dur_us :: name :: attrs -> (
                match
                  ( int_of_string_opt depth,
                    float_of_string_opt start_us,
                    float_of_string_opt dur_us )
                with
                | Some d, Some st, Some du ->
                    let attrs =
                      List.filter_map
                        (fun a ->
                          match String.index_opt a '=' with
                          | Some i ->
                              Some
                                ( unescape (String.sub a 0 i),
                                  unescape
                                    (String.sub a (i + 1)
                                       (String.length a - i - 1)) )
                          | None -> None)
                        attrs
                    in
                    Some
                      ( d,
                        make_span ~attrs ~name:(unescape name)
                          ~start_s:(st /. 1e6) ~duration_s:(du /. 1e6) () )
                | _ -> None)
            | _ -> None
          in
          let entries =
            List.filter_map parse_line
              (List.filter (fun l -> l <> "") rest)
          in
          match entries with
          | [] -> None
          | (0, root) :: rest ->
              (* rebuild the tree from depth-annotated preorder lines *)
              let ok = ref true in
              let stack = ref [ (0, root) ] in
              List.iter
                (fun (d, s) ->
                  (* pop to the parent at depth d-1 *)
                  while
                    (match !stack with
                     | (td, _) :: _ -> td >= d
                     | [] -> false)
                  do
                    stack := List.tl !stack
                  done;
                  match !stack with
                  | (pd, parent) :: _ when pd = d - 1 ->
                      parent.children <- s :: parent.children;
                      stack := (d, s) :: !stack
                  | _ -> ok := false)
                rest;
              if not !ok then None
              else begin
                (* children were prepended during assembly *)
                let rec fix s =
                  s.children <- List.rev s.children;
                  List.iter fix s.children
                in
                fix root;
                Some (id, root)
              end
          | _ -> None))
  | _ -> None
