let sanitize v =
  String.map (fun c -> if c = ' ' || c = '\n' || c = '\t' then '_' else c) v

let line ?digest ?trace ?(extra = []) ~latency_ms ~threshold_ms () =
  let buf = Buffer.create 128 in
  Buffer.add_string buf "slow_query";
  (match digest with
  | Some d -> Buffer.add_string buf (Printf.sprintf " digest=%s" (sanitize d))
  | None -> ());
  Buffer.add_string buf
    (Printf.sprintf " latency_ms=%.1f threshold_ms=%.1f" latency_ms threshold_ms);
  (match trace with
  | None -> ()
  | Some (root : Trace.span) ->
      let phases =
        List.map
          (fun (s : Trace.span) ->
            Printf.sprintf "%s=%.1f" (sanitize s.name)
              (Float.max 0. s.duration_s *. 1e3))
          root.Trace.children
      in
      if phases <> [] then
        Buffer.add_string buf
          (Printf.sprintf " phases=[%s]" (String.concat "," phases));
      let io =
        List.map
          (fun (k, v) -> Printf.sprintf "%s=%s" (sanitize k) (sanitize v))
          root.Trace.attrs
      in
      if io <> [] then
        Buffer.add_string buf
          (Printf.sprintf " io=[%s]" (String.concat "," io)));
  List.iter
    (fun (k, v) ->
      Buffer.add_string buf (Printf.sprintf " %s=%s" (sanitize k) (sanitize v)))
    extra;
  Buffer.contents buf
