(* ---- bounded retention ----

   The server keeps the most recent slow-query lines for inspection
   ([nscq stats --connect]); under sustained slow traffic an unbounded
   list would grow without limit, so retention is a fixed ring — the
   oldest entry is overwritten and counted, never accumulated. *)

type t = {
  lock : Lockdep.t;
  race : Racesan.cell;
  ring : string array; [@lint.guarded_by lock]
  mutable next : int; [@lint.guarded_by lock] (* total entries ever added *)
}

let create ?(capacity = 128) () =
  let lock = Lockdep.create "obs.slow_log" in
  {
    lock;
    race = Racesan.register ~name:"obs.slow_log.ring" ~lock;
    ring = Array.make (max 1 capacity) "";
    next = 0;
  }

let capacity t = Array.length t.ring

let add t line =
  Lockdep.protect t.lock (fun () ->
      Racesan.check t.race;
      t.ring.(t.next mod Array.length t.ring) <- line;
      t.next <- t.next + 1)

let length t =
  Lockdep.protect t.lock (fun () -> min t.next (Array.length t.ring))

let dropped t =
  Lockdep.protect t.lock (fun () -> max 0 (t.next - Array.length t.ring))

let entries t =
  Lockdep.protect t.lock (fun () ->
      Racesan.check t.race;
      let cap = Array.length t.ring in
      let n = min t.next cap in
      List.init n (fun i -> t.ring.((t.next - n + i) mod cap)))

(* ---- line formatting ---- *)

let sanitize v =
  String.map (fun c -> if c = ' ' || c = '\n' || c = '\t' then '_' else c) v

let line ?digest ?trace ?(extra = []) ~latency_ms ~threshold_ms () =
  let buf = Buffer.create 128 in
  Buffer.add_string buf "slow_query";
  (match digest with
  | Some d -> Buffer.add_string buf (Printf.sprintf " digest=%s" (sanitize d))
  | None -> ());
  Buffer.add_string buf
    (Printf.sprintf " latency_ms=%.1f threshold_ms=%.1f" latency_ms threshold_ms);
  (match trace with
  | None -> ()
  | Some (root : Trace.span) ->
      let phases =
        List.map
          (fun (s : Trace.span) ->
            Printf.sprintf "%s=%.1f" (sanitize s.name)
              (Float.max 0. s.duration_s *. 1e3))
          root.Trace.children
      in
      if phases <> [] then
        Buffer.add_string buf
          (Printf.sprintf " phases=[%s]" (String.concat "," phases));
      let io =
        List.map
          (fun (k, v) -> Printf.sprintf "%s=%s" (sanitize k) (sanitize v))
          root.Trace.attrs
      in
      if io <> [] then
        Buffer.add_string buf
          (Printf.sprintf " io=[%s]" (String.concat "," io)));
  List.iter
    (fun (k, v) ->
      Buffer.add_string buf (Printf.sprintf " %s=%s" (sanitize k) (sanitize v)))
    extra;
  Buffer.contents buf
