(** The metrics registry: named, labelled counters, gauges and log2-bucket
    histograms behind one lock-cheap interface.

    The paper's empirical study (Sec. 5) argues entirely from measured
    access patterns — list lookups, cache hits, I/O — and this registry is
    where every subsystem now publishes those quantities under one naming
    scheme instead of keeping private counter piles. A registry renders two
    ways: {!render_text} is Prometheus-style text exposition (the payload
    [nscq stats] prints and the server's [Stats] verb carries), and
    {!render_json} a machine-readable dump for scripts and benches.

    Recording is lock-free: counters and histogram buckets are [Atomic]
    cells, so concurrent bumps from {!Containment.Parallel} worker domains
    sum exactly (a property the test suite checks). The registry's own
    mutex guards only metric {e registration}, which is rare and off the
    hot path.

    Existing mutable counter piles (e.g. {!Storage.Io_stats}, the shard
    router's per-shard stats) attach through {!register_callback}: the
    registry samples the callback at render time, so per-handle counters
    surface without being rewritten. *)

type t
(** A registry. Create one per observed process (or per test). *)

val create : unit -> t

type labels = (string * string) list
(** Label pairs, e.g. [[("shard", "3"); ("kind", "local")]]. Order is
    normalized internally; the same set in any order names the same
    series. *)

(** {1 Counters}

    Monotonically increasing integers (requests served, lists read). *)

type counter

val counter : t -> ?help:string -> ?labels:labels -> string -> counter
(** Registers (or retrieves — same name and labels yield the same
    instrument) a counter.
    @raise Invalid_argument if the name is already registered as a
    different kind. *)

val inc : counter -> unit
val add : counter -> int -> unit
val counter_value : counter -> int

(** {1 Gauges}

    Point-in-time values (queue depth, high-water marks, ratios). *)

type gauge

val gauge : t -> ?help:string -> ?labels:labels -> string -> gauge
val set : gauge -> float -> unit

val set_max : gauge -> float -> unit
(** Lock-free monotone maximum: keeps the larger of the current and given
    value (high-water marks from concurrent recorders). *)

val gauge_value : gauge -> float

(** {1 Histograms}

    Log2-scaled buckets: bucket [i] holds values in [(2^i, 2^(i+1)]]
    (bucket 0 also takes everything [<= 2]), 64 buckets. Quantiles read
    the bucket upper edge, so they are exact to within a factor of 2 —
    plenty for p95-style reporting without unbounded memory. The unit is
    the caller's (suffix the metric name, e.g. [_us]). *)

type histogram

val histogram : t -> ?help:string -> ?labels:labels -> string -> histogram
val observe : histogram -> float -> unit

val quantile : histogram -> float -> float
(** [quantile h 0.95] is the upper bucket edge containing the p95 rank.
    Returns [0.] for the empty histogram (no observations) — callers that
    render quantiles before traffic arrives rely on this. *)

val hist_count : histogram -> int
val hist_sum : histogram -> float

(** {1 Callback metrics} *)

val register_callback :
  t -> ?help:string -> ?labels:labels -> kind:[ `Counter | `Gauge ] ->
  string -> (unit -> float) -> unit
(** Attaches an externally-owned value, sampled at render time. Re-registering
    the same name and labels replaces the callback (a reopened handle takes
    over its series). The callback must be safe to call from the rendering
    thread. *)

(** {1 Rendering} *)

val render_text : t -> string
(** Prometheus-style text exposition: [# HELP] / [# TYPE] comments, one
    [name{label="v"} value] line per series, histograms as cumulative
    [_bucket{le="..."}] series plus [_sum] and [_count]. Series are sorted
    by name then labels, so the output is deterministic. *)

val render_json : t -> string
(** A JSON dump of the same data: an array of objects with [name],
    [labels], [kind] and [value] (histograms carry [count], [sum] and
    [p50]/[p95]/[p99]). *)
