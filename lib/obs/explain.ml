(* A structured query plan/profile: what the engine decided (atom
   retrieval order, posting lengths, codecs) and what actually happened
   (estimated vs. measured candidates per phase). Layers compose by
   nesting: a live store carries one sub-plan per segment, the router
   one per shard, so one tree explains a query end to end. The type is
   deliberately plain data — the engines build it, this module only
   renders and transports it. *)

type atom_plan = {
  atom : string;
  list_len : int; (* postings in S_IF(atom) *)
  bytes : int; (* encoded payload size *)
  codec : string; (* "blocked" | "varint" | "bitpacked" | "-" *)
  blocks : int; (* blocks in a blocked payload, 0 otherwise *)
}

type phase = {
  phase : string;
  est : int; (* estimated candidates, -1 = not applicable *)
  actual : int; (* measured candidates, -1 = not applicable *)
  ms : float;
  notes : (string * string) list;
}

type t = {
  target : string; (* "store", "live", "segment:...", "shard:N", ... *)
  query : string;
  config : (string * string) list;
  atoms : atom_plan list; (* planned retrieval order, rarest first *)
  phases : phase list;
  records : int; (* result size, -1 = unknown *)
  subs : t list; (* per-segment / per-shard sub-plans *)
}

let make ?(config = []) ?(atoms = []) ?(phases = []) ?(records = -1)
    ?(subs = []) ~target ~query () =
  { target; query; config; atoms; phases; records; subs }

let opt_count n = if n < 0 then "-" else string_of_int n

(* ---- text rendering ---- *)

let render t =
  let buf = Buffer.create 512 in
  let rec go indent t =
    let pad = String.make indent ' ' in
    Buffer.add_string buf
      (Printf.sprintf "%sexplain %s  query=%s  records=%s\n" pad t.target
         t.query (opt_count t.records));
    if t.config <> [] then
      Buffer.add_string buf
        (Printf.sprintf "%s  config %s\n" pad
           (String.concat " "
              (List.map (fun (k, v) -> k ^ "=" ^ v) t.config)));
    if t.atoms <> [] then begin
      Buffer.add_string buf (Printf.sprintf "%s  atoms (rarest first):\n" pad);
      List.iter
        (fun a ->
          Buffer.add_string buf
            (Printf.sprintf "%s    %-24s len=%-8d bytes=%-8d codec=%s%s\n" pad
               a.atom a.list_len a.bytes a.codec
               (if a.blocks > 0 then Printf.sprintf " blocks=%d" a.blocks
                else "")))
        t.atoms
    end;
    if t.phases <> [] then begin
      Buffer.add_string buf (Printf.sprintf "%s  phases:\n" pad);
      List.iter
        (fun p ->
          let notes =
            match p.notes with
            | [] -> ""
            | l ->
              "  "
              ^ String.concat " " (List.map (fun (k, v) -> k ^ "=" ^ v) l)
          in
          Buffer.add_string buf
            (Printf.sprintf "%s    %-12s est=%-8s actual=%-8s %8.3f ms%s\n"
               pad p.phase (opt_count p.est) (opt_count p.actual) p.ms notes))
        t.phases
    end;
    List.iter (go (indent + 2)) t.subs
  in
  go 0 t;
  Buffer.contents buf

(* ---- JSON rendering ---- *)

let json_escape v =
  let buf = Buffer.create (String.length v) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    v;
  Buffer.contents buf

let rec to_json t =
  let str s = "\"" ^ json_escape s ^ "\"" in
  let pairs l =
    "{"
    ^ String.concat "," (List.map (fun (k, v) -> str k ^ ":" ^ str v) l)
    ^ "}"
  in
  let atom a =
    Printf.sprintf
      "{\"atom\":%s,\"len\":%d,\"bytes\":%d,\"codec\":%s,\"blocks\":%d}"
      (str a.atom) a.list_len a.bytes (str a.codec) a.blocks
  in
  let phase p =
    Printf.sprintf
      "{\"phase\":%s,\"est\":%d,\"actual\":%d,\"ms\":%.3f,\"notes\":%s}"
      (str p.phase) p.est p.actual p.ms (pairs p.notes)
  in
  Printf.sprintf
    "{\"target\":%s,\"query\":%s,\"records\":%d,\"config\":%s,\"atoms\":[%s],\"phases\":[%s],\"subs\":[%s]}"
    (str t.target) (str t.query) t.records (pairs t.config)
    (String.concat "," (List.map atom t.atoms))
    (String.concat "," (List.map phase t.phases))
    (String.concat "," (List.map to_json t.subs))

(* ---- wire form ----

   Line-oriented like Trace.to_wire so it rides the existing text
   payloads: a header line, then per plan node (preorder) one [N] line
   followed by its [C]/[A]/[P] detail lines, all carrying the node's
   depth so of_wire can rebuild the nesting. Free-text fields share
   Trace's %-escaping. *)

let esc = Trace.escape
let unesc = Trace.unescape

let to_wire t =
  let buf = Buffer.create 512 in
  Buffer.add_string buf "explain 1\n";
  let kvs l =
    String.concat "\t" (List.map (fun (k, v) -> esc k ^ "=" ^ esc v) l)
  in
  let rec go depth t =
    Buffer.add_string buf
      (Printf.sprintf "N\t%d\t%s\t%d\t%s\n" depth (esc t.target) t.records
         (esc t.query));
    if t.config <> [] then
      Buffer.add_string buf
        (Printf.sprintf "C\t%d\t%s\n" depth (kvs t.config));
    List.iter
      (fun a ->
        Buffer.add_string buf
          (Printf.sprintf "A\t%d\t%s\t%d\t%d\t%s\t%d\n" depth (esc a.atom)
             a.list_len a.bytes (esc a.codec) a.blocks))
      t.atoms;
    List.iter
      (fun p ->
        Buffer.add_string buf
          (Printf.sprintf "P\t%d\t%s\t%d\t%d\t%.0f\t%s\n" depth (esc p.phase)
             p.est p.actual (p.ms *. 1e3) (kvs p.notes)))
      t.phases;
    List.iter (go (depth + 1)) t.subs
  in
  go 0 t;
  Buffer.contents buf

(* A mutable shell during reassembly. *)
type shell = {
  mutable node : t;
  mutable rev_subs : shell list;
}

let of_wire text =
  let lines = String.split_on_char '\n' text in
  match lines with
  | header :: rest
    when String.length header >= 9 && String.sub header 0 8 = "explain " -> (
    let parse_kvs fields =
      List.filter_map
        (fun f ->
          match String.index_opt f '=' with
          | Some i ->
            Some
              ( unesc (String.sub f 0 i),
                unesc (String.sub f (i + 1) (String.length f - i - 1)) )
          | None -> None)
        fields
    in
    let stack : (int * shell) list ref = ref [] in
    let root = ref None in
    let ok = ref true in
    let current depth =
      match !stack with
      | (d, sh) :: _ when d = depth -> Some sh
      | _ -> None
    in
    List.iter
      (fun line ->
        if !ok && line <> "" then
          match String.split_on_char '\t' line with
          | "N" :: d :: target :: records :: query :: _ -> (
            match (int_of_string_opt d, int_of_string_opt records) with
            | Some depth, Some records -> (
              let sh =
                {
                  node =
                    make ~records ~target:(unesc target)
                      ~query:(unesc query) ();
                  rev_subs = [];
                }
              in
              (* pop to this node's parent *)
              while
                match !stack with
                | (td, _) :: _ -> td >= depth
                | [] -> false
              do
                stack := List.tl !stack
              done;
              match (!stack, depth) with
              | [], 0 when !root = None ->
                root := Some sh;
                stack := [ (0, sh) ]
              | (pd, parent) :: _, _ when pd = depth - 1 ->
                parent.rev_subs <- sh :: parent.rev_subs;
                stack := (depth, sh) :: !stack
              | _ -> ok := false)
            | _ -> ok := false)
          | "C" :: d :: fields -> (
            match Option.bind (int_of_string_opt d) current with
            | Some sh ->
              sh.node <- { sh.node with config = parse_kvs fields }
            | None -> ok := false)
          | "A" :: d :: atom :: len :: bytes :: codec :: blocks :: _ -> (
            match
              ( Option.bind (int_of_string_opt d) current,
                int_of_string_opt len,
                int_of_string_opt bytes,
                int_of_string_opt blocks )
            with
            | Some sh, Some list_len, Some bytes, Some blocks ->
              let a =
                { atom = unesc atom; list_len; bytes;
                  codec = unesc codec; blocks }
              in
              sh.node <- { sh.node with atoms = sh.node.atoms @ [ a ] }
            | _ -> ok := false)
          | "P" :: d :: phase :: est :: actual :: dur_us :: notes -> (
            match
              ( Option.bind (int_of_string_opt d) current,
                int_of_string_opt est,
                int_of_string_opt actual,
                float_of_string_opt dur_us )
            with
            | Some sh, Some est, Some actual, Some dur ->
              let p =
                { phase = unesc phase; est; actual; ms = dur /. 1e3;
                  notes = parse_kvs notes }
              in
              sh.node <- { sh.node with phases = sh.node.phases @ [ p ] }
            | _ -> ok := false)
          | _ -> ok := false)
      rest;
    match (!ok, !root) with
    | true, Some sh ->
      let rec freeze sh =
        { sh.node with subs = List.rev_map freeze sh.rev_subs }
      in
      Some (freeze sh)
    | _ -> None)
  | _ -> None
