(** The live store's root metadata: which sealed segments exist, which
    global ids they hold, which WAL generation is current, and which
    sealed records are tombstoned.

    Like the shard {!Shard.Manifest}, the on-disk form is a magic prefix,
    a {!Storage.Codec} body, and a trailing CRC-32 — a truncated or
    bit-flipped manifest refuses to load instead of silently resurrecting
    deleted records. {!save} writes through a temp file and an atomic
    rename, so the manifest file is the live store's single commit point:
    a crash at any instant leaves either the old or the new manifest,
    never a mix (see {!Live_store} for the full recovery argument). *)

type segment = {
  file : string;  (** store file name, relative to the live directory *)
  ids : int array;
      (** segment-local record id → global record id, strictly ascending;
          tombstoned (purged-later) slots keep their entry so the mapping
          stays positional *)
}

type t = {
  next_id : int;  (** next global record id to assign *)
  next_seq : int;  (** next segment file sequence number *)
  wal_gen : int;  (** current WAL generation (wal-<gen>.log) *)
  tombstones : int array;
      (** deleted {e sealed} records, strictly ascending global ids;
          memtable deletes never appear here (their inserts are in the
          WAL, not in any segment) *)
  segments : segment list;
      (** oldest first; global-id ranges are disjoint and ascending *)
}

exception Corrupt of string
(** The file is not a live manifest, fails its checksum, or does not
    parse. *)

val magic : string
(** The 8-byte file prefix identifying a live-store manifest. *)

val version : int
(** Format version written by this build (currently 1). *)

val empty : t

(** {1 File layout}

    Every file of a live store lives flat in one directory. *)

val path : string -> string
(** [path dir] is the manifest file, [dir ^ "/live.manifest"]. *)

val wal_name : int -> string
val wal_path : string -> int -> string

val segment_name : int -> string
val segment_path : string -> int -> string

val is_live_dir : string -> bool
(** [true] iff the path is a directory containing a file that starts with
    {!magic} at {!path} — how the CLI auto-detects that a [--store] path
    is really a live store. *)

(** {1 Persistence} *)

val save : t -> string -> unit
(** [save t file] serializes, checksums, writes [file ^ ".tmp"] with an
    fsync, and renames over [file] — atomic on POSIX. *)

val load : string -> t
(** @raise Corrupt as documented above.
    @raise Sys_error if the file cannot be read. *)
