(** The live (mutable) collection: an LSM-style set of immutable sealed
    segments plus an in-memory memtable and a tombstone set, behind one
    lock.

    {2 Structure}

    - {e Sealed segments} ({!Segment}): full inverted files built by
      {!Invfile.Builder} over crash-safe {!Storage.Log_store} files,
      never written after sealing. Their global-id ranges are disjoint
      and ascending (oldest segment first).
    - {e Memtable}: an ordinary in-memory inverted file
      ({!Storage.Mem_store} + {!Invfile.Updater}) holding every record
      inserted since the last flush. Memtable global ids exceed every
      sealed id.
    - {e Tombstones}: global ids of deleted {e sealed} records (memtable
      deletes tombstone the memtable record directly). Queries filter
      them; compaction purges them physically.
    - {e WAL} ({!Wal}): every accepted write is logged (and fsynced)
      before it is applied, so reopening replays exactly the
      acknowledged state.
    - {e Manifest} ({!Live_manifest}): the single commit point, swapped
      by atomic rename at flush and compaction seal points.

    {2 Semantics}

    A containment query is a per-record semi-join, so evaluating each
    segment (and the memtable) independently and concatenating the
    translated id lists is {e exactly} the result a from-scratch rebuild
    of one store over the live records would give — for every engine
    configuration (Hom/Iso/Homeo, flat and nested, any scope). The
    qcheck differential suite in [test/test_live.ml] pins this, byte for
    byte, including across crash-recovery at every write boundary.

    {2 Concurrency}

    All public operations serialize on one {!Lockdep} mutex
    (["live.store"]), so a store may be shared freely across domains
    (the server's worker pool does). A join holds the lock end to end —
    the segment set it runs over is pinned for the whole join.
    Background compaction does its heavy build {e off} the lock on a
    dedicated domain, taking it only to pick its inputs and to swap the
    result in. *)

type config = {
  flush_records : int;
      (** auto-flush the memtable once it holds this many records
          (0 = manual flush only) *)
  max_segments : int;
      (** background compaction trigger: keep at most this many segments
          (0 = never trigger) *)
  auto_compact : bool;
      (** run a dedicated compaction domain (started on open, joined on
          close) *)
  wal_sync : bool;  (** fsync the WAL on every accepted write *)
  wrap : string -> Storage.Kv.t -> Storage.Kv.t;
      (** interposes on every store handle the live store opens or
          creates (path, handle) — the fault-injection hook the crash
          sweep uses; identity in production *)
}

val default : config
(** [flush_records = 4096], [max_segments = 8], [auto_compact = false],
    [wal_sync = true], [wrap] = identity. *)

type t

val create : ?config:config -> string -> t
(** [create dir] initialises a fresh live store in [dir] (created if
    missing, which must not already contain one).
    @raise Invalid_argument if [dir] already holds a live store. *)

val open_store : ?config:config -> string -> t
(** Opens an existing live store: loads the manifest, opens every sealed
    segment, deletes orphan segment/WAL files a crash left behind
    (anything not referenced by the manifest), and replays the current
    WAL generation into a fresh memtable.
    @raise Live_manifest.Corrupt / Wal.Corrupt /
    Invfile.Inverted_file.Malformed on damage beyond crash recovery
    (see {!verify} / {!repair}). *)

val is_live_dir : string -> bool
(** Alias of {!Live_manifest.is_live_dir}. *)

val close : t -> unit
(** Stops the compaction domain (if any) and closes every handle. Does
    {e not} flush: durability comes from the WAL. Idempotent. *)

val dir : t -> string

(** {1 Writes}

    After a {!Storage.Fault.Crashed} escape the handle is poisoned —
    close and reopen it; the WAL replay restores every acknowledged
    write. *)

val insert : t -> Nested.Value.t -> int
(** Logs, applies to the memtable, and returns the new record's global
    id (monotonic, never reused). May trigger an auto-flush.
    @raise Invalid_argument if the value is a bare atom, or the store is
    closed. *)

val delete : t -> int -> bool
(** Deletes by global id: a memtable record is tombstoned in place, a
    sealed record enters the tombstone set (purged at the next
    compaction covering its segment). [false] if the id is unknown,
    already deleted, or already purged. *)

(** {1 Queries}

    Results are ascending global record ids — byte-identical (as an id
    sequence) to a from-scratch rebuild over the live records. [config]
    defaults to {!Containment.Engine.default}; a config carrying a
    [filter_index] is rejected (a Bloom filter is built against one
    store's record ids and cannot span segments). *)

val query :
  ?config:Containment.Engine.config -> ?trace:Obs.Trace.t ->
  t -> Nested.Value.t -> int list
(** With [?trace], one [segment:<file>] span per sealed segment plus a
    [memtable] span, each carrying the engine's own phase spans. *)

val query_batch :
  ?config:Containment.Engine.config ->
  t -> Nested.Value.t list -> int list list
(** One lock acquisition and one {!Containment.Engine.query_batch} per
    segment for the whole block. *)

val explain :
  ?config:Containment.Engine.config -> ?target:string ->
  t -> Nested.Value.t -> Obs.Explain.t
(** The live-store EXPLAIN: one
    {!Containment.Engine.profile_of_trace} sub-plan per sealed segment
    (target [segment:<file>]) plus one for the memtable, each derived
    from a single evaluation of that part, under the top-level [target]
    (default ["live"]) whose [records] is the post-tombstone total —
    exactly {!query}'s result count. Rejects a [filter_index] config as
    {!query} does. *)

val join :
  ?config:Join.Engine.config -> ?trace:Obs.Trace.t ->
  t -> Nested.Value.t list -> (int * int) list
(** Set-containment join of an outer collection against the live
    records: {!Join.Engine.join} per segment plus the memtable, under
    the lock for the whole join — the segment set is pinned, concurrent
    writes wait. Pairs are [(outer index, global record id)], ascending
    by outer index then id, equal to {!Join.Engine.naive} over a
    rebuilt store. *)

val record_value : t -> int -> Nested.Value.t option
(** The stored value behind a live global id; [None] for deleted,
    purged, or unknown ids. *)

val fold_live : t -> init:'a -> f:('a -> int -> Nested.Value.t -> 'a) -> 'a
(** Folds over the live records in ascending global-id order (the export
    path, and the differential oracle's input). *)

(** {1 Maintenance} *)

val flush : ?trace:Obs.Trace.t -> t -> int
(** Seals the memtable: builds a new segment from its live records,
    rotates the WAL, commits the manifest (the fsync fence), and resets
    the memtable. Returns the number of records sealed (0 still rotates
    the WAL and persists the tombstone set, keeping recovery O(recent)).
    With [?trace], records a [flush] span. *)

val compact : ?trace:Obs.Trace.t -> ?all:bool -> t -> int option
(** One leveled compaction step: merges the adjacent run of segments
    with the smallest combined live size (every segment when [~all])
    through {!Invfile.Merger.append}, purges tombstones falling in the
    merged range, and atomically swaps the manifest. The heavy build
    runs off the lock (concurrent queries and writes proceed); returns
    [Some n] ([n] segments merged) or [None] when there is nothing to do
    (fewer than two segments and no tombstones to purge, or a compaction
    is already running). With [?trace], records a [compact] span. *)

val segment_count : t -> int
val memtable_records : t -> int
(** Live (non-deleted) memtable records. *)

val live_records : t -> int
(** Total live records across segments and memtable. *)

val tombstone_count : t -> int
val next_id : t -> int

(** {1 Observability} *)

val register : Obs.Metrics.t -> ?labels:(string * string) list -> t -> unit
(** Publishes gauges [nscq_live_memtable_records], [nscq_live_segments],
    [nscq_live_records], [nscq_live_tombstones] and counters
    [nscq_live_inserts_total], [nscq_live_deletes_total],
    [nscq_live_flushes_total], [nscq_live_compactions_total] as render-
    time callbacks, plus duration histograms [nscq_live_flush_ms] and
    [nscq_live_compact_ms] observed at each flush/compaction. *)

val totals : t -> (string * int) list
(** The same quantities as {!register}, as an alist — the [nscq stats]
    rendering for live stores. *)

(** {1 Verification & repair} *)

val verify : t -> (string * string) list
(** The live-store fsck: per-segment {!Invfile.Integrity.check}, id-map
    invariants (length, strict ascent, disjoint ascending ranges),
    tombstones resolvable to sealed slots, WAL op checksums
    ({!Wal.verify}), memtable integrity. [(what, detail)] pairs; empty
    means consistent. *)

val repair : t -> string list
(** Repairs what {!verify} can detect per segment (via
    {!Containment.Engine.repair} — journal rollback, then an index
    rebuild from the stored records when needed). Returns a description
    of each action taken. WAL torn tails are already healed on open. *)

(**/**)

(* Test hook: called at named write boundaries inside flush
   ("flush:segment-built", "flush:wal-rotated", "flush:manifest-swapped")
   and compaction ("compact:dst-built", "compact:manifest-swapped") —
   the crash sweep raises from it. *)
val set_step_hook : t -> (string -> unit) -> unit

(**/**)
