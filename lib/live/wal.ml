module Codec = Storage.Codec

type op = Insert of { id : int; value : Nested.Value.t } | Delete of int

type t = {
  kv : Storage.Kv.t;
  file : string;
  sync : bool;
  mutable next_seq : int;
  mutable closed : bool;
}

exception Corrupt of string

(* Fixed-width decimal sequence keys sort lexicographically in append
   order, so replay is a key sort away on any backend. *)
let key seq = Printf.sprintf "w:%012d" seq

let is_op_key k = String.length k > 2 && String.sub k 0 2 = "w:"

let encode_op op =
  let w = Codec.writer () in
  (match op with
  | Insert { id; value } ->
    Codec.write_varint w 0;
    Codec.write_varint w id;
    Codec.write_string w (Nested.Value.to_string value)
  | Delete id ->
    Codec.write_varint w 1;
    Codec.write_varint w id);
  let body = Codec.contents w in
  let b = Bytes.create (String.length body + 4) in
  Bytes.blit_string body 0 b 0 (String.length body);
  Bytes.set_int32_be b (String.length body) (Storage.Checksum.crc32 body);
  Bytes.unsafe_to_string b

let decode_op s =
  if String.length s < 4 then raise (Corrupt "op record too short");
  let blen = String.length s - 4 in
  if String.get_int32_be s blen <> Storage.Checksum.crc32_sub s ~pos:0 ~len:blen
  then raise (Corrupt "op record checksum mismatch");
  let r = Codec.reader_sub s ~pos:0 ~len:blen in
  match
    match Codec.read_varint r with
    | 0 ->
      let id = Codec.read_varint r in
      let text = Codec.read_string r in
      (match Nested.Syntax.of_string_opt text with
      | Some value -> Insert { id; value }
      | None -> raise (Corrupt "insert payload does not parse"))
    | 1 -> Delete (Codec.read_varint r)
    | n -> raise (Corrupt (Printf.sprintf "unknown op tag %d" n))
  with
  | op -> op
  | exception Codec.Corrupt m -> raise (Corrupt ("malformed op: " ^ m))

let create ~wrap ~sync file =
  { kv = wrap file (Storage.Log_store.create file); file; sync;
    next_seq = 0; closed = false }

let sorted_entries kv =
  let entries = ref [] in
  kv.Storage.Kv.iter (fun k v -> if is_op_key k then entries := (k, v) :: !entries);
  List.sort (fun (a, _) (b, _) -> String.compare a b) !entries

let open_existing ~wrap ~sync file =
  let kv = wrap file (Storage.Log_store.open_existing file) in
  let entries = sorted_entries kv in
  let n = List.length entries in
  let healed = ref false in
  let ops =
    List.mapi
      (fun i (k, v) ->
        match decode_op v with
        | op -> Some op
        | exception Corrupt m ->
          (* a torn final op was never acknowledged — heal it away, like
             the log store's own tail truncation; damage anywhere earlier
             is real corruption *)
          if i = n - 1 then begin
            ignore (kv.Storage.Kv.delete k);
            kv.Storage.Kv.sync ();
            healed := true;
            None
          end
          else raise (Corrupt m))
      entries
    |> List.filter_map Fun.id
  in
  let next_seq = if !healed then n - 1 else n in
  ({ kv; file; sync; next_seq; closed = false }, ops)

let append t op =
  t.kv.Storage.Kv.put (key t.next_seq) (encode_op op);
  t.next_seq <- t.next_seq + 1;
  if t.sync then
    if Obs.Recorder.enabled () then begin
      (* the fsync is the write path's dominant stall — time it into the
         flight recorder so a p99 outlier can name it *)
      let t0 = Unix.gettimeofday () in
      t.kv.Storage.Kv.sync ();
      Obs.Recorder.wal_fsync
        ~dur_us:(int_of_float ((Unix.gettimeofday () -. t0) *. 1e6))
    end
    else t.kv.Storage.Kv.sync ()

let length t = t.next_seq
let path t = t.file

let verify t =
  List.filter_map
    (fun (k, v) ->
      match decode_op v with
      | _ -> None
      | exception Corrupt m -> Some (Printf.sprintf "wal op %s: %s" k m))
    (sorted_entries t.kv)

let close t =
  if not t.closed then begin
    t.closed <- true;
    t.kv.Storage.Kv.close ()
  end
