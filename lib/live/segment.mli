(** One sealed segment of a live store: an immutable, fully-built
    inverted file (a {!Invfile.Builder} product over a
    {!Storage.Log_store}) plus the positional map from its dense local
    record ids back to the global ids of the live collection.

    Segments are never written after sealing — deletes are recorded in
    the live store's tombstone set and physically purged only when
    compaction rewrites the segment — so handles can be handed between
    domains at lock boundaries and reopened freely. *)

type t = {
  file : string;  (** store file name, relative to the live directory *)
  seg_path : string;  (** absolute/joined path of the store file *)
  inv : Invfile.Inverted_file.t;
  ids : int array;
      (** local record id → global record id, strictly ascending; entries
          for slots tombstoned by a past compaction purge remain (the map
          is positional) *)
}

val open_seg :
  wrap:(string -> Storage.Kv.t -> Storage.Kv.t) ->
  dir:string -> Live_manifest.segment -> t
(** Opens a manifest-listed segment.
    @raise Invalid_argument if the id map length disagrees with the
    store's record count.
    @raise Invfile.Inverted_file.Malformed / Failure if the store is
    missing or corrupt. *)

val close : t -> unit

val global : t -> int -> int
(** [global t local] is the global id of local record [local]. *)

val local_of_global : t -> int -> int option
(** Binary search over the id map. *)

val min_gid : t -> int
val max_gid : t -> int
(** Smallest / largest global id held (including purged slots);
    [min_gid > max_gid] (1, 0) for an empty segment. *)

val live_count : t -> int
(** Records not tombstoned in the store itself (purged slots). *)

val to_manifest : t -> Live_manifest.segment
