module IF = Invfile.Inverted_file

type t = {
  file : string;
  seg_path : string;
  inv : IF.t;
  ids : int array;
}

let open_seg ~wrap ~dir (m : Live_manifest.segment) =
  let seg_path = Filename.concat dir m.Live_manifest.file in
  let kv = wrap seg_path (Storage.Log_store.open_existing seg_path) in
  let inv = IF.open_store kv in
  if IF.record_count inv <> Array.length m.Live_manifest.ids then begin
    IF.close inv;
    invalid_arg
      (Printf.sprintf "segment %s: %d records but %d id mappings"
         m.Live_manifest.file (IF.record_count inv)
         (Array.length m.Live_manifest.ids))
  end;
  { file = m.Live_manifest.file; seg_path; inv; ids = m.Live_manifest.ids }

let close t = IF.close t.inv
let global t local = t.ids.(local)

let local_of_global t gid =
  let lo = ref 0 and hi = ref (Array.length t.ids - 1) in
  let found = ref None in
  while !found = None && !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    let v = t.ids.(mid) in
    if v = gid then found := Some mid
    else if v < gid then lo := mid + 1
    else hi := mid - 1
  done;
  !found

let min_gid t = if Array.length t.ids = 0 then 1 else t.ids.(0)
let max_gid t = if Array.length t.ids = 0 then 0 else t.ids.(Array.length t.ids - 1)

let live_count t =
  let n = ref 0 in
  for local = 0 to IF.record_count t.inv - 1 do
    if not (Invfile.Updater.is_deleted t.inv local) then incr n
  done;
  !n

let to_manifest t = { Live_manifest.file = t.file; ids = t.ids }
