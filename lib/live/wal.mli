(** The live store's write-ahead (redo) log.

    Every accepted [insert]/[delete] is appended here {e before} it is
    applied to the in-memory memtable, and fsynced (by default) before
    the call returns — reopening the store replays the log to rebuild
    exactly the acknowledged memtable and tombstone state. The log is
    rotated at each memtable flush: once the manifest commit has sealed
    the memtable into a segment, a fresh generation starts empty and the
    old file is deleted.

    The backing file is a {!Storage.Log_store}, so a torn {e tail} from a
    crash truncates back to the last intact record on open for free; on
    top of that every op carries its own trailing CRC-32, so a torn
    {e value} (intact at the kv layer but cut mid-payload) is also
    detected — dropped when it is the final op, refused as corruption
    anywhere else. *)

type op =
  | Insert of { id : int; value : Nested.Value.t }
      (** [id] is the global record id assigned at append time — replay
          restores ids exactly, never re-derives them *)
  | Delete of int  (** global record id *)

type t

exception Corrupt of string
(** A non-final op record fails its checksum or does not parse. *)

val create :
  wrap:(string -> Storage.Kv.t -> Storage.Kv.t) ->
  sync:bool -> string -> t
(** Creates a fresh (empty) generation at the given path, truncating any
    existing file. [wrap] interposes on the backing store handle (the
    fault-injection hook — identity in production); [sync] fsyncs after
    every append. *)

val open_existing :
  wrap:(string -> Storage.Kv.t -> Storage.Kv.t) ->
  sync:bool -> string -> t * op list
(** Recovers a generation: torn-tail truncation at the kv layer, then the
    ops in append order — a torn final op is silently dropped (it was
    never acknowledged).
    @raise Corrupt if a non-final op is damaged.
    @raise Failure if the file is missing or has a bad header. *)

val append : t -> op -> unit
(** Appends (and fsyncs, when the log was opened with [sync]). *)

val length : t -> int
(** Ops appended or replayed so far this generation. *)

val path : t -> string

val verify : t -> string list
(** Re-reads every op record and checks its CRC and parse — the live
    half of [nscq check]. Empty means consistent. *)

val close : t -> unit
(** Idempotent. *)
