module IF = Invfile.Inverted_file
module E = Containment.Engine
module M = Live_manifest

type config = {
  flush_records : int;
  max_segments : int;
  auto_compact : bool;
  wal_sync : bool;
  wrap : string -> Storage.Kv.t -> Storage.Kv.t;
}

let default =
  {
    flush_records = 4096;
    max_segments = 8;
    auto_compact = false;
    wal_sync = true;
    wrap = (fun _ kv -> kv);
  }

type t = {
  dir : string;
  config : config;
  mutex : Lockdep.t;
  race : Racesan.cell;
      (* guards the mutable store state below (segments, memtable,
         tombstones, counters that queries read): every locked section
         asserts the contract under NSCQ_TSAN=1 *)
  compact_wake : Condition.t;
  mutable segments : Segment.t list;  (* oldest first; gid ranges ascending *)
  mutable mem : IF.t;
  mutable mem_gids : int array;  (* memtable local id -> global id *)
  mutable mem_len : int;
  mutable mem_live : int;
  tombstones : (int, unit) Hashtbl.t;  (* deleted sealed records *)
  mutable live : int;  (* live records across segments + memtable *)
  mutable next_id : int;
  mutable next_seq : int;
  mutable wal_gen : int;
  mutable wal : Wal.t;
  mutable closed : bool;
  mutable compacting : bool;
  mutable compact_failed : bool;
  mutable compact_error : string option;
  mutable stop_compactor : bool;
  mutable compactor : unit Domain.t option;
  (* counters; read without the lock by metrics callbacks (plain int
     loads — same sampling discipline as Io_stats) *)
  mutable inserts : int;
  mutable deletes : int;
  mutable flushes : int;
  mutable compactions : int;
  mutable flush_hist : Obs.Metrics.histogram option;
  mutable compact_hist : Obs.Metrics.histogram option;
  mutable on_step : string -> unit;
}

let locked t f = Lockdep.protect t.mutex f
let is_live_dir = M.is_live_dir
let dir t = t.dir

(* Every mutating or reading path calls this first while holding
   [t.mutex]; the sanitizer check here covers them all. *)
let ensure_open t =
  Racesan.check t.race;
  if t.closed then invalid_arg "Live_store: store is closed"

let fresh_memtable () =
  Invfile.Builder.finish (Invfile.Builder.create (Storage.Mem_store.create ()))

let push_gid t gid =
  if t.mem_len = Array.length t.mem_gids then begin
    let a = Array.make (max 64 (2 * Array.length t.mem_gids)) 0 in
    Array.blit t.mem_gids 0 a 0 t.mem_len;
    t.mem_gids <- a
  end;
  t.mem_gids.(t.mem_len) <- gid;
  t.mem_len <- t.mem_len + 1

let mem_local_of_gid t gid =
  let lo = ref 0 and hi = ref (t.mem_len - 1) in
  let found = ref (-1) in
  while !found < 0 && !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    let v = t.mem_gids.(mid) in
    if v = gid then found := mid
    else if v < gid then lo := mid + 1
    else hi := mid - 1
  done;
  if !found < 0 then None else Some !found

let find_sealed t gid =
  List.find_map
    (fun seg ->
      if gid >= Segment.min_gid seg && gid <= Segment.max_gid seg then
        Option.map (fun local -> (seg, local)) (Segment.local_of_global seg gid)
      else None)
    t.segments

let sorted_tombstones t =
  let a = Array.make (Hashtbl.length t.tombstones) 0 in
  let i = ref 0 in
  Hashtbl.iter
    (fun gid () ->
      a.(!i) <- gid;
      incr i)
    t.tombstones;
  Array.sort Int.compare a;
  a

(* --- the write paths shared by live calls and WAL replay --- *)

let apply_insert t gid v =
  let local = Invfile.Updater.add_value ~journal:false t.mem v in
  if local <> t.mem_len then
    invalid_arg "Live_store: memtable record ids out of step";
  push_gid t gid;
  if gid >= t.next_id then t.next_id <- gid + 1;
  t.live <- t.live + 1;
  t.mem_live <- t.mem_live + 1

let apply_delete t gid =
  if gid < 0 || gid >= t.next_id then false
  else if t.mem_len > 0 && gid >= t.mem_gids.(0) then (
    match mem_local_of_gid t gid with
    | Some local when not (Invfile.Updater.is_deleted t.mem local) ->
      ignore (Invfile.Updater.delete_record ~journal:false t.mem local);
      t.live <- t.live - 1;
      t.mem_live <- t.mem_live - 1;
      true
    | Some _ | None -> false)
  else
    match find_sealed t gid with
    | Some (seg, local) ->
      if
        Hashtbl.mem t.tombstones gid
        || Invfile.Updater.is_deleted seg.Segment.inv local
      then false
      else begin
        Hashtbl.replace t.tombstones gid ();
        t.live <- t.live - 1;
        true
      end
    | None -> false

(* --- flush --- *)

let signal_compactor t =
  if t.config.auto_compact then begin
    t.compact_failed <- false;
    Condition.broadcast t.compact_wake
  end

(* Seal point. Ordering is the whole crash-safety argument:
   1. build the new segment store and sync it (an orphan file until the
      manifest references it);
   2. create the next WAL generation (also an orphan until then);
   3. write the manifest via temp + atomic rename — the commit point:
      before the rename a reopen replays the old WAL against the old
      segment list, after it the sealed records are in the segment and
      the old WAL is dead;
   4. only then mutate in-memory state and delete the old WAL. *)
let do_flush_locked ?trace t =
  Racesan.check t.race;
  let t0 = Unix.gettimeofday () in
  Obs.Recorder.flush_begin ~records:t.mem_live;
  let run () =
    let lives = ref [] in
    for local = t.mem_len - 1 downto 0 do
      if not (Invfile.Updater.is_deleted t.mem local) then
        lives := (t.mem_gids.(local), IF.record_value t.mem local) :: !lives
    done;
    let lives = !lives in
    let new_seg =
      match lives with
      | [] -> None
      | _ ->
        let seq = t.next_seq in
        t.next_seq <- t.next_seq + 1;
        let file = M.segment_name seq in
        let seg_path = Filename.concat t.dir file in
        let kv = t.config.wrap seg_path (Storage.Log_store.create seg_path) in
        let b = Invfile.Builder.create kv in
        List.iter (fun (_, v) -> ignore (Invfile.Builder.add_value b v)) lives;
        let inv = Invfile.Builder.finish b in
        (IF.store inv).Storage.Kv.sync ();
        t.on_step "flush:segment-built";
        Some
          {
            Segment.file;
            seg_path;
            inv;
            ids = Array.of_list (List.map fst lives);
          }
    in
    let new_gen = t.wal_gen + 1 in
    let new_wal =
      Wal.create ~wrap:t.config.wrap ~sync:t.config.wal_sync
        (M.wal_path t.dir new_gen)
    in
    t.on_step "flush:wal-rotated";
    let segments' =
      t.segments @ (match new_seg with None -> [] | Some s -> [ s ])
    in
    M.save
      {
        M.next_id = t.next_id;
        next_seq = t.next_seq;
        wal_gen = new_gen;
        tombstones = sorted_tombstones t;
        segments = List.map Segment.to_manifest segments';
      }
      (M.path t.dir);
    t.on_step "flush:manifest-swapped";
    let old_wal = t.wal and old_gen = t.wal_gen in
    t.segments <- segments';
    IF.close t.mem;
    t.mem <- fresh_memtable ();
    t.mem_gids <- [||];
    t.mem_len <- 0;
    t.mem_live <- 0;
    t.wal <- new_wal;
    t.wal_gen <- new_gen;
    Wal.close old_wal;
    (try Sys.remove (M.wal_path t.dir old_gen) with Sys_error _ -> ());
    t.flushes <- t.flushes + 1;
    (match t.flush_hist with
    | Some h -> Obs.Metrics.observe h ((Unix.gettimeofday () -. t0) *. 1000.)
    | None -> ());
    signal_compactor t;
    Obs.Recorder.flush_end ~records:(List.length lives);
    List.length lives
  in
  match trace with
  | None -> run ()
  | Some tr ->
    Obs.Trace.span tr "flush" (fun () ->
        let sealed = run () in
        Obs.Trace.add_attr tr "records_sealed" (string_of_int sealed);
        Obs.Trace.add_attr tr "segments" (string_of_int (List.length t.segments));
        sealed)

let flush ?trace t = locked t (fun () -> ensure_open t; do_flush_locked ?trace t)

(* --- writes --- *)

let insert t v =
  if not (Nested.Value.is_set v) then
    invalid_arg "Live_store.insert: value must be a set, not a bare atom";
  locked t (fun () ->
      ensure_open t;
      let gid = t.next_id in
      Wal.append t.wal (Wal.Insert { id = gid; value = v });
      apply_insert t gid v;
      t.inserts <- t.inserts + 1;
      if t.config.flush_records > 0 && t.mem_len >= t.config.flush_records then
        ignore (do_flush_locked t);
      gid)

let delete t gid =
  locked t (fun () ->
      ensure_open t;
      if gid < 0 || gid >= t.next_id then false
      else begin
        (* resolve first so unknown/already-dead ids never reach the WAL *)
        let target =
          if t.mem_len > 0 && gid >= t.mem_gids.(0) then
            match mem_local_of_gid t gid with
            | Some local -> not (Invfile.Updater.is_deleted t.mem local)
            | None -> false
          else
            match find_sealed t gid with
            | Some (seg, local) ->
              (not (Hashtbl.mem t.tombstones gid))
              && not (Invfile.Updater.is_deleted seg.Segment.inv local)
            | None -> false
        in
        if not target then false
        else begin
          Wal.append t.wal (Wal.Delete gid);
          let ok = apply_delete t gid in
          if ok then t.deletes <- t.deletes + 1;
          ok
        end
      end)

(* --- queries --- *)

let check_engine_config (config : E.config) =
  match config.E.filter_index with
  | Some _ ->
    invalid_arg
      "Live_store: filter_index is per-store and cannot span segments"
  | None -> ()

let translate seg locals tombstones =
  List.filter_map
    (fun local ->
      let gid = Segment.global seg local in
      if Hashtbl.mem tombstones gid then None else Some gid)
    locals

let translate_mem t locals = List.map (fun local -> t.mem_gids.(local)) locals

let query ?(config = E.default) ?trace t v =
  check_engine_config config;
  locked t (fun () ->
      ensure_open t;
      let seg_part seg =
        let run () = (E.query ~config ?trace seg.Segment.inv v).E.records in
        let locals =
          match trace with
          | None -> run ()
          | Some tr -> Obs.Trace.span tr ("segment:" ^ seg.Segment.file) run
        in
        translate seg locals t.tombstones
      in
      let mem_part () =
        let run () = (E.query ~config ?trace t.mem v).E.records in
        let locals =
          match trace with
          | None -> run ()
          | Some tr -> Obs.Trace.span tr "memtable" run
        in
        translate_mem t locals
      in
      (* segment gid ranges are disjoint and ascending, memtable last, so
         concatenation is already the sorted merge *)
      List.concat_map seg_part t.segments @ mem_part ())

let query_batch ?(config = E.default) t values =
  check_engine_config config;
  locked t (fun () ->
      ensure_open t;
      let per_seg =
        List.map
          (fun seg ->
            ( seg,
              List.map
                (fun (r : E.result) -> r.E.records)
                (E.query_batch ~config seg.Segment.inv values) ))
          t.segments
      in
      let mem_rs =
        List.map
          (fun (r : E.result) -> r.E.records)
          (E.query_batch ~config t.mem values)
      in
      List.mapi
        (fun i _ ->
          List.concat_map
            (fun (seg, rs) -> translate seg (List.nth rs i) t.tombstones)
            per_seg
          @ translate_mem t (List.nth mem_rs i))
        values)

(* One evaluation per part: each part runs under its own trace, the
   profile is derived from that same trace ([E.profile_of_trace]), and
   the reported record counts are the post-tombstone global ids — so the
   top-level total equals what {!query} returns and the per-part phase
   counts reconcile with a traced {!query}'s per-segment spans. *)
let explain ?(config = E.default) ?(target = "live") t v =
  check_engine_config config;
  locked t (fun () ->
      ensure_open t;
      let run_part label inv translate_fn =
        let trace = Obs.Trace.create "explain" in
        let locals = (E.query ~config ~trace inv v).E.records in
        let root = Obs.Trace.finish trace in
        let gids = translate_fn locals in
        ( E.profile_of_trace ~config ~target:label inv v root
            (List.length locals),
          List.length gids )
      in
      let parts =
        List.map
          (fun seg ->
            run_part
              ("segment:" ^ seg.Segment.file)
              seg.Segment.inv
              (fun locals -> translate seg locals t.tombstones))
          t.segments
        @ [ run_part "memtable" t.mem (translate_mem t) ]
      in
      Obs.Explain.make ~target
        ~query:(Nested.Syntax.to_string v)
        ~config:
          [
            ("segments", string_of_int (List.length t.segments));
            ("memtable_records", string_of_int t.mem_live);
            ("tombstones", string_of_int (Hashtbl.length t.tombstones));
          ]
        ~records:(List.fold_left (fun n (_, k) -> n + k) 0 parts)
        ~subs:(List.map fst parts) ())

let join ?(config = Join.Engine.default) ?trace t values =
  check_engine_config config.Join.Engine.engine;
  locked t (fun () ->
      ensure_open t;
      let outer = List.length values in
      let buckets = Array.make (max 1 outer) [] in
      let add o gid = buckets.(o) <- gid :: buckets.(o) in
      let run_seg seg =
        let run () =
          (Join.Engine.join ~config ?trace seg.Segment.inv values)
            .Join.Engine.pairs
        in
        let pairs =
          match trace with
          | None -> run ()
          | Some tr -> Obs.Trace.span tr ("segment:" ^ seg.Segment.file) run
        in
        List.iter
          (fun (o, local) ->
            let gid = Segment.global seg local in
            if not (Hashtbl.mem t.tombstones gid) then add o gid)
          pairs
      in
      List.iter run_seg t.segments;
      let mem_pairs =
        let run () =
          (Join.Engine.join ~config ?trace t.mem values).Join.Engine.pairs
        in
        match trace with
        | None -> run ()
        | Some tr -> Obs.Trace.span tr "memtable" run
      in
      List.iter (fun (o, local) -> add o t.mem_gids.(local)) mem_pairs;
      let acc = ref [] in
      for o = outer - 1 downto 0 do
        (* buckets hold gids newest-first; prepending re-reverses them *)
        List.iter (fun gid -> acc := (o, gid) :: !acc) buckets.(o)
      done;
      !acc)

let record_value t gid =
  locked t (fun () ->
      ensure_open t;
      if t.mem_len > 0 && gid >= t.mem_gids.(0) then
        Option.bind (mem_local_of_gid t gid) (fun local ->
            IF.record_value_opt t.mem local)
      else
        match find_sealed t gid with
        | Some (seg, local) when not (Hashtbl.mem t.tombstones gid) ->
          IF.record_value_opt seg.Segment.inv local
        | Some _ | None -> None)

let fold_live t ~init ~f =
  locked t (fun () ->
      ensure_open t;
      let acc = ref init in
      List.iter
        (fun seg ->
          let n = IF.record_count seg.Segment.inv in
          for local = 0 to n - 1 do
            let gid = Segment.global seg local in
            if not (Hashtbl.mem t.tombstones gid) then
              match IF.record_value_opt seg.Segment.inv local with
              | Some v -> acc := f !acc gid v
              | None -> ()
          done)
        t.segments;
      for local = 0 to t.mem_len - 1 do
        match IF.record_value_opt t.mem local with
        | Some v -> acc := f !acc t.mem_gids.(local) v
        | None -> ()
      done;
      !acc)

(* --- compaction --- *)

(* The adjacent run to merge: every segment under [~all]; otherwise the
   neighbouring pair with the smallest combined id-map length (a cheap,
   deterministic stand-in for live size — the leveled heuristic). *)
let pick_plan t ~all =
  let segs = Array.of_list t.segments in
  let n = Array.length segs in
  let tombstoned_range () =
    Array.exists
      (fun seg ->
        Array.exists (fun gid -> Hashtbl.mem t.tombstones gid) seg.Segment.ids)
      segs
  in
  if all then
    if n >= 2 || (n = 1 && tombstoned_range ()) then Some (0, n) else None
  else if n < 2 then None
  else begin
    let best = ref 0 and best_cost = ref max_int in
    for i = 0 to n - 2 do
      let cost =
        Array.length segs.(i).Segment.ids
        + Array.length segs.(i + 1).Segment.ids
      in
      if cost < !best_cost then begin
        best := i;
        best_cost := cost
      end
    done;
    Some (!best, 2)
  end

type compact_plan = {
  dst_seq : int;
  src_files : string list;  (* manifest file names, adjacent, in order *)
  src_paths : string list;
  src_ids : int array list;
  tomb_snapshot : (int, unit) Hashtbl.t;
}

let compact ?trace ?(all = false) t =
  let plan =
    locked t (fun () ->
        if t.closed || t.compacting then None
        else
          match pick_plan t ~all with
          | None -> None
          | Some (start, count) ->
            t.compacting <- true;
            let dst_seq = t.next_seq in
            t.next_seq <- t.next_seq + 1;
            let srcs =
              List.filteri
                (fun i _ -> i >= start && i < start + count)
                t.segments
            in
            Some
              {
                dst_seq;
                src_files = List.map (fun s -> s.Segment.file) srcs;
                src_paths = List.map (fun s -> s.Segment.seg_path) srcs;
                src_ids = List.map (fun s -> s.Segment.ids) srcs;
                tomb_snapshot = Hashtbl.copy t.tombstones;
              })
  in
  match plan with
  | None -> None
  | Some plan ->
    let reset_compacting () = locked t (fun () -> t.compacting <- false) in
    Obs.Recorder.compact_begin ~segments:(List.length plan.src_files);
    (try
       let t0 = Unix.gettimeofday () in
       let run () =
         (* heavy phase, off the lock: merge through private handles on
            the immutable sources — the owner keeps serving queries from
            its own handles meanwhile *)
         let dst_file = M.segment_name plan.dst_seq in
         let dst_path = Filename.concat t.dir dst_file in
         let dst_kv =
           t.config.wrap dst_path (Storage.Log_store.create dst_path)
         in
         let dst = Invfile.Builder.finish (Invfile.Builder.create dst_kv) in
         let new_ids = ref [] in
         List.iter2
           (fun src_path ids ->
             let src_kv = Storage.Log_store.open_existing src_path in
             let src = IF.open_store src_kv in
             Invfile.Merger.append ~dst ~src;
             (* Merger skips tombstoned src slots, assigning dst ids
                densely over the live ones — mirror that order exactly *)
             for local = 0 to IF.record_count src - 1 do
               if not (Invfile.Updater.is_deleted src local) then
                 new_ids := ids.(local) :: !new_ids
             done;
             IF.close src)
           plan.src_paths plan.src_ids;
         let new_ids = Array.of_list (List.rev !new_ids) in
         (* purge: physically delete merged records the tombstone set
            covers; their manifest tombstones are dropped at the swap *)
         let purged = Hashtbl.create 16 in
         Array.iter
           (fun gid ->
             if Hashtbl.mem plan.tomb_snapshot gid then
               Hashtbl.replace purged gid ())
           new_ids;
         Array.iteri
           (fun local gid ->
             if Hashtbl.mem purged gid then
               ignore (Invfile.Updater.delete_record ~journal:false dst local))
           new_ids;
         (IF.store dst).Storage.Kv.sync ();
         t.on_step "compact:dst-built";
         (* close the build handle; the swap reopens it so the handle the
            owner will query through was never touched off-lock *)
         IF.close dst;
         let merged =
           locked t (fun () ->
               Racesan.check t.race;
               if t.closed then begin
                 (try Sys.remove dst_path with Sys_error _ -> ());
                 None
               end
               else begin
                 let dst_seg =
                   Segment.open_seg ~wrap:t.config.wrap ~dir:t.dir
                     { M.file = dst_file; ids = new_ids }
                 in
                 let in_srcs s =
                   List.exists (String.equal s.Segment.file) plan.src_files
                 in
                 let replaced = ref false in
                 let segments' =
                   List.concat_map
                     (fun s ->
                       if in_srcs s then
                         if !replaced then []
                         else begin
                           replaced := true;
                           [ dst_seg ]
                         end
                       else [ s ])
                     t.segments
                 in
                 Hashtbl.iter
                   (fun gid () -> Hashtbl.remove t.tombstones gid)
                   purged;
                 M.save
                   {
                     M.next_id = t.next_id;
                     next_seq = t.next_seq;
                     wal_gen = t.wal_gen;
                     tombstones = sorted_tombstones t;
                     segments = List.map Segment.to_manifest segments';
                   }
                   (M.path t.dir);
                 t.on_step "compact:manifest-swapped";
                 let old =
                   List.filter (fun s -> in_srcs s) t.segments
                 in
                 t.segments <- segments';
                 List.iter
                   (fun s ->
                     (try Segment.close s with _ -> ());
                     try Sys.remove s.Segment.seg_path with Sys_error _ -> ())
                   old;
                 t.compactions <- t.compactions + 1;
                 (match t.compact_hist with
                 | Some h ->
                   Obs.Metrics.observe h
                     ((Unix.gettimeofday () -. t0) *. 1000.)
                 | None -> ());
                 Some (List.length plan.src_files)
               end)
         in
         merged
       in
       let result =
         match trace with
         | None -> run ()
         | Some tr ->
           Obs.Trace.span tr "compact" (fun () ->
               let r = run () in
               Obs.Trace.add_attr tr "segments_merged"
                 (string_of_int (List.length plan.src_files));
               Obs.Trace.add_attr tr "merged"
                 (match r with Some _ -> "true" | None -> "false");
               r)
       in
       reset_compacting ();
       Obs.Recorder.compact_end
         ~segments:(match result with Some n -> n | None -> 0);
       result
     with exn ->
       reset_compacting ();
       Obs.Recorder.compact_end ~segments:0;
       raise exn)

(* --- background compaction domain --- *)

let need_compact t =
  t.config.max_segments > 0
  && List.length t.segments > t.config.max_segments
  && not t.compacting && not t.compact_failed

let compactor_loop t () =
  let rec loop () =
    let go =
      locked t (fun () ->
          while not t.stop_compactor && not (need_compact t) do
            Lockdep.wait t.compact_wake t.mutex
          done;
          not t.stop_compactor)
    in
    if go then begin
      (try ignore (compact t)
       with exn ->
         (* record and pause until the next flush signals; retrying in a
            tight loop against a persistent error would spin *)
         locked t (fun () ->
             t.compact_failed <- true;
             t.compact_error <- Some (Printexc.to_string exn)));
      loop ()
    end
  in
  loop ()

(* --- lifecycle --- *)

let rec mkdir_p path =
  if not (Sys.file_exists path) then begin
    mkdir_p (Filename.dirname path);
    try Unix.mkdir path 0o755
    with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let make ~config ~dir ~manifest:(m : M.t) ~wal ~segments ~replay =
  let mutex = Lockdep.create "live.store" in
  let t =
    {
      dir;
      config;
      mutex;
      race = Racesan.register ~name:"live.store.state" ~lock:mutex;
      compact_wake = Condition.create ();
      segments;
      mem = fresh_memtable ();
      mem_gids = [||];
      mem_len = 0;
      mem_live = 0;
      tombstones = Hashtbl.create 64;
      live = 0;
      next_id = m.M.next_id;
      next_seq = m.M.next_seq;
      wal_gen = m.M.wal_gen;
      wal;
      closed = false;
      compacting = false;
      compact_failed = false;
      compact_error = None;
      stop_compactor = false;
      compactor = None;
      inserts = 0;
      deletes = 0;
      flushes = 0;
      compactions = 0;
      flush_hist = None;
      compact_hist = None;
      on_step = (fun _ -> ());
    }
  in
  Array.iter (fun gid -> Hashtbl.replace t.tombstones gid ()) m.M.tombstones;
  t.live <-
    List.fold_left (fun acc seg -> acc + Segment.live_count seg) 0 segments
    - Hashtbl.length t.tombstones;
  List.iter
    (function
      | Wal.Insert { id; value } -> apply_insert t id value
      | Wal.Delete gid -> ignore (apply_delete t gid))
    replay;
  if config.auto_compact then
    t.compactor <- Some (Domain.spawn (compactor_loop t));
  t

let create ?(config = default) dir =
  if M.is_live_dir dir then
    invalid_arg (Printf.sprintf "Live_store.create: %s is already a live store" dir);
  mkdir_p dir;
  let wal =
    Wal.create ~wrap:config.wrap ~sync:config.wal_sync (M.wal_path dir 0)
  in
  M.save M.empty (M.path dir);
  make ~config ~dir ~manifest:M.empty ~wal ~segments:[] ~replay:[]

(* Files a crash can orphan: a sealed-but-uncommitted segment, a rotated-
   but-uncommitted WAL generation, a manifest temp file. Anything in the
   directory the manifest does not reference is one of those — delete it
   before opening, so segment sequence numbers can be reused safely. *)
let clean_orphans dir (m : M.t) =
  let referenced = M.wal_name m.M.wal_gen :: List.map (fun s -> s.M.file) m.M.segments in
  Array.iter
    (fun entry ->
      let orphan_kind =
        (String.length entry >= 4 && String.sub entry 0 4 = "seg-")
        || (String.length entry >= 4 && String.sub entry 0 4 = "wal-")
        || Filename.check_suffix entry ".tmp"
      in
      if orphan_kind && not (List.exists (String.equal entry) referenced) then
        try Sys.remove (Filename.concat dir entry) with Sys_error _ -> ())
    (Sys.readdir dir)

let open_store ?(config = default) dir =
  let m = M.load (M.path dir) in
  clean_orphans dir m;
  let segments =
    List.map (Segment.open_seg ~wrap:config.wrap ~dir) m.M.segments
  in
  let wal_file = M.wal_path dir m.M.wal_gen in
  let wal, replay =
    if Sys.file_exists wal_file then
      Wal.open_existing ~wrap:config.wrap ~sync:config.wal_sync wal_file
    else (Wal.create ~wrap:config.wrap ~sync:config.wal_sync wal_file, [])
  in
  make ~config ~dir ~manifest:m ~wal ~segments ~replay

let close t =
  let proceed =
    locked t (fun () ->
        if t.closed then false
        else begin
          t.closed <- true;
          t.stop_compactor <- true;
          Condition.broadcast t.compact_wake;
          true
        end)
  in
  if proceed then begin
    (match t.compactor with
    | Some d ->
      Domain.join d;
      t.compactor <- None
    | None -> ());
    locked t (fun () ->
        List.iter (fun s -> try Segment.close s with _ -> ()) t.segments;
        (try IF.close t.mem with _ -> ());
        try Wal.close t.wal with _ -> ())
  end

(* --- introspection --- *)

let segment_count t = locked t (fun () -> List.length t.segments)
let memtable_records t = locked t (fun () -> t.mem_live)
let live_records t = locked t (fun () -> t.live)
let tombstone_count t = locked t (fun () -> Hashtbl.length t.tombstones)
let next_id t = locked t (fun () -> t.next_id)

let totals t =
  locked t (fun () ->
      [
        ("records_live", t.live);
        ("memtable_records", t.mem_live);
        ("segments", List.length t.segments);
        ("tombstones", Hashtbl.length t.tombstones);
        ("next_id", t.next_id);
        ("wal_ops", Wal.length t.wal);
        ("inserts_total", t.inserts);
        ("deletes_total", t.deletes);
        ("flushes_total", t.flushes);
        ("compactions_total", t.compactions);
      ])

let register reg ?(labels = []) t =
  let cb ?help kind name f =
    Obs.Metrics.register_callback reg ?help ~labels ~kind name f
  in
  cb `Gauge "nscq_live_memtable_records"
    ~help:"Live records currently in the memtable"
    (fun () -> float_of_int t.mem_live);
  cb `Gauge "nscq_live_segments" ~help:"Sealed segments" (fun () ->
      float_of_int (List.length t.segments));
  cb `Gauge "nscq_live_records" ~help:"Live records (segments + memtable)"
    (fun () -> float_of_int t.live);
  cb `Gauge "nscq_live_tombstones" ~help:"Deleted sealed records not yet purged"
    (fun () -> float_of_int (Hashtbl.length t.tombstones));
  cb `Counter "nscq_live_inserts_total" ~help:"Accepted inserts" (fun () ->
      float_of_int t.inserts);
  cb `Counter "nscq_live_deletes_total" ~help:"Accepted deletes" (fun () ->
      float_of_int t.deletes);
  cb `Counter "nscq_live_flushes_total" ~help:"Memtable flushes" (fun () ->
      float_of_int t.flushes);
  cb `Counter "nscq_live_compactions_total" ~help:"Compactions completed"
    (fun () -> float_of_int t.compactions);
  t.flush_hist <-
    Some
      (Obs.Metrics.histogram reg ~labels ~help:"Flush duration (ms)"
         "nscq_live_flush_ms");
  t.compact_hist <-
    Some
      (Obs.Metrics.histogram reg ~labels ~help:"Compaction duration (ms)"
         "nscq_live_compact_ms")

(* --- verification & repair --- *)

let verify t =
  locked t (fun () ->
      ensure_open t;
      let problems = ref [] in
      let add what detail = problems := (what, detail) :: !problems in
      let prev_max = ref (-1) in
      List.iter
        (fun seg ->
          let what = "segment " ^ seg.Segment.file in
          List.iter
            (fun (p : Invfile.Integrity.problem) ->
              add what (p.Invfile.Integrity.what ^ ": " ^ p.Invfile.Integrity.detail))
            (Invfile.Integrity.check seg.Segment.inv);
          let ids = seg.Segment.ids in
          if Array.length ids <> IF.record_count seg.Segment.inv then
            add what "id map length disagrees with record count";
          Array.iteri
            (fun i gid ->
              if i > 0 && gid <= ids.(i - 1) then
                add what "id map not strictly ascending")
            ids;
          if Array.length ids > 0 then begin
            if ids.(0) <= !prev_max then
              add what "global id range overlaps the previous segment";
            prev_max := max !prev_max ids.(Array.length ids - 1)
          end)
        t.segments;
      Hashtbl.iter
        (fun gid () ->
          match find_sealed t gid with
          | Some _ -> ()
          | None ->
            add "tombstones"
              (Printf.sprintf "tombstone %d resolves to no sealed record" gid))
        t.tombstones;
      List.iter (fun m -> add "wal" m) (Wal.verify t.wal);
      List.iter
        (fun (p : Invfile.Integrity.problem) ->
          add "memtable" (p.Invfile.Integrity.what ^ ": " ^ p.Invfile.Integrity.detail))
        (Invfile.Integrity.check t.mem);
      List.rev !problems)

let repair t =
  locked t (fun () ->
      ensure_open t;
      let actions = ref [] in
      List.iter
        (fun seg ->
          if Invfile.Integrity.check seg.Segment.inv <> [] then begin
            let report = E.repair seg.Segment.inv in
            actions :=
              Format.asprintf "segment %s: %a" seg.Segment.file
                E.pp_repair_report report
              :: !actions
          end)
        t.segments;
      if Invfile.Integrity.check t.mem <> [] then begin
        let report = E.repair t.mem in
        actions :=
          Format.asprintf "memtable: %a" E.pp_repair_report report :: !actions
      end;
      List.rev !actions)

let set_step_hook t hook = t.on_step <- hook
