module Codec = Storage.Codec

type segment = { file : string; ids : int array }

type t = {
  next_id : int;
  next_seq : int;
  wal_gen : int;
  tombstones : int array;
  segments : segment list;
}

exception Corrupt of string

let magic = "NSCQLIVE"
let version = 1

let empty =
  { next_id = 0; next_seq = 0; wal_gen = 0; tombstones = [||]; segments = [] }

let path dir = Filename.concat dir "live.manifest"
let wal_name gen = Printf.sprintf "wal-%d.log" gen
let wal_path dir gen = Filename.concat dir (wal_name gen)
let segment_name seq = Printf.sprintf "seg-%d.log" seq
let segment_path dir seq = Filename.concat dir (segment_name seq)

let is_live_dir dir =
  Sys.file_exists dir && Sys.is_directory dir
  &&
  let file = path dir in
  Sys.file_exists file
  &&
  match open_in_bin file with
  | ic ->
    let ok =
      try really_input_string ic (String.length magic) = magic
      with End_of_file -> false
    in
    close_in_noerr ic;
    ok
  | exception Sys_error _ -> false

let encode t =
  let w = Codec.writer () in
  Codec.write_varint w version;
  Codec.write_varint w t.next_id;
  Codec.write_varint w t.next_seq;
  Codec.write_varint w t.wal_gen;
  Codec.write_int_array w t.tombstones;
  Codec.write_varint w (List.length t.segments);
  List.iter
    (fun s ->
      Codec.write_string w s.file;
      Codec.write_int_array w s.ids)
    t.segments;
  let body = Codec.contents w in
  let framed = magic ^ body in
  let crc = Storage.Checksum.crc32 framed in
  let b = Bytes.create (String.length framed + 4) in
  Bytes.blit_string framed 0 b 0 (String.length framed);
  Bytes.set_int32_be b (String.length framed) crc;
  Bytes.unsafe_to_string b

let decode s =
  let mlen = String.length magic in
  if String.length s < mlen + 4 then raise (Corrupt "truncated manifest");
  if String.sub s 0 mlen <> magic then raise (Corrupt "bad magic");
  let body_end = String.length s - 4 in
  let crc = String.get_int32_be s body_end in
  if crc <> Storage.Checksum.crc32_sub s ~pos:0 ~len:body_end then
    raise (Corrupt "checksum mismatch");
  let r = Codec.reader_sub s ~pos:mlen ~len:(body_end - mlen) in
  match
    let v = Codec.read_varint r in
    if v <> version then
      raise (Corrupt (Printf.sprintf "unsupported manifest version %d" v));
    let next_id = Codec.read_varint r in
    let next_seq = Codec.read_varint r in
    let wal_gen = Codec.read_varint r in
    let tombstones = Codec.read_int_array r in
    let n_segments = Codec.read_varint r in
    let segments =
      List.init n_segments (fun _ ->
          let file = Codec.read_string r in
          let ids = Codec.read_int_array r in
          { file; ids })
    in
    { next_id; next_seq; wal_gen; tombstones; segments }
  with
  | t -> t
  | exception Codec.Corrupt m -> raise (Corrupt ("malformed body: " ^ m))

(* The manifest write is the live store's commit point: temp file, fsync,
   atomic rename. Not a query hot path. *)
let save t file =
  let tmp = file ^ ".tmp" in
  let payload = encode t in
  let fd =
    (Unix.openfile [@lint.allow io]) tmp
      [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ]
      0o644
  in
  (try
     let b = Bytes.unsafe_of_string payload in
     let len = Bytes.length b in
     let written = ref 0 in
     while !written < len do
       written :=
         !written + (Unix.write [@lint.allow io]) fd b !written (len - !written)
     done;
     (Unix.fsync [@lint.allow io]) fd
   with exn ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise exn);
  Unix.close fd;
  Unix.rename tmp file

let load file =
  let ic = open_in_bin file in
  let s =
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  decode s
