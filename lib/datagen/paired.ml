type pair_workload = {
  inner : Nested.Value.t list;
  outer : Workload.query list;
}

let keep_probability = 0.7

(* Keeps each element with probability [keep_probability], forcing one
   survivor so a set never thins to {} (an atomless query would answer
   "every record" under containment and defeat the polarity guarantee).
   Kept sets are thinned recursively; the identity mapping of survivors
   onto their originals witnesses containment in the source value. *)
let rec thin rng v =
  if not (Nested.Value.is_set v) then v
  else
    let elems = Nested.Value.elements v in
    if elems = [] then v
    else
      let kept =
        List.filter
          (fun _ -> Random.State.float rng 1.0 < keep_probability)
          elems
      in
      let kept =
        if kept <> [] then kept
        else
          (* force a uniformly random survivor, not always the first *)
          [ List.nth elems (Random.State.int rng (List.length elems)) ]
      in
      Nested.Value.set (List.map (thin rng) kept)

let make ?(seed = 42) ?pool ?(shape = Synthetic.Wide)
    ?(label_dist = Synthetic.Uniform) ?(selectivity = 0.5) ~inner ~outer () =
  if inner <= 0 then invalid_arg "Paired.make: inner must be positive";
  if outer < 0 then invalid_arg "Paired.make: outer must be non-negative";
  let selectivity = Float.min 1.0 (Float.max 0.0 selectivity) in
  let gen =
    Synthetic.make ~seed ?pool ~params:(Synthetic.params_of_shape shape)
      label_dist
  in
  let inner_values = Synthetic.values gen inner in
  let inner_arr = Array.of_list inner_values in
  let rng = Random.State.make [| seed; 0x9a12ed |] in
  let n_pos =
    int_of_float (Float.round (selectivity *. float_of_int outer))
  in
  let queries =
    List.init outer (fun i ->
        if i < n_pos then begin
          let source_record = Random.State.int rng inner in
          let value = thin rng inner_arr.(source_record) in
          { Workload.value; positive = true; source_record }
        end
        else begin
          (* a fresh synthetic set (drawn after the inner collection, so
             structurally alike) poisoned with an atom no record has *)
          let base = Synthetic.value gen in
          let fresh = Printf.sprintf "⊥neg%d" i in
          {
            Workload.value = Workload.distort rng ~fresh base;
            positive = false;
            source_record = -1;
          }
        end)
  in
  (* interleave polarities deterministically so prefixes of the outer
     collection stay mixed (benchmarks often truncate) *)
  let shuffled = Array.of_list queries in
  let n = Array.length shuffled in
  for i = 0 to n - 2 do
    let j = i + Random.State.int rng (n - i) in
    let t = shuffled.(i) in
    shuffled.(i) <- shuffled.(j);
    shuffled.(j) <- t
  done;
  { inner = inner_values; outer = Array.to_list shuffled }
