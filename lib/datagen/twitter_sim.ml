module J = Textformats.Json

type gen = {
  rng : Random.State.t;
  users : Zipf.t;
  hashtags : Zipf.t;
  vocabulary : Zipf.t;
  mutable next_id : int;
}

let make ?(seed = 42) ?(users = 5_000) ?(hashtags = 500) ?(vocabulary = 20_000)
    ?(theta = 0.7) () =
  {
    rng = Random.State.make [| seed; 0x7717 |];
    users = Zipf.create ~n:users ~theta;
    hashtags = Zipf.create ~n:hashtags ~theta;
    vocabulary = Zipf.create ~n:vocabulary ~theta;
    next_id = 1;
  }

let screen_name i = "user_" ^ string_of_int i
let hashtag i = "tag" ^ string_of_int i
let word i = "w" ^ string_of_int i

(* Read-only lookup table: written nowhere, so sharing it across domains
   is safe without a lock. *)
let month_days = [| 31; 28; 31; 30; 31; 30; 31; 31; 30; 31; 30; 31 |]
[@@lint.allow guarded]

let created_at rng =
  let month = Random.State.int rng 12 in
  let day = 1 + Random.State.int rng month_days.(month) in
  Printf.sprintf "2012-%02d-%02dT%02d:%02d:%02dZ" (month + 1) day
    (Random.State.int rng 24) (Random.State.int rng 60) (Random.State.int rng 60)

let tweet_json g =
  let rng = g.rng in
  let id = g.next_id in
  g.next_id <- id + 1;
  let user_rank = Zipf.sample g.users rng in
  let n_words = 3 + Random.State.int rng 10 in
  let words = List.init n_words (fun _ -> word (Zipf.sample g.vocabulary rng)) in
  let n_tags = Random.State.int rng 3 in
  let tags =
    List.init n_tags (fun _ -> hashtag (Zipf.sample g.hashtags rng))
    |> List.sort_uniq String.compare
  in
  let n_mentions = Random.State.int rng 2 in
  let mentions =
    List.init n_mentions (fun _ -> screen_name (Zipf.sample g.users rng))
    |> List.sort_uniq String.compare
  in
  let n_urls = if Random.State.float rng 1. < 0.2 then 1 else 0 in
  let urls =
    List.init n_urls (fun _ ->
        Printf.sprintf "http://t.co/%06x" (Random.State.int rng 0xffffff))
  in
  let text =
    String.concat " "
      (words
      @ List.map (fun t -> "#" ^ t) tags
      @ List.map (fun m -> "@" ^ m) mentions
      @ urls)
  in
  J.Object
    [
      ("id", J.Number (Float.of_int id));
      ("created_at", J.String (created_at rng));
      ("text", J.String text);
      ( "user",
        J.Object
          [
            ("id", J.Number (Float.of_int user_rank));
            ("screen_name", J.String (screen_name user_rank));
            ( "followers_count",
              (* popular (low-rank) users have more followers *)
              J.Number (Float.of_int (1 + (1_000_000 / user_rank))) );
            ("verified", J.Bool (user_rank <= 20));
          ] );
      ( "entities",
        J.Object
          [
            ( "hashtags",
              J.Array (List.map (fun t -> J.Object [ ("text", J.String t) ]) tags) );
            ( "urls",
              J.Array (List.map (fun u -> J.Object [ ("url", J.String u) ]) urls) );
            ( "user_mentions",
              J.Array
                (List.map (fun m -> J.Object [ ("screen_name", J.String m) ]) mentions)
            );
          ] );
      ("retweet_count", J.Number (Float.of_int (Random.State.int rng 100)));
      ("lang", J.String (if Random.State.float rng 1. < 0.9 then "en" else "pt"));
    ]

let tweet g = Textformats.Json_nested.of_json (tweet_json g)

let values g count = List.init count (fun _ -> tweet g)

let seq g count =
  let rec from i () = if i >= count then Seq.Nil else Seq.Cons (tweet g, from (i + 1)) in
  from 0

let user_query ~screen_name =
  Textformats.Json_nested.query
    [
      ( "user",
        Textformats.Json_nested.query
          [ ("screen_name", Nested.Value.atom screen_name) ] );
    ]

let hashtag_query ~tag =
  Textformats.Json_nested.query
    [
      ( "entities",
        Textformats.Json_nested.query
          [
            ( "hashtags",
              Nested.Value.set
                [ Textformats.Json_nested.query [ ("text", Nested.Value.atom tag) ] ]
            );
          ] );
    ]
