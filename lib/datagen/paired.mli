(** Paired collections for set-containment join benchmarks: one inner
    collection to index plus an outer query collection with controllable
    containment selectivity and atom skew.

    Positive outer queries are produced by {e thinning} a random inner
    record — recursively dropping elements while keeping at least one per
    retained set — so each is contained in its source record by
    construction (the identity mapping of the kept elements is an
    injective witness, valid under both the hom and iso embeddings).
    Negative outer queries are fresh synthetic sets distorted with a
    ["⊥neg<i>"] leaf that occurs nowhere in the inner collection (the
    {!Workload.distort} convention), so they match nothing.

    Atom skew (Zipfian θ vs. uniform) applies to both sides: skewed
    inner data concentrates postings on few hot atoms, the regime where
    the prefix-tree join's shared intersections pay off. Deterministic
    for a given seed. *)

type pair_workload = {
  inner : Nested.Value.t list;  (** the collection to index *)
  outer : Workload.query list;
      (** outer query sets; [positive] records the construction-time
          guarantee, [source_record] is the thinned inner record's index
          for positives and [-1] for (fresh, synthetic) negatives *)
}

val make :
  ?seed:int ->
  ?pool:Label_pool.t ->
  ?shape:Synthetic.shape ->
  ?label_dist:Synthetic.label_dist ->
  ?selectivity:float ->
  inner:int ->
  outer:int ->
  unit ->
  pair_workload
(** [make ~inner ~outer ()] generates [inner] records and [outer] query
    sets. [selectivity] (default [0.5], clamped to [0..1]) is the
    fraction of outer queries guaranteed positive; the rest are
    guaranteed negative. Defaults: seed 42, shape [Wide], uniform
    labels, the {!Synthetic.make} default pool.
    @raise Invalid_argument if [inner <= 0] or [outer < 0]. *)

val thin : Random.State.t -> Nested.Value.t -> Nested.Value.t
(** One random thinning step over a set value: every set keeps each of
    its elements with probability 0.7 (at least one always survives),
    and kept sets are thinned recursively. [thin rng v] is contained in
    [v] under hom and iso embeddings. Atoms are returned unchanged. *)
