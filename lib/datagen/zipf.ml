type t = {
  n : int;
  theta : float;
  alpha : float;
  zetan : float;
  eta : float;
  half_pow_theta : float;
}

let zeta n theta =
  let sum = ref 0. in
  for i = 1 to n do
    sum := !sum +. (1. /. Float.pow (Float.of_int i) theta)
  done;
  !sum

(* Harmonic sums are expensive for large n; memoize per (n, theta). The
   cache is process-wide (parallel shard builds create generators from
   several domains), so it sits behind a mutex. *)
let zetan_lock = Lockdep.create "datagen.zipf.zetan"

let zetan_cache : (int * float, float) Hashtbl.t = Hashtbl.create 8
[@@lint.guarded_by zetan_lock]

let zetan_race = Racesan.register ~name:"datagen.zipf.zetan" ~lock:zetan_lock

let zetan_memo n theta =
  match
    Lockdep.protect zetan_lock (fun () ->
        Racesan.check zetan_race;
        Hashtbl.find_opt zetan_cache (n, theta))
  with
  | Some z -> z
  | None ->
    let z = zeta n theta in
    Lockdep.protect zetan_lock (fun () ->
        Racesan.check zetan_race;
        Hashtbl.replace zetan_cache (n, theta) z);
    z

let create ~n ~theta =
  if n < 1 then invalid_arg "Zipf.create: n must be ≥ 1";
  if theta <= 0. || theta >= 1. then invalid_arg "Zipf.create: need 0 < θ < 1";
  let zetan = zetan_memo n theta in
  let zeta2 = zeta (min n 2) theta in
  let alpha = 1. /. (1. -. theta) in
  let eta =
    (1. -. Float.pow (2. /. Float.of_int n) (1. -. theta)) /. (1. -. (zeta2 /. zetan))
  in
  { n; theta; alpha; zetan; eta; half_pow_theta = Float.pow 0.5 theta }

let n t = t.n
let theta t = t.theta

(* Gray et al., Algorithm "zipf(n, theta)". *)
let sample t rng =
  let u = Random.State.float rng 1. in
  let uz = u *. t.zetan in
  if uz < 1. then 1
  else if uz < 1. +. t.half_pow_theta then 2
  else
    let rank =
      1
      + int_of_float
          (Float.of_int t.n
          *. Float.pow ((t.eta *. u) -. t.eta +. 1.) t.alpha)
    in
    if rank > t.n then t.n else if rank < 1 then 1 else rank

let expected_probability t i =
  if i < 1 || i > t.n then 0.
  else 1. /. (Float.pow (Float.of_int i) t.theta *. t.zetan)
