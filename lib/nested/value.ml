type t =
  | Atom of string
  | Set of t list

let atom a = Atom a

let rec compare v w =
  match v, w with
  | Atom a, Atom b -> String.compare a b
  | Atom _, Set _ -> -1
  | Set _, Atom _ -> 1
  | Set xs, Set ys -> compare_lists xs ys

and compare_lists xs ys =
  match xs, ys with
  | [], [] -> 0
  | [], _ :: _ -> -1
  | _ :: _, [] -> 1
  | x :: xs', y :: ys' ->
    let c = compare x y in
    if c <> 0 then c else compare_lists xs' ys'

let equal v w = compare v w = 0

let rec dedup_sorted = function
  | x :: (y :: _ as rest) ->
    if compare x y = 0 then dedup_sorted rest else x :: dedup_sorted rest
  | rest -> rest

(* Elements are assumed canonical; only the top level is normalized. *)
let set elems = Set (dedup_sorted (List.sort compare elems))

let empty = Set []
let of_atoms l = set (List.map atom l)

let is_atom = function Atom _ -> true | Set _ -> false
let is_set = function Set _ -> true | Atom _ -> false

let elements = function
  | Set xs -> xs
  | Atom a -> invalid_arg ("Value.elements: atom " ^ a)

let leaves v =
  List.filter_map (function Atom a -> Some a | Set _ -> None) (elements v)

let subsets v =
  List.filter (function Set _ -> true | Atom _ -> false) (elements v)

let mem x v = List.exists (equal x) (elements v)

let cardinal = function Set xs -> List.length xs | Atom _ -> 0

let rec size = function
  | Atom _ -> 1
  | Set xs -> 1 + List.fold_left (fun acc x -> acc + size x) 0 xs

let rec internal_count = function
  | Atom _ -> 0
  | Set xs -> 1 + List.fold_left (fun acc x -> acc + internal_count x) 0 xs

let rec leaf_count = function
  | Atom _ -> 1
  | Set xs -> List.fold_left (fun acc x -> acc + leaf_count x) 0 xs

let rec depth = function
  | Atom _ -> 0
  | Set xs -> 1 + List.fold_left (fun acc x -> max acc (depth x)) 0 xs

let atom_universe v =
  let rec collect acc = function
    | Atom a -> a :: acc
    | Set xs -> List.fold_left collect acc xs
  in
  List.sort_uniq String.compare (collect [] v)

let rec hash = function
  | Atom a -> String.hash a
  | Set xs -> List.fold_left (fun acc x -> (acc * 31) + hash x) 17 xs

let rec map_atoms f = function
  | Atom a -> Atom (f a)
  | Set xs -> set (List.map (map_atoms f) xs)

let add x v = set (x :: elements v)
let remove x v = set (List.filter (fun y -> not (equal x y)) (elements v))

(* Merge operations on the canonically sorted element lists. *)
let rec merge_union xs ys =
  match xs, ys with
  | [], l | l, [] -> l
  | x :: xs', y :: ys' ->
    let c = compare x y in
    if c < 0 then x :: merge_union xs' ys
    else if c > 0 then y :: merge_union xs ys'
    else x :: merge_union xs' ys'

let rec merge_inter xs ys =
  match xs, ys with
  | [], _ | _, [] -> []
  | x :: xs', y :: ys' ->
    let c = compare x y in
    if c < 0 then merge_inter xs' ys
    else if c > 0 then merge_inter xs ys'
    else x :: merge_inter xs' ys'

let rec merge_diff xs ys =
  match xs, ys with
  | [], _ -> []
  | l, [] -> l
  | x :: xs', y :: ys' ->
    let c = compare x y in
    if c < 0 then x :: merge_diff xs' ys
    else if c > 0 then merge_diff xs ys'
    else merge_diff xs' ys'

let union v w = Set (merge_union (elements v) (elements w))
let inter v w = Set (merge_inter (elements v) (elements w))
let diff v w = Set (merge_diff (elements v) (elements w))

let subset v w =
  let rec sub xs ys =
    match xs, ys with
    | [], _ -> true
    | _ :: _, [] -> false
    | x :: xs', y :: ys' ->
      let c = compare x y in
      if c < 0 then false
      else if c > 0 then sub xs ys'
      else sub xs' ys'
  in
  sub (elements v) (elements w)

let rec pp ppf = function
  | Atom a -> Syntax_atom.pp ppf a
  | Set xs ->
    Format.fprintf ppf "@[<hov 1>{%a}@]"
      (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@ ") pp)
      xs

let to_string v = Format.asprintf "%a" pp v
