module IF = Invfile.Inverted_file

let assign policy ~shards ~index value =
  match policy with
  | Manifest.Round_robin -> index mod shards
  | Manifest.Hash -> (Nested.Value.hash value land max_int) mod shards

let backend_ext = function `Hash -> ".tch" | `Btree -> ".btr" | `Log -> ".log"

let shard_store_path ~manifest_path ~backend i =
  let base =
    let b = Filename.remove_extension manifest_path in
    if b = "" then manifest_path else b
  in
  Printf.sprintf "%s.shard%d%s" base i (backend_ext backend)

let create_store backend path =
  (try Sys.remove path with Sys_error _ -> ());
  match backend with
  | `Hash -> Storage.Hash_store.create path
  | `Btree -> Storage.Btree_store.create path
  | `Log -> Storage.Log_store.create path

let open_store backend path =
  match backend with
  | `Hash -> Storage.Hash_store.open_existing path
  | `Btree -> Storage.Btree_store.open_existing path
  | `Log -> Storage.Log_store.open_existing path

(* Runs [f i] for every shard index, at most [max_domains] concurrently
   (one domain per in-flight shard build), preserving index order in the
   result list. *)
let parallel_shards ~max_domains ~shards f =
  let max_domains = max 1 max_domains in
  let rec waves acc = function
    | [] -> List.concat (List.rev acc)
    | pending ->
      let rec take n = function
        | x :: rest when n > 0 ->
          let taken, rest = take (n - 1) rest in
          (x :: taken, rest)
        | rest -> ([], rest)
      in
      let now, later = take max_domains pending in
      let results =
        if List.length now = 1 then List.map f now
        else
          List.map Domain.join
            (List.map (fun i -> Domain.spawn (fun () -> f i)) now)
      in
      waves (results :: acc) later
  in
  waves [] (List.init shards Fun.id)

(* Builds one shard store from its (global id, value) assignments and
   returns the manifest entry. *)
let build_shard ~backend ~record_format path assigned =
  let store = create_store backend path in
  let builder = Invfile.Builder.create ~record_format store in
  List.iter
    (fun (_global, v) -> ignore (Invfile.Builder.add_value builder v))
    assigned;
  let inv = Invfile.Builder.finish builder in
  let entry =
    {
      Manifest.location = Manifest.Local { path; backend };
      records = IF.record_count inv;
      atoms = IF.atom_count inv;
      nodes = IF.node_count inv;
      ids = Array.of_list (List.map fst assigned);
    }
  in
  IF.close inv;
  entry

let build_assigned ~policy ~backend ~record_format ~max_domains ~total_records
    ~manifest_path per_shard =
  let shards = Array.length per_shard in
  let entries =
    parallel_shards ~max_domains ~shards (fun i ->
        build_shard ~backend ~record_format
          (shard_store_path ~manifest_path ~backend i)
          per_shard.(i))
  in
  let manifest = Manifest.make ~policy ~total_records entries in
  Manifest.save manifest manifest_path;
  manifest

(* Deals (global id, value) pairs into per-shard lists, in global-id
   order within each shard. *)
let partition policy ~shards pairs =
  let buckets = Array.make shards [] in
  List.iter
    (fun (global, v) ->
      let s = assign policy ~shards ~index:global v in
      buckets.(s) <- (global, v) :: buckets.(s))
    pairs;
  Array.map List.rev buckets

let build ?(policy = Manifest.Hash) ?(backend = `Hash)
    ?(record_format = `Syntax) ?max_domains ~shards ~manifest_path values =
  if shards < 1 then invalid_arg "Partitioner.build: shards must be ≥ 1";
  let max_domains =
    match max_domains with
    | Some d -> d
    | None -> Containment.Parallel.default_domains ()
  in
  let pairs = List.mapi (fun i v -> (i, v)) values in
  build_assigned ~policy ~backend ~record_format ~max_domains
    ~total_records:(List.length values) ~manifest_path
    (partition policy ~shards pairs)

(* --- reshard --- *)

let local_shards manifest =
  Array.map
    (fun (s : Manifest.shard) ->
      match s.Manifest.location with
      | Manifest.Local { path; backend } -> (s, path, backend)
      | Manifest.Remote { host; port } ->
        invalid_arg
          (Printf.sprintf
             "Partitioner.reshard: shard at %s:%d is remote; reshard where \
              the stores live"
             host port))
    manifest.Manifest.shards

let check_no_collision sources path =
  if Array.exists (fun (_, p, _) -> p = path) sources then
    invalid_arg
      (Printf.sprintf
         "Partitioner.reshard: output store %s collides with a source shard \
          (choose a different output manifest name)"
         path)

(* Live (local id → global id) pairs of a source shard, in local order.
   The store may have been tombstoned since the manifest was written;
   grown stores are rejected because new records have no global id. *)
let live_globals (entry : Manifest.shard) inv =
  if IF.record_count inv <> Array.length entry.Manifest.ids then
    invalid_arg
      "Partitioner.reshard: shard store and manifest id map disagree \
       (records were added since the manifest was written)";
  let live = ref [] in
  for i = IF.record_count inv - 1 downto 0 do
    match IF.record_value_opt inv i with
    | None -> ()
    | Some v -> live := (entry.Manifest.ids.(i), v) :: !live
  done;
  !live

(* Shrinking: merge contiguous groups of source shards into each output
   shard with Merger.append — postings shift mechanically, no record
   re-encoding. *)
let merge_groups ~backend ~output ~shards sources =
  let n = Array.length sources in
  let base = n / shards and extra = n mod shards in
  let start = ref 0 in
  let entries =
    List.init shards (fun g ->
        let size = base + if g < extra then 1 else 0 in
        let members = Array.sub sources !start size in
        start := !start + size;
        let path = shard_store_path ~manifest_path:output ~backend g in
        let dst_store = create_store backend path in
        let dst = Invfile.Builder.finish (Invfile.Builder.create dst_store) in
        let ids = ref [] in
        Array.iter
          (fun ((entry : Manifest.shard), src_path, src_backend) ->
            let src = IF.open_store (open_store src_backend src_path) in
            Fun.protect
              ~finally:(fun () -> IF.close src)
              (fun () ->
                let live = live_globals entry src in
                Invfile.Merger.append ~dst ~src;
                (* reversed-prepend: a final List.rev restores order *)
                ids := List.rev_append (List.map fst live) !ids))
          members;
        let entry =
          {
            Manifest.location = Manifest.Local { path; backend };
            records = IF.record_count dst;
            atoms = IF.atom_count dst;
            nodes = IF.node_count dst;
            ids = Array.of_list (List.rev !ids);
          }
        in
        IF.close dst;
        entry)
  in
  entries

let reshard ?(backend = `Hash) ~shards ~output manifest =
  if shards < 1 then invalid_arg "Partitioner.reshard: shards must be ≥ 1";
  let sources = local_shards manifest in
  for g = 0 to shards - 1 do
    check_no_collision sources (shard_store_path ~manifest_path:output ~backend g)
  done;
  let n = Array.length sources in
  if shards < n then begin
    let entries = merge_groups ~backend ~output ~shards sources in
    let m =
      Manifest.make ~policy:manifest.Manifest.policy
        ~total_records:manifest.Manifest.total_records entries
    in
    Manifest.save m output;
    m
  end
  else begin
    (* growing (or equal): re-partition the records through fresh
       builders, keeping each record's global id *)
    let pairs =
      Array.to_list sources
      |> List.concat_map (fun ((entry : Manifest.shard), path, sbackend) ->
             let inv = IF.open_store (open_store sbackend path) in
             Fun.protect
               ~finally:(fun () -> IF.close inv)
               (fun () -> live_globals entry inv))
      |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
    in
    build_assigned ~policy:manifest.Manifest.policy ~backend
      ~record_format:`Syntax
      ~max_domains:(Containment.Parallel.default_domains ())
      ~total_records:manifest.Manifest.total_records ~manifest_path:output
      (partition manifest.Manifest.policy ~shards pairs)
  end
