(** The scatter-gather query router: one logical collection over N
    shards.

    A router opens every local shard of a {!Manifest} (one
    {!Invfile.Inverted_file} handle each, optionally with a static
    cache) and answers containment queries by fanning out — local shards
    run concurrently on OCaml 5 domains, remote shards are queried
    through {!Server.Client} with a per-request deadline — then
    translating each shard's local record ids to global ids through the
    manifest and merging the partial semi-join results into one
    deterministic, ascending id list.

    Shards that provably cannot contribute are skipped: under the
    containment and equality joins (without wildcards) every query atom
    must occur in a matching record, so a local shard missing one of the
    query's atoms is pruned with key-existence probes before any list is
    read. Remote shards are always queried.

    Failure handling is configurable: [Fail_fast] (the default) raises
    {!Shard_failed} if any shard cannot be reached or errors, while
    [Partial] returns the surviving shards' results plus a warning per
    failed shard — the degraded mode a serving deployment prefers over
    going dark. *)

type fail_mode = Fail_fast | Partial

type config = {
  engine : Containment.Engine.config;  (** config for per-shard evaluation *)
  fail_mode : fail_mode;
  remote_deadline_ms : int;
      (** per-shard deadline for remote requests (0 = none), carried on
          the wire and enforced by the remote server's {!Server.Dispatch}
          deadline machinery *)
  domains : int;
      (** max local shards queried concurrently (1 = sequential — the
          right setting inside a server worker domain) *)
  cache_budget : int;  (** static cache per local shard handle; 0 = none *)
}

val default_config : config
(** [Engine.default], [Fail_fast], no remote deadline,
    {!Containment.Parallel.default_domains} local domains, no cache. *)

type t

exception Shard_failed of int * string
(** Shard index and reason — raised under [Fail_fast]. *)

val open_manifest : ?config:config -> Manifest.t -> t
(** Opens every local shard store. Remote shards are connected per query
    (a dead remote is detected at query time, per [fail_mode]).
    @raise Invfile.Inverted_file.Malformed / Sys_error if a local shard
    store is missing or corrupt. *)

val close : t -> unit
(** Closes the local shard handles. Idempotent. *)

val manifest : t -> Manifest.t

type outcome = {
  records : int list;  (** matching global record ids, ascending *)
  warnings : (int * string) list;
      (** failed shards (index, reason) — nonempty only under [Partial] *)
  shards_queried : int;
  shards_skipped : int;  (** pruned by the atom-existence filter *)
}

val query : ?trace:Obs.Trace.t -> t -> Nested.Value.t -> outcome
(** Scatter, gather, translate, merge — see the module header.

    With [?trace], the fan-out is recorded as one [shard:<i>] span per
    shard in shard order, grafted into the caller's innermost open span
    after the gather barrier: local shards evaluate into their own
    sub-trace (a {!Obs.Trace.t} is single-owner mutable state, so domains
    never share the caller's) carrying the engine's phase spans; remote
    shards are queried with the wire [Trace] verb and their server-side
    span tree is parsed back and nested under a [remote=true] span.
    Failed shards get a span with a [failed] attribute; skipped shards
    get none. [shards_queried]/[shards_skipped] are attached as
    attributes. A remote server predating the [Trace] verb answers with
    an error, handled per [fail_mode] like any shard failure.
    @raise Shard_failed under [Fail_fast].
    @raise Invalid_argument if the query is an atom. *)

type join_outcome = {
  pairs : (int * int) list;
      (** [(outer index, global record id)] pairs, sorted ascending by
          outer index then id — each global id lives in exactly one
          shard, so the merged pair set is deterministic *)
  join_warnings : (int * string) list;
      (** failed shards (index, reason) — nonempty only under [Partial] *)
  join_shards_queried : int;
  join_shards_skipped : int;
}

val join : ?trace:Obs.Trace.t -> t -> Nested.Value.t list -> join_outcome
(** Scatter-gather set-containment join: the outer collection is
    broadcast to every shard (each holds a partition of the inner
    collection), evaluated per shard with {!Join.Engine.join} locally or
    the wire [Join] verb remotely, and the per-shard pair sets are
    translated to global ids and merged. A local shard is pruned only
    when {e no} outer query's atoms are all present — per-query pruning
    inside a relevant shard falls out of the prefix tree's own empty
    intersections. Deadlines, [fail_mode], and id translation behave as
    in {!query}.

    With [?trace], local shards evaluate into [shard:<i>] sub-traces
    carrying the join engine's build-tree/intersect/verify phases; remote
    shards appear as flat timed [remote=true] spans (the [Join] verb
    carries no span tree).
    @raise Shard_failed under [Fail_fast].
    @raise Invalid_argument if any outer value is an atom. *)

val explain : t -> Nested.Value.t -> Obs.Explain.t
(** Plan and profile the query on every shard, gathered into one
    [router]-rooted {!Obs.Explain.t} with one sub-plan per shard in
    shard order. Local relevant shards carry a full
    {!Containment.Engine.explain_profile}; pruned shards appear as a
    stub flagged [pruned=atom-relevance]; remote shards are asked over
    the wire [Explain] verb and their plan is nested under a
    [remote=<host:port>] stub. Unlike {!query}, a failed shard never
    raises regardless of [fail_mode] — the diagnostic degrades to a stub
    carrying the [failed=<reason>] attribute. The scatter is sequential
    (shard order), so sub-plans are deterministic.
    @raise Invalid_argument if the router is closed. *)

val record_value : t -> int -> Nested.Value.t option
(** The stored value behind a global record id, when its shard is local
    ([None] for remote shards and unknown ids). *)

(** {1 Writes}

    A record's owning shard is the one {!Partitioner.assign} places it
    on under the manifest's policy — the same placement a from-scratch
    rebuild of the grown collection would choose, so resharding and
    rebuilds stay id-compatible. Writes go through the owning shard's
    {!Invfile.Updater} (journal-protected); the router's in-memory
    manifest tracks the new id mapping — persist it with
    {!save_manifest} before dropping the router. Only local shards
    accept writes; a record owned by a remote shard raises
    {!Shard_failed} (the remote server owns its store — routing writes
    over the wire is future work). These calls are single-owner like
    the rest of the router: serialize externally if sharing a router
    across domains. *)

val insert : t -> Nested.Value.t -> int
(** Routes the value to its owning shard, appends it, and returns its
    new {e global} record id ([manifest.total_records] before the
    insert).
    @raise Shard_failed if the owning shard is remote.
    @raise Invalid_argument on a bare atom, or if the shard's store and
    manifest id map disagree. *)

val delete : t -> int -> bool
(** Deletes a global record id on its shard ([false] if unknown or
    already deleted). The manifest is unchanged — the shard store
    itself records the tombstone, exactly as a single store does.
    @raise Shard_failed if the shard is remote. *)

val save_manifest : t -> string -> unit
(** Persists the router's current manifest — required after {!insert}
    for the id maps to survive this router. *)

val register : Obs.Metrics.t -> ?labels:(string * string) list -> t -> unit
(** Publishes the router's counters into a metrics registry as callback
    metrics sampled at render time: [nscq_router_queries_total],
    [nscq_router_joins_total], [nscq_router_partial_answers_total], and
    per shard (labelled
    [shard="<i>"]) [nscq_shard_queries_total], [nscq_shard_failures_total],
    [nscq_shard_skips_total], [nscq_shard_results_total] and the
    [nscq_shard_query_ms_max] gauge. Each local shard additionally
    publishes its two {!Storage.Io_stats} (list lookups and raw store
    I/O, disambiguated by a [source] label) via
    {!Storage.Io_stats.register}. *)

val render_stats : t -> string
(** Cumulative router statistics: per-shard query counts, failures,
    latency (mean/max), result rows, and the local shards' aggregated
    {!Storage.Io_stats} (lookups, cache hits/misses, reads) — the
    sharded counterpart of [nscq stats]. *)

val dispatch_backend :
  ?config:config -> Manifest.t -> unit -> Server.Dispatch.backend
(** An execution backend for {!Server.Dispatch}: each server worker
    domain gets its own router (local handles and all) over [manifest].
    Literal queries scatter-gather with [config] (its [domains] is
    forced to 1 — concurrency comes from the worker pool); [Join]
    requests fan out through {!join} and answer with a
    {!Server.Wire.join_payload}; [Explain] requests answer with the
    {!explain} plan composed by {!Obs.Explain.to_wire}; NSCQL statements
    are refused as unsupported over a sharded collection. Partial-mode
    warnings are logged, not returned to the client. *)
