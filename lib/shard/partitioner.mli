(** Record placement and sharded index construction.

    [build] turns one input collection into N independent inverted files
    (one {!Invfile.Builder} per shard, run in parallel on OCaml 5
    domains) plus the {!Manifest} tying them back together. Placement is
    by value hash (the default — co-locates duplicate records and is
    stable under reordering) or round-robin (perfectly balanced).
    Either way every record keeps the global id the single-store build
    would have given it, recorded in the manifest's per-shard id maps.

    [reshard] changes the shard count of an existing local manifest:
    shrinking merges neighbouring shards with {!Invfile.Merger.append}
    (the mechanical id-shifting reduce — no re-encoding), while growing
    re-partitions the records through fresh builders. *)

val assign : Manifest.policy -> shards:int -> index:int -> Nested.Value.t -> int
(** The shard a record lands on: [index mod shards] under
    [Round_robin], a deterministic hash of the canonical value under
    [Hash]. *)

val shard_store_path : manifest_path:string -> backend:Manifest.backend -> int -> string
(** Where [build]/[reshard] place shard [i]'s store file, derived from
    the manifest path (e.g. [data.manifest] → [data.shard0.tch]). *)

val open_store : Manifest.backend -> string -> Storage.Kv.t
(** Opens an existing shard store with the right storage engine —
    how the {!Router} gets at a manifest's local shards. *)

val build :
  ?policy:Manifest.policy ->
  ?backend:Manifest.backend ->
  ?record_format:[ `Syntax | `Binary ] ->
  ?max_domains:int ->
  shards:int ->
  manifest_path:string ->
  Nested.Value.t list ->
  Manifest.t
(** Partitions the values, builds every shard store (in parallel, at
    most [max_domains] — default {!Containment.Parallel.default_domains}
    — builders at once), writes the manifest to [manifest_path] and
    returns it. Existing shard store files are overwritten.
    @raise Invalid_argument if [shards < 1]. *)

val reshard :
  ?backend:Manifest.backend ->
  shards:int ->
  output:string ->
  Manifest.t ->
  Manifest.t
(** Rewrites the collection behind a manifest of local shards into
    [shards] shards, writing new store files and a new manifest at
    [output]. Global record ids are preserved, so query results are
    unchanged. Source stores are left intact.
    @raise Invalid_argument if the manifest has remote shards, if
    [shards < 1], or if an output store path collides with a source
    store. *)
