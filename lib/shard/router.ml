module IF = Invfile.Inverted_file
module E = Containment.Engine
module Sem = Containment.Semantics

let src = Logs.Src.create "nscq.shard" ~doc:"scatter-gather query router"

module Log = (val Logs.src_log src : Logs.LOG)

type fail_mode = Fail_fast | Partial

type config = {
  engine : E.config;
  fail_mode : fail_mode;
  remote_deadline_ms : int;
  domains : int;
  cache_budget : int;
}

let default_config =
  {
    engine = E.default;
    fail_mode = Fail_fast;
    remote_deadline_ms = 0;
    domains = Containment.Parallel.default_domains ();
    cache_budget = 0;
  }

exception Shard_failed of int * string

type target =
  | Local_handle of IF.t
  | Remote_addr of { host : string; port : int }

type shard_stat = {
  mutable queries : int;
  mutable failures : int;
  mutable skips : int;
  mutable results : int;
  mutable total_ms : float;
  mutable max_ms : float;
}

type t = {
  config : config;
  mutable manifest : Manifest.t;
  targets : target array;
  stats : shard_stat array;
  mutable total_queries : int;
  mutable total_joins : int;
  mutable partial_answers : int;
  mutable closed : bool;
  mutable global_index : (int, int * int) Hashtbl.t option;
      (* global record id → (shard, local record id), built on demand *)
}

let manifest t = t.manifest

let open_manifest ?(config = default_config) m =
  let targets =
    Array.map
      (fun (s : Manifest.shard) ->
        match s.Manifest.location with
        | Manifest.Local { path; backend } ->
          let inv = IF.open_store (Partitioner.open_store backend path) in
          if config.cache_budget > 0 then
            IF.attach_cache inv
              (Invfile.Cache.create Invfile.Cache.Static
                 ~capacity:config.cache_budget);
          Local_handle inv
        | Manifest.Remote { host; port } -> Remote_addr { host; port })
      m.Manifest.shards
  in
  let stats =
    Array.map
      (fun _ ->
        { queries = 0; failures = 0; skips = 0; results = 0; total_ms = 0.;
          max_ms = 0. })
      m.Manifest.shards
  in
  {
    config;
    manifest = m;
    targets;
    stats;
    total_queries = 0;
    total_joins = 0;
    partial_answers = 0;
    closed = false;
    global_index = None;
  }

let close t =
  if not t.closed then begin
    t.closed <- true;
    Array.iter
      (function Local_handle inv -> IF.close inv | Remote_addr _ -> ())
      t.targets
  end

(* --- relevance pruning ---

   Under the containment and equality joins every atom of the query must
   occur (as a leaf label) in any matching record, so a shard whose
   store lacks one of the query's atoms cannot contribute: key-existence
   probes, no list reads. Unsound for superset/overlap/similarity (the
   record's atoms may be a strict subset of the query's) and for
   wildcard leaves, so pruning is off there. *)

let prunable (cfg : E.config) =
  (not cfg.E.wildcards)
  &&
  match cfg.E.join with
  | Sem.Containment | Sem.Equality -> true
  | Sem.Superset | Sem.Overlap _ | Sem.Similarity _ -> false

let shard_relevant inv atoms = List.for_all (IF.mem_atom inv) atoms

(* --- per-shard execution --- *)

type shard_outcome =
  | Skipped
  | Answered of int list  (* shard-local record ids *)
  | Failed of string

let describe_exn = function
  | Unix.Unix_error (e, _, _) -> Unix.error_message e
  | Server.Client.Handshake_failed m -> "handshake failed: " ^ m
  | Server.Wire.Protocol_error m -> "protocol error: " ^ m
  | Server.Wire.Closed -> "connection closed"
  | exn -> Printexc.to_string exn

(* Each traced local shard evaluates into its own sub-trace (same trace
   id, root named [shard:i]) — a Trace.t is single-owner mutable state, so
   domains must never share one. The finished sub-trees are grafted into
   the caller's trace after the gather barrier. *)
let run_local t ?trace value i inv =
  match E.query ~config:t.config.engine ?trace inv value with
  | r -> Answered r.E.records
  | exception ((Sem.Unsupported _ | Invalid_argument _) as exn) ->
    (* a config the engine refuses is refused identically on every
       shard: surface it as the error the single-store engine raises *)
    raise exn
  | exception exn -> Failed (Printf.sprintf "shard %d: %s" i (describe_exn exn))

let parse_id_payload payload =
  if payload = "" then Answered []
  else
    let rec go acc = function
      | [] -> Answered (List.rev acc)
      | s :: rest -> (
        match int_of_string_opt s with
        | Some id -> go (id :: acc) rest
        | None -> Failed (Printf.sprintf "malformed result id %S" s))
    in
    go [] (List.filter (fun s -> s <> "") (String.split_on_char ' ' payload))

(* Under tracing, a remote shard is queried with the wire [Trace] verb so
   its server-side phase spans come back alongside the ids; the parsed
   tree is returned for grafting. A remote server predating the verb
   answers with an error, surfaced per [fail_mode] like any shard
   failure. *)
let run_remote t ?trace_id text ~host ~port =
  match Server.Client.connect ~host ~port () with
  | exception exn -> (Failed (describe_exn exn), None)
  | client -> (
    Fun.protect ~finally:(fun () -> Server.Client.close client) @@ fun () ->
    let deadline_ms = t.config.remote_deadline_ms in
    match trace_id with
    | None -> (
      match Server.Client.query client ~deadline_ms text with
      | Ok payload -> (parse_id_payload payload, None)
      | Error (code, msg) ->
        (Failed (Format.asprintf "%a: %s" Server.Wire.pp_error_code code msg), None)
      | exception exn -> (Failed (describe_exn exn), None))
    | Some tid -> (
      match Server.Client.trace client ~deadline_ms ~trace_id:tid text with
      | Ok payload ->
        let result, spans = Server.Wire.split_traced payload in
        let span = Option.map snd (Obs.Trace.of_wire spans) in
        (parse_id_payload result, span)
      | Error (code, msg) ->
        (Failed (Format.asprintf "%a: %s" Server.Wire.pp_error_code code msg), None)
      | exception exn -> (Failed (describe_exn exn), None)))

(* --- scatter-gather --- *)

type outcome = {
  records : int list;
  warnings : (int * string) list;
  shards_queried : int;
  shards_skipped : int;
}

let slice ~slices i items = List.filteri (fun j _ -> j mod slices = i) items

let query ?trace t value =
  if t.closed then invalid_arg "Router.query: router is closed";
  let n = Array.length t.targets in
  let atoms =
    if prunable t.config.engine then Nested.Value.atom_universe value else []
  in
  let outcomes = Array.make n Skipped in
  let elapsed = Array.make n 0. in
  let started = Array.make n 0. in
  (* per-shard span sources when tracing: a sub-trace per local shard, a
     parsed wire tree per remote shard *)
  let subtraces = Array.make n None in
  let remote_spans = Array.make n None in
  let trace_id = Option.map Obs.Trace.id trace in
  let timed i f =
    let t0 = Unix.gettimeofday () in
    started.(i) <- t0;
    let r = f () in
    elapsed.(i) <- 1000. *. (Unix.gettimeofday () -. t0);
    r
  in
  (* split the shard list by kind; remote shards run on threads (they
     block on sockets), local shards on domains *)
  let locals = ref [] and remotes = ref [] in
  Array.iteri
    (fun i -> function
      | Local_handle inv ->
        if atoms = [] || shard_relevant inv atoms then
          locals := (i, inv) :: !locals
      | Remote_addr { host; port } -> remotes := (i, host, port) :: !remotes)
    t.targets;
  let locals = List.rev !locals and remotes = List.rev !remotes in
  (match trace with
  | None -> ()
  | Some tr ->
    List.iter
      (fun (i, _) ->
        subtraces.(i) <-
          Some
            (Obs.Trace.create ~id:(Obs.Trace.id tr)
               (Printf.sprintf "shard:%d" i)))
      locals);
  let text = lazy (Nested.Value.to_string value) in
  let remote_threads =
    List.map
      (fun (i, host, port) ->
        Thread.create
          (fun () ->
            let o, span =
              timed i (fun () ->
                  run_remote t ?trace_id (Lazy.force text) ~host ~port)
            in
            outcomes.(i) <- o;
            remote_spans.(i) <- span)
          ())
      remotes
  in
  (* engine refusals (unsupported semantics, atom query) must propagate
     as such, not as shard failures — run one local shard in the calling
     domain first so the exception escapes before any fan-out result is
     folded; the rest run in parallel *)
  let run_locals jobs =
    List.map
      (fun (i, inv) ->
        (i, timed i (fun () -> run_local t ?trace:subtraces.(i) value i inv)))
      jobs
  in
  let local_results =
    match locals with
    | [] -> []
    | (i0, inv0) :: rest ->
      let first =
        (i0, timed i0 (fun () -> run_local t ?trace:subtraces.(i0) value i0 inv0))
      in
      let slices = min (t.config.domains - 1) (List.length rest) in
      let others =
        if slices <= 1 then run_locals rest
        else
          List.init slices (fun k ->
              Domain.spawn (fun () -> run_locals (slice ~slices k rest)))
          |> List.concat_map Domain.join
      in
      first :: others
  in
  List.iter (fun (i, o) -> outcomes.(i) <- o) local_results;
  List.iter Thread.join remote_threads;
  (* fold in shard order: deterministic gathering *)
  let parts = ref [] and warnings = ref [] and queried = ref 0 and skipped = ref 0 in
  Array.iteri
    (fun i o ->
      let st = t.stats.(i) in
      match o with
      | Skipped -> incr skipped; st.skips <- st.skips + 1
      | Answered locals ->
        incr queried;
        st.queries <- st.queries + 1;
        st.total_ms <- st.total_ms +. elapsed.(i);
        if elapsed.(i) > st.max_ms then st.max_ms <- elapsed.(i);
        let ids = t.manifest.Manifest.shards.(i).Manifest.ids in
        let translated =
          List.map
            (fun local ->
              if local >= 0 && local < Array.length ids then ids.(local)
              else
                raise
                  (Shard_failed
                     (i, Printf.sprintf "returned unmapped record id %d" local)))
            locals
        in
        st.results <- st.results + List.length translated;
        parts := translated :: !parts
      | Failed reason -> (
        incr queried;
        st.queries <- st.queries + 1;
        st.failures <- st.failures + 1;
        match t.config.fail_mode with
        | Fail_fast -> raise (Shard_failed (i, reason))
        | Partial -> warnings := (i, reason) :: !warnings))
    outcomes;
  (* graft per-shard span trees in shard order, then summarize on the
     caller's innermost span *)
  (match trace with
  | None -> ()
  | Some tr ->
    Array.iteri
      (fun i o ->
        let shard_span =
          match subtraces.(i) with
          | Some sub -> Some (Obs.Trace.finish sub)
          | None -> (
            match remote_spans.(i) with
            | Some remote ->
              Some
                (Obs.Trace.make_span
                   ~name:(Printf.sprintf "shard:%d" i)
                   ~start_s:started.(i)
                   ~duration_s:(elapsed.(i) /. 1000.)
                   ~attrs:[ ("remote", "true") ]
                   ~children:[ remote ] ())
            | None -> (
              match o with
              | Failed reason ->
                Some
                  (Obs.Trace.make_span
                     ~name:(Printf.sprintf "shard:%d" i)
                     ~start_s:started.(i)
                     ~duration_s:(elapsed.(i) /. 1000.)
                     ~attrs:[ ("failed", reason) ] ())
              | Skipped | Answered _ -> None))
        in
        Option.iter (Obs.Trace.graft tr) shard_span)
      outcomes;
    Obs.Trace.add_attr tr "shards_queried" (string_of_int !queried);
    Obs.Trace.add_attr tr "shards_skipped" (string_of_int !skipped));
  t.total_queries <- t.total_queries + 1;
  if !warnings <> [] then t.partial_answers <- t.partial_answers + 1;
  {
    records = List.sort Int.compare (List.concat !parts);
    warnings = List.rev !warnings;
    shards_queried = !queried;
    shards_skipped = !skipped;
  }

(* --- scatter-gather join --- *)

type join_outcome = {
  pairs : (int * int) list;
  join_warnings : (int * string) list;
  join_shards_queried : int;
  join_shards_skipped : int;
}

(* Per-shard join outcomes carry one local-id list per outer query. *)
type shard_join =
  | J_skipped
  | J_answered of int list list
  | J_failed of string

let join_config t = { Join.Engine.default with Join.Engine.engine = t.config.engine }

let run_local_join t ?trace values i inv =
  match Join.Engine.join ~config:(join_config t) ?trace inv values with
  | r ->
    J_answered
      (Join.Engine.group ~outer:(List.length values) r.Join.Engine.pairs)
  | exception ((Sem.Unsupported _ | Invalid_argument _) as exn) ->
    (* a config or value the join engine refuses is refused identically
       on every shard: surface it as the single-store engine would *)
    raise exn
  | exception exn -> J_failed (Printf.sprintf "shard %d: %s" i (describe_exn exn))

(* The Join verb carries no trace part (unlike Trace): a traced sharded
   join shows remote shards as flat [remote=true] spans with timings
   only. *)
let run_remote_join t text ~host ~port =
  match Server.Client.connect ~host ~port () with
  | exception exn -> J_failed (describe_exn exn)
  | client -> (
    Fun.protect ~finally:(fun () -> Server.Client.close client) @@ fun () ->
    match
      Server.Client.join client ~deadline_ms:t.config.remote_deadline_ms text
    with
    | Ok payload -> (
      match Server.Wire.split_join payload with
      | Ok groups -> J_answered groups
      | Error m -> J_failed ("malformed join payload: " ^ m))
    | Error (code, msg) ->
      J_failed (Format.asprintf "%a: %s" Server.Wire.pp_error_code code msg)
    | exception exn -> J_failed (describe_exn exn))

let join ?trace t values =
  if t.closed then invalid_arg "Router.join: router is closed";
  let n = Array.length t.targets in
  let n_outer = List.length values in
  if n_outer = 0 then begin
    t.total_joins <- t.total_joins + 1;
    Array.iter (fun st -> st.skips <- st.skips + 1) t.stats;
    { pairs = []; join_warnings = []; join_shards_queried = 0;
      join_shards_skipped = n }
  end
  else begin
    (* broadcast the outer collection; prune a local shard only when *no*
       outer query's atoms are all present (per-query pruning inside the
       shard falls out of the join's own empty intersections) *)
    let atom_sets =
      if prunable t.config.engine then
        List.map Nested.Value.atom_universe values
      else []
    in
    let relevant inv =
      atom_sets = [] || List.exists (fun atoms -> shard_relevant inv atoms) atom_sets
    in
    let outcomes = Array.make n J_skipped in
    let elapsed = Array.make n 0. in
    let started = Array.make n 0. in
    let subtraces = Array.make n None in
    let timed i f =
      let t0 = Unix.gettimeofday () in
      started.(i) <- t0;
      let r = f () in
      elapsed.(i) <- 1000. *. (Unix.gettimeofday () -. t0);
      r
    in
    let locals = ref [] and remotes = ref [] in
    Array.iteri
      (fun i -> function
        | Local_handle inv -> if relevant inv then locals := (i, inv) :: !locals
        | Remote_addr { host; port } -> remotes := (i, host, port) :: !remotes)
      t.targets;
    let locals = List.rev !locals and remotes = List.rev !remotes in
    (match trace with
    | None -> ()
    | Some tr ->
      List.iter
        (fun (i, _) ->
          subtraces.(i) <-
            Some
              (Obs.Trace.create ~id:(Obs.Trace.id tr)
                 (Printf.sprintf "shard:%d" i)))
        locals);
    let text =
      lazy (String.concat "\n" (List.map Nested.Value.to_string values))
    in
    let remote_threads =
      List.map
        (fun (i, host, port) ->
          Thread.create
            (fun () ->
              outcomes.(i) <-
                timed i (fun () ->
                    run_remote_join t (Lazy.force text) ~host ~port))
            ())
        remotes
    in
    (* engine refusals propagate from the first local shard, run in the
       calling domain, before any fan-out result is folded (cf. query) *)
    let run_locals jobs =
      List.map
        (fun (i, inv) ->
          (i, timed i (fun () ->
                 run_local_join t ?trace:subtraces.(i) values i inv)))
        jobs
    in
    let local_results =
      match locals with
      | [] -> []
      | (i0, inv0) :: rest ->
        let first =
          ( i0,
            timed i0 (fun () ->
                run_local_join t ?trace:subtraces.(i0) values i0 inv0) )
        in
        let slices = min (t.config.domains - 1) (List.length rest) in
        let others =
          if slices <= 1 then run_locals rest
          else
            List.init slices (fun k ->
                Domain.spawn (fun () -> run_locals (slice ~slices k rest)))
            |> List.concat_map Domain.join
        in
        first :: others
    in
    List.iter (fun (i, o) -> outcomes.(i) <- o) local_results;
    List.iter Thread.join remote_threads;
    (* fold in shard order: deterministic gathering *)
    let parts = ref []
    and warnings = ref []
    and queried = ref 0
    and skipped = ref 0 in
    let fail i reason st =
      st.failures <- st.failures + 1;
      match t.config.fail_mode with
      | Fail_fast -> raise (Shard_failed (i, reason))
      | Partial -> warnings := (i, reason) :: !warnings
    in
    Array.iteri
      (fun i o ->
        let st = t.stats.(i) in
        match o with
        | J_skipped ->
          incr skipped;
          st.skips <- st.skips + 1
        | J_answered groups ->
          incr queried;
          st.queries <- st.queries + 1;
          st.total_ms <- st.total_ms +. elapsed.(i);
          if elapsed.(i) > st.max_ms then st.max_ms <- elapsed.(i);
          if List.length groups <> n_outer then
            fail i
              (Printf.sprintf "returned %d result line(s) for %d outer quer%s"
                 (List.length groups) n_outer
                 (if n_outer = 1 then "y" else "ies"))
              st
          else begin
            let ids = t.manifest.Manifest.shards.(i).Manifest.ids in
            let count = ref 0 in
            List.iteri
              (fun qi locals ->
                List.iter
                  (fun local ->
                    if local >= 0 && local < Array.length ids then begin
                      parts := (qi, ids.(local)) :: !parts;
                      incr count
                    end
                    else
                      raise
                        (Shard_failed
                           ( i,
                             Printf.sprintf "returned unmapped record id %d"
                               local )))
                  locals)
              groups;
            st.results <- st.results + !count
          end
        | J_failed reason ->
          incr queried;
          st.queries <- st.queries + 1;
          fail i reason st)
      outcomes;
    (match trace with
    | None -> ()
    | Some tr ->
      Array.iteri
        (fun i o ->
          let shard_span =
            match subtraces.(i) with
            | Some sub -> Some (Obs.Trace.finish sub)
            | None -> (
              match o with
              | J_answered _ ->
                Some
                  (Obs.Trace.make_span
                     ~name:(Printf.sprintf "shard:%d" i)
                     ~start_s:started.(i)
                     ~duration_s:(elapsed.(i) /. 1000.)
                     ~attrs:[ ("remote", "true") ] ())
              | J_failed reason ->
                Some
                  (Obs.Trace.make_span
                     ~name:(Printf.sprintf "shard:%d" i)
                     ~start_s:started.(i)
                     ~duration_s:(elapsed.(i) /. 1000.)
                     ~attrs:[ ("failed", reason) ] ())
              | J_skipped -> None)
          in
          Option.iter (Obs.Trace.graft tr) shard_span)
        outcomes;
      Obs.Trace.add_attr tr "shards_queried" (string_of_int !queried);
      Obs.Trace.add_attr tr "shards_skipped" (string_of_int !skipped));
    t.total_joins <- t.total_joins + 1;
    if !warnings <> [] then t.partial_answers <- t.partial_answers + 1;
    let pair_compare (o1, r1) (o2, r2) =
      if o1 <> o2 then Int.compare o1 o2 else Int.compare r1 r2
    in
    {
      pairs = List.sort pair_compare !parts;
      join_warnings = List.rev !warnings;
      join_shards_queried = !queried;
      join_shards_skipped = !skipped;
    }
  end

(* --- explain --- *)

(* Sequential scatter: EXPLAIN is a diagnostic verb, so the per-shard
   sub-plans are produced one at a time in shard order — determinism over
   latency. Pruned shards still appear in the plan, flagged, so the
   pruning decision itself is visible; a failed remote becomes a stub
   sub-plan carrying the reason instead of raising (a diagnostic should
   degrade, not die). *)
let explain t value =
  if t.closed then invalid_arg "Router.explain: router is closed";
  let query_text = Nested.Value.to_string value in
  let atoms =
    if prunable t.config.engine then Nested.Value.atom_universe value else []
  in
  let pruned = ref 0 and answered = ref 0 in
  let sub_of_shard i target =
    let label = Printf.sprintf "shard:%d" i in
    match target with
    | Local_handle inv ->
      if atoms <> [] && not (shard_relevant inv atoms) then begin
        incr pruned;
        Obs.Explain.make ~target:label ~query:query_text
          ~config:[ ("pruned", "atom-relevance") ]
          ~records:0 ()
      end
      else begin
        incr answered;
        E.explain_profile ~config:t.config.engine ~target:label inv value
      end
    | Remote_addr { host; port } -> (
      let failed reason =
        Obs.Explain.make ~target:label ~query:query_text
          ~config:
            [ ("remote", Printf.sprintf "%s:%d" host port);
              ("failed", reason) ]
          ~records:0 ()
      in
      match Server.Client.connect ~host ~port () with
      | exception exn -> failed (describe_exn exn)
      | client -> (
        Fun.protect ~finally:(fun () -> Server.Client.close client)
        @@ fun () ->
        match
          Server.Client.explain client
            ~deadline_ms:t.config.remote_deadline_ms query_text
        with
        | Ok payload -> (
          match Obs.Explain.of_wire payload with
          | Some sub ->
            incr answered;
            Obs.Explain.make ~target:label ~query:query_text
              ~config:[ ("remote", Printf.sprintf "%s:%d" host port) ]
              ~records:sub.Obs.Explain.records ~subs:[ sub ] ()
          | None -> failed "malformed explain payload")
        | Error (code, msg) ->
          failed (Format.asprintf "%a: %s" Server.Wire.pp_error_code code msg)
        | exception exn -> failed (describe_exn exn)))
  in
  let subs =
    List.init (Array.length t.targets) (fun i -> sub_of_shard i t.targets.(i))
  in
  let records = List.fold_left (fun n s -> n + s.Obs.Explain.records) 0 subs in
  Obs.Explain.make ~target:"router" ~query:query_text
    ~config:
      [
        ("shards", string_of_int (Array.length t.targets));
        ("answered", string_of_int !answered);
        ("pruned", string_of_int !pruned);
        ( "fail_mode",
          match t.config.fail_mode with
          | Fail_fast -> "fail-fast"
          | Partial -> "partial" );
      ]
    ~records ~subs ()

(* --- record access --- *)

let global_index t =
  match t.global_index with
  | Some h -> h
  | None ->
    let h = Hashtbl.create 1024 in
    Array.iteri
      (fun s (entry : Manifest.shard) ->
        Array.iteri (fun local global -> Hashtbl.replace h global (s, local))
          entry.Manifest.ids)
      t.manifest.Manifest.shards;
    t.global_index <- Some h;
    h

let record_value t global =
  match Hashtbl.find_opt (global_index t) global with
  | None -> None
  | Some (s, local) -> (
    match t.targets.(s) with
    | Remote_addr _ -> None
    | Local_handle inv -> IF.record_value_opt inv local)

(* --- writes ---

   The owning shard is the one the partitioner would have placed the
   record on at build time, so a rebuild of the grown collection shards
   identically. Writes go straight through the shard's updater; the
   in-memory manifest tracks the new id mapping and the caller persists
   it with [save_manifest]. Only local shards accept writes — a remote
   shard's server owns its store. *)

let insert t value =
  if not (Nested.Value.is_set value) then
    invalid_arg "Router.insert: value must be a set, not a bare atom";
  let m = t.manifest in
  let shards = Array.length m.Manifest.shards in
  let global = m.Manifest.total_records in
  let s =
    Partitioner.assign m.Manifest.policy ~shards ~index:global value
  in
  match t.targets.(s) with
  | Remote_addr { host; port } ->
    raise
      (Shard_failed
         ( s,
           Printf.sprintf
             "record owned by remote shard %s:%d — writes route only to \
              local shards"
             host port ))
  | Local_handle inv ->
    let local = Invfile.Updater.add_value inv value in
    let entry = m.Manifest.shards.(s) in
    (if local <> Array.length entry.Manifest.ids then
       (* the store had more records than the manifest mapped — refuse to
          guess at a translation *)
       invalid_arg
         (Printf.sprintf
            "Router.insert: shard %d store/manifest id maps out of step" s));
    let entry =
      {
        entry with
        Manifest.records = entry.Manifest.records + 1;
        atoms = IF.atom_count inv;
        nodes = IF.node_count inv;
        ids = Array.append entry.Manifest.ids [| global |];
      }
    in
    let shards' = Array.copy m.Manifest.shards in
    shards'.(s) <- entry;
    t.manifest <-
      {
        m with
        Manifest.total_records = m.Manifest.total_records + 1;
        shards = shards';
      };
    (match t.global_index with
    | Some h -> Hashtbl.replace h global (s, local)
    | None -> ());
    global

let delete t global =
  match Hashtbl.find_opt (global_index t) global with
  | None -> false
  | Some (s, local) -> (
    match t.targets.(s) with
    | Remote_addr { host; port } ->
      raise
        (Shard_failed
           ( s,
             Printf.sprintf
               "record owned by remote shard %s:%d — writes route only to \
                local shards"
               host port ))
    | Local_handle inv -> Invfile.Updater.delete_record inv local)

let save_manifest t path = Manifest.save t.manifest path

(* --- observability --- *)

let local_io t =
  Array.fold_left
    (fun (lookups, hits, misses, reads, bytes) target ->
      match target with
      | Remote_addr _ -> (lookups, hits, misses, reads, bytes)
      | Local_handle inv ->
        let lk = IF.lookup_stats inv
        and st = (IF.store inv).Storage.Kv.stats in
        ( lookups + Storage.Io_stats.lookups lk,
          hits + Storage.Io_stats.hits lk,
          misses + Storage.Io_stats.misses lk,
          reads + Storage.Io_stats.reads st,
          bytes + Storage.Io_stats.bytes_read st ))
    (0, 0, 0, 0, 0) t.targets

let register reg ?(labels = []) t =
  let module M = Obs.Metrics in
  let cb ?help name kind f = M.register_callback reg ?help ~labels ~kind name f in
  cb "nscq_router_queries_total" `Counter (fun () ->
      float_of_int t.total_queries)
    ~help:"Scatter-gather queries routed";
  cb "nscq_router_joins_total" `Counter (fun () -> float_of_int t.total_joins)
    ~help:"Scatter-gather containment joins routed";
  cb "nscq_router_partial_answers_total" `Counter (fun () ->
      float_of_int t.partial_answers)
    ~help:"Answers missing at least one failed shard";
  Array.iteri
    (fun i st ->
      let shard_labels = ("shard", string_of_int i) :: labels in
      let scb ?help name kind f =
        M.register_callback reg ?help ~labels:shard_labels ~kind name f
      in
      scb "nscq_shard_queries_total" `Counter (fun () -> float_of_int st.queries)
        ~help:"Queries dispatched to the shard";
      scb "nscq_shard_failures_total" `Counter (fun () ->
          float_of_int st.failures)
        ~help:"Shard executions that failed";
      scb "nscq_shard_skips_total" `Counter (fun () -> float_of_int st.skips)
        ~help:"Queries pruned away from the shard by atom relevance";
      scb "nscq_shard_results_total" `Counter (fun () ->
          float_of_int st.results)
        ~help:"Record ids the shard contributed to answers";
      scb "nscq_shard_query_ms_max" `Gauge (fun () -> st.max_ms)
        ~help:"Slowest query the shard has answered, in ms";
      match t.targets.(i) with
      | Remote_addr _ -> ()
      | Local_handle inv ->
        (* two Io_stats per local shard — list lookups and raw store I/O —
           disambiguated by a [source] label so the metric names don't
           collide *)
        Storage.Io_stats.register reg
          ~labels:(("source", "lists") :: shard_labels)
          (IF.lookup_stats inv);
        Storage.Io_stats.register reg
          ~labels:(("source", "store") :: shard_labels)
          (IF.store inv).Storage.Kv.stats)
    t.stats

let render_stats t =
  let b = Buffer.create 512 in
  let n_local =
    Array.fold_left
      (fun acc -> function Local_handle _ -> acc + 1 | Remote_addr _ -> acc)
      0 t.targets
  in
  Printf.bprintf b
    "router: %d shard(s) (%d local, %d remote), %d quer%s, %d join(s), %d \
     partial answer(s)\n"
    (Array.length t.targets) n_local
    (Array.length t.targets - n_local)
    t.total_queries
    (if t.total_queries = 1 then "y" else "ies")
    t.total_joins t.partial_answers;
  let lookups, hits, misses, reads, bytes = local_io t in
  Printf.bprintf b
    "local io: lookups=%d hits=%d misses=%d reads=%d bytes_read=%d\n" lookups
    hits misses reads bytes;
  Array.iteri
    (fun i st ->
      let where =
        match t.manifest.Manifest.shards.(i).Manifest.location with
        | Manifest.Local { path; _ } -> path
        | Manifest.Remote { host; port } -> Printf.sprintf "%s:%d" host port
      in
      let mean = if st.queries = 0 then 0. else st.total_ms /. float_of_int st.queries in
      Printf.bprintf b
        "shard %-3d %-40s queries=%d skipped=%d failures=%d results=%d \
         mean_ms=%.3f max_ms=%.3f\n"
        i where st.queries st.skips st.failures st.results mean st.max_ms)
    t.stats;
  Buffer.contents b

(* --- serving --- *)

let ids_payload records = String.concat " " (List.map string_of_int records)

let dispatch_backend ?(config = default_config) m () =
  (* concurrency inside a server comes from the worker pool; each worker's
     router walks its local shards sequentially *)
  let t = open_manifest ~config:{ config with domains = 1 } m in
  let run_one ?trace v =
    let o = query ?trace t v in
    List.iter
      (fun (i, reason) ->
        Log.warn (fun f -> f "shard %d dropped from answer: %s" i reason))
      o.warnings;
    ids_payload o.records
  in
  {
    Server.Dispatch.run_literals =
      (fun ?(traces = []) values ->
        List.mapi
          (fun idx v ->
            let trace = match List.nth_opt traces idx with
              | Some t -> t
              | None -> None
            in
            run_one ?trace v)
          values);
    run_statement =
      (fun _ ->
        invalid_arg
          "NSCQL statements are not supported over a sharded collection \
           (literal queries only)");
    run_join =
      (fun values ->
        let o = join t values in
        List.iter
          (fun (i, reason) ->
            Log.warn (fun f -> f "shard %d dropped from join: %s" i reason))
          o.join_warnings;
        Server.Wire.join_payload
          (Join.Engine.group ~outer:(List.length values) o.pairs));
    run_traced =
      (fun ~trace_id v ->
        let trace = Obs.Trace.create ?id:trace_id "query" in
        let result = run_one ~trace v in
        Server.Wire.traced_payload ~result
          ~spans:(Obs.Trace.to_wire ~id:(Obs.Trace.id trace)
                    (Obs.Trace.finish trace)));
    run_insert =
      (fun _ ->
        (* each worker owns a private router over the same manifest;
           a write through one would be invisible to its siblings. The
           embedded Router API (one router, one owner) supports writes;
           the serving path does not. *)
        invalid_arg
          "a sharded collection is served read-only (write through nscq \
           shard insert, or serve a live store)");
    run_delete =
      (fun _ ->
        invalid_arg
          "a sharded collection is served read-only (write through nscq \
           shard delete, or serve a live store)");
    run_explain = (fun v -> Obs.Explain.to_wire (explain t v));
    io_totals =
      (fun () ->
        let lookups, hits, misses, reads, bytes_read = local_io t in
        { Server.Dispatch.lookups; hits; misses; reads; bytes_read });
    close = (fun () -> close t);
  }
