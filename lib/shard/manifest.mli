(** The shard map: a versioned, checksummed description of how one logical
    collection is split over N independent inverted files.

    A manifest records, per shard, where the shard lives (a local store
    file, or a remote [nscq serve] address reached over the wire
    protocol), its record/atom/node counts, and the translation from
    shard-local record ids (dense, assigned by each shard's own
    {!Invfile.Builder}) back to the global record ids of the logical
    collection. Global ids are what the single-store build of the same
    input would have assigned, so a sharded deployment answers queries
    with exactly the ids the oracle engine reports.

    The on-disk form is binary: a magic prefix, a {!Storage.Codec} body,
    and a trailing CRC-32 ({!Storage.Checksum}) over everything before
    it — a truncated or bit-flipped manifest refuses to load instead of
    silently routing queries to the wrong shards. *)

type backend = [ `Hash | `Btree | `Log ]
(** Storage engine of a local shard store (mirrors the CLI's --backend). *)

type location =
  | Local of { path : string; backend : backend }
  | Remote of { host : string; port : int }
      (** a shard served by a running [nscq serve], queried through
          {!Server.Client} *)

type shard = {
  location : location;
  records : int;  (** live records in the shard *)
  atoms : int;
  nodes : int;
  ids : int array;
      (** shard-local record id → global record id (length [records]) *)
}

type policy = Hash | Round_robin
(** How the partitioner placed records (recorded so [reshard] and
    [shard status] can report it; routing itself never needs it). *)

type t = {
  version : int;
  policy : policy;
  total_records : int;  (** of the logical collection, tombstones included *)
  shards : shard array;
}

exception Corrupt of string
(** The file is not a manifest, fails its checksum, or does not parse. *)

val version : int
(** Manifest format version written by this build (currently 1). *)

val magic : string
(** The 8-byte file prefix identifying a manifest. *)

val make : policy:policy -> total_records:int -> shard list -> t

val save : t -> string -> unit
(** Atomic-ish write: serialize, checksum, write whole. *)

val load : string -> t
(** @raise Corrupt as documented above.
    @raise Sys_error if the file cannot be read. *)

val is_manifest_file : string -> bool
(** [true] iff the file exists and starts with {!magic} — how the CLI
    auto-detects that a [--store] path is really a shard manifest. *)

val id_range : shard -> (int * int) option
(** Smallest and largest global record id held by the shard; [None] when
    empty. *)

val live_records : t -> int
(** Sum of per-shard live record counts. *)

val backend_name : backend -> string
val backend_of_name : string -> backend option

val pp : Format.formatter -> t -> unit
(** Human-readable summary (the body of [nscq shard status]). *)
