type backend = [ `Hash | `Btree | `Log ]

type location =
  | Local of { path : string; backend : backend }
  | Remote of { host : string; port : int }

type shard = {
  location : location;
  records : int;
  atoms : int;
  nodes : int;
  ids : int array;
}

type policy = Hash | Round_robin

type t = {
  version : int;
  policy : policy;
  total_records : int;
  shards : shard array;
}

exception Corrupt of string

let version = 1
let magic = "NSCQMAN1"

let make ~policy ~total_records shards =
  { version; policy; total_records; shards = Array.of_list shards }

let backend_name = function `Hash -> "hash" | `Btree -> "btree" | `Log -> "log"

let backend_of_name = function
  | "hash" -> Some `Hash
  | "btree" -> Some `Btree
  | "log" -> Some `Log
  | _ -> None

let backend_tag = function `Hash -> 0 | `Btree -> 1 | `Log -> 2
let policy_tag = function Hash -> 0 | Round_robin -> 1

(* --- serialization --- *)

let encode t =
  let w = Storage.Codec.writer () in
  Storage.Codec.write_varint w t.version;
  Storage.Codec.write_varint w (policy_tag t.policy);
  Storage.Codec.write_varint w t.total_records;
  Storage.Codec.write_varint w (Array.length t.shards);
  Array.iter
    (fun s ->
      (match s.location with
      | Local { path; backend } ->
        Storage.Codec.write_varint w 0;
        Storage.Codec.write_varint w (backend_tag backend);
        Storage.Codec.write_string w path
      | Remote { host; port } ->
        Storage.Codec.write_varint w 1;
        Storage.Codec.write_string w host;
        Storage.Codec.write_varint w port);
      Storage.Codec.write_varint w s.records;
      Storage.Codec.write_varint w s.atoms;
      Storage.Codec.write_varint w s.nodes;
      (* ids are ascending per shard for freshly partitioned collections
         but not after a merge reshard, so no delta coding *)
      Storage.Codec.write_varint w (Array.length s.ids);
      Array.iter (Storage.Codec.write_varint w) s.ids)
    t.shards;
  let body = magic ^ Storage.Codec.contents w in
  let crc = Storage.Checksum.crc32 body in
  let trailer = Bytes.create 4 in
  Bytes.set_int32_be trailer 0 crc;
  body ^ Bytes.to_string trailer

let decode data =
  let len = String.length data in
  if len < String.length magic + 4 then raise (Corrupt "manifest too short");
  if String.sub data 0 (String.length magic) <> magic then
    raise (Corrupt "not a shard manifest (bad magic)");
  let stored = String.get_int32_be data (len - 4) in
  let computed = Storage.Checksum.crc32_sub data ~pos:0 ~len:(len - 4) in
  if stored <> computed then raise (Corrupt "manifest checksum mismatch");
  let r =
    Storage.Codec.reader_sub data ~pos:(String.length magic)
      ~len:(len - 4 - String.length magic)
  in
  try
    let v = Storage.Codec.read_varint r in
    if v <> version then
      raise (Corrupt (Printf.sprintf "unsupported manifest version %d" v));
    let policy =
      match Storage.Codec.read_varint r with
      | 0 -> Hash
      | 1 -> Round_robin
      | n -> raise (Corrupt (Printf.sprintf "unknown placement policy %d" n))
    in
    let total_records = Storage.Codec.read_varint r in
    let n = Storage.Codec.read_varint r in
    let shards =
      Array.init n (fun _ ->
          let location =
            match Storage.Codec.read_varint r with
            | 0 ->
              let backend =
                match Storage.Codec.read_varint r with
                | 0 -> `Hash
                | 1 -> `Btree
                | 2 -> `Log
                | b -> raise (Corrupt (Printf.sprintf "unknown backend %d" b))
              in
              let path = Storage.Codec.read_string r in
              Local { path; backend }
            | 1 ->
              let host = Storage.Codec.read_string r in
              let port = Storage.Codec.read_varint r in
              Remote { host; port }
            | l -> raise (Corrupt (Printf.sprintf "unknown location kind %d" l))
          in
          let records = Storage.Codec.read_varint r in
          let atoms = Storage.Codec.read_varint r in
          let nodes = Storage.Codec.read_varint r in
          let nids = Storage.Codec.read_varint r in
          if nids <> records then
            raise
              (Corrupt
                 (Printf.sprintf "shard id map has %d entries for %d records"
                    nids records));
          let ids = Array.init nids (fun _ -> Storage.Codec.read_varint r) in
          { location; records; atoms; nodes; ids })
    in
    { version = v; policy; total_records; shards }
  with Storage.Codec.Corrupt msg -> raise (Corrupt ("manifest body: " ^ msg))

let save t path =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (encode t))

let load path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> decode (really_input_string ic (in_channel_length ic)))

let is_manifest_file path =
  Sys.file_exists path && not (Sys.is_directory path)
  &&
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      in_channel_length ic >= String.length magic
      && really_input_string ic (String.length magic) = magic)

(* --- observation --- *)

let id_range s =
  if Array.length s.ids = 0 then None
  else begin
    let lo = ref s.ids.(0) and hi = ref s.ids.(0) in
    Array.iter
      (fun id ->
        if id < !lo then lo := id;
        if id > !hi then hi := id)
      s.ids;
    Some (!lo, !hi)
  end

let live_records t = Array.fold_left (fun acc s -> acc + s.records) 0 t.shards

let pp_policy ppf = function
  | Hash -> Format.pp_print_string ppf "hash"
  | Round_robin -> Format.pp_print_string ppf "round-robin"

let pp ppf t =
  Format.fprintf ppf "shard manifest v%d: %d shard(s), %d/%d live record(s), %a placement@."
    t.version (Array.length t.shards) (live_records t) t.total_records
    pp_policy t.policy;
  Array.iteri
    (fun i s ->
      let where =
        match s.location with
        | Local { path; backend } ->
          Printf.sprintf "local  %-5s %s" (backend_name backend) path
        | Remote { host; port } -> Printf.sprintf "remote %s:%d" host port
      in
      let range =
        match id_range s with
        | None -> "empty"
        | Some (lo, hi) -> Printf.sprintf "ids %d..%d" lo hi
      in
      Format.fprintf ppf "  shard %-3d %s — %d record(s), %d atom(s), %d node(s), %s@."
        i where s.records s.atoms s.nodes range)
    t.shards
