(** The nscq wire protocol: length-prefixed binary frames with a CRC.

    Layout of one frame on the wire (all integers big-endian):

    {v
    +--------+--------+--------+-----------------+
    | u32    | u8     | u32    | payload         |
    | length | tag    | crc32  | (length bytes)  |
    +--------+--------+--------+-----------------+
    v}

    The CRC (reusing {!Storage.Checksum}, the log store's torn-write
    detector) covers the length word, the tag byte {e and} the payload, so
    a flipped tag or truncated length cannot re-parse as a different valid
    frame. A connection starts with a versioned handshake
    ([Hello]/[Hello_ack]); result payloads stream back as a sequence of
    [Result] chunks sharing the request id, the final one flagged [last].

    The codec is pure ({!encode} / {!decode}) so it can be property-tested
    without sockets; {!read_frame} / {!write_frame} bind it to blocking
    file descriptors for the server and client. *)

(** {1 Frames} *)

type error_code =
  | Overloaded  (** admission queue full — retry later, with backoff *)
  | Deadline_exceeded  (** the request's deadline passed while queued *)
  | Bad_request  (** unparsable query / unsupported statement *)
  | Server_error  (** the engine raised; message carries details *)
  | Shutting_down  (** server is draining; no new work accepted *)

type verb =
  | Query of string
      (** a nested-set literal (["{…}"]) or an NSCQL statement *)
  | Stats
      (** the server's aggregated counters plus the metrics-registry
          text exposition, separated by a blank line *)
  | Trace of string
      (** like [Query] for a literal, but the response payload carries
          the result ids {e and} the server-side span tree — see
          {!traced_payload} / {!split_traced} *)
  | Join of string
      (** a whole outer collection — one nested-set literal per line —
          evaluated as a set-containment join against the served
          collection; the response payload carries one id line per outer
          query, see {!join_payload} / {!split_join}. Like the trace
          field, the verb rides a previously unused verb-byte value, so
          every pre-existing encoding is byte-identical and old clients
          interoperate untouched (old servers reject the verb) *)
  | Insert of string
      (** a nested-set literal to add to a {e live} collection; the
          response payload is the new record's global id as decimal
          text. Verb byte 4 — same flag-compatible scheme as [Join];
          servers over a read-only store refuse it with [Bad_request] *)
  | Delete of string
      (** a global record id (decimal text) to delete from a live
          collection; the response payload is ["deleted"] or
          ["not-found"]. Verb byte 5 *)
  | Explain of string
      (** a nested-set literal to plan and profile rather than answer:
          the response payload is an {!Obs.Explain.to_wire} plan tree
          (atom order, estimated vs. measured candidates per phase,
          per-segment / per-shard sub-plans). Verb byte 6 — the same
          flag-compatible scheme as [Join]/[Insert]/[Delete], so every
          pre-existing encoding stays byte-identical; old servers
          refuse the verb with [Bad_request] *)

type frame =
  | Hello of { version : int }  (** client → server, first frame *)
  | Hello_ack of { version : int; server : string }
  | Request of { id : int; deadline_ms : int; verb : verb; trace : int option }
      (** [deadline_ms = 0] means no deadline; [id] is chosen by the
          client and echoed on every frame of the response. [trace]
          propagates the caller's trace id to the server; it rides in an
          optional field flagged in the verb byte, so [trace = None]
          requests encode byte-for-byte as protocol v1 — old clients and
          servers interoperate untouched (the [Trace] verb itself is
          rejected by v1 servers) *)
  | Result of { id : int; seq : int; last : bool; chunk : string }
  | Error of { id : int; code : error_code; message : string }
  | Goodbye  (** either side: orderly close *)

val version : int
(** Protocol version spoken by this build (currently 1). *)

val max_frame : int
(** Upper bound on the payload length a peer will accept (16 MiB);
    larger results are chunked into multiple [Result] frames. *)

val pp_error_code : Format.formatter -> error_code -> unit
val pp_frame : Format.formatter -> frame -> unit

(** {1 Pure codec} *)

val encode : frame -> string

type decode_result =
  | Decoded of frame * int
      (** the frame and the number of bytes consumed *)
  | Need_more  (** a prefix of a valid frame — read more bytes *)
  | Invalid of string  (** CRC mismatch, bad tag, malformed payload… *)

val decode : ?pos:int -> string -> decode_result
(** Decodes the frame starting at [pos] (default 0). Never raises. *)

(** {1 Blocking I/O} *)

exception Closed
(** The peer closed the connection mid-frame (or before one started). *)

exception Protocol_error of string
(** The peer sent bytes that do not decode as a frame. *)

val write_frame : Unix.file_descr -> frame -> unit
val read_frame : Unix.file_descr -> frame
(** @raise Closed / Protocol_error as above. *)

val chunk_result : id:int -> string -> frame list
(** Splits a response payload into [Result] frames of at most
    {!max_frame} bytes each (an empty payload still yields one final
    frame). *)

(** {1 Trace-verb payloads} *)

val traced_payload : result:string -> spans:string -> string
(** Composes a [Trace] response: the result line, a newline, then the
    serialized span tree ({!Obs.Trace.to_wire} output). *)

val split_traced : string -> string * string
(** Inverse of {!traced_payload}: [(result, spans)]; [spans] is [""]
    when the payload carries no trace part. *)

(** {1 Join-verb payloads} *)

val join_payload : int list list -> string
(** Composes a [Join] response: a count line, then one line per outer
    query (in request order) carrying its matching record ids,
    space-separated. *)

val split_join : string -> (int list list, string) result
(** Inverse of {!join_payload}. [Error] describes the malformation. *)
