(* Latencies land in log2-scaled microsecond buckets: bucket i holds
   [2^i, 2^(i+1)) µs, 40 buckets reaching ~18 minutes. Quantiles read the
   bucket upper edge, so they are exact to within a factor of 2 — plenty
   for p95-style load reporting without unbounded memory. *)

let buckets = 40

type t = {
  mutex : Mutex.t;
  started_at : float;
  hist : int array;
  mutable latencies : int;
  mutable accepted : int;
  mutable completed : int;
  mutable failed : int;
  mutable overloaded : int;
  mutable shed : int;
  mutable expired : int;
  mutable batches : int;
  mutable batched_jobs : int;
  mutable max_batch : int;
  mutable max_queue_depth : int;
  mutable lookups : int;
  mutable hits : int;
  mutable misses : int;
  mutable reads : int;
  mutable bytes_read : int;
}

let create () =
  {
    mutex = Mutex.create ();
    started_at = Unix.gettimeofday ();
    hist = Array.make buckets 0;
    latencies = 0;
    accepted = 0;
    completed = 0;
    failed = 0;
    overloaded = 0;
    shed = 0;
    expired = 0;
    batches = 0;
    batched_jobs = 0;
    max_batch = 0;
    max_queue_depth = 0;
    lookups = 0;
    hits = 0;
    misses = 0;
    reads = 0;
    bytes_read = 0;
  }

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let bucket_of latency_s =
  let us = int_of_float (latency_s *. 1e6) in
  if us <= 1 then 0
  else min (buckets - 1) (int_of_float (Float.log2 (float_of_int us)))

let bucket_upper_ms i = Float.pow 2. (float_of_int (i + 1)) /. 1000.

let observe t latency_s =
  t.hist.(bucket_of latency_s) <- t.hist.(bucket_of latency_s) + 1;
  t.latencies <- t.latencies + 1

let record_admitted t ~queue_depth =
  locked t (fun () ->
      t.accepted <- t.accepted + 1;
      if queue_depth > t.max_queue_depth then t.max_queue_depth <- queue_depth)

let record_overloaded t = locked t (fun () -> t.overloaded <- t.overloaded + 1)
let record_shed t = locked t (fun () -> t.shed <- t.shed + 1)

let record_batch t ~size =
  locked t (fun () ->
      t.batches <- t.batches + 1;
      t.batched_jobs <- t.batched_jobs + size;
      if size > t.max_batch then t.max_batch <- size)

let record_done t ~latency_s =
  locked t (fun () ->
      t.completed <- t.completed + 1;
      observe t latency_s)

let record_failed t ~latency_s =
  locked t (fun () ->
      t.failed <- t.failed + 1;
      observe t latency_s)

let record_expired t = locked t (fun () -> t.expired <- t.expired + 1)

let record_io t ~lookups ~hits ~misses ~reads ~bytes_read =
  locked t (fun () ->
      t.lookups <- t.lookups + lookups;
      t.hits <- t.hits + hits;
      t.misses <- t.misses + misses;
      t.reads <- t.reads + reads;
      t.bytes_read <- t.bytes_read + bytes_read)

let accepted t = locked t (fun () -> t.accepted)
let completed t = locked t (fun () -> t.completed)
let overloaded t = locked t (fun () -> t.overloaded)
let batches t = locked t (fun () -> t.batches)

let mean_batch t =
  locked t (fun () ->
      if t.batches = 0 then 0.
      else float_of_int t.batched_jobs /. float_of_int t.batches)

let quantile_locked t p =
  if t.latencies = 0 then 0.
  else begin
    let rank = int_of_float (ceil (p *. float_of_int t.latencies)) in
    let rank = max 1 (min rank t.latencies) in
    let acc = ref 0 and result = ref (bucket_upper_ms (buckets - 1)) in
    (try
       for i = 0 to buckets - 1 do
         acc := !acc + t.hist.(i);
         if !acc >= rank then begin
           result := bucket_upper_ms i;
           raise Exit
         end
       done
     with Exit -> ());
    !result
  end

let quantile t p = locked t (fun () -> quantile_locked t p)

let render t ~domains ~queue_depth ~queue_cap =
  locked t (fun () ->
      let b = Buffer.create 512 in
      let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b (s ^ "\n")) fmt in
      line "uptime_s %.1f" (Unix.gettimeofday () -. t.started_at);
      line "domains %d" domains;
      line "accepted %d completed %d failed %d" t.accepted t.completed t.failed;
      line "rejected overloaded %d shutting_down %d deadline %d" t.overloaded
        t.shed t.expired;
      line "queue depth %d cap %d max %d" queue_depth queue_cap t.max_queue_depth;
      line "batches %d mean_occupancy %.2f max %d" t.batches
        (if t.batches = 0 then 0.
         else float_of_int t.batched_jobs /. float_of_int t.batches)
        t.max_batch;
      line "latency_ms p50 %.3f p95 %.3f p99 %.3f" (quantile_locked t 0.5)
        (quantile_locked t 0.95) (quantile_locked t 0.99);
      line "lookups %d cache_hits %d cache_misses %d" t.lookups t.hits t.misses;
      line "io_reads %d io_bytes_read %d" t.reads t.bytes_read;
      Buffer.contents b)

let log_line t ~queue_depth =
  locked t (fun () ->
      Printf.sprintf
        "served %d (failed %d, shed %d, expired %d) queue %d/%d batches %d \
         occ %.2f p50 %.2fms p95 %.2fms p99 %.2fms hits %d/%d"
        t.completed t.failed (t.overloaded + t.shed) t.expired queue_depth
        t.max_queue_depth t.batches
        (if t.batches = 0 then 0.
         else float_of_int t.batched_jobs /. float_of_int t.batches)
        (quantile_locked t 0.5) (quantile_locked t 0.95) (quantile_locked t 0.99)
        t.hits t.lookups)
