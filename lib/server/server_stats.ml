(* All counters live in an Obs.Metrics registry, so the server's [Stats]
   verb and [nscq stats] render one coherent view — the named record
   fields of the old implementation became named registry series. The
   instruments are lock-free Atomics; there is no recording mutex at all
   now. Latencies land in log2-scaled microsecond buckets with the same
   upper edges as before (bucket i ends at 2^(i+1) µs), so quantiles read
   identically. *)

module M = Obs.Metrics

type t = {
  registry : M.t;
  started_at : float;
  accepted : M.counter;
  completed : M.counter;
  failed : M.counter;
  overloaded : M.counter;
  shed : M.counter;
  expired : M.counter;
  batches : M.counter;
  batched_jobs : M.counter;
  slow : M.counter;
  max_batch : M.gauge;
  max_queue_depth : M.gauge;
  latency_us : M.histogram;
  lookups : M.counter;
  hits : M.counter;
  misses : M.counter;
  reads : M.counter;
  bytes_read : M.counter;
}

let create ?registry () =
  let reg = match registry with Some r -> r | None -> M.create () in
  let c name help = M.counter reg ~help name in
  let rejected reason =
    M.counter reg ~help:"Requests refused without running"
      ~labels:[ ("reason", reason) ]
      "nscq_requests_rejected_total"
  in
  {
    registry = reg;
    started_at = Unix.gettimeofday ();
    accepted = c "nscq_requests_accepted_total" "Requests admitted to the queue";
    completed = c "nscq_requests_completed_total" "Requests answered with data";
    failed = c "nscq_requests_failed_total" "Requests refused in execution";
    overloaded = rejected "overloaded";
    shed = rejected "shutting_down";
    expired = rejected "deadline";
    batches = c "nscq_batches_total" "Batches dequeued by worker domains";
    batched_jobs = c "nscq_batched_jobs_total" "Requests executed inside batches";
    slow = c "nscq_slow_queries_total" "Requests over the slow-query threshold";
    max_batch = M.gauge reg ~help:"Largest batch dequeued" "nscq_batch_max";
    max_queue_depth =
      M.gauge reg ~help:"Admission queue high-water mark" "nscq_queue_depth_max";
    latency_us =
      M.histogram reg ~help:"Queue-entry to reply latency (microseconds)"
        "nscq_request_latency_us";
    lookups = c "nscq_list_lookups_total" "Logical inverted-list lookups";
    hits = c "nscq_cache_hits_total" "Lookups served from a decoded-list cache";
    misses = c "nscq_cache_misses_total" "Lookups that went to the store";
    reads = c "nscq_store_reads_total" "Store read operations";
    bytes_read = c "nscq_store_bytes_read_total" "Bytes read from the store";
  }

let registry t = t.registry

let observe t latency_s = M.observe t.latency_us (latency_s *. 1e6)

let record_admitted t ~queue_depth =
  M.inc t.accepted;
  M.set_max t.max_queue_depth (float_of_int queue_depth)

let record_overloaded t = M.inc t.overloaded
let record_shed t = M.inc t.shed

let record_batch t ~size =
  M.inc t.batches;
  M.add t.batched_jobs size;
  M.set_max t.max_batch (float_of_int size)

let record_done t ~latency_s =
  M.inc t.completed;
  observe t latency_s

let record_failed t ~latency_s =
  M.inc t.failed;
  observe t latency_s

let record_expired t = M.inc t.expired
let record_slow t = M.inc t.slow

let record_io t ~lookups ~hits ~misses ~reads ~bytes_read =
  M.add t.lookups lookups;
  M.add t.hits hits;
  M.add t.misses misses;
  M.add t.reads reads;
  M.add t.bytes_read bytes_read

let accepted t = M.counter_value t.accepted
let completed t = M.counter_value t.completed
let overloaded t = M.counter_value t.overloaded
let batches t = M.counter_value t.batches
let slow t = M.counter_value t.slow

let mean_batch t =
  let b = M.counter_value t.batches in
  if b = 0 then 0. else float_of_int (M.counter_value t.batched_jobs) /. float_of_int b

let quantile t p = M.quantile t.latency_us p /. 1000.

let hit_ratio t =
  let h = M.counter_value t.hits and m = M.counter_value t.misses in
  if h + m = 0 then 0. else float_of_int h /. float_of_int (h + m)

let render t ~domains ~queue_depth ~queue_cap =
  let b = Buffer.create 512 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b (s ^ "\n")) fmt in
  line "uptime_s %.1f" (Unix.gettimeofday () -. t.started_at);
  line "domains %d" domains;
  line "accepted %d completed %d failed %d" (M.counter_value t.accepted)
    (M.counter_value t.completed) (M.counter_value t.failed);
  line "rejected overloaded %d shutting_down %d deadline %d"
    (M.counter_value t.overloaded) (M.counter_value t.shed)
    (M.counter_value t.expired);
  line "queue depth %d cap %d max %.0f" queue_depth queue_cap
    (M.gauge_value t.max_queue_depth);
  line "batches %d mean_occupancy %.2f max %.0f" (M.counter_value t.batches)
    (mean_batch t) (M.gauge_value t.max_batch);
  line "latency_ms p50 %.1f p95 %.1f p99 %.1f" (quantile t 0.5)
    (quantile t 0.95) (quantile t 0.99);
  line "slow_queries %d" (M.counter_value t.slow);
  line "lookups %d cache_hits %d cache_misses %d (ratio %.3f)"
    (M.counter_value t.lookups) (M.counter_value t.hits)
    (M.counter_value t.misses) (hit_ratio t);
  line "io_reads %d io_bytes_read %d" (M.counter_value t.reads)
    (M.counter_value t.bytes_read);
  Buffer.contents b

let log_line t ~queue_depth =
  Printf.sprintf
    "served %d (failed %d, shed %d, expired %d, slow %d) queue %d/%.0f \
     batches %d occ %.2f p50 %.1fms p95 %.1fms p99 %.1fms hits %d/%d \
     (ratio %.3f)"
    (M.counter_value t.completed) (M.counter_value t.failed)
    (M.counter_value t.overloaded + M.counter_value t.shed)
    (M.counter_value t.expired) (M.counter_value t.slow) queue_depth
    (M.gauge_value t.max_queue_depth)
    (M.counter_value t.batches) (mean_batch t) (quantile t 0.5)
    (quantile t 0.95) (quantile t 0.99) (M.counter_value t.hits)
    (M.counter_value t.lookups) (hit_ratio t)
