module E = Containment.Engine
module IF = Invfile.Inverted_file

let src = Logs.Src.create "nscq.dispatch" ~doc:"containment-query scheduler"

module Log = (val Logs.src_log src : Logs.LOG)

type reply = Data of string | Refused of Wire.error_code * string

type job = {
  request : Batcher.request;
  deadline : float option;  (* absolute *)
  enqueued_at : float;
  reply : reply -> unit;
}

type state = Running | Draining | Stopped

type t = {
  mutex : Lockdep.t;
  race : Racesan.cell;
      (* guards queue/state/paused/workers: the worker loop and the
         submit path assert the contract under NSCQ_TSAN=1 *)
  wake : Condition.t;
  queue : job Queue.t;
  queue_cap : int;
  max_batch : int;
  n_domains : int;
  slow_ms : float; (* <= 0. disables the slow-query log *)
  slow_log : Obs.Slow_log.t;
  flight_path : string option;
      (* where a slow request auto-dumps the flight recorder *)
  flight_last : int Atomic.t; (* unix seconds of the last auto-dump *)
  mutable state : state;
  mutable paused : bool;
  stats : Server_stats.t;
  mutable workers : unit Domain.t list;
}

let locked t f = Lockdep.protect t.mutex f

(* --- execution backends --- *)

type io_totals = {
  lookups : int;
  hits : int;
  misses : int;
  reads : int;
  bytes_read : int;
}

type backend = {
  run_literals :
    ?traces:Obs.Trace.t option list -> Nested.Value.t list -> string list;
  run_statement : Containment.Nscql.statement -> string;
  run_traced : trace_id:int option -> Nested.Value.t -> string;
  run_join : Nested.Value.t list -> string;
  run_insert : Nested.Value.t -> string;
  run_delete : int -> string;
  run_explain : Nested.Value.t -> string;
  io_totals : unit -> io_totals;
  close : unit -> unit;
}

let read_only_refusal _ =
  invalid_arg "the served collection is read-only (serve a live store to write)"

let ids_payload (r : E.result) =
  String.concat " " (List.map string_of_int r.records)

let store_backend ?(config = E.default) ~cache_budget ~open_handle () =
  let inv = open_handle () in
  if cache_budget > 0 then
    IF.attach_cache inv
      (Invfile.Cache.create Invfile.Cache.Static ~capacity:cache_budget);
  {
    run_literals =
      (fun ?traces values ->
        List.map ids_payload (E.query_batch ~config ?traces inv values));
    run_statement =
      (fun stmt ->
        Format.asprintf "%a"
          (Containment.Nscql.pp_outcome ~collection:inv)
          (Containment.Nscql.execute inv stmt));
    run_traced =
      (fun ~trace_id value ->
        let trace = Obs.Trace.create ?id:trace_id "query" in
        let r = E.query ~config ~trace inv value in
        let root = Obs.Trace.finish trace in
        Wire.traced_payload ~result:(ids_payload r)
          ~spans:(Obs.Trace.to_wire ~id:(Obs.Trace.id trace) root));
    run_join =
      (fun values ->
        let r =
          Join.Engine.join
            ~config:{ Join.Engine.default with engine = config }
            inv values
        in
        Wire.join_payload
          (Join.Engine.group ~outer:(List.length values)
             r.Join.Engine.pairs));
    run_insert = read_only_refusal;
    run_delete = read_only_refusal;
    run_explain =
      (fun value ->
        Obs.Explain.to_wire (E.explain_profile ~config inv value));
    io_totals =
      (fun () ->
        let lk = IF.lookup_stats inv and st = (IF.store inv).Storage.Kv.stats in
        {
          lookups = Storage.Io_stats.lookups lk;
          hits = Storage.Io_stats.hits lk;
          misses = Storage.Io_stats.misses lk;
          reads = Storage.Io_stats.reads st;
          bytes_read = Storage.Io_stats.bytes_read st;
        });
    close = (fun () -> IF.close inv);
  }

(* Backend over one shared live store. Unlike {!store_backend}, every
   worker domain runs against the {e same} handle — the live store
   serializes internally, and writes from any worker must be visible to
   all. Consequences: [io_totals] reports zeros (per-worker deltas of a
   shared store would multiply-count), and [close] is a no-op (the caller
   that opened the store owns its lifetime and closes it after
   {!drain}). *)
let live_backend ?(config = E.default) ~store () =
  let module L = Live.Live_store in
  let ids_line ids = String.concat " " (List.map string_of_int ids) in
  let render_statement stmt =
    match stmt with
    | Containment.Nscql.Insert v ->
      Printf.sprintf "record %d inserted" (L.insert store v)
    | Containment.Nscql.Delete id ->
      if L.delete store id then "deleted" else "no such live record"
    | Containment.Nscql.Stats ->
      String.concat "\n"
        (List.map
           (fun (k, n) -> Printf.sprintf "%-18s %d" k n)
           (L.totals store))
    | Containment.Nscql.Query _ -> (
      match Containment.Nscql.query_config stmt with
      (* unreachable: query_config is total on Query statements *)
      | None -> invalid_arg "malformed query statement"
      | Some (config, verb, value, limit) -> (
        match verb with
        | Containment.Nscql.Find ->
          let ids = L.query ~config store value in
          let cap = Option.value ~default:10 limit in
          let b = Buffer.create 128 in
          Buffer.add_string b (Printf.sprintf "%d record(s)" (List.length ids));
          List.iteri
            (fun i id ->
              if i < cap then
                match L.record_value store id with
                | Some v ->
                  Buffer.add_string b
                    (Printf.sprintf "\n  #%d: %s" id (Nested.Value.to_string v))
                | None -> ())
            ids;
          if List.length ids > cap then
            Buffer.add_string b
              (Printf.sprintf "\n  … and %d more (add LIMIT n)"
                 (List.length ids - cap));
          Buffer.contents b
        | Containment.Nscql.Count ->
          string_of_int (List.length (L.query ~config store value))
        | Containment.Nscql.Explain ->
          Obs.Explain.render (L.explain ~config store value)
        | Containment.Nscql.Witness ->
          invalid_arg "WITNESS is not supported over a live store yet"))
  in
  {
    run_literals =
      (fun ?traces values ->
        match traces with
        | None | Some [] ->
          List.map ids_line (L.query_batch ~config store values)
        | Some traces ->
          (* slow-log armed: per-query traces, so run singly *)
          List.map2
            (fun trace value -> ids_line (L.query ~config ?trace store value))
            traces values);
    run_statement = render_statement;
    run_traced =
      (fun ~trace_id value ->
        let trace = Obs.Trace.create ?id:trace_id "query" in
        let ids = L.query ~config ~trace store value in
        let root = Obs.Trace.finish trace in
        Wire.traced_payload ~result:(ids_line ids)
          ~spans:(Obs.Trace.to_wire ~id:(Obs.Trace.id trace) root));
    run_join =
      (fun values ->
        let pairs =
          L.join ~config:{ Join.Engine.default with engine = config }
            store values
        in
        Wire.join_payload (Join.Engine.group ~outer:(List.length values) pairs));
    run_insert = (fun v -> string_of_int (L.insert store v));
    run_delete =
      (fun id -> if L.delete store id then "deleted" else "not-found");
    run_explain =
      (fun value -> Obs.Explain.to_wire (L.explain ~config store value));
    io_totals =
      (fun () -> { lookups = 0; hits = 0; misses = 0; reads = 0; bytes_read = 0 });
    close = (fun () -> ());
  }

(* --- worker side --- *)

let job_batchable j = Batcher.batchable j.request

(* Deltas of the backend's counters since the last report, folded into
   the server-wide stats — this is how per-domain Io_stats surface
   without cross-domain reads of mutable state. *)
let report_io t backend snap =
  let cur = backend.io_totals () and prev = !snap in
  Server_stats.record_io t.stats ~lookups:(cur.lookups - prev.lookups)
    ~hits:(cur.hits - prev.hits) ~misses:(cur.misses - prev.misses)
    ~reads:(cur.reads - prev.reads)
    ~bytes_read:(cur.bytes_read - prev.bytes_read);
  snap := cur

let finish t job reply =
  let latency_s = Unix.gettimeofday () -. job.enqueued_at in
  (match reply with
  | Data _ -> Server_stats.record_done t.stats ~latency_s
  | Refused _ -> Server_stats.record_failed t.stats ~latency_s);
  try job.reply reply
  with exn ->
    (* a reply callback failing (client gone mid-response) must not take
       the worker domain down *)
    Log.debug (fun m -> m "reply callback raised: %s" (Printexc.to_string exn))

let refusal_of_exn = function
  | Containment.Semantics.Unsupported msg -> (Wire.Bad_request, msg)
  | Invalid_argument msg -> (Wire.Bad_request, msg)
  | exn -> (Wire.Server_error, Printexc.to_string exn)

(* Slow-query log: one structured line per request whose queue-entry →
   reply latency crosses the threshold. The digest identifies the query
   without dumping it (logs stay one line); the phase breakdown comes from
   the trace when the request ran with one. *)
let digest_of_value v =
  Printf.sprintf "%08lx" (Storage.Checksum.crc32 (Nested.Value.to_string v))

(* When a slow request fires and a flight path is configured, snapshot
   the recorder rings next to it — rate-limited to one dump per
   [flight_min_gap_s] so a burst of slow queries doesn't turn the
   recorder into a disk hose. The CAS claims the dump slot; losers just
   skip (their events are in the winner's dump anyway). *)
let flight_min_gap_s = 10

let maybe_flight_dump t =
  match t.flight_path with
  | None -> ()
  | Some path ->
    if Obs.Recorder.enabled () then begin
      let now = int_of_float (Unix.gettimeofday ()) in
      let last = Atomic.get t.flight_last in
      if
        now - last >= flight_min_gap_s
        && Atomic.compare_and_set t.flight_last last now
      then
        match Obs.Recorder.write_dump path with
        | n ->
          Log.info (fun m -> m "flight recorder: %d event(s) dumped to %s" n path)
        | exception (Sys_error _ | Unix.Unix_error _) ->
          Log.debug (fun m -> m "flight dump to %s failed" path)
    end

let maybe_slow t job ?trace () =
  if t.slow_ms > 0. then begin
    let latency_ms = (Unix.gettimeofday () -. job.enqueued_at) *. 1000. in
    if latency_ms > t.slow_ms then begin
      Server_stats.record_slow t.stats;
      let digest =
        match job.request with
        | Batcher.Literal v | Batcher.Traced { value = v; _ } ->
          digest_of_value v
        | Batcher.Statement _ -> "nscql"
        | Batcher.Join values ->
          Printf.sprintf "join[%d]" (List.length values)
        | Batcher.Insert v -> "insert:" ^ digest_of_value v
        | Batcher.Delete id -> Printf.sprintf "delete:%d" id
        | Batcher.Explain v -> "explain:" ^ digest_of_value v
      in
      let trace = Option.map Obs.Trace.finish trace in
      let line =
        Obs.Slow_log.line ~digest ?trace ~latency_ms ~threshold_ms:t.slow_ms ()
      in
      Obs.Slow_log.add t.slow_log line;
      Log.warn (fun m -> m "%s" line);
      maybe_flight_dump t
    end
  end

let execute_group t backend jobs =
  match jobs with
  | [] -> ()
  | [ { request = Batcher.Statement stmt; _ } as job ] -> (
    match backend.run_statement stmt with
    | payload ->
      finish t job (Data payload);
      maybe_slow t job ()
    | exception exn ->
      let code, msg = refusal_of_exn exn in
      finish t job (Refused (code, msg)))
  | [ { request = Batcher.Traced { value; trace_id }; _ } as job ] -> (
    match backend.run_traced ~trace_id value with
    | payload ->
      finish t job (Data payload);
      (* the trace lives inside the backend; the slow line still carries
         the digest and latency *)
      maybe_slow t job ()
    | exception exn ->
      let code, msg = refusal_of_exn exn in
      finish t job (Refused (code, msg)))
  | ({ request = Batcher.Join values; _ } :: _) as jobs -> (
    (* one evaluation answers the whole group: coalesce only extends a
       Join head with requests sharing it verbatim (Batcher.shares) *)
    match backend.run_join values with
    | payload ->
      List.iter
        (fun job ->
          finish t job (Data payload);
          maybe_slow t job ())
        jobs
    | exception exn ->
      let code, msg = refusal_of_exn exn in
      List.iter (fun job -> finish t job (Refused (code, msg))) jobs)
  | [ { request = Batcher.Insert value; _ } as job ] -> (
    match backend.run_insert value with
    | payload ->
      finish t job (Data payload);
      maybe_slow t job ()
    | exception exn ->
      let code, msg = refusal_of_exn exn in
      finish t job (Refused (code, msg)))
  | [ { request = Batcher.Delete rid; _ } as job ] -> (
    match backend.run_delete rid with
    | payload ->
      finish t job (Data payload);
      maybe_slow t job ()
    | exception exn ->
      let code, msg = refusal_of_exn exn in
      finish t job (Refused (code, msg)))
  | [ { request = Batcher.Explain value; _ } as job ] -> (
    match backend.run_explain value with
    | payload ->
      finish t job (Data payload);
      maybe_slow t job ()
    | exception exn ->
      let code, msg = refusal_of_exn exn in
      finish t job (Refused (code, msg)))
  | jobs -> (
    (* an all-literal block (Batcher.coalesce groups nothing else); a
       stray non-literal is an internal bug, but the wire protocol has an
       error frame for it, so refuse the job instead of dying *)
    let jobs, strays =
      List.partition
        (fun j ->
          match j.request with
          | Batcher.Literal _ -> true
          | Batcher.Statement _ | Batcher.Traced _ | Batcher.Join _
          | Batcher.Insert _ | Batcher.Delete _ | Batcher.Explain _ -> false)
        jobs
    in
    List.iter
      (fun job ->
        finish t job
          (Refused
             (Wire.Server_error, "internal: non-literal job in a batch")))
      strays;
    let values =
      List.filter_map
        (fun j ->
          match j.request with Batcher.Literal v -> Some v | _ -> None)
        jobs
    in
    (* with the slow log armed, give every job a trace so an offending
       request can report its phase breakdown *)
    let traces =
      if t.slow_ms > 0. then
        Some (List.map (fun _ -> Some (Obs.Trace.create "query")) jobs)
      else None
    in
    match backend.run_literals ?traces values with
    | payloads ->
      let traces =
        match traces with
        | Some l -> l
        | None -> List.map (fun _ -> None) jobs
      in
      List.iter2
        (fun (job, trace) p ->
          finish t job (Data p);
          maybe_slow t job ?trace ())
        (List.combine jobs traces)
        payloads
    | exception exn ->
      let code, msg = refusal_of_exn exn in
      List.iter (fun job -> finish t job (Refused (code, msg))) jobs)

let worker t open_backend () =
  let backend = open_backend () in
  Fun.protect
    ~finally:(fun () -> backend.close ())
    (fun () ->
      (* the backend may start with counters already advanced (cache
         preload); baseline them so only query work is reported *)
      let snap = ref (backend.io_totals ()) in
      let rec loop () =
        Lockdep.lock t.mutex;
        Racesan.check t.race;
        while (t.paused || Queue.is_empty t.queue) && t.state = Running do
          Lockdep.wait t.wake t.mutex
        done;
        if Queue.is_empty t.queue then Lockdep.unlock t.mutex (* draining: done *)
        else begin
          let jobs =
            Batcher.coalesce
              ~shares:(fun a b -> Batcher.shares a.request b.request)
              t.queue ~batchable:job_batchable ~max:t.max_batch
          in
          Lockdep.unlock t.mutex;
          let now = Unix.gettimeofday () in
          let live, dead =
            List.partition
              (fun j ->
                match j.deadline with None -> true | Some d -> now <= d)
              jobs
          in
          List.iter
            (fun job ->
              Server_stats.record_expired t.stats;
              try
                job.reply
                  (Refused
                     (Wire.Deadline_exceeded, "deadline passed while queued"))
              with _ -> ())
            dead;
          if live <> [] then begin
            Server_stats.record_batch t.stats ~size:(List.length live);
            Obs.Recorder.batch ~size:(List.length live);
            execute_group t backend live;
            report_io t backend snap
          end;
          loop ()
        end
      in
      loop ())

(* --- caller side --- *)

let create ?(paused = false) ?(slow_ms = 0.) ?flight_path ~domains ~queue_cap
    ~max_batch ~open_backend ~stats () =
  if domains < 1 then invalid_arg "Dispatch.create: domains must be ≥ 1";
  if queue_cap < 1 then invalid_arg "Dispatch.create: queue_cap must be ≥ 1";
  if max_batch < 1 then invalid_arg "Dispatch.create: max_batch must be ≥ 1";
  let mutex = Lockdep.create "server.dispatch" in
  let t =
    {
      mutex;
      race = Racesan.register ~name:"server.dispatch.state" ~lock:mutex;
      wake = Condition.create ();
      queue = Queue.create ();
      queue_cap;
      max_batch;
      n_domains = domains;
      slow_ms;
      slow_log = Obs.Slow_log.create ();
      flight_path;
      flight_last = Atomic.make 0;
      state = Running;
      paused;
      stats;
      workers = [];
    }
  in
  t.workers <-
    List.init domains (fun _ -> Domain.spawn (worker t open_backend));
  t

let submit t ?deadline ~request ~reply () =
  let job = { request; deadline; enqueued_at = Unix.gettimeofday (); reply } in
  let outcome =
    locked t (fun () ->
        Racesan.check t.race;
        match t.state with
        | Draining | Stopped -> `Shutting_down
        | Running ->
          if Queue.length t.queue >= t.queue_cap then `Overloaded
          else begin
            Queue.push job t.queue;
            Server_stats.record_admitted t.stats
              ~queue_depth:(Queue.length t.queue);
            Condition.broadcast t.wake;
            `Accepted
          end)
  in
  (match outcome with
  | `Overloaded -> Server_stats.record_overloaded t.stats
  | `Shutting_down -> Server_stats.record_shed t.stats
  | `Accepted -> ());
  outcome

let resume t =
  locked t (fun () ->
      t.paused <- false;
      Condition.broadcast t.wake)

let queue_depth t = locked t (fun () -> Queue.length t.queue)
let domains t = t.n_domains
let slow_log t = t.slow_log

let drain t =
  let joinable =
    locked t (fun () ->
        match t.state with
        | Stopped -> []
        | Draining | Running ->
          t.state <- Draining;
          t.paused <- false;
          Condition.broadcast t.wake;
          let ws = t.workers in
          t.workers <- [];
          ws)
  in
  List.iter Domain.join joinable;
  locked t (fun () -> t.state <- Stopped)
