(** Aggregated server observability.

    One instance per running server, shared by the connection threads and
    the worker domains. Every counter is a series in an {!Obs.Metrics}
    registry (recording is lock-free Atomic bumps), so the same numbers
    render three ways: the classic {!render} text, the registry's
    Prometheus exposition ({!registry} → {!Obs.Metrics.render_text},
    appended to the wire [Stats] payload), and its JSON dump.

    Collected: admission/completion/rejection counters, a log-scaled
    latency histogram answering p50/p95/p99, queue-depth and batch
    occupancy high-water marks, a slow-query counter, and the per-domain
    {!Storage.Io_stats} deltas the workers report after each batch. *)

type t

val create : ?registry:Obs.Metrics.t -> unit -> t
(** Registers this server's series into [registry] (default: a fresh
    one) under [nscq_requests_*], [nscq_batches_total],
    [nscq_request_latency_us], [nscq_slow_queries_total],
    [nscq_list_lookups_total], [nscq_cache_*] and [nscq_store_*] names. *)

val registry : t -> Obs.Metrics.t

(** {1 Recording} *)

val record_admitted : t -> queue_depth:int -> unit
(** A request entered the admission queue (tracks the high-water mark). *)

val record_overloaded : t -> unit
(** A request was shed with [Overloaded] — the queue was full. *)

val record_shed : t -> unit
(** A request was refused because the server is draining. *)

val record_batch : t -> size:int -> unit
(** A worker dequeued a batch of [size] compatible requests. *)

val record_done : t -> latency_s:float -> unit
(** A request completed successfully; latency is queue-entry → reply. *)

val record_failed : t -> latency_s:float -> unit
(** A request failed in execution (engine error, unsupported semantics). *)

val record_expired : t -> unit
(** A request's deadline passed before a worker reached it. *)

val record_slow : t -> unit
(** A request crossed the configured slow-query threshold (one
    {!Obs.Slow_log} line was emitted for it). *)

val record_io :
  t -> lookups:int -> hits:int -> misses:int -> reads:int -> bytes_read:int ->
  unit
(** Per-domain I/O deltas, merged into the server-wide totals (workers
    report the change in their handle's counters after each batch). *)

(** {1 Reading} *)

val accepted : t -> int
val completed : t -> int
val overloaded : t -> int
val batches : t -> int
val slow : t -> int
val mean_batch : t -> float
(** Mean batch occupancy (requests per dequeued batch); 0 when idle. *)

val quantile : t -> float -> float
(** [quantile t 0.95] is the p95 latency in milliseconds — the upper edge
    of the log2 histogram bucket containing that rank. With no recorded
    latencies there is no bucket to read, and the result is [0.] (not an
    error, not NaN): a freshly started server legitimately reports
    [p50 0.0]. The empty case is pinned by a regression test. *)

val render : t -> domains:int -> queue_depth:int -> queue_cap:int -> string
(** The multi-line text payload served for the [Stats] protocol verb. *)

val log_line : t -> queue_depth:int -> string
(** One-line digest for the server's periodic stats log. *)
