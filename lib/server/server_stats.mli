(** Aggregated server observability.

    One instance per running server, shared by the connection threads and
    the worker domains (all recording goes through one mutex — recording
    is a handful of integer bumps, far off the query path's cost).

    Collected: admission/completion/rejection counters, a log-scaled
    latency histogram answering p50/p95/p99, queue-depth and batch
    occupancy gauges, and the per-domain {!Storage.Io_stats} deltas the
    workers report after each batch. Rendered two ways: {!render} is the
    payload of the wire protocol's [Stats] verb, {!log_line} the periodic
    one-line digest the server logs. *)

type t

val create : unit -> t

(** {1 Recording} *)

val record_admitted : t -> queue_depth:int -> unit
(** A request entered the admission queue (tracks the high-water mark). *)

val record_overloaded : t -> unit
(** A request was shed with [Overloaded] — the queue was full. *)

val record_shed : t -> unit
(** A request was refused because the server is draining. *)

val record_batch : t -> size:int -> unit
(** A worker dequeued a batch of [size] compatible requests. *)

val record_done : t -> latency_s:float -> unit
(** A request completed successfully; latency is queue-entry → reply. *)

val record_failed : t -> latency_s:float -> unit
(** A request failed in execution (engine error, unsupported semantics). *)

val record_expired : t -> unit
(** A request's deadline passed before a worker reached it. *)

val record_io :
  t -> lookups:int -> hits:int -> misses:int -> reads:int -> bytes_read:int ->
  unit
(** Per-domain I/O deltas, merged into the server-wide totals (workers
    report the change in their handle's counters after each batch). *)

(** {1 Reading} *)

val accepted : t -> int
val completed : t -> int
val overloaded : t -> int
val batches : t -> int
val mean_batch : t -> float
(** Mean batch occupancy (requests per dequeued batch); 0 when idle. *)

val quantile : t -> float -> float
(** [quantile t 0.95] is the p95 latency in milliseconds (the upper edge
    of the histogram bucket containing that rank; 0 when empty). *)

val render : t -> domains:int -> queue_depth:int -> queue_cap:int -> string
(** The multi-line text payload served for the [Stats] protocol verb. *)

val log_line : t -> queue_depth:int -> string
(** One-line digest for the server's periodic stats log. *)
