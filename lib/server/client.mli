(** Blocking client for the nscq wire protocol — the other half of the
    {!Wire} codec, used by [nscq query --connect], the serve-load bench
    and the test suite.

    One outstanding request at a time per connection (the protocol allows
    pipelining; this client keeps to the simple lock-step discipline). A
    client value is not thread-safe — open one connection per thread. *)

type t

exception Handshake_failed of string

val connect : ?host:string -> port:int -> unit -> t
(** Connects and performs the versioned handshake.
    @raise Unix.Unix_error if the connection is refused.
    @raise Handshake_failed on a version mismatch or a non-nscq peer. *)

val query :
  t -> ?deadline_ms:int -> string ->
  (string, Wire.error_code * string) result
(** Sends a query — a nested-set literal or a read-only NSCQL statement —
    and blocks for the reassembled response payload. For a literal the
    payload is the matching record ids, space-separated and ascending
    (empty string = no matches); for NSCQL it is the rendered outcome.
    [Error] carries the server's refusal (e.g. [Overloaded] under load).
    @raise Wire.Closed / Wire.Protocol_error if the connection breaks. *)

val join :
  t -> ?deadline_ms:int -> string ->
  (string, Wire.error_code * string) result
(** Sends an outer collection — one nested-set literal per line — under
    the [Join] verb and blocks for the reassembled response payload:
    a {!Wire.join_payload}-composed line set (one record-id line per
    outer query), parse it with {!Wire.split_join}. Servers predating
    the verb answer with a protocol error. *)

val explain :
  t -> ?deadline_ms:int -> string ->
  (string, Wire.error_code * string) result
(** Sends a nested-set literal under the [Explain] verb and blocks for
    the plan/profile payload — an {!Obs.Explain.to_wire} tree, parse it
    with {!Obs.Explain.of_wire}. Servers predating the verb answer with
    a protocol error. *)

val stats : t -> (string, Wire.error_code * string) result
(** The server's aggregated counters ({!Server_stats.render}) followed by
    the metrics-registry text exposition
    ({!Obs.Metrics.render_text}), separated by a blank line. *)

val trace :
  t -> ?deadline_ms:int -> ?trace_id:int -> string ->
  (string, Wire.error_code * string) result
(** Sends a literal under the [Trace] verb: the payload carries the
    result ids and the server-side span tree — split it with
    {!Wire.split_traced}, parse the spans with {!Obs.Trace.of_wire}.
    [trace_id] propagates the caller's trace id so local and remote spans
    correlate. Servers predating the verb answer with a protocol error. *)

val insert :
  t -> ?deadline_ms:int -> string ->
  (int, Wire.error_code * string) result
(** Sends a nested-set literal under the [Insert] verb; [Ok id] is the
    new record's global id. Servers over a read-only store refuse with
    [Bad_request]; servers predating the verb answer with a protocol
    error. *)

val delete :
  t -> ?deadline_ms:int -> int ->
  (bool, Wire.error_code * string) result
(** Deletes one record by global id under the [Delete] verb; [Ok true]
    if a live record was deleted, [Ok false] if the id was unknown or
    already deleted. *)

val close : t -> unit
(** Sends [Goodbye] (best effort) and closes the socket. Idempotent. *)
