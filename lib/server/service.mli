(** The long-running containment-query server.

    Glues the pieces together: a TCP accept loop (one lightweight thread
    per connection doing frame I/O), the {!Dispatch} domain pool executing
    queries, {!Batcher} classification at admission, and {!Server_stats}
    for the [stats] verb plus a periodic log line.

    Connection threads never run queries — they parse, submit, and stream
    replies written by the worker domains through a per-connection write
    lock (so responses to pipelined requests interleave safely).

    {!stop} is the graceful path [nscq serve] takes on SIGINT: stop
    accepting, refuse new requests with [Shutting_down], let the workers
    drain everything admitted, close every store handle, then return —
    an orderly stop never leaves journal recovery work behind. *)

type config = {
  host : string;  (** interface to bind, default ["127.0.0.1"] *)
  port : int;  (** [0] picks an ephemeral port (see {!port}) *)
  domains : int;  (** worker domains, each with its own store handle *)
  queue_cap : int;  (** admission-queue bound; beyond it requests are shed *)
  max_batch : int;  (** largest query block one worker dequeues at once *)
  cache_budget : int;  (** per-domain static cache, in lists; 0 = none *)
  stats_interval_s : float;  (** periodic stats log line; [<= 0] disables *)
  slow_query_ms : float;
      (** slow-query log threshold: requests slower than this (queue entry
          → reply) emit one structured {!Obs.Slow_log} line with their
          phase breakdown; [<= 0] (the default) disables it *)
  flight_path : string option;
      (** where slow requests auto-dump the {!Obs.Recorder} flight rings
          (rate-limited to one dump every 10 s); [None] (the default)
          disables auto-dumps *)
  engine : Containment.Engine.config;  (** config for literal queries *)
  writable : bool;
      (** accept NSCQL [INSERT]/[DELETE] through the [Query] verb — set
          only when the backend can write (a {!Dispatch.live_backend});
          the wire [Insert]/[Delete] verbs are always admitted and refused
          by read-only backends at execution *)
}

val default_config : config
(** loopback, ephemeral port, {!Containment.Parallel.default_domains}
    workers, queue cap 64, batches of up to 8, cache 250 (the paper's
    budget), stats every 10 s, slow-query log off, read-only. *)

type t

val start :
  ?paused:bool -> config ->
  open_handle:(unit -> Invfile.Inverted_file.t) -> t
(** Binds, listens, spawns the worker domains and the accept thread, and
    returns immediately. [open_handle] is called once per worker domain
    (the workers run a {!Dispatch.store_backend} over it, with the
    config's engine and cache budget). [~paused:true] starts with idle
    workers (requests queue but do not execute until {!resume}) —
    deterministic backpressure for tests.
    @raise Unix.Unix_error if the address cannot be bound. *)

val start_with :
  ?paused:bool -> config -> open_backend:(unit -> Dispatch.backend) -> t
(** Like {!start}, but each worker domain runs an arbitrary
    {!Dispatch.backend} — e.g. a shard router scatter-gathering over a
    manifest. The config's [engine] and [cache_budget] are ignored (the
    backend owns both). *)

val port : t -> int
(** The bound port — the ephemeral one when the config said [0]. *)

val stats : t -> Server_stats.t
val queue_depth : t -> int

val resume : t -> unit
(** Wakes the workers of a [~paused:true] server. *)

val stop : t -> unit
(** Graceful shutdown; idempotent. Blocks until in-flight requests have
    been answered, worker domains have exited and every store handle and
    socket is closed. *)
