module Nscql = Containment.Nscql

type request =
  | Literal of Nested.Value.t
  | Statement of Containment.Nscql.statement
  | Traced of { value : Nested.Value.t; trace_id : int option }
  | Join of Nested.Value.t list

let parse text =
  let text = String.trim text in
  if text = "" then Error "empty query"
  else if text.[0] = '{' then
    match Nested.Syntax.of_string_opt text with
    | Some v when Nested.Value.is_set v -> Ok (Literal v)
    | Some _ -> Error "query must be a set, not a bare atom"
    | None -> Error "parse error: expected a nested-set literal"
  else
    match Nscql.parse text with
    | Nscql.Insert _ | Nscql.Delete _ ->
      Error "refused: the server is read-only (INSERT/DELETE are not accepted)"
    | stmt -> Ok (Statement stmt)
    | exception Nscql.Parse_error m -> Error ("parse error: " ^ m)

(* A Join request's text is line-oriented: one nested-set literal per
   line (blank lines skipped). An empty outer collection — no lines — is
   legal and answers with no pairs. *)
let parse_join text =
  let lines =
    String.split_on_char '\n' text
    |> List.map String.trim
    |> List.filter (fun l -> l <> "")
  in
  let rec go acc n = function
    | [] -> Ok (Join (List.rev acc))
    | line :: rest -> (
      match Nested.Syntax.of_string_opt line with
      | Some v when Nested.Value.is_set v -> go (v :: acc) (n + 1) rest
      | Some _ ->
        Error
          (Printf.sprintf "outer value %d must be a set, not a bare atom" n)
      | None ->
        Error
          (Printf.sprintf
             "parse error in outer value %d: expected a nested-set literal" n))
  in
  go [] 0 lines

let batchable = function
  | Literal _ -> true
  | Statement _ | Traced _ | Join _ -> false

let coalesce queue ~batchable ~max =
  let first = Queue.pop queue in
  if not (batchable first) then [ first ]
  else begin
    let acc = ref [ first ] and n = ref 1 in
    let more = ref true in
    while !more && !n < max do
      match Queue.peek_opt queue with
      | Some j when batchable j ->
        acc := Queue.pop queue :: !acc;
        incr n
      | _ -> more := false
    done;
    List.rev !acc
  end
