module Nscql = Containment.Nscql

type request =
  | Literal of Nested.Value.t
  | Statement of Containment.Nscql.statement
  | Traced of { value : Nested.Value.t; trace_id : int option }
  | Join of Nested.Value.t list
  | Insert of Nested.Value.t
  | Delete of int
  | Explain of Nested.Value.t

let parse ?(writable = false) text =
  let text = String.trim text in
  if text = "" then Error "empty query"
  else if text.[0] = '{' then
    match Nested.Syntax.of_string_opt text with
    | Some v when Nested.Value.is_set v -> Ok (Literal v)
    | Some _ -> Error "query must be a set, not a bare atom"
    | None -> Error "parse error: expected a nested-set literal"
  else
    match Nscql.parse text with
    | (Nscql.Insert _ | Nscql.Delete _) when not writable ->
      Error "refused: the server is read-only (INSERT/DELETE are not accepted)"
    | Nscql.Insert v -> Ok (Insert v)
    | Nscql.Delete id -> Ok (Delete id)
    | stmt -> Ok (Statement stmt)
    | exception Nscql.Parse_error m -> Error ("parse error: " ^ m)

(* The wire [Insert] verb's text: one nested-set literal. *)
let parse_insert text =
  let text = String.trim text in
  match Nested.Syntax.of_string_opt text with
  | Some v when Nested.Value.is_set v -> Ok (Insert v)
  | Some _ -> Error "insert: value must be a set, not a bare atom"
  | None -> Error "insert: parse error: expected a nested-set literal"

(* The wire [Explain] verb's text: one nested-set literal to plan and
   profile. *)
let parse_explain text =
  let text = String.trim text in
  match Nested.Syntax.of_string_opt text with
  | Some v when Nested.Value.is_set v -> Ok (Explain v)
  | Some _ -> Error "explain: value must be a set, not a bare atom"
  | None -> Error "explain: parse error: expected a nested-set literal"

(* The wire [Delete] verb's text: one decimal global record id. *)
let parse_delete text =
  match int_of_string_opt (String.trim text) with
  | Some id when id >= 0 -> Ok (Delete id)
  | Some _ -> Error "delete: record id must be non-negative"
  | None -> Error "delete: expected a decimal record id"

(* A Join request's text is line-oriented: one nested-set literal per
   line (blank lines skipped). An empty outer collection — no lines — is
   legal and answers with no pairs. *)
let parse_join text =
  let lines =
    String.split_on_char '\n' text
    |> List.map String.trim
    |> List.filter (fun l -> l <> "")
  in
  let rec go acc n = function
    | [] -> Ok (Join (List.rev acc))
    | line :: rest -> (
      match Nested.Syntax.of_string_opt line with
      | Some v when Nested.Value.is_set v -> go (v :: acc) (n + 1) rest
      | Some _ ->
        Error
          (Printf.sprintf "outer value %d must be a set, not a bare atom" n)
      | None ->
        Error
          (Printf.sprintf
             "parse error in outer value %d: expected a nested-set literal" n))
  in
  go [] 0 lines

let batchable = function
  | Literal _ -> true
  | Statement _ | Traced _ | Join _ | Insert _ | Delete _ | Explain _ -> false

(* Two join requests share one evaluation — and thus one prefix-tree
   build — when their outer collections are identical. Concurrent
   clients asking the same join (the common fan-in shape: many dashboards
   refreshing one canned join) then cost a single tree DFS. *)
let shares a b =
  match (a, b) with
  | Join xs, Join ys ->
    List.length xs = List.length ys && List.for_all2 Nested.Value.equal xs ys
  | _ -> false

let coalesce ?(shares = fun _ _ -> false) queue ~batchable ~max =
  let first = Queue.pop queue in
  if batchable first then begin
    let acc = ref [ first ] and n = ref 1 in
    let more = ref true in
    while !more && !n < max do
      match Queue.peek_opt queue with
      | Some j when batchable j ->
        acc := Queue.pop queue :: !acc;
        incr n
      | _ -> more := false
    done;
    List.rev !acc
  end
  else begin
    (* non-batchable head: also dequeue contiguous jobs that share its
       evaluation verbatim (identical joins); they answer as one *)
    let acc = ref [ first ] in
    let more = ref true in
    while !more do
      match Queue.peek_opt queue with
      | Some j when shares first j ->
        acc := Queue.pop queue :: !acc
      | _ -> more := false
    done;
    List.rev !acc
  end
