module Nscql = Containment.Nscql

type request =
  | Literal of Nested.Value.t
  | Statement of Containment.Nscql.statement
  | Traced of { value : Nested.Value.t; trace_id : int option }

let parse text =
  let text = String.trim text in
  if text = "" then Error "empty query"
  else if text.[0] = '{' then
    match Nested.Syntax.of_string_opt text with
    | Some v when Nested.Value.is_set v -> Ok (Literal v)
    | Some _ -> Error "query must be a set, not a bare atom"
    | None -> Error "parse error: expected a nested-set literal"
  else
    match Nscql.parse text with
    | Nscql.Insert _ | Nscql.Delete _ ->
      Error "refused: the server is read-only (INSERT/DELETE are not accepted)"
    | stmt -> Ok (Statement stmt)
    | exception Nscql.Parse_error m -> Error ("parse error: " ^ m)

let batchable = function
  | Literal _ -> true
  | Statement _ | Traced _ -> false

let coalesce queue ~batchable ~max =
  let first = Queue.pop queue in
  if not (batchable first) then [ first ]
  else begin
    let acc = ref [ first ] and n = ref 1 in
    let more = ref true in
    while !more && !n < max do
      match Queue.peek_opt queue with
      | Some j when batchable j ->
        acc := Queue.pop queue :: !acc;
        incr n
      | _ -> more := false
    done;
    List.rev !acc
  end
