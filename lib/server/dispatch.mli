(** The request scheduler: a fixed pool of OCaml 5 domains behind one
    bounded admission queue.

    Each worker domain opens its {e own} execution {!backend} — by
    default a store handle and cache via {!store_backend} (exactly as
    {!Containment.Parallel} does — the stores' seek-then-read access is
    not shareable across domains) — and loops: dequeue a batch of
    compatible requests ({!Batcher.coalesce}), run it as one block,
    reply.

    Admission is explicitly bounded: {!submit} refuses with [`Overloaded]
    when [queue_cap] requests are already waiting, instead of queueing
    unboundedly — the caller turns that into a wire [Overloaded] error and
    the client backs off. Requests carry an optional absolute deadline;
    a request whose deadline passes while queued is answered with
    [Deadline_exceeded] without running. *)

type t

type reply =
  | Data of string  (** success payload (chunked onto the wire by the caller) *)
  | Refused of Wire.error_code * string

(** Cumulative I/O counters of one worker's execution backend; the
    dispatcher folds deltas of these into {!Server_stats} after each
    batch. *)
type io_totals = {
  lookups : int;
  hits : int;
  misses : int;
  reads : int;
  bytes_read : int;
}

(** What a worker domain runs requests against. The default is
    {!store_backend} — one inverted-file handle per worker — but anything
    that can answer literal queries with a record-id payload plugs in
    (e.g. a shard router fanning out to many stores). All functions are
    called only from the worker domain that opened the backend, so they
    need no internal synchronisation. [run_literals] returns one payload
    per input value, in order ([traces] pairs up positionally when the
    dispatcher arms per-request tracing for the slow-query log);
    [run_traced] answers one [Trace]-verb request with a
    {!Wire.traced_payload}-composed payload (result ids + span tree under
    the given trace id). The run functions may raise —
    [Containment.Semantics.Unsupported] and [Invalid_argument] become
    [Bad_request] refusals, anything else [Server_error]. *)
type backend = {
  run_literals :
    ?traces:Obs.Trace.t option list -> Nested.Value.t list -> string list;
  run_statement : Containment.Nscql.statement -> string;
  run_traced : trace_id:int option -> Nested.Value.t -> string;
  run_join : Nested.Value.t list -> string;
      (** one [Join]-verb request: the whole outer collection against the
          served store, answered with a {!Wire.join_payload}-composed
          payload *)
  run_insert : Nested.Value.t -> string;
      (** one [Insert]-verb request; the payload is the new global record
          id in decimal. Read-only backends raise [Invalid_argument]
          (surfaced as [Bad_request]) *)
  run_delete : int -> string;
      (** one [Delete]-verb request; ["deleted"] or ["not-found"] *)
  run_explain : Nested.Value.t -> string;
      (** one [Explain]-verb request: plan and profile the literal
          instead of answering it; the payload is an
          {!Obs.Explain.to_wire} plan tree *)
  io_totals : unit -> io_totals;
  close : unit -> unit;
}

val store_backend :
  ?config:Containment.Engine.config ->
  cache_budget:int ->
  open_handle:(unit -> Invfile.Inverted_file.t) ->
  unit ->
  backend
(** The classic single-store backend: opens one
    {!Invfile.Inverted_file} handle ([cache_budget > 0] attaches a
    static cache of that many lists), answers literal blocks with
    {!Containment.Engine.query_batch}, NSCQL statements with
    {!Containment.Nscql.execute} and [Join] requests with
    {!Join.Engine.join} under the server's engine config. [Insert] and
    [Delete] are refused — the handles are read-only. *)

val live_backend :
  ?config:Containment.Engine.config ->
  store:Live.Live_store.t ->
  unit ->
  backend
(** Backend over one {e shared} {!Live.Live_store} — the writable serving
    path. Every worker domain submits to the same handle (the live store
    serializes internally; writes are immediately visible to all
    workers). [run_insert]/[run_delete] accept; NSCQL [INSERT]/[DELETE]
    statements execute too. [io_totals] reports zeros (the shared store's
    counters cannot be attributed per worker) and [close] is a no-op —
    the caller owns the store and closes it after {!drain}. *)

val create :
  ?paused:bool ->
  ?slow_ms:float ->
  ?flight_path:string ->
  domains:int ->
  queue_cap:int ->
  max_batch:int ->
  open_backend:(unit -> backend) ->
  stats:Server_stats.t ->
  unit ->
  t
(** Spawns [domains] worker domains immediately. With [~paused:true] the
    workers idle until {!resume} — submissions still queue (up to
    [queue_cap]), which gives tests and staged startups a deterministic
    way to fill the queue. [open_backend] is called once per worker, in
    that worker's domain.

    [slow_ms > 0.] arms the slow-query log: every literal request runs
    with a phase trace, and any request whose queue-entry → reply latency
    exceeds the threshold emits one {!Obs.Slow_log} line (digest, phase
    breakdown, I/O deltas) at warning level and bumps
    [nscq_slow_queries_total]. The default [0.] disables it — and skips
    the per-request trace allocation entirely.
    @raise Invalid_argument if [domains < 1], [queue_cap < 1] or
    [max_batch < 1].

    [flight_path] arms slow-query flight dumps: when a slow line fires
    and the {!Obs.Recorder} is enabled, the recorder rings are written
    there ({!Obs.Recorder.write_dump}), rate-limited to one dump every
    10 s so bursts don't thrash the disk. *)

val submit :
  t -> ?deadline:float -> request:Batcher.request -> reply:(reply -> unit) ->
  unit -> [ `Accepted | `Overloaded | `Shutting_down ]
(** Enqueues one request. [deadline] is absolute ([Unix.gettimeofday]
    scale). On [`Accepted], [reply] is called exactly once, later, from a
    worker domain — the callback must be thread-safe. On [`Overloaded] /
    [`Shutting_down] the callback is never called and nothing was queued. *)

val resume : t -> unit
(** Wakes the workers of a [~paused:true] dispatcher (idempotent). *)

val queue_depth : t -> int
val domains : t -> int

val slow_log : t -> Obs.Slow_log.t
(** The bounded in-memory ring of slow-query lines (newest
    [Obs.Slow_log.capacity] kept; older ones counted in
    {!Obs.Slow_log.dropped}). *)

val drain : t -> unit
(** Graceful shutdown: stop admitting, let the workers finish everything
    already queued, join them, close their handles. Idempotent; blocks
    until the queue is empty and every domain has exited. *)
