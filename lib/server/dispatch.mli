(** The request scheduler: a fixed pool of OCaml 5 domains behind one
    bounded admission queue.

    Each worker domain opens its {e own} store handle and cache (exactly
    as {!Containment.Parallel} does — the stores' seek-then-read access is
    not shareable across domains) and loops: dequeue a batch of compatible
    requests ({!Batcher.coalesce}), run it as one block
    ({!Containment.Engine.query_batch}), reply.

    Admission is explicitly bounded: {!submit} refuses with [`Overloaded]
    when [queue_cap] requests are already waiting, instead of queueing
    unboundedly — the caller turns that into a wire [Overloaded] error and
    the client backs off. Requests carry an optional absolute deadline;
    a request whose deadline passes while queued is answered with
    [Deadline_exceeded] without running. *)

type t

type reply =
  | Data of string  (** success payload (chunked onto the wire by the caller) *)
  | Refused of Wire.error_code * string

val create :
  ?paused:bool ->
  ?config:Containment.Engine.config ->
  domains:int ->
  queue_cap:int ->
  max_batch:int ->
  cache_budget:int ->
  open_handle:(unit -> Invfile.Inverted_file.t) ->
  stats:Server_stats.t ->
  unit ->
  t
(** Spawns [domains] worker domains immediately. With [~paused:true] the
    workers idle until {!resume} — submissions still queue (up to
    [queue_cap]), which gives tests and staged startups a deterministic
    way to fill the queue. [open_handle] is called once per worker, in
    that worker's domain; [cache_budget > 0] attaches a static cache of
    that many lists per domain.
    @raise Invalid_argument if [domains < 1], [queue_cap < 1] or
    [max_batch < 1]. *)

val submit :
  t -> ?deadline:float -> request:Batcher.request -> reply:(reply -> unit) ->
  unit -> [ `Accepted | `Overloaded | `Shutting_down ]
(** Enqueues one request. [deadline] is absolute ([Unix.gettimeofday]
    scale). On [`Accepted], [reply] is called exactly once, later, from a
    worker domain — the callback must be thread-safe. On [`Overloaded] /
    [`Shutting_down] the callback is never called and nothing was queued. *)

val resume : t -> unit
(** Wakes the workers of a [~paused:true] dispatcher (idempotent). *)

val queue_depth : t -> int
val domains : t -> int

val drain : t -> unit
(** Graceful shutdown: stop admitting, let the workers finish everything
    already queued, join them, close their handles. Idempotent; blocks
    until the queue is empty and every domain has exited. *)
