let src = Logs.Src.create "nscq.server" ~doc:"containment-query server"

module Log = (val Logs.src_log src : Logs.LOG)

type config = {
  host : string;
  port : int;
  domains : int;
  queue_cap : int;
  max_batch : int;
  cache_budget : int;
  stats_interval_s : float;
  slow_query_ms : float;
  flight_path : string option;
  engine : Containment.Engine.config;
  writable : bool;
}

let default_config =
  {
    host = "127.0.0.1";
    port = 0;
    domains = Containment.Parallel.default_domains ();
    queue_cap = 64;
    max_batch = 8;
    cache_budget = 250;
    stats_interval_s = 10.;
    slow_query_ms = 0.;
    flight_path = None;
    engine = Containment.Engine.default;
    writable = false;
  }

type conn = {
  fd : Unix.file_descr;
  wmutex : Lockdep.t;
  mutable alive : bool;
  mutable thread : Thread.t option;
}

type t = {
  cfg : config;
  lfd : Unix.file_descr;
  actual_port : int;
  dispatch : Dispatch.t;
  server_stats : Server_stats.t;
  stopping : bool Atomic.t;
  conns_mutex : Lockdep.t;
  conns_race : Racesan.cell;
  mutable conns : conn list;
  mutable accept_thread : Thread.t option;
  mutable ticker : Thread.t option;
  stop_mutex : Lockdep.t;
  mutable stopped : bool;
}

(* --- per-connection plumbing --- *)

(* All writes to one socket go through its mutex: worker domains streaming
   replies and the connection thread answering handshakes/errors would
   otherwise interleave frame bytes. [alive] is flipped under the same
   mutex before the descriptor is closed, so no reply can hit a recycled
   fd. *)
let send conn frame =
  Lockdep.protect conn.wmutex (fun () ->
      if conn.alive then
        try Wire.write_frame conn.fd frame
        with Unix.Unix_error _ | Sys_error _ -> conn.alive <- false)

let close_conn conn =
  Lockdep.protect conn.wmutex (fun () ->
      if conn.alive then begin
        conn.alive <- false;
        (* shutdown first: it wakes a thread blocked in read on this
           socket, which plain close does not guarantee *)
        (try Unix.shutdown conn.fd Unix.SHUTDOWN_ALL
         with Unix.Unix_error _ -> ());
        try Unix.close conn.fd with Unix.Unix_error _ -> ()
      end)

let unregister t conn =
  Lockdep.protect t.conns_mutex (fun () ->
      Racesan.check t.conns_race;
      t.conns <- List.filter (fun c -> c != conn) t.conns)

let hello_exchange conn =
  match Wire.read_frame conn.fd with
  | Wire.Hello { version } when version = Wire.version ->
    send conn (Wire.Hello_ack { version = Wire.version; server = "nscq" });
    true
  | Wire.Hello { version } ->
    send conn
      (Wire.Error
         {
           id = 0;
           code = Wire.Bad_request;
           message = Printf.sprintf "unsupported protocol version %d" version;
         });
    false
  | _ -> false

let submit_request t conn ~id ~deadline_ms request =
  let deadline =
    if deadline_ms <= 0 then None
    else Some (Unix.gettimeofday () +. (float_of_int deadline_ms /. 1000.))
  in
  let reply = function
    | Dispatch.Data payload ->
      List.iter (send conn) (Wire.chunk_result ~id payload)
    | Dispatch.Refused (code, message) ->
      send conn (Wire.Error { id; code; message })
  in
  match Dispatch.submit t.dispatch ?deadline ~request ~reply () with
  | `Accepted -> ()
  | `Overloaded ->
    send conn
      (Wire.Error
         { id; code = Wire.Overloaded; message = "admission queue full" })
  | `Shutting_down ->
    send conn
      (Wire.Error
         { id; code = Wire.Shutting_down; message = "server is draining" })

let handle_request t conn ~id ~deadline_ms ~trace_id verb =
  match verb with
  | Wire.Stats ->
    (* the classic digest first, then the full registry exposition — one
       coherent view for both humans and scrapers *)
    let payload =
      Server_stats.render t.server_stats ~domains:t.cfg.domains
        ~queue_depth:(Dispatch.queue_depth t.dispatch)
        ~queue_cap:t.cfg.queue_cap
      ^ "\n"
      ^ Obs.Metrics.render_text (Server_stats.registry t.server_stats)
    in
    List.iter (send conn) (Wire.chunk_result ~id payload)
  | Wire.Query text -> (
    match Batcher.parse ~writable:t.cfg.writable text with
    | Error message ->
      send conn (Wire.Error { id; code = Wire.Bad_request; message })
    | Ok request -> submit_request t conn ~id ~deadline_ms request)
  | Wire.Insert text -> (
    match Batcher.parse_insert text with
    | Error message ->
      send conn (Wire.Error { id; code = Wire.Bad_request; message })
    | Ok request -> submit_request t conn ~id ~deadline_ms request)
  | Wire.Delete text -> (
    match Batcher.parse_delete text with
    | Error message ->
      send conn (Wire.Error { id; code = Wire.Bad_request; message })
    | Ok request -> submit_request t conn ~id ~deadline_ms request)
  | Wire.Join text -> (
    match Batcher.parse_join text with
    | Error message ->
      send conn (Wire.Error { id; code = Wire.Bad_request; message })
    | Ok request -> submit_request t conn ~id ~deadline_ms request)
  | Wire.Explain text -> (
    match Batcher.parse_explain text with
    | Error message ->
      send conn (Wire.Error { id; code = Wire.Bad_request; message })
    | Ok request -> submit_request t conn ~id ~deadline_ms request)
  | Wire.Trace text -> (
    match Batcher.parse text with
    | Ok (Batcher.Literal value) ->
      submit_request t conn ~id ~deadline_ms
        (Batcher.Traced { value; trace_id })
    | Ok (Batcher.Statement _) ->
      send conn
        (Wire.Error
           {
             id;
             code = Wire.Bad_request;
             message = "trace expects a nested-set literal, not NSCQL";
           })
    | Ok (Batcher.Insert _ | Batcher.Delete _) ->
      send conn
        (Wire.Error
           {
             id;
             code = Wire.Bad_request;
             message = "trace expects a nested-set literal, not a write";
           })
    | Ok (Batcher.Traced _ | Batcher.Join _ | Batcher.Explain _) ->
      (* parse never builds these; answer with an error frame rather
         than killing the connection thread *)
      send conn
        (Wire.Error
           {
             id;
             code = Wire.Server_error;
             message = "internal: parser produced a traced request";
           })
    | Error message ->
      send conn (Wire.Error { id; code = Wire.Bad_request; message }))

let conn_loop t conn =
  Fun.protect
    ~finally:(fun () ->
      close_conn conn;
      unregister t conn)
    (fun () ->
      if hello_exchange conn then
        let rec loop () =
          match Wire.read_frame conn.fd with
          | Wire.Request { id; deadline_ms; verb; trace } ->
            handle_request t conn ~id ~deadline_ms ~trace_id:trace verb;
            loop ()
          | Wire.Goodbye -> ()
          | Wire.Hello _ | Wire.Hello_ack _ | Wire.Result _ | Wire.Error _ ->
            () (* protocol violation: drop the connection *)
        in
        try loop () with
        | Wire.Closed -> ()
        | Wire.Protocol_error m ->
          Log.debug (fun f -> f "dropping connection: %s" m)
        | Unix.Unix_error _ | Sys_error _ -> ())

(* --- accept loop --- *)

let accept_loop t () =
  let rec loop () =
    if not (Atomic.get t.stopping) then begin
      (match Unix.select [ t.lfd ] [] [] 0.25 with
      | [], _, _ -> ()
      | _ :: _, _, _ -> (
        match Unix.accept t.lfd with
        | fd, _ ->
          (try Unix.setsockopt fd Unix.TCP_NODELAY true
           with Unix.Unix_error _ -> ());
          let conn =
            { fd; wmutex = Lockdep.create "server.conn.write"; alive = true;
              thread = None }
          in
          Lockdep.protect t.conns_mutex (fun () ->
              Racesan.check t.conns_race;
              t.conns <- conn :: t.conns);
          conn.thread <- Some (Thread.create (fun () -> conn_loop t conn) ())
        | exception Unix.Unix_error _ -> ())
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
      loop ()
    end
  in
  loop ()

let ticker_loop t () =
  let interval = t.cfg.stats_interval_s in
  let rec loop elapsed =
    if not (Atomic.get t.stopping) then begin
      Thread.delay 0.25;
      let elapsed = elapsed +. 0.25 in
      if elapsed >= interval then begin
        Log.info (fun m ->
            m "%s"
              (Server_stats.log_line t.server_stats
                 ~queue_depth:(Dispatch.queue_depth t.dispatch)));
        loop 0.
      end
      else loop elapsed
    end
  in
  loop 0.

(* --- lifecycle --- *)

let start_with ?(paused = false) cfg ~open_backend =
  (match Sys.os_type with
  | "Unix" -> (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with _ -> ())
  | _ -> ());
  let addr =
    try Unix.inet_addr_of_string cfg.host
    with Failure _ -> Unix.inet_addr_loopback
  in
  let lfd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try
     Unix.setsockopt lfd Unix.SO_REUSEADDR true;
     Unix.bind lfd (Unix.ADDR_INET (addr, cfg.port));
     Unix.listen lfd 64
   with exn ->
     (try Unix.close lfd with Unix.Unix_error _ -> ());
     raise exn);
  let actual_port =
    match Unix.getsockname lfd with
    | Unix.ADDR_INET (_, p) -> p
    | Unix.ADDR_UNIX _ -> cfg.port
  in
  let server_stats = Server_stats.create () in
  let dispatch =
    Dispatch.create ~paused ~slow_ms:cfg.slow_query_ms
      ?flight_path:cfg.flight_path ~domains:cfg.domains
      ~queue_cap:cfg.queue_cap ~max_batch:cfg.max_batch ~open_backend
      ~stats:server_stats ()
  in
  let conns_mutex = Lockdep.create "server.conns" in
  let t =
    {
      cfg;
      lfd;
      actual_port;
      dispatch;
      server_stats;
      stopping = Atomic.make false;
      conns_mutex;
      conns_race = Racesan.register ~name:"server.conns" ~lock:conns_mutex;
      conns = [];
      accept_thread = None;
      ticker = None;
      stop_mutex = Lockdep.create "server.stop";
      stopped = false;
    }
  in
  t.accept_thread <- Some (Thread.create (accept_loop t) ());
  if cfg.stats_interval_s > 0. then
    t.ticker <- Some (Thread.create (ticker_loop t) ());
  Log.info (fun m ->
      m "listening on %s:%d (%d domain(s), queue cap %d, batch ≤ %d)" cfg.host
        actual_port cfg.domains cfg.queue_cap cfg.max_batch);
  t

let start ?paused cfg ~open_handle =
  start_with ?paused cfg
    ~open_backend:
      (Dispatch.store_backend ~config:cfg.engine
         ~cache_budget:cfg.cache_budget ~open_handle)

let port t = t.actual_port
let stats t = t.server_stats
let queue_depth t = Dispatch.queue_depth t.dispatch
let resume t = Dispatch.resume t.dispatch

let stop t =
  Lockdep.protect t.stop_mutex (fun () ->
      if not t.stopped then begin
        t.stopped <- true;
        (* 1. no new connections or admissions *)
        Atomic.set t.stopping true;
        Option.iter Thread.join t.accept_thread;
        (try Unix.close t.lfd with Unix.Unix_error _ -> ());
        (* 2. finish everything already admitted; replies stream out while
           connections are still open *)
        Dispatch.drain t.dispatch;
        (* 3. now disconnect lingering clients and collect their threads *)
        let conns =
          Lockdep.protect t.conns_mutex (fun () ->
              Racesan.check t.conns_race;
              t.conns)
        in
        List.iter close_conn conns;
        List.iter (fun c -> Option.iter Thread.join c.thread) conns;
        Option.iter Thread.join t.ticker;
        Log.info (fun m ->
            m "stopped: %s"
              (Server_stats.log_line t.server_stats ~queue_depth:0))
      end)
