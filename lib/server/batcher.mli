(** Request classification and batch formation.

    The scheduler amortizes index probes by running compatible queued
    queries as one block against a domain's store handle
    ({!Containment.Engine.query_batch} — every distinct atom of the block
    is probed once). Compatible means: plain nested-set literal queries
    evaluated under the server's default config. NSCQL statements run
    singly (they carry their own semantics clauses), and mutating
    statements are refused outright — the serving store is read-only, so
    the per-domain handles can never go stale against each other. *)

type request =
  | Literal of Nested.Value.t
      (** a bare nested-set literal — containment query, batchable *)
  | Statement of Containment.Nscql.statement
      (** a read-only NSCQL statement — executed singly *)
  | Traced of { value : Nested.Value.t; trace_id : int option }
      (** a literal evaluated under the wire [Trace] verb: runs singly
          (its phase spans must not interleave with a block's) and its
          response carries the span tree alongside the result ids *)
  | Join of Nested.Value.t list
      (** a whole outer collection evaluated as one set-containment join
          ([Join] wire verb) — runs singly, but {e identical} queued
          joins coalesce into one evaluation (see {!shares}): the join
          engine amortizes across its own outer queries already *)
  | Insert of Nested.Value.t
      (** add one record to a live collection ([Insert] wire verb, or
          NSCQL [INSERT] when the server is writable) *)
  | Delete of int
      (** delete one record by global id ([Delete] wire verb, or NSCQL
          [DELETE] when the server is writable) *)
  | Explain of Nested.Value.t
      (** plan and profile one literal instead of answering it ([Explain]
          wire verb) — runs singly; the reply is an
          {!Obs.Explain.to_wire} plan tree *)

val parse : ?writable:bool -> string -> (request, string) result
(** Classifies a wire [Query] verb's text: leading ['{'] means a literal,
    anything else is parsed as NSCQL. [Error] carries a client-facing
    message (syntax error, or — with [writable = false], the default — a
    refused [INSERT]/[DELETE]). With [~writable:true] (the server is
    backed by a live store) NSCQL [INSERT]/[DELETE] become {!Insert} /
    {!Delete} requests. *)

val parse_insert : string -> (request, string) result
(** Parses a wire [Insert] verb's text — one nested-set literal — into an
    {!Insert} request. *)

val parse_delete : string -> (request, string) result
(** Parses a wire [Delete] verb's text — one decimal global record id —
    into a {!Delete} request. *)

val parse_explain : string -> (request, string) result
(** Parses a wire [Explain] verb's text — one nested-set literal — into
    an {!Explain} request. *)

val parse_join : string -> (request, string) result
(** Parses a wire [Join] verb's text — one nested-set literal per line,
    blank lines skipped; no lines is the legal empty outer collection —
    into a [Join] request. [Error] names the offending line. *)

val batchable : request -> bool

val shares : request -> request -> bool
(** [shares a b] when one evaluation answers both: identical [Join]
    requests (equal outer collections, in order). Coalescing them means
    concurrent identical joins share a single prefix-tree build. *)

val coalesce :
  ?shares:('job -> 'job -> bool) ->
  'job Queue.t ->
  batchable:('job -> bool) -> max:int -> 'job list
(** Dequeues the next batch: the head job plus — when the head is
    batchable — up to [max - 1] contiguous batchable successors, or —
    when it is not — every contiguous successor that [shares] the head's
    evaluation (default: none). Stops at the first incompatible job so
    admission order is preserved. The caller must hold the queue lock and
    guarantee the queue is nonempty.
    @raise Queue.Empty on an empty queue. *)
