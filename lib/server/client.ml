type t = {
  fd : Unix.file_descr;
  mutable next_id : int;
  mutable open_ : bool;
}

exception Handshake_failed of string

let connect ?(host = "127.0.0.1") ~port () =
  let addr =
    try Unix.inet_addr_of_string host
    with Failure _ -> (
      match Unix.gethostbyname host with
      | { Unix.h_addr_list = [||]; _ } ->
        raise (Handshake_failed ("cannot resolve " ^ host))
      | { Unix.h_addr_list; _ } -> h_addr_list.(0)
      | exception Not_found ->
        raise (Handshake_failed ("cannot resolve " ^ host)))
  in
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try
     Unix.connect fd (Unix.ADDR_INET (addr, port));
     Unix.setsockopt fd Unix.TCP_NODELAY true
   with exn ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise exn);
  let t = { fd; next_id = 1; open_ = true } in
  (try
     Wire.write_frame fd (Wire.Hello { version = Wire.version });
     match Wire.read_frame fd with
     | Wire.Hello_ack { version; _ } when version = Wire.version -> ()
     | Wire.Hello_ack { version; _ } ->
       raise
         (Handshake_failed (Printf.sprintf "server speaks version %d" version))
     | Wire.Error { message; _ } -> raise (Handshake_failed message)
     | _ -> raise (Handshake_failed "unexpected frame during handshake")
   with exn ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise exn);
  t

let roundtrip t ?trace verb ~deadline_ms =
  let id = t.next_id in
  t.next_id <- id + 1;
  Wire.write_frame t.fd (Wire.Request { id; deadline_ms; verb; trace });
  let buf = Buffer.create 256 in
  let rec collect () =
    match Wire.read_frame t.fd with
    | Wire.Result { id = rid; chunk; last; _ } when rid = id ->
      Buffer.add_string buf chunk;
      if last then Ok (Buffer.contents buf) else collect ()
    | Wire.Error { id = rid; code; message } when rid = id ->
      Error (code, message)
    | _ ->
      (* a frame for a request this lock-step client never made *)
      raise (Wire.Protocol_error "response for an unknown request id")
  in
  collect ()

let query t ?(deadline_ms = 0) text = roundtrip t (Wire.Query text) ~deadline_ms
let join t ?(deadline_ms = 0) text = roundtrip t (Wire.Join text) ~deadline_ms
let stats t = roundtrip t Wire.Stats ~deadline_ms:0

let explain t ?(deadline_ms = 0) text =
  roundtrip t (Wire.Explain text) ~deadline_ms

let trace t ?(deadline_ms = 0) ?trace_id text =
  roundtrip t ?trace:trace_id (Wire.Trace text) ~deadline_ms

let insert t ?(deadline_ms = 0) text =
  match roundtrip t (Wire.Insert text) ~deadline_ms with
  | Error _ as e -> e
  | Ok payload -> (
    match int_of_string_opt (String.trim payload) with
    | Some id -> Ok id
    | None ->
      Error
        (Wire.Server_error, Printf.sprintf "malformed insert reply %S" payload))

let delete t ?(deadline_ms = 0) id =
  match roundtrip t (Wire.Delete (string_of_int id)) ~deadline_ms with
  | Error _ as e -> e
  | Ok "deleted" -> Ok true
  | Ok "not-found" -> Ok false
  | Ok payload ->
    Error
      (Wire.Server_error, Printf.sprintf "malformed delete reply %S" payload)

let close t =
  if t.open_ then begin
    t.open_ <- false;
    (try Wire.write_frame t.fd Wire.Goodbye
     with Unix.Unix_error _ | Sys_error _ -> ());
    try Unix.close t.fd with Unix.Unix_error _ -> ()
  end
