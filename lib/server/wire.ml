type error_code =
  | Overloaded
  | Deadline_exceeded
  | Bad_request
  | Server_error
  | Shutting_down

type verb =
  | Query of string
  | Stats
  | Trace of string
  | Join of string
  | Insert of string
  | Delete of string
  | Explain of string

type frame =
  | Hello of { version : int }
  | Hello_ack of { version : int; server : string }
  | Request of { id : int; deadline_ms : int; verb : verb; trace : int option }
  | Result of { id : int; seq : int; last : bool; chunk : string }
  | Error of { id : int; code : error_code; message : string }
  | Goodbye

let version = 1
let max_frame = 16 * 1024 * 1024
let magic = "NSCQ"
let header_len = 9 (* u32 length, u8 tag, u32 crc *)

let pp_error_code ppf c =
  Format.pp_print_string ppf
    (match c with
    | Overloaded -> "overloaded"
    | Deadline_exceeded -> "deadline-exceeded"
    | Bad_request -> "bad-request"
    | Server_error -> "server-error"
    | Shutting_down -> "shutting-down")

let pp_frame ppf = function
  | Hello { version } -> Format.fprintf ppf "Hello v%d" version
  | Hello_ack { version; server } ->
    Format.fprintf ppf "Hello_ack v%d %S" version server
  | Request { id; deadline_ms; verb; trace } ->
    Format.fprintf ppf "Request #%d deadline=%dms %s%s" id deadline_ms
      (match verb with
      | Query q -> Printf.sprintf "query %S" q
      | Stats -> "stats"
      | Trace q -> Printf.sprintf "trace %S" q
      | Join q -> Printf.sprintf "join %S" q
      | Insert q -> Printf.sprintf "insert %S" q
      | Delete q -> Printf.sprintf "delete %S" q
      | Explain q -> Printf.sprintf "explain %S" q)
      (match trace with
      | None -> ""
      | Some t -> Printf.sprintf " trace_id=%d" t)
  | Result { id; seq; last; chunk } ->
    Format.fprintf ppf "Result #%d seq=%d%s (%d B)" id seq
      (if last then " last" else "")
      (String.length chunk)
  | Error { id; code; message } ->
    Format.fprintf ppf "Error #%d %a %S" id pp_error_code code message
  | Goodbye -> Format.pp_print_string ppf "Goodbye"

(* --- payload encodings --- *)

let tag_of = function
  | Hello _ -> 0
  | Hello_ack _ -> 1
  | Request _ -> 2
  | Result _ -> 3
  | Error _ -> 4
  | Goodbye -> 5

let code_to_int = function
  | Overloaded -> 0
  | Deadline_exceeded -> 1
  | Bad_request -> 2
  | Server_error -> 3
  | Shutting_down -> 4

let code_of_int = function
  | 0 -> Some Overloaded
  | 1 -> Some Deadline_exceeded
  | 2 -> Some Bad_request
  | 3 -> Some Server_error
  | 4 -> Some Shutting_down
  | _ -> None

let put_u32 b pos v = Bytes.set_int32_be b pos (Int32.of_int v)
let get_u32 s pos = Int32.to_int (String.get_int32_be s pos) land 0xFFFFFFFF

let payload_of = function
  | Hello { version } ->
    let b = Bytes.create 6 in
    Bytes.blit_string magic 0 b 0 4;
    Bytes.set_uint16_be b 4 version;
    Bytes.unsafe_to_string b
  | Hello_ack { version; server } ->
    let b = Bytes.create (2 + String.length server) in
    Bytes.set_uint16_be b 0 version;
    Bytes.blit_string server 0 b 2 (String.length server);
    Bytes.unsafe_to_string b
  | Request { id; deadline_ms; verb; trace } ->
    (* the verb byte carries the verb in its low nibble and a trace-id
       presence flag in bit 4, so trace-less requests encode byte-for-byte
       as protocol v1 did — old peers keep interoperating *)
    let text =
      match verb with
      | Query q | Trace q | Join q | Insert q | Delete q | Explain q -> q
      | Stats -> ""
    in
    let base =
      match verb with
      | Query _ -> 0
      | Stats -> 1
      | Trace _ -> 2
      | Join _ -> 3
      | Insert _ -> 4
      | Delete _ -> 5
      | Explain _ -> 6
    in
    let tlen = match trace with None -> 0 | Some _ -> 4 in
    let b = Bytes.create (9 + tlen + String.length text) in
    put_u32 b 0 id;
    put_u32 b 4 deadline_ms;
    Bytes.set_uint8 b 8 (base lor (match trace with None -> 0 | Some _ -> 0x10));
    (match trace with None -> () | Some t -> put_u32 b 9 t);
    Bytes.blit_string text 0 b (9 + tlen) (String.length text);
    Bytes.unsafe_to_string b
  | Result { id; seq; last; chunk } ->
    let b = Bytes.create (9 + String.length chunk) in
    put_u32 b 0 id;
    put_u32 b 4 seq;
    Bytes.set_uint8 b 8 (if last then 1 else 0);
    Bytes.blit_string chunk 0 b 9 (String.length chunk);
    Bytes.unsafe_to_string b
  | Error { id; code; message } ->
    let b = Bytes.create (5 + String.length message) in
    put_u32 b 0 id;
    Bytes.set_uint8 b 4 (code_to_int code);
    Bytes.blit_string message 0 b 5 (String.length message);
    Bytes.unsafe_to_string b
  | Goodbye -> ""

let parse_payload tag p =
  let len = String.length p in
  let rest pos = String.sub p pos (len - pos) in
  match tag with
  | 0 ->
    if len <> 6 then Result.Error "hello: bad length"
    else if String.sub p 0 4 <> magic then Result.Error "hello: bad magic"
    else Result.Ok (Hello { version = String.get_uint16_be p 4 })
  | 1 ->
    if len < 2 then Result.Error "hello_ack: short payload"
    else
      Result.Ok (Hello_ack { version = String.get_uint16_be p 0; server = rest 2 })
  | 2 ->
    if len < 9 then Result.Error "request: short payload"
    else
      let id = get_u32 p 0 and deadline_ms = get_u32 p 4 in
      let vb = String.get_uint8 p 8 in
      let has_trace = vb land 0x10 <> 0 in
      if has_trace && len < 13 then Result.Error "request: short trace field"
      else
        let trace = if has_trace then Some (get_u32 p 9) else None in
        let text_pos = if has_trace then 13 else 9 in
        (match vb land lnot 0x10 with
        | 0 ->
          Result.Ok (Request { id; deadline_ms; verb = Query (rest text_pos); trace })
        | 1 when len = text_pos ->
          Result.Ok (Request { id; deadline_ms; verb = Stats; trace })
        | 2 ->
          Result.Ok (Request { id; deadline_ms; verb = Trace (rest text_pos); trace })
        | 3 ->
          Result.Ok (Request { id; deadline_ms; verb = Join (rest text_pos); trace })
        | 4 ->
          Result.Ok
            (Request { id; deadline_ms; verb = Insert (rest text_pos); trace })
        | 5 ->
          Result.Ok
            (Request { id; deadline_ms; verb = Delete (rest text_pos); trace })
        | 6 ->
          Result.Ok
            (Request { id; deadline_ms; verb = Explain (rest text_pos); trace })
        | _ -> Result.Error "request: bad verb")
  | 3 ->
    if len < 9 then Result.Error "result: short payload"
    else (
      match String.get_uint8 p 8 with
      | (0 | 1) as last ->
        Result.Ok
          (Result { id = get_u32 p 0; seq = get_u32 p 4; last = last = 1;
                    chunk = rest 9 })
      | _ -> Result.Error "result: bad last flag")
  | 4 ->
    if len < 5 then Result.Error "error: short payload"
    else (
      match code_of_int (String.get_uint8 p 4) with
      | Some code -> Result.Ok (Error { id = get_u32 p 0; code; message = rest 5 })
      | None -> Result.Error "error: unknown code")
  | 5 -> if len = 0 then Result.Ok Goodbye else Result.Error "goodbye: unexpected payload"
  | n -> Result.Error (Printf.sprintf "unknown frame tag %d" n)

(* --- framing --- *)

let encode frame =
  let payload = payload_of frame in
  let len = String.length payload in
  let b = Bytes.create (header_len + len) in
  put_u32 b 0 len;
  Bytes.set_uint8 b 4 (tag_of frame);
  Bytes.blit_string payload 0 b header_len len;
  (* CRC covers length, tag and payload; the CRC field itself is written
     after computing it over the rest of the frame. *)
  let crc =
    Storage.Checksum.crc32_bytes
      ~init:(Storage.Checksum.crc32_bytes b ~pos:0 ~len:5)
      b ~pos:header_len ~len
  in
  Bytes.set_int32_be b 5 crc;
  Bytes.unsafe_to_string b

type decode_result = Decoded of frame * int | Need_more | Invalid of string

let decode ?(pos = 0) buf =
  let avail = String.length buf - pos in
  if avail < header_len then Need_more
  else
    let len = get_u32 buf pos in
    if len > max_frame then Invalid (Printf.sprintf "frame too large (%d B)" len)
    else if avail < header_len + len then Need_more
    else
      let tag = String.get_uint8 buf (pos + 4) in
      let crc = String.get_int32_be buf (pos + 5) in
      let expected =
        Storage.Checksum.crc32_sub
          ~init:(Storage.Checksum.crc32_sub buf ~pos ~len:5)
          buf ~pos:(pos + header_len) ~len
      in
      if crc <> expected then Invalid "crc mismatch"
      else
        match parse_payload tag (String.sub buf (pos + header_len) len) with
        | Result.Ok frame -> Decoded (frame, header_len + len)
        | Result.Error m -> Invalid m

(* --- blocking I/O --- *)

exception Closed
exception Protocol_error of string

let really_write fd s =
  let len = String.length s in
  let b = Bytes.unsafe_of_string s in
  let written = ref 0 in
  while !written < len do
    written := !written + Unix.write fd b !written (len - !written)
  done

let write_frame fd frame = really_write fd (encode frame)

let really_read fd n =
  let b = Bytes.create n in
  let got = ref 0 in
  while !got < n do
    match Unix.read fd b !got (n - !got) with
    | 0 -> raise Closed
    | k -> got := !got + k
  done;
  Bytes.unsafe_to_string b

let read_frame fd =
  let header = really_read fd header_len in
  let len = get_u32 header 0 in
  if len > max_frame then
    raise (Protocol_error (Printf.sprintf "frame too large (%d B)" len));
  let payload = if len = 0 then "" else really_read fd len in
  match decode (header ^ payload) with
  | Decoded (frame, _) -> frame
  | Need_more -> raise (Protocol_error "short frame")
  | Invalid m -> raise (Protocol_error m)

(* --- trace-verb payload composition --- *)

(* A Trace response carries the normal result line first, then the span
   tree ([Obs.Trace.to_wire] lines). One newline separates them; the span
   part is itself line-oriented but its first line is the "trace <id>"
   header, so the split is unambiguous. *)

let traced_payload ~result ~spans = result ^ "\n" ^ spans

let split_traced payload =
  match String.index_opt payload '\n' with
  | None -> (payload, "")
  | Some i ->
    ( String.sub payload 0 i,
      String.sub payload (i + 1) (String.length payload - i - 1) )

(* --- join-verb payload composition --- *)

(* A Join response is line-oriented: a count line ("n"), then n lines —
   one per outer query, in request order — each the space-separated
   ascending record ids matching that query (possibly empty). The explicit
   count makes the zero-result encodings unambiguous: an empty outer
   collection ("0") and one matchless outer query ("1\n") would otherwise
   both render as "". *)

let join_payload groups =
  let b = Buffer.create 256 in
  Buffer.add_string b (string_of_int (List.length groups));
  List.iter
    (fun ids ->
      Buffer.add_char b '\n';
      List.iteri
        (fun i id ->
          if i > 0 then Buffer.add_char b ' ';
          Buffer.add_string b (string_of_int id))
        ids)
    groups;
  Buffer.contents b

let split_join payload =
  let lines = String.split_on_char '\n' payload in
  let parse_ids line =
    String.split_on_char ' ' line
    |> List.filter (fun s -> s <> "")
    |> List.fold_left
         (fun acc s ->
           match (acc, int_of_string_opt s) with
           | Result.Error _, _ -> acc
           | _, None -> Result.Error (Printf.sprintf "malformed record id %S" s)
           | Result.Ok ids, Some id -> Result.Ok (id :: ids))
         (Result.Ok [])
    |> Result.map List.rev
  in
  match lines with
  | [] -> Result.Error "join payload: empty"
  | count :: rest -> (
    match int_of_string_opt (String.trim count) with
    | None -> Result.Error "join payload: malformed count line"
    | Some n ->
      if List.length rest <> n then
        Result.Error
          (Printf.sprintf "join payload: %d line(s) for a count of %d"
             (List.length rest) n)
      else
        List.fold_left
          (fun acc line ->
            match acc with
            | Result.Error _ -> acc
            | Result.Ok groups ->
              Result.map (fun ids -> ids :: groups) (parse_ids line))
          (Result.Ok []) rest
        |> Result.map List.rev)

let chunk_result ~id payload =
  let n = String.length payload in
  if n = 0 then [ Result { id; seq = 0; last = true; chunk = "" } ]
  else begin
    let frames = ref [] and seq = ref 0 and pos = ref 0 in
    while !pos < n do
      let len = min max_frame (n - !pos) in
      let last = !pos + len >= n in
      frames :=
        Result { id; seq = !seq; last; chunk = String.sub payload !pos len }
        :: !frames;
      incr seq;
      pos := !pos + len
    done;
    List.rev !frames
  end
