(** Streamed, blocked processing of encoded inverted lists.

    The paper assumes retrieved inverted lists fit in main memory and notes
    that "the I/O-efficient blocked approach of Mamoulis for flat sets could
    easily be used to lift this assumption" (Sec. 5.1, "Other assumptions",
    (1)). This module is that lifting: cursors decode postings on demand
    straight from the encoded payload, and the n-way operations work in
    O(1) memory per input list plus the output.

    Results agree exactly with the materializing {!Plist} operations (a
    property checked in the test suite). *)

type cursor

val cursor_of_bytes : string -> cursor
(** A cursor over an encoded postings list (the payload stored under an
    atom key — see {!Plist.to_bytes}). [Varint] payloads decode
    sequentially; [Blocked] payloads decode one block at a time and
    support block skipping (see {!skip_to}).
    @raise Invalid_argument on a [Bitpacked] payload (not streamable). *)

val cursor_of_plist : Plist.t -> cursor

val remaining : cursor -> int
(** Postings not yet consumed. *)

val peek : cursor -> Posting.t option
val next : cursor -> Posting.t option

val skip_to : cursor -> int -> Posting.t option
(** [skip_to c id] advances past postings with node id < [id] and peeks the
    first with node ≥ [id]. On [Varint] payloads the skipped prefix is
    decoded (not buffered); on [Blocked] payloads whole blocks whose max
    node id is below [id] are skipped via the directory without touching
    their bytes; in-memory cursors gallop. *)

(** {1 Blocked n-way operations} *)

val inter_many : string list -> Plist.t
(** Streamed intersection of encoded lists, driven from the smallest
    list with block-skipping advances on the others — same result as
    [Plist.inter_many (List.map Plist.of_bytes ls)].
    @raise Invalid_argument on the empty family, with the same message as
    {!Plist.inter_many} (shared contract). *)

val union_with_counts : string list -> (Posting.t * int) array
(** Streamed multiset union with multiplicities (cf.
    {!Plist.union_with_counts}). *)
