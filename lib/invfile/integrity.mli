(** Collection integrity checking.

    Structural invariants of an inverted file, verified against the stored
    record values (the ground truth the index is derived from):

    - no pending {!Journal} undo record (crash recovery has run);
    - metadata decodes; roots ascending; counts consistent; no record
      slots beyond the root count;
    - every postings list is strictly sorted with valid intervals;
    - the inverted lists are {e exactly} the ones a rebuild of each live
      record would produce (no missing, stale, or phantom postings);
    - the node table (when present) matches the rebuilt trees;
    - tombstoned records have no postings.

    Cost is a full scan plus a per-record re-encode — an offline fsck, not
    a query-path check. *)

type problem = { what : string; detail : string }

val check : Inverted_file.t -> problem list
(** Empty when the collection is consistent. *)

val pp_problem : Format.formatter -> problem -> unit
