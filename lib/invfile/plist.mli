(** Sorted inverted-list algebra.

    All operations of the paper's query processing over inverted lists:
    intersection (candidate computation, Alg. 2 line 8 / Alg. 4 line 11),
    multiset union with multiplicities (superset and ε-overlap joins,
    Sec. 4.1), and the list join [▷◁_IF] (Sec. 2) in its parent–child and
    ancestor–descendant (Sec. 4.2) variants. Lists are arrays of postings
    strictly sorted by node id. *)

type t = Posting.t array

val empty : t
val is_empty : t -> bool
val length : t -> int
val of_list : Posting.t list -> t
(** Sorts and checks for duplicate node ids.
    @raise Invalid_argument on duplicates. *)

val nodes : t -> int array
(** The node ids, in ascending order. *)

val mem : t -> int -> bool
(** Binary search by node id. *)

val gallop_lower_bound : t -> lo:int -> int -> int
(** [gallop_lower_bound l ~lo id] is the index of the first posting at or
    after [lo] with node id ≥ [id] (or [length l]), found by exponential
    probing from [lo] — O(log distance), the building block of the skewed
    intersection kernels here and in {!Plist_stream}. *)

val find : t -> int -> Posting.t option

(** {1 Set operations (by node id)} *)

val inter : t -> t -> t
(** Intersection: sorted merge for comparable sizes, galloping
    (exponential probe + binary search, with the probe base advancing
    monotonically through the big list) when sizes are skewed. Payloads
    are identical for equal node ids. Agrees with {!Plist_ref.inter} on
    every input (enforced by the differential suite). *)

val union : t -> t -> t
(** Sorted-merge set union (payloads are identical for equal node ids). *)

val inter_many : t list -> t
(** n-way intersection, smallest lists first; [inter_many []] is
    [Invalid_argument] (the empty intersection is the full node universe —
    callers must supply it explicitly, see {!Inverted_file.all_nodes}). *)

val union_with_counts : t list -> (Posting.t * int) array
(** Multiset union: each node paired with the number of input lists that
    contain it, ascending by node id. This is the [⊎] of Sec. 4.1 (an atom
    contributes a node at most once, so multiplicity = number of distinct
    query leaf values present in the node). *)

(** {1 Filters} *)

val filter : (Posting.t -> bool) -> t -> t

val filter_leaf_count_eq : int -> t -> t
(** Keeps postings whose node has exactly the given leaf count
    (set-equality join). *)

val filter_leaf_count_ge : int -> t -> t
(** Keeps postings whose node has at least the given leaf count. *)

(** {1 Path lists}

    A path records a candidate [head] for the query root together with the
    posting of the node currently matched, i.e. the pair [(p, C)] of the
    paper with the head threaded through the [▷◁_IF] joins (validated
    against the worked example of Sec. 2). *)

type path = { head : int; cur : Posting.t }
type paths = path array

val paths_of_candidates : t -> paths
(** Initial path list: each candidate is its own head (Alg. 1, line 1). *)

val heads : paths -> int array
(** Distinct heads, ascending — the [π₁] of the paper's Sec. 3.1. *)

val join_child : paths -> t -> paths
(** [join_child p l] is [p ▷◁_IF l]: paths extended to postings of [l]
    whose node is an internal {e child} of the path's current node. *)

val join_descendant : paths -> t -> paths
(** Homeomorphic variant: extends to postings whose node is a strict
    {e descendant} of the path's current node (Sec. 4.2). *)

(** {1 Head sets (bottom-up algorithm)}

    The bottom-up algorithm's stack holds sets [H] of nodes that cover a
    query subtree (Alg. 4). Elements keep their post rank so the
    homeomorphic variant can test descendancy. *)

type idset
(** Sorted-by-id set of (id, post, parent) triples. *)

val idset_empty : idset
val idset_of_postings : t -> idset
val idset_nodes : idset -> int array

val idset_parents : idset -> int list
(** Distinct parent ids of the members (roots excluded), ascending — the
    candidate parents for the bottom-up small-side optimization. *)

val idset_is_empty : idset -> bool
val idset_cardinal : idset -> int

val idset_mem : idset -> int -> bool

val covers_child : Posting.t -> idset -> bool
(** [covers_child p h] holds when some internal child of [p] is in [h] —
    the condition of the [H()] operator (Alg. 4, line 12). *)

val covers_descendant : Posting.t -> idset -> bool
(** Homeomorphic variant: some strict descendant of [p] is in [h]. *)

val idset_to_bytes : idset -> string
val idset_of_bytes : string -> idset
(** Serialization for externally-spilled head sets (see
    {!Containment.Bottom_up} with an external stack). *)

val pp : Format.formatter -> t -> unit
val pp_paths : Format.formatter -> paths -> unit

(** {1 Serialization}

    Payloads are tagged with their format: [Varint] (byte-aligned
    delta/varint, streamable via {!Plist_stream}), [Bitpacked] (columnar
    frame-of-reference bit packing via {!Storage.Bitpack} — smaller on
    dense lists, decoded wholesale, not streamable), or [Blocked] (the
    default: block-partitioned with per-block varint/bitmap
    representation and a skip directory, see {!Plist_blocks} — streamable
    with block skipping). *)

type codec = Varint | Bitpacked | Blocked

val encode : Storage.Codec.writer -> t -> unit
(** Raw (untagged) varint encoding, for embedding in other structures. *)

val decode : Storage.Codec.reader -> t

val to_bytes : ?codec:codec -> t -> string
(** Defaults to [Blocked]. *)

val of_bytes : string -> t
(** Dispatches on the payload tag. @raise Storage.Codec.Corrupt on
    malformed input. *)

val codec_of_bytes : string -> codec

val restrict : t -> int array -> t
(** [restrict l ids] keeps the postings whose node is in [ids] (a sorted,
    strictly increasing array). *)
