type t = Posting.t array

let empty = [||]
let is_empty l = Array.length l = 0
let length = Array.length

let of_list postings =
  let a = Array.of_list (List.sort Posting.compare postings) in
  for i = 1 to Array.length a - 1 do
    if a.(i - 1).Posting.node = a.(i).Posting.node then
      invalid_arg "Plist.of_list: duplicate node id"
  done;
  a

let nodes l = Array.map (fun p -> p.Posting.node) l

(* Index of the first posting with node id >= [id], or [length l]. *)
let lower_bound l id =
  let rec bsearch lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if l.(mid).Posting.node < id then bsearch (mid + 1) hi else bsearch lo mid
  in
  bsearch 0 (Array.length l)

let find l id =
  let i = lower_bound l id in
  if i < Array.length l && l.(i).Posting.node = id then Some l.(i) else None

let mem l id = Option.is_some (find l id)

(* Index of the first posting with node id >= [id], probing exponentially
   from [lo] before binary-searching the bracketed range — O(log gap)
   rather than O(log n), so a scan that advances monotonically through a
   long list pays for the distance it actually covers. *)
let gallop_lower_bound l ~lo id =
  let n = Array.length l in
  if lo >= n || l.(lo).Posting.node >= id then lo
  else begin
    (* invariant: l.(last).node < id *)
    let last = ref lo and step = ref 1 in
    let hi = ref (lo + 1) in
    while !hi < n && l.(!hi).Posting.node < id do
      last := !hi;
      step := !step * 2;
      hi := lo + !step
    done;
    let rec bsearch lo hi =
      if lo >= hi then lo
      else
        let mid = (lo + hi) / 2 in
        if l.(mid).Posting.node < id then bsearch (mid + 1) hi else bsearch lo mid
    in
    bsearch (!last + 1) (min !hi n)
  end

let inter a b =
  (* Sorted merge; gallop through the big side when sizes are skewed. *)
  let la = Array.length a and lb = Array.length b in
  let small, big = if la <= lb then (a, b) else (b, a) in
  let ls = Array.length small and lbg = Array.length big in
  if ls * 8 < lbg then begin
    let out = ref [] in
    let j = ref 0 in
    for i = 0 to ls - 1 do
      let id = small.(i).Posting.node in
      j := gallop_lower_bound big ~lo:!j id;
      if !j < lbg && big.(!j).Posting.node = id then begin
        out := small.(i) :: !out;
        incr j
      end
    done;
    Array.of_list (List.rev !out)
  end
  else begin
    let out = ref [] and i = ref 0 and j = ref 0 in
    while !i < la && !j < lb do
      let c = Int.compare a.(!i).Posting.node b.(!j).Posting.node in
      if c = 0 then begin
        out := a.(!i) :: !out;
        incr i;
        incr j
      end
      else if c < 0 then incr i
      else incr j
    done;
    Array.of_list (List.rev !out)
  end

let union a b =
  let out = ref [] and i = ref 0 and j = ref 0 in
  let la = Array.length a and lb = Array.length b in
  while !i < la && !j < lb do
    let c = Int.compare a.(!i).Posting.node b.(!j).Posting.node in
    if c <= 0 then begin
      out := a.(!i) :: !out;
      if c = 0 then incr j;
      incr i
    end
    else begin
      out := b.(!j) :: !out;
      incr j
    end
  done;
  while !i < la do
    out := a.(!i) :: !out;
    incr i
  done;
  while !j < lb do
    out := b.(!j) :: !out;
    incr j
  done;
  Array.of_list (List.rev !out)

let inter_many = function
  | [] -> invalid_arg "inter_many: empty intersection is the node universe"
  | first :: rest ->
    let sorted = List.sort (fun a b -> Int.compare (length a) (length b)) (first :: rest) in
    (match sorted with
    | [] -> assert false
    | hd :: tl -> List.fold_left inter hd tl)

let union_with_counts lists =
  let all = Array.concat lists in
  Array.sort Posting.compare all;
  let out = ref [] in
  let n = Array.length all in
  let i = ref 0 in
  while !i < n do
    let p = all.(!i) in
    let j = ref (!i + 1) in
    while !j < n && all.(!j).Posting.node = p.Posting.node do incr j done;
    out := (p, !j - !i) :: !out;
    i := !j
  done;
  Array.of_list (List.rev !out)

let filter f l = Array.of_list (List.filter f (Array.to_list l))

let filter_leaf_count_eq n l = filter (fun p -> p.Posting.leaf_count = n) l
let filter_leaf_count_ge n l = filter (fun p -> p.Posting.leaf_count >= n) l

(* --- path lists --- *)

type path = { head : int; cur : Posting.t }
type paths = path array

let paths_of_candidates l = Array.map (fun p -> { head = p.Posting.node; cur = p }) l

let compare_path a b =
  let c = Int.compare a.head b.head in
  if c <> 0 then c else Int.compare a.cur.Posting.node b.cur.Posting.node

let sort_dedup_paths l =
  let a = Array.of_list l in
  Array.sort compare_path a;
  let n = Array.length a in
  if n <= 1 then a
  else begin
    let out = ref [] in
    for i = n - 1 downto 0 do
      if i = 0 || compare_path a.(i - 1) a.(i) <> 0 then out := a.(i) :: !out
    done;
    Array.of_list !out
  end

let heads (p : paths) =
  Array.to_list p
  |> List.map (fun { head; _ } -> head)
  |> List.sort_uniq Int.compare
  |> Array.of_list

let join_child (ps : paths) l : paths =
  let out = ref [] in
  Array.iter
    (fun { head; cur } ->
      Array.iter
        (fun child ->
          match find l child with
          | Some p' -> out := { head; cur = p' } :: !out
          | None -> ())
        cur.Posting.children)
    ps;
  sort_dedup_paths !out

let join_descendant (ps : paths) l : paths =
  let out = ref [] in
  Array.iter
    (fun { head; cur } ->
      let i = ref (lower_bound l (cur.Posting.node + 1)) in
      let continue = ref true in
      while !continue && !i < Array.length l do
        let p' = l.(!i) in
        if p'.Posting.post < cur.Posting.post then begin
          out := { head; cur = p' } :: !out;
          incr i
        end
        else continue := false
        (* first non-descendant with a larger id: everything after is
           outside the subtree too (pre/post discipline) *)
      done)
    ps;
  sort_dedup_paths !out

(* --- head sets --- *)

type idset = (int * int * int) array (* (id, post, parent), sorted by id *)

let idset_empty : idset = [||]

let idset_of_postings l =
  Array.map (fun p -> (p.Posting.node, p.Posting.post, p.Posting.parent)) l

let idset_nodes h = Array.map (fun (id, _, _) -> id) h
let idset_parents h =
  Array.to_list h
  |> List.filter_map (fun (_, _, parent) -> if parent >= 0 then Some parent else None)
  |> List.sort_uniq Int.compare
let idset_is_empty h = Array.length h = 0
let idset_cardinal = Array.length

let idset_id (id, _, _) = id
let idset_post (_, post, _) = post

let idset_lower_bound (h : idset) id =
  let rec bsearch lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if idset_id h.(mid) < id then bsearch (mid + 1) hi else bsearch lo mid
  in
  bsearch 0 (Array.length h)

let idset_mem h id =
  let i = idset_lower_bound h id in
  i < Array.length h && idset_id h.(i) = id

let covers_child p h =
  Array.exists (fun c -> idset_mem h c) p.Posting.children

let covers_descendant p h =
  let i = idset_lower_bound h (p.Posting.node + 1) in
  i < Array.length h && idset_post h.(i) < p.Posting.post

let idset_to_bytes (h : idset) =
  let w = Storage.Codec.writer () in
  Storage.Codec.write_varint w (Array.length h);
  let prev = ref (-1) in
  Array.iter
    (fun (id, post, parent) ->
      Storage.Codec.write_varint w (id - !prev - 1);
      Storage.Codec.write_varint w post;
      Storage.Codec.write_varint w (if parent < 0 then 0 else id - parent);
      prev := id)
    h;
  Storage.Codec.contents w

let idset_of_bytes s : idset =
  let r = Storage.Codec.reader s in
  let n = Storage.Codec.read_varint r in
  let a = Array.make (max n 1) (0, 0, -1) in
  let prev = ref (-1) in
  for i = 0 to n - 1 do
    let id = !prev + 1 + Storage.Codec.read_varint r in
    let post = Storage.Codec.read_varint r in
    let gap = Storage.Codec.read_varint r in
    prev := id;
    a.(i) <- (id, post, if gap = 0 then -1 else id - gap)
  done;
  if n = 0 then [||] else a

let pp ppf l =
  Format.fprintf ppf "⟨%a⟩"
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@ ") Posting.pp)
    (Array.to_list l)

let pp_paths ppf ps =
  Format.fprintf ppf "⟨%a⟩"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@ ")
       (fun ppf { head; cur } -> Format.fprintf ppf "(%d→%a)" head Posting.pp cur))
    (Array.to_list ps)

(* --- serialization ---

   Payloads carry a one-byte format tag: 'V' = varint/delta,
   'B' = columnar frame-of-reference bitpacking (see Storage.Bitpack),
   'C' = block-partitioned compressed (see Plist_blocks; the default). *)

type codec = Varint | Bitpacked | Blocked

let encode w l =
  Storage.Codec.write_varint w (Array.length l);
  let prev = ref (-1) in
  Array.iter
    (fun p ->
      Posting.encode w p ~prev_node:!prev;
      prev := p.Posting.node)
    l

let decode r =
  let n = Storage.Codec.read_varint r in
  if n = 0 then [||]
  else begin
    (* explicit loop: the decode order must be sequential *)
    let prev = ref (-1) in
    let first = Posting.decode r ~prev_node:!prev in
    prev := first.Posting.node;
    let a = Array.make n first in
    for i = 1 to n - 1 do
      let p = Posting.decode r ~prev_node:!prev in
      prev := p.Posting.node;
      a.(i) <- p
    done;
    a
  end

(* Columnar bitpacked layout: per-posting fields split into integer
   columns, each delta/offset-transformed to small non-negative values. *)
let to_bitpacked l =
  let n = Array.length l in
  let node_gaps = Array.make n 0 in
  let leaf_counts = Array.make n 0 in
  let posts = Array.make n 0 in
  let parent_gaps = Array.make n 0 in
  let child_counts = Array.make n 0 in
  let child_gaps = ref [] in
  let prev = ref (-1) in
  Array.iteri
    (fun i p ->
      node_gaps.(i) <- p.Posting.node - !prev - 1;
      prev := p.Posting.node;
      leaf_counts.(i) <- p.Posting.leaf_count;
      posts.(i) <- p.Posting.post;
      parent_gaps.(i) <-
        (if p.Posting.parent < 0 then 0 else p.Posting.node - p.Posting.parent);
      child_counts.(i) <- Array.length p.Posting.children;
      (* children exceed their parent id: store child - node - 1, delta
         within the (ascending) child list *)
      let prev_child = ref p.Posting.node in
      Array.iter
        (fun c ->
          child_gaps := (c - !prev_child - 1) :: !child_gaps;
          prev_child := c)
        p.Posting.children)
    l;
  let w = Storage.Codec.writer () in
  Storage.Codec.write_string w (Storage.Bitpack.pack node_gaps);
  Storage.Codec.write_string w (Storage.Bitpack.pack leaf_counts);
  Storage.Codec.write_string w (Storage.Bitpack.pack posts);
  Storage.Codec.write_string w (Storage.Bitpack.pack parent_gaps);
  Storage.Codec.write_string w (Storage.Bitpack.pack child_counts);
  Storage.Codec.write_string w
    (Storage.Bitpack.pack (Array.of_list (List.rev !child_gaps)));
  Storage.Codec.contents w

let of_bitpacked s =
  let r = Storage.Codec.reader s in
  let node_gaps = Storage.Bitpack.unpack (Storage.Codec.read_string r) in
  let leaf_counts = Storage.Bitpack.unpack (Storage.Codec.read_string r) in
  let posts = Storage.Bitpack.unpack (Storage.Codec.read_string r) in
  let parent_gaps = Storage.Bitpack.unpack (Storage.Codec.read_string r) in
  let child_counts = Storage.Bitpack.unpack (Storage.Codec.read_string r) in
  let child_gaps = Storage.Bitpack.unpack (Storage.Codec.read_string r) in
  let n = Array.length node_gaps in
  if
    Array.length leaf_counts <> n || Array.length posts <> n
    || Array.length parent_gaps <> n || Array.length child_counts <> n
  then raise (Storage.Codec.Corrupt "Plist.of_bitpacked: column length mismatch");
  let prev = ref (-1) in
  let gi = ref 0 in
  let out = ref [] in
  for i = 0 to n - 1 do
    let node = !prev + 1 + node_gaps.(i) in
    prev := node;
    let parent = if parent_gaps.(i) = 0 then -1 else node - parent_gaps.(i) in
    let k = child_counts.(i) in
    let prev_child = ref node in
    let children = Array.make k 0 in
    for j = 0 to k - 1 do
      if !gi >= Array.length child_gaps then
        raise (Storage.Codec.Corrupt "Plist.of_bitpacked: truncated children");
      let c = !prev_child + 1 + child_gaps.(!gi) in
      incr gi;
      prev_child := c;
      children.(j) <- c
    done;
    out :=
      { Posting.node; children; leaf_count = leaf_counts.(i); post = posts.(i); parent }
      :: !out
  done;
  Array.of_list (List.rev !out)

let to_bytes ?(codec = Blocked) l =
  match codec with
  | Varint ->
    let w = Storage.Codec.writer () in
    Storage.Codec.write_varint w (Char.code 'V');
    encode w l;
    Storage.Codec.contents w
  | Bitpacked -> "B" ^ to_bitpacked l
  | Blocked -> "C" ^ Plist_blocks.encode l

let codec_of_bytes s =
  if String.length s = 0 then raise (Storage.Codec.Corrupt "Plist: empty payload")
  else
    match s.[0] with
    | 'V' -> Varint
    | 'B' -> Bitpacked
    | 'C' -> Blocked
    | _ -> raise (Storage.Codec.Corrupt "Plist: unknown payload format")

let of_bytes s =
  match codec_of_bytes s with
  | Varint ->
    let r = Storage.Codec.reader s in
    let tag = Storage.Codec.read_varint r in
    assert (tag = Char.code 'V');
    decode r
  | Bitpacked -> of_bitpacked (String.sub s 1 (String.length s - 1))
  | Blocked -> Plist_blocks.decode (Plist_blocks.directory s ~pos:1)

let restrict l ids =
  let nl = Array.length l and ni = Array.length ids in
  let out = ref [] and i = ref 0 and j = ref 0 in
  while !i < nl && !j < ni do
    let c = Int.compare l.(!i).Posting.node ids.(!j) in
    if c = 0 then begin
      out := l.(!i) :: !out;
      incr i;
      incr j
    end
    else if c < 0 then incr i
    else incr j
  done;
  Array.of_list (List.rev !out)
