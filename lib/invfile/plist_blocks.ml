(* Block-partitioned postings payload ('C' format, see Plist.to_bytes).

   A list is cut into fixed-size blocks of [block_size] postings. A
   directory up front records, per block, the node-id span [min, max],
   the posting count, the representation and the body length, so readers
   can skip whole blocks by id without touching their bytes — the basis
   of the skewed-intersection kernels in Plist_stream.

   Body layout (the 'C' tag byte is owned by Plist and not part of it):

     varint  total            postings in the list
     varint  nblocks
     per block (directory):
       varint  min - prev_max - 1     (prev_max starts at -1)
       varint  max - min
       varint  count
       byte    repr                   0 = delta varint, 1 = bitmap
       varint  body_len               bytes of this block's body
     bodies, concatenated in block order

   Sparse blocks store postings exactly as the 'V' format does (delta
   varint, with the delta base reset to min - 1), so a sparse block costs
   the same bytes as its slice of a 'V' payload. Dense blocks — id range
   close to the count — store a bitmap over [min, max] followed by the
   non-id posting fields (Posting.encode_aux) of each member in
   ascending order; the ids come from the bitmap, for free. *)

let block_size = 128

(* A block is dense when its id span is within 4x its population: the
   bitmap then costs at most ceil(4/8) = half a byte per posting for the
   ids, always beating per-posting gap varints (>= 1 byte each). *)
let dense ~range ~count = range <= 4 * count

type t = {
  payload : string;  (* the enclosing (tagged) payload *)
  total : int;
  mins : int array;
  maxs : int array;
  counts : int array;
  bitmap : bool array;  (* per-block: body is a bitmap block *)
  offs : int array;  (* absolute body offset within [payload] *)
  lens : int array;
  suffix : int array;  (* suffix.(i) = postings in blocks i..; length n+1 *)
}

let n_blocks d = Array.length d.mins
let total d = d.total
let block_min d i = d.mins.(i)
let block_max d i = d.maxs.(i)
let suffix_count d i = d.suffix.(i)

(* --- encoding --- *)

let encode_block (l : Posting.t array) ~lo ~hi =
  (* Postings l.(lo) .. l.(hi - 1); returns (min, max, count, bitmap, body). *)
  let count = hi - lo in
  let bmin = l.(lo).Posting.node and bmax = l.(hi - 1).Posting.node in
  let range = bmax - bmin + 1 in
  let body = Storage.Codec.writer () in
  let as_bitmap = dense ~range ~count in
  if as_bitmap then begin
    let nbytes = (range + 7) / 8 in
    let bits = Bytes.make nbytes '\000' in
    for i = lo to hi - 1 do
      let bit = l.(i).Posting.node - bmin in
      Bytes.set bits (bit / 8)
        (Char.chr (Char.code (Bytes.get bits (bit / 8)) lor (1 lsl (bit mod 8))))
    done;
    Storage.Codec.write_raw body (Bytes.to_string bits);
    for i = lo to hi - 1 do
      Posting.encode_aux body l.(i)
    done
  end
  else begin
    let prev = ref (bmin - 1) in
    for i = lo to hi - 1 do
      Posting.encode body l.(i) ~prev_node:!prev;
      prev := l.(i).Posting.node
    done
  end;
  (bmin, bmax, count, as_bitmap, Storage.Codec.contents body)

let encode (l : Posting.t array) =
  let n = Array.length l in
  let nblocks = (n + block_size - 1) / block_size in
  let blocks =
    List.init nblocks (fun b ->
        let lo = b * block_size in
        let hi = min n (lo + block_size) in
        encode_block l ~lo ~hi)
  in
  let w = Storage.Codec.writer () in
  Storage.Codec.write_varint w n;
  Storage.Codec.write_varint w nblocks;
  let prev_max = ref (-1) in
  List.iter
    (fun (bmin, bmax, count, as_bitmap, body) ->
      Storage.Codec.write_varint w (bmin - !prev_max - 1);
      Storage.Codec.write_varint w (bmax - bmin);
      Storage.Codec.write_varint w count;
      Storage.Codec.write_varint w (if as_bitmap then 1 else 0);
      Storage.Codec.write_varint w (String.length body);
      prev_max := bmax)
    blocks;
  List.iter (fun (_, _, _, _, body) -> Storage.Codec.write_raw w body) blocks;
  Storage.Codec.contents w

(* --- directory parsing --- *)

let corrupt msg = raise (Storage.Codec.Corrupt ("Plist_blocks: " ^ msg))

let directory payload ~pos =
  let r = Storage.Codec.reader_sub payload ~pos ~len:(String.length payload - pos) in
  let total = Storage.Codec.read_varint r in
  let nblocks = Storage.Codec.read_varint r in
  let mins = Array.make nblocks 0 in
  let maxs = Array.make nblocks 0 in
  let counts = Array.make nblocks 0 in
  let bitmap = Array.make nblocks false in
  let offs = Array.make nblocks 0 in
  let lens = Array.make nblocks 0 in
  let prev_max = ref (-1) in
  for i = 0 to nblocks - 1 do
    let bmin = !prev_max + 1 + Storage.Codec.read_varint r in
    let bmax = bmin + Storage.Codec.read_varint r in
    let count = Storage.Codec.read_varint r in
    let repr = Storage.Codec.read_varint r in
    let len = Storage.Codec.read_varint r in
    if count = 0 then corrupt "empty block";
    if count > bmax - bmin + 1 then corrupt "block count exceeds id span";
    (match repr with
    | 0 -> bitmap.(i) <- false
    | 1 -> bitmap.(i) <- true
    | _ -> corrupt "unknown block representation");
    mins.(i) <- bmin;
    maxs.(i) <- bmax;
    counts.(i) <- count;
    lens.(i) <- len;
    prev_max := bmax
  done;
  (* Bodies start where the directory ends. *)
  let off = ref (Storage.Codec.pos r) in
  for i = 0 to nblocks - 1 do
    offs.(i) <- !off;
    off := !off + lens.(i)
  done;
  if !off > String.length payload then corrupt "truncated bodies";
  let suffix = Array.make (nblocks + 1) 0 in
  for i = nblocks - 1 downto 0 do
    suffix.(i) <- suffix.(i + 1) + counts.(i)
  done;
  if suffix.(0) <> total then corrupt "block counts disagree with total";
  { payload; total; mins; maxs; counts; bitmap; offs; lens; suffix }

(* --- block decoding --- *)

let decode_block d i =
  let count = d.counts.(i) in
  let bmin = d.mins.(i) and bmax = d.maxs.(i) in
  if d.bitmap.(i) then begin
    let range = bmax - bmin + 1 in
    let nbytes = (range + 7) / 8 in
    if nbytes > d.lens.(i) then corrupt "bitmap larger than block body";
    let aux =
      Storage.Codec.reader_sub d.payload
        ~pos:(d.offs.(i) + nbytes)
        ~len:(d.lens.(i) - nbytes)
    in
    let out = Array.make count Posting.{ node = 0; children = [||]; leaf_count = 0; post = 0; parent = -1 } in
    let k = ref 0 in
    for b = 0 to nbytes - 1 do
      let byte = Char.code d.payload.[d.offs.(i) + b] in
      if byte <> 0 then
        for bit = 0 to 7 do
          if byte land (1 lsl bit) <> 0 then begin
            let node = bmin + (b * 8) + bit in
            if node > bmax then corrupt "bitmap bit outside block span";
            if !k >= count then corrupt "bitmap popcount exceeds block count";
            out.(!k) <- Posting.decode_aux aux ~node;
            incr k
          end
        done
    done;
    if !k <> count then corrupt "bitmap popcount disagrees with block count";
    if out.(0).Posting.node <> bmin || out.(count - 1).Posting.node <> bmax then
      corrupt "block span disagrees with contents";
    out
  end
  else begin
    let r = Storage.Codec.reader_sub d.payload ~pos:d.offs.(i) ~len:d.lens.(i) in
    let prev = ref (bmin - 1) in
    let out =
      Array.init count (fun _ ->
          let p = Posting.decode r ~prev_node:!prev in
          prev := p.Posting.node;
          p)
    in
    if out.(0).Posting.node <> bmin || out.(count - 1).Posting.node <> bmax then
      corrupt "block span disagrees with contents";
    out
  end

let decode d =
  if d.total = 0 then [||]
  else Array.concat (List.init (n_blocks d) (fun i -> decode_block d i))

(* First block index in [start, n_blocks) whose max >= id (binary search
   over the directory — the block-skip primitive), or n_blocks. *)
let find_block d ~start id =
  let n = n_blocks d in
  let rec bsearch lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if d.maxs.(mid) < id then bsearch (mid + 1) hi else bsearch lo mid
  in
  bsearch (max start 0) n
