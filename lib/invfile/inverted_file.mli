(** The inverted file [S_IF] for a collection of nested sets (paper, Sec. 2).

    The key space is the set of atoms occurring in the collection; the
    payload of atom [a] is the sorted postings list [S_IF(a)] (see
    {!Posting}). Alongside the inverted lists the store holds:

    - the record values themselves (for result materialization and the
      naive baseline's full scan),
    - the sorted array of record root ids (records are encoded by a shared
      DFS allocator, so a record's node ids form the contiguous range
      between consecutive roots),
    - the node table — the posting of {e every} internal node — used as the
      candidate list for query nodes with no leaf children, and
    - the most frequent atoms with their frequencies, used to preload the
      static cache of Sec. 3.3.

    Use {!Builder} to construct one; [open_store] reopens a persisted one. *)

type t

exception Malformed of string

val open_store : ?lenient:bool -> Storage.Kv.t -> t
(** Attaches to a store populated by {!Builder.finish}. Rolls back any
    update transaction a crash left half-applied ({!Journal.recover})
    before reading the metadata. With [~lenient:true] (default false),
    missing or corrupt metadata reads as an empty index instead of
    raising — the mode {!Repair} and [nscq repair] use to open a store
    damaged beyond what the journal covers.
    @raise Malformed if the metadata is missing or corrupt (strict mode). *)

val refresh : t -> unit
(** Re-reads the metadata and drops every in-memory cache (node table,
    dictionary, attached list cache) — realigns a handle with its store
    after an in-place rollback or repair.
    @raise Malformed if the metadata is missing or corrupt. *)

val store : t -> Storage.Kv.t
val close : t -> unit

(** {1 Lookup} *)

val lookup : t -> string -> Plist.t
(** [lookup t a] is [S_IF(a)]; the empty list for unknown atoms. Consults
    the attached cache first; {!lookup_stats} records hits and misses. *)

val prefetch : t -> string list -> int
(** [prefetch t atoms] block-probes the inverted file: every distinct atom
    not already cached is read from the store in one sorted pass and
    preloaded into the attached cache (any policy — {!Cache.preload}
    bypasses admission rules). Returns the number of lists loaded; a no-op
    (0) without an attached cache. The entry point batched query execution
    ({!Engine.query_batch}, the server's batcher) uses to amortize index
    probes across a block of queries. Each load counts one lookup + miss
    in {!lookup_stats}; the per-query lookups that follow then count as
    hits. *)

val lookup_raw : t -> string -> string option
(** The encoded payload of [S_IF(a)], bypassing the decoded-list cache —
    the entry point for streamed (blocked) processing, {!Plist_stream}. *)

val list_codec : t -> Plist.codec
(** The codec this collection's postings payloads were written with
    (sniffed from the node table, or failing that any atom list; fresh
    stores report the build default, [Blocked]). Writers that create new
    lists — {!Merger}, {!Updater} — use this to keep a store's
    representation homogeneous. *)

val all_nodes : t -> Plist.t
(** The node table, lazily loaded then memoized. *)

val all_nodes_idset : t -> Plist.idset
(** The node table as a head set, memoized — the "universal" result of an
    unconstrained query node (e.g. [{}]), shared instead of rebuilt per
    occurrence. *)

val mem_atom : t -> string -> bool

val atoms_with_prefix : t -> string -> string list
(** All atoms starting with the given prefix, ascending — an ordered range
    scan on the B+tree backend, a full key scan elsewhere. Powers
    prefix-wildcard query leaves ([v1*], {!Engine} [~wildcards]). *)

(** {1 Collection access} *)

val record_count : t -> int
val atom_count : t -> int
val node_count : t -> int

val roots : t -> int array
(** Record root ids, ascending; index in this array = record id. *)

val is_root : t -> int -> bool

val root_of_node : t -> int -> int
(** The root id of the record containing the given node id. *)

val record_of_root : t -> int -> int
(** Record id (index) of a root id. @raise Not_found if not a root. *)

val record_value : t -> int -> Nested.Value.t
(** The stored value of a record, by record id.
    @raise Malformed if absent (store built without values). *)

val iter_records : t -> (int -> Nested.Value.t -> unit) -> unit
(** Full scan in record-id order (the naive baseline's access path). *)

val top_atoms : t -> (string * int) list
(** Most frequent atoms with posting counts, descending, as persisted by the
    builder. *)

(** {1 Caching (paper Sec. 3.3)} *)

val attach_cache : t -> Cache.t -> unit
(** Also preloads a [Static] cache with the most frequent atoms' lists. *)

val detach_cache : t -> unit
val cache : t -> Cache.t option

val lookup_stats : t -> Storage.Io_stats.t
(** Logical lookup counters: cache hits vs misses (store-level I/O counters
    live on the store's own {!Storage.Kv.t.stats}). *)

(**/**)

(* Store key layout, shared with {!Builder}. *)
val atom_key : string -> string
val record_key : int -> string
val meta_roots : string
val meta_counts : string
val meta_topk : string
val meta_nodes : string
val meta_recfmt : string
val internal_put_record : t -> int -> Nested.Value.t -> unit

(**/**)

val record_tree : t -> int -> Nested.Tree.t
(** Re-encodes a stored record at its original node-id range (ids are
    deterministic given the canonical value and the record's first id). *)

val subtree_value : t -> int -> Nested.Value.t
(** The value of the subtree rooted at an arbitrary node id of the
    collection. *)

val record_value_opt : t -> int -> Nested.Value.t option
(** [None] for tombstoned (deleted) records. *)

val record_format : t -> [ `Syntax | `Binary ]
(** How record values are stored: human-readable literal syntax (default)
    or the dictionary-coded binary form of {!Value_codec} (chosen at build
    time, [Builder.create ~record_format]). *)

val dict : t -> Dict.t
(** The collection's atom dictionary (allocated lazily; empty unless the
    binary record format is in use). *)

(**/**)

(* Internal hooks for {!Updater}. *)
val deleted_marker : string
val internal_set_counts : t -> roots:int array -> atom_count:int -> node_count:int -> unit
val internal_invalidate_atom : t -> string -> unit
val internal_reset_node_table : t -> unit
val internal_write_meta : t -> unit

(**/**)
