(** Block-partitioned compressed postings payloads (the ['C'] format).

    A postings list is cut into fixed-size blocks; a directory records
    each block's node-id span [min, max], posting count, representation
    and byte length, so readers can {e skip} whole blocks by id — the
    primitive behind the skewed-intersection kernels of {!Plist_stream}.
    Per block, the representation is chosen at build time: delta-encoded
    varint (identical bytes to a ['V'] slice) for sparse blocks, a bitmap
    over [min, max] plus out-of-band posting fields for dense ones.

    The payload body produced here carries no format tag; {!Plist} owns
    the leading ['C'] byte and passes [pos = 1] when parsing. *)

val block_size : int
(** Postings per block (the last block of a list may hold fewer). *)

val dense : range:int -> count:int -> bool
(** The representation heuristic: a block whose id span [range] is within
    4x its posting [count] is stored as a bitmap (the bitmap then costs at
    most half a byte per posting, cheaper than any gap varint). *)

val encode : Posting.t array -> string
(** Encode a sorted postings array as an (untagged) blocked body. *)

(** {1 Reading} *)

type t
(** A parsed directory over an encoded payload. Holds the per-block spans
    and body offsets; block bodies are only decoded on demand. *)

val directory : string -> pos:int -> t
(** Parse the directory of the blocked body starting at byte [pos] of the
    payload. @raise Storage.Codec.Corrupt on malformed input. *)

val total : t -> int
(** Total postings in the list. *)

val n_blocks : t -> int
val block_min : t -> int -> int
val block_max : t -> int -> int

val suffix_count : t -> int -> int
(** [suffix_count d i] is the number of postings in blocks [i ..]
    (defined for [0 <= i <= n_blocks d], with the last being [0]). *)

val decode_block : t -> int -> Posting.t array
(** Decode one block. Validates span, count and (for bitmap blocks)
    popcount. @raise Storage.Codec.Corrupt on mismatch. *)

val decode : t -> Posting.t array
(** Decode the full list (all blocks, concatenated). *)

val find_block : t -> start:int -> int -> int
(** [find_block d ~start id] is the first block index [>= start] whose
    max node id is [>= id], or [n_blocks d] — a binary search over the
    directory that never touches block bodies. *)
