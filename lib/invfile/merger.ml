module IF = Inverted_file

let shift_posting ~offset (p : Posting.t) =
  {
    Posting.node = p.Posting.node + offset;
    children = Array.map (fun c -> c + offset) p.Posting.children;
    leaf_count = p.Posting.leaf_count;
    post = p.Posting.post + offset;
    parent = (if p.Posting.parent < 0 then -1 else p.Posting.parent + offset);
  }

let shift_list ~offset l = Array.map (shift_posting ~offset) l

(* Appends (already-shifted, all-larger-id) postings to dst's list for
   [atom], preserving the payload codec; lists new to dst are written
   with dst's collection codec, not src's, so a merge never mixes
   representations within one store. *)
let append_postings dst ~default_codec atom shifted =
  let store = IF.store dst in
  let key = IF.atom_key atom in
  let codec = ref default_codec in
  let current =
    match store.Storage.Kv.get key with
    | None -> Plist.empty
    | Some payload ->
      codec := Plist.codec_of_bytes payload;
      Plist.of_bytes payload
  in
  store.Storage.Kv.put key
    (Plist.to_bytes ~codec:!codec (Array.append current shifted));
  IF.internal_invalidate_atom dst atom

let append ~dst ~src =
  let offset = IF.node_count dst in
  let src_store = IF.store src in
  let default_codec = IF.list_codec dst in
  (* 1. Inverted lists: shift and append, atom by atom. Tombstoned records
     have no postings, so nothing special is needed for them here. *)
  src_store.Storage.Kv.iter (fun key payload ->
      if String.length key > 0 && key.[0] = 'a' then begin
        let atom = String.sub key 1 (String.length key - 1) in
        append_postings dst ~default_codec atom
          (shift_list ~offset (Plist.of_bytes payload))
      end);
  (* 2. Node table. *)
  let dst_store = IF.store dst in
  (match
     ( dst_store.Storage.Kv.get IF.meta_nodes,
       src_store.Storage.Kv.get IF.meta_nodes )
   with
  | Some dpayload, Some spayload ->
    let codec = Plist.codec_of_bytes dpayload in
    let merged =
      Array.append (Plist.of_bytes dpayload)
        (shift_list ~offset (Plist.of_bytes spayload))
    in
    dst_store.Storage.Kv.put IF.meta_nodes (Plist.to_bytes ~codec merged);
    IF.internal_reset_node_table dst
  | None, None -> ()
  | Some _, None | None, Some _ ->
    invalid_arg "Merger.append: node tables must be present in both or neither");
  (* 3. Records and roots (live records keep their relative order; deleted
     slots of src are skipped, so dst record ids stay dense). *)
  let record_offset = IF.record_count dst in
  let copied = ref 0 in
  let new_roots = ref [] in
  let src_roots = IF.roots src in
  for i = 0 to IF.record_count src - 1 do
    match IF.record_value_opt src i with
    | None -> () (* tombstone: skip *)
    | Some v ->
      IF.internal_put_record dst (record_offset + !copied) v;
      new_roots := (src_roots.(i) + offset) :: !new_roots;
      incr copied
  done;
  let roots = Array.append (IF.roots dst) (Array.of_list (List.rev !new_roots)) in
  (* 4. Counts. New atoms = src atoms not present in dst before the merge;
     easiest exact accounting is to recount the atom keys. *)
  let atom_count = ref 0 in
  dst_store.Storage.Kv.iter (fun key _ ->
      if String.length key > 0 && key.[0] = 'a' then incr atom_count);
  IF.internal_set_counts dst ~roots ~atom_count:!atom_count
    ~node_count:(offset + IF.node_count src);
  IF.internal_write_meta dst;
  dst_store.Storage.Kv.sync ()
