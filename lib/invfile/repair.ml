module IF = Inverted_file

type outcome = { live_records : int; tombstoned : int; atoms : int }

let record_id_of_key key =
  if String.length key > 2 && key.[0] = 'r' && key.[1] = ':' then
    int_of_string_opt (String.sub key 2 (String.length key - 2))
  else None

let is_atom_key key = String.length key > 0 && key.[0] = 'a'

let rebuild inv =
  let store = IF.store inv in
  (* The slot count comes from the stored records themselves, not from the
     (possibly damaged) roots metadata. *)
  let max_id = ref (-1) in
  let old_atom_keys = ref [] in
  store.Storage.Kv.iter (fun key _ ->
      (match record_id_of_key key with
      | Some id when id > !max_id -> max_id := id
      | _ -> ());
      if is_atom_key key then old_atom_keys := key :: !old_atom_keys);
  let n = 1 + max !max_id (IF.record_count inv - 1) in
  (* Readable values; anything else is tombstoned below. *)
  let values =
    Array.init n (fun id ->
        match IF.record_value_opt inv id with
        | Some v when Nested.Value.is_set v -> Some v
        | Some _ | None -> None
        | exception _ -> None)
  in
  let had_node_table = Storage.Kv.mem store IF.meta_nodes in
  let codec =
    (* preserve the collection's list codec when a list survives to tell
       us; otherwise fall back to the build default *)
    match !old_atom_keys with
    | key :: _ -> (
      match store.Storage.Kv.get key with
      | Some payload -> (
        try Plist.codec_of_bytes payload with _ -> Plist.Blocked)
      | None -> Plist.Blocked)
    | [] -> Plist.Blocked
  in
  (* Recompute everything the builder derives, in record-id order so each
     postings list comes out sorted. *)
  let postings : (string, Posting.t list) Hashtbl.t = Hashtbl.create 1024 in
  let all_nodes = ref [] in
  let roots = Array.make n 0 in
  let tombstoned = ref 0 in
  let next = ref 0 in
  Array.iteri
    (fun id v ->
      roots.(id) <- !next;
      match v with
      | None ->
        (* reserve one id so roots stay strictly increasing *)
        incr tombstoned;
        incr next
      | Some v ->
        let tree =
          Nested.Tree.of_value (Nested.Tree.allocator_from !next) ~record_id:id v
        in
        Nested.Tree.iter
          (fun node ->
            let p = Posting.of_tree_node node in
            if had_node_table then all_nodes := p :: !all_nodes;
            Array.iter
              (fun leaf ->
                let prev =
                  Option.value ~default:[] (Hashtbl.find_opt postings leaf)
                in
                Hashtbl.replace postings leaf (p :: prev))
              node.Nested.Tree.leaves)
          tree;
        next := !next + Nested.Tree.node_count tree)
    values;
  let new_atom_keys =
    Hashtbl.fold (fun atom _ acc -> IF.atom_key atom :: acc) postings []
  in
  let tombstone_keys =
    List.filter_map
      (fun id -> if values.(id) = None then Some (IF.record_key id) else None)
      (List.init n Fun.id)
  in
  let keys =
    (IF.meta_roots :: IF.meta_counts :: IF.meta_nodes :: IF.meta_topk
     :: !old_atom_keys)
    @ new_atom_keys @ tombstone_keys
  in
  Journal.with_txn store ~keys (fun () ->
      List.iter (fun key -> ignore (store.Storage.Kv.delete key)) !old_atom_keys;
      ignore (store.Storage.Kv.delete IF.meta_nodes);
      let freqs = ref [] in
      Hashtbl.iter
        (fun atom rev ->
          let l = Array.of_list (List.rev rev) in
          freqs := (atom, Array.length l) :: !freqs;
          store.Storage.Kv.put (IF.atom_key atom) (Plist.to_bytes ~codec l))
        postings;
      if had_node_table then begin
        let l = Array.of_list !all_nodes in
        Array.sort Posting.compare l;
        store.Storage.Kv.put IF.meta_nodes (Plist.to_bytes ~codec l)
      end;
      List.iter
        (fun key -> store.Storage.Kv.put key IF.deleted_marker)
        tombstone_keys;
      store.Storage.Kv.put IF.meta_roots (Storage.Codec.encode_int_array roots);
      let w = Storage.Codec.writer () in
      Storage.Codec.write_varint w (Hashtbl.length postings);
      Storage.Codec.write_varint w !next;
      store.Storage.Kv.put IF.meta_counts (Storage.Codec.contents w);
      let by_freq =
        List.sort
          (fun (a1, c1) (a2, c2) ->
            let c = Int.compare c2 c1 in
            if c <> 0 then c else String.compare a1 a2)
          !freqs
      in
      let top = List.filteri (fun i _ -> i < 4096) by_freq in
      let w = Storage.Codec.writer () in
      Storage.Codec.write_varint w (List.length top);
      List.iter
        (fun (a, c) ->
          Storage.Codec.write_string w a;
          Storage.Codec.write_varint w c)
        top;
      store.Storage.Kv.put IF.meta_topk (Storage.Codec.contents w);
      store.Storage.Kv.sync ());
  IF.refresh inv;
  {
    live_records = n - !tombstoned;
    tombstoned = !tombstoned;
    atoms = Hashtbl.length postings;
  }
