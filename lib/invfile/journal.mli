(** Write-ahead undo journal for multi-key inverted-file updates.

    {!Updater} transactions touch many keys (one postings list per atom,
    the node table, the record slot, the metadata); a crash between the
    first and the last write leaves the index inconsistent with the stored
    records. The journal restores atomicity at the key-value level, so it
    works identically on every backend:

    + the pre-images of every key the transaction will touch are collected
      and written, CRC-protected, under one reserved key ([j:undo]);
    + the store is synced, then the data writes run;
    + the journal key is deleted (the commit point) and the store synced.

    Under an ordered-crash model (writes reach the backend in program
    order; the crashing write may be torn) every prefix of a transaction
    is recoverable: a torn journal write means no data was touched, so the
    corrupt journal is discarded; an intact journal means data writes may
    have happened, so the pre-images are restored. Either way the
    transaction fully applies or fully rolls back.

    Recovery runs automatically in {!Inverted_file.open_store} and records
    a [recovery] on the store's {!Storage.Io_stats}. *)

val key : string
(** The reserved store key holding the undo record ("j:undo"). *)

val pending : Storage.Kv.t -> bool
(** An undo record is present — the store was not cleanly closed. *)

val recover : Storage.Kv.t -> int
(** Rolls back the pending transaction, if any. Returns the number of
    keys restored (0 when there was nothing to do, or when the journal
    itself was torn — in which case the interrupted transaction had not
    written any data yet and the journal is simply dropped). *)

val with_txn : Storage.Kv.t -> keys:string list -> (unit -> 'a) -> 'a
(** [with_txn store ~keys f] snapshots the pre-images of [keys], journals
    them, runs [f], and commits. If [f] raises, the pre-images are
    restored immediately (best effort — a dead store is left to reopen
    recovery) and the exception is re-raised. [keys] must cover every key
    [f] writes or deletes. *)
