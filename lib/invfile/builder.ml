type t = {
  store : Storage.Kv.t;
  store_values : bool;
  node_table : bool;
  codec : Plist.codec;
  record_format : [ `Syntax | `Binary ];
  dict : Dict.t;
  top_k : int;
  alloc : Nested.Tree.allocator;
  postings : (string, Posting.t list) Hashtbl.t;  (* reverse-ordered *)
  mutable all_nodes : Posting.t list;  (* reverse-ordered *)
  mutable roots : int list;  (* reverse-ordered *)
  mutable count : int;
  mutable finished : bool;
}

let create ?(store_values = true) ?(node_table = true) ?(codec = Plist.Blocked)
    ?(record_format = `Syntax) ?(top_k = 4096) store =
  store.Storage.Kv.put Inverted_file.meta_recfmt
    (match record_format with `Syntax -> "S" | `Binary -> "B");
  {
    store;
    store_values;
    node_table;
    codec;
    record_format;
    dict = Dict.create store;
    top_k;
    alloc = Nested.Tree.allocator ();
    postings = Hashtbl.create 4096;
    all_nodes = [];
    roots = [];
    count = 0;
    finished = false;
  }

let record_count t = t.count

let add_value t value =
  if t.finished then invalid_arg "Builder.add_value: builder already finished";
  let record_id = t.count in
  let tree = Nested.Tree.of_value t.alloc ~record_id value in
  Nested.Tree.iter
    (fun n ->
      let p = Posting.of_tree_node n in
      if t.node_table then t.all_nodes <- p :: t.all_nodes;
      Array.iter
        (fun leaf ->
          let prev = Option.value ~default:[] (Hashtbl.find_opt t.postings leaf) in
          Hashtbl.replace t.postings leaf (p :: prev))
        n.Nested.Tree.leaves)
    tree;
  t.roots <- tree.Nested.Tree.root :: t.roots;
  if t.store_values then
    t.store.Storage.Kv.put
      (Inverted_file.record_key record_id)
      (match t.record_format with
      | `Syntax -> Value_codec.encode_syntax value
      | `Binary -> Value_codec.encode t.dict value);
  t.count <- t.count + 1;
  record_id

let add_string t s = add_value t (Nested.Syntax.of_string s)

let finish t =
  if t.finished then invalid_arg "Builder.finish: builder already finished";
  t.finished <- true;
  (* Inverted lists. Postings were appended in DFS order per record and
     records in id order, so each reversed list is already sorted. *)
  let freqs = ref [] in
  Hashtbl.iter
    (fun atom rev_postings ->
      let l = Array.of_list (List.rev rev_postings) in
      freqs := (atom, Array.length l) :: !freqs;
      t.store.Storage.Kv.put (Inverted_file.atom_key atom)
        (Plist.to_bytes ~codec:t.codec l))
    t.postings;
  Hashtbl.reset t.postings;
  (* Node table. *)
  if t.node_table then begin
    let l = Array.of_list (List.rev t.all_nodes) in
    Array.sort Posting.compare l;
    t.store.Storage.Kv.put Inverted_file.meta_nodes (Plist.to_bytes ~codec:t.codec l)
  end;
  t.all_nodes <- [];
  (* Metadata. *)
  let roots = Array.of_list (List.rev t.roots) in
  t.store.Storage.Kv.put Inverted_file.meta_roots (Storage.Codec.encode_int_array roots);
  let w = Storage.Codec.writer () in
  Storage.Codec.write_varint w (List.length !freqs);
  Storage.Codec.write_varint w (Nested.Tree.next_id t.alloc);
  t.store.Storage.Kv.put Inverted_file.meta_counts (Storage.Codec.contents w);
  (* Top-k frequency table, by descending count then atom. *)
  let by_freq =
    List.sort
      (fun (a1, c1) (a2, c2) ->
        let c = Int.compare c2 c1 in
        if c <> 0 then c else String.compare a1 a2)
      !freqs
  in
  let top = List.filteri (fun i _ -> i < t.top_k) by_freq in
  let w = Storage.Codec.writer () in
  Storage.Codec.write_varint w (List.length top);
  List.iter
    (fun (a, c) ->
      Storage.Codec.write_string w a;
      Storage.Codec.write_varint w c)
    top;
  t.store.Storage.Kv.put Inverted_file.meta_topk (Storage.Codec.contents w);
  t.store.Storage.Kv.sync ();
  Inverted_file.open_store t.store
