(** Incremental maintenance of an inverted file.

    The paper builds its inverted files once and queries them; a system a
    downstream user adopts also needs inserts and deletes. Because node ids
    are allocated in DFS order and a fresh record's ids exceed every
    existing id, inserting a record only ever {e appends} to the affected
    postings lists, so sortedness is preserved with a read-modify-write per
    touched atom. Deletion removes the record's id range from its atoms'
    lists and tombstones the record slot (record ids are positional and are
    not reused).

    All in-handle state (roots, counts, memoized node table, attached
    cache entries for touched atoms) is kept consistent. The persisted
    top-frequency table used for static-cache preloading is {e not}
    recomputed on updates; reattach a cache after bulk changes if preload
    quality matters. *)

val add_value : ?journal:bool -> Inverted_file.t -> Nested.Value.t -> int
(** Indexes one new record and returns its record id.

    Updates run under an undo-journal transaction ({!Journal}) by
    default, so a crash or I/O failure mid-update fully rolls back
    instead of leaving the index inconsistent with the records;
    [~journal:false] restores the unprotected fast path (used by the
    crash-consistency suite to demonstrate the failure mode, and safe
    when the store is purely in-memory and errors are fatal anyway).
    @raise Invalid_argument if the value is an atom. *)

val add_string : ?journal:bool -> Inverted_file.t -> string -> int

val delete_record : ?journal:bool -> Inverted_file.t -> int -> bool
(** Removes a record's postings and tombstones its slot; [false] if the id
    is out of range or already deleted. Record ids of other records are
    unchanged. *)

val is_deleted : Inverted_file.t -> int -> bool
(** Whether a record id (in range) has been tombstoned. *)
