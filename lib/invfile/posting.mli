(** Inverted-file postings.

    For an atom [a], the inverted list [S_IF(a)] contains one posting per
    internal node [p] that has a leaf child labelled [a] (paper, Sec. 2).
    Beyond the paper's core payload — the sorted ids [C] of [p]'s internal
    children — postings carry the node's leaf count (needed by the
    set-equality and superset joins, Sec. 4.1) and its post-order rank
    (needed for the homeomorphic descendant test, Sec. 4.2), as the paper
    itself proposes. *)

type t = {
  node : int;  (** id of the internal node containing the leaf; [= pre rank] *)
  children : int array;  (** internal children of [node], strictly increasing *)
  leaf_count : int;  (** number of leaf children of [node] *)
  post : int;  (** post-order rank of [node] *)
  parent : int;  (** id of the parent internal node, [-1] at a record root —
                     supports ancestor-closure candidate generation for the
                     fully-homeomorphic semantics (paper, footnote 4) *)
}

val of_tree_node : Nested.Tree.node -> t

val compare : t -> t -> int
(** Orders by [node] id (unique within a list). *)

val is_descendant : anc:t -> desc:t -> bool
(** Pre/post interval test; false across records because id and post
    counters are global (see {!Nested.Tree}). *)

val encode : Storage.Codec.writer -> t -> prev_node:int -> unit
val decode : Storage.Codec.reader -> prev_node:int -> t

val encode_aux : Storage.Codec.writer -> t -> unit
(** Everything but the node id (leaf count, post rank, parent gap,
    children) — used when the node id is carried out of band, e.g. by a
    bitmap block (see {!Plist_blocks}). *)

val decode_aux : Storage.Codec.reader -> node:int -> t

val pp : Format.formatter -> t -> unit
