(* Cursors over encoded postings lists.

   Three sources: in-memory arrays (Mem), sequential delta-varint
   payloads ('V', Seq) and block-partitioned compressed payloads ('C',
   Blk). Blk cursors exploit the Plist_blocks directory: skip_to binary
   searches the per-block [min, max] spans and decodes only the landing
   block, so an n-way intersection over skewed lists never touches the
   bytes of skipped blocks. *)

type mem_src = { arr : Plist.t; mutable mpos : int }

type seq_src = {
  reader : Storage.Codec.reader;
  mutable prev_node : int;
  mutable left : int;
}

type blk_src = {
  dir : Plist_blocks.t;
  mutable bi : int;  (* next block to decode *)
  mutable buf : Plist.t;  (* current decoded block *)
  mutable bpos : int;  (* cursor within [buf] *)
}

type src = Mem of mem_src | Seq of seq_src | Blk of blk_src

type cursor = { src : src; mutable lookahead : Posting.t option }

let cursor_of_bytes payload =
  match Plist.codec_of_bytes payload with
  | Plist.Bitpacked ->
    invalid_arg "Plist_stream.cursor_of_bytes: bitpacked payloads are not streamable"
  | Plist.Varint ->
    let reader = Storage.Codec.reader payload in
    let tag = Storage.Codec.read_varint reader in
    assert (tag = Char.code 'V');
    let left = Storage.Codec.read_varint reader in
    { src = Seq { reader; prev_node = -1; left }; lookahead = None }
  | Plist.Blocked ->
    let dir = Plist_blocks.directory payload ~pos:1 in
    { src = Blk { dir; bi = 0; buf = Plist.empty; bpos = 0 }; lookahead = None }

let cursor_of_plist l = { src = Mem { arr = l; mpos = 0 }; lookahead = None }

let src_remaining = function
  | Mem m -> Array.length m.arr - m.mpos
  | Seq s -> s.left
  | Blk b -> Array.length b.buf - b.bpos + Plist_blocks.suffix_count b.dir b.bi

let remaining c =
  src_remaining c.src + (match c.lookahead with Some _ -> 1 | None -> 0)

let rec blk_next b =
  if b.bpos < Array.length b.buf then begin
    let p = b.buf.(b.bpos) in
    b.bpos <- b.bpos + 1;
    Some p
  end
  else if b.bi < Plist_blocks.n_blocks b.dir then begin
    b.buf <- Plist_blocks.decode_block b.dir b.bi;
    b.bi <- b.bi + 1;
    b.bpos <- 0;
    blk_next b
  end
  else None

let src_next = function
  | Mem m ->
    if m.mpos < Array.length m.arr then begin
      let p = m.arr.(m.mpos) in
      m.mpos <- m.mpos + 1;
      Some p
    end
    else None
  | Seq s ->
    if s.left = 0 then None
    else begin
      s.left <- s.left - 1;
      let p = Posting.decode s.reader ~prev_node:s.prev_node in
      s.prev_node <- p.Posting.node;
      Some p
    end
  | Blk b -> blk_next b

let peek c =
  match c.lookahead with
  | Some _ as p -> p
  | None ->
    let p = src_next c.src in
    c.lookahead <- p;
    p

let next c =
  match c.lookahead with
  | Some p ->
    c.lookahead <- None;
    Some p
  | None -> src_next c.src

(* Consume up to (and including) the first posting with node >= id;
   return it. Mem positions by galloping; Seq decodes sequentially (delta
   coding admits nothing better); Blk galls within the current block and
   otherwise binary searches the directory, decoding only the landing
   block. *)
let src_skip_to src id =
  match src with
  | Mem m ->
    let k = Plist.gallop_lower_bound m.arr ~lo:m.mpos id in
    if k < Array.length m.arr then begin
      m.mpos <- k + 1;
      Some m.arr.(k)
    end
    else begin
      m.mpos <- Array.length m.arr;
      None
    end
  | Seq _ ->
    let rec loop () =
      match src_next src with
      | None -> None
      | Some p when p.Posting.node >= id -> Some p
      | Some _ -> loop ()
    in
    loop ()
  | Blk b ->
    let blen = Array.length b.buf in
    if b.bpos < blen && b.buf.(blen - 1).Posting.node >= id then begin
      (* stays within the current block *)
      let k = Plist.gallop_lower_bound b.buf ~lo:b.bpos id in
      b.bpos <- k + 1;
      Some b.buf.(k)
    end
    else begin
      let j = Plist_blocks.find_block b.dir ~start:b.bi id in
      if j >= Plist_blocks.n_blocks b.dir then begin
        b.bi <- Plist_blocks.n_blocks b.dir;
        b.buf <- Plist.empty;
        b.bpos <- 0;
        None
      end
      else begin
        b.buf <- Plist_blocks.decode_block b.dir j;
        b.bi <- j + 1;
        let k = Plist.gallop_lower_bound b.buf ~lo:0 id in
        b.bpos <- k + 1;
        Some b.buf.(k)
      end
    end

let skip_to c id =
  match peek c with
  | None -> None
  | Some p when p.Posting.node >= id -> Some p
  | Some _ ->
    c.lookahead <- None;
    let p = src_skip_to c.src id in
    c.lookahead <- p;
    p

(* n-way intersection: drive from the smallest list and skip_to the rest
   to each candidate — block-skipping makes each skip cheap on 'C'
   payloads. *)
let inter_many payloads =
  match payloads with
  | [] -> invalid_arg "inter_many: empty intersection is the node universe"
  | payloads ->
    let cursors = Array.of_list (List.map cursor_of_bytes payloads) in
    Array.sort (fun a b -> Int.compare (remaining a) (remaining b)) cursors;
    let out = ref [] in
    let rec align target i =
      (* Try to bring every cursor to [target]; returns the next candidate
         target, or None at exhaustion. *)
      if i = Array.length cursors then Some target
      else
        match skip_to cursors.(i) target with
        | None -> None
        | Some p when p.Posting.node = target -> align target (i + 1)
        | Some p -> align_from p.Posting.node
    and align_from target = align target 0 in
    let rec loop () =
      match peek cursors.(0) with
      | None -> ()
      | Some p -> (
        match align_from p.Posting.node with
        | None -> ()
        | Some node ->
          (match peek cursors.(0) with
          | Some q when q.Posting.node = node -> out := q :: !out
          | _ -> assert false);
          Array.iter (fun c -> ignore (next c)) cursors;
          loop ())
    in
    loop ();
    Array.of_list (List.rev !out)

let union_with_counts payloads =
  let cursors = List.map cursor_of_bytes payloads in
  let out = ref [] in
  let rec loop () =
    (* smallest head among cursors *)
    let smallest =
      List.fold_left
        (fun acc c ->
          match peek c, acc with
          | None, _ -> acc
          | Some p, None -> Some p.Posting.node
          | Some p, Some m -> Some (min p.Posting.node m))
        None cursors
    in
    match smallest with
    | None -> ()
    | Some node ->
      let count = ref 0 and posting = ref None in
      List.iter
        (fun c ->
          match peek c with
          | Some p when p.Posting.node = node ->
            incr count;
            posting := Some p;
            ignore (next c)
          | _ -> ())
        cursors;
      (match !posting with
      | Some p -> out := (p, !count) :: !out
      | None -> assert false);
      loop ()
  in
  loop ();
  Array.of_list (List.rev !out)
