type t = {
  node : int;
  children : int array;
  leaf_count : int;
  post : int;
  parent : int;
}

let of_tree_node (n : Nested.Tree.node) =
  {
    node = n.Nested.Tree.id;
    children = n.Nested.Tree.children;
    leaf_count = Array.length n.Nested.Tree.leaves;
    post = n.Nested.Tree.post;
    parent = n.Nested.Tree.parent;
  }

let compare a b = Int.compare a.node b.node

let is_descendant ~anc ~desc = anc.node < desc.node && desc.post < anc.post

let encode_aux w t =
  Storage.Codec.write_varint w t.leaf_count;
  Storage.Codec.write_varint w t.post;
  (* parents precede their children in pre-order, so node - parent ≥ 1;
     roots (parent = -1) encode as gap 0 *)
  Storage.Codec.write_varint w (if t.parent < 0 then 0 else t.node - t.parent);
  Storage.Codec.write_int_array w t.children

let encode w t ~prev_node =
  Storage.Codec.write_varint w (t.node - prev_node - 1);
  encode_aux w t

let decode_aux r ~node =
  let leaf_count = Storage.Codec.read_varint r in
  let post = Storage.Codec.read_varint r in
  let parent_gap = Storage.Codec.read_varint r in
  let parent = if parent_gap = 0 then -1 else node - parent_gap in
  let children = Storage.Codec.read_int_array r in
  { node; children; leaf_count; post; parent }

let decode r ~prev_node =
  let node = prev_node + 1 + Storage.Codec.read_varint r in
  decode_aux r ~node

let pp ppf t =
  Format.fprintf ppf "(%d, {%s})" t.node
    (String.concat ", " (List.map string_of_int (Array.to_list t.children)))
