(** Reference inverted-list kernels — the differential-testing oracle.

    A frozen copy of the pre-blocked {!Plist} set operations: textbook
    sorted-merge intersection/union over materialized posting arrays.
    The optimized kernels in {!Plist} (galloping intersection) and
    {!Plist_stream} (block-skipping cursors over compressed payloads) are
    required to produce byte-identical results to this module on every
    input; [test/test_kernels.ml] enforces that with qcheck.

    Not used on any query path. Keep it simple and obviously correct. *)

type t = Posting.t array

val lower_bound : t -> int -> int
(** Index of the first posting with node id ≥ the argument. *)

val find : t -> int -> Posting.t option
val mem : t -> int -> bool

val inter : t -> t -> t
val union : t -> t -> t

val inter_many : t list -> t
(** @raise Invalid_argument on the empty family, with the same message as
    {!Plist.inter_many} and {!Plist_stream.inter_many} (the contract is
    shared — see the "degenerate queries" note in DESIGN.md). *)

val union_with_counts : t list -> (Posting.t * int) array

val restrict : t -> int array -> t
