(* Reference implementations of the inverted-list set operations, kept as
   the oracle for the differential test suite (test/test_kernels.ml).

   This module is a frozen copy of the pre-blocked Plist kernels: plain
   sorted-merge / binary-search algorithms over materialized arrays, with
   no galloping and no block skipping. Plist and Plist_stream must agree
   with it byte-for-byte on every input; do not "improve" these — their
   obviousness is the point. *)

type t = Posting.t array

let lower_bound (l : t) id =
  let rec bsearch lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if l.(mid).Posting.node < id then bsearch (mid + 1) hi else bsearch lo mid
  in
  bsearch 0 (Array.length l)

let find (l : t) id =
  let i = lower_bound l id in
  if i < Array.length l && l.(i).Posting.node = id then Some l.(i) else None

let mem l id = Option.is_some (find l id)

let inter (a : t) (b : t) : t =
  (* Sorted merge; per-element binary search when one side is much smaller. *)
  let la = Array.length a and lb = Array.length b in
  let small, big = if la <= lb then (a, b) else (b, a) in
  if Array.length small * 16 < Array.length big then
    Array.of_list
      (Array.to_list small
      |> List.filter (fun p -> mem big p.Posting.node))
  else begin
    let out = ref [] and i = ref 0 and j = ref 0 in
    while !i < la && !j < lb do
      let c = Int.compare a.(!i).Posting.node b.(!j).Posting.node in
      if c = 0 then begin
        out := a.(!i) :: !out;
        incr i;
        incr j
      end
      else if c < 0 then incr i
      else incr j
    done;
    Array.of_list (List.rev !out)
  end

let union (a : t) (b : t) : t =
  let out = ref [] and i = ref 0 and j = ref 0 in
  let la = Array.length a and lb = Array.length b in
  while !i < la && !j < lb do
    let c = Int.compare a.(!i).Posting.node b.(!j).Posting.node in
    if c <= 0 then begin
      out := a.(!i) :: !out;
      if c = 0 then incr j;
      incr i
    end
    else begin
      out := b.(!j) :: !out;
      incr j
    end
  done;
  while !i < la do
    out := a.(!i) :: !out;
    incr i
  done;
  while !j < lb do
    out := b.(!j) :: !out;
    incr j
  done;
  Array.of_list (List.rev !out)

let inter_many = function
  | [] -> invalid_arg "inter_many: empty intersection is the node universe"
  | first :: rest ->
    let sorted =
      List.sort
        (fun a b -> Int.compare (Array.length a) (Array.length b))
        (first :: rest)
    in
    (match sorted with
    | [] -> assert false
    | hd :: tl -> List.fold_left inter hd tl)

let union_with_counts (lists : t list) =
  let all = Array.concat lists in
  Array.sort Posting.compare all;
  let out = ref [] in
  let n = Array.length all in
  let i = ref 0 in
  while !i < n do
    let p = all.(!i) in
    let j = ref (!i + 1) in
    while !j < n && all.(!j).Posting.node = p.Posting.node do incr j done;
    out := (p, !j - !i) :: !out;
    i := !j
  done;
  Array.of_list (List.rev !out)

let restrict (l : t) ids : t =
  let nl = Array.length l and ni = Array.length ids in
  let out = ref [] and i = ref 0 and j = ref 0 in
  while !i < nl && !j < ni do
    let c = Int.compare l.(!i).Posting.node ids.(!j) in
    if c = 0 then begin
      out := l.(!i) :: !out;
      incr i;
      incr j
    end
    else if c < 0 then incr i
    else incr j
  done;
  Array.of_list (List.rev !out)
