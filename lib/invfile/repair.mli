(** Index reconstruction from the stored records.

    The record values are the ground truth an inverted file is derived
    from ({!Integrity} verifies the derived state against them); when the
    derived state is damaged — historical corruption predating the update
    journal, a manually edited store, a bug — the index can be rebuilt
    from the records alone.

    {!rebuild} drops every postings list, the node table, the root and
    count metadata, and the top-frequency table, then recomputes all of
    them from the readable record slots. Unreadable or missing slots are
    tombstoned (their data is gone; tombstoning restores the structural
    invariants and preserves the ids of the surviving records). The whole
    rewrite runs inside a {!Journal} transaction, so a crash during repair
    is itself recoverable. *)

type outcome = {
  live_records : int;  (** records re-indexed *)
  tombstoned : int;  (** slots tombstoned because their value was lost *)
  atoms : int;  (** distinct atoms in the rebuilt index *)
}

val rebuild : Inverted_file.t -> outcome
(** Rebuilds the index in place and {!Inverted_file.refresh}es the
    handle. *)
