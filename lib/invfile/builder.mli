(** Construction of the inverted file.

    Records are added one by one; postings accumulate in memory and are
    flushed to the backing store by {!finish}. All records of a collection
    must be encoded by the builder's single allocator so node ids are
    globally unique and DFS-ordered (see {!Nested.Tree}).

    [store_values] (default [true]) persists each record's value for result
    materialization and the naive baseline; [node_table] (default [true])
    persists the posting of every internal node, enabling queries whose
    nodes have no leaf children. [top_k] (default [4096]) bounds the
    frequency table persisted for cache preloading. *)

type t

val create :
  ?store_values:bool -> ?node_table:bool -> ?codec:Plist.codec ->
  ?record_format:[ `Syntax | `Binary ] -> ?top_k:int -> Storage.Kv.t -> t
(** [codec] selects the postings payload format (default [Blocked]; see
    {!Plist.codec}); [record_format] the stored-record encoding (default
    [`Syntax]; [`Binary] is the dictionary-coded form of {!Value_codec}). *)

val add_value : t -> Nested.Value.t -> int
(** Indexes one record; returns its record id (consecutive from 0).
    @raise Invalid_argument if the value is an atom, or after {!finish}. *)

val add_string : t -> string -> int
(** [add_string t s] parses [s] with {!Nested.Syntax} and adds it. *)

val record_count : t -> int

val finish : t -> Inverted_file.t
(** Flushes postings and metadata and opens the result. The builder cannot
    be reused afterwards. *)
