module C = Storage.Codec

let key = "j:undo"

(* Undo record layout: crc32(4, LE, over the payload) | payload, where
   payload = varint n, then n × (string key | varint present | string
   pre-image if present). The CRC guards against a torn journal write on
   backends without record-level checksums. *)

let encode pre_images =
  let w = C.writer () in
  C.write_varint w (List.length pre_images);
  List.iter
    (fun (k, v) ->
      C.write_string w k;
      match v with
      | None -> C.write_varint w 0
      | Some v ->
        C.write_varint w 1;
        C.write_string w v)
    pre_images;
  let payload = C.contents w in
  let hdr = Bytes.create 4 in
  Bytes.set_int32_le hdr 0 (Storage.Checksum.crc32 payload);
  Bytes.to_string hdr ^ payload

let decode s =
  if String.length s < 4 then None
  else begin
    let stored = Bytes.get_int32_le (Bytes.of_string (String.sub s 0 4)) 0 in
    let payload = String.sub s 4 (String.length s - 4) in
    if Storage.Checksum.crc32 payload <> stored then None
    else
      match
        let r = C.reader payload in
        let n = C.read_varint r in
        List.init n (fun _ ->
            let k = C.read_string r in
            match C.read_varint r with
            | 0 -> (k, None)
            | _ -> (k, Some (C.read_string r)))
      with
      | entries -> Some entries
      | exception C.Corrupt _ -> None
  end

let pending store = Storage.Kv.mem store key

let restore store pre_images =
  List.iter
    (fun (k, v) ->
      match v with
      | Some v -> store.Storage.Kv.put k v
      | None -> ignore (store.Storage.Kv.delete k))
    pre_images

let recover store =
  match store.Storage.Kv.get key with
  | None -> 0
  | Some payload ->
    let restored =
      match decode payload with
      | None ->
        (* torn journal write: the transaction had not touched any data
           yet, so dropping the journal restores consistency *)
        0
      | Some pre_images ->
        restore store pre_images;
        List.length pre_images
    in
    ignore (store.Storage.Kv.delete key);
    store.Storage.Kv.sync ();
    Storage.Io_stats.record_recovery store.Storage.Kv.stats;
    restored

let with_txn store ~keys f =
  let keys = List.sort_uniq String.compare keys in
  let pre_images = List.map (fun k -> (k, store.Storage.Kv.get k)) keys in
  store.Storage.Kv.put key (encode pre_images);
  store.Storage.Kv.sync ();
  match f () with
  | result ->
    ignore (store.Storage.Kv.delete key);
    store.Storage.Kv.sync ();
    result
  | exception e ->
    (* Roll back in place when the store still answers; a crashed store is
       repaired by [recover] at the next open instead. *)
    (try
       restore store pre_images;
       ignore (store.Storage.Kv.delete key);
       store.Storage.Kv.sync ();
       Storage.Io_stats.record_recovery store.Storage.Kv.stats
     with _ -> ());
    raise e
