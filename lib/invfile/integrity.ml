module IF = Inverted_file

type problem = { what : string; detail : string }

let pp_problem ppf p = Format.fprintf ppf "%s: %s" p.what p.detail

let check inv =
  let problems = ref [] in
  let report what fmt =
    Printf.ksprintf (fun detail -> problems := { what; detail } :: !problems) fmt
  in
  (* 0. no half-applied transaction left behind *)
  if Journal.pending (IF.store inv) then
    report "journal" "pending undo record (crash recovery has not run)";
  (* 1. roots ascending, counts sane *)
  let roots = IF.roots inv in
  Array.iteri
    (fun i r ->
      if i > 0 && roots.(i - 1) >= r then
        report "roots" "root ids not strictly increasing at index %d" i)
    roots;
  if Array.length roots > 0 && roots.(Array.length roots - 1) >= IF.node_count inv
  then report "roots" "last root beyond the node count";
  (* 1b. no phantom record slots beyond the root count *)
  (let store = IF.store inv in
   store.Storage.Kv.iter (fun key _ ->
       if String.length key > 2 && key.[0] = 'r' && key.[1] = ':' then
         match int_of_string_opt (String.sub key 2 (String.length key - 2)) with
         | Some id when id >= Array.length roots ->
           report "records" "phantom record key %S beyond the root count" key
         | Some _ -> ()
         | None -> report "records" "unparsable record key %S" key));
  (* 2. expected postings from the stored records *)
  let expected : (string, Posting.t list) Hashtbl.t = Hashtbl.create 1024 in
  let expected_nodes = ref [] in
  let wrong_tree = ref false in
  for record_id = 0 to IF.record_count inv - 1 do
    match IF.record_value_opt inv record_id with
    | exception IF.Malformed m ->
      wrong_tree := true;
      report "records" "record %d unreadable: %s" record_id m
    | None -> ()
    | Some value -> (
      match IF.record_tree inv record_id with
      | exception _ ->
        wrong_tree := true;
        report "records" "record %d does not re-encode" record_id
      | tree ->
        if tree.Nested.Tree.root <> roots.(record_id) then
          report "records" "record %d re-encodes at root %d, expected %d" record_id
            tree.Nested.Tree.root roots.(record_id);
        ignore value;
        Nested.Tree.iter
          (fun n ->
            let p = Posting.of_tree_node n in
            expected_nodes := p :: !expected_nodes;
            Array.iter
              (fun leaf ->
                let prev = Option.value ~default:[] (Hashtbl.find_opt expected leaf) in
                Hashtbl.replace expected leaf (p :: prev))
              n.Nested.Tree.leaves)
          tree)
  done;
  if not !wrong_tree then begin
    (* 3. stored lists = expected lists, exactly *)
    let store = IF.store inv in
    let seen_atoms = ref 0 in
    store.Storage.Kv.iter (fun key payload ->
        if String.length key > 0 && key.[0] = 'a' then begin
          incr seen_atoms;
          let atom = String.sub key 1 (String.length key - 1) in
          match Plist.of_bytes payload with
          | exception _ -> report "postings" "list of %S does not decode" atom
          | stored -> (
            (* sortedness *)
            Array.iteri
              (fun i p ->
                if i > 0 && stored.(i - 1).Posting.node >= p.Posting.node then
                  report "postings" "list of %S not strictly sorted" atom)
              stored;
            (* canonical bytes: every writer emits to_bytes of the decoded
               list, so a payload that fails to round-trip byte-for-byte
               (e.g. a non-canonical varint or misdeclared block) is damage
               even when it happens to decode *)
            (match Plist.codec_of_bytes payload with
            | codec ->
              if not (String.equal (Plist.to_bytes ~codec stored) payload) then
                report "postings" "payload of %S is not canonical" atom
            | exception _ -> report "postings" "payload of %S has no codec tag" atom);
            match Hashtbl.find_opt expected atom with
            | None ->
              report "postings" "phantom list for %S (%d postings)" atom
                (Array.length stored)
            | Some rev ->
              let want = Array.of_list (List.rev rev) in
              Array.sort Posting.compare want;
              if stored <> want then
                report "postings" "list of %S diverges from the records (%d vs %d)"
                  atom (Array.length stored) (Array.length want);
              Hashtbl.remove expected atom)
        end);
    Hashtbl.iter
      (fun atom _ -> report "postings" "missing list for %S" atom)
      expected;
    if !seen_atoms <> IF.atom_count inv then
      report "counts" "atom count %d, but %d atom keys stored" (IF.atom_count inv)
        !seen_atoms;
    (* 4. node table *)
    (match IF.all_nodes inv with
    | exception IF.Malformed _ -> () (* not built: fine *)
    | table ->
      let want = Array.of_list !expected_nodes in
      Array.sort Posting.compare want;
      if table <> want then
        report "node table" "table has %d nodes, records imply %d"
          (Plist.length table) (Array.length want))
  end;
  List.rev !problems
