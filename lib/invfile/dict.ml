let count_key = "m:dict"
let atom_key a = "dA:" ^ a
let id_key id = "dI:" ^ string_of_int id

type t = {
  store : Storage.Kv.t;
  by_atom : (string, int) Hashtbl.t;
  by_id : (int, string) Hashtbl.t;
  mutable next : int option;  (* lazily loaded allocation cursor *)
}

let create store =
  { store; by_atom = Hashtbl.create 256; by_id = Hashtbl.create 256; next = None }

let load_next t =
  match t.next with
  | Some n -> n
  | None ->
    let n =
      match t.store.Storage.Kv.get count_key with
      | None -> 0
      | Some s -> (
        match int_of_string_opt s with
        | Some n -> n
        | None -> failwith "Dict: corrupt dictionary count")
    in
    t.next <- Some n;
    n

let find t atom =
  match Hashtbl.find_opt t.by_atom atom with
  | Some id -> Some id
  | None -> (
    match t.store.Storage.Kv.get (atom_key atom) with
    | None -> None
    | Some s ->
      let id = int_of_string s in
      Hashtbl.replace t.by_atom atom id;
      Hashtbl.replace t.by_id id atom;
      Some id)

let intern t atom =
  match find t atom with
  | Some id -> id
  | None ->
    let id = load_next t in
    t.store.Storage.Kv.put (atom_key atom) (string_of_int id);
    t.store.Storage.Kv.put (id_key id) atom;
    t.next <- Some (id + 1);
    t.store.Storage.Kv.put count_key (string_of_int (id + 1));
    Hashtbl.replace t.by_atom atom id;
    Hashtbl.replace t.by_id id atom;
    id

let atom_of_id t id =
  match Hashtbl.find_opt t.by_id id with
  | Some a -> a
  | None -> (
    match t.store.Storage.Kv.get (id_key id) with
    | None -> raise Not_found
    | Some a ->
      Hashtbl.replace t.by_id id a;
      Hashtbl.replace t.by_atom a id;
      a)

let size t = load_next t

let reset t =
  Hashtbl.reset t.by_atom;
  Hashtbl.reset t.by_id;
  t.next <- None
