module IF = Inverted_file

(* Read-modify-write of one atom's postings list; returns the change in
   the number of live atoms (-1 when the list vanished, +1 when it was
   created, 0 otherwise). *)
let update_list inv atom f =
  let store = IF.store inv in
  let key = IF.atom_key atom in
  let codec = ref None in
  let existed = ref false in
  let current =
    match store.Storage.Kv.get key with
    | None -> Plist.empty
    | Some payload ->
      existed := true;
      codec := Some (Plist.codec_of_bytes payload);
      Plist.of_bytes payload
  in
  let updated = f current in
  IF.internal_invalidate_atom inv atom;
  if Plist.is_empty updated then begin
    ignore (store.Storage.Kv.delete key);
    if !existed then -1 else 0
  end
  else begin
    (* a list new to the store adopts the collection codec *)
    let codec =
      match !codec with Some c -> c | None -> IF.list_codec inv
    in
    store.Storage.Kv.put key (Plist.to_bytes ~codec updated);
    if !existed then 0 else 1
  end

let update_node_table inv f =
  let store = IF.store inv in
  match store.Storage.Kv.get IF.meta_nodes with
  | None -> () (* node table was not built for this collection *)
  | Some payload ->
    let codec = Plist.codec_of_bytes payload in
    store.Storage.Kv.put IF.meta_nodes
      (Plist.to_bytes ~codec (f (Plist.of_bytes payload)));
    IF.internal_reset_node_table inv

let append_posting l p = Array.append l [| p |]

let meta_keys = [ IF.meta_nodes; IF.meta_roots; IF.meta_counts ]

(* Store keys the binary record format may write while encoding [value]:
   the dictionary entries of its not-yet-interned atoms plus the
   allocation cursor. Ids are dense, so the new entries occupy the next
   [n] ids regardless of interning order. *)
let dict_keys inv atoms =
  match IF.record_format inv with
  | `Syntax -> []
  | `Binary ->
    let dict = IF.dict inv in
    let fresh = List.filter (fun a -> Dict.find dict a = None) atoms in
    let base = Dict.size dict in
    Dict.count_key
    :: List.map Dict.atom_key fresh
    @ List.mapi (fun i _ -> Dict.id_key (base + i)) fresh

(* Runs [apply] under an undo-journal transaction covering [keys], so a
   crash or I/O error mid-update fully rolls back. On an in-place
   rollback the handle's in-memory state (counts, dictionary and list
   caches) is realigned with the store. *)
let in_txn ~journal inv keys apply =
  if not journal then apply ()
  else
    try Journal.with_txn (IF.store inv) ~keys apply
    with e ->
      (try IF.refresh inv with _ -> ());
      raise e

let add_value ?(journal = true) inv value =
  if Nested.Value.is_atom value then
    invalid_arg "Updater.add_value: record value must be a set";
  let record_id = IF.record_count inv in
  let first_id = IF.node_count inv in
  let tree =
    Nested.Tree.of_value (Nested.Tree.allocator_from first_id) ~record_id value
  in
  let atoms = Nested.Value.atom_universe value in
  let keys =
    (IF.record_key record_id :: List.map IF.atom_key atoms)
    @ meta_keys @ dict_keys inv atoms
  in
  in_txn ~journal inv keys @@ fun () ->
  (* New ids exceed all existing ids, so postings append in sorted order. *)
  let added_atoms = ref 0 in
  let new_postings = ref [] in
  Nested.Tree.iter
    (fun n ->
      let p = Posting.of_tree_node n in
      new_postings := p :: !new_postings;
      Array.iter
        (fun leaf ->
          added_atoms := !added_atoms + update_list inv leaf (fun l -> append_posting l p))
        n.Nested.Tree.leaves)
    tree;
  update_node_table inv (fun l ->
      Array.append l (Array.of_list (List.rev !new_postings)));
  IF.internal_put_record inv record_id value;
  (* metadata + in-handle state *)
  let roots = Array.append (IF.roots inv) [| tree.Nested.Tree.root |] in
  IF.internal_set_counts inv ~roots
    ~atom_count:(IF.atom_count inv + !added_atoms)
    ~node_count:(first_id + Nested.Tree.node_count tree);
  IF.internal_write_meta inv;
  record_id

let add_string ?journal inv s = add_value ?journal inv (Nested.Syntax.of_string s)

let is_deleted inv record_id =
  record_id >= 0
  && record_id < IF.record_count inv
  && IF.record_value_opt inv record_id = None

let delete_record ?(journal = true) inv record_id =
  if record_id < 0 || record_id >= IF.record_count inv then false
  else
    match IF.record_value_opt inv record_id with
    | None -> false
    | Some value ->
      let first_id = (IF.roots inv).(record_id) in
      let next_id =
        if record_id + 1 < IF.record_count inv then (IF.roots inv).(record_id + 1)
        else IF.node_count inv
      in
      let in_range p = p.Posting.node >= first_id && p.Posting.node < next_id in
      let atoms = Nested.Value.atom_universe value in
      let keys =
        IF.record_key record_id :: List.map IF.atom_key atoms @ meta_keys
      in
      in_txn ~journal inv keys @@ fun () ->
      let removed_atoms = ref 0 in
      List.iter
        (fun atom ->
          removed_atoms :=
            !removed_atoms
            - update_list inv atom (fun l -> Plist.filter (fun p -> not (in_range p)) l))
        atoms;
      update_node_table inv (fun l -> Plist.filter (fun p -> not (in_range p)) l);
      let store = IF.store inv in
      store.Storage.Kv.put (IF.record_key record_id) IF.deleted_marker;
      IF.internal_set_counts inv ~roots:(IF.roots inv)
        ~atom_count:(IF.atom_count inv - !removed_atoms)
        ~node_count:(IF.node_count inv);
      IF.internal_write_meta inv;
      true
