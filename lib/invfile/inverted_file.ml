exception Malformed of string

(* Store key layout. Atom keys get prefix 'a'; metadata lives under "m:".
   Record values live under "r:<decimal id>". *)
let atom_key a = "a" ^ a
let record_key id = "r:" ^ string_of_int id
let meta_roots = "m:roots"
let meta_counts = "m:counts"
let meta_topk = "m:topk"
let meta_nodes = "m:nodes"
let meta_recfmt = "m:recfmt"

type t = {
  store : Storage.Kv.t;
  dict : Dict.t;
  mutable roots : int array;
  mutable atom_count : int;
  mutable node_count : int;
  mutable all_nodes : Plist.t option;
  mutable all_nodes_idset : Plist.idset option;
  mutable cache : Cache.t option;
  lookup_stats : Storage.Io_stats.t;
}

let store t = t.store
let close t = t.store.Storage.Kv.close ()

let get_meta store key =
  match store.Storage.Kv.get key with
  | Some v -> v
  | None -> raise (Malformed (Printf.sprintf "missing metadata %S" key))

let read_meta store =
  let roots =
    try Storage.Codec.decode_int_array (get_meta store meta_roots)
    with Storage.Codec.Corrupt m -> raise (Malformed ("roots: " ^ m))
  in
  let atom_count, node_count =
    let r = Storage.Codec.reader (get_meta store meta_counts) in
    try
      let a = Storage.Codec.read_varint r in
      let n = Storage.Codec.read_varint r in
      (a, n)
    with Storage.Codec.Corrupt m -> raise (Malformed ("counts: " ^ m))
  in
  (roots, atom_count, node_count)

let open_store ?(lenient = false) store =
  (* roll back any transaction a crash left half-applied *)
  ignore (Journal.recover store);
  let roots, atom_count, node_count =
    if not lenient then read_meta store
    else
      (* damaged-store mode for repair: missing/corrupt metadata reads as
         an empty index; the record slots remain the ground truth *)
      try read_meta store with Malformed _ -> ([||], 0, 0)
  in
  {
    store;
    dict = Dict.create store;
    roots;
    atom_count;
    node_count;
    all_nodes = None;
    all_nodes_idset = None;
    cache = None;
    lookup_stats = Storage.Io_stats.create ();
  }

let lookup_from_store t a =
  match t.store.Storage.Kv.get (atom_key a) with
  | None -> Plist.empty
  | Some payload -> (
    try Plist.of_bytes payload
    with Storage.Codec.Corrupt m ->
      raise (Malformed (Printf.sprintf "postings of %S: %s" a m)))

let lookup t a =
  Storage.Io_stats.record_lookup t.lookup_stats;
  match t.cache with
  | None ->
    Storage.Io_stats.record_miss t.lookup_stats;
    lookup_from_store t a
  | Some c -> (
    match Cache.find c a with
    | Some l ->
      Storage.Io_stats.record_hit t.lookup_stats;
      l
    | None ->
      Storage.Io_stats.record_miss t.lookup_stats;
      let l = lookup_from_store t a in
      (* Dynamic policies admit new lists; Static ignores this. *)
      Cache.insert c a l;
      l)

(* Block probe for a batch of queries: load every distinct atom's list in
   one sorted pass and pin the results in the attached cache, so the
   per-query lookups that follow are all hits. Sorting the probe keys keeps
   the access pattern sequential on the B+tree backend. *)
let prefetch t atoms =
  match t.cache with
  | None -> 0
  | Some c ->
    let loaded = ref 0 in
    List.iter
      (fun a ->
        match Cache.find c a with
        | Some _ -> ()
        | None ->
          Storage.Io_stats.record_lookup t.lookup_stats;
          Storage.Io_stats.record_miss t.lookup_stats;
          Cache.preload c [ (a, lookup_from_store t a) ];
          incr loaded)
      (List.sort_uniq String.compare atoms);
    !loaded

let lookup_raw t a =
  Storage.Io_stats.record_lookup t.lookup_stats;
  Storage.Io_stats.record_miss t.lookup_stats;
  t.store.Storage.Kv.get (atom_key a)

let mem_atom t a = Storage.Kv.mem t.store (atom_key a)

let atoms_with_prefix t prefix =
  let lo = atom_key prefix in
  let is_prefixed key =
    String.length key >= String.length lo
    && String.sub key 0 (String.length lo) = lo
  in
  let strip key = String.sub key 1 (String.length key - 1) in
  (* ordered range scan when the backend supports it; '\xff' caps the range
     (atom bytes below 0xff; a pathological 0xff-atom falls back below) *)
  match Storage.Btree_store.range t.store ~lo ~hi:(lo ^ "\xff\xff\xff\xff") with
  | pairs -> List.filter_map (fun (k, _) -> if is_prefixed k then Some (strip k) else None) pairs
  | exception Invalid_argument _ ->
    let out = ref [] in
    t.store.Storage.Kv.iter (fun k _ -> if is_prefixed k then out := strip k :: !out);
    List.sort String.compare !out

(* The collection's list codec: every payload is written with the same
   codec, so the node table (or, without one, any atom list) tells us
   which. Fresh/empty stores read as Blocked, the current default. *)
let list_codec t =
  match t.store.Storage.Kv.get meta_nodes with
  | Some payload -> Plist.codec_of_bytes payload
  | None ->
    let codec = ref Plist.Blocked in
    (try
       t.store.Storage.Kv.iter (fun key payload ->
           if String.length key > 0 && key.[0] = 'a' then begin
             codec := Plist.codec_of_bytes payload;
             raise Exit
           end)
     with Exit -> ());
    !codec

let all_nodes t =
  match t.all_nodes with
  | Some l -> l
  | None ->
    let l =
      match t.store.Storage.Kv.get meta_nodes with
      | None -> raise (Malformed "node table not built")
      | Some payload -> Plist.of_bytes payload
    in
    t.all_nodes <- Some l;
    l

let all_nodes_idset t =
  match t.all_nodes_idset with
  | Some h -> h
  | None ->
    let h = Plist.idset_of_postings (all_nodes t) in
    t.all_nodes_idset <- Some h;
    h

let record_count t = Array.length t.roots
let atom_count t = t.atom_count
let node_count t = t.node_count
let roots t = t.roots

(* Index of the last root <= id. *)
let root_index t id =
  let n = Array.length t.roots in
  let rec bsearch lo hi =
    (* invariant: roots.(lo) <= id, roots.(hi) > id (hi may be n) *)
    if hi - lo <= 1 then lo
    else
      let mid = (lo + hi) / 2 in
      if t.roots.(mid) <= id then bsearch mid hi else bsearch lo mid
  in
  if n = 0 || id < t.roots.(0) then raise Not_found else bsearch 0 n

let root_of_node t id = t.roots.(root_index t id)

let is_root t id =
  try root_of_node t id = id with Not_found -> false

let record_of_root t id =
  let i = root_index t id in
  if t.roots.(i) = id then i else raise Not_found

let deleted_marker = "\x00deleted"

(* Record payloads: tagged 'S' (syntax) or 'B' (binary, dictionary-coded)
   via Value_codec; payloads written by older builds carry no tag and are
   parsed as raw literal syntax. *)
let decode_record t s =
  match Value_codec.decode t.dict s with
  | v -> v
  | exception Storage.Codec.Corrupt _ when String.length s > 0 && (s.[0] = '{' || s.[0] = '"') ->
    Nested.Syntax.of_string s

let record_format t =
  match t.store.Storage.Kv.get meta_recfmt with
  | Some "B" -> `Binary
  | Some _ | None -> `Syntax

let encode_record t v =
  match record_format t with
  | `Binary -> Value_codec.encode t.dict v
  | `Syntax -> Value_codec.encode_syntax v

let internal_put_record t record_id v =
  t.store.Storage.Kv.put (record_key record_id) (encode_record t v)

let dict t = t.dict

let record_value t record_id =
  match t.store.Storage.Kv.get (record_key record_id) with
  | None -> raise (Malformed (Printf.sprintf "record %d not stored" record_id))
  | Some s when s = deleted_marker ->
    raise (Malformed (Printf.sprintf "record %d was deleted" record_id))
  | Some s -> decode_record t s

let record_value_opt t record_id =
  match t.store.Storage.Kv.get (record_key record_id) with
  | None -> raise (Malformed (Printf.sprintf "record %d not stored" record_id))
  | Some s when s = deleted_marker -> None
  | Some s -> Some (decode_record t s)

let iter_records t f =
  for i = 0 to record_count t - 1 do
    match record_value_opt t i with
    | Some v -> f i v
    | None -> ()
  done

let top_atoms t =
  match t.store.Storage.Kv.get meta_topk with
  | None -> []
  | Some payload ->
    let r = Storage.Codec.reader payload in
    let n = Storage.Codec.read_varint r in
    let out = ref [] in
    for _ = 1 to n do
      let a = Storage.Codec.read_string r in
      let c = Storage.Codec.read_varint r in
      out := (a, c) :: !out
    done;
    List.rev !out

let attach_cache t c =
  t.cache <- Some c;
  if Cache.policy c = Cache.Static then begin
    let budget = Cache.capacity c in
    let hot = List.filteri (fun i _ -> i < budget) (top_atoms t) in
    Cache.preload c (List.map (fun (a, _) -> (a, lookup_from_store t a)) hot)
  end

let detach_cache t = t.cache <- None
let cache t = t.cache
let lookup_stats t = t.lookup_stats

let internal_set_counts t ~roots ~atom_count ~node_count =
  t.roots <- roots;
  t.atom_count <- atom_count;
  t.node_count <- node_count

let internal_invalidate_atom t a =
  match t.cache with None -> () | Some c -> Cache.remove c a

let internal_reset_node_table t =
  t.all_nodes <- None;
  t.all_nodes_idset <- None

let internal_write_meta t =
  t.store.Storage.Kv.put meta_roots (Storage.Codec.encode_int_array t.roots);
  let w = Storage.Codec.writer () in
  Storage.Codec.write_varint w t.atom_count;
  Storage.Codec.write_varint w t.node_count;
  t.store.Storage.Kv.put meta_counts (Storage.Codec.contents w)

let refresh t =
  let roots, atom_count, node_count = read_meta t.store in
  t.roots <- roots;
  t.atom_count <- atom_count;
  t.node_count <- node_count;
  t.all_nodes <- None;
  t.all_nodes_idset <- None;
  Dict.reset t.dict;
  match t.cache with None -> () | Some c -> Cache.clear c

let record_tree t record_id =
  let first_id = t.roots.(record_id) in
  let value = record_value t record_id in
  Nested.Tree.of_value (Nested.Tree.allocator_from first_id) ~record_id value

let subtree_value t id =
  let root = root_of_node t id in
  let tree = record_tree t (record_of_root t root) in
  Nested.Tree.subtree_value tree id
