(** Persistent atom dictionary.

    Bidirectional atom ↔ id mapping stored in the collection's store
    (keys ["dA:"atom] and ["dI:"id], count under ["m:dict"]), with both
    directions cached in memory after first use. Backs the binary record
    format of {!Value_codec}: records reference atoms by small integer ids
    instead of repeating their bytes. Ids are dense, assigned in first-use
    order, and never reclaimed. *)

type t

val create : Storage.Kv.t -> t
(** Attaches to a store (existing mappings are discovered lazily). *)

val intern : t -> string -> int
(** The id of an atom, allocating one if new (persisted immediately). *)

val find : t -> string -> int option
(** The id of an atom, without allocating. *)

val atom_of_id : t -> int -> string
(** @raise Not_found for unallocated ids. *)

val size : t -> int
(** Number of interned atoms. *)

val reset : t -> unit
(** Drops the in-memory caches; mappings are re-read from the store on
    demand. Required after a transaction rollback rewrites dict keys. *)

(** {1 Store keys} — exposed so {!Journal} transactions can snapshot the
    dictionary entries an update may write. *)

val atom_key : string -> string
val id_key : int -> string
val count_key : string
