type node = {
  atom : string;
  children : (string, node) Hashtbl.t;
  mutable endpoints : int list;
  mutable subtree : int;
}

type t = { root : node; mutable node_count : int }

let mk_node atom =
  { atom; children = Hashtbl.create 4; endpoints = []; subtree = 0 }

let create () = { root = mk_node ""; node_count = 0 }
let root t = t.root
let node_count t = t.node_count

let insert t qi atoms =
  if atoms = [] then invalid_arg "Prefix_tree.insert: empty atom sequence";
  let rec go node = function
    | [] -> node.endpoints <- qi :: node.endpoints
    | a :: rest ->
      let child =
        match Hashtbl.find_opt node.children a with
        | Some c -> c
        | None ->
          let c = mk_node a in
          Hashtbl.add node.children a c;
          t.node_count <- t.node_count + 1;
          c
      in
      child.subtree <- child.subtree + 1;
      go child rest
  in
  t.root.subtree <- t.root.subtree + 1;
  go t.root atoms

let sorted_children node =
  Hashtbl.fold (fun _ c acc -> c :: acc) node.children []
  |> List.sort (fun a b -> String.compare a.atom b.atom)

let endpoints_below node =
  let rec go acc n =
    let acc = List.rev_append n.endpoints acc in
    Hashtbl.fold (fun _ c acc -> go acc c) n.children acc
  in
  List.sort Int.compare (go [] node)
