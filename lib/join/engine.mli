(** The set-containment join engine: [R ⋉⊆ S] for a whole outer collection
    in one pass (PRETTI with an adaptive depth limit — Bouros et al., "Set
    Containment Join Revisited", PAPERS.md).

    Each outer set's atoms are sorted by ascending posting-list length
    (rarest — most selective — first, ties by atom) and threaded into a
    {!Prefix_tree}; a single DFS then computes the record-level candidate
    intersection of every prefix {e once}, shared by all queries passing
    through the node, galloping over per-atom {e root lists} (posting
    lists lifted from nodes to sorted arrays of the records containing
    them — atoms of a nested set may occur at different nodes of one
    record, so node-level intersection would be unsound at the record
    level). A query naming an atom absent from the collection is rejected
    during the build by a key-existence probe, before any list is
    decoded.

    Tree expansion stops early, LIMIT+-style, when a node's candidate list
    is small, its sharing factor drops below a threshold, or the depth cap
    is reached; the queries below a cut finish by per-candidate
    verification with the {!Containment.Embed} oracle — the same check
    {!Containment.Engine}'s [~verify] path uses, so a cut at any point is
    exact. Configurations the prefix filter is not sound for (any join
    other than containment, [Anywhere] scope, wildcard patterns, atomless
    queries) fall back to the per-query engine loop, keeping the contract
    below for every configuration.

    Contract: [join inv values] returns exactly the pairs the naive loop
    [Containment.Engine.containment_join] returns — the qcheck differential
    suite and the bench E24 oracle gate pin this. *)

type config = {
  engine : Containment.Engine.config;
      (** semantics of each (outer, inner) test, and the fallback path's
          engine configuration *)
  max_depth : int;
      (** hard cap on prefix-tree expansion depth; [<= 0] means unlimited *)
  cut_candidates : int;
      (** LIMIT+ candidate threshold: a node whose candidate list has at
          most this many records is not expanded further — verification of
          so few candidates is cheaper than more intersections *)
  cut_fanout : int;
      (** LIMIT+ sharing threshold: a node serving fewer than this many
          queries is not expanded further (1 = never cut by fanout) *)
}

val default : config
(** {!Containment.Engine.default} semantics, [max_depth = 32],
    [cut_candidates = 8], [cut_fanout = 1]. *)

type stats = {
  outer : int;  (** outer queries processed *)
  fast_path : int;
      (** queries answered through the prefix tree (including
          preflight-rejected ones, which never reach it) *)
  preflight_rejected : int;
      (** fast-path queries dismissed with zero matches because an atom
          does not occur anywhere in the collection *)
  fallback : int;  (** queries answered by the per-query engine loop *)
  tree_nodes : int;  (** prefix-tree nodes built *)
  nodes_expanded : int;  (** nodes whose candidate list was computed *)
  intersections_shared : int;
      (** intersections saved by prefix sharing: for each expanded node
          serving [k] queries, the naive loop would compute its
          intersection [k] times — [k - 1] are shared *)
  intersections_recomputed : int;
      (** root-list intersections actually performed (depth ≥ 2 nodes;
          depth-1 candidate lists are plain lookups) *)
  limit_cuts : int;  (** subtrees finished early by a LIMIT+ cut *)
  candidates_checked : int;  (** per-candidate oracle verifications run *)
  pairs : int;  (** result pairs emitted *)
}

type result = { pairs : (int * int) list; stats : stats }

val join :
  ?config:config -> ?trace:Obs.Trace.t -> Invfile.Inverted_file.t ->
  Nested.Value.t list -> result
(** [join inv values] evaluates the containment join of the outer
    collection [values] (indexed by position) against the records of
    [inv]. Pairs are [(outer index, record id)], strictly ascending by
    outer index then record id — deterministic for a given store and
    input order.

    When [trace] is given, three phase spans are recorded into it:
    [build-tree] (queries routed, distinct atoms fetched, tree size),
    [intersect] (nodes expanded, intersections shared vs recomputed,
    LIMIT+ cuts) and [verify] (candidates checked, pairs kept, fallback
    queries run) — each with I/O deltas, mirroring
    {!Containment.Engine.query}'s phase tree.
    @raise Invalid_argument if an outer value is an atom.
    @raise Containment.Semantics.Unsupported as the engine does for the
    configured semantics. *)

val explain :
  ?config:config -> ?target:string -> Invfile.Inverted_file.t ->
  Nested.Value.t list -> Obs.Explain.t
(** The join-side counterpart of
    {!Containment.Engine.explain_profile}: runs the join once under an
    internal trace and reports the outer collection's distinct atoms
    (rarest first) plus the three phases — [build-tree] (est: every
    outer query takes the fast path), [intersect] (est: every tree node
    is expanded), [verify] (est: every checked candidate survives) —
    with measured counts read back from the run's own trace, so they
    reconcile exactly with an independent traced [join]. [target]
    defaults to ["join"]. *)

val naive :
  ?config:Containment.Engine.config -> Invfile.Inverted_file.t ->
  Nested.Value.t list -> (int * int) list
(** The baseline: one {!Containment.Engine.query} per outer value
    ({!Containment.Engine.containment_join}), flattened to the same
    sorted pair form — the differential oracle for {!join}. *)

val group : outer:int -> (int * int) list -> int list list
(** [group ~outer pairs] splits sorted pairs into one ascending record-id
    list per outer index, [outer] lists in total (empty lists for outer
    queries with no matches) — the shape the wire payload and the shard
    router work in. *)

val register : Obs.Metrics.t -> unit
(** Publishes the process-wide join totals (joins run, nodes expanded,
    intersections shared/recomputed, pairs emitted, fallback queries,
    LIMIT+ cuts) as registry counters under [nscq_join_*]. *)
