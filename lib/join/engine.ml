module IF = Invfile.Inverted_file
module Plist = Invfile.Plist
module Posting = Invfile.Posting
module E = Containment.Engine
module Sem = Containment.Semantics
module Embed = Containment.Embed
module Query = Containment.Query

let src = Logs.Src.create "nscq.join" ~doc:"set-containment join engine"

module Log = (val Logs.src_log src : Logs.LOG)

type config = {
  engine : E.config;
  max_depth : int;
  cut_candidates : int;
  cut_fanout : int;
}

let default =
  { engine = E.default; max_depth = 32; cut_candidates = 8; cut_fanout = 1 }

type stats = {
  outer : int;
  fast_path : int;
  preflight_rejected : int;
  fallback : int;
  tree_nodes : int;
  nodes_expanded : int;
  intersections_shared : int;
  intersections_recomputed : int;
  limit_cuts : int;
  candidates_checked : int;
  pairs : int;
}

type result = { pairs : (int * int) list; stats : stats }

(* --- process-wide totals (metrics registry) --- *)

let totals_mu = Lockdep.create "join.totals"

type totals = {
  mutable t_joins : int;
  mutable t_nodes_expanded : int;
  mutable t_shared : int;
  mutable t_recomputed : int;
  mutable t_cuts : int;
  mutable t_pairs : int;
  mutable t_fallback : int;
}

let totals =
  {
    t_joins = 0;
    t_nodes_expanded = 0;
    t_shared = 0;
    t_recomputed = 0;
    t_cuts = 0;
    t_pairs = 0;
    t_fallback = 0;
  }
[@@lint.guarded_by totals_mu]

let totals_race = Racesan.register ~name:"join.totals" ~lock:totals_mu

let record_totals s =
  Lockdep.protect totals_mu (fun () ->
      Racesan.check totals_race;
      totals.t_joins <- totals.t_joins + 1;
      totals.t_nodes_expanded <- totals.t_nodes_expanded + s.nodes_expanded;
      totals.t_shared <- totals.t_shared + s.intersections_shared;
      totals.t_recomputed <- totals.t_recomputed + s.intersections_recomputed;
      totals.t_cuts <- totals.t_cuts + s.limit_cuts;
      totals.t_pairs <- totals.t_pairs + s.pairs;
      totals.t_fallback <- totals.t_fallback + s.fallback)

let register reg =
  let module M = Obs.Metrics in
  let cb ?help name f =
    M.register_callback reg ?help ~kind:`Counter name (fun () ->
        float_of_int
          (Lockdep.protect totals_mu (fun () ->
               Racesan.check totals_race;
               f ())))
  in
  cb "nscq_join_total" (fun () -> totals.t_joins)
    ~help:"Containment joins executed";
  cb "nscq_join_nodes_expanded_total" (fun () -> totals.t_nodes_expanded)
    ~help:"Prefix-tree nodes whose candidate intersection was computed";
  cb "nscq_join_intersections_shared_total" (fun () -> totals.t_shared)
    ~help:"Prefix intersections reused by a sibling query instead of redone";
  cb "nscq_join_intersections_recomputed_total" (fun () -> totals.t_recomputed)
    ~help:"Posting-list intersections actually performed";
  cb "nscq_join_limit_cuts_total" (fun () -> totals.t_cuts)
    ~help:"Subtrees finished early by a LIMIT+ depth/candidate/fanout cut";
  cb "nscq_join_pairs_total" (fun () -> totals.t_pairs)
    ~help:"Result pairs emitted by joins";
  cb "nscq_join_fallback_queries_total" (fun () -> totals.t_fallback)
    ~help:"Outer queries answered by the per-query engine fallback"

(* --- tracing helpers (cf. Engine) --- *)

let tspan trace name f =
  match trace with None -> f () | Some t -> Obs.Trace.span t name f

let tattr trace k v =
  match trace with None -> () | Some t -> Obs.Trace.add_attr t k v

type io_snap = { lookups : int; hits : int; misses : int }

let io_snap inv =
  let l = IF.lookup_stats inv in
  {
    lookups = Storage.Io_stats.lookups l;
    hits = Storage.Io_stats.hits l;
    misses = Storage.Io_stats.misses l;
  }

let io_attrs trace before inv =
  match trace with
  | None -> ()
  | Some t ->
    let now = io_snap inv in
    let put k v = Obs.Trace.add_attr t k (string_of_int v) in
    put "lookups" (now.lookups - before.lookups);
    put "hits" (now.hits - before.hits);
    put "misses" (now.misses - before.misses)

(* --- per-atom root lists ---

   Postings are per *node* (one per internal node with a leaf labelled by
   the atom), but the join's unit of answer is the *record*: the atoms of
   one outer set may occur at different nodes of the same record, so
   intersecting node-level lists would be unsound at the record level.
   Each atom's list is therefore lifted once to its sorted, deduplicated
   array of record roots and memoized — every tree node touching the atom
   reuses the lift. Plain int arrays, not postings: candidate sets are
   intersected far more often than they are built, and an int compare per
   step beats chasing posting records. *)

(* Confined to one [join] call on one domain (Router gives each shard its
   own call), so unsynchronized on purpose: the build phase keys every
   atom of every query through here, and even an uncontended lock acquire
   per probe is measurable. The shared mutable state that outlives a call
   — [totals] — stays under [totals_mu]. *)
type memo = {
  node_table : (string, int array) Hashtbl.t;
      (* atom -> ascending node ids carrying it as a direct leaf *)
  root_table : (string, int array) Hashtbl.t;
      (* atom -> ascending record-root ids whose subtree carries it *)
  present : (string, bool) Hashtbl.t;  (* memoized key-existence probes *)
  roots : int array;  (* ascending record-root node ids *)
}

let make_memo inv =
  {
    node_table = Hashtbl.create 256;
    root_table = Hashtbl.create 256;
    present = Hashtbl.create 256;
    roots = IF.roots inv;
  }

let atom_present inv memo atom =
  match Hashtbl.find_opt memo.present atom with
  | Some b -> b
  | None ->
    let b = IF.mem_atom inv atom in
    Hashtbl.add memo.present atom b;
    b

let node_list inv memo atom =
  match Hashtbl.find_opt memo.node_table atom with
  | Some l -> l
  | None ->
    let pl = IF.lookup inv atom in
    let l = Array.map (fun (p : Posting.t) -> p.Posting.node) pl in
    Hashtbl.add memo.node_table atom l;
    l

(* Greatest index with [roots.(i) <= id], given the invariant
   [roots.(lo) <= id]: gallop forward from [lo], then bisect. Postings
   ascend by node id, so successive calls pass a non-decreasing cursor
   and the whole lift is near-linear. *)
let root_index_from roots lo id =
  let n = Array.length roots in
  if lo + 1 >= n || roots.(lo + 1) > id then lo
  else begin
    let lo = ref (lo + 1) and step = ref 1 in
    let hi = ref (!lo + 1) in
    while !hi < n && roots.(!hi) <= id do
      lo := !hi;
      hi := !hi + !step;
      step := !step * 2
    done;
    let hi = ref (min !hi n) in
    while !hi - !lo > 1 do
      let mid = (!lo + !hi) / 2 in
      if roots.(mid) <= id then lo := mid else hi := mid
    done;
    !lo
  end

let root_list inv memo atom =
  match Hashtbl.find_opt memo.root_table atom with
  | Some l -> l
  | None ->
    (* derive from the node list — one storage decode per distinct atom
       even when flat and nested queries share it *)
    let nl = node_list inv memo atom in
    let m = Array.length nl in
    let l =
      if m = 0 then [||]
      else begin
        (* node ids ascend and records own contiguous id ranges, so the
           mapped roots ascend too — dedupe in one pass *)
        let buf = Array.make m 0 in
        let k = ref 0 and cursor = ref 0 and last = ref (-1) in
        Array.iter
          (fun id ->
            cursor := root_index_from memo.roots !cursor id;
            let r = memo.roots.(!cursor) in
            if r <> !last then begin
              buf.(!k) <- r;
              incr k;
              last := r
            end)
          nl;
        Array.sub buf 0 !k
      end
    in
    Hashtbl.add memo.root_table atom l;
    l

(* Intersection of two sorted int arrays: walk the smaller side, gallop
   the larger (cf. Plist.inter's kernel) — near-linear for like sizes,
   logarithmic per element once candidates are much smaller than the
   incoming atom list, which rarest-first ordering makes the common
   case. *)
let inter_sorted a b =
  let a, b = if Array.length a <= Array.length b then (a, b) else (b, a) in
  let la = Array.length a and lb = Array.length b in
  if la = 0 || lb = 0 then [||]
  else begin
    let out = Array.make la 0 in
    let k = ref 0 and j = ref 0 in
    (try
       for i = 0 to la - 1 do
         let x = a.(i) in
         if !j >= lb then raise Exit;
         if b.(!j) < x then begin
           (* gallop to a window with b.(lo) < x <= b.(hi), then bisect *)
           let lo = ref !j and step = ref 1 in
           let hi = ref (!lo + 1) in
           while !hi < lb && b.(!hi) < x do
             lo := !hi;
             hi := !hi + !step;
             step := !step * 2
           done;
           let hi = ref (min !hi lb) in
           while !hi - !lo > 1 do
             let mid = (!lo + !hi) / 2 in
             if b.(mid) < x then lo := mid else hi := mid
           done;
           j := !hi
         end;
         if !j < lb && b.(!j) = x then begin
           out.(!k) <- x;
           incr k;
           incr j
         end
       done
     with Exit -> ());
    Array.sub out 0 !k
  end

let mem_sorted a x =
  let lo = ref 0 and hi = ref (Array.length a) in
  (* invariant: a.(lo-1) < x <= a.(hi) conceptually *)
  while !hi - !lo > 0 do
    let mid = (!lo + !hi) / 2 in
    if a.(mid) < x then lo := mid + 1
    else if a.(mid) > x then hi := mid
    else begin
      lo := mid;
      hi := mid
    end
  done;
  !lo < Array.length a && a.(!lo) = x

(* --- eligibility ---

   The prefix tree is a record-level *atom* filter: sound only when every
   query atom must occur in a matching record, i.e. under the containment
   join (any embedding — even Homeo_full keeps leaf values inside the
   image's subtree), at root scope, without wildcard patterns. Everything
   else — and atomless queries, whose candidate set is the whole
   collection — takes the per-query engine loop, so the contract
   [join ≡ naive loop] holds for every configuration. *)

let config_fast_path (ec : E.config) =
  (match ec.E.scope with E.Roots -> true | E.Anywhere -> false)
  && match ec.E.join with
     | Sem.Containment -> true
     | Sem.Equality | Sem.Superset | Sem.Overlap _ | Sem.Similarity _ -> false

let query_fast_path (ec : E.config) atoms =
  (match atoms with [] -> false | _ :: _ -> true)
  && not (ec.E.wildcards && List.exists Sem.is_pattern atoms)

(* --- the join --- *)

let pair_compare (o1, r1) (o2, r2) =
  if o1 <> o2 then Int.compare o1 o2 else Int.compare r1 r2

let join ?(config = default) ?trace inv values =
  let ec = config.engine in
  let vs = Array.of_list values in
  (* compile every outer value up front: verification needs the prepared
     query, and an atom outer value must raise exactly as Engine.query
     does *)
  let qs = Array.map Query.of_value vs in
  let n_outer = Array.length vs in
  let memo = make_memo inv in
  (* Two trees, one per candidate-list kind. A flat query (one query
     node) intersecting *node*-level lists — all of its atoms as direct
     leaves of one root node — is exactly flat containment under a
     child-preserving embedding, so the tree's answer is final: no oracle,
     no record decode. Under Homeo_full a flat query instead needs its
     atoms anywhere below the root, which is exactly the *root*-list
     intersection — also final. Nested queries intersect root lists as a
     necessary filter and finish with the Embed oracle. *)
  let node_tree = Prefix_tree.create () in
  let root_tree = Prefix_tree.create () in
  let flat_exact =
    Array.map
      (fun (q : Query.t) ->
        match q.Query.children with [] -> true | _ :: _ -> false)
      qs
  in
  let full_homeo =
    match ec.E.embedding with
    | Sem.Homeo_full -> true
    | Sem.Hom | Sem.Iso | Sem.Homeo -> false
  in
  let sorted_atoms = Array.make (max n_outer 1) [||] in
  let fallback = ref [] in
  let fast = ref 0 and preflighted = ref 0 in
  (* Phase 1: fetch each distinct atom's list once, sort each query's
     atoms rarest-first (global order: ascending list length, ties by
     atom), thread into its tree. A query naming an atom the collection
     has nowhere at all cannot match any record under containment — key
     existence is far cheaper than decoding even one posting list, so
     such queries end here (cf. Engine's preflight). *)
  tspan trace "build-tree" (fun () ->
      let io0 = io_snap inv in
      let use_fast = config_fast_path ec in
      Array.iteri
        (fun qi v ->
          let atoms = Nested.Value.atom_universe v in
          if use_fast && query_fast_path ec atoms then begin
            incr fast;
            if List.for_all (atom_present inv memo) atoms then begin
              let in_node_tree = flat_exact.(qi) && not full_homeo in
              let length_of a =
                if in_node_tree then Array.length (node_list inv memo a)
                else Array.length (root_list inv memo a)
              in
              let keyed = List.map (fun a -> (length_of a, a)) atoms in
              let sorted =
                List.sort
                  (fun (la, aa) (lb, ab) ->
                    if la <> lb then Int.compare la lb
                    else String.compare aa ab)
                  keyed
                |> List.map snd
              in
              sorted_atoms.(qi) <- Array.of_list sorted;
              Prefix_tree.insert
                (if in_node_tree then node_tree else root_tree)
                qi sorted
            end
            else incr preflighted
          end
          else fallback := qi :: !fallback)
        vs;
      tattr trace "outer" (string_of_int n_outer);
      tattr trace "fast_path" (string_of_int !fast);
      tattr trace "preflight_rejected" (string_of_int !preflighted);
      tattr trace "fallback" (string_of_int (List.length !fallback));
      tattr trace "distinct_atoms"
        (string_of_int
           (Hashtbl.length memo.node_table + Hashtbl.length memo.root_table));
      tattr trace "node_tree_nodes"
        (string_of_int (Prefix_tree.node_count node_tree));
      tattr trace "root_tree_nodes"
        (string_of_int (Prefix_tree.node_count root_tree));
      io_attrs trace io0 inv);
  let fallback = List.rev !fallback in
  (* Phase 2: one DFS per tree. A node's candidate list is the
     intersection of its prefix's lists, computed once and shared by
     every query in its subtree; only the current path's lists are live.
     Expansion stops (LIMIT+) at the depth cap, when candidates are few,
     or when sharing drops below the fanout threshold — the queries below
     finish on the candidates accumulated so far, each emission recording
     how many of its atoms the candidate list already accounts for. *)
  let pending_node = ref [] and pending_root = ref [] in
  let nodes_expanded = ref 0
  and shared = ref 0
  and recomputed = ref 0
  and cuts = ref 0 in
  tspan trace "intersect" (fun () ->
      let io0 = io_snap inv in
      let walk tree list_of init pending =
        let emit qi cand depth = pending := (qi, cand, depth) :: !pending in
        let cut_here depth (n : Prefix_tree.node) cand =
          (config.max_depth > 0 && depth >= config.max_depth)
          || Array.length cand <= config.cut_candidates
          || n.Prefix_tree.subtree < config.cut_fanout
        in
        let rec visit depth cand (n : Prefix_tree.node) =
          List.iter (fun qi -> emit qi cand depth) n.Prefix_tree.endpoints;
          match Prefix_tree.sorted_children n with
          | [] -> ()
          | kids ->
            if Array.length cand = 0 then
              (* empty prefix: every query below has no matches *)
              ()
            else if cut_here depth n cand then begin
              incr cuts;
              List.iter
                (fun kid ->
                  List.iter
                    (fun qi -> emit qi cand depth)
                    (Prefix_tree.endpoints_below kid))
                kids
            end
            else
              List.iter
                (fun (kid : Prefix_tree.node) ->
                  let l = list_of kid.Prefix_tree.atom in
                  incr nodes_expanded;
                  incr recomputed;
                  shared := !shared + (kid.Prefix_tree.subtree - 1);
                  visit (depth + 1) (inter_sorted cand l) kid)
                kids
        in
        List.iter
          (fun (kid : Prefix_tree.node) ->
            (* depth 1: the candidate list is the atom's own list — a
               lookup, not an intersection *)
            let cand = init (list_of kid.Prefix_tree.atom) in
            incr nodes_expanded;
            shared := !shared + (kid.Prefix_tree.subtree - 1);
            visit 1 cand kid)
          (Prefix_tree.sorted_children (Prefix_tree.root tree))
      in
      (* node-level candidates live at record roots from depth 1 on:
         restricting the rarest atom's list up front keeps every later
         intersection within root nodes *)
      walk node_tree (node_list inv memo)
        (fun l -> inter_sorted l memo.roots)
        pending_node;
      walk root_tree (root_list inv memo) (fun l -> l) pending_root;
      tattr trace "nodes_expanded" (string_of_int !nodes_expanded);
      tattr trace "intersections_shared" (string_of_int !shared);
      tattr trace "intersections_recomputed" (string_of_int !recomputed);
      tattr trace "limit_cuts" (string_of_int !cuts);
      io_attrs trace io0 inv);
  (* Phase 3: finish what the trees could not. A flat query cut short
     finishes by probing each remaining (hot) atom's list — one binary
     search per atom, no record decode; a flat query whose whole atom
     sequence was intersected emits its candidates as they stand. Nested
     queries check each candidate with the Embed oracle — the same check
     Engine's ~verify path runs, so a cut at any point is exact — and the
     fallback queries run through the engine itself. *)
  (* each query is routed to exactly one finishing path, which emits its
     record ids in one run — per-query buckets make the final pair list a
     concatenation, not a global sort over every pair *)
  let results = Array.make (max n_outer 1) [] and checked = ref 0 in
  let emit_pair qi rid = results.(qi) <- rid :: results.(qi) in
  tspan trace "verify" (fun () ->
      let io0 = io_snap inv in
      let finish_flat list_of (qi, cand, consumed) =
        let atoms = sorted_atoms.(qi) in
        let n_atoms = Array.length atoms in
        if consumed >= n_atoms then
          Array.iter
            (fun nd -> emit_pair qi (IF.record_of_root inv nd))
            cand
        else begin
          (* fetch each remaining atom's list once, not once per candidate *)
          let rest =
            Array.init (n_atoms - consumed) (fun i ->
                list_of atoms.(consumed + i))
          in
          let n_rest = Array.length rest in
          Array.iter
            (fun nd ->
              incr checked;
              let ok = ref true and i = ref 0 in
              while !ok && !i < n_rest do
                if not (mem_sorted rest.(!i) nd) then ok := false;
                incr i
              done;
              if !ok then emit_pair qi (IF.record_of_root inv nd))
            cand
        end
      in
      List.iter (finish_flat (node_list inv memo)) !pending_node;
      (* decode each candidate record once per join, not once per check —
         hot records are shared by many queries *)
      let trees : (int, Nested.Tree.t) Hashtbl.t = Hashtbl.create 64 in
      let tree_of rid =
        match Hashtbl.find_opt trees rid with
        | Some t -> t
        | None ->
          let t = IF.record_tree inv rid in
          Hashtbl.add trees rid t;
          t
      in
      List.iter
        (fun ((qi, cand, _) as entry) ->
          if flat_exact.(qi) then finish_flat (root_list inv memo) entry
          else begin
            let checker =
              Embed.prepare ~wildcards:ec.E.wildcards ec.E.join
                ec.E.embedding qs.(qi)
            in
            Array.iter
              (fun root ->
                incr checked;
                let rid = IF.record_of_root inv root in
                if Embed.run checker ~s:(tree_of rid) root then
                  emit_pair qi rid)
              cand
          end)
        !pending_root;
      List.iter
        (fun qi ->
          let r = E.query ~config:ec inv vs.(qi) in
          List.iter (fun rid -> emit_pair qi rid) r.E.records)
        fallback;
      tattr trace "candidates_checked" (string_of_int !checked);
      tattr trace "fallback_queries"
        (string_of_int (List.length fallback));
      tattr trace "pairs"
        (string_of_int
           (Array.fold_left (fun n l -> n + List.length l) 0 results));
      io_attrs trace io0 inv);
  (* buckets hold each query's ids newest-first; a descending sort is
     near-linear on that and shields against any non-monotone emitter *)
  let n_pairs = ref 0 in
  let pairs =
    let acc = ref [] in
    for qi = n_outer - 1 downto 0 do
      List.iter
        (fun rid ->
          incr n_pairs;
          acc := (qi, rid) :: !acc)
        (List.sort (fun a b -> Int.compare b a) results.(qi))
    done;
    !acc
  in
  let stats =
    {
      outer = n_outer;
      fast_path = !fast;
      preflight_rejected = !preflighted;
      fallback = List.length fallback;
      tree_nodes =
        Prefix_tree.node_count node_tree + Prefix_tree.node_count root_tree;
      nodes_expanded = !nodes_expanded;
      intersections_shared = !shared;
      intersections_recomputed = !recomputed;
      limit_cuts = !cuts;
      candidates_checked = !checked;
      pairs = !n_pairs;
    }
  in
  record_totals stats;
  Log.debug (fun m ->
      m
        "join: %d outer (%d fast, %d fallback), %d tree nodes, %d expanded, \
         %d shared, %d cuts, %d pairs"
        stats.outer stats.fast_path stats.fallback stats.tree_nodes
        stats.nodes_expanded stats.intersections_shared stats.limit_cuts
        stats.pairs);
  { pairs; stats }

(* --- explain (Obs.Explain) ---

   The join's profile mirrors the per-query engine's: run once under an
   internal trace, then read the measured counts back out of the phase
   spans themselves, so the numbers reconcile exactly with what an
   independent traced run would report. Estimates are the static upper
   bounds the adaptive cuts work against: every outer query could take
   the fast path, every tree node could be expanded, and every checked
   candidate could survive. *)

let explain ?(config = default) ?(target = "join") inv values =
  let trace = Obs.Trace.create "explain-join" in
  let result = join ~config ~trace inv values in
  let root = Obs.Trace.finish trace in
  let geti name (s : Obs.Trace.span) =
    match List.assoc_opt name s.Obs.Trace.attrs with
    | Some v -> ( match int_of_string_opt v with Some i -> i | None -> -1)
    | None -> -1
  in
  let note name s =
    match List.assoc_opt name s.Obs.Trace.attrs with
    | Some v -> [ (name, v) ]
    | None -> []
  in
  let n_outer = List.length values in
  (* the tree-size attrs land on build-tree — intersect's static bound *)
  let tree_nodes =
    match
      List.find_opt
        (fun (s : Obs.Trace.span) -> String.equal s.Obs.Trace.name "build-tree")
        root.Obs.Trace.children
    with
    | None -> -1
    | Some bt ->
      let n = geti "node_tree_nodes" bt and r = geti "root_tree_nodes" bt in
      if n < 0 || r < 0 then -1 else n + r
  in
  let phases =
    List.map
      (fun (s : Obs.Trace.span) ->
        let mk est actual notes =
          {
            Obs.Explain.phase = s.Obs.Trace.name;
            est;
            actual;
            ms = Float.max 0. s.Obs.Trace.duration_s *. 1e3;
            notes;
          }
        in
        match s.Obs.Trace.name with
        | "build-tree" ->
          mk n_outer (geti "fast_path" s)
            (note "preflight_rejected" s @ note "fallback" s
           @ note "distinct_atoms" s)
        | "intersect" ->
          mk tree_nodes (geti "nodes_expanded" s)
            (note "intersections_shared" s
            @ note "intersections_recomputed" s
            @ note "limit_cuts" s)
        | "verify" ->
          mk (geti "candidates_checked" s) (geti "pairs" s)
            (note "fallback_queries" s)
        | _ -> mk (-1) (-1) [])
      root.Obs.Trace.children
  in
  let atoms =
    List.concat_map Nested.Value.atom_universe values
    |> List.sort_uniq String.compare
    |> List.map (E.atom_plan inv)
    |> List.stable_sort (fun (a : Obs.Explain.atom_plan) b ->
           Int.compare a.Obs.Explain.list_len b.Obs.Explain.list_len)
  in
  let query =
    match values with
    | [ v ] -> Nested.Syntax.to_string v
    | vs -> Printf.sprintf "<%d outer values>" (List.length vs)
  in
  let config_kvs =
    [
      ("join", "containment-join");
      ("max_depth", string_of_int config.max_depth);
      ("cut_candidates", string_of_int config.cut_candidates);
      ("cut_fanout", string_of_int config.cut_fanout);
    ]
  in
  Obs.Explain.make ~target ~query ~config:config_kvs ~atoms ~phases
    ~records:result.stats.pairs ()

let naive ?config inv values =
  E.containment_join ?config inv values
  |> List.concat_map (fun (qi, records) ->
         List.map (fun rid -> (qi, rid)) records)
  |> List.sort pair_compare

let group ~outer pairs =
  let buckets = Array.make (max outer 0) [] in
  List.iter
    (fun (qi, rid) ->
      if qi < 0 || qi >= outer then
        invalid_arg "Join.Engine.group: pair outside the outer range";
      buckets.(qi) <- rid :: buckets.(qi))
    pairs;
  Array.to_list (Array.map List.rev buckets)
