(** The PRETTI prefix tree over an outer query collection (Bouros et al.,
    "Set Containment Join Revisited", PAPERS.md).

    Each outer set's atoms, sorted by a global total order (ascending
    posting-list length, ties by atom), form a path from the root; queries
    sharing a sorted prefix share the corresponding path. {!Engine} walks
    the tree once, memoizing the partial inverted-list intersection at each
    node, so sibling queries never redo the shared prefix's work.

    The tree itself is pure structure: it stores which query indices end at
    (and pass through) each node, not the intersections — those live on the
    DFS stack of {!Engine.join}, bounding memory by tree depth rather than
    tree size. *)

type node = {
  atom : string;  (** the atom this edge adds to the prefix; [""] at the root *)
  children : (string, node) Hashtbl.t;
  mutable endpoints : int list;
      (** query indices whose full (sorted) atom sequence ends here, in
          insertion order — duplicates of the same outer set stack up on
          one node and share everything *)
  mutable subtree : int;
      (** number of inserted queries whose path passes through this node
          (including those ending here) — the sharing factor of the
          memoized intersection, and the fanout signal for the LIMIT+
          depth cut *)
}

type t

val create : unit -> t

val insert : t -> int -> string list -> unit
(** [insert t qi atoms] threads query [qi]'s sorted atom sequence into the
    tree. [atoms] must be non-empty (atomless queries take the fallback
    path in {!Engine}).
    @raise Invalid_argument on an empty atom list. *)

val root : t -> node

val node_count : t -> int
(** Nodes allocated so far, the root excluded. *)

val sorted_children : node -> node list
(** A node's children sorted by atom (ascending) — the deterministic
    traversal order {!Engine.join} relies on. *)

val endpoints_below : node -> int list
(** Every endpoint query index in the subtree rooted at the node (the node
    itself included), ascending — the queries a LIMIT+ cut at this node
    must finish by verification. *)
