(** Runtime race sanitizer: checked [@@lint.guarded_by] contracts.

    The static R6 pass of nscq-lint verifies module-level guarded state
    lexically; this module is its dynamic half for state the linter
    cannot see through — record fields behind a per-instance mutex,
    accesses reached via first-class functions. A module registers one
    {!cell} per guarded value and calls {!check} at every access the
    contract covers; under [NSCQ_TSAN=1] the check asserts the calling
    thread holds the declared {!Lockdep.t} and records a warn-once
    {!finding} otherwise, with the stacks of both the violating and the
    last in-contract access. Findings also flow through
    {!set_report_hook} — the flight recorder installs it to emit
    [race.suspect] events — and print one stderr line each.

    With [NSCQ_TSAN] unset, {!check} is one atomic load and a branch;
    the plain-Mutex fast path of {!Lockdep} is preserved. *)

type cell

type finding = {
  name : string;
  domain : int;
  thread : int;
  access_stack : string;
  prior_stack : (int * string) option;
      (** thread id and stack of the last access that held the lock *)
}

(** [register ~name ~lock] declares a guarded cell. [name] should match
    the value's [@@lint.guarded_by] site (e.g. ["live.store.state"]);
    it is what findings and [race.suspect] events carry. *)
val register : name:string -> lock:Lockdep.t -> cell

(** Assert (under [NSCQ_TSAN=1]) that the current thread holds the
    cell's lock. Never raises; a violation is recorded once per cell. *)
val check : cell -> unit

(** Whether sanitizing is on. Initialised from [NSCQ_TSAN]. *)
val enabled : unit -> bool

(** Turn sanitizing on or off at runtime; also toggles
    {!Lockdep.set_tracking} so held-lock bookkeeping matches. *)
val set_enabled : bool -> unit

(** Checks executed while enabled, for overhead calibration (E27). *)
val checks : unit -> int

(** Findings recorded so far, oldest first (at most one per cell until
    {!reset}). *)
val findings : unit -> finding list

(** Human-readable rendering of {!findings} with both stacks. *)
val report : unit -> string

(** [set_report_hook (Some f)] calls [f name domain] once per finding
    as it is recorded. [f] must not acquire any {!Lockdep.t}. *)
val set_report_hook : (string -> int -> unit) option -> unit

(** Test hook: clear findings and re-arm every cell's warn-once latch. *)
val reset : unit -> unit
