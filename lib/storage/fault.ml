exception Crashed of string
exception Injected of string

type crash_mode = Clean | Torn

type config = {
  seed : int;
  crash_after : int option;
  crash_mode : crash_mode;
  read_error_every : int option;
  write_error_every : int option;
  drop_syncs : bool;
}

let default =
  {
    seed = 0;
    crash_after = None;
    crash_mode = Clean;
    read_error_every = None;
    write_error_every = None;
    drop_syncs = false;
  }

type op = Get of string | Put of string | Delete of string | Sync

let pp_op ppf = function
  | Get k -> Format.fprintf ppf "get %S" k
  | Put k -> Format.fprintf ppf "put %S" k
  | Delete k -> Format.fprintf ppf "delete %S" k
  | Sync -> Format.fprintf ppf "sync"

type state = {
  inner : Kv.t;
  cfg : config;
  mutable wops : int;
  mutable rops : int;
  mutable dead : bool;
  mutable log : (int * op) list;  (* newest first *)
}

type t = { state : state; handle : Kv.t }

let kv t = t.handle
let config t = t.state.cfg
let write_ops t = t.state.wops
let read_ops t = t.state.rops
let crashed t = t.state.dead
let trace t = List.rev t.state.log

(* Deterministic cut point for a torn value: depends only on the seed and
   the op number, so a failing sweep iteration replays exactly. *)
let torn_cut s len =
  if len <= 1 then 0
  else
    let h = Hashtbl.hash (s.cfg.seed, s.wops, len) in
    1 + (h mod (len - 1))

let check_alive s what =
  if s.dead then
    raise (Crashed (Printf.sprintf "%s after simulated crash" what))

let wrap ?(config = default) inner =
  let s =
    { inner; cfg = config; wops = 0; rops = 0; dead = false; log = [] }
  in
  let fault () = Io_stats.record_fault inner.Kv.stats in
  let read_op op =
    check_alive s "read";
    s.rops <- s.rops + 1;
    s.log <- (s.rops, op) :: s.log;
    match s.cfg.read_error_every with
    | Some n when n > 0 && s.rops mod n = 0 ->
      fault ();
      raise
        (Injected
           (Format.asprintf "injected read error on op %d (%a)" s.rops pp_op op))
    | _ -> ()
  in
  (* Returns [true] when the op should reach the backend; raises on an
     injected error; marks the process dead at the crash boundary. A torn
     crash lets the caller write a mangled value first. *)
  let write_op op =
    check_alive s "write";
    s.wops <- s.wops + 1;
    s.log <- (s.wops, op) :: s.log;
    (match s.cfg.write_error_every with
    | Some n when n > 0 && s.wops mod n = 0 ->
      fault ();
      raise
        (Injected
           (Format.asprintf "injected write error on op %d (%a)" s.wops pp_op op))
    | _ -> ());
    match s.cfg.crash_after with
    | Some n when s.wops >= n ->
      s.dead <- true;
      fault ();
      `Crash
    | _ -> `Apply
  in
  let crashed_exn op =
    Crashed (Format.asprintf "simulated crash on op %d (%a)" s.wops pp_op op)
  in
  let get k =
    read_op (Get k);
    inner.Kv.get k
  in
  let put k v =
    match write_op (Put k) with
    | `Apply -> inner.Kv.put k v
    | `Crash ->
      (match s.cfg.crash_mode with
      | Clean -> ()
      | Torn -> inner.Kv.put k (String.sub v 0 (torn_cut s (String.length v))));
      raise (crashed_exn (Put k))
  in
  let delete k =
    match write_op (Delete k) with
    | `Apply -> inner.Kv.delete k
    | `Crash ->
      (* a torn delete is one the backend applied before the process died *)
      (match s.cfg.crash_mode with
      | Clean -> ()
      | Torn -> ignore (inner.Kv.delete k));
      raise (crashed_exn (Delete k))
  in
  let sync () =
    match write_op Sync with
    | `Apply -> if s.cfg.drop_syncs then fault () else inner.Kv.sync ()
    | `Crash -> raise (crashed_exn Sync)
  in
  let iter f =
    check_alive s "iter";
    inner.Kv.iter f
  in
  let length () =
    check_alive s "length";
    inner.Kv.length ()
  in
  let handle =
    {
      Kv.name = "fault:" ^ inner.Kv.name;
      get;
      put;
      delete;
      iter;
      length;
      sync;
      close = inner.Kv.close;
      stats = inner.Kv.stats;
    }
  in
  { state = s; handle }
