module Make (V : sig
  type t

  val kind : string
end) =
struct
  let lock = Lockdep.create (V.kind ^ ".registry")

  let table : (string, V.t) Hashtbl.t = Hashtbl.create 8
  [@@lint.guarded_by lock]

  let race = Racesan.register ~name:(V.kind ^ ".registry") ~lock

  let put name v =
    Lockdep.protect lock (fun () ->
        Racesan.check race;
        Hashtbl.replace table name v)

  let remove name =
    Lockdep.protect lock (fun () ->
        Racesan.check race;
        Hashtbl.remove table name)

  let find_opt name =
    Lockdep.protect lock (fun () ->
        Racesan.check race;
        Hashtbl.find_opt table name)

  let find name ~what =
    match find_opt name with
    | Some v -> v
    | None ->
      invalid_arg
        (Printf.sprintf "%s.%s: not a %s handle" V.kind what V.kind)
end
