(** Fault injection around any {!Kv.t} backend.

    Wraps a store handle so that failures a production deployment will
    eventually see — torn writes, read errors, a process dying mid-update,
    dropped fsyncs — can be provoked deterministically in tests. The
    wrapper counts every operation it forwards, so a "crash" can be aimed
    at any write boundary of a workload: run once with no faults to learn
    the boundary count, then re-run crashing at each boundary in turn.

    All injection decisions derive from the config's [seed] and the op
    counters, never from wall-clock or global state, so every observed
    failure is replayable bit-for-bit. Injected faults are counted on the
    inner store's {!Io_stats} ([faults]). *)

exception Crashed of string
(** The simulated process death: raised by the op that crosses
    [crash_after], and by every subsequent operation except [close]. *)

exception Injected of string
(** A transient injected I/O error (read or write); the store stays
    usable. *)

type crash_mode =
  | Clean  (** the crashing write never reaches the backend *)
  | Torn
      (** the crashing [put] reaches the backend with only a prefix of its
          value — a torn page/record the backend itself considers intact *)

type config = {
  seed : int;  (** drives torn-write cut points and error placement *)
  crash_after : int option;
      (** crash on the Nth mutating op (1-based: put, delete, sync) *)
  crash_mode : crash_mode;
  read_error_every : int option;  (** every Nth [get] raises {!Injected} *)
  write_error_every : int option;
      (** every Nth mutating op raises {!Injected} without applying *)
  drop_syncs : bool;  (** silently skip the backend's fsync *)
}

val default : config
(** No faults: pure op counting/tracing. *)

type op = Get of string | Put of string | Delete of string | Sync

val pp_op : Format.formatter -> op -> unit

type t

val wrap : ?config:config -> Kv.t -> t
(** The wrapped handle is a fully conforming {!Kv.t}; [close] always
    passes through (a dead process's fds are closed by the OS too). *)

val kv : t -> Kv.t
val config : t -> config

val write_ops : t -> int
(** Mutating ops (put/delete/sync) forwarded or faulted so far — the
    write-boundary count a crash sweep iterates over. *)

val read_ops : t -> int

val crashed : t -> bool

val trace : t -> (int * op) list
(** Every operation observed, oldest first, numbered by its own counter
    (mutating and read ops are numbered independently). The replay recipe
    for any injected failure. *)
