exception Violation of string

type t = {
  class_name : string;
  m : Mutex.t;
}

let enabled_flag =
  Atomic.make
    (match Sys.getenv_opt "NSCQ_LOCKDEP" with
    | Some ("1" | "true" | "yes" | "on") -> true
    | Some _ | None -> false)

let enabled () = Atomic.get enabled_flag
let set_enabled b = Atomic.set enabled_flag b

(* Held-lock bookkeeping without order checking: the race sanitizer
   (Racesan) needs to ask "does this thread hold that mutex?" even when
   full lockdep is off. Kept as a separate flag so NSCQ_TSAN=1 does not
   drag in cycle detection, and NSCQ_LOCKDEP=1 keeps raising on
   double-acquire as before. *)
let tracking_flag = Atomic.make false
let set_tracking b = Atomic.set tracking_flag b
let bookkeeping () = Atomic.get enabled_flag || Atomic.get tracking_flag

(* All bookkeeping lives behind one plain mutex: the held-lock table is
   keyed by thread id (connection threads share their domain, so
   Domain.DLS would conflate them), the order graph by class name. This
   is the only [Mutex.create] outside lockdep's own [create]. *)
let state_mu = Mutex.create ()

let held : (int, t list ref) Hashtbl.t = Hashtbl.create 16
[@@lint.guarded_by state_mu]

let adjacency : (string, string list ref) Hashtbl.t = Hashtbl.create 16
[@@lint.guarded_by state_mu]

let edge_seen : (string * string, unit) Hashtbl.t = Hashtbl.create 64
[@@lint.guarded_by state_mu]

let violation_seen : (string, unit) Hashtbl.t = Hashtbl.create 16
[@@lint.guarded_by state_mu]

let violation_log : string list ref = ref [] [@@lint.guarded_by state_mu]

let with_state f = Mutex.protect state_mu f

(* The helpers below touch the guarded tables without taking [state_mu]
   themselves: every caller already holds it (checked by nscq-lint R6
   through the [@@lint.requires_lock] contract). *)
let record_violation msg =
  if not (Hashtbl.mem violation_seen msg) then begin
    Hashtbl.add violation_seen msg ();
    violation_log := msg :: !violation_log
  end
[@@lint.requires_lock state_mu]

(* Is [target] reachable from [src] in the order graph? *)
let reachable src target =
  let visited = Hashtbl.create 8 in
  let rec go n =
    String.equal n target
    || (not (Hashtbl.mem visited n))
       &&
       (Hashtbl.add visited n ();
        match Hashtbl.find_opt adjacency n with
        | None -> false
        | Some succs -> List.exists go !succs)
  in
  go src
[@@lint.requires_lock state_mu]

let add_edge from_class to_class =
  if not (Hashtbl.mem edge_seen (from_class, to_class)) then begin
    Hashtbl.add edge_seen (from_class, to_class) ();
    match Hashtbl.find_opt adjacency from_class with
    | Some succs -> succs := to_class :: !succs
    | None -> Hashtbl.add adjacency from_class (ref [ to_class ])
  end
[@@lint.requires_lock state_mu]

let thread_id () = Thread.id (Thread.self ())

let held_slot tid =
  match Hashtbl.find_opt held tid with
  | Some slot -> slot
  | None ->
    let slot = ref [] in
    Hashtbl.add held tid slot;
    slot
[@@lint.requires_lock state_mu]

(* Runs the checks for acquiring [t]; raises on double-acquire, records
   everything else. Must be called before the real [Mutex.lock] so a
   self-deadlock surfaces as an exception, not a hang. *)
let note_acquire t =
  with_state (fun () ->
      let slot = held_slot (thread_id ()) in
      List.iter
        (fun h ->
          if h == t then
            raise
              (Violation
                 (Printf.sprintf "double acquire of %S in one thread"
                    t.class_name));
          if String.equal h.class_name t.class_name then
            record_violation
              (Printf.sprintf
                 "same-class nesting: two %S instances held at once"
                 t.class_name)
          else begin
            (* Check for the inversion before inserting the new edge, so
               the cycle we report is one another thread created. *)
            if reachable t.class_name h.class_name then
              record_violation
                (Printf.sprintf
                   "potential deadlock: acquiring %S while holding %S, but \
                    the order graph already has %S -> ... -> %S"
                   t.class_name h.class_name t.class_name h.class_name);
            add_edge h.class_name t.class_name
          end)
        !slot)

let note_locked t =
  with_state (fun () ->
      let slot = held_slot (thread_id ()) in
      slot := t :: !slot)

let note_unlocked t =
  with_state (fun () ->
      let tid = thread_id () in
      match Hashtbl.find_opt held tid with
      | None -> ()
      | Some slot ->
        let rec drop_first = function
          | [] -> []
          | h :: rest -> if h == t then rest else h :: drop_first rest
        in
        slot := drop_first !slot;
        if !slot = [] then Hashtbl.remove held tid)

let create class_name = { class_name; m = Mutex.create () }
let name t = t.class_name

(* Observability hook: when set, a contended acquire (try_lock failed)
   times how long it blocked and reports [class_name, wait_µs] — the
   flight recorder turns these into lock-wait events. The hook runs
   after the lock is held but must not acquire any lockdep-classed
   mutex itself, or a contended acquire inside the hook would recurse. *)
let wait_hook : (string -> int -> unit) option Atomic.t = Atomic.make None

let set_wait_hook h = Atomic.set wait_hook h

let lock_raw t =
  match Atomic.get wait_hook with
  | None -> Mutex.lock t.m
  | Some hook ->
    if not (Mutex.try_lock t.m) then begin
      let t0 = Unix.gettimeofday () in
      Mutex.lock t.m;
      hook t.class_name
        (int_of_float ((Unix.gettimeofday () -. t0) *. 1e6))
    end

let lock t =
  if Atomic.get enabled_flag then begin
    note_acquire t;
    lock_raw t;
    note_locked t
  end
  else if Atomic.get tracking_flag then begin
    lock_raw t;
    note_locked t
  end
  else lock_raw t

let unlock t =
  if bookkeeping () then begin
    note_unlocked t;
    Mutex.unlock t.m
  end
  else Mutex.unlock t.m

let held_by_self t =
  bookkeeping ()
  && with_state (fun () ->
         match Hashtbl.find_opt held (thread_id ()) with
         | Some slot -> List.exists (fun h -> h == t) !slot
         | None -> false)

let protect t f =
  lock t;
  Fun.protect ~finally:(fun () -> unlock t) f

let wait cond t =
  if Atomic.get enabled_flag then begin
    (* Condition.wait releases and re-acquires the mutex; mirror that in
       the held table. The re-acquire cannot self-deadlock, but running
       the full checks keeps order edges complete. *)
    note_unlocked t;
    Condition.wait cond t.m;
    note_acquire t;
    note_locked t
  end
  else if Atomic.get tracking_flag then begin
    note_unlocked t;
    Condition.wait cond t.m;
    note_locked t
  end
  else Condition.wait cond t.m

let violations () = with_state (fun () -> List.rev !violation_log)

let report () =
  with_state (fun () ->
      let b = Buffer.create 256 in
      Buffer.add_string b "lock-order graph:\n";
      let edges =
        Hashtbl.fold
          (fun from_class succs acc ->
            List.fold_left
              (fun acc to_class -> (from_class, to_class) :: acc)
              acc !succs)
          adjacency []
        |> List.sort (fun (a1, a2) (b1, b2) ->
               match String.compare a1 b1 with
               | 0 -> String.compare a2 b2
               | c -> c)
      in
      if edges = [] then Buffer.add_string b "  (empty)\n"
      else
        List.iter
          (fun (a, b') ->
            Buffer.add_string b (Printf.sprintf "  %s -> %s\n" a b'))
          edges;
      (match List.rev !violation_log with
      | [] -> Buffer.add_string b "no violations recorded\n"
      | vs ->
        Buffer.add_string b
          (Printf.sprintf "%d violation(s):\n" (List.length vs));
        List.iter
          (fun v -> Buffer.add_string b (Printf.sprintf "  %s\n" v))
          vs);
      Buffer.contents b)

let reset () =
  with_state (fun () ->
      Hashtbl.reset held;
      Hashtbl.reset adjacency;
      Hashtbl.reset edge_seen;
      Hashtbl.reset violation_seen;
      violation_log := [])
