(* Runtime race sanitizer for [@@lint.guarded_by] contracts.

   Modules that declare mutable state guarded by a Lockdep mutex
   register a [cell] for it and call [check cell] at every access site
   that the contract covers. With NSCQ_TSAN unset every check is one
   atomic load and a branch; with NSCQ_TSAN=1 the cell asserts that the
   accessing thread actually holds the declared lock (via Lockdep's
   held-lock bookkeeping, which [set_enabled true] switches on). A
   failing check is recorded once per cell with two stacks — the
   violating access and the most recent properly-locked access — and
   surfaced through [set_report_hook] (the flight recorder turns these
   into [race.suspect] events) plus one warning line on stderr, TSan
   style: the program keeps running. *)

type cell = {
  cell_name : string;
  lock : Lockdep.t;
  tripped : bool Atomic.t; (* warn-once latch *)
  mutable last_ok : (int * string) option;
      (* thread id and stack of the latest in-contract access; written
         only while [lock] is held (the check just proved it), so
         passing accesses never race each other. A violating reader
         races this benignly — it is diagnostic text. *)
}

type finding = {
  name : string;
  domain : int;
  thread : int;
  access_stack : string;
  prior_stack : (int * string) option;
}

let enabled_flag =
  Atomic.make
    (match Sys.getenv_opt "NSCQ_TSAN" with
    | Some ("1" | "true" | "yes" | "on") -> true
    | Some _ | None -> false)

(* Lockdep needs to maintain the held table for held_by_self. *)
let () = if Atomic.get enabled_flag then Lockdep.set_tracking true

let enabled () = Atomic.get enabled_flag

let set_enabled b =
  Atomic.set enabled_flag b;
  Lockdep.set_tracking b

(* Registered cells and recorded findings, behind one plain mutex (not
   a Lockdep.t: the sanitizer must not feed its own bookkeeping back
   through the instrumented lock layer). *)
let state_mu = Mutex.create ()
let cells : cell list ref = ref [] [@@lint.guarded_by state_mu]
let findings_log : finding list ref = ref [] [@@lint.guarded_by state_mu]

(* Checks executed while enabled; calibrates the overhead bench. *)
let checks_counter = Atomic.make 0

let report_hook : (string -> int -> unit) option Atomic.t = Atomic.make None
let set_report_hook h = Atomic.set report_hook h

let register ~name ~lock =
  let c =
    { cell_name = name; lock; tripped = Atomic.make false; last_ok = None }
  in
  Mutex.protect state_mu (fun () -> cells := c :: !cells);
  c

let stack_here () =
  Printexc.raw_backtrace_to_string (Printexc.get_callstack 24)

let record_violation c =
  if Atomic.compare_and_set c.tripped false true then begin
    let f =
      {
        name = c.cell_name;
        domain = (Domain.self () :> int);
        thread = Thread.id (Thread.self ());
        access_stack = stack_here ();
        prior_stack = c.last_ok;
      }
    in
    Mutex.protect state_mu (fun () -> findings_log := f :: !findings_log);
    (match Atomic.get report_hook with
    | Some hook -> hook c.cell_name f.domain
    | None -> ());
    Printf.eprintf
      "racesan: %S accessed on domain %d (thread %d) without holding %S\n%!"
      c.cell_name f.domain f.thread (Lockdep.name c.lock)
  end

let check c =
  if Atomic.get enabled_flag then begin
    Atomic.incr checks_counter;
    if Lockdep.held_by_self c.lock then
      c.last_ok <- Some (Thread.id (Thread.self ()), stack_here ())
    else record_violation c
  end

let checks () = Atomic.get checks_counter
let findings () = Mutex.protect state_mu (fun () -> List.rev !findings_log)

let report () =
  let fs = findings () in
  let b = Buffer.create 256 in
  (match fs with
  | [] -> Buffer.add_string b "racesan: no findings\n"
  | fs ->
    Buffer.add_string b
      (Printf.sprintf "racesan: %d finding(s):\n" (List.length fs));
    List.iter
      (fun f ->
        Buffer.add_string b
          (Printf.sprintf
             "  %S: unlocked access on domain %d (thread %d)\n  access stack:\n%s"
             f.name f.domain f.thread f.access_stack);
        match f.prior_stack with
        | None -> Buffer.add_string b "  no prior in-contract access\n"
        | Some (tid, s) ->
          Buffer.add_string b
            (Printf.sprintf "  last in-contract access (thread %d):\n%s" tid s))
      fs);
  Buffer.contents b

let reset () =
  Mutex.protect state_mu (fun () ->
      findings_log := [];
      List.iter
        (fun c ->
          Atomic.set c.tripped false;
          c.last_ok <- None)
        !cells)
