type t = {
  mutable reads : int;
  mutable writes : int;
  mutable bytes_read : int;
  mutable bytes_written : int;
  mutable seeks : int;
  mutable hits : int;
  mutable misses : int;
  mutable lookups : int;
  mutable faults : int;
  mutable recoveries : int;
}

let create () =
  { reads = 0; writes = 0; bytes_read = 0; bytes_written = 0; seeks = 0;
    hits = 0; misses = 0; lookups = 0; faults = 0; recoveries = 0 }

let reset t =
  t.reads <- 0;
  t.writes <- 0;
  t.bytes_read <- 0;
  t.bytes_written <- 0;
  t.seeks <- 0;
  t.hits <- 0;
  t.misses <- 0;
  t.lookups <- 0;
  t.faults <- 0;
  t.recoveries <- 0

let record_read t ~bytes =
  t.reads <- t.reads + 1;
  t.bytes_read <- t.bytes_read + bytes

let record_write t ~bytes =
  t.writes <- t.writes + 1;
  t.bytes_written <- t.bytes_written + bytes

let record_seek t = t.seeks <- t.seeks + 1
let record_hit t = t.hits <- t.hits + 1
let record_miss t = t.misses <- t.misses + 1
let record_lookup t = t.lookups <- t.lookups + 1
let record_fault t = t.faults <- t.faults + 1
let record_recovery t = t.recoveries <- t.recoveries + 1

let reads t = t.reads
let writes t = t.writes
let bytes_read t = t.bytes_read
let bytes_written t = t.bytes_written
let seeks t = t.seeks
let hits t = t.hits
let misses t = t.misses
let lookups t = t.lookups
let faults t = t.faults
let recoveries t = t.recoveries

let hit_ratio t =
  let total = t.hits + t.misses in
  if total = 0 then 0. else float_of_int t.hits /. float_of_int total

let merge a b =
  {
    reads = a.reads + b.reads;
    writes = a.writes + b.writes;
    bytes_read = a.bytes_read + b.bytes_read;
    bytes_written = a.bytes_written + b.bytes_written;
    seeks = a.seeks + b.seeks;
    hits = a.hits + b.hits;
    misses = a.misses + b.misses;
    lookups = a.lookups + b.lookups;
    faults = a.faults + b.faults;
    recoveries = a.recoveries + b.recoveries;
  }

let pp ppf t =
  Format.fprintf ppf
    "reads=%d (%d B) writes=%d (%d B) seeks=%d cache hits=%d misses=%d \
     (ratio %.3f)"
    t.reads t.bytes_read t.writes t.bytes_written t.seeks t.hits t.misses
    (hit_ratio t);
  if t.faults > 0 || t.recoveries > 0 then
    Format.fprintf ppf " faults=%d recoveries=%d" t.faults t.recoveries

let register reg ?(labels = []) t =
  let c name help f =
    Obs.Metrics.register_callback reg ~help ~labels ~kind:`Counter name
      (fun () -> float_of_int (f t))
  in
  c "nscq_io_reads_total" "Store read operations" reads;
  c "nscq_io_writes_total" "Store write operations" writes;
  c "nscq_io_bytes_read_total" "Bytes read from the store" bytes_read;
  c "nscq_io_bytes_written_total" "Bytes written to the store" bytes_written;
  c "nscq_io_seeks_total" "Store seeks" seeks;
  c "nscq_io_lookups_total" "Logical inverted-list lookups" lookups;
  c "nscq_io_cache_hits_total" "Lookups served from the decoded-list cache"
    hits;
  c "nscq_io_cache_misses_total" "Lookups that went to the backing store"
    misses;
  c "nscq_io_faults_total" "Injected storage faults" faults;
  c "nscq_io_recoveries_total" "Recovery actions (rollbacks, log truncations)"
    recoveries;
  Obs.Metrics.register_callback reg
    ~help:"Cache hit ratio, hits / (hits + misses)" ~labels ~kind:`Gauge
    "nscq_io_cache_hit_ratio" (fun () -> hit_ratio t)
