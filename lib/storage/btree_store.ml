let magic = "NSCQBTR1"

type value_ref =
  | Inline of string
  | Overflow of { first_page : int; len : int }

type node =
  | Leaf of { entries : (string * value_ref) array; next : int (* 0 = none *) }
  | Internal of { keys : string array; children : int array }

type t = {
  pager : Pager.t;
  mutable root : int;
  mutable count : int;
  path : string;
}

(* A registry so [range] can recover the B+tree behind a Kv.t handle;
   shared because parallel workers may open handles concurrently. *)
module Reg = Registry.Make (struct
  type nonrec t = t

  let kind = "Btree_store"
end)

(* --- node serialization --- *)

let serialize node =
  let w = Codec.writer () in
  (match node with
  | Leaf { entries; next } ->
    Codec.write_varint w 0;
    Codec.write_varint w next;
    Codec.write_varint w (Array.length entries);
    Array.iter
      (fun (k, v) ->
        Codec.write_string w k;
        match v with
        | Inline s ->
          Codec.write_varint w 0;
          Codec.write_string w s
        | Overflow { first_page; len } ->
          Codec.write_varint w 1;
          Codec.write_varint w first_page;
          Codec.write_varint w len)
      entries
  | Internal { keys; children } ->
    Codec.write_varint w 1;
    Codec.write_varint w (Array.length keys);
    Array.iter (Codec.write_string w) keys;
    Array.iter (fun c -> Codec.write_varint w c) children);
  Codec.contents w

let deserialize s =
  let r = Codec.reader s in
  match Codec.read_varint r with
  | 0 ->
    let next = Codec.read_varint r in
    let n = Codec.read_varint r in
    (* explicit loops: reader side effects must run in sequence *)
    let out = ref [] in
    for _ = 1 to n do
      let k = Codec.read_string r in
      let v =
        match Codec.read_varint r with
        | 0 -> Inline (Codec.read_string r)
        | 1 ->
          let first_page = Codec.read_varint r in
          let len = Codec.read_varint r in
          Overflow { first_page; len }
        | _ -> raise (Codec.Corrupt "bad value tag")
      in
      out := (k, v) :: !out
    done;
    Leaf { entries = Array.of_list (List.rev !out); next }
  | 1 ->
    let n = Codec.read_varint r in
    let keys = Array.make (max n 1) "" in
    for i = 0 to n - 1 do
      keys.(i) <- Codec.read_string r
    done;
    let keys = if n = 0 then [||] else keys in
    let children = Array.make (n + 1) 0 in
    for i = 0 to n do
      children.(i) <- Codec.read_varint r
    done;
    Internal { keys; children }
  | _ -> raise (Codec.Corrupt "bad node tag")

let read_node t page = deserialize (Bytes.to_string (Pager.read_page t.pager page))

let write_node t page node =
  let s = serialize node in
  let ps = Pager.page_size t.pager in
  if String.length s > ps then failwith "Btree_store: node overflows page";
  let buf = Bytes.make ps '\000' in
  Bytes.blit_string s 0 buf 0 (String.length s);
  Pager.write_page t.pager page buf

let append_node t node =
  let page = Pager.page_count t.pager in
  write_node t page node;
  page

let node_fits t node = String.length (serialize node) <= Pager.page_size t.pager

(* --- meta page --- *)

let write_meta t =
  let ps = Pager.page_size t.pager in
  let buf = Bytes.make ps '\000' in
  Bytes.blit_string magic 0 buf 0 8;
  Bytes.set_int64_le buf 8 (Int64.of_int t.root);
  Bytes.set_int64_le buf 16 (Int64.of_int t.count);
  Pager.write_page t.pager 0 buf

let read_meta t =
  let buf = Pager.read_page t.pager 0 in
  if Bytes.sub_string buf 0 8 <> magic then failwith "Btree_store: bad magic";
  t.root <- Int64.to_int (Bytes.get_int64_le buf 8);
  t.count <- Int64.to_int (Bytes.get_int64_le buf 16)

(* --- values --- *)

let inline_threshold t = Pager.page_size t.pager / 4
let max_key_len t = Pager.page_size t.pager / 16

let store_value t s =
  if String.length s <= inline_threshold t then Inline s
  else
    let first_page = Pager.append_blob t.pager s in
    Overflow { first_page; len = String.length s }

let load_value t = function
  | Inline s -> s
  | Overflow { first_page; len } -> Pager.read_blob t.pager ~first_page ~len

(* --- search --- *)

(* Index of the child to descend into for [key]: the first separator
   strictly greater than [key]. *)
let child_index keys key =
  let n = Array.length keys in
  let rec bsearch lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if String.compare key keys.(mid) < 0 then bsearch lo mid else bsearch (mid + 1) hi
  in
  bsearch 0 n

let find_entry entries key =
  let n = Array.length entries in
  let rec bsearch lo hi =
    if lo >= hi then None
    else
      let mid = (lo + hi) / 2 in
      let c = String.compare key (fst entries.(mid)) in
      if c = 0 then Some mid
      else if c < 0 then bsearch lo mid
      else bsearch (mid + 1) hi
  in
  bsearch 0 n

let rec get_from t page key =
  match read_node t page with
  | Internal { keys; children } -> get_from t children.(child_index keys key) key
  | Leaf { entries; _ } ->
    Option.map (fun i -> load_value t (snd entries.(i))) (find_entry entries key)

(* --- insertion --- *)

type insert_result =
  | Done
  | Split of string * int  (* separator key, page of new right sibling *)

(* Position at which [key] would be inserted to keep [entries] sorted. *)
let insertion_point entries key =
  let n = Array.length entries in
  let rec bsearch lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if String.compare key (fst entries.(mid)) <= 0 then bsearch lo mid
      else bsearch (mid + 1) hi
  in
  bsearch 0 n

let array_insert a i x =
  let n = Array.length a in
  Array.init (n + 1) (fun j -> if j < i then a.(j) else if j = i then x else a.(j - 1))

let array_remove a i =
  let n = Array.length a in
  Array.init (n - 1) (fun j -> if j < i then a.(j) else a.(j + 1))

let rec insert_into t page key value =
  match read_node t page with
  | Leaf { entries; next } ->
    let entries =
      match find_entry entries key with
      | Some i ->
        t.count <- t.count - 1;
        (* replaced below; old overflow pages, if any, are leaked *)
        Array.mapi (fun j e -> if j = i then (key, value) else e) entries
      | None -> array_insert entries (insertion_point entries key) (key, value)
    in
    t.count <- t.count + 1;
    let node = Leaf { entries; next } in
    if node_fits t node then begin
      write_node t page node;
      Done
    end
    else begin
      let mid = Array.length entries / 2 in
      let left_entries = Array.sub entries 0 mid in
      let right_entries = Array.sub entries mid (Array.length entries - mid) in
      let right_page = append_node t (Leaf { entries = right_entries; next }) in
      write_node t page (Leaf { entries = left_entries; next = right_page });
      Split (fst right_entries.(0), right_page)
    end
  | Internal { keys; children } ->
    let i = child_index keys key in
    (match insert_into t children.(i) key value with
    | Done -> Done
    | Split (sep, right_page) ->
      let keys = array_insert keys i sep in
      let children = array_insert children (i + 1) right_page in
      let node = Internal { keys; children } in
      if node_fits t node then begin
        write_node t page node;
        Done
      end
      else begin
        let nk = Array.length keys in
        let mid = nk / 2 in
        let sep_up = keys.(mid) in
        let left = Internal { keys = Array.sub keys 0 mid; children = Array.sub children 0 (mid + 1) } in
        let right =
          Internal
            { keys = Array.sub keys (mid + 1) (nk - mid - 1);
              children = Array.sub children (mid + 1) (nk - mid) }
        in
        let right_page = append_node t right in
        write_node t page left;
        Split (sep_up, right_page)
      end)

let put t key value =
  if String.length key > max_key_len t then
    invalid_arg "Btree_store.put: key too long";
  let value = store_value t value in
  match insert_into t t.root key value with
  | Done -> ()
  | Split (sep, right_page) ->
    let new_root =
      append_node t (Internal { keys = [| sep |]; children = [| t.root; right_page |] })
    in
    t.root <- new_root

(* --- deletion (lazy: no rebalancing) --- *)

let rec delete_from t page key =
  match read_node t page with
  | Internal { keys; children } -> delete_from t children.(child_index keys key) key
  | Leaf { entries; next } ->
    (match find_entry entries key with
    | None -> false
    | Some i ->
      write_node t page (Leaf { entries = array_remove entries i; next });
      t.count <- t.count - 1;
      true)

(* --- iteration --- *)

let rec leftmost_leaf t page =
  match read_node t page with
  | Leaf _ as l -> (page, l)
  | Internal { children; _ } -> leftmost_leaf t children.(0)

let iter t f =
  let rec walk = function
    | Leaf { entries; next } ->
      Array.iter (fun (k, v) -> f k (load_value t v)) entries;
      if next <> 0 then walk (read_node t next)
    | Internal _ -> failwith "Btree_store.iter: leaf chain reached an internal node"
  in
  let _, leaf = leftmost_leaf t t.root in
  walk leaf

(* Leaf containing the first key >= lo, by descent. *)
let rec seek_leaf t page key =
  match read_node t page with
  | Leaf _ as l -> l
  | Internal { keys; children } -> seek_leaf t children.(child_index keys key) key

let range_fold t ~lo ~hi f acc =
  let rec walk acc = function
    | Leaf { entries; next } ->
      let acc = ref acc and stop = ref false in
      Array.iter
        (fun (k, v) ->
          if not !stop then
            if String.compare k hi >= 0 then stop := true
            else if String.compare k lo >= 0 then acc := f !acc k (load_value t v))
        entries;
      if !stop || next = 0 then !acc else walk !acc (read_node t next)
    | Internal _ -> assert false
  in
  walk acc (seek_leaf t t.root lo)

(* --- Kv.t packaging --- *)

let to_kv t =
  let name = "btree:" ^ t.path in
  Reg.put name t;
  {
    Kv.name;
    get = (fun k -> get_from t t.root k);
    put = put t;
    delete = (fun k -> delete_from t t.root k);
    iter = iter t;
    length = (fun () -> t.count);
    sync =
      (fun () ->
        write_meta t;
        Pager.sync t.pager);
    close =
      (fun () ->
        write_meta t;
        Reg.remove name;
        Pager.close t.pager);
    stats = Pager.stats t.pager;
  }

let create ?page_size ?cache_pages path =
  let pager = Pager.create ?page_size ?cache_pages path in
  let t = { pager; root = 0; count = 0; path } in
  write_meta t;
  let root = append_node t (Leaf { entries = [||]; next = 0 }) in
  t.root <- root;
  write_meta t;
  Io_stats.reset (Pager.stats pager);
  to_kv t

let open_existing ?page_size ?cache_pages path =
  let pager = Pager.open_existing ?page_size ?cache_pages path in
  let t = { pager; root = 0; count = 0; path } in
  read_meta t;
  Io_stats.reset (Pager.stats pager);
  to_kv t

let range kv ~lo ~hi =
  let t = Reg.find kv.Kv.name ~what:"range" in
  List.rev (range_fold t ~lo ~hi (fun acc k v -> (k, v) :: acc) [])
