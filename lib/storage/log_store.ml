let magic = "NSCQLOG1"
let header_size = 8

(* Record: crc32(4, over everything after it) | flags(1) | key_len(4) |
   val_len(4) | key | value. flags bit 0 = tombstone; bit 1 = commit
   marker (an empty record fencing a batch: recovery can roll the log
   back to the last marker instead of merely dropping a torn tail). *)
let record_header_size = 13

let flag_tombstone = 0x01
let flag_commit = 0x02

type entry = { offset : int; val_len : int; total_len : int }

type t = {
  mutable fd : Unix.file_descr;
  path : string;
  dir : (string, entry) Hashtbl.t;
  mutable file_end : int;
  mutable dead : int;  (* bytes of superseded/tombstoned records *)
  mutable last_commit : int;  (* file offset just past the last commit marker *)
  stats : Io_stats.t;
  mutable closed : bool;
}

(* The registry is shared by every domain that opens a log store (e.g.
   Parallel workers each opening their own handle on one path). *)
module Reg = Registry.Make (struct
  type nonrec t = t

  let kind = "Log_store"
end)

let really_pread t ~off buf pos len =
  Io_stats.record_seek t.stats;
  ignore (Unix.lseek t.fd off Unix.SEEK_SET);
  let rec loop pos len =
    if len > 0 then begin
      let n = Unix.read t.fd buf pos len in
      if n = 0 then failwith "Log_store: unexpected end of file";
      loop (pos + n) (len - n)
    end
  in
  loop pos len;
  Io_stats.record_read t.stats ~bytes:len

let really_write t buf =
  Io_stats.record_seek t.stats;
  ignore (Unix.lseek t.fd t.file_end Unix.SEEK_SET);
  let len = Bytes.length buf in
  let rec loop pos remaining =
    if remaining > 0 then begin
      let n = Unix.write t.fd buf pos remaining in
      loop (pos + n) (remaining - n)
    end
  in
  loop 0 len;
  Io_stats.record_write t.stats ~bytes:len

let encode_record ?(flags = 0) ~key ~value () =
  let klen = String.length key and vlen = String.length value in
  let buf = Bytes.create (record_header_size + klen + vlen) in
  Bytes.set buf 4 (Char.chr flags);
  Bytes.set_int32_le buf 5 (Int32.of_int klen);
  Bytes.set_int32_le buf 9 (Int32.of_int vlen);
  Bytes.blit_string key 0 buf record_header_size klen;
  Bytes.blit_string value 0 buf (record_header_size + klen) vlen;
  let crc =
    Checksum.crc32_bytes buf ~pos:4 ~len:(Bytes.length buf - 4)
  in
  Bytes.set_int32_le buf 0 crc;
  buf

let check_open t = if t.closed then failwith "Log_store: store is closed"

let append t ~flags key value =
  let buf = encode_record ~flags ~key ~value () in
  really_write t buf;
  let offset = t.file_end in
  t.file_end <- offset + Bytes.length buf;
  (offset, Bytes.length buf)

let supersede t key =
  match Hashtbl.find_opt t.dir key with
  | Some old ->
    t.dead <- t.dead + old.total_len;
    Hashtbl.remove t.dir key
  | None -> ()

let put t key value =
  check_open t;
  supersede t key;
  let offset, total_len = append t ~flags:0 key value in
  Hashtbl.replace t.dir key { offset; val_len = String.length value; total_len }

let get t key =
  check_open t;
  match Hashtbl.find_opt t.dir key with
  | None -> None
  | Some e ->
    let buf = Bytes.create e.val_len in
    really_pread t
      ~off:(e.offset + record_header_size + String.length key)
      buf 0 e.val_len;
    Some (Bytes.unsafe_to_string buf)

let delete t key =
  check_open t;
  match Hashtbl.find_opt t.dir key with
  | None -> false
  | Some _ ->
    supersede t key;
    let _, total_len = append t ~flags:flag_tombstone key "" in
    (* the tombstone itself is dead weight for the next compaction *)
    t.dead <- t.dead + total_len;
    true

let iter t f =
  check_open t;
  Hashtbl.iter (fun key _ -> f key (Option.get (get t key))) t.dir

(* Scans the log from the header, rebuilding the directory; returns the
   offset of the first invalid record (= consistent prefix length). *)
let scan t ~file_size =
  let pos = ref header_size in
  let ok = ref true in
  while !ok && !pos + record_header_size <= file_size do
    let hdr = Bytes.create record_header_size in
    really_pread t ~off:!pos hdr 0 record_header_size;
    let stored_crc = Bytes.get_int32_le hdr 0 in
    let flags = Char.code (Bytes.get hdr 4) in
    let klen = Int32.to_int (Bytes.get_int32_le hdr 5) in
    let vlen = Int32.to_int (Bytes.get_int32_le hdr 9) in
    if
      klen < 0 || vlen < 0
      || !pos + record_header_size + klen + vlen > file_size
    then ok := false
    else begin
      let body = Bytes.create (9 + klen + vlen) in
      Bytes.blit hdr 4 body 0 9;
      really_pread t ~off:(!pos + record_header_size) body 9 (klen + vlen);
      let crc = Checksum.crc32_bytes body ~pos:0 ~len:(Bytes.length body) in
      if crc <> stored_crc then ok := false
      else begin
        let key = Bytes.sub_string body 9 klen in
        let total_len = record_header_size + klen + vlen in
        if flags land flag_commit <> 0 then begin
          (* a batch fence: everything before it is committed *)
          t.dead <- t.dead + total_len;
          t.last_commit <- !pos + total_len
        end
        else begin
          supersede t key;
          if flags land flag_tombstone <> 0 then t.dead <- t.dead + total_len
          else
            Hashtbl.replace t.dir key { offset = !pos; val_len = vlen; total_len }
        end;
        pos := !pos + total_len
      end
    end
  done;
  !pos

let to_kv t =
  let name = "log:" ^ t.path in
  Reg.put name t;
  {
    Kv.name;
    get = get t;
    put = put t;
    delete = delete t;
    iter = iter t;
    length = (fun () -> Hashtbl.length t.dir);
    sync =
      (fun () ->
        check_open t;
        Unix.fsync t.fd);
    close =
      (fun () ->
        if not t.closed then begin
          t.closed <- true;
          Reg.remove name;
          Unix.close t.fd
        end);
    stats = t.stats;
  }

let create path =
  let fd = Unix.openfile path [ Unix.O_RDWR; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
  let t =
    {
      fd;
      path;
      dir = Hashtbl.create 1024;
      file_end = 0;
      dead = 0;
      last_commit = header_size;
      stats = Io_stats.create ();
      closed = false;
    }
  in
  really_write t (Bytes.of_string magic);
  t.file_end <- header_size;
  Io_stats.reset t.stats;
  to_kv t

let open_existing ?(to_last_commit = false) path =
  let fd =
    try Unix.openfile path [ Unix.O_RDWR ] 0o644
    with Unix.Unix_error (e, _, _) ->
      failwith (Printf.sprintf "Log_store.open_existing %s: %s" path (Unix.error_message e))
  in
  let size = (Unix.fstat fd).Unix.st_size in
  if size < header_size then failwith "Log_store.open_existing: file too small";
  let t =
    {
      fd;
      path;
      dir = Hashtbl.create 1024;
      file_end = 0;
      dead = 0;
      last_commit = header_size;
      stats = Io_stats.create ();
      closed = false;
    }
  in
  let hdr = Bytes.create header_size in
  really_pread t ~off:0 hdr 0 header_size;
  if Bytes.to_string hdr <> magic then failwith "Log_store.open_existing: bad magic";
  let consistent = scan t ~file_size:size in
  (* Torn tail (crash during the final append): truncate it away. Under
     [to_last_commit], roll further back to the last commit fence so a
     half-written batch disappears entirely. *)
  let keep = if to_last_commit then min consistent t.last_commit else consistent in
  if keep < consistent then begin
    (* drop the uncommitted records from the directory by rescanning *)
    Hashtbl.reset t.dir;
    t.dead <- 0;
    t.last_commit <- header_size;
    ignore (scan t ~file_size:keep)
  end;
  if keep < size then Unix.ftruncate fd keep;
  t.file_end <- keep;
  Io_stats.reset t.stats;
  if keep < size then Io_stats.record_recovery t.stats;
  to_kv t

let find_handle kv what = Reg.find kv.Kv.name ~what

let mark_commit kv =
  let t = find_handle kv "mark_commit" in
  check_open t;
  let _, total_len = append t ~flags:flag_commit "" "" in
  t.dead <- t.dead + total_len;
  t.last_commit <- t.file_end;
  Unix.fsync t.fd

let last_commit kv = (find_handle kv "last_commit").last_commit

let dead_bytes kv = (find_handle kv "dead_bytes").dead

let compact kv =
  let t = find_handle kv "compact" in
  check_open t;
  let tmp_path = t.path ^ ".compact" in
  let live =
    Hashtbl.fold (fun key _ acc -> key :: acc) t.dir []
    |> List.sort String.compare
  in
  let tmp_fd = Unix.openfile tmp_path [ Unix.O_RDWR; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
  let fresh =
    {
      fd = tmp_fd;
      path = tmp_path;
      dir = Hashtbl.create (Hashtbl.length t.dir);
      file_end = 0;
      dead = 0;
      last_commit = header_size;
      stats = t.stats;
      closed = false;
    }
  in
  really_write fresh (Bytes.of_string magic);
  fresh.file_end <- header_size;
  List.iter (fun key -> put fresh key (Option.get (get t key))) live;
  Unix.fsync tmp_fd;
  Unix.rename tmp_path t.path;
  Unix.close t.fd;
  t.fd <- fresh.fd;
  t.file_end <- fresh.file_end;
  t.dead <- 0;
  Hashtbl.reset t.dir;
  Hashtbl.iter (fun k e -> Hashtbl.replace t.dir k e) fresh.dir
