type writer = Buffer.t

let writer () = Buffer.create 64
let contents = Buffer.contents

let write_varint buf n =
  if n < 0 then invalid_arg "Codec.write_varint: negative";
  let rec loop n =
    if n < 0x80 then Buffer.add_char buf (Char.chr n)
    else begin
      Buffer.add_char buf (Char.chr (0x80 lor (n land 0x7f)));
      loop (n lsr 7)
    end
  in
  loop n

let write_int_list buf l =
  write_varint buf (List.length l);
  let prev = ref (-1) in
  List.iter
    (fun x ->
      if x <= !prev then invalid_arg "Codec.write_int_list: not strictly increasing";
      write_varint buf (x - !prev - 1);
      prev := x)
    l

let write_int_array buf a =
  write_varint buf (Array.length a);
  let prev = ref (-1) in
  Array.iter
    (fun x ->
      if x <= !prev then invalid_arg "Codec.write_int_array: not strictly increasing";
      write_varint buf (x - !prev - 1);
      prev := x)
    a

let write_string buf s =
  write_varint buf (String.length s);
  Buffer.add_string buf s

let write_raw = Buffer.add_string

type reader = { data : string; limit : int; mutable pos : int }

exception Corrupt of string

let reader s = { data = s; limit = String.length s; pos = 0 }

let reader_sub s ~pos ~len =
  if pos < 0 || len < 0 || pos + len > String.length s then
    invalid_arg "Codec.reader_sub: out of bounds";
  { data = s; limit = pos + len; pos }

let at_end r = r.pos >= r.limit
let pos r = r.pos

let read_byte r =
  if r.pos >= r.limit then raise (Corrupt "truncated varint");
  let b = Char.code r.data.[r.pos] in
  r.pos <- r.pos + 1;
  b

let read_varint r =
  let rec loop shift acc =
    if shift > 62 then raise (Corrupt "varint too large");
    let b = read_byte r in
    let acc = acc lor ((b land 0x7f) lsl shift) in
    if b land 0x80 = 0 then acc else loop (shift + 7) acc
  in
  loop 0 0

let read_int_list r =
  let n = read_varint r in
  let rec loop i prev acc =
    if i = n then List.rev acc
    else
      let x = prev + 1 + read_varint r in
      loop (i + 1) x (x :: acc)
  in
  loop 0 (-1) []

let read_int_array r =
  let n = read_varint r in
  if n = 0 then [||]
  else begin
    let a = Array.make n 0 in
    let prev = ref (-1) in
    for i = 0 to n - 1 do
      let x = !prev + 1 + read_varint r in
      a.(i) <- x;
      prev := x
    done;
    a
  end

let read_string r =
  let n = read_varint r in
  if r.pos + n > r.limit then raise (Corrupt "truncated string");
  let s = String.sub r.data r.pos n in
  r.pos <- r.pos + n;
  s

let encode_int_array a =
  let w = writer () in
  write_int_array w a;
  contents w

let decode_int_array s = read_int_array (reader s)
