let magic = "NSCQHSH1"
let header_size = 32

(* Header: magic(8) | buckets(8) | count(8) | reserved(8).
   Bucket directory: buckets * 8 bytes of chain-head offsets (0 = empty).
   Record: next(8) | key_len(4) | val_len(4) | key | value. *)

type handle = {
  mutable fd : Unix.file_descr;
  buckets : int;
  mutable count : int;
  mutable file_end : int;
  stats : Io_stats.t;
  path : string;
  mutable closed : bool;
}

(* registry so [optimize]/[file_size] can recover the handle behind Kv.t;
   shared because parallel workers may open handles concurrently *)
module Reg = Registry.Make (struct
  type t = handle

  let kind = "Hash_store"
end)

let record_header_size = 16

let fnv1a s =
  (* FNV-1a offset basis, truncated to OCaml's 63-bit int. *)
  let h = ref 0x3bf29ce484222325 in
  String.iter
    (fun c ->
      h := !h lxor Char.code c;
      h := !h * 0x100000001b3)
    s;
  !h land max_int

let bucket_of_key t key = fnv1a key land (t.buckets - 1)
let bucket_offset b = header_size + (8 * b)

let really_pread t ~off buf pos len =
  Io_stats.record_seek t.stats;
  ignore (Unix.lseek t.fd off Unix.SEEK_SET);
  let rec loop pos len =
    if len > 0 then begin
      let n = Unix.read t.fd buf pos len in
      if n = 0 then failwith "Hash_store: unexpected end of file";
      loop (pos + n) (len - n)
    end
  in
  loop pos len;
  Io_stats.record_read t.stats ~bytes:len

let really_pwrite t ~off buf pos len =
  Io_stats.record_seek t.stats;
  ignore (Unix.lseek t.fd off Unix.SEEK_SET);
  let rec loop pos len =
    if len > 0 then begin
      let n = Unix.write t.fd buf pos len in
      loop (pos + n) (len - n)
    end
  in
  loop pos len;
  Io_stats.record_write t.stats ~bytes:len

let read_u64 buf pos = Int64.to_int (Bytes.get_int64_le buf pos)
let write_u64 buf pos v = Bytes.set_int64_le buf pos (Int64.of_int v)
let read_u32 buf pos = Int32.to_int (Bytes.get_int32_le buf pos)
let write_u32 buf pos v = Bytes.set_int32_le buf pos (Int32.of_int v)

let read_offset t ~off =
  let buf = Bytes.create 8 in
  really_pread t ~off buf 0 8;
  read_u64 buf 0

let write_offset t ~off v =
  let buf = Bytes.create 8 in
  write_u64 buf 0 v;
  really_pwrite t ~off buf 0 8

(* Reads the fixed part of a record; returns (next, key_len, val_len). *)
let read_record_header t ~off =
  let buf = Bytes.create record_header_size in
  really_pread t ~off buf 0 record_header_size;
  (read_u64 buf 0, read_u32 buf 8, read_u32 buf 12)

let read_record_key t ~off ~key_len =
  let buf = Bytes.create key_len in
  really_pread t ~off:(off + record_header_size) buf 0 key_len;
  Bytes.unsafe_to_string buf

let read_record_value t ~off ~key_len ~val_len =
  let buf = Bytes.create val_len in
  really_pread t ~off:(off + record_header_size + key_len) buf 0 val_len;
  Bytes.unsafe_to_string buf

let write_header t =
  let buf = Bytes.make header_size '\000' in
  Bytes.blit_string magic 0 buf 0 8;
  write_u64 buf 8 t.buckets;
  write_u64 buf 16 t.count;
  really_pwrite t ~off:0 buf 0 header_size

let append_record t ~next ~key ~value =
  let key_len = String.length key and val_len = String.length value in
  let buf = Bytes.create (record_header_size + key_len + val_len) in
  write_u64 buf 0 next;
  write_u32 buf 8 key_len;
  write_u32 buf 12 val_len;
  Bytes.blit_string key 0 buf record_header_size key_len;
  Bytes.blit_string value 0 buf (record_header_size + key_len) val_len;
  let off = t.file_end in
  really_pwrite t ~off buf 0 (Bytes.length buf);
  t.file_end <- off + Bytes.length buf;
  off

(* Walks the chain of [key]'s bucket. Returns the offset holding the pointer
   to the matching record (bucket slot or predecessor's next field) and the
   record's header, if present. *)
let find_in_chain t key =
  let slot = bucket_offset (bucket_of_key t key) in
  let rec walk ptr_off =
    let rec_off = read_offset t ~off:ptr_off in
    if rec_off = 0 then None
    else
      let next, key_len, val_len = read_record_header t ~off:rec_off in
      if key_len = String.length key && read_record_key t ~off:rec_off ~key_len = key
      then Some (ptr_off, rec_off, next, key_len, val_len)
      else walk rec_off (* record's next field is at offset [rec_off] *)
  in
  walk slot

let check_open t = if t.closed then failwith "Hash_store: store is closed"

let get t key =
  check_open t;
  match find_in_chain t key with
  | None -> None
  | Some (_, rec_off, _, key_len, val_len) ->
    Some (read_record_value t ~off:rec_off ~key_len ~val_len)

let put t key value =
  check_open t;
  (match find_in_chain t key with
  | Some (ptr_off, _, next, _, _) ->
    (* Unlink the stale record. *)
    write_offset t ~off:ptr_off next;
    t.count <- t.count - 1
  | None -> ());
  let slot = bucket_offset (bucket_of_key t key) in
  let head = read_offset t ~off:slot in
  let rec_off = append_record t ~next:head ~key ~value in
  write_offset t ~off:slot rec_off;
  t.count <- t.count + 1

let delete t key =
  check_open t;
  match find_in_chain t key with
  | None -> false
  | Some (ptr_off, _, next, _, _) ->
    write_offset t ~off:ptr_off next;
    t.count <- t.count - 1;
    true

let iter t f =
  check_open t;
  for b = 0 to t.buckets - 1 do
    let rec walk off =
      if off <> 0 then begin
        let next, key_len, val_len = read_record_header t ~off in
        let key = read_record_key t ~off ~key_len in
        let value = read_record_value t ~off ~key_len ~val_len in
        f key value;
        walk next
      end
    in
    walk (read_offset t ~off:(bucket_offset b))
  done

let sync t =
  check_open t;
  write_header t;
  Unix.fsync t.fd

let close t =
  if not t.closed then begin
    write_header t;
    t.closed <- true;
    Reg.remove ("hash:" ^ t.path);
    Unix.close t.fd
  end

let round_up_pow2 n =
  let rec loop p = if p >= n then p else loop (p * 2) in
  loop 1

let to_kv t =
  Reg.put ("hash:" ^ t.path) t;
  {
    Kv.name = "hash:" ^ t.path;
    get = get t;
    put = put t;
    delete = delete t;
    iter = iter t;
    length = (fun () -> t.count);
    sync = (fun () -> sync t);
    close = (fun () -> close t);
    stats = t.stats;
  }

let create ?(buckets = 65536) path =
  if buckets <= 0 then invalid_arg "Hash_store.create: buckets must be positive";
  let buckets = round_up_pow2 buckets in
  let fd = Unix.openfile path [ Unix.O_RDWR; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
  let t =
    {
      fd;
      buckets;
      count = 0;
      file_end = header_size + (8 * buckets);
      stats = Io_stats.create ();
      path;
      closed = false;
    }
  in
  write_header t;
  (* Zero the bucket directory in one write. *)
  let dir = Bytes.make (8 * buckets) '\000' in
  really_pwrite t ~off:header_size dir 0 (Bytes.length dir);
  Io_stats.reset t.stats;
  to_kv t

let open_existing path =
  let fd =
    try Unix.openfile path [ Unix.O_RDWR ] 0o644
    with Unix.Unix_error (e, _, _) ->
      failwith (Printf.sprintf "Hash_store.open_existing %s: %s" path (Unix.error_message e))
  in
  let size = (Unix.fstat fd).Unix.st_size in
  if size < header_size then failwith "Hash_store.open_existing: file too small";
  let t =
    { fd; buckets = 0; count = 0; file_end = size; stats = Io_stats.create ();
      path; closed = false }
  in
  let buf = Bytes.create header_size in
  really_pread t ~off:0 buf 0 header_size;
  if Bytes.sub_string buf 0 8 <> magic then
    failwith "Hash_store.open_existing: bad magic";
  let buckets = read_u64 buf 8 and count = read_u64 buf 16 in
  Io_stats.reset t.stats;
  let t = { t with buckets; count } in
  to_kv t


let find_handle kv what =
  match Reg.find_opt kv.Kv.name with
  | Some t when not t.closed -> t
  | _ -> invalid_arg ("Hash_store." ^ what ^ ": not an open hash store handle")

let file_size kv =
  let t = find_handle kv "file_size" in
  (Unix.fstat t.fd).Unix.st_size

let optimize kv =
  let t = find_handle kv "optimize" in
  let tmp_path = t.path ^ ".optimize" in
  let fd = Unix.openfile tmp_path [ Unix.O_RDWR; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
  let fresh =
    {
      fd;
      buckets = t.buckets;
      count = 0;
      file_end = header_size + (8 * t.buckets);
      stats = t.stats;
      path = tmp_path;
      closed = false;
    }
  in
  write_header fresh;
  let dir = Bytes.make (8 * t.buckets) '\000' in
  really_pwrite fresh ~off:header_size dir 0 (Bytes.length dir);
  iter t (fun key value -> put fresh key value);
  write_header fresh;
  Unix.fsync fd;
  Unix.rename tmp_path t.path;
  Unix.close t.fd;
  t.fd <- fd;
  t.count <- fresh.count;
  t.file_end <- fresh.file_end
