(** Named mutexes with optional runtime lock-order checking.

    Every mutex in the project is created through this module with a
    class name (e.g. ["server.dispatch"]). When the [NSCQ_LOCKDEP]
    environment variable is set to [1] (or [true]/[yes]/[on]), each
    acquire records, per thread, which lock classes were already held
    and adds the corresponding edges to a global lock-order graph:

    - acquiring a mutex the current thread already holds raises
      {!Violation} immediately instead of deadlocking;
    - an acquire whose class closes a cycle in the order graph (the
      classic A→B in one thread, B→A in another) is recorded as a
      potential deadlock and reported by {!violations} — the program
      keeps running, exactly like the kernel's lockdep warns once;
    - holding two instances of the same class is recorded as a
      same-class nesting violation.

    With the variable unset, every operation is a direct call on the
    underlying [Mutex] plus one branch on a cached boolean — no
    allocation, no bookkeeping. *)

type t

exception Violation of string

(** [create name] makes a mutex belonging to lock class [name].
    Instances created with the same name share one node in the order
    graph. *)
val create : string -> t

val name : t -> string

(** Like [Mutex.lock]. Under lockdep, checks for double-acquire (raises
    {!Violation}) and records order edges before blocking. *)
val lock : t -> unit

val unlock : t -> unit

(** [protect t f] = lock, run [f], unlock — like [Mutex.protect]. *)
val protect : t -> (unit -> 'a) -> 'a

(** [wait cond t] is [Condition.wait cond] on the underlying mutex,
    keeping the held-lock bookkeeping consistent across the implicit
    release/re-acquire. *)
val wait : Condition.t -> t -> unit

(** Whether lockdep checking is currently on. Initialised from
    [NSCQ_LOCKDEP]. *)
val enabled : unit -> bool

(** Test hook: turn checking on or off at runtime. *)
val set_enabled : bool -> unit

(** [set_tracking true] keeps the per-thread held-lock table up to date
    even with order checking off, so {!held_by_self} can answer. The
    race sanitizer ({!Racesan}) flips this on under [NSCQ_TSAN=1];
    plain builds keep the branch-free fast path. *)
val set_tracking : bool -> unit

(** Whether the calling thread currently holds [t]. Always [false] when
    neither lockdep checking nor {!set_tracking} bookkeeping is on —
    callers must gate on their own enable flag first. *)
val held_by_self : t -> bool

(** [set_wait_hook (Some f)] arranges for every {e contended} acquire
    (one where [Mutex.try_lock] fails) to call [f class_name wait_us]
    once the lock is finally held, with the time the thread spent
    blocked. Orthogonal to lockdep checking — the flight recorder
    installs it to surface lock contention on its timeline. [f] must
    not acquire any {!t} itself. [None] (the default) restores the
    plain fast path. *)
val set_wait_hook : (string -> int -> unit) option -> unit

(** Violations recorded so far (deduplicated, oldest first). *)
val violations : unit -> string list

(** Human-readable report: the lock-order graph followed by any
    violations. *)
val report : unit -> string

(** Test hook: forget the order graph, held-lock state and recorded
    violations. *)
val reset : unit -> unit
