(** Shared name → handle registries.

    The file-backed stores each keep a process-wide table mapping a
    [Kv.t] name back to the concrete handle so module-specific
    operations ([compact], [optimize], [range], …) can recover it. The
    table is shared by every domain that opens a store, so all accesses
    go through a {!Lockdep} mutex named ["<kind>.registry"]. *)

module Make (V : sig
  type t

  (** Lock-class and diagnostic prefix, e.g. ["log_store"]. *)
  val kind : string
end) : sig
  (** [put name v] binds [name], replacing any previous binding. *)
  val put : string -> V.t -> unit

  val remove : string -> unit
  val find_opt : string -> V.t option

  (** [find name ~what] is the handle bound to [name], or
      [Invalid_argument "<kind>.<what>: not a <kind> handle"]. *)
  val find : string -> what:string -> V.t
end
