(** Binary encoding of inverted-file payloads.

    Postings lists are stored as length-prefixed byte strings: unsigned
    LEB128 varints throughout, with sorted id sequences delta-encoded (gaps),
    as is conventional for inverted files. *)

(** {1 Writer} *)

type writer

val writer : unit -> writer
val contents : writer -> string
val write_varint : writer -> int -> unit
val write_int_list : writer -> int list -> unit
(** Length-prefixed, delta-encoded; the list must be strictly increasing. *)

val write_int_array : writer -> int array -> unit
(** As {!write_int_list}, for strictly increasing arrays. *)

val write_string : writer -> string -> unit
(** Length-prefixed raw bytes. *)

val write_raw : writer -> string -> unit
(** Raw bytes, no length prefix — for framing formats that carry their own
    lengths (e.g. the {!Plist_blocks} directory). *)

(** {1 Reader} *)

type reader

exception Corrupt of string

val reader : string -> reader
val reader_sub : string -> pos:int -> len:int -> reader
val at_end : reader -> bool

(** Current byte offset within the underlying string (absolute, i.e.
    relative to the string passed to {!reader} / {!reader_sub}). *)
val pos : reader -> int
val read_varint : reader -> int
val read_int_list : reader -> int list
val read_int_array : reader -> int array
val read_string : reader -> string

(** {1 Convenience} *)

val encode_int_array : int array -> string
val decode_int_array : string -> int array
