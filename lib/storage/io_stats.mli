(** I/O and access counters.

    The paper's caching experiments (Sec. 3.3 / 5.2) measure the benefit of
    buffering hot inverted lists in main memory against a storage engine with
    caching disabled. These counters make that effect observable and testable
    independently of wall-clock noise. *)

type t

val create : unit -> t
val reset : t -> unit

(** {1 Recording} *)

val record_read : t -> bytes:int -> unit
val record_write : t -> bytes:int -> unit
val record_seek : t -> unit
val record_hit : t -> unit
(** A lookup served from a main-memory cache. *)

val record_miss : t -> unit
(** A lookup that had to go to the backing store. *)

val record_lookup : t -> unit
(** One logical inverted-list lookup. Every lookup must record exactly one
    hit or miss, so [lookups = hits + misses] always holds — a property
    the test suite checks. *)

val record_fault : t -> unit
(** An injected failure (see {!Fault}). *)

val record_recovery : t -> unit
(** A recovery action: a journal rollback or a truncated log tail. *)

(** {1 Reading} *)

val reads : t -> int
val writes : t -> int
val bytes_read : t -> int
val bytes_written : t -> int
val seeks : t -> int
val hits : t -> int
val misses : t -> int
val lookups : t -> int
val faults : t -> int
val recoveries : t -> int

val hit_ratio : t -> float
(** [hits / (hits + misses)], or [0.] when no lookups were recorded. *)

val merge : t -> t -> t
(** Pointwise sum, as a fresh counter. *)

val pp : Format.formatter -> t -> unit
