(** I/O and access counters.

    The paper's caching experiments (Sec. 3.3 / 5.2) measure the benefit of
    buffering hot inverted lists in main memory against a storage engine with
    caching disabled. These counters make that effect observable and testable
    independently of wall-clock noise. *)

type t

val create : unit -> t
val reset : t -> unit

(** {1 Recording} *)

val record_read : t -> bytes:int -> unit
val record_write : t -> bytes:int -> unit
val record_seek : t -> unit
val record_hit : t -> unit
(** A lookup served from a main-memory cache. *)

val record_miss : t -> unit
(** A lookup that had to go to the backing store. *)

val record_lookup : t -> unit
(** One logical inverted-list lookup. Every lookup must record exactly one
    hit or miss, so [lookups = hits + misses] always holds — a property
    the test suite checks. *)

val record_fault : t -> unit
(** An injected failure (see {!Fault}). *)

val record_recovery : t -> unit
(** A recovery action: a journal rollback or a truncated log tail. *)

(** {1 Reading} *)

val reads : t -> int
val writes : t -> int
val bytes_read : t -> int
val bytes_written : t -> int
val seeks : t -> int
val hits : t -> int
val misses : t -> int
val lookups : t -> int
val faults : t -> int
val recoveries : t -> int

val hit_ratio : t -> float
(** [hits / (hits + misses)], or [0.] when no lookups were recorded. *)

val merge : t -> t -> t
(** Pointwise sum, as a fresh counter. *)

val pp : Format.formatter -> t -> unit
(** One line: reads/writes/seeks and cache hits/misses with the hit ratio
    rendered as [ratio %.3f] (matching [Server_stats.render] precision). *)

val register : Obs.Metrics.t -> ?labels:(string * string) list -> t -> unit
(** Publishes these counters into a metrics registry as
    [nscq_io_*_total] callback series plus an [nscq_io_cache_hit_ratio]
    gauge. Registering another [t] under the same labels replaces the
    series (the registry samples whichever handle registered last). *)
