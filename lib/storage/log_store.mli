(** Crash-safe append-only key-value store (log-structured, Bitcask-style).

    The paper's Tokyo Cabinet setting assumes a cleanly-written index; a
    production deployment also wants crash safety. This backend provides it
    with the classic log-structured design:

    - the data file is a sequence of checksummed records
      [crc32 | flags | key_len | val_len | key | value]; puts and deletes
      (tombstones) only ever {e append}, so an interrupted write can only
      produce a torn {e tail};
    - the key directory lives in memory and is rebuilt by a sequential scan
      on open; a record that fails its checksum — a torn write from a crash
      — truncates the log at that point, recovering the store to its last
      consistent prefix;
    - {!compact} rewrites live records into a fresh file, dropping
      overwritten versions and tombstones.

    Trade-offs vs {!Hash_store}: O(live keys) memory for the directory and
    an O(file) scan at open, in exchange for crash safety and strictly
    sequential writes. *)

val create : string -> Kv.t
(** Creates a fresh store (truncating [path]). *)

val open_existing : ?to_last_commit:bool -> string -> Kv.t
(** Recovers the store: scans the log, rebuilds the directory, and
    truncates any torn tail (recorded as a recovery on the handle's
    {!Io_stats}). With [~to_last_commit:true] the log is additionally
    rolled back to the last {!mark_commit} fence, so a batch interrupted
    {e between} records — not only inside one — disappears entirely.
    @raise Failure on a missing file or bad header. *)

val mark_commit : Kv.t -> unit
(** Appends a commit fence and fsyncs: everything before it survives an
    [open_existing ~to_last_commit:true] recovery. Only valid on handles
    from this module. @raise Invalid_argument on foreign handles. *)

val last_commit : Kv.t -> int
(** File offset just past the most recent commit fence (the header size
    when none was ever written). @raise Invalid_argument on foreign
    handles. *)

val compact : Kv.t -> unit
(** Garbage-collects dead records in place (atomic rename of a rewritten
    file). Only valid on handles from this module.
    @raise Invalid_argument on foreign handles. *)

val dead_bytes : Kv.t -> int
(** Bytes occupied by overwritten/deleted records (compaction would
    reclaim them). @raise Invalid_argument on foreign handles. *)
