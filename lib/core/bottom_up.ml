type stack_item =
  | Marker  (* the 'S' marker of Fig. 5 *)
  | Hset of Invfile.Plist.idset

(* The stack either lives in memory or spills to disk (paper Sec. 5.1,
   assumption (2): "I/O-efficient solutions for stacks, e.g., as available
   in the open-source STXXL library, can be used off-the-shelf"). *)
type stack =
  | In_memory of stack_item Stack.t
  | External of Storage.Ext_stack.t

let marker_bytes = "M"

let encode_item = function
  | Marker -> marker_bytes
  | Hset h -> "H" ^ Invfile.Plist.idset_to_bytes h

let decode_item s =
  if s = marker_bytes then Marker
  else Hset (Invfile.Plist.idset_of_bytes (String.sub s 1 (String.length s - 1)))

let push stack item =
  match stack with
  | In_memory s -> Stack.push item s
  | External s -> Storage.Ext_stack.push s (encode_item item)

let pop stack =
  match stack with
  | In_memory s -> (try Some (Stack.pop s) with Stack.Empty -> None)
  | External s -> Option.map decode_item (Storage.Ext_stack.pop s)

(* Does candidate [p] cover the child head sets [lists] under [mode]? *)
let covers (mode : Semantics.mode) (p : Invfile.Posting.t) lists =
  match mode.Semantics.cover with
  | Semantics.Exists_child ->
    let covers_one =
      match mode.Semantics.edge with
      | Semantics.Child -> Invfile.Plist.covers_child
      | Semantics.Descendant -> Invfile.Plist.covers_descendant
    in
    List.for_all (covers_one p) lists
  | Semantics.Exists_distinct ->
    (* Admissible distinct representatives among p's internal children. *)
    let admissible h =
      Array.to_list p.Invfile.Posting.children
      |> List.filter (fun c -> Invfile.Plist.idset_mem h c)
      |> Array.of_list
    in
    Matching.has_sdr (List.map admissible lists)
  | Semantics.All_data_children ->
    (* Every internal child of p must appear in some child's head set. *)
    Array.for_all
      (fun c -> List.exists (fun h -> Invfile.Plist.idset_mem h c) lists)
      p.Invfile.Posting.children

(* Alg. 4. [stack] is shared across the recursion, exactly as in the
   paper; each call leaves precisely one Hset on top. [root_filter] applies
   only at the query root ([at_root]). *)
let rec interior mode ?root_filter ~at_root inv (n : Query.node) stack =
  push stack Marker;
  List.iter (fun c -> interior mode ?root_filter ~at_root:false inv c stack) n.Query.children;
  let lists =
    let rec drain acc =
      match pop stack with
      | Some Marker -> acc
      | Some (Hset h) -> drain (h :: acc)
      | None -> failwith "Bottom_up: stack underflow"
    in
    drain []
  in
  let early_fail =
    (* An empty child head set dooms Exists covers (Alg. 4, line 10); the
       superset cover can still succeed through other children. *)
    match mode.Semantics.cover with
    | Semantics.Exists_child | Semantics.Exists_distinct ->
      List.exists Invfile.Plist.idset_is_empty lists
    | Semantics.All_data_children -> false
  in
  if early_fail then push stack (Hset Invfile.Plist.idset_empty)
  else begin
    let candidates = Semantics.candidates mode inv n in
    let restricted =
      match root_filter with Some _ when at_root -> true | _ -> false
    in
    let candidates =
      match root_filter with
      | Some ids when at_root -> Invfile.Plist.restrict candidates ids
      | _ -> candidates
    in
    (* An unconstrained query node (no leaves, no children — e.g. [{}])
       matches every internal node: share the memoized universal head set
       instead of materializing the node table each time. *)
    let unconstrained =
      (not restricted) && lists = []
      && (match Invfile.Inverted_file.all_nodes inv with
         | table -> candidates == table
         | exception Invfile.Inverted_file.Malformed _ ->
           (* no memoized node table (built with [node_table:false]):
              the candidates came from Semantics.universe's rebuild, so
              fall through to the generic filter below *)
           false)
      &&
      match mode.Semantics.cover with
      | Semantics.Exists_child | Semantics.Exists_distinct -> true
      | Semantics.All_data_children -> false
    in
    if unconstrained then
      push stack (Hset (Invfile.Inverted_file.all_nodes_idset inv))
    else begin
      (* Small-side optimization: with parent-child edges and at least one
         child head set, every survivor is the parent of a member of the
         smallest head set. When that set is much smaller than the candidate
         list, iterate its parents instead of filtering all candidates —
         crucial when query nodes carry atoms that occur in most records. *)
      let survivors =
        let small_side_applicable =
          (match mode.Semantics.edge with
          | Semantics.Child -> true
          | Semantics.Descendant -> false)
          &&
          match mode.Semantics.cover with
          | Semantics.Exists_child | Semantics.Exists_distinct -> lists <> []
          | Semantics.All_data_children -> false
        in
        let smallest =
          match lists with
          | [] -> Invfile.Plist.idset_empty
          | first :: rest ->
            List.fold_left
              (fun acc h ->
                if Invfile.Plist.idset_cardinal h < Invfile.Plist.idset_cardinal acc
                then h
                else acc)
              first rest
        in
        if
          small_side_applicable
          && 4 * Invfile.Plist.idset_cardinal smallest < Invfile.Plist.length candidates
        then
          Invfile.Plist.idset_parents smallest
          |> List.filter_map (Invfile.Plist.find candidates)
          |> List.filter (fun p -> covers mode p lists)
        else Array.to_list candidates |> List.filter (fun p -> covers mode p lists)
      in
      let h = Invfile.Plist.idset_of_postings (Array.of_list survivors) in
      push stack (Hset h)
    end
  end

let run_on_stack mode ?root_filter inv q stack =
  interior mode ?root_filter ~at_root:true inv q stack;
  match pop stack with
  | Some (Hset h) -> Invfile.Plist.idset_nodes h
  | Some Marker | None -> failwith "Bottom_up: marker left on stack"

let run mode ?root_filter ?spill_to inv q =
  match spill_to with
  | None -> run_on_stack mode ?root_filter inv q (In_memory (Stack.create ()))
  | Some path ->
    let ext = Storage.Ext_stack.create ~buffer_items:64 path in
    Fun.protect
      ~finally:(fun () -> Storage.Ext_stack.close ext)
      (fun () -> run_on_stack mode ?root_filter inv q (External ext))
