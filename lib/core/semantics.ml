type join = Containment | Equality | Superset | Overlap of int | Similarity of float

type embedding = Hom | Iso | Homeo | Homeo_full

type cover = Exists_child | Exists_distinct | All_data_children

type edge = Child | Descendant

type mode = {
  gen : Invfile.Inverted_file.t -> Query.node -> Invfile.Plist.t;
  cover : cover;
  edge : edge;
}

exception Unsupported of string

let lookup_all inv (n : Query.node) =
  Array.to_list (Array.map (Invfile.Inverted_file.lookup inv) n.Query.leaves)

(* The candidate universe for a query node that constrains nothing (no
   leaf labels): every internal node. Normally the memoized node table;
   when the collection was built without one, derive it from the stored
   records instead of crashing — degenerate queries are the only path
   that needs the universe, so the O(data) rebuild is acceptable and
   keeps [Engine.query {}] total on every store. *)
let universe inv =
  match Invfile.Inverted_file.all_nodes inv with
  | l -> l
  | exception Invfile.Inverted_file.Malformed _ ->
    let out = ref [] in
    Invfile.Inverted_file.iter_records inv (fun record_id _ ->
        let tree = Invfile.Inverted_file.record_tree inv record_id in
        Nested.Tree.iter
          (fun node -> out := Invfile.Posting.of_tree_node node :: !out)
          tree);
    let a = Array.of_list !out in
    Array.sort Invfile.Posting.compare a;
    a

(* Raw encoded payloads for streamed (blocked) processing; absent atoms
   contribute an empty encoded list. *)
let lookup_all_raw inv (n : Query.node) =
  Array.to_list
    (Array.map
       (fun a ->
         match Invfile.Inverted_file.lookup_raw inv a with
         | Some payload -> payload
         | None -> Invfile.Plist.to_bytes Invfile.Plist.empty)
       n.Query.leaves)

(* q ⊆ s: the node must contain every leaf label of n — the intersection of
   Alg. 2 line 8. A node with no leaf labels constrains nothing, so its
   candidates are the whole node table (our extension; see DESIGN.md). *)
let containment_gen inv (n : Query.node) =
  if Array.length n.Query.leaves = 0 then universe inv
  else Invfile.Plist.inter_many (lookup_all inv n)

(* Fully-homeomorphic candidates: nodes whose *subtree* contains every leaf
   label of n --- the ancestor-or-self closure of each leaf's postings,
   intersected (paper, footnote 4). Parent chains are resolved against the
   node table. *)
let subtree_containment_gen inv (n : Query.node) =
  if Array.length n.Query.leaves = 0 then universe inv
  else begin
    let table = Invfile.Inverted_file.all_nodes inv in
    let closure l =
      let ids : (int, unit) Hashtbl.t = Hashtbl.create 64 in
      let rec up id =
        if id >= 0 && not (Hashtbl.mem ids id) then begin
          Hashtbl.replace ids id ();
          match Invfile.Plist.find table id with
          | Some q -> up q.Invfile.Posting.parent
          | None -> ()
        end
      in
      Array.iter (fun p -> up p.Invfile.Posting.node) l;
      Hashtbl.fold (fun id () acc -> id :: acc) ids []
      |> List.sort Int.compare
      |> List.filter_map (Invfile.Plist.find table)
      |> Array.of_list
    in
    Invfile.Plist.inter_many (List.map closure (lookup_all inv n))
  end

(* Blocked variant (paper Sec. 5.1, assumption (1)): intersect the encoded
   lists without materializing them. *)
let containment_gen_streamed inv (n : Query.node) =
  if Array.length n.Query.leaves = 0 then universe inv
  else Invfile.Plist_stream.inter_many (lookup_all_raw inv n)

(* q = s strengthens containment with |ℓ(n)| = |ℓ(s)| (Sec. 4.1). We also
   require equal internal-child counts, which equal canonical sets always
   satisfy; the paper stores only leaf counts. *)
let equality_gen inv (n : Query.node) =
  let child_count = Query.child_count n in
  Invfile.Plist.filter
    (fun p -> Array.length p.Invfile.Posting.children = child_count)
    (Invfile.Plist.filter_leaf_count_eq
       (Query.leaf_label_count n)
       (containment_gen inv n))

(* q ⊇ s: keep nodes all of whose leaves are among ℓ(n) — multiset union
   with multiplicity = leaf count (Sec. 4.1). Nodes with no leaves at all
   qualify vacuously but appear in no inverted list (a gap in the paper's
   formulation), so they are merged in from the node table. *)
let superset_gen inv (n : Query.node) =
  let leafless =
    Invfile.Plist.filter_leaf_count_eq 0 (universe inv)
  in
  if Array.length n.Query.leaves = 0 then leafless
  else begin
    let counted = Invfile.Plist.union_with_counts (lookup_all inv n) in
    let with_leaves =
      Array.to_list counted
      |> List.filter_map (fun (p, c) ->
             if c = p.Invfile.Posting.leaf_count then Some p else None)
    in
    (* merge two sorted, disjoint lists *)
    Invfile.Plist.of_list (with_leaves @ Array.to_list leafless)
  end

(* Relative overlap: per-node threshold ⌈r·|ℓ(n)|⌉ (with a floor of 1 on
   nodes that have leaves; leafless nodes are unconstrained). *)
let similarity_threshold r n =
  let leaves = Query.leaf_label_count n in
  if leaves = 0 then 0 else max 1 (int_of_float (Float.ceil (r *. float_of_int leaves)))

(* ε-overlap: keep nodes sharing at least ε leaf values with n (Sec. 4.1). *)
let overlap_gen eps inv (n : Query.node) =
  if Array.length n.Query.leaves < eps then Invfile.Plist.empty
  else begin
    let counted = Invfile.Plist.union_with_counts (lookup_all inv n) in
    Array.to_list counted
    |> List.filter_map (fun (p, c) -> if c >= eps then Some p else None)
    |> Array.of_list
  end

let similarity_gen r inv (n : Query.node) =
  let eps = similarity_threshold r n in
  if eps = 0 then universe inv else overlap_gen eps inv n

(* Streamed multiset union, for the union-based joins. *)
let union_with_counts_streamed inv n =
  Invfile.Plist_stream.union_with_counts (lookup_all_raw inv n)

let superset_gen_streamed inv (n : Query.node) =
  let leafless =
    Invfile.Plist.filter_leaf_count_eq 0 (universe inv)
  in
  if Array.length n.Query.leaves = 0 then leafless
  else begin
    let with_leaves =
      Array.to_list (union_with_counts_streamed inv n)
      |> List.filter_map (fun (p, c) ->
             if c = p.Invfile.Posting.leaf_count then Some p else None)
    in
    Invfile.Plist.of_list (with_leaves @ Array.to_list leafless)
  end

let overlap_gen_streamed eps inv (n : Query.node) =
  if Array.length n.Query.leaves < eps then Invfile.Plist.empty
  else
    Array.to_list (union_with_counts_streamed inv n)
    |> List.filter_map (fun (p, c) -> if c >= eps then Some p else None)
    |> Array.of_list

let similarity_gen_streamed r inv (n : Query.node) =
  let eps = similarity_threshold r n in
  if eps = 0 then universe inv
  else overlap_gen_streamed eps inv n

let streamed_of join mode =
  (* Swap each generator for its streamed version (node-table generators
     and the equality filter chain are unchanged). *)
  match join with
  | Containment -> { mode with gen = containment_gen_streamed }
  | Superset -> { mode with gen = superset_gen_streamed }
  | Overlap eps -> { mode with gen = overlap_gen_streamed eps }
  | Similarity r -> { mode with gen = similarity_gen_streamed r }
  | Equality -> mode

(* Prefix wildcards: a query leaf ending in '*' matches any atom with that
   prefix. Its candidate list is the union of the matching atoms' lists. *)
let is_pattern a = String.length a >= 1 && a.[String.length a - 1] = '*'

let pattern_prefix a = String.sub a 0 (String.length a - 1)

let wildcard_containment_gen inv (n : Query.node) =
  if Array.length n.Query.leaves = 0 then universe inv
  else begin
    let lists =
      Array.to_list n.Query.leaves
      |> List.map (fun leaf ->
             if is_pattern leaf then
               Invfile.Inverted_file.atoms_with_prefix inv (pattern_prefix leaf)
               |> List.map (Invfile.Inverted_file.lookup inv)
               |> List.fold_left Invfile.Plist.union Invfile.Plist.empty
             else Invfile.Inverted_file.lookup inv leaf)
    in
    Invfile.Plist.inter_many lists
  end

let mode_of ?(streamed = false) ?(wildcards = false) join embedding =
  (if wildcards then
     match join with
     | Containment -> ()
     | Equality | Superset | Overlap _ | Similarity _ ->
       raise (Unsupported "wildcards are defined for the containment join only"));
  let adjust mode =
    match join with
    | Containment when wildcards -> { mode with gen = wildcard_containment_gen }
    | _ when streamed -> streamed_of join mode
    | _ -> mode
  in
  adjust @@
  let unsupported what = raise (Unsupported what) in
  match join, embedding with
  | Containment, Hom -> { gen = containment_gen; cover = Exists_child; edge = Child }
  | Containment, Iso -> { gen = containment_gen; cover = Exists_distinct; edge = Child }
  | Containment, Homeo -> { gen = containment_gen; cover = Exists_child; edge = Descendant }
  | Containment, Homeo_full ->
    { gen = subtree_containment_gen; cover = Exists_child; edge = Descendant }
  | (Equality | Superset | Overlap _ | Similarity _), Homeo_full ->
    unsupported "only the containment join is defined under fully-homeomorphic embedding"
  | Equality, Hom -> { gen = equality_gen; cover = Exists_child; edge = Child }
  | Equality, Iso -> { gen = equality_gen; cover = Exists_distinct; edge = Child }
  | Equality, Homeo -> unsupported "equality join under homeomorphic embedding"
  | Superset, Hom -> { gen = superset_gen; cover = All_data_children; edge = Child }
  | Superset, Iso -> unsupported "superset join under isomorphic embedding"
  | Superset, Homeo -> unsupported "superset join under homeomorphic embedding"
  | Overlap eps, _ when eps < 1 -> invalid_arg "Semantics.mode_of: ε must be ≥ 1"
  | Overlap eps, Hom -> { gen = overlap_gen eps; cover = Exists_child; edge = Child }
  | Overlap eps, Iso -> { gen = overlap_gen eps; cover = Exists_distinct; edge = Child }
  | Overlap eps, Homeo ->
    { gen = overlap_gen eps; cover = Exists_child; edge = Descendant }
  | Similarity r, _ when r <= 0. || r > 1. ->
    invalid_arg "Semantics.mode_of: similarity ratio must be in (0, 1]"
  | Similarity r, Hom -> { gen = similarity_gen r; cover = Exists_child; edge = Child }
  | Similarity r, Iso ->
    { gen = similarity_gen r; cover = Exists_distinct; edge = Child }
  | Similarity r, Homeo ->
    { gen = similarity_gen r; cover = Exists_child; edge = Descendant }

let candidates mode inv n = mode.gen inv n

let pp_join ppf = function
  | Containment -> Format.pp_print_string ppf "containment"
  | Equality -> Format.pp_print_string ppf "equality"
  | Superset -> Format.pp_print_string ppf "superset"
  | Overlap e -> Format.fprintf ppf "overlap(ε=%d)" e
  | Similarity r -> Format.fprintf ppf "similarity(r=%.2f)" r

let pp_embedding ppf = function
  | Hom -> Format.pp_print_string ppf "homomorphic"
  | Iso -> Format.pp_print_string ppf "isomorphic"
  | Homeo -> Format.pp_print_string ppf "homeomorphic"
  | Homeo_full -> Format.pp_print_string ppf "fully-homeomorphic"
