(** Multicore workload execution.

    The paper's implementation is "a single threaded process" (Sec. 5.1);
    queries over a read-only inverted file are embarrassingly parallel, so
    this module adds the obvious scale-up on OCaml 5 domains. Every domain
    opens its {e own} store handle (separate file descriptors — the stores'
    seek-then-read access is not shareable) and its own cache, and runs a
    slice of the workload. *)

type result = {
  elapsed_s : float;  (** wall clock for the whole batch *)
  results_total : int;
  positives : int;
}

val run_workload :
  ?domains:int ->
  open_handle:(unit -> Invfile.Inverted_file.t) ->
  ?config:Engine.config ->
  ?cache_budget:int ->
  Nested.Value.t list ->
  result
(** [open_handle] must return a fresh handle onto the same collection (it
    is called once per domain, in that domain); each handle is closed when
    its slice completes. [cache_budget] attaches the static cache per
    domain (0 = none, the default). Queries are dealt round-robin.
    [domains] defaults to {!default_domains}.
    @raise Invalid_argument if [domains < 1]. *)

val recommended_domains : unit -> int
(** [Domain.recommended_domain_count], capped at 8. *)

val default_domains : unit -> int
(** The [NSCQ_DOMAINS] environment variable when set to an integer
    (clamped to at least 1), else [Domain.recommended_domain_count () - 1]
    — one domain left free for the caller's own loop, and again never
    below 1, even on a single-core host. Unparseable [NSCQ_DOMAINS]
    values fall back to the core-count default. The default of
    {!run_workload}, [nscq serve], the shard router, and the bench
    driver. *)
