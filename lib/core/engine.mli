(** The query engine: one entry point over both algorithms, all join types,
    all embedding semantics, caching, and Bloom prefiltering.

    This is the layer the paper's empirical study scripts against: pick an
    algorithm and optimizations in {!config}, then run queries or whole
    workloads against an {!Invfile.Inverted_file.t}. *)

type algorithm =
  | Top_down  (** Sec. 3.1 — strict (true-embedding) variant *)
  | Top_down_paper
      (** Sec. 3.1 exactly as published — path-containment relaxation for
          branching queries; see {!Top_down.run_paper} *)
  | Bottom_up  (** Sec. 3.2 *)
  | Naive_scan  (** Sec. 3, comment (1) — the full-scan baseline *)
  | Signature_scan
      (** signature-file baseline from the flat-set literature the paper
          builds on: scan the per-record hierarchical Bloom signatures
          ({!Filter_index}, which must be set in the config), verify
          survivors with the {!Embed} oracle. Root scope only. *)

type scope =
  | Roots  (** Equation 2: match whole records (root-to-root) — default *)
  | Anywhere  (** match the query at any internal node *)

type config = {
  algorithm : algorithm;
  join : Semantics.join;
  embedding : Semantics.embedding;
  scope : scope;
  verify : bool;
      (** re-check every reported match with the {!Embed} oracle and drop
          false positives (exact equality join; belt-and-braces elsewhere) *)
  filter_index : Filter_index.t option;
      (** Bloom prefilter (Sec. 3.3), applied before the algorithm runs *)
  td_order : Top_down.order;
      (** child-processing order for the strict top-down algorithm *)
  streamed : bool;
      (** compute candidate lists straight from their encoded payloads
          ({!Invfile.Plist_stream}) instead of materializing them — the
          paper's blocked-I/O option (Sec. 5.1, assumption (1)); bypasses
          the decoded-list cache *)
  spill_to : string option;
      (** run the bottom-up stack through {!Storage.Ext_stack} backed by
          this file — the paper's STXXL option (Sec. 5.1, assumption (2)) *)
  preflight : bool;
      (** short-circuit containment/equality queries containing an atom
          absent from the collection, with key-existence probes instead of
          list retrievals (off by default to keep the paper's measured
          access pattern) *)
  wildcards : bool;
      (** interpret trailing-['*'] query leaves as atom-prefix patterns
          (containment join only; candidate lists become unions over the
          matching atoms — an ordered range scan on the B+tree backend) *)
  minimize : bool;
      (** rewrite the query with {!Minimize} before evaluation — applied
          only where sound (containment × hom/homeo/homeo-full, without
          wildcards); a no-op elsewhere *)
}

val default : config
(** [Bottom_up], [Containment], [Hom], [Roots], no verification, no
    prefilter. *)

type result = {
  nodes : Intset.t;  (** matching node ids (roots only under [Roots]) *)
  records : int list;  (** matching record ids, ascending *)
  prefilter_survivors : int option;
      (** record count that passed the Bloom prefilter, when one ran *)
}

val query :
  ?config:config -> ?trace:Obs.Trace.t -> Invfile.Inverted_file.t ->
  Nested.Value.t -> result
(** Evaluates [q ⋈ S] for one query value.

    When [trace] is given, each evaluation phase records a span into it:
    [minimize] (when applied), [preflight] (when enabled, with a
    [rejected] attr), [prefilter] (when a filter index is set, with
    [survivors]), [retrieve] (one [atom:a] child per distinct query atom,
    each with its cache hit/miss delta), [eval] (algorithm, candidate
    count, I/O deltas) and [verify] (checked/kept). Every phase span and
    the enclosing root carry [lookups]/[hits]/[misses] deltas pulled from
    {!Invfile.Inverted_file.lookup_stats}, so the tree reconciles with
    {!Storage.Io_stats} totals. Without [trace], nothing is recorded and
    no extra I/O happens.

    The [retrieve] phase pre-probes atoms through the cached lookup path
    (attaching a transient cache when the handle has none) so the trace
    shows which lists were fetched cold. In [streamed] mode it is skipped
    entirely: streaming bypasses the decoded-list cache, so cache hits
    are structurally 0 and pre-materializing lists would distort the
    measured access pattern.
    @raise Invalid_argument if the query is an atom.
    @raise Semantics.Unsupported per {!Semantics.mode_of}. *)

val query_prepared :
  ?config:config -> ?trace:Obs.Trace.t -> Invfile.Inverted_file.t ->
  Query.t -> result

val record_values : Invfile.Inverted_file.t -> result -> Nested.Value.t list
(** Materializes the matching records' values. *)

val query_batch :
  ?config:config -> ?traces:Obs.Trace.t option list ->
  Invfile.Inverted_file.t -> Nested.Value.t list -> result list
(** Evaluates a block of queries against one handle, amortizing index
    probes: every distinct atom across the block is fetched from the store
    once ({!Invfile.Inverted_file.prefetch}) before the queries run
    against the warmed cache (cf. Bouros et al.'s block processing for set
    containment joins, PAPERS.md). Handles without an attached cache get a
    transient batch-scoped one. Results are returned in input order and
    are identical to running {!query} per value.

    [traces] pairs up positionally with the values (shorter lists are
    padded with [None]); each query records its phase spans into its own
    trace, and the block-wide prefetch span lands in the first traced
    query so its I/O stays attributed.

    A handle is {e not} shareable across domains (separate descriptors per
    domain, as {!Parallel} does), but one handle may interleave prepared
    batches and single queries freely — the server's per-domain workers
    rely on this re-entrancy. *)

val containment_join :
  ?config:config -> Invfile.Inverted_file.t -> Nested.Value.t list ->
  (int * int list) list
(** Equation 1 of the paper: evaluates [Q ⋈ S] for a whole query
    collection, returning [(query index, matching record ids)] pairs. *)

val witnesses :
  ?config:config -> Invfile.Inverted_file.t -> Nested.Value.t ->
  (int * Embed.witness) list
(** One concrete embedding per matching node: where each query node lands
    in the data (computed with the {!Embed} oracle over the reported
    matches). Not defined for the superset join's inner nodes. *)

(** {1 Explain} *)

type node_plan = {
  node_path : string;  (** position in the query tree, e.g. ["root.2.0"] *)
  leaves : string list;
  candidate_count : int;  (** size of the node's candidate inverted list *)
}

val explain : ?config:config -> Invfile.Inverted_file.t -> Nested.Value.t -> node_plan list
(** Per-query-node candidate statistics under the config's join/embedding —
    the data a cost-based evaluator would use, and a debugging aid. *)

val pp_plan : Format.formatter -> node_plan list -> unit

val atom_plan :
  Invfile.Inverted_file.t -> string -> Obs.Explain.atom_plan
(** Planner-level statistics for one atom's posting list: length, payload
    bytes, codec and block count, straight from the stored payload
    (zeros and codec ["-"] for an absent atom). The building block the
    profile's atom table — and the join/live/shard explain paths — share. *)

val explain_profile :
  ?config:config -> ?target:string -> Invfile.Inverted_file.t ->
  Nested.Value.t -> Obs.Explain.t
(** The full plan/profile behind [nscq explain] and NSCQL [EXPLAIN]:
    executes the query once under an internal trace and returns the
    planned atom order (posting lengths, payload bytes, codec, block
    counts — rarest first) together with estimated vs. measured
    candidates per phase. Actual counts are read back from the profiled
    run's own trace, so they reconcile exactly with an independent
    traced execution of the same query; estimates follow the paper's
    static model (prefilter ≤ record count, eval ≤ the rarest list's
    length, verify starts from eval's survivors). [target] labels the
    plan node (default ["store"]). *)

val profile_of_trace :
  ?config:config -> ?target:string -> Invfile.Inverted_file.t ->
  Nested.Value.t -> Obs.Trace.span -> int -> Obs.Explain.t
(** [profile_of_trace inv value root records] builds the
    {!explain_profile} value from an already-finished trace of a
    [query ~config inv value] run — for callers (the live store, the
    shard router) that need the query's result {e and} its profile from
    a single evaluation. [records] is the result count to report. *)

val explain_profile_batch :
  ?config:config -> ?target:string -> Invfile.Inverted_file.t ->
  Nested.Value.t list -> Obs.Explain.t list
(** {!explain_profile} over a {!query_batch}: one profile per query, in
    input order, with the block-wide [prefetch] phase attributed to the
    first profile — mirroring how batched traces attribute it. *)

(** {1 Verification & repair}

    The durability story end-to-end: {!Invfile.Journal} makes updates
    atomic, {!Storage.Log_store} recovers torn tails, and these entry
    points let an operator (or [nscq check] / [nscq repair]) audit and
    restore a store. *)

val verify_store : Invfile.Inverted_file.t -> Invfile.Integrity.problem list
(** Full offline consistency audit of the store behind a collection —
    {!Invfile.Integrity.check}; empty means consistent. *)

type repair_report = {
  rolled_back : int;  (** keys restored by finishing a pending journal *)
  problems_before : Invfile.Integrity.problem list;
  rebuilt : Invfile.Repair.outcome option;
      (** set when the index had to be rebuilt from the records *)
  problems_after : Invfile.Integrity.problem list;
      (** non-empty only when even a rebuild could not restore consistency *)
}

val repair : Invfile.Inverted_file.t -> repair_report
(** Restores a damaged store: completes any pending journal rollback,
    then — if the index still disagrees with the stored records — rebuilds
    it from them ({!Invfile.Repair.rebuild}). The handle is refreshed and
    usable afterwards. *)

val pp_repair_report : Format.formatter -> repair_report -> unit

(** {1 Workloads} *)

type workload_stats = {
  queries : int;
  results_total : int;  (** sum of matching record counts *)
  positives : int;  (** queries with ≥ 1 result *)
  elapsed_s : float;
  cache_hits : int;
  cache_misses : int;
  io_reads : int;
  io_bytes_read : int;
}

val run_workload :
  ?config:config -> Invfile.Inverted_file.t -> Nested.Value.t list -> workload_stats
(** Executes the queries sequentially — the paper's unit of measurement
    (Sec. 5.2: elapsed time of sequentially executing all benchmark
    queries) — and reports elapsed time plus cache and I/O deltas. *)

val pp_workload_stats : Format.formatter -> workload_stats -> unit
