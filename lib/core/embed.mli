(** Value-level embedding checks — the reference semantics.

    A direct, index-free implementation of the three embedding semantics of
    Sec. 2 and the join conditions of Sec. 4.1, by dynamic programming over
    (query node, data node) pairs. It defines the meaning the index-based
    algorithms must agree with: the naive baseline (Sec. 3's comment (1)),
    the [~verify] option of {!Engine}, and the test oracle are all built on
    it. Polynomial: O(|q| · |s|) table entries, each resolved with at most a
    bipartite matching over siblings. *)

val at_node :
  ?wildcards:bool ->
  Semantics.join -> Semantics.embedding -> q:Query.t -> s:Nested.Tree.t -> int -> bool
(** Does the query root match the given node of [s] (and its subquery embed
    below it)? For [Containment]/[Hom] this is the paper's [q ⊆ s] at that
    node. [~wildcards:true] interprets trailing-['*'] query leaves as
    prefix patterns (containment join only).
    @raise Invalid_argument if the node id is not in [s];
    @raise Semantics.Unsupported as {!Semantics.mode_of} does. *)

(** {1 Prepared checks}

    One query verified against many data trees — a join's verification
    loop. {!prepare} hoists the per-query work (mode validation, query
    indexing) out of the loop; {!run} then costs one DP pass per tree, or
    a single sorted-array subset test when the query is one node deep
    under a containment join with a child-preserving embedding. *)

type prepared

val prepare :
  ?wildcards:bool ->
  Semantics.join -> Semantics.embedding -> Query.t -> prepared
(** Precompile the query for repeated {!run} calls. Raises as {!at_node}
    does on unsupported mode combinations. *)

val run : prepared -> s:Nested.Tree.t -> int -> bool
(** [run p ~s id] ≡ [at_node ... ~q ~s id] for the query [p] was prepared
    from.
    @raise Invalid_argument if the node id is not in [s]. *)

val nodes :
  ?wildcards:bool ->
  Semantics.join -> Semantics.embedding -> q:Query.t -> s:Nested.Tree.t -> Intset.t
(** All node ids of [s] at which the query root matches. *)

val contains : Semantics.embedding -> q:Nested.Value.t -> s:Nested.Value.t -> bool
(** Root-to-root containment [q ⊆ s] under the given embedding semantics.
    @raise Invalid_argument if either value is an atom. *)

val check :
  Semantics.join -> Semantics.embedding ->
  q:Nested.Value.t -> s:Nested.Value.t -> bool
(** Root-to-root check of an arbitrary join type. *)

(** {1 Witnesses} *)

type witness = (string * int) list
(** One embedding, as (query node path, data node id) pairs in query
    pre-order; paths are as in {!Engine.node_plan} (["root"], ["root.0"],
    …). *)

val witness :
  ?wildcards:bool ->
  Semantics.join -> Semantics.embedding ->
  q:Query.t -> s:Nested.Tree.t -> int -> witness option
(** A concrete embedding of the query at the given node of [s], if one
    exists — the per-node images the boolean check only implies. For [Iso],
    sibling images in the witness are pairwise distinct. *)
