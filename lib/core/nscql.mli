(** NSCQL — a small query language for nested-set collections.

    A thin, readable surface over {!Engine}: one statement per line,
    keywords case-insensitive, values in the nested-set literal syntax.

    {v
    FIND CONTAINS {USA, {UK, {A, motorbike}}}
    COUNT CONTAINS {gatk} UNDER homeo VIA top-down
    FIND EQUALS {a, {b}} VERIFIED
    FIND WITHIN {a, b, {c, d}}              -- records contained in the value
    FIND OVERLAPS {a, b, c} BY 2
    FIND SIMILAR TO {a, b, c, d} AT 0.5
    FIND CONTAINS {x} ANYWHERE LIMIT 3
    EXPLAIN CONTAINS {USA, {UK}}
    WITNESS CONTAINS {USA, {UK, {A, motorbike}}}
    INSERT {London, UK, {UK, {A}}}
    DELETE 17
    STATS
    v}

    Clause meanings: [UNDER hom|iso|homeo|homeo-full] picks the embedding
    semantics; [VIA bottom-up|top-down|top-down-paper|naive] the algorithm;
    [ANYWHERE] matches at any internal node; [VERIFIED] re-checks matches
    with the oracle; [WILDCARDS] treats trailing-['*'] leaves as atom-prefix
    patterns (containment only); [LIMIT n] caps printed results. *)

type verb = Find | Count | Explain | Witness

type predicate =
  | Contains of Nested.Value.t
  | Equals of Nested.Value.t
  | Within of Nested.Value.t  (** superset join: records contained in the value *)
  | Overlaps of Nested.Value.t * int
  | Similar of Nested.Value.t * float

type statement =
  | Query of {
      verb : verb;
      predicate : predicate;
      embedding : Semantics.embedding;
      algorithm : Engine.algorithm;
      anywhere : bool;
      verified : bool;
      wildcards : bool;  (** [WILDCARDS]: trailing-['*'] prefix patterns *)
      minimized : bool;  (** [MINIMIZED]: rewrite with {!Minimize} first *)
      limit : int option;
    }
  | Insert of Nested.Value.t
  | Delete of int
  | Stats

exception Parse_error of string

val parse : string -> statement
(** @raise Parse_error with a human-readable message. *)

val query_config :
  statement ->
  (Engine.config * verb * Nested.Value.t * int option) option
(** The engine configuration, verb, predicate value and limit a [Query]
    statement denotes; [None] for [Insert]/[Delete]/[Stats]. Lets a
    non-{!Invfile.Inverted_file} execution target (the live store's
    server backend) run NSCQL statements with the same semantics
    {!execute} applies. *)

type outcome =
  | Records of { ids : int list; limit : int option }
  | Count of int
  | Plan of Engine.node_plan list
      (** the bare atom-order plan ({!Engine.explain}) — kept for
          programmatic consumers; NSCQL [EXPLAIN] itself answers with
          {!Profile} *)
  | Profile of Obs.Explain.t
      (** [EXPLAIN <query>]: the full plan-and-profile
          ({!Engine.explain_profile}) — planned atom order with posting
          stats plus estimated-vs-actual candidate counts per phase *)
  | Witnesses of (int * Embed.witness) list
  | Inserted of int
  | Deleted of bool
  | Stats_report of Invfile.Stats.t

val execute : Invfile.Inverted_file.t -> statement -> outcome
(** @raise Semantics.Unsupported / [Invalid_argument] as {!Engine.query}. *)

val run : Invfile.Inverted_file.t -> string -> (outcome, string) Result.t
(** Parse + execute, with all errors rendered as strings. *)

val pp_outcome :
  collection:Invfile.Inverted_file.t -> Format.formatter -> outcome -> unit
(** Renders an outcome for an interactive session (materializes record
    values for [Records] up to the limit). *)
