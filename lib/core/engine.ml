module IF = Invfile.Inverted_file

let src = Logs.Src.create "nscq.engine" ~doc:"nested-set containment query engine"

module Log = (val Logs.src_log src : Logs.LOG)

type algorithm =
  | Top_down
  | Top_down_paper
  | Bottom_up
  | Naive_scan
  | Signature_scan

type scope = Roots | Anywhere

type config = {
  algorithm : algorithm;
  join : Semantics.join;
  embedding : Semantics.embedding;
  scope : scope;
  verify : bool;
  filter_index : Filter_index.t option;
  td_order : Top_down.order;
  streamed : bool;
  spill_to : string option;
  preflight : bool;
  wildcards : bool;
  minimize : bool;
}

let default =
  {
    algorithm = Bottom_up;
    join = Semantics.Containment;
    embedding = Semantics.Hom;
    scope = Roots;
    verify = false;
    filter_index = None;
    td_order = Top_down.Query_order;
    streamed = false;
    spill_to = None;
    preflight = false;
    wildcards = false;
    minimize = false;
  }

type result = {
  nodes : Intset.t;
  records : int list;
  prefilter_survivors : int option;
}

let run_algorithm config ?root_filter inv q =
  let mode () =
    Semantics.mode_of ~streamed:config.streamed ~wildcards:config.wildcards
      config.join config.embedding
  in
  match config.algorithm with
  | Top_down -> Top_down.run (mode ()) ?root_filter ~order:config.td_order inv q
  | Top_down_paper -> Top_down.run_paper (mode ()) ?root_filter inv q
  | Bottom_up ->
    Bottom_up.run (mode ()) ?root_filter ?spill_to:config.spill_to inv q
  | Naive_scan ->
    let scope = match config.scope with Roots -> `Roots | Anywhere -> `Anywhere in
    Naive.scan ~wildcards:config.wildcards ~join:config.join
      ~embedding:config.embedding ~scope inv q
  | Signature_scan -> (
    (* Signature-file baseline (cf. the flat-set literature the paper cites,
       e.g. Helmer & Moerkotte): scan per-record hierarchical signatures,
       verify survivors with the embedding oracle. Needs a filter index and
       root scope. *)
    match config.filter_index, config.scope with
    | None, _ ->
      invalid_arg "Engine: Signature_scan needs a filter_index in the config"
    | Some _, Anywhere ->
      invalid_arg "Engine: Signature_scan answers root-scope queries only"
    | Some fi, Roots -> (
      match
        Filter_index.candidate_records fi ~join:config.join
          ~embedding:config.embedding (Query.to_value q)
      with
      | None ->
        raise
          (Semantics.Unsupported
             "signature scan: no sound signature test for this join/embedding")
      | Some candidates ->
        let roots = IF.roots inv in
        candidates
        |> List.filter (fun r ->
               let tree = IF.record_tree inv r in
               Embed.at_node config.join config.embedding ~q ~s:tree
                 tree.Nested.Tree.root)
        |> List.map (fun r -> roots.(r))
        |> Intset.of_list))

let verify_node config inv q id =
  let root = IF.root_of_node inv id in
  let tree = IF.record_tree inv (IF.record_of_root inv root) in
  Embed.at_node ~wildcards:config.wildcards config.join config.embedding ~q ~s:tree id

(* Under containment-style joins, every query atom must occur in the
   collection for any record to match; checking key existence is far
   cheaper than decoding the posting lists an algorithm would touch. *)
let preflight_rejects config inv (q : Query.t) =
  config.preflight
  && (match config.join with
     | Semantics.Containment | Semantics.Equality -> true
     | Semantics.Superset | Semantics.Overlap _ | Semantics.Similarity _ -> false)
  &&
  let leaf_exists a =
    if config.wildcards && Semantics.is_pattern a then
      (* a pattern's existence would need a range probe; don't reject *)
      true
    else IF.mem_atom inv a
  in
  let rec atoms_exist (n : Query.node) =
    Array.for_all leaf_exists n.Query.leaves
    && List.for_all atoms_exist n.Query.children
  in
  not (atoms_exist q)

(* --- tracing helpers --- *)

(* All observability below is opt-in: when [trace] is [None] every helper
   reduces to running the phase directly, keeping the hot path free of
   recording cost (measured by bench obs-overhead). *)

let tspan trace name f =
  match trace with None -> f () | Some t -> Obs.Trace.span t name f

let tattr trace k v =
  match trace with None -> () | Some t -> Obs.Trace.add_attr t k v

(* Flight-recorder phase codes, interned once at module init so the
   emit path is branch-and-store only. The recorder is orthogonal to
   tracing: when enabled (the server leaves it on), phase edges are
   recorded even for untraced queries — that is its whole point. *)
let ph_preflight = Obs.Recorder.intern "preflight"
let ph_prefilter = Obs.Recorder.intern "prefilter"
let ph_retrieve = Obs.Recorder.intern "retrieve"
let ph_eval = Obs.Recorder.intern "eval"
let ph_verify = Obs.Recorder.intern "verify"
let ph_minimize = Obs.Recorder.intern "minimize"
let ph_prefetch = Obs.Recorder.intern "prefetch"

(* A phase span that additionally emits recorder begin/end edges. [qid]
   is 0 for phases outside any single query's scope (batch prefetch,
   minimize — it runs before the query id exists). *)
let rspan trace ~qid code name f =
  if not (Obs.Recorder.enabled ()) then tspan trace name f
  else begin
    Obs.Recorder.phase_begin code ~qid;
    Fun.protect
      ~finally:(fun () -> Obs.Recorder.phase_end code ~qid)
      (fun () -> tspan trace name f)
  end

let algorithm_name = function
  | Top_down -> "top-down"
  | Top_down_paper -> "top-down-paper"
  | Bottom_up -> "bottom-up"
  | Naive_scan -> "naive-scan"
  | Signature_scan -> "signature-scan"

type io_snap = { lookups : int; hits : int; misses : int; reads : int; bytes : int }

let io_snap inv =
  let l = IF.lookup_stats inv and s = (IF.store inv).Storage.Kv.stats in
  {
    lookups = Storage.Io_stats.lookups l;
    hits = Storage.Io_stats.hits l;
    misses = Storage.Io_stats.misses l;
    reads = Storage.Io_stats.reads s;
    bytes = Storage.Io_stats.bytes_read s;
  }

(* Attach lookup/hit/miss (always, so zero is visible) and read deltas
   (when non-zero) of the innermost open span. *)
let io_attrs trace before inv =
  match trace with
  | None -> ()
  | Some t ->
    let now = io_snap inv in
    let put k v = Obs.Trace.add_attr t k (string_of_int v) in
    put "lookups" (now.lookups - before.lookups);
    put "hits" (now.hits - before.hits);
    put "misses" (now.misses - before.misses);
    if now.reads > before.reads then put "reads" (now.reads - before.reads);
    if now.bytes > before.bytes then put "bytes_read" (now.bytes - before.bytes)

(* Distinct non-pattern leaf atoms of a query, in first-occurrence order
   (shared with batching below). *)
let distinct_atoms config qs =
  let seen = Hashtbl.create 64 in
  let out = ref [] in
  let add a =
    if not (config.wildcards && Semantics.is_pattern a) && not (Hashtbl.mem seen a)
    then begin
      Hashtbl.add seen a ();
      out := a :: !out
    end
  in
  let rec walk (n : Query.node) =
    Array.iter add n.Query.leaves;
    List.iter walk n.Query.children
  in
  List.iter walk qs;
  List.rev !out

let query_prepared ?(config = default) ?trace inv (q : Query.t) =
  let all0 = io_snap inv in
  let qid = Obs.Recorder.begin_query () in
  let finish result =
    (match trace with
    | None -> ()
    | Some t ->
      io_attrs trace all0 inv;
      Obs.Trace.add_attr t "records" (string_of_int (List.length result.records)));
    Obs.Recorder.end_query qid ~results:(List.length result.records);
    result
  in
  let rejected =
    if not config.preflight then false
    else
      rspan trace ~qid ph_preflight "preflight" (fun () ->
          let r = preflight_rejects config inv q in
          tattr trace "rejected" (string_of_bool r);
          r)
  in
  if rejected then
    finish { nodes = Intset.empty; records = []; prefilter_survivors = None }
  else
  (* Bloom prefilter: restrict to records that might match. *)
  let allowed, prefilter_survivors =
    match config.filter_index with
    | None -> (None, None)
    | Some fi ->
      rspan trace ~qid ph_prefilter "prefilter" (fun () ->
          match
            Filter_index.candidate_records fi ~join:config.join
              ~embedding:config.embedding (Query.to_value q)
          with
          | None -> (None, None)
          | Some records ->
            let roots = IF.roots inv in
            let set = Intset.of_list (List.map (fun r -> roots.(r)) records) in
            tattr trace "survivors" (string_of_int (List.length records));
            (Some set, Some (List.length records)))
  in
  (* Anchor Equation-2 queries at record roots (intersected with Bloom
     survivors when a prefilter ran): the index algorithms then never chase
     heads that cannot be results. The naive scan checks roots directly. *)
  let root_filter =
    match config.scope, config.algorithm with
    | Anywhere, _ | _, Naive_scan -> None
    | _, Signature_scan -> None
    | Roots, (Top_down | Top_down_paper | Bottom_up) ->
      Some
        (match allowed with
        | None -> IF.roots inv
        | Some a -> Intset.inter (IF.roots inv) a)
  in
  let pruned =
    match root_filter with Some f -> Intset.is_empty f | None -> false
  in
  (* Per-atom retrieval spans: probe each distinct query atom through the
     cached lookup path so the trace shows which lists were fetched and
     which were already warm. Skipped in streamed mode — it bypasses the
     decoded-list cache, so pre-materializing would change the measured
     access pattern (and every raw read counts as a miss anyway). *)
  let traced_retrieval =
    Option.is_some trace && not config.streamed && not pruned
  in
  let transient = traced_retrieval && Option.is_none (IF.cache inv) in
  let atoms = if traced_retrieval then distinct_atoms config [ q ] else [] in
  if transient then
    IF.attach_cache inv
      (Invfile.Cache.create Invfile.Cache.Lru
         ~capacity:(max 1 (List.length atoms)));
  Fun.protect
    ~finally:(fun () -> if transient then IF.detach_cache inv)
    (fun () ->
      if traced_retrieval then
        rspan trace ~qid ph_retrieve "retrieve" (fun () ->
            let r0 = io_snap inv in
            List.iter
              (fun a ->
                tspan trace ("atom:" ^ a) (fun () ->
                    let b = io_snap inv in
                    ignore (IF.lookup inv a);
                    let now = io_snap inv in
                    tattr trace "hits" (string_of_int (now.hits - b.hits));
                    tattr trace "misses" (string_of_int (now.misses - b.misses))))
              atoms;
            io_attrs trace r0 inv);
      let t0 = Unix.gettimeofday () in
      let nodes =
        rspan trace ~qid ph_eval "eval" (fun () ->
            let e0 = io_snap inv in
            let nodes =
              if pruned then begin
                Log.debug (fun m ->
                    m "prefilter eliminated every record; skipping algorithm");
                Intset.empty
              end
              else run_algorithm config ?root_filter inv q
            in
            tattr trace "algorithm" (algorithm_name config.algorithm);
            tattr trace "candidates" (string_of_int (Intset.cardinal nodes));
            io_attrs trace e0 inv;
            nodes)
      in
      Log.debug (fun m ->
          m "%s %a/%a: %d candidate node(s) in %.3f ms"
            (match config.algorithm with
            | Top_down -> "top-down"
            | Top_down_paper -> "top-down(paper)"
            | Bottom_up -> "bottom-up"
            | Naive_scan -> "naive"
            | Signature_scan -> "signature-scan")
            Semantics.pp_join config.join Semantics.pp_embedding config.embedding
            (Intset.cardinal nodes)
            (1000. *. (Unix.gettimeofday () -. t0)));
      let nodes =
        rspan trace ~qid ph_verify "verify" (fun () ->
            let v0 = io_snap inv in
            let checked = Intset.cardinal nodes in
            (* Scope: Equation 2 keeps only record roots. *)
            let nodes =
              match config.scope with
              | Anywhere -> nodes
              | Roots ->
                Array.of_list
                  (List.filter (IF.is_root inv) (Intset.to_list nodes))
            in
            let nodes =
              if config.verify then
                Array.of_list
                  (List.filter (verify_node config inv q) (Intset.to_list nodes))
              else nodes
            in
            tattr trace "checked" (string_of_int checked);
            tattr trace "kept" (string_of_int (Intset.cardinal nodes));
            io_attrs trace v0 inv;
            nodes)
      in
      let records =
        (* records containing at least one matching node *)
        Intset.to_list nodes
        |> List.map (fun id -> IF.record_of_root inv (IF.root_of_node inv id))
        |> List.sort_uniq Int.compare
      in
      finish { nodes; records; prefilter_survivors })

let minimize_applicable config =
  config.minimize && (not config.wildcards)
  && (match config.join with Semantics.Containment -> true | _ -> false)
  &&
  match config.embedding with
  | Semantics.Hom | Semantics.Homeo | Semantics.Homeo_full -> true
  | Semantics.Iso -> false

let query ?(config = default) ?trace inv value =
  let value =
    if minimize_applicable config then
      rspan trace ~qid:0 ph_minimize "minimize" (fun () ->
          let v = Minimize.minimize value in
          tattr trace "size_before" (string_of_int (Nested.Value.size value));
          tattr trace "size_after" (string_of_int (Nested.Value.size v));
          v)
    else value
  in
  query_prepared ~config ?trace inv (Query.of_value value)

let record_values inv result = List.map (IF.record_value inv) result.records

(* --- batched execution --- *)

(* Wildcard patterns are resolved by range scans, not point probes, so
   they are not prefetchable — [distinct_atoms] (above) excludes them. *)

(* A block of queries against one handle: probe the inverted file once per
   distinct atom (cf. Bouros et al., "Set Containment Join Revisited" —
   block processing amortizes index probes), then evaluate each query
   against the warmed cache. When the handle has no cache attached, a
   transient one scoped to the batch is used. Returns results in input
   order. *)
let query_batch ?(config = default) ?traces inv values =
  (* pad/truncate the optional trace list to line up with [values] *)
  let trace_for =
    match traces with
    | None -> fun _ -> None
    | Some l ->
      let arr = Array.of_list l in
      fun i -> if i < Array.length arr then arr.(i) else None
  in
  match values with
  | [] -> []
  | [ v ] -> [ query ~config ?trace:(trace_for 0) inv v ]
  | values ->
    let values =
      if minimize_applicable config then List.map Minimize.minimize values
      else values
    in
    let qs = List.map Query.of_value values in
    let atoms = distinct_atoms config qs in
    let transient = Option.is_none (IF.cache inv) in
    if transient then
      IF.attach_cache inv
        (Invfile.Cache.create Invfile.Cache.Lru
           ~capacity:(max 1 (List.length atoms)));
    Fun.protect
      ~finally:(fun () -> if transient then IF.detach_cache inv)
      (fun () ->
        (* the block-wide prefetch belongs to no single query; record it
           into the first traced one so its I/O stays attributed *)
        let prefetch_trace =
          List.find_map Fun.id
            (List.mapi (fun i _ -> trace_for i) values)
        in
        let loaded =
          rspan prefetch_trace ~qid:0 ph_prefetch "prefetch" (fun () ->
              let p0 = io_snap inv in
              let loaded = IF.prefetch inv atoms in
              tattr prefetch_trace "batch_size"
                (string_of_int (List.length qs));
              tattr prefetch_trace "atoms" (string_of_int (List.length atoms));
              tattr prefetch_trace "loaded" (string_of_int loaded);
              io_attrs prefetch_trace p0 inv;
              loaded)
        in
        Log.debug (fun m ->
            m "batch of %d queries: %d distinct atom(s), %d list(s) loaded"
              (List.length qs) (List.length atoms) loaded);
        List.mapi
          (fun i q -> query_prepared ~config ?trace:(trace_for i) inv q)
          qs)

(* Equation 1: the containment join of a whole query collection Q with S. *)
let containment_join ?config inv queries =
  List.mapi (fun qi q -> (qi, (query ?config inv q).records)) queries

(* Witnesses: one concrete embedding per matching node. *)
let witnesses ?(config = default) inv value =
  let q = Query.of_value value in
  let r = query_prepared ~config inv q in
  List.filter_map
    (fun id ->
      let record = IF.record_of_root inv (IF.root_of_node inv id) in
      let tree = IF.record_tree inv record in
      Option.map
        (fun w -> (id, w))
        (Embed.witness ~wildcards:config.wildcards config.join config.embedding ~q
           ~s:tree id))
    (Intset.to_list r.nodes)

(* --- explain --- *)

type node_plan = {
  node_path : string;  (* e.g. "root.2.0" *)
  leaves : string list;
  candidate_count : int;
}

let explain ?(config = default) inv value =
  let mode =
    Semantics.mode_of ~streamed:config.streamed ~wildcards:config.wildcards
      config.join config.embedding
  in
  let q = Query.of_value value in
  let plans = ref [] in
  let rec walk path (n : Query.node) =
    let candidates = Semantics.candidates mode inv n in
    plans :=
      {
        node_path = path;
        leaves = Array.to_list n.Query.leaves;
        candidate_count = Invfile.Plist.length candidates;
      }
      :: !plans;
    List.iteri (fun i c -> walk (Printf.sprintf "%s.%d" path i) c) n.Query.children
  in
  walk "root" q;
  List.rev !plans

let pp_plan ppf plans =
  List.iter
    (fun p ->
      Format.fprintf ppf "%-16s leaves={%s}  candidates=%d@." p.node_path
        (String.concat ", " p.leaves)
        p.candidate_count)
    plans

(* --- explain profiles (Obs.Explain) --- *)

let codec_label = function
  | Invfile.Plist.Varint -> "varint"
  | Invfile.Plist.Bitpacked -> "bitpacked"
  | Invfile.Plist.Blocked -> "blocked"

let atom_plan inv a =
  match IF.lookup_raw inv a with
  | None ->
    { Obs.Explain.atom = a; list_len = 0; bytes = 0; codec = "-"; blocks = 0 }
  | Some payload ->
    let codec = Invfile.Plist.codec_of_bytes payload in
    let blocks =
      match codec with
      | Invfile.Plist.Blocked ->
        Invfile.Plist_blocks.n_blocks
          (Invfile.Plist_blocks.directory payload ~pos:1)
      | Invfile.Plist.Varint | Invfile.Plist.Bitpacked -> 0
    in
    {
      Obs.Explain.atom = a;
      list_len = Invfile.Plist.length (Invfile.Plist.of_bytes payload);
      bytes = String.length payload;
      codec = codec_label codec;
      blocks;
    }

let config_kvs config =
  [
    ("algorithm", algorithm_name config.algorithm);
    ("join", Format.asprintf "%a" Semantics.pp_join config.join);
    ("embedding", Format.asprintf "%a" Semantics.pp_embedding config.embedding);
    ("scope", match config.scope with Roots -> "roots" | Anywhere -> "anywhere");
    ("verify", string_of_bool config.verify);
    ("streamed", string_of_bool config.streamed);
    ("preflight", string_of_bool config.preflight);
    ("minimize", string_of_bool config.minimize);
    ("wildcards", string_of_bool config.wildcards);
  ]

(* Estimated-vs-actual per phase. Actuals are read back from the very
   trace the profiled run recorded, so they reconcile with an
   independent [nscq trace] of the same deterministic query by
   construction; estimates come from the paper's static model — the
   prefilter can at best keep every record, an intersection yields at
   most the rarest list's length, verification starts from eval's
   survivors. *)
let profile_phases ~record_count ~min_len (root : Obs.Trace.span) =
  let geti name (s : Obs.Trace.span) =
    match List.assoc_opt name s.Obs.Trace.attrs with
    | Some v -> ( match int_of_string_opt v with Some i -> i | None -> -1)
    | None -> -1
  in
  let eval_actual = ref (-1) in
  List.map
    (fun (s : Obs.Trace.span) ->
      let ms = Float.max 0. s.Obs.Trace.duration_s *. 1e3 in
      let mk ?(notes = []) est actual =
        { Obs.Explain.phase = s.Obs.Trace.name; est; actual; ms; notes }
      in
      match s.Obs.Trace.name with
      | "minimize" ->
        mk (-1) (-1)
          ~notes:
            [
              ("size_before", string_of_int (geti "size_before" s));
              ("size_after", string_of_int (geti "size_after" s));
            ]
      | "preflight" ->
        let rejected =
          match List.assoc_opt "rejected" s.Obs.Trace.attrs with
          | Some "true" -> true
          | Some _ | None -> false
        in
        mk (-1) (-1) ~notes:[ ("rejected", string_of_bool rejected) ]
      | "prefilter" -> mk record_count (geti "survivors" s)
      | "prefetch" -> mk (geti "atoms" s) (geti "loaded" s)
      | "retrieve" ->
        let atoms = List.length s.Obs.Trace.children in
        mk atoms atoms
          ~notes:
            [
              ("hits", string_of_int (max 0 (geti "hits" s)));
              ("misses", string_of_int (max 0 (geti "misses" s)));
            ]
      | "eval" ->
        let actual = geti "candidates" s in
        eval_actual := actual;
        mk min_len actual
          ~notes:
            (match List.assoc_opt "algorithm" s.Obs.Trace.attrs with
            | Some a -> [ ("algorithm", a) ]
            | None -> [])
      | "verify" -> mk !eval_actual (geti "kept" s)
      | _ -> mk (-1) (-1))
    root.Obs.Trace.children

let profile_of_trace ?(config = default) ?(target = "store") inv value root
    records =
  let minimized =
    if minimize_applicable config then Minimize.minimize value else value
  in
  let atoms = distinct_atoms config [ Query.of_value minimized ] in
  let plans =
    List.map (atom_plan inv) atoms
    |> List.stable_sort (fun a b ->
           Int.compare a.Obs.Explain.list_len b.Obs.Explain.list_len)
  in
  let min_len =
    match plans with
    | [] -> IF.record_count inv
    | p :: _ -> p.Obs.Explain.list_len
  in
  Obs.Explain.make ~target ~query:(Nested.Syntax.to_string value)
    ~config:(config_kvs config) ~atoms:plans
    ~phases:(profile_phases ~record_count:(IF.record_count inv) ~min_len root)
    ~records ()

let explain_profile ?(config = default) ?target inv value =
  let trace = Obs.Trace.create "explain" in
  let result = query ~config ~trace inv value in
  let root = Obs.Trace.finish trace in
  profile_of_trace ~config ?target inv value root (List.length result.records)

let explain_profile_batch ?(config = default) ?target inv values =
  let traces = List.map (fun _ -> Some (Obs.Trace.create "explain")) values in
  let results = query_batch ~config ~traces inv values in
  List.map2
    (fun (trace, value) result ->
      let root = Obs.Trace.finish (Option.get trace) in
      profile_of_trace ~config ?target inv value root
        (List.length result.records))
    (List.combine traces values)
    results

(* --- store verification & repair --- *)

let verify_store inv = Invfile.Integrity.check inv

type repair_report = {
  rolled_back : int;
  problems_before : Invfile.Integrity.problem list;
  rebuilt : Invfile.Repair.outcome option;
  problems_after : Invfile.Integrity.problem list;
}

let repair inv =
  (* 1. finish any interrupted update transaction (normally already done
     by open_store; explicit here so repair works on a handle whose store
     was mutated behind its back) *)
  let rolled_back = Invfile.Journal.recover (IF.store inv) in
  if rolled_back > 0 then IF.refresh inv;
  (* 2. if the derived index still disagrees with the records, rebuild it
     from them *)
  let problems_before = Invfile.Integrity.check inv in
  let rebuilt =
    match problems_before with
    | [] -> None
    | _ :: _ ->
      let outcome = Invfile.Repair.rebuild inv in
      Log.info (fun m ->
          m "repair: rebuilt index from records (%d live, %d tombstoned, %d atoms)"
            outcome.Invfile.Repair.live_records outcome.Invfile.Repair.tombstoned
            outcome.Invfile.Repair.atoms);
      Some outcome
  in
  let problems_after =
    match rebuilt with None -> problems_before | Some _ -> Invfile.Integrity.check inv
  in
  { rolled_back; problems_before; rebuilt; problems_after }

let pp_repair_report ppf r =
  Format.fprintf ppf "journal: %d key(s) rolled back@." r.rolled_back;
  (match r.rebuilt with
  | None -> Format.fprintf ppf "index: consistent, no rebuild needed@."
  | Some o ->
    Format.fprintf ppf
      "index: rebuilt from records (%d live, %d tombstoned, %d atoms), %d problem(s) before@."
      o.Invfile.Repair.live_records o.Invfile.Repair.tombstoned
      o.Invfile.Repair.atoms
      (List.length r.problems_before));
  match r.problems_after with
  | [] -> Format.fprintf ppf "store is consistent@."
  | problems ->
    List.iter
      (fun p -> Format.fprintf ppf "UNREPAIRED %a@." Invfile.Integrity.pp_problem p)
      problems

(* --- workloads --- *)

type workload_stats = {
  queries : int;
  results_total : int;
  positives : int;
  elapsed_s : float;
  cache_hits : int;
  cache_misses : int;
  io_reads : int;
  io_bytes_read : int;
}

let run_workload ?(config = default) inv queries =
  let lookup0 = IF.lookup_stats inv in
  let store0 = (IF.store inv).Storage.Kv.stats in
  let hits0 = Storage.Io_stats.hits lookup0
  and misses0 = Storage.Io_stats.misses lookup0
  and reads0 = Storage.Io_stats.reads store0
  and bytes0 = Storage.Io_stats.bytes_read store0 in
  let t0 = Unix.gettimeofday () in
  let results_total = ref 0 and positives = ref 0 in
  List.iter
    (fun q ->
      let r = query ~config inv q in
      let n = List.length r.records in
      results_total := !results_total + n;
      if n > 0 then incr positives)
    queries;
  let elapsed_s = Unix.gettimeofday () -. t0 in
  {
    queries = List.length queries;
    results_total = !results_total;
    positives = !positives;
    elapsed_s;
    cache_hits = Storage.Io_stats.hits lookup0 - hits0;
    cache_misses = Storage.Io_stats.misses lookup0 - misses0;
    io_reads = Storage.Io_stats.reads store0 - reads0;
    io_bytes_read = Storage.Io_stats.bytes_read store0 - bytes0;
  }

let pp_workload_stats ppf s =
  Format.fprintf ppf
    "%d queries in %.3f ms (%.3f ms/query), %d positives, %d results, cache %d/%d, %d reads (%d B)"
    s.queries (1000. *. s.elapsed_s)
    (1000. *. s.elapsed_s /. Float.of_int (max 1 s.queries))
    s.positives s.results_total s.cache_hits
    (s.cache_hits + s.cache_misses)
    s.io_reads s.io_bytes_read
