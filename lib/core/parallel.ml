type result = {
  elapsed_s : float;
  results_total : int;
  positives : int;
}

let recommended_domains () = min 8 (Domain.recommended_domain_count ())

(* One domain stays free for the caller (accept loops, the bench driver);
   NSCQ_DOMAINS overrides for constrained CI hosts and experiments. *)
(* Never 0 or negative, whatever NSCQ_DOMAINS holds or however few cores
   the host reports: every consumer spawns this many domains. *)
let default_domains () =
  match Option.bind (Sys.getenv_opt "NSCQ_DOMAINS") int_of_string_opt with
  | Some n -> max 1 n
  | None -> max 1 (Domain.recommended_domain_count () - 1)

let slice ~domains i queries =
  List.filteri (fun j _ -> j mod domains = i) queries

let run_slice open_handle config cache_budget queries () =
  let inv = open_handle () in
  Fun.protect
    ~finally:(fun () -> Invfile.Inverted_file.close inv)
    (fun () ->
      if cache_budget > 0 then
        Invfile.Inverted_file.attach_cache inv
          (Invfile.Cache.create Invfile.Cache.Static ~capacity:cache_budget);
      List.fold_left
        (fun (total, pos) q ->
          let r = Engine.query ~config inv q in
          let n = List.length r.Engine.records in
          (total + n, if n > 0 then pos + 1 else pos))
        (0, 0) queries)

let run_workload ?domains ~open_handle ?(config = Engine.default)
    ?(cache_budget = 0) queries =
  let domains = match domains with Some d -> d | None -> default_domains () in
  if domains < 1 then invalid_arg "Parallel.run_workload: domains must be ≥ 1";
  let t0 = Unix.gettimeofday () in
  let results_total, positives =
    if domains = 1 then run_slice open_handle config cache_budget queries ()
    else begin
      let handles =
        List.init domains (fun i ->
            Domain.spawn
              (run_slice open_handle config cache_budget (slice ~domains i queries)))
      in
      List.fold_left
        (fun (t, p) d ->
          let t', p' = Domain.join d in
          (t + t', p + p'))
        (0, 0) handles
    end
  in
  { elapsed_s = Unix.gettimeofday () -. t0; results_total; positives }
