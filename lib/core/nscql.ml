type verb = Find | Count | Explain | Witness

type predicate =
  | Contains of Nested.Value.t
  | Equals of Nested.Value.t
  | Within of Nested.Value.t
  | Overlaps of Nested.Value.t * int
  | Similar of Nested.Value.t * float

type statement =
  | Query of {
      verb : verb;
      predicate : predicate;
      embedding : Semantics.embedding;
      algorithm : Engine.algorithm;
      anywhere : bool;
      verified : bool;
      wildcards : bool;
      minimized : bool;
      limit : int option;
    }
  | Insert of Nested.Value.t
  | Delete of int
  | Stats

exception Parse_error of string

let fail fmt = Printf.ksprintf (fun m -> raise (Parse_error m)) fmt

(* --- tokenizer: words, numbers, and whole {...} literals --- *)

type token = Word of string | Value of Nested.Value.t | Number of string

let tokenize input =
  let n = String.length input in
  let tokens = ref [] in
  let i = ref 0 in
  let is_space c = c = ' ' || c = '\t' || c = '\n' || c = '\r' in
  while !i < n do
    let c = input.[!i] in
    if is_space c then incr i
    else if c = '-' && !i + 1 < n && input.[!i + 1] = '-' then i := n (* comment *)
    else if c = '{' || c = '"' then begin
      (* a nested-set literal: find its extent by brace depth, respecting
         quoted atoms *)
      let start = !i in
      let depth = ref 0 and in_string = ref false and stop = ref false in
      while not !stop && !i < n do
        (match input.[!i] with
        | '\\' when !in_string -> incr i (* skip the escaped char *)
        | '"' -> in_string := not !in_string
        | '{' when not !in_string -> incr depth
        | '}' when not !in_string ->
          decr depth;
          if !depth = 0 then stop := true
        | _ -> ());
        incr i;
        if !depth = 0 && not !in_string && input.[start] <> '{' then stop := true
      done;
      let literal = String.sub input start (!i - start) in
      match Nested.Syntax.of_string_opt literal with
      | Some v -> tokens := Value v :: !tokens
      | None -> fail "malformed value literal: %s" literal
    end
    else begin
      let start = !i in
      while !i < n && not (is_space input.[!i]) do
        incr i
      done;
      let word = String.sub input start (!i - start) in
      match float_of_string_opt word with
      | Some _ -> tokens := Number word :: !tokens
      | None -> tokens := Word (String.lowercase_ascii word) :: !tokens
    end
  done;
  List.rev !tokens

(* --- parser --- *)

let parse input =
  match tokenize input with
  | [] -> fail "empty statement"
  | Word "stats" :: [] -> Stats
  | Word "insert" :: Value v :: [] ->
    if Nested.Value.is_atom v then fail "INSERT needs a set value" else Insert v
  | Word "delete" :: Number n :: [] -> (
    match int_of_string_opt n with
    | Some id when id >= 0 -> Delete id
    | _ -> fail "DELETE needs a non-negative record id")
  | Word verb_word :: rest ->
    let verb =
      match verb_word with
      | "find" | "select" -> Find
      | "count" -> Count
      | "explain" -> Explain
      | "witness" -> Witness
      | w -> fail "unknown verb %S (expected FIND, COUNT, EXPLAIN, WITNESS, INSERT, DELETE, STATS)" w
    in
    let predicate, rest =
      match rest with
      | Word "contains" :: Value v :: rest -> (Contains v, rest)
      | Word "equals" :: Value v :: rest -> (Equals v, rest)
      | Word "within" :: Value v :: rest -> (Within v, rest)
      | Word "overlaps" :: Value v :: Word "by" :: Number n :: rest -> (
        match int_of_string_opt n with
        | Some eps when eps >= 1 -> (Overlaps (v, eps), rest)
        | _ -> fail "OVERLAPS ... BY needs an integer ≥ 1")
      | Word "similar" :: Word "to" :: Value v :: Word "at" :: Number r :: rest -> (
        match float_of_string_opt r with
        | Some ratio when ratio > 0. && ratio <= 1. -> (Similar (v, ratio), rest)
        | _ -> fail "SIMILAR TO ... AT needs a ratio in (0, 1]")
      | Word w :: _ -> fail "unknown predicate %S" w
      | _ -> fail "expected a predicate (CONTAINS, EQUALS, WITHIN, OVERLAPS, SIMILAR TO)"
    in
    (match predicate with
    | Contains v | Equals v | Within v | Overlaps (v, _) | Similar (v, _) ->
      if Nested.Value.is_atom v then fail "query value must be a set");
    let embedding = ref Semantics.Hom in
    let algorithm = ref Engine.Bottom_up in
    let anywhere = ref false in
    let verified = ref false in
    let wildcards = ref false in
    let minimized = ref false in
    let limit = ref None in
    let rec clauses = function
      | [] -> ()
      | Word "under" :: Word sem :: rest ->
        (embedding :=
           match sem with
           | "hom" -> Semantics.Hom
           | "iso" -> Semantics.Iso
           | "homeo" -> Semantics.Homeo
           | "homeo-full" | "full-homeo" -> Semantics.Homeo_full
           | s -> fail "unknown embedding %S" s);
        clauses rest
      | Word "via" :: Word alg :: rest ->
        (algorithm :=
           match alg with
           | "bottom-up" -> Engine.Bottom_up
           | "top-down" -> Engine.Top_down
           | "top-down-paper" -> Engine.Top_down_paper
           | "naive" -> Engine.Naive_scan
           | s -> fail "unknown algorithm %S" s);
        clauses rest
      | Word "anywhere" :: rest ->
        anywhere := true;
        clauses rest
      | Word "verified" :: rest ->
        verified := true;
        clauses rest
      | Word "wildcards" :: rest ->
        wildcards := true;
        clauses rest
      | Word "minimized" :: rest ->
        minimized := true;
        clauses rest
      | Word "limit" :: Number n :: rest -> (
        match int_of_string_opt n with
        | Some k when k >= 0 ->
          limit := Some k;
          clauses rest
        | _ -> fail "LIMIT needs a non-negative integer")
      | Word w :: _ -> fail "unknown clause %S" w
      | (Value _ | Number _) :: _ -> fail "unexpected literal after the predicate"
    in
    clauses rest;
    Query
      {
        verb;
        predicate;
        embedding = !embedding;
        algorithm = !algorithm;
        anywhere = !anywhere;
        verified = !verified;
        wildcards = !wildcards;
        minimized = !minimized;
        limit = !limit;
      }
  | (Value _ | Number _) :: _ -> fail "statements start with a verb keyword"

(* --- execution --- *)

type outcome =
  | Records of { ids : int list; limit : int option }
  | Count of int
  | Plan of Engine.node_plan list
  | Profile of Obs.Explain.t
  | Witnesses of (int * Embed.witness) list
  | Inserted of int
  | Deleted of bool
  | Stats_report of Invfile.Stats.t

let config_of q =
  let join, value =
    match q with
    | `P (Contains v) -> (Semantics.Containment, v)
    | `P (Equals v) -> (Semantics.Equality, v)
    | `P (Within v) -> (Semantics.Superset, v)
    | `P (Overlaps (v, eps)) -> (Semantics.Overlap eps, v)
    | `P (Similar (v, r)) -> (Semantics.Similarity r, v)
  in
  (join, value)

let query_config = function
  | Stats | Insert _ | Delete _ -> None
  | Query
      { verb; predicate; embedding; algorithm; anywhere; verified; wildcards;
        minimized; limit } ->
    let join, value = config_of (`P predicate) in
    let config =
      {
        Engine.default with
        Engine.join;
        embedding;
        algorithm;
        verify = verified;
        wildcards;
        minimize = minimized;
        scope = (if anywhere then Engine.Anywhere else Engine.Roots);
      }
    in
    Some (config, verb, value, limit)

let execute inv stmt =
  match stmt with
  | Stats -> Stats_report (Invfile.Stats.compute inv)
  | Insert v -> Inserted (Invfile.Updater.add_value inv v)
  | Delete id -> Deleted (Invfile.Updater.delete_record inv id)
  | Query { verb; limit; _ } ->
    let config, value =
      match query_config stmt with
      | Some (config, _, value, _) -> (config, value)
      | None -> assert false
    in
    (match verb with
    | Find ->
      Records { ids = (Engine.query ~config inv value).Engine.records; limit }
    | Count -> Count (List.length (Engine.query ~config inv value).Engine.records)
    | Explain -> Profile (Engine.explain_profile ~config inv value)
    | Witness -> Witnesses (Engine.witnesses ~config inv value))

let run inv input =
  match execute inv (parse input) with
  | outcome -> Ok outcome
  | exception Parse_error m -> Error ("parse error: " ^ m)
  | exception Semantics.Unsupported m -> Error ("unsupported: " ^ m)
  | exception Invalid_argument m -> Error ("invalid: " ^ m)
  | exception Invfile.Inverted_file.Malformed m -> Error ("malformed store: " ^ m)

let pp_outcome ~collection ppf = function
  | Records { ids; limit } ->
    let cap = Option.value ~default:10 limit in
    Format.fprintf ppf "%d record(s)@." (List.length ids);
    List.iteri
      (fun i id ->
        if i < cap then
          Format.fprintf ppf "  #%d: %a@." id Nested.Value.pp
            (Invfile.Inverted_file.record_value collection id))
      ids;
    if List.length ids > cap then
      Format.fprintf ppf "  … and %d more (add LIMIT n)@." (List.length ids - cap)
  | Count n -> Format.fprintf ppf "%d@." n
  | Plan plan -> Engine.pp_plan ppf plan
  | Profile p -> Format.fprintf ppf "%s@." (Obs.Explain.render p)
  | Witnesses [] -> Format.fprintf ppf "no matches@."
  | Witnesses ws ->
    List.iteri
      (fun i (root, w) ->
        if i < 3 then begin
          Format.fprintf ppf "match at node %d:@." root;
          List.iter
            (fun (path, id) ->
              Format.fprintf ppf "  %-12s -> node %d = %a@." path id Nested.Value.pp
                (Invfile.Inverted_file.subtree_value collection id))
            w
        end)
      ws;
    if List.length ws > 3 then
      Format.fprintf ppf "… and %d more match(es)@." (List.length ws - 3)
  | Inserted id -> Format.fprintf ppf "record %d inserted@." id
  | Deleted true -> Format.fprintf ppf "deleted@."
  | Deleted false -> Format.fprintf ppf "no such live record@."
  | Stats_report st -> Format.fprintf ppf "%a@." Invfile.Stats.pp st
