type t = {
  data : Bytes.t;
  nbits : int;
  hashes : int;
}

let create ?(hashes = 4) ~bits () =
  if bits <= 0 then invalid_arg "Bloom.create: bits must be positive";
  if hashes <= 0 then invalid_arg "Bloom.create: hashes must be positive";
  let nbytes = (bits + 7) / 8 in
  { data = Bytes.make nbytes '\000'; nbits = nbytes * 8; hashes }

let optimal ~expected ~fp_rate =
  if expected <= 0 then invalid_arg "Bloom.optimal: expected must be positive";
  if fp_rate <= 0. || fp_rate >= 1. then invalid_arg "Bloom.optimal: bad fp_rate";
  let ln2 = Float.log 2. in
  let m = Float.of_int expected *. -.Float.log fp_rate /. (ln2 *. ln2) in
  let bits = max 8 (int_of_float (Float.ceil m)) in
  let k = max 1 (int_of_float (Float.round (m /. Float.of_int expected *. ln2))) in
  create ~hashes:k ~bits ()

let bits t = t.nbits
let hash_count t = t.hashes

(* Double hashing: h_i = h1 + i*h2 (Kirsch-Mitzenmacher). String.hash is
   the string-monomorphic spelling of Hashtbl.hash — same bit pattern, so
   signatures built by earlier versions stay valid. *)
let base_hashes s =
  let h1 = String.hash s in
  let h2 = String.hash (s ^ "\x00nscq") in
  (h1, (2 * h2) + 1)

let set_bit t i =
  let byte = i lsr 3 and bit = i land 7 in
  Bytes.set t.data byte (Char.chr (Char.code (Bytes.get t.data byte) lor (1 lsl bit)))

let get_bit t i =
  let byte = i lsr 3 and bit = i land 7 in
  Char.code (Bytes.get t.data byte) land (1 lsl bit) <> 0

let add t s =
  let h1, h2 = base_hashes s in
  for i = 0 to t.hashes - 1 do
    set_bit t (abs (h1 + (i * h2)) mod t.nbits)
  done

let mem t s =
  let h1, h2 = base_hashes s in
  let rec go i =
    i >= t.hashes || (get_bit t (abs (h1 + (i * h2)) mod t.nbits) && go (i + 1))
  in
  go 0

let check_geometry a b =
  if a.nbits <> b.nbits || a.hashes <> b.hashes then
    invalid_arg "Bloom: filter geometry mismatch"

let subset a b =
  check_geometry a b;
  let n = Bytes.length a.data in
  let rec go i =
    i >= n
    ||
    let x = Char.code (Bytes.get a.data i) in
    x land Char.code (Bytes.get b.data i) = x && go (i + 1)
  in
  go 0

let union a b =
  check_geometry a b;
  let n = Bytes.length a.data in
  let data = Bytes.create n in
  for i = 0 to n - 1 do
    Bytes.set data i
      (Char.chr (Char.code (Bytes.get a.data i) lor Char.code (Bytes.get b.data i)))
  done;
  { a with data }

let copy t = { t with data = Bytes.copy t.data }

let fill_ratio t =
  let set = ref 0 in
  Bytes.iter
    (fun c ->
      let x = ref (Char.code c) in
      while !x <> 0 do
        set := !set + (!x land 1);
        x := !x lsr 1
      done)
    t.data;
  Float.of_int !set /. Float.of_int t.nbits

let encode t =
  let w = Storage.Codec.writer () in
  Storage.Codec.write_varint w t.hashes;
  Storage.Codec.write_string w (Bytes.to_string t.data);
  Storage.Codec.contents w

let decode s =
  let r = Storage.Codec.reader s in
  let hashes = Storage.Codec.read_varint r in
  let data = Bytes.of_string (Storage.Codec.read_string r) in
  if hashes <= 0 || Bytes.length data = 0 then
    raise (Storage.Codec.Corrupt "Bloom.decode: bad filter");
  { data; nbits = Bytes.length data * 8; hashes }
