module T = Nested.Tree

(* Query nodes indexed 0 .. count-1 in pre-order. *)
type qidx = {
  q_leaves : string array array;
  q_children : int array array;
  q_values : Nested.Value.t array;  (* canonical subvalue per node *)
}

let index_query (q : Query.t) =
  let acc = ref [] and counter = ref 0 in
  let rec go (n : Query.node) =
    let id = !counter in
    incr counter;
    let child_ids = List.map go n.Query.children in
    acc := (id, n.Query.leaves, Array.of_list child_ids, Query.to_value n) :: !acc;
    id
  in
  let root = go q in
  assert (root = 0);
  let count = !counter in
  let q_leaves = Array.make count [||] in
  let q_children = Array.make count [||] in
  let q_values = Array.make count Nested.Value.empty in
  List.iter
    (fun (id, leaves, children, value) ->
      q_leaves.(id) <- leaves;
      q_children.(id) <- children;
      q_values.(id) <- value)
    !acc;
  { q_leaves; q_children; q_values }

(* Prefix-pattern leaf matching for ~wildcards (containment only). *)
let wildcard_leaf_matches pattern leaves =
  if Semantics.is_pattern pattern then begin
    let prefix = String.sub pattern 0 (String.length pattern - 1) in
    let pl = String.length prefix in
    Array.exists
      (fun leaf -> String.length leaf >= pl && String.sub leaf 0 pl = prefix)
      leaves
  end
  else Array.exists (String.equal pattern) leaves

let wildcard_subset patterns leaves =
  Array.for_all (fun p -> wildcard_leaf_matches p leaves) patterns

(* Sorted string-array helpers. *)
let str_subset a b =
  let la = Array.length a and lb = Array.length b in
  let rec go i j =
    if i >= la then true
    else if j >= lb then false
    else
      let c = String.compare a.(i) b.(j) in
      if c = 0 then go (i + 1) (j + 1) else if c > 0 then go i (j + 1) else false
  in
  go 0 0

let str_common_count a b =
  let la = Array.length a and lb = Array.length b in
  let rec go i j acc =
    if i >= la || j >= lb then acc
    else
      let c = String.compare a.(i) b.(j) in
      if c = 0 then go (i + 1) (j + 1) (acc + 1)
      else if c < 0 then go (i + 1) j acc
      else go i (j + 1) acc
  in
  go 0 0 0

let descendants (s : T.t) (n : T.node) =
  (* All strict descendants: larger pre (= id), smaller post. *)
  T.fold
    (fun acc m -> if m.T.id > n.T.id && m.T.post < n.T.post then m :: acc else acc)
    [] s
  |> List.rev

let check_supported ?wildcards join embedding =
  (* Mirror the combinations Semantics.mode_of defines. *)
  ignore (Semantics.mode_of ?wildcards join embedding)

let matcher ?(wildcards = false) join embedding (qx : qidx) (s : T.t) =
  let memo : (int * int, bool) Hashtbl.t = Hashtbl.create 256 in
  (* subtree leaf labels, memoized per node (fully-homeomorphic checks) *)
  let subtree_leaves_memo : (int, string array) Hashtbl.t = Hashtbl.create 16 in
  let rec subtree_leaves (sn : T.node) =
    match Hashtbl.find_opt subtree_leaves_memo sn.T.id with
    | Some l -> l
    | None ->
      let own = Array.to_list sn.T.leaves in
      let below =
        Array.to_list sn.T.children
        |> List.concat_map (fun c -> Array.to_list (subtree_leaves (T.node s c)))
      in
      let l = Array.of_list (List.sort_uniq String.compare (own @ below)) in
      Hashtbl.replace subtree_leaves_memo sn.T.id l;
      l
  in
  let rec matches qid (sn : T.node) =
    let key = (qid, sn.T.id) in
    match Hashtbl.find_opt memo key with
    | Some b -> b
    | None ->
      (* Seed to terminate on (impossible) cycles; overwritten below. *)
      Hashtbl.replace memo key false;
      let b = node_matches qid sn && children_match qid sn in
      Hashtbl.replace memo key b;
      b
  and node_matches qid sn =
    match join with
    | Semantics.Containment when wildcards -> (
      match embedding with
      | Semantics.Homeo_full -> wildcard_subset qx.q_leaves.(qid) (subtree_leaves sn)
      | Semantics.Hom | Semantics.Iso | Semantics.Homeo ->
        wildcard_subset qx.q_leaves.(qid) sn.T.leaves)
    | Semantics.Containment -> (
      match embedding with
      | Semantics.Homeo_full -> str_subset qx.q_leaves.(qid) (subtree_leaves sn)
      | Semantics.Hom | Semantics.Iso | Semantics.Homeo ->
        str_subset qx.q_leaves.(qid) sn.T.leaves)
    | Semantics.Equality ->
      (* Exact set equality of the whole subtrees; recursion below is then
         redundant but harmless (kept for uniformity). *)
      Nested.Value.equal qx.q_values.(qid) (T.subtree_value s sn.T.id)
    | Semantics.Superset -> str_subset sn.T.leaves qx.q_leaves.(qid)
    | Semantics.Overlap eps -> str_common_count qx.q_leaves.(qid) sn.T.leaves >= eps
    | Semantics.Similarity r ->
      let leaves = Array.length qx.q_leaves.(qid) in
      let eps =
        if leaves = 0 then 0
        else max 1 (int_of_float (Float.ceil (r *. float_of_int leaves)))
      in
      str_common_count qx.q_leaves.(qid) sn.T.leaves >= eps
  and children_match qid sn =
    let q_children = qx.q_children.(qid) in
    let s_children () = Array.to_list (Array.map (T.node s) sn.T.children) in
    let targets () =
      match embedding with
      | Semantics.Homeo | Semantics.Homeo_full -> descendants s sn
      | Semantics.Hom | Semantics.Iso -> s_children ()
    in
    match join, embedding with
    | Semantics.Superset, _ ->
      List.for_all
        (fun d -> Array.exists (fun qc -> matches qc d) q_children)
        (s_children ())
    | _, (Semantics.Hom | Semantics.Homeo | Semantics.Homeo_full) ->
      let ts = targets () in
      Array.for_all (fun qc -> List.exists (fun t -> matches qc t) ts) q_children
    | _, Semantics.Iso ->
      let ts = s_children () in
      let admissible qc =
        List.filter_map (fun t -> if matches qc t then Some t.T.id else None) ts
        |> Array.of_list
      in
      Matching.has_sdr (Array.to_list (Array.map admissible q_children))
  in
  matches

(* --- witness extraction: rerun the match, recording one image per query
   node. The DP table built by [matcher] makes each local choice cheap. *)

type witness = (string * int) list

let witness ?wildcards join embedding ~q ~s id =
  check_supported ?wildcards join embedding;
  let qx = index_query q in
  let m = matcher ?wildcards join embedding qx s in
  let root_node = T.node s id in
  if not (m 0 root_node) then None
  else begin
    (* paths of query nodes in pre-order *)
    let paths = Array.make (Array.length qx.q_leaves) "root" in
    let rec assign_paths qid path =
      paths.(qid) <- path;
      Array.iteri
        (fun i c -> assign_paths c (Printf.sprintf "%s.%d" path i))
        qx.q_children.(qid)
    in
    assign_paths 0 "root";
    let out = ref [] in
    let targets_of sn =
      match embedding with
      | Semantics.Homeo | Semantics.Homeo_full ->
        T.fold
          (fun acc d ->
            if d.T.id > sn.T.id && d.T.post < sn.T.post then d :: acc else acc)
          [] s
        |> List.rev
      | Semantics.Hom | Semantics.Iso ->
        Array.to_list (Array.map (T.node s) sn.T.children)
    in
    let exception No_witness in
    let rec emit qid (sn : T.node) =
      out := (paths.(qid), sn.T.id) :: !out;
      let q_children = qx.q_children.(qid) in
      if Array.length q_children > 0 then begin
        match join, embedding with
        | Semantics.Superset, _ ->
          (* embedding runs data→query; per-query-node images are not
             defined in that direction *)
          raise No_witness
        | _, Semantics.Iso ->
          (* recover a system of distinct representatives greedily with
             backtracking over the (small) sibling sets *)
          let ts = targets_of sn in
          let admissible qc =
            List.filter (fun t -> m qc t) ts
          in
          let rec assign taken = function
            | [] -> Some []
            | qc :: rest ->
              let rec try_candidates = function
                | [] -> None
                | t :: more ->
                  if List.exists (fun u -> u == t) taken then try_candidates more
                  else (
                    match assign (t :: taken) rest with
                    | Some tail -> Some ((qc, t) :: tail)
                    | None -> try_candidates more)
              in
              try_candidates (admissible qc)
          in
          (match assign [] (Array.to_list q_children) with
          | None -> raise No_witness
          | Some pairs -> List.iter (fun (qc, t) -> emit qc t) pairs)
        | _, (Semantics.Hom | Semantics.Homeo | Semantics.Homeo_full) ->
          let ts = targets_of sn in
          Array.iter
            (fun qc ->
              match List.find_opt (fun t -> m qc t) ts with
              | Some t -> emit qc t
              | None -> raise No_witness)
            q_children
      end
    in
    match emit 0 root_node with
    | () -> Some (List.rev !out)
    | exception No_witness -> None
  end

(* --- prepared checks: hoist the per-query work of [at_node] ---

   A join verifies one query against many candidate records; re-indexing
   the query (and re-validating the mode) per candidate would dominate the
   check. [prepare] does both once. Single-node queries under containment
   with a child-preserving embedding need no DP at all — the node test is
   the whole check, so [run] skips the matcher and its memo tables. *)

type prepared = {
  p_wildcards : bool;
  p_join : Semantics.join;
  p_embedding : Semantics.embedding;
  p_qx : qidx;
  p_flat : (string array -> bool) option;
      (* complete check against the data node's own leaves, when sound *)
}

let prepare ?(wildcards = false) join embedding q =
  check_supported ~wildcards join embedding;
  let qx = index_query q in
  let p_flat =
    if Array.length qx.q_children.(0) > 0 then None
    else
      match join, embedding with
      | Semantics.Containment, (Semantics.Hom | Semantics.Iso | Semantics.Homeo)
        ->
        if wildcards then Some (fun leaves -> wildcard_subset qx.q_leaves.(0) leaves)
        else Some (fun leaves -> str_subset qx.q_leaves.(0) leaves)
      | _ -> None
  in
  { p_wildcards = wildcards; p_join = join; p_embedding = embedding;
    p_qx = qx; p_flat }

let run p ~s id =
  let sn = T.node s id in
  match p.p_flat with
  | Some check -> check sn.T.leaves
  | None ->
    matcher ~wildcards:p.p_wildcards p.p_join p.p_embedding p.p_qx s 0 sn

let at_node ?wildcards join embedding ~q ~s id =
  run (prepare ?wildcards join embedding q) ~s id

let nodes ?wildcards join embedding ~q ~s =
  check_supported ?wildcards join embedding;
  let qx = index_query q in
  let m = matcher ?wildcards join embedding qx s in
  T.fold (fun acc n -> if m 0 n then n.T.id :: acc else acc) [] s
  |> List.rev |> Array.of_list

let contains embedding ~q ~s =
  let alloc = T.allocator () in
  let st = T.of_value alloc ~record_id:0 s in
  at_node Semantics.Containment embedding ~q:(Query.of_value q) ~s:st st.T.root

let check join embedding ~q ~s =
  check_supported join embedding;
  match join with
  | Semantics.Equality -> Nested.Value.equal q s
  | Semantics.Containment | Semantics.Superset | Semantics.Overlap _
  | Semantics.Similarity _ ->
    let alloc = T.allocator () in
    let st = T.of_value alloc ~record_id:0 s in
    at_node join embedding ~q:(Query.of_value q) ~s:st st.T.root
