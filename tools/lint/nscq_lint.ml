(* nscq-lint — project-rule checker built on compiler-libs.

   Parses every .ml under the given roots (no type-checking, so the
   rules are syntactic approximations, documented in DESIGN.md) and
   enforces:

     R1 polycmp    no polymorphic compare/hash on nested-set data
                   (lib/core, lib/nested, the lib/invfile/plist modules,
                   bin/, bench/)
     R2 io         no console printing / blocking Unix calls in query
                   hot paths (lib/core, lib/invfile, lib/shard/router.ml,
                   lib/storage/bitpack; bin/ and bench/ carry explicit
                   file-level allows where console output is the point)
     R3 guarded    no top-level mutable value (Hashtbl, ref, Bytes,
                   Array, Queue, Stack, Buffer, records with mutable
                   fields; Atomic exempt) in library modules without
                   [@@lint.guarded_by <mutex>]
     R4 bare_fail  no failwith / assert false in server reply paths
                   (lib/server, excluding the client side)
     R5 mli        every library module has an .mli
     R6 lockset    [@@lint.guarded_by] is a checked contract: every
                   access to a guarded top-level value must happen with
                   the declared lock in the lexical lockset (through
                   Mutex.protect / Lockdep.protect / lock-unlock pairs,
                   inferred lock-wrapper functions, or a declared
                   [@@lint.requires_lock <mutex>] on the enclosing
                   function, whose own call sites are then checked);
                   unannotated mutables that escape into a
                   Domain.spawn / Parallel / Dispatch / Thread closure
                   are reported even where R3 does not apply

   The pass is two-phase: phase 1 parses every file once and collects
   top-level mutable values, their guards, declared lock bindings and
   mutable record labels; phase 2 walks each file with a lockset and
   checks the contracts, cross-module accesses included.

   Suppression: [@lint.allow <rule-name>] on an expression or binding,
   [@@@lint.allow <rule-name>] for the rest of a file. File discovery
   is scoped to dune-tracked sources: a directory walk only picks up
   .ml files sitting next to a dune file (so a dirty tree's generated
   or scratch files are skipped instead of tripping parse errors);
   explicitly named files are always linted. Exit 0 when clean, 1 with
   one "file:line:col: [R#] message" line per violation (or a JSON
   array under --json), 2 on usage errors. *)

module SSet = Set.Make (String)

type rule = R1 | R2 | R3 | R4 | R5 | R6

let rule_id = function
  | R1 -> "R1"
  | R2 -> "R2"
  | R3 -> "R3"
  | R4 -> "R4"
  | R5 -> "R5"
  | R6 -> "R6"

(* the name used in [@lint.allow <name>] *)
let rule_key = function
  | R1 -> "polycmp"
  | R2 -> "io"
  | R3 -> "guarded"
  | R4 -> "bare_fail"
  | R5 -> "mli"
  | R6 -> "lockset"

let all_rules = [ R1; R2; R3; R4; R5; R6 ]

let rule_of_string s =
  match String.lowercase_ascii s with
  | "r1" | "polycmp" -> Some R1
  | "r2" | "io" -> Some R2
  | "r3" | "guarded" -> Some R3
  | "r4" | "bare_fail" -> Some R4
  | "r5" | "mli" -> Some R5
  | "r6" | "lockset" -> Some R6
  | _ -> None

(* --- diagnostics --- *)

type diagnostic = {
  file : string;
  line : int;
  col : int;
  rule : string; (* "R1".."R6" or "parse" *)
  msg : string;
}

let diagnostics : diagnostic list ref = ref []

let report ~file ~line ~col ~rule msg =
  diagnostics := { file; line; col; rule; msg } :: !diagnostics

let report_loc (loc : Location.t) ~rule msg =
  let p = loc.loc_start in
  report ~file:p.pos_fname ~line:p.pos_lnum ~col:(p.pos_cnum - p.pos_bol)
    ~rule:(rule_id rule) msg

(* --- attribute helpers --- *)

let rec payload_idents (e : Parsetree.expression) =
  match e.pexp_desc with
  | Pexp_ident { txt = Longident.Lident s; _ } -> [ s ]
  | Pexp_construct ({ txt = Longident.Lident s; _ }, None) -> [ s ]
  | Pexp_constant (Pconst_string (s, _, _)) -> [ s ]
  | Pexp_apply (f, args) ->
    payload_idents f @ List.concat_map (fun (_, a) -> payload_idents a) args
  | Pexp_tuple es -> List.concat_map payload_idents es
  | _ -> []

let attr_rule_names name (attrs : Parsetree.attributes) =
  List.concat_map
    (fun (a : Parsetree.attribute) ->
      if String.equal a.attr_name.txt name then
        match a.attr_payload with
        | PStr [ { pstr_desc = Pstr_eval (e, _); _ } ] -> payload_idents e
        | _ -> []
      else [])
    attrs

let allow_names attrs = attr_rule_names "lint.allow" attrs
let guarded_by_names attrs = attr_rule_names "lint.guarded_by" attrs
let requires_lock_names attrs = attr_rule_names "lint.requires_lock" attrs

let has_guarded_by (attrs : Parsetree.attributes) =
  List.exists
    (fun (a : Parsetree.attribute) ->
      String.equal a.attr_name.txt "lint.guarded_by")
    attrs

(* --- per-file checking context --- *)

type ctx = {
  file : string;
  active : rule list; (* rules in force for this file *)
  suppressed : (string, int) Hashtbl.t; (* allow-name -> nesting depth *)
  defines_compare : bool; (* file defines its own [compare] *)
}

let rule_on ctx r =
  List.mem r ctx.active
  &&
  match Hashtbl.find_opt ctx.suppressed (rule_key r) with
  | Some n when n > 0 -> false
  | _ -> true

let push_allows ctx names =
  List.iter
    (fun n ->
      Hashtbl.replace ctx.suppressed n
        (1 + Option.value ~default:0 (Hashtbl.find_opt ctx.suppressed n)))
    names

let pop_allows ctx names =
  List.iter
    (fun n ->
      match Hashtbl.find_opt ctx.suppressed n with
      | Some d when d > 1 -> Hashtbl.replace ctx.suppressed n (d - 1)
      | _ -> Hashtbl.remove ctx.suppressed n)
    names

let with_allows ctx names f =
  push_allows ctx names;
  Fun.protect ~finally:(fun () -> pop_allows ctx names) f

(* --- longident classification --- *)

let rec flatten_lid = function
  | Longident.Lident s -> [ s ]
  | Longident.Ldot (l, s) -> flatten_lid l @ [ s ]
  | Longident.Lapply _ -> []

let strip_stdlib = function
  | ("Stdlib" | "Pervasives") :: rest -> rest
  | l -> l

let lid_path lid = strip_stdlib (flatten_lid lid)
let lid_str lid = String.concat "." (flatten_lid lid)

(* R1: polymorphic structural comparison or hashing. *)
let polycmp_hit ctx path =
  match path with
  | [ "compare" ] -> not ctx.defines_compare
  | [ "Hashtbl"; ("hash" | "seeded_hash" | "hash_param") ] -> true
  | [ "List"; ("mem" | "assoc" | "mem_assoc" | "remove_assoc") ] -> true
  | _ -> false

(* R2: console printing and blocking Unix calls. Formatter-directed
   Format.fprintf/pp_* and string-building Printf.sprintf stay legal. *)
let io_hit path =
  match path with
  | [ ( "print_string" | "print_endline" | "print_newline" | "print_char"
      | "print_int" | "print_float" | "print_bytes" | "prerr_string"
      | "prerr_endline" | "prerr_newline" | "prerr_char" | "prerr_int"
      | "prerr_float" | "prerr_bytes" | "output_string" | "output_bytes"
      | "output_char" | "output_value" | "read_line" | "read_int" ) ] ->
    true
  | [ "Printf"; ("printf" | "eprintf" | "fprintf") ] -> true
  | [ "Format"; ("printf" | "eprintf" | "print_string" | "print_newline") ]
    ->
    true
  | [ "Unix";
      ( "read" | "write" | "single_write" | "select" | "sleep" | "sleepf"
      | "openfile" | "system" | "fsync" | "waitpid" ) ] ->
    true
  | _ -> false

(* --- expression checks (R1, R2, R4) --- *)

let check_ident ctx (lid : Longident.t) (loc : Location.t) =
  let path = lid_path lid in
  if rule_on ctx R1 && polycmp_hit ctx path then
    report_loc loc ~rule:R1
      (Printf.sprintf
         "polymorphic %s on nested-set data; use a monomorphic \
          compare/equal/hash (Value.compare, String.equal, String.hash, \
          ...) or annotate [@lint.allow polycmp]"
         (lid_str lid));
  if rule_on ctx R2 && io_hit path then
    report_loc loc ~rule:R2
      (Printf.sprintf
         "%s in a query hot path; route diagnostics through Obs (metrics, \
          trace, slow log) or annotate [@lint.allow io]"
         (lid_str lid));
  if rule_on ctx R4 && path = [ "failwith" ] then
    report_loc loc ~rule:R4
      "failwith in a server reply path; the wire protocol has an error \
       frame — reply with Wire.Error / Dispatch.Refused or annotate \
       [@lint.allow bare_fail]"

let check_expr ctx (e : Parsetree.expression) =
  (match e.pexp_desc with
  | Pexp_ident { txt; loc } -> check_ident ctx txt loc
  | Pexp_apply (f, args) when rule_on ctx R1 ->
    (* (=) / (<>) used as a first-class equality: passed bare to a
       higher-order function, or partially applied to build a predicate
       ([List.exists (( = ) v)]). Infix two-argument tests stay legal —
       ints and strings compare that way all over the tree. *)
    (match (f.pexp_desc, args) with
    | Pexp_ident { txt = Longident.Lident (("=" | "<>") as op); loc }, [ _ ]
      ->
      report_loc loc ~rule:R1
        (Printf.sprintf
           "polymorphic (%s) partially applied as an equality predicate; \
            use Value.equal / String.equal / Int.equal or annotate \
            [@lint.allow polycmp]"
           op)
    | _ -> ());
    List.iter
      (fun ((_, arg) : Asttypes.arg_label * Parsetree.expression) ->
        match arg.pexp_desc with
        | Pexp_ident { txt = Longident.Lident (("=" | "<>") as op); loc } ->
          report_loc loc ~rule:R1
            (Printf.sprintf
               "polymorphic (%s) passed as an equality function; pass \
                Value.equal / String.equal / Int.equal or annotate \
                [@lint.allow polycmp]"
               op)
        | _ -> ())
      args
  | Pexp_assert { pexp_desc = Pexp_construct ({ txt = Lident "false"; _ }, None); _ }
    when rule_on ctx R4 ->
    report_loc e.pexp_loc ~rule:R4
      "assert false in a server reply path; reply with Wire.Error / \
       Dispatch.Refused or annotate [@lint.allow bare_fail]"
  | _ -> ())

let make_iterator ctx =
  let super = Ast_iterator.default_iterator in
  let expr self (e : Parsetree.expression) =
    with_allows ctx
      (allow_names e.pexp_attributes)
      (fun () ->
        check_expr ctx e;
        super.expr self e)
  in
  let value_binding self (vb : Parsetree.value_binding) =
    with_allows ctx
      (allow_names vb.pvb_attributes)
      (fun () -> super.value_binding self vb)
  in
  let structure_item self (item : Parsetree.structure_item) =
    match item.pstr_desc with
    | Pstr_attribute a ->
      (* [@@@lint.allow ...] holds for the rest of the file: push without
         a matching pop *)
      push_allows ctx (allow_names [ a ]);
      super.structure_item self item
    | _ -> super.structure_item self item
  in
  { super with expr; value_binding; structure_item }

(* --- mutable-value classification (R3 / R6 phase 1) --- *)

let rec peel_constraints (e : Parsetree.expression) =
  match e.pexp_desc with
  | Pexp_constraint (e, _) | Pexp_coerce (e, _, _) -> peel_constraints e
  | _ -> e

(* Labels of mutable record fields declared in this file (including
   sub-modules): a top-level record literal mentioning one is shared
   mutable state exactly like a top-level Hashtbl. *)
let mutable_labels_of (str : Parsetree.structure) =
  let labels = ref SSet.empty in
  let rec scan items =
    List.iter
      (fun (item : Parsetree.structure_item) ->
        match item.pstr_desc with
        | Pstr_type (_, decls) ->
          List.iter
            (fun (d : Parsetree.type_declaration) ->
              match d.ptype_kind with
              | Ptype_record fields ->
                List.iter
                  (fun (f : Parsetree.label_declaration) ->
                    if f.pld_mutable = Mutable then
                      labels := SSet.add f.pld_name.txt !labels)
                  fields
              | _ -> ())
            decls
        | Pstr_module { pmb_expr = { pmod_desc = Pmod_structure s; _ }; _ } ->
          scan s
        | _ -> ())
      items
  in
  scan str;
  !labels

(* [Some kind] when the expression builds shared mutable state;
   [Atomic.make] is deliberately not mutable for the rules' purposes. *)
let mutable_kind ~mutable_labels (e : Parsetree.expression) =
  match (peel_constraints e).pexp_desc with
  | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, _) -> (
    match lid_path txt with
    | [ "Hashtbl"; "create" ] -> Some "Hashtbl"
    | [ "ref" ] -> Some "ref"
    | [ "Bytes"; ("create" | "make" | "init" | "of_string") ] -> Some "Bytes"
    | [ "Array"; ("make" | "create" | "init" | "make_matrix" | "copy") ] ->
      Some "Array"
    | [ "Queue"; "create" ] -> Some "Queue"
    | [ "Stack"; "create" ] -> Some "Stack"
    | [ "Buffer"; "create" ] -> Some "Buffer"
    | _ -> None)
  | Pexp_array (_ :: _) -> Some "Array"
  | Pexp_record (fields, _) ->
    if
      List.exists
        (fun (({ txt; _ } : Longident.t Asttypes.loc), _) ->
          match txt with
          | Longident.Lident l -> SSet.mem l mutable_labels
          | _ -> false)
        fields
    then Some "record with mutable fields"
    else None
  | _ -> None

let is_atomic (e : Parsetree.expression) =
  match (peel_constraints e).pexp_desc with
  | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, _) ->
    lid_path txt = [ "Atomic"; "make" ]
  | _ -> false

(* --- phase 1: the cross-module environment --- *)

type ginfo = {
  g_file : string;
  g_module : string; (* capitalized module name from the file name *)
  g_name : string;
  g_kind : string;
  g_lock : string option; (* guarded_by payload; None when unannotated *)
  g_atomic : bool;
  g_allowed : bool;
}

type genv = {
  (* value name -> every top-level mutable of that name, any module *)
  guarded : (string, ginfo) Hashtbl.t;
  (* file -> lock-binding name -> Lockdep class string (when literal) *)
  lock_classes : (string, (string, string) Hashtbl.t) Hashtbl.t;
  (* file -> binding names of lock values (Mutex.create/Lockdep.create) *)
  lock_bindings : (string, SSet.t ref) Hashtbl.t;
}

let module_of_file file =
  String.capitalize_ascii Filename.(remove_extension (basename file))

let lock_make_kind (e : Parsetree.expression) =
  match (peel_constraints e).pexp_desc with
  | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, args) -> (
    match lid_path txt with
    | [ "Mutex"; "create" ] -> Some None
    | [ "Lockdep"; "create" ] -> (
      match args with
      | (_, { pexp_desc = Pexp_constant (Pconst_string (s, _, _)); _ }) :: _
        ->
        Some (Some s)
      | _ -> Some None)
    | _ -> None)
  | _ -> None

let genv_add_file genv file (str : Parsetree.structure) =
  let mutable_labels = mutable_labels_of str in
  let m = module_of_file file in
  let classes = Hashtbl.create 8 in
  let bindings = ref SSet.empty in
  Hashtbl.replace genv.lock_classes file classes;
  Hashtbl.replace genv.lock_bindings file bindings;
  let rec scan items =
    List.iter
      (fun (item : Parsetree.structure_item) ->
        match item.pstr_desc with
        | Pstr_value (_, vbs) ->
          List.iter
            (fun (vb : Parsetree.value_binding) ->
              match vb.pvb_pat.ppat_desc with
              | Ppat_var { txt = name; _ } -> (
                (match lock_make_kind vb.pvb_expr with
                | Some cls ->
                  bindings := SSet.add name !bindings;
                  Option.iter (Hashtbl.replace classes name) cls
                | None -> ());
                let lock =
                  match
                    guarded_by_names vb.pvb_attributes
                    @ guarded_by_names vb.pvb_expr.pexp_attributes
                  with
                  | l :: _ -> Some l
                  | [] -> None
                in
                let allowed =
                  List.mem (rule_key R3) (allow_names vb.pvb_attributes)
                  || List.mem (rule_key R6) (allow_names vb.pvb_attributes)
                in
                match mutable_kind ~mutable_labels vb.pvb_expr with
                | Some kind ->
                  Hashtbl.add genv.guarded name
                    {
                      g_file = file;
                      g_module = m;
                      g_name = name;
                      g_kind = kind;
                      g_lock = lock;
                      g_atomic = false;
                      g_allowed = allowed;
                    }
                | None ->
                  if is_atomic vb.pvb_expr then
                    Hashtbl.add genv.guarded name
                      {
                        g_file = file;
                        g_module = m;
                        g_name = name;
                        g_kind = "Atomic";
                        g_lock = None;
                        g_atomic = true;
                        g_allowed = true;
                      })
              | _ -> ())
            vbs
        | Pstr_module { pmb_expr = me; _ } -> scan_module me
        | Pstr_recmodule mbs ->
          List.iter
            (fun (mb : Parsetree.module_binding) -> scan_module mb.pmb_expr)
            mbs
        | _ -> ())
      items
  and scan_module (me : Parsetree.module_expr) =
    match me.pmod_desc with
    | Pmod_structure s -> scan s
    | Pmod_functor (_, body) -> scan_module body
    | Pmod_constraint (me, _) -> scan_module me
    | _ -> ()
  in
  scan str

(* A guarded value is looked up by name plus, for qualified accesses,
   the head module; same-file accesses win over a same-named value in
   another module. *)
let genv_lookup genv ~file path =
  match path with
  | [] -> None
  | _ ->
    let name = List.nth path (List.length path - 1) in
    let candidates = Hashtbl.find_all genv.guarded name in
    let local = List.find_opt (fun g -> String.equal g.g_file file) candidates in
    (match path with
    | [] | [ _ ] -> local
    | qual :: _ -> (
      match
        List.find_opt
          (fun g ->
            String.equal g.g_module (List.hd path)
            && not (String.equal g.g_file file))
          candidates
      with
      | Some g -> Some g
      | None -> if String.equal qual (module_of_file file) then local else None))

(* --- R3: top-level mutable state (single-module annotation check) --- *)

let rec check_r3_structure ctx ~mutable_labels (str : Parsetree.structure) =
  List.iter
    (fun (item : Parsetree.structure_item) ->
      match item.pstr_desc with
      | Pstr_attribute a -> push_allows ctx (allow_names [ a ])
      | Pstr_value (_, vbs) ->
        List.iter
          (fun (vb : Parsetree.value_binding) ->
            if
              rule_on ctx R3
              && (not (has_guarded_by vb.pvb_attributes))
              && (not (has_guarded_by vb.pvb_expr.pexp_attributes))
              && not (List.mem (rule_key R3) (allow_names vb.pvb_attributes))
            then
              match mutable_kind ~mutable_labels vb.pvb_expr with
              | Some kind ->
                report_loc vb.pvb_loc ~rule:R3
                  (Printf.sprintf
                     "top-level mutable %s shared by every domain; guard \
                      it with a Lockdep mutex and annotate \
                      [@@lint.guarded_by <mutex>] (or make it Atomic)"
                     kind)
              | None -> ())
          vbs
      | Pstr_module mb -> check_r3_module ctx ~mutable_labels mb.pmb_expr
      | Pstr_recmodule mbs ->
        List.iter (fun (mb : Parsetree.module_binding) ->
            check_r3_module ctx ~mutable_labels mb.pmb_expr)
          mbs
      | _ -> ())
    str

and check_r3_module ctx ~mutable_labels (me : Parsetree.module_expr) =
  match me.pmod_desc with
  | Pmod_structure s -> check_r3_structure ctx ~mutable_labels s
  | Pmod_functor (_, body) -> check_r3_module ctx ~mutable_labels body
  | Pmod_constraint (me, _) -> check_r3_module ctx ~mutable_labels me
  | _ -> ()

(* --- R6: checked guarded_by contracts ---

   A lexical lockset analysis over the parsetree. The lockset grows
   through:

     - Mutex.protect L f / Lockdep.protect L f: the function argument
       runs with L held;
     - Mutex.lock L; ...; Mutex.unlock L sequences (Lockdep.lock too);
     - calls of inferred lock wrappers: a function whose last unlabelled
       function parameter is always run with some lock held (e.g.
       [let with_state f = Mutex.protect state_mu f]) passes that lock
       to literal-lambda arguments at its call sites;
     - [@@lint.requires_lock <mutex>] on a binding: the body is checked
       with the lock assumed held, and every call site of the function
       must hold it — Clang thread-safety REQUIRES(), approximated.

   Accesses at lambda depth 0 (module initialisation, which runs before
   any domain is spawned) are exempt. *)

type lenv = {
  genv : genv;
  lfile : string;
  lctx : ctx;
  (* function name -> locks its last unlabelled lambda argument runs
     under (inferred wrappers), flat per file *)
  wrappers : (string, SSet.t) Hashtbl.t;
  (* function name -> locks its callers must hold *)
  requires : (string, SSet.t) Hashtbl.t;
}

(* Both the binding name and, for Lockdep locks with a literal class,
   the class string go into the lockset, so [@@lint.guarded_by] can
   name either. *)
let lock_names_of lenv (e : Parsetree.expression) =
  match (peel_constraints e).pexp_desc with
  | Pexp_ident { txt; _ } -> (
    match lid_path txt with
    | [] -> SSet.empty
    | path ->
      let name = List.nth path (List.length path - 1) in
      let base = SSet.singleton name in
      (match Hashtbl.find_opt lenv.genv.lock_classes lenv.lfile with
      | Some classes -> (
        match Hashtbl.find_opt classes name with
        | Some cls -> SSet.add cls base
        | None -> base)
      | None -> base))
  | Pexp_field (_, { txt; _ }) -> (
    (* t.mutex-style locks: record fields have no global identity the
       parser can see, so only the field name enters the lockset —
       enough for same-record [@@lint.guarded_by <field>] contracts. *)
    match lid_path txt with
    | [] -> SSet.empty
    | path -> SSet.singleton (List.nth path (List.length path - 1)))
  | _ -> SSet.empty

let is_protect_path path =
  match path with
  | [ ("Mutex" | "Lockdep"); "protect" ] -> true
  | _ -> false

let is_lock_path path =
  match path with
  | [ ("Mutex" | "Lockdep"); "lock" ] -> true
  | _ -> false

let is_unlock_path path =
  match path with
  | [ ("Mutex" | "Lockdep"); "unlock" ] -> true
  | _ -> false

(* Functions whose closure arguments run on another domain/thread. *)
let spawns_closure path =
  match path with
  | [ "Domain"; "spawn" ] | [ "Thread"; "create" ] -> true
  | ("Parallel" | "Dispatch") :: _ -> true
  | _ -> false

let last_nolabel_index args =
  let idx = ref (-1) in
  List.iteri
    (fun i ((lbl, _) : Asttypes.arg_label * Parsetree.expression) ->
      if lbl = Asttypes.Nolabel then idx := i)
    args;
  !idx

type wstate = {
  locks : SSet.t;
  depth : int; (* enclosing lambda count; 0 = module init *)
  in_spawn : bool;
  (* inference mode: watch this parameter and intersect the locksets it
     is run under; Check mode reports instead *)
  watch : (string * SSet.t option ref) option;
}

let rec peel_fun_params (e : Parsetree.expression) =
  match e.pexp_desc with
  | Pexp_fun (lbl, _, pat, body) ->
    let params, body' = peel_fun_params body in
    let here =
      match (lbl, pat.ppat_desc) with
      | Asttypes.Nolabel, Ppat_var { txt; _ } -> [ txt ]
      | _ -> []
    in
    (here @ params, body')
  | _ -> ([], e)

let rec walk lenv st (e : Parsetree.expression) =
  let allows = allow_names e.pexp_attributes in
  with_allows lenv.lctx allows (fun () -> walk_desc lenv st e)

and note_param_run st set =
  match st.watch with
  | Some (_, acc) ->
    let run = SSet.union st.locks set in
    acc :=
      Some
        (match !acc with None -> run | Some prev -> SSet.inter prev run)
  | None -> ()

and is_watched st (arg : Parsetree.expression) =
  match (st.watch, arg.pexp_desc) with
  | Some (p, _), Pexp_ident { txt = Longident.Lident q; _ } ->
    String.equal p q
  | _ -> false

and walk_desc lenv st (e : Parsetree.expression) =
  match e.pexp_desc with
  | Pexp_ident { txt; loc } ->
    (* any occurrence of the watched parameter counts as running it with
       the current lockset (applied, or passed to code that runs it) *)
    (match (st.watch, lid_path txt) with
    | Some (p, _), [ q ] when String.equal p q -> note_param_run st SSet.empty
    | _ -> ());
    check_r6_access lenv st txt loc
  | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, args)
    when is_protect_path (lid_path txt) ->
    (* Mutex.protect L f — f runs with L held *)
    let nolabels =
      List.filter (fun ((l, _) : Asttypes.arg_label * _) -> l = Asttypes.Nolabel)
        args
    in
    (match nolabels with
    | (_, lock_e) :: _ ->
      let locks = lock_names_of lenv lock_e in
      let last = last_nolabel_index args in
      List.iteri
        (fun i ((_, arg) : Asttypes.arg_label * Parsetree.expression) ->
          if i = last then begin
            let st' = { st with locks = SSet.union st.locks locks } in
            (* a watched parameter handed to protect runs under its lock *)
            if is_watched st arg then note_param_run st' SSet.empty
            else walk_arg lenv st' arg
          end
          else walk lenv st arg)
        args
    | [] -> List.iter (fun (_, a) -> walk lenv st a) args)
  | Pexp_sequence (e1, e2) -> (
    (* Mutex.lock L; body — body runs with L held until the unlock *)
    match e1.pexp_desc with
    | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, [ (_, lock_e) ])
      when is_lock_path (lid_path txt) ->
      walk lenv st e1;
      walk lenv
        { st with locks = SSet.union st.locks (lock_names_of lenv lock_e) }
        e2
    | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, [ (_, lock_e) ])
      when is_unlock_path (lid_path txt) ->
      walk lenv st e1;
      walk lenv
        { st with locks = SSet.diff st.locks (lock_names_of lenv lock_e) }
        e2
    | _ ->
      walk lenv st e1;
      walk lenv st e2)
  | Pexp_apply (({ pexp_desc = Pexp_ident { txt; loc }; _ } as f), args) ->
    let path = lid_path txt in
    (* calls of requires_lock functions must hold the declared locks *)
    (match path with
    | [ name ] -> (
      match Hashtbl.find_opt lenv.requires name with
      | Some need ->
        if
          rule_on lenv.lctx R6 && st.depth > 0
          && not (SSet.for_all (fun l -> SSet.mem l st.locks) need)
        then
          report_loc loc ~rule:R6
            (Printf.sprintf
               "call of %s requires holding %s ([@@lint.requires_lock]) — \
                take the lock first or annotate [@lint.allow lockset]"
               name
               (String.concat ", " (SSet.elements need)))
      | None -> ())
    | _ -> ());
    (* wrapper call: its last unlabelled lambda argument runs under the
       wrapper's locks *)
    let wrapper_locks =
      match path with
      | [ name ] -> Hashtbl.find_opt lenv.wrappers name
      | _ -> None
    in
    let spawning = spawns_closure path in
    walk lenv st f;
    let last = last_nolabel_index args in
    List.iteri
      (fun i ((_, arg) : Asttypes.arg_label * Parsetree.expression) ->
        let st' =
          if spawning then { st with in_spawn = true }
          else
            match wrapper_locks with
            | Some locks when i = last ->
              { st with locks = SSet.union st.locks locks }
            | _ -> st
        in
        (* a watched parameter passed through to another lock wrapper's
           run-slot runs under that wrapper's locks, not bare *)
        if
          (match wrapper_locks with Some _ -> i = last | None -> false)
          && is_watched st arg
        then note_param_run st' SSet.empty
        else walk_arg lenv st' arg)
      args
  | Pexp_apply (f, args) ->
    walk lenv st f;
    List.iter (fun (_, a) -> walk_arg lenv st a) args
  | Pexp_fun (_, default, _, body) ->
    Option.iter (walk lenv st) default;
    walk lenv { st with depth = st.depth + 1 } body
  | Pexp_function cases ->
    List.iter
      (fun (c : Parsetree.case) ->
        Option.iter (walk lenv { st with depth = st.depth + 1 }) c.pc_guard;
        walk lenv { st with depth = st.depth + 1 } c.pc_rhs)
      cases
  | Pexp_let (_, vbs, body) ->
    List.iter
      (fun (vb : Parsetree.value_binding) ->
        register_binding lenv st vb;
        walk_binding lenv st vb)
      vbs;
    walk lenv st body
  | _ ->
    (* generic traversal with the same state for every child *)
    let self =
      {
        Ast_iterator.default_iterator with
        expr = (fun _ child -> walk lenv st child);
      }
    in
    Ast_iterator.default_iterator.expr self e

(* The watched-parameter bookkeeping treats a lambda argument as run
   immediately (locks active at the call), which matches how the
   project's protect-wrappers use them. *)
and walk_arg lenv st (arg : Parsetree.expression) =
  match arg.pexp_desc with
  | Pexp_fun _ | Pexp_function _ ->
    (* the lambda body executes where it is passed: keep the adjusted
       lockset, bump depth *)
    let rec into (e : Parsetree.expression) d =
      match e.pexp_desc with
      | Pexp_fun (_, default, _, body) ->
        Option.iter (walk lenv { st with depth = d }) default;
        into body (d + 1)
      | _ -> walk lenv { st with depth = d } e
    in
    into arg (st.depth + 1)
  | _ -> walk lenv st arg

(* Infer a lock-wrapper summary and register requires_lock contracts
   for a binding; used for both top-level and let-bound functions. *)
and register_binding lenv st (vb : Parsetree.value_binding) =
  match vb.pvb_pat.ppat_desc with
  | Ppat_var { txt = name; _ } -> (
    (match requires_lock_names vb.pvb_attributes with
    | [] -> ()
    | locks -> Hashtbl.replace lenv.requires name (SSet.of_list locks));
    let params, body = peel_fun_params vb.pvb_expr in
    match List.rev params with
    | last :: _ ->
      let acc = ref None in
      let st' =
        {
          locks = SSet.empty;
          depth = st.depth;
          in_spawn = false;
          watch = Some (last, acc);
        }
      in
      (* inference never reports: run with every rule suppressed *)
      with_allows lenv.lctx
        (List.map rule_key all_rules)
        (fun () -> walk lenv st' body);
      (match !acc with
      | Some locks when not (SSet.is_empty locks) ->
        Hashtbl.replace lenv.wrappers name locks
      | _ -> ())
    | [] -> ())
  | _ -> ()

and walk_binding lenv st (vb : Parsetree.value_binding) =
  with_allows lenv.lctx
    (allow_names vb.pvb_attributes)
    (fun () ->
      let base =
        match requires_lock_names vb.pvb_attributes with
        | [] -> st
        | locks -> { st with locks = SSet.union st.locks (SSet.of_list locks) }
      in
      walk lenv base vb.pvb_expr)

and check_r6_access lenv st (lid : Longident.t) (loc : Location.t) =
  if rule_on lenv.lctx R6 then
    match genv_lookup lenv.genv ~file:lenv.lfile (lid_path lid) with
    | None -> ()
    | Some g ->
      if g.g_atomic || g.g_allowed then ()
      else (
        match g.g_lock with
        | Some lock ->
          if st.depth > 0 && not (SSet.mem lock st.locks) then
            report_loc loc ~rule:R6
              (Printf.sprintf
                 "access to %s (%s, guarded by %S) without holding the \
                  lock; wrap it in Mutex.protect/Lockdep.protect %s, mark \
                  the enclosing function [@@lint.requires_lock %s], or \
                  annotate [@lint.allow lockset]"
                 g.g_name g.g_kind lock lock lock)
        | None ->
          if st.in_spawn then
            report_loc loc ~rule:R6
              (Printf.sprintf
                 "unannotated top-level mutable %s (%s) escapes into a \
                  domain closure; guard it with a Lockdep mutex and \
                  [@@lint.guarded_by], make it Atomic, or annotate \
                  [@lint.allow lockset]"
                 g.g_name g.g_kind))

(* Verify that each guarded_by annotation in this file names a known
   lock: a binding created with Mutex.create/Lockdep.create, a literal
   Lockdep class string, or a record field (same-record contracts are
   the sanitizer's territory and stay un-checked here). *)
let check_r6_guards lenv (str : Parsetree.structure) =
  let known_binding name =
    match Hashtbl.find_opt lenv.genv.lock_bindings lenv.lfile with
    | Some s -> SSet.mem name !s
    | None -> false
  in
  let known_class name =
    match Hashtbl.find_opt lenv.genv.lock_classes lenv.lfile with
    | Some classes ->
      Hashtbl.fold (fun _ cls acc -> acc || String.equal cls name) classes
        false
    | None -> false
  in
  let field_names = ref SSet.empty in
  let rec collect_fields items =
    List.iter
      (fun (item : Parsetree.structure_item) ->
        match item.pstr_desc with
        | Pstr_type (_, decls) ->
          List.iter
            (fun (d : Parsetree.type_declaration) ->
              match d.ptype_kind with
              | Ptype_record fields ->
                List.iter
                  (fun (f : Parsetree.label_declaration) ->
                    field_names := SSet.add f.pld_name.txt !field_names)
                  fields
              | _ -> ())
            decls
        | Pstr_module { pmb_expr = { pmod_desc = Pmod_structure s; _ }; _ } ->
          collect_fields s
        | _ -> ())
      items
  in
  collect_fields str;
  let rec scan items =
    List.iter
      (fun (item : Parsetree.structure_item) ->
        match item.pstr_desc with
        | Pstr_value (_, vbs) ->
          List.iter
            (fun (vb : Parsetree.value_binding) ->
              match
                guarded_by_names vb.pvb_attributes
                @ guarded_by_names vb.pvb_expr.pexp_attributes
              with
              | [] -> ()
              | lock :: _ ->
                if
                  rule_on lenv.lctx R6
                  && (not (known_binding lock))
                  && (not (known_class lock))
                  && not (SSet.mem lock !field_names)
                then
                  report_loc vb.pvb_loc ~rule:R6
                    (Printf.sprintf
                       "[@@lint.guarded_by %s] names no lock in this \
                        module (no Mutex.create/Lockdep.create binding, \
                        class string, or record field of that name)"
                       lock))
            vbs
        | Pstr_module { pmb_expr = { pmod_desc = Pmod_structure s; _ }; _ } ->
          scan s
        | Pstr_module
            { pmb_expr = { pmod_desc = Pmod_functor (_, { pmod_desc = Pmod_structure s; _ }); _ }; _ }
          ->
          scan s
        | _ -> ())
      items
  in
  scan str

let check_r6_structure lenv (str : Parsetree.structure) =
  let st = { locks = SSet.empty; depth = 0; in_spawn = false; watch = None } in
  let rec scan items =
    List.iter
      (fun (item : Parsetree.structure_item) ->
        match item.pstr_desc with
        | Pstr_attribute a -> push_allows lenv.lctx (allow_names [ a ])
        | Pstr_value (_, vbs) ->
          List.iter
            (fun (vb : Parsetree.value_binding) ->
              register_binding lenv st vb;
              walk_binding lenv st vb)
            vbs
        | Pstr_module mb -> scan_module mb.pmb_expr
        | Pstr_recmodule mbs ->
          List.iter
            (fun (mb : Parsetree.module_binding) -> scan_module mb.pmb_expr)
            mbs
        | _ -> ())
      items
  and scan_module (me : Parsetree.module_expr) =
    match me.pmod_desc with
    | Pmod_structure s -> scan s
    | Pmod_functor (_, body) -> scan_module body
    | Pmod_constraint (me, _) -> scan_module me
    | _ -> ()
  in
  check_r6_guards lenv str;
  scan str

(* --- file scanning --- *)

let norm_path p =
  (* normalize ./foo and backslashes so scope matching is stable *)
  let p = String.concat "/" (String.split_on_char '\\' p) in
  if String.length p > 2 && String.sub p 0 2 = "./" then
    String.sub p 2 (String.length p - 2)
  else p

let in_dir dir file =
  (* [dir] like "lib/core/": true for any path containing it *)
  let dl = String.length dir and fl = String.length file in
  let rec go i =
    i + dl <= fl && (String.sub file i dl = dir || go (i + 1))
  in
  go 0

let default_rules_for file =
  let file = norm_path file in
  let r1 =
    in_dir "lib/core/" file || in_dir "lib/nested/" file
    (* the intersection kernels: a stray polymorphic compare on postings
       would silently bypass Posting.compare *)
    || in_dir "lib/invfile/plist" file
    (* the join engine sorts atoms and postings on hot paths *)
    || in_dir "lib/join/" file
    (* the live store merges per-segment id lists and binary-searches
       gid maps — a polymorphic compare there is a silent perf bug *)
    || in_dir "lib/live/" file
    (* the flight recorder's emit path runs inside every query; the
       explain builder sorts atom plans — keep both monomorphic *)
    || in_dir "lib/obs/recorder" file
    || in_dir "lib/obs/explain" file
    (* driver and bench code sort latency arrays and filter experiment
       lists; a polymorphic compare there is the same silent perf bug *)
    || in_dir "bin/" file
    || in_dir "bench/" file
  in
  let r2 =
    in_dir "lib/core/" file || in_dir "lib/invfile/" file
    || in_dir "lib/shard/router.ml" file
    || in_dir "lib/storage/bitpack" file
    || in_dir "lib/join/" file
    || in_dir "lib/live/" file
    (* recorder events are emitted on the query hot path: no console or
       blocking Unix calls there (dump-time writes are annotated) *)
    || in_dir "lib/obs/recorder" file
    || in_dir "lib/obs/explain" file
    (* executables print by design; each carries a file-level
       [@@@lint.allow io] so the decision is explicit in the source *)
    || in_dir "bin/" file
    || in_dir "bench/" file
  in
  let r4 =
    in_dir "lib/server/" file && not (in_dir "lib/server/client." file)
  in
  let lib = in_dir "lib/" file in
  let exe = in_dir "bin/" file || in_dir "bench/" file in
  List.filter_map
    (fun (cond, r) -> if cond then Some r else None)
    [
      (r1, R1);
      (r2, R2);
      (lib, R3);
      (r4, R4);
      (lib || exe, R5);
      (lib, R6);
    ]

let file_defines_compare (str : Parsetree.structure) =
  let found = ref false in
  let rec pat_binds_compare (p : Parsetree.pattern) =
    match p.ppat_desc with
    | Ppat_var { txt = "compare"; _ } -> true
    | Ppat_constraint (p, _) | Ppat_alias (p, _) -> pat_binds_compare p
    | Ppat_tuple ps -> List.exists pat_binds_compare ps
    | _ -> false
  in
  let rec scan (items : Parsetree.structure) =
    List.iter
      (fun (item : Parsetree.structure_item) ->
        match item.pstr_desc with
        | Pstr_value (_, vbs) ->
          if List.exists (fun (vb : Parsetree.value_binding) ->
                 pat_binds_compare vb.pvb_pat)
               vbs
          then found := true
        | Pstr_module { pmb_expr = { pmod_desc = Pmod_structure s; _ }; _ } ->
          scan s
        | _ -> ())
      items
  in
  scan str;
  !found

let parse_implementation file =
  try Ok (Pparse.parse_implementation ~tool_name:"nscq-lint" file)
  with exn ->
    let msg =
      match Location.error_of_exn exn with
      | Some (`Ok e) -> Format.asprintf "%a" Location.print_report e
      | _ -> Printexc.to_string exn
    in
    Error msg

let check_mli_presence active file str =
  if List.mem R5 active && Filename.check_suffix file ".ml" then
    let mli = file ^ "i" in
    if not (Sys.file_exists mli) then
      if not (List.mem (rule_key R5) (allow_names (List.concat_map
               (fun (item : Parsetree.structure_item) ->
                 match item.pstr_desc with
                 | Pstr_attribute a -> [ a ]
                 | _ -> [])
               str)))
      then
        report ~file ~line:1 ~col:0 ~rule:(rule_id R5)
          (Printf.sprintf
             "library module has no interface: %s is missing (add it, or \
              put [@@@lint.allow mli] at the top of the file)"
             (Filename.basename mli))

let check_file genv ~forced_rules file (str : Parsetree.structure) =
  let active =
    match forced_rules with
    | Some rs -> rs
    | None -> default_rules_for file
  in
  if active <> [] then begin
    let ctx =
      {
        file;
        active;
        suppressed = Hashtbl.create 8;
        defines_compare = file_defines_compare str;
      }
    in
    check_mli_presence active file str;
    let it = make_iterator ctx in
    it.structure it str;
    (* R3 walks only structure-level bindings, so it gets its own
       traversal with a fresh suppression scope *)
    let ctx3 = { ctx with suppressed = Hashtbl.create 8 } in
    check_r3_structure ctx3 ~mutable_labels:(mutable_labels_of str) str;
    (* R6 likewise: lockset analysis with its own suppression scope *)
    let ctx6 = { ctx with suppressed = Hashtbl.create 8 } in
    if List.mem R6 active then
      check_r6_structure
        {
          genv;
          lfile = file;
          lctx = ctx6;
          wrappers = Hashtbl.create 8;
          requires = Hashtbl.create 8;
        }
        str
  end

(* --- directory walking & driver --- *)

(* A walk only picks up .ml files that dune tracks: they must sit next
   to a dune file and have a plain module name (generated foo.pp.ml and
   editor scratch files are skipped, not parse errors). *)
let dune_tracked path =
  let base = Filename.basename path in
  Filename.check_suffix base ".ml"
  && (match String.index_opt base '.' with
     | Some i -> String.equal (String.sub base i (String.length base - i)) ".ml"
     | None -> false)
  && Sys.file_exists (Filename.concat (Filename.dirname path) "dune")

let rec collect acc path =
  if Sys.is_directory path then
    Sys.readdir path |> Array.to_list |> List.sort String.compare
    |> List.fold_left
         (fun acc entry ->
           if
             String.length entry > 0
             && entry.[0] <> '.'
             && entry <> "_build"
           then collect acc (Filename.concat path entry)
           else acc)
         acc
  else if dune_tracked path then path :: acc
  else acc

let usage () =
  prerr_endline
    "usage: nscq-lint [--rule R1|..|R6]... [--json] [--list-rules] path...";
  exit 2

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let () =
  let forced = ref [] in
  let paths = ref [] in
  let json = ref false in
  let rec parse_args = function
    | [] -> ()
    | "--rule" :: v :: rest -> (
      match rule_of_string v with
      | Some r ->
        forced := r :: !forced;
        parse_args rest
      | None ->
        Printf.eprintf "nscq-lint: unknown rule %S\n" v;
        usage ())
    | "--json" :: rest ->
      json := true;
      parse_args rest
    | "--list-rules" :: rest ->
      List.iter
        (fun r -> Printf.printf "%s %s\n" (rule_id r) (rule_key r))
        all_rules;
      parse_args rest
    | ("--help" | "-h") :: _ -> usage ()
    | p :: rest ->
      paths := p :: !paths;
      parse_args rest
  in
  parse_args (List.tl (Array.to_list Sys.argv));
  if !paths = [] then usage ();
  let files =
    List.fold_left
      (fun acc p ->
        if not (Sys.file_exists p) then begin
          Printf.eprintf "nscq-lint: no such file or directory: %s\n" p;
          exit 2
        end;
        (* explicitly named files are always linted; directories are
           walked with the dune-tracked filter *)
        if Sys.is_directory p then collect acc p else p :: acc)
      [] (List.rev !paths)
    |> List.sort_uniq String.compare
  in
  let forced_rules =
    match !forced with [] -> None | rs -> Some (List.rev rs)
  in
  (* phase 1: parse everything once, build the cross-module environment *)
  let genv =
    {
      guarded = Hashtbl.create 64;
      lock_classes = Hashtbl.create 16;
      lock_bindings = Hashtbl.create 16;
    }
  in
  let parsed =
    List.filter_map
      (fun file ->
        match parse_implementation file with
        | Ok str ->
          genv_add_file genv file str;
          Some (file, str)
        | Error msg ->
          report ~file ~line:1 ~col:0 ~rule:"parse" msg;
          None)
      files
  in
  (* phase 2: per-file checks with the global environment in scope *)
  List.iter (fun (file, str) -> check_file genv ~forced_rules file str) parsed;
  let ds =
    List.sort
      (fun (a : diagnostic) (b : diagnostic) ->
        match String.compare a.file b.file with
        | 0 -> (
          match Int.compare a.line b.line with
          | 0 -> Int.compare a.col b.col
          | c -> c)
        | c -> c)
      !diagnostics
  in
  if !json then begin
    let entries =
      List.map
        (fun (d : diagnostic) ->
          Printf.sprintf
            "{\"file\":\"%s\",\"line\":%d,\"col\":%d,\"rule\":\"%s\",\"msg\":\"%s\"}"
            (json_escape d.file) d.line d.col (json_escape d.rule)
            (json_escape d.msg))
        ds
    in
    Printf.printf "[%s]\n" (String.concat "," entries)
  end
  else begin
    List.iter
      (fun (d : diagnostic) ->
        Printf.printf "%s:%d:%d: [%s] %s\n" d.file d.line d.col d.rule d.msg)
      ds;
    if ds <> [] then
      Printf.printf "nscq-lint: %d violation(s) in %d file(s)\n"
        (List.length ds)
        (List.length
           (List.sort_uniq String.compare
              (List.map (fun (d : diagnostic) -> d.file) ds)))
  end;
  if ds <> [] then exit 1
