(* nscq-lint — project-rule checker built on compiler-libs.

   Parses every .ml under the given roots (no type-checking, so the
   rules are syntactic approximations, documented in DESIGN.md) and
   enforces:

     R1 polycmp    no polymorphic compare/hash on nested-set data
                   (lib/core, lib/nested, the lib/invfile/plist modules)
     R2 io         no console printing / blocking Unix calls in query
                   hot paths (lib/core, lib/invfile, lib/shard/router.ml,
                   lib/storage/bitpack)
     R3 guarded    no top-level mutable Hashtbl/ref in library modules
                   without [@@lint.guarded_by <mutex>]
     R4 bare_fail  no failwith / assert false in server reply paths
                   (lib/server, excluding the client side)
     R5 mli        every library module has an .mli

   Suppression: [@lint.allow <rule-name>] on an expression or binding,
   [@@@lint.allow <rule-name>] for the rest of a file. Exit 0 when
   clean, 1 with one "file:line:col: [R#] message" line per violation,
   2 on usage errors. *)

type rule = R1 | R2 | R3 | R4 | R5

let rule_id = function
  | R1 -> "R1"
  | R2 -> "R2"
  | R3 -> "R3"
  | R4 -> "R4"
  | R5 -> "R5"

(* the name used in [@lint.allow <name>] *)
let rule_key = function
  | R1 -> "polycmp"
  | R2 -> "io"
  | R3 -> "guarded"
  | R4 -> "bare_fail"
  | R5 -> "mli"

let all_rules = [ R1; R2; R3; R4; R5 ]

let rule_of_string s =
  match String.lowercase_ascii s with
  | "r1" | "polycmp" -> Some R1
  | "r2" | "io" -> Some R2
  | "r3" | "guarded" -> Some R3
  | "r4" | "bare_fail" -> Some R4
  | "r5" | "mli" -> Some R5
  | _ -> None

(* --- diagnostics --- *)

type diagnostic = {
  file : string;
  line : int;
  col : int;
  rule : string; (* "R1".."R5" or "parse" *)
  msg : string;
}

let diagnostics : diagnostic list ref = ref []

let report ~file ~line ~col ~rule msg =
  diagnostics := { file; line; col; rule; msg } :: !diagnostics

let report_loc (loc : Location.t) ~rule msg =
  let p = loc.loc_start in
  report ~file:p.pos_fname ~line:p.pos_lnum ~col:(p.pos_cnum - p.pos_bol)
    ~rule:(rule_id rule) msg

(* --- attribute helpers --- *)

let rec payload_idents (e : Parsetree.expression) =
  match e.pexp_desc with
  | Pexp_ident { txt = Longident.Lident s; _ } -> [ s ]
  | Pexp_construct ({ txt = Longident.Lident s; _ }, None) -> [ s ]
  | Pexp_constant (Pconst_string (s, _, _)) -> [ s ]
  | Pexp_apply (f, args) ->
    payload_idents f @ List.concat_map (fun (_, a) -> payload_idents a) args
  | Pexp_tuple es -> List.concat_map payload_idents es
  | _ -> []

let attr_rule_names name (attrs : Parsetree.attributes) =
  List.concat_map
    (fun (a : Parsetree.attribute) ->
      if String.equal a.attr_name.txt name then
        match a.attr_payload with
        | PStr [ { pstr_desc = Pstr_eval (e, _); _ } ] -> payload_idents e
        | _ -> []
      else [])
    attrs

let allow_names attrs = attr_rule_names "lint.allow" attrs

let has_guarded_by (attrs : Parsetree.attributes) =
  List.exists
    (fun (a : Parsetree.attribute) ->
      String.equal a.attr_name.txt "lint.guarded_by")
    attrs

(* --- per-file checking context --- *)

type ctx = {
  file : string;
  active : rule list; (* rules in force for this file *)
  suppressed : (string, int) Hashtbl.t; (* allow-name -> nesting depth *)
  defines_compare : bool; (* file defines its own [compare] *)
}

let rule_on ctx r =
  List.mem r ctx.active
  &&
  match Hashtbl.find_opt ctx.suppressed (rule_key r) with
  | Some n when n > 0 -> false
  | _ -> true

let push_allows ctx names =
  List.iter
    (fun n ->
      Hashtbl.replace ctx.suppressed n
        (1 + Option.value ~default:0 (Hashtbl.find_opt ctx.suppressed n)))
    names

let pop_allows ctx names =
  List.iter
    (fun n ->
      match Hashtbl.find_opt ctx.suppressed n with
      | Some d when d > 1 -> Hashtbl.replace ctx.suppressed n (d - 1)
      | _ -> Hashtbl.remove ctx.suppressed n)
    names

let with_allows ctx names f =
  push_allows ctx names;
  Fun.protect ~finally:(fun () -> pop_allows ctx names) f

(* --- longident classification --- *)

let rec flatten_lid = function
  | Longident.Lident s -> [ s ]
  | Longident.Ldot (l, s) -> flatten_lid l @ [ s ]
  | Longident.Lapply _ -> []

let strip_stdlib = function
  | ("Stdlib" | "Pervasives") :: rest -> rest
  | l -> l

let lid_path lid = strip_stdlib (flatten_lid lid)
let lid_str lid = String.concat "." (flatten_lid lid)

(* R1: polymorphic structural comparison or hashing. *)
let polycmp_hit ctx path =
  match path with
  | [ "compare" ] -> not ctx.defines_compare
  | [ "Hashtbl"; ("hash" | "seeded_hash" | "hash_param") ] -> true
  | [ "List"; ("mem" | "assoc" | "mem_assoc" | "remove_assoc") ] -> true
  | _ -> false

(* R2: console printing and blocking Unix calls. Formatter-directed
   Format.fprintf/pp_* and string-building Printf.sprintf stay legal. *)
let io_hit path =
  match path with
  | [ ( "print_string" | "print_endline" | "print_newline" | "print_char"
      | "print_int" | "print_float" | "print_bytes" | "prerr_string"
      | "prerr_endline" | "prerr_newline" | "prerr_char" | "prerr_int"
      | "prerr_float" | "prerr_bytes" | "output_string" | "output_bytes"
      | "output_char" | "output_value" | "read_line" | "read_int" ) ] ->
    true
  | [ "Printf"; ("printf" | "eprintf" | "fprintf") ] -> true
  | [ "Format"; ("printf" | "eprintf" | "print_string" | "print_newline") ]
    ->
    true
  | [ "Unix";
      ( "read" | "write" | "single_write" | "select" | "sleep" | "sleepf"
      | "openfile" | "system" | "fsync" | "waitpid" ) ] ->
    true
  | _ -> false

(* --- expression checks (R1, R2, R4) --- *)

let check_ident ctx (lid : Longident.t) (loc : Location.t) =
  let path = lid_path lid in
  if rule_on ctx R1 && polycmp_hit ctx path then
    report_loc loc ~rule:R1
      (Printf.sprintf
         "polymorphic %s on nested-set data; use a monomorphic \
          compare/equal/hash (Value.compare, String.equal, String.hash, \
          ...) or annotate [@lint.allow polycmp]"
         (lid_str lid));
  if rule_on ctx R2 && io_hit path then
    report_loc loc ~rule:R2
      (Printf.sprintf
         "%s in a query hot path; route diagnostics through Obs (metrics, \
          trace, slow log) or annotate [@lint.allow io]"
         (lid_str lid));
  if rule_on ctx R4 && path = [ "failwith" ] then
    report_loc loc ~rule:R4
      "failwith in a server reply path; the wire protocol has an error \
       frame — reply with Wire.Error / Dispatch.Refused or annotate \
       [@lint.allow bare_fail]"

let check_expr ctx (e : Parsetree.expression) =
  (match e.pexp_desc with
  | Pexp_ident { txt; loc } -> check_ident ctx txt loc
  | Pexp_apply (f, args) when rule_on ctx R1 ->
    (* (=) / (<>) used as a first-class equality: passed bare to a
       higher-order function, or partially applied to build a predicate
       ([List.exists (( = ) v)]). Infix two-argument tests stay legal —
       ints and strings compare that way all over the tree. *)
    (match (f.pexp_desc, args) with
    | Pexp_ident { txt = Longident.Lident (("=" | "<>") as op); loc }, [ _ ]
      ->
      report_loc loc ~rule:R1
        (Printf.sprintf
           "polymorphic (%s) partially applied as an equality predicate; \
            use Value.equal / String.equal / Int.equal or annotate \
            [@lint.allow polycmp]"
           op)
    | _ -> ());
    List.iter
      (fun ((_, arg) : Asttypes.arg_label * Parsetree.expression) ->
        match arg.pexp_desc with
        | Pexp_ident { txt = Longident.Lident (("=" | "<>") as op); loc } ->
          report_loc loc ~rule:R1
            (Printf.sprintf
               "polymorphic (%s) passed as an equality function; pass \
                Value.equal / String.equal / Int.equal or annotate \
                [@lint.allow polycmp]"
               op)
        | _ -> ())
      args
  | Pexp_assert { pexp_desc = Pexp_construct ({ txt = Lident "false"; _ }, None); _ }
    when rule_on ctx R4 ->
    report_loc e.pexp_loc ~rule:R4
      "assert false in a server reply path; reply with Wire.Error / \
       Dispatch.Refused or annotate [@lint.allow bare_fail]"
  | _ -> ())

let make_iterator ctx =
  let super = Ast_iterator.default_iterator in
  let expr self (e : Parsetree.expression) =
    with_allows ctx
      (allow_names e.pexp_attributes)
      (fun () ->
        check_expr ctx e;
        super.expr self e)
  in
  let value_binding self (vb : Parsetree.value_binding) =
    with_allows ctx
      (allow_names vb.pvb_attributes)
      (fun () -> super.value_binding self vb)
  in
  let structure_item self (item : Parsetree.structure_item) =
    match item.pstr_desc with
    | Pstr_attribute a ->
      (* [@@@lint.allow ...] holds for the rest of the file: push without
         a matching pop *)
      push_allows ctx (allow_names [ a ]);
      super.structure_item self item
    | _ -> super.structure_item self item
  in
  { super with expr; value_binding; structure_item }

(* --- R3: top-level mutable state --- *)

let rec peel_constraints (e : Parsetree.expression) =
  match e.pexp_desc with
  | Pexp_constraint (e, _) | Pexp_coerce (e, _, _) -> peel_constraints e
  | _ -> e

let mutable_kind (e : Parsetree.expression) =
  match (peel_constraints e).pexp_desc with
  | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, _) -> (
    match lid_path txt with
    | [ "Hashtbl"; "create" ] -> Some "Hashtbl"
    | [ "ref" ] -> Some "ref"
    | _ -> None)
  | _ -> None

let rec check_r3_structure ctx (str : Parsetree.structure) =
  List.iter
    (fun (item : Parsetree.structure_item) ->
      match item.pstr_desc with
      | Pstr_attribute a -> push_allows ctx (allow_names [ a ])
      | Pstr_value (_, vbs) ->
        List.iter
          (fun (vb : Parsetree.value_binding) ->
            if
              rule_on ctx R3
              && (not (has_guarded_by vb.pvb_attributes))
              && (not (has_guarded_by vb.pvb_expr.pexp_attributes))
              && not (List.mem (rule_key R3) (allow_names vb.pvb_attributes))
            then
              match mutable_kind vb.pvb_expr with
              | Some kind ->
                report_loc vb.pvb_loc ~rule:R3
                  (Printf.sprintf
                     "top-level mutable %s shared by every domain; guard \
                      it with a Lockdep mutex and annotate \
                      [@@lint.guarded_by <mutex>]"
                     kind)
              | None -> ())
          vbs
      | Pstr_module mb -> check_r3_module ctx mb.pmb_expr
      | Pstr_recmodule mbs ->
        List.iter (fun (mb : Parsetree.module_binding) ->
            check_r3_module ctx mb.pmb_expr)
          mbs
      | _ -> ())
    str

and check_r3_module ctx (me : Parsetree.module_expr) =
  match me.pmod_desc with
  | Pmod_structure s -> check_r3_structure ctx s
  | Pmod_functor (_, body) -> check_r3_module ctx body
  | Pmod_constraint (me, _) -> check_r3_module ctx me
  | _ -> ()

(* --- file scanning --- *)

let norm_path p =
  (* normalize ./foo and backslashes so scope matching is stable *)
  let p = String.concat "/" (String.split_on_char '\\' p) in
  if String.length p > 2 && String.sub p 0 2 = "./" then
    String.sub p 2 (String.length p - 2)
  else p

let in_dir dir file =
  (* [dir] like "lib/core/": true for any path containing it *)
  let dl = String.length dir and fl = String.length file in
  let rec go i =
    i + dl <= fl && (String.sub file i dl = dir || go (i + 1))
  in
  go 0

let default_rules_for file =
  let file = norm_path file in
  let r1 =
    in_dir "lib/core/" file || in_dir "lib/nested/" file
    (* the intersection kernels: a stray polymorphic compare on postings
       would silently bypass Posting.compare *)
    || in_dir "lib/invfile/plist" file
    (* the join engine sorts atoms and postings on hot paths *)
    || in_dir "lib/join/" file
    (* the live store merges per-segment id lists and binary-searches
       gid maps — a polymorphic compare there is a silent perf bug *)
    || in_dir "lib/live/" file
    (* the flight recorder's emit path runs inside every query; the
       explain builder sorts atom plans — keep both monomorphic *)
    || in_dir "lib/obs/recorder" file
    || in_dir "lib/obs/explain" file
  in
  let r2 =
    in_dir "lib/core/" file || in_dir "lib/invfile/" file
    || in_dir "lib/shard/router.ml" file
    || in_dir "lib/storage/bitpack" file
    || in_dir "lib/join/" file
    || in_dir "lib/live/" file
    (* recorder events are emitted on the query hot path: no console or
       blocking Unix calls there (dump-time writes are annotated) *)
    || in_dir "lib/obs/recorder" file
    || in_dir "lib/obs/explain" file
  in
  let r4 =
    in_dir "lib/server/" file && not (in_dir "lib/server/client." file)
  in
  let lib = in_dir "lib/" file in
  List.filter_map
    (fun (cond, r) -> if cond then Some r else None)
    [ (r1, R1); (r2, R2); (lib, R3); (r4, R4); (lib, R5) ]

let file_defines_compare (str : Parsetree.structure) =
  let found = ref false in
  let rec pat_binds_compare (p : Parsetree.pattern) =
    match p.ppat_desc with
    | Ppat_var { txt = "compare"; _ } -> true
    | Ppat_constraint (p, _) | Ppat_alias (p, _) -> pat_binds_compare p
    | Ppat_tuple ps -> List.exists pat_binds_compare ps
    | _ -> false
  in
  let rec scan (items : Parsetree.structure) =
    List.iter
      (fun (item : Parsetree.structure_item) ->
        match item.pstr_desc with
        | Pstr_value (_, vbs) ->
          if List.exists (fun (vb : Parsetree.value_binding) ->
                 pat_binds_compare vb.pvb_pat)
               vbs
          then found := true
        | Pstr_module { pmb_expr = { pmod_desc = Pmod_structure s; _ }; _ } ->
          scan s
        | _ -> ())
      items
  in
  scan str;
  !found

let parse_implementation file =
  try Ok (Pparse.parse_implementation ~tool_name:"nscq-lint" file)
  with exn ->
    let msg =
      match Location.error_of_exn exn with
      | Some (`Ok e) -> Format.asprintf "%a" Location.print_report e
      | _ -> Printexc.to_string exn
    in
    Error msg

let check_mli_presence active file str =
  if List.mem R5 active && Filename.check_suffix file ".ml" then
    let mli = file ^ "i" in
    if not (Sys.file_exists mli) then
      if not (List.mem (rule_key R5) (allow_names (List.concat_map
               (fun (item : Parsetree.structure_item) ->
                 match item.pstr_desc with
                 | Pstr_attribute a -> [ a ]
                 | _ -> [])
               str)))
      then
        report ~file ~line:1 ~col:0 ~rule:(rule_id R5)
          (Printf.sprintf
             "library module has no interface: %s is missing (add it, or \
              put [@@@lint.allow mli] at the top of the file)"
             (Filename.basename mli))

let check_file ~forced_rules file =
  let active =
    match forced_rules with
    | Some rs -> rs
    | None -> default_rules_for file
  in
  if active <> [] then
    match parse_implementation file with
    | Error msg ->
      report ~file ~line:1 ~col:0 ~rule:"parse" msg
    | Ok str ->
      let ctx =
        {
          file;
          active;
          suppressed = Hashtbl.create 8;
          defines_compare = file_defines_compare str;
        }
      in
      check_mli_presence active file str;
      let it = make_iterator ctx in
      it.structure it str;
      (* R3 walks only structure-level bindings, so it gets its own
         traversal with a fresh suppression scope *)
      let ctx3 = { ctx with suppressed = Hashtbl.create 8 } in
      check_r3_structure ctx3 str

(* --- directory walking & driver --- *)

let rec collect acc path =
  if Sys.is_directory path then
    Sys.readdir path |> Array.to_list |> List.sort String.compare
    |> List.fold_left
         (fun acc entry ->
           if
             String.length entry > 0
             && entry.[0] <> '.'
             && entry <> "_build"
           then collect acc (Filename.concat path entry)
           else acc)
         acc
  else if Filename.check_suffix path ".ml" then path :: acc
  else acc

let usage () =
  prerr_endline
    "usage: nscq-lint [--rule R1|R2|R3|R4|R5]... [--list-rules] path...";
  exit 2

let () =
  let forced = ref [] in
  let paths = ref [] in
  let rec parse_args = function
    | [] -> ()
    | "--rule" :: v :: rest -> (
      match rule_of_string v with
      | Some r ->
        forced := r :: !forced;
        parse_args rest
      | None ->
        Printf.eprintf "nscq-lint: unknown rule %S\n" v;
        usage ())
    | "--list-rules" :: rest ->
      List.iter
        (fun r -> Printf.printf "%s %s\n" (rule_id r) (rule_key r))
        all_rules;
      parse_args rest
    | ("--help" | "-h") :: _ -> usage ()
    | p :: rest ->
      paths := p :: !paths;
      parse_args rest
  in
  parse_args (List.tl (Array.to_list Sys.argv));
  if !paths = [] then usage ();
  let files =
    List.fold_left
      (fun acc p ->
        if not (Sys.file_exists p) then begin
          Printf.eprintf "nscq-lint: no such file or directory: %s\n" p;
          exit 2
        end;
        collect acc p)
      [] (List.rev !paths)
    |> List.sort_uniq String.compare
  in
  let forced_rules =
    match !forced with [] -> None | rs -> Some (List.rev rs)
  in
  List.iter (check_file ~forced_rules) files;
  let ds =
    List.sort
      (fun (a : diagnostic) (b : diagnostic) ->
        match String.compare a.file b.file with
        | 0 -> (
          match Int.compare a.line b.line with
          | 0 -> Int.compare a.col b.col
          | c -> c)
        | c -> c)
      !diagnostics
  in
  List.iter
    (fun (d : diagnostic) ->
      Printf.printf "%s:%d:%d: [%s] %s\n" d.file d.line d.col d.rule d.msg)
    ds;
  if ds <> [] then begin
    Printf.printf "nscq-lint: %d violation(s) in %d file(s)\n"
      (List.length ds)
      (List.length
         (List.sort_uniq String.compare
            (List.map (fun (d : diagnostic) -> d.file) ds)));
    exit 1
  end
