(* The differential EXPLAIN suite — the acceptance bar for the
   observability work: on plain, live, and sharded stores the profile's
   est-vs-actual phase counts must reconcile exactly with the phase
   deltas an independently traced run of the same query records, and
   the wire form must transport the whole plan tree losslessly. *)

module E = Containment.Engine
module IF = Invfile.Inverted_file
module V = Nested.Value
module X = Obs.Explain
module T = Obs.Trace
module L = Live.Live_store
module M = Shard.Manifest
module P = Shard.Partitioner
module R = Shard.Router

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* --- shared collection + query set (cf. test_shard) --- *)

let collection =
  let st = Random.State.make [| 11 |] in
  List.map Testutil.v Testutil.licences_strings
  @ List.init 36 (fun _ -> Testutil.gen_leafy_set ~max_depth:3 ~max_width:4 st)

let queries =
  List.map Testutil.v
    [ "{UK, {A, motorbike}}"; "{{UK, {A, motorbike}}}"; "{car}"; "{nothere}";
      "{Boston, USA}" ]

let with_plain f =
  Testutil.with_temp_path ".log" @@ fun path ->
  let b = Invfile.Builder.create (Storage.Log_store.create path) in
  List.iter (fun v -> ignore (Invfile.Builder.add_value b v)) collection;
  let inv = Invfile.Builder.finish b in
  Fun.protect ~finally:(fun () -> IF.close inv) (fun () -> f inv)

(* --- the independent side of the differential: what a trace span says
   the phase's measured count was --- *)

let attr name (s : T.span) = List.assoc_opt name s.T.attrs
let int_attr name s = Option.bind (attr name s) int_of_string_opt

let span_actual (s : T.span) =
  match s.T.name with
  | "prefilter" -> int_attr "survivors" s
  | "prefetch" -> int_attr "loaded" s
  | "retrieve" -> Some (List.length s.T.children)
  | "eval" -> int_attr "candidates" s
  | "verify" -> int_attr "kept" s
  | _ -> None

(* The profile's phase list must be exactly the trace's phase spans —
   same names, same order — and where the trace records a count, the
   profile's [actual] must equal it. *)
let reconcile label (profile : X.t) (spans : T.span list) =
  Alcotest.(check (list string))
    (label ^ ": same phases in the same order")
    (List.map (fun (s : T.span) -> s.T.name) spans)
    (List.map (fun (p : X.phase) -> p.X.phase) profile.X.phases);
  List.iter2
    (fun (p : X.phase) s ->
      match span_actual s with
      | Some actual ->
        check_int
          (Printf.sprintf "%s: %s actual = trace delta" label p.X.phase)
          actual p.X.actual
      | None -> ())
    profile.X.phases spans

(* --- plain stores --- *)

let plain_configs =
  [ ("default", E.default);
    ("verified", { E.default with E.verify = true });
    ("top-down", { E.default with E.algorithm = E.Top_down });
    ("streamed", { E.default with E.streamed = true }) ]

let test_plain_differential () =
  with_plain @@ fun inv ->
  List.iter
    (fun (cname, config) ->
      List.iter
        (fun q ->
          let profile = E.explain_profile ~config inv q in
          let trace = T.create "query" in
          let result = E.query ~config ~trace inv q in
          let root = T.finish trace in
          let label = Printf.sprintf "plain/%s %s" cname (V.to_string q) in
          reconcile label profile root.T.children;
          check_int (label ^ ": records = result count")
            (List.length result.E.records)
            profile.X.records)
        queries)
    plain_configs

(* batch profiles must agree positionally with individual runs *)
let test_plain_batch_positional () =
  with_plain @@ fun inv ->
  let profiles = E.explain_profile_batch inv queries in
  check_int "one profile per query" (List.length queries)
    (List.length profiles)
  ;
  List.iter2
    (fun q (p : X.t) ->
      check_int
        (Printf.sprintf "batch records for %s" (V.to_string q))
        (List.length (E.query inv q).E.records)
        p.X.records)
    queries profiles

(* --- live stores: one sub-plan per segment plus the memtable --- *)

let manual = { L.default with L.flush_records = 0; L.max_segments = 0 }

let test_live_differential () =
  let dir = Filename.temp_file "nscq_explain_live_" "" in
  Sys.remove dir;
  let rec rm path =
    if Sys.is_directory path then begin
      Array.iter (fun e -> rm (Filename.concat path e)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path
  in
  Fun.protect ~finally:(fun () -> if Sys.file_exists dir then rm dir)
  @@ fun () ->
  let store = L.create ~config:manual dir in
  Fun.protect ~finally:(fun () -> L.close store) @@ fun () ->
  (* two sealed segments plus a non-empty memtable *)
  let a, rest = (List.filteri (fun i _ -> i < 14) collection,
                 List.filteri (fun i _ -> i >= 14) collection) in
  let b, c = (List.filteri (fun i _ -> i < 14) rest,
              List.filteri (fun i _ -> i >= 14) rest) in
  List.iter (fun v -> ignore (L.insert store v)) a;
  ignore (L.flush store);
  List.iter (fun v -> ignore (L.insert store v)) b;
  ignore (L.flush store);
  List.iter (fun v -> ignore (L.insert store v)) c;
  check_int "two sealed segments" 2 (L.segment_count store);
  List.iter
    (fun q ->
      let label = Printf.sprintf "live %s" (V.to_string q) in
      let profile = L.explain store q in
      let trace = T.create "query" in
      let result = L.query ~trace store q in
      let root = T.finish trace in
      check_int (label ^ ": records = result count") (List.length result)
        profile.X.records;
      (* one sub per traced part (segments + memtable); the trace
         evaluates the memtable first while the plan lists sealed
         segments first, so pair the two by name *)
      Alcotest.(check (list string))
        (label ^ ": one sub-plan per traced part")
        (List.sort String.compare
           (List.map (fun (s : T.span) -> s.T.name) root.T.children))
        (List.sort String.compare
           (List.map (fun (s : X.t) -> s.X.target) profile.X.subs));
      (* each part's phases reconcile with its span's children *)
      List.iter
        (fun (sub : X.t) ->
          match
            List.find_opt
              (fun (s : T.span) -> s.T.name = sub.X.target)
              root.T.children
          with
          | Some span ->
            reconcile
              (Printf.sprintf "%s[%s]" label sub.X.target)
              sub span.T.children
          | None ->
            Alcotest.failf "%s: no trace span for %s" label sub.X.target)
        profile.X.subs;
      (* the parts partition the result *)
      check_int (label ^ ": sub records sum to the total")
        profile.X.records
        (List.fold_left (fun n (s : X.t) -> n + s.X.records) 0
           profile.X.subs))
    queries

(* --- sharded stores --- *)

let remove_stores (m : M.t) =
  Array.iter
    (fun (s : M.shard) ->
      match s.M.location with
      | M.Local { path; _ } -> ( try Sys.remove path with Sys_error _ -> ())
      | M.Remote _ -> ())
    m.M.shards

let test_shard_differential () =
  Testutil.with_temp_path ".manifest" @@ fun mpath ->
  let m = P.build ~policy:M.Hash ~shards:3 ~manifest_path:mpath collection in
  Fun.protect ~finally:(fun () -> remove_stores m) @@ fun () ->
  let r = R.open_manifest m in
  Fun.protect ~finally:(fun () -> R.close r) @@ fun () ->
  List.iter
    (fun q ->
      let label = Printf.sprintf "shard %s" (V.to_string q) in
      let profile = R.explain r q in
      let o = R.query r q in
      check_int (label ^ ": records = routed result count")
        (List.length o.R.records) profile.X.records;
      check_int (label ^ ": one sub per shard") 3
        (List.length profile.X.subs);
      check_int (label ^ ": sub records sum to the total") profile.X.records
        (List.fold_left (fun n (s : X.t) -> n + s.X.records) 0
           profile.X.subs);
      (* answered/pruned accounting matches the sub-plans *)
      let pruned_subs =
        List.length
          (List.filter
             (fun (s : X.t) -> List.mem_assoc "pruned" s.X.config)
             profile.X.subs)
      in
      let kv k = List.assoc_opt k profile.X.config in
      Alcotest.(check (option string))
        (label ^ ": pruned count")
        (Some (string_of_int pruned_subs))
        (kv "pruned");
      Alcotest.(check (option string))
        (label ^ ": answered count")
        (Some (string_of_int (3 - pruned_subs)))
        (kv "answered");
      (* an answered shard's verify phase kept exactly its records *)
      List.iter
        (fun (s : X.t) ->
          match
            List.find_opt (fun (p : X.phase) -> p.X.phase = "verify")
              s.X.phases
          with
          | Some p ->
            check_int
              (Printf.sprintf "%s[%s]: verify kept = records" label
                 s.X.target)
              s.X.records p.X.actual
          | None -> ())
        profile.X.subs)
    queries

(* --- the wire form --- *)

(* µs-exact durations survive the wire's microsecond granularity, so
   the round-trip is full structural equality *)
let synthetic =
  X.make ~target:"router" ~query:"{a, {b=c}, \"t\tab\"}"
    ~config:[ ("shards", "2"); ("odd key", "v%al=ue\twith\ntabs") ]
    ~records:7
    ~subs:
      [
        X.make ~target:"shard:0" ~query:"{a}"
          ~atoms:
            [
              { X.atom = "a b"; list_len = 3; bytes = 17; codec = "blocked";
                blocks = 2 };
              { X.atom = "="; list_len = 0; bytes = 0; codec = "-"; blocks = 0 };
            ]
          ~phases:
            [
              { X.phase = "eval"; est = 3; actual = 2; ms = 1.25;
                notes = [ ("algorithm", "bottom-up") ] };
              { X.phase = "verify"; est = 2; actual = 2; ms = 0.5; notes = [] };
            ]
          ~records:2 ();
        X.make ~target:"shard:1" ~query:"{a}"
          ~config:[ ("pruned", "atom-relevance") ]
          ~records:0
          ~subs:[ X.make ~target:"segment:x" ~query:"{a}" ~records:0 () ] ();
      ]
    ()

let test_wire_round_trip () =
  (match X.of_wire (X.to_wire synthetic) with
  | Some t -> check_bool "nested tree survives byte-identically" true
                (t = synthetic)
  | None -> Alcotest.fail "wire form did not parse back");
  (* a real profile round-trips too, modulo the wire's µs duration
     granularity — normalize ms exactly as the wire does *)
  with_plain @@ fun inv ->
  let profile = E.explain_profile inv (List.hd queries) in
  let rec normalize (t : X.t) =
    {
      t with
      X.phases =
        List.map
          (fun (p : X.phase) ->
            { p with
              X.ms = float_of_string (Printf.sprintf "%.0f" (p.X.ms *. 1e3))
                     /. 1e3 })
          t.X.phases;
      subs = List.map normalize t.X.subs;
    }
  in
  match X.of_wire (X.to_wire profile) with
  | Some t ->
    check_bool "engine profile survives" true (t = normalize profile)
  | None -> Alcotest.fail "engine profile did not parse back"

let test_wire_rejects_malformed () =
  List.iter
    (fun payload ->
      match X.of_wire payload with
      | None -> ()
      | Some _ -> Alcotest.failf "payload %S should be rejected" payload)
    [
      "";
      "garbage";
      "explain 1\n";  (* no root node *)
      "explain 1\nQ\t0\tfoo\t0\tbar\n";  (* unknown line tag *)
      "explain 1\nN\t2\tstore\t0\t{a}\n";  (* root at depth 2 *)
      "explain 1\nN\t0\tstore\t0\t{a}\nN\t2\tleaf\t0\t{a}\n";  (* depth jump *)
      "explain 1\nN\t0\tstore\tmany\t{a}\n";  (* non-numeric records *)
      "explain 1\nN\t0\tstore\t0\t{a}\nP\t0\teval\tx\t2\t10\t\n";
      (* two roots *)
      "explain 1\nN\t0\ta\t0\t{a}\nN\t0\tb\t0\t{a}\n";
    ];
  (* rendering never fails on what of_wire accepts *)
  match X.of_wire (X.to_wire synthetic) with
  | Some t ->
    check_bool "render nonempty" true (String.length (X.render t) > 0);
    check_bool "json nonempty" true (String.length (X.to_json t) > 0)
  | None -> Alcotest.fail "round-trip lost"

let () =
  Alcotest.run "explain"
    [
      ( "differential",
        [
          Alcotest.test_case "plain store" `Quick test_plain_differential;
          Alcotest.test_case "batch positional" `Quick
            test_plain_batch_positional;
          Alcotest.test_case "live store" `Quick test_live_differential;
          Alcotest.test_case "sharded store" `Quick test_shard_differential;
        ] );
      ( "wire",
        [
          Alcotest.test_case "round-trip" `Quick test_wire_round_trip;
          Alcotest.test_case "rejects malformed" `Quick
            test_wire_rejects_malformed;
        ] );
    ]
