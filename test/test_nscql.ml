(* Tests for the NSCQL query language: parsing, execution, and rendering. *)

module Q = Containment.Nscql
module E = Containment.Engine
module S = Containment.Semantics

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let inv () = Testutil.mem_collection Testutil.licences_strings

let records stmt_str =
  match Q.run (inv ()) stmt_str with
  | Ok (Q.Records { ids; _ }) -> ids
  | Ok _ -> Alcotest.failf "expected records for %S" stmt_str
  | Error m -> Alcotest.failf "%S failed: %s" stmt_str m

let count stmt_str =
  match Q.run (inv ()) stmt_str with
  | Ok (Q.Count n) -> n
  | Ok _ -> Alcotest.failf "expected a count for %S" stmt_str
  | Error m -> Alcotest.failf "%S failed: %s" stmt_str m

(* --- parsing --- *)

let test_parse_basic () =
  match Q.parse "FIND CONTAINS {USA, {UK}}" with
  | Q.Query { verb = Q.Find; predicate = Q.Contains _; embedding = S.Hom;
              algorithm = E.Bottom_up; anywhere = false; verified = false;
              wildcards = false; minimized = false; limit = None } -> ()
  | _ -> Alcotest.fail "unexpected parse"

let test_parse_clauses () =
  match Q.parse "count contains {a} under homeo via top-down anywhere verified limit 5" with
  | Q.Query { verb = Q.Count; embedding = S.Homeo; algorithm = E.Top_down;
              anywhere = true; verified = true; limit = Some 5; _ } -> ()
  | _ -> Alcotest.fail "clauses not parsed"

let test_parse_predicates () =
  (match Q.parse "FIND EQUALS {a, b}" with
  | Q.Query { predicate = Q.Equals _; _ } -> ()
  | _ -> Alcotest.fail "equals");
  (match Q.parse "FIND WITHIN {a, b}" with
  | Q.Query { predicate = Q.Within _; _ } -> ()
  | _ -> Alcotest.fail "within");
  (match Q.parse "FIND OVERLAPS {a, b} BY 2" with
  | Q.Query { predicate = Q.Overlaps (_, 2); _ } -> ()
  | _ -> Alcotest.fail "overlaps");
  (match Q.parse "FIND SIMILAR TO {a, b} AT 0.5" with
  | Q.Query { predicate = Q.Similar (_, r); _ } when r = 0.5 -> ()
  | _ -> Alcotest.fail "similar");
  match Q.parse "EXPLAIN CONTAINS {a}" with
  | Q.Query { verb = Q.Explain; _ } -> ()
  | _ -> Alcotest.fail "explain"

let test_parse_statements () =
  (match Q.parse "INSERT {a, {b}}" with
  | Q.Insert _ -> ()
  | _ -> Alcotest.fail "insert");
  (match Q.parse "DELETE 3" with
  | Q.Delete 3 -> ()
  | _ -> Alcotest.fail "delete");
  match Q.parse "STATS" with Q.Stats -> () | _ -> Alcotest.fail "stats"

let test_parse_quoted_atoms_and_comments () =
  (match Q.parse "FIND CONTAINS {\"hello world\", \"{\"} -- trailing comment" with
  | Q.Query { predicate = Q.Contains v; _ } ->
    check_bool "quoted atom kept" true
      (Nested.Value.mem (Nested.Value.atom "hello world") v)
  | _ -> Alcotest.fail "quoted");
  match Q.parse "STATS -- everything after is ignored" with
  | Q.Stats -> ()
  | _ -> Alcotest.fail "comment"

let test_parse_errors () =
  let fails s =
    match Q.parse s with
    | exception Q.Parse_error _ -> ()
    | _ -> Alcotest.failf "%S should not parse" s
  in
  List.iter fails
    [
      "";
      "FROB {a}";
      "FIND {a}";
      "FIND CONTAINS";
      "FIND CONTAINS {a} UNDER sideways";
      "FIND CONTAINS {a} VIA bogosort";
      "FIND OVERLAPS {a} BY 0";
      "FIND SIMILAR TO {a} AT 2.0";
      "FIND CONTAINS {a} LIMIT -1";
      "FIND CONTAINS {unclosed";
      "DELETE many";
      "INSERT atom_not_set";
      "FIND CONTAINS {a} {b}";
    ]

(* --- execution --- *)

let test_execute_queries () =
  Alcotest.(check (list int)) "find" [ 0; 1; 3 ]
    (records "FIND CONTAINS {{UK, {A, motorbike}}}");
  check_int "count" 3 (count "COUNT CONTAINS {{UK, {A, motorbike}}}");
  check_int "negative" 0 (count "COUNT CONTAINS {Mars}");
  Alcotest.(check (list int)) "equals" [ 1 ]
    (records
       "FIND EQUALS {Boston, USA, {USA, VA, {A, B, car}}, {UK, {A, motorbike}}} VERIFIED");
  check_int "overlaps: Tim, Paris, Austin" 3 (count "COUNT OVERLAPS {Boston, USA, Paris} BY 1");
  check_int "homeo" 1 (count "COUNT CONTAINS {{C}} UNDER homeo")

let test_execute_matches_engine () =
  let inv = inv () in
  let direct = (E.query inv (Testutil.v "{USA}")).E.records in
  match Q.run inv "FIND CONTAINS {USA}" with
  | Ok (Q.Records { ids; _ }) -> Alcotest.(check (list int)) "same" direct ids
  | _ -> Alcotest.fail "run failed"

let test_execute_insert_delete () =
  let inv = inv () in
  (match Q.run inv "INSERT {Utrecht, NL}" with
  | Ok (Q.Inserted 4) -> ()
  | _ -> Alcotest.fail "insert");
  (match Q.run inv "FIND CONTAINS {Utrecht}" with
  | Ok (Q.Records { ids = [ 4 ]; _ }) -> ()
  | _ -> Alcotest.fail "inserted record not found");
  (match Q.run inv "DELETE 4" with
  | Ok (Q.Deleted true) -> ()
  | _ -> Alcotest.fail "delete");
  match Q.run inv "COUNT CONTAINS {Utrecht}" with
  | Ok (Q.Count 0) -> ()
  | _ -> Alcotest.fail "deleted record still found"

let test_wildcards_clause () =
  (match Q.parse "FIND CONTAINS {Lon*} WILDCARDS" with
  | Q.Query { wildcards = true; _ } -> ()
  | _ -> Alcotest.fail "wildcards clause");
  match Q.run (inv ()) "FIND CONTAINS {Lon*} WILDCARDS" with
  | Ok (Q.Records { ids = [ 0 ]; _ }) -> () (* London matches *)
  | Ok (Q.Records { ids; _ }) ->
    Alcotest.failf "expected [0], got [%s]"
      (String.concat ";" (List.map string_of_int ids))
  | _ -> Alcotest.fail "wildcard run"

let test_execute_witness_and_explain () =
  let inv = inv () in
  (match Q.run inv "WITNESS CONTAINS {USA, {UK, {A, motorbike}}}" with
  | Ok (Q.Witnesses ((root, w) :: _)) ->
    check_int "root" 5 root;
    check_int "mapping size" 3 (List.length w)
  | _ -> Alcotest.fail "witness");
  match Q.run inv "EXPLAIN CONTAINS {USA, {UK, {A, motorbike}}}" with
  | Ok (Q.Profile p) ->
    check_int "profile atoms" 4 (List.length p.Obs.Explain.atoms);
    check_bool "profile has phases" true (p.Obs.Explain.phases <> []);
    check_bool "profile renders" true
      (String.length (Obs.Explain.render p) > 0)
  | _ -> Alcotest.fail "explain"

let test_run_reports_errors () =
  let inv = inv () in
  (match Q.run inv "FIND CONTAINS {a} VIA bogosort" with
  | Error m -> check_bool "mentions parse" true (String.length m > 0)
  | Ok _ -> Alcotest.fail "should fail");
  match Q.run inv "FIND WITHIN {a} UNDER iso" with
  | Error m ->
    check_bool "unsupported surfaced" true
      (String.length m >= 11 && String.sub m 0 11 = "unsupported")
  | Ok _ -> Alcotest.fail "superset × iso should be unsupported"

let test_pp_outcome_smoke () =
  let inv = inv () in
  List.iter
    (fun stmt ->
      match Q.run inv stmt with
      | Ok o ->
        let s = Format.asprintf "%a" (Q.pp_outcome ~collection:inv) o in
        check_bool ("rendering of " ^ stmt) true (String.length s > 0)
      | Error m -> Alcotest.failf "%S failed: %s" stmt m)
    [
      "FIND CONTAINS {USA} LIMIT 1";
      "COUNT CONTAINS {USA}";
      "EXPLAIN CONTAINS {USA}";
      "WITNESS CONTAINS {USA}";
      "STATS";
    ]

let prop_nscql_contains_equals_engine =
  Testutil.qcheck_case ~count:100 ~name:"NSCQL FIND CONTAINS = Engine.query"
    (QCheck.pair (Testutil.arbitrary_collection ()) Testutil.arbitrary_leafy_value)
    (fun (values, q) ->
      let values = List.filter Nested.Value.is_set values in
      QCheck.assume (values <> []);
      let inv = Containment.Collection.of_values values in
      let stmt = "FIND CONTAINS " ^ Nested.Syntax.to_string q in
      match Q.run inv stmt with
      | Ok (Q.Records { ids; _ }) -> ids = (E.query inv q).E.records
      | _ -> false)

let () =
  Alcotest.run "nscql"
    [
      ( "parse",
        [
          Alcotest.test_case "basic" `Quick test_parse_basic;
          Alcotest.test_case "clauses" `Quick test_parse_clauses;
          Alcotest.test_case "predicates" `Quick test_parse_predicates;
          Alcotest.test_case "statements" `Quick test_parse_statements;
          Alcotest.test_case "quoted atoms + comments" `Quick
            test_parse_quoted_atoms_and_comments;
          Alcotest.test_case "errors" `Quick test_parse_errors;
        ] );
      ( "execute",
        [
          Alcotest.test_case "queries" `Quick test_execute_queries;
          Alcotest.test_case "matches engine" `Quick test_execute_matches_engine;
          Alcotest.test_case "insert/delete" `Quick test_execute_insert_delete;
          Alcotest.test_case "wildcards" `Quick test_wildcards_clause;
          Alcotest.test_case "witness/explain" `Quick test_execute_witness_and_explain;
          Alcotest.test_case "errors surfaced" `Quick test_run_reports_errors;
          Alcotest.test_case "rendering" `Quick test_pp_outcome_smoke;
          prop_nscql_contains_equals_engine;
        ] );
    ]
