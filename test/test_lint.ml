(* End-to-end tests of nscq-lint: for each rule, a violating fixture
   (asserting exit code and file:line positions), a clean fixture, and
   an allowlisted one. Fixtures are written to a fresh temp directory
   and checked with `--rule RX`, which bypasses the path-based scoping;
   the scoping itself is tested last with a fake lib/ tree. *)

(* Resolve the built linter whether we run under `dune runtest` (cwd =
   _build/default/test) or `dune exec` from the project root. *)
let lint_exe =
  let candidates =
    (match Sys.getenv_opt "NSCQ_LINT_BIN" with Some p -> [ p ] | None -> [])
    @ [
        "../tools/lint/nscq_lint.exe";
        "_build/default/tools/lint/nscq_lint.exe";
        "tools/lint/nscq_lint.exe";
      ]
  in
  match List.find_opt Sys.file_exists candidates with
  | Some p -> p
  | None -> "../tools/lint/nscq_lint.exe"

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let contains_s haystack needle =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

(* Runs the linter, returns (exit code, combined output). *)
let run_lint args =
  let out_file = Filename.temp_file "nscq_lint" ".out" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove out_file with Sys_error _ -> ())
    (fun () ->
      let cmd =
        Printf.sprintf "%s %s > %s 2>&1" (Filename.quote lint_exe)
          (String.concat " " (List.map Filename.quote args))
          (Filename.quote out_file)
      in
      let code = Sys.command cmd in
      let ic = open_in_bin out_file in
      let contents = really_input_string ic (in_channel_length ic) in
      close_in ic;
      (code, contents))

(* Fresh directory under the system temp dir; caller's files are
   removed afterwards. *)
let with_fixture_dir f =
  let dir = Filename.temp_file "nscq_lintfix" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o700;
  let rec rm path =
    if Sys.is_directory path then begin
      Array.iter (fun e -> rm (Filename.concat path e)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path
  in
  Fun.protect ~finally:(fun () -> try rm dir with Sys_error _ -> ()) (fun () -> f dir)

let write_file dir name contents =
  let path = Filename.concat dir name in
  let rec ensure_parent d =
    if not (Sys.file_exists d) then begin
      ensure_parent (Filename.dirname d);
      Sys.mkdir d 0o700
    end
  in
  ensure_parent (Filename.dirname path);
  let oc = open_out path in
  output_string oc contents;
  close_out oc;
  path

(* Asserts the run found exactly the expected diagnostics: one
   "<file>:<line>:" position with the rule tag per entry. *)
let expect_violations ~rule path lines out =
  List.iter
    (fun line ->
      let pos = Printf.sprintf "%s:%d:" (Filename.basename path) line in
      check_bool
        (Printf.sprintf "diagnostic at %s with [%s]" pos rule)
        true
        (contains_s out pos && contains_s out ("[" ^ rule ^ "]")))
    lines

let expect_clean ~what (code, out) =
  if code <> 0 then Alcotest.failf "%s: expected exit 0, got %d:\n%s" what code out

let expect_dirty ~what (code, out) =
  if code <> 1 then Alcotest.failf "%s: expected exit 1, got %d:\n%s" what code out;
  check_bool (what ^ ": summary line present") true
    (contains_s out "violation(s)")

(* --- R1: polymorphic comparison --- *)

let test_r1 () =
  with_fixture_dir (fun dir ->
      let viol =
        write_file dir "viol_r1.ml"
          "let f a b = compare a b\n\
           let g v values = List.mem v values\n\
           let h x = Hashtbl.hash x\n\
           let i v w = List.exists (( = ) v) w\n"
      in
      let code, out = run_lint [ "--rule"; "R1"; viol ] in
      expect_dirty ~what:"R1 violating" (code, out);
      expect_violations ~rule:"R1" viol [ 1; 2; 3; 4 ] out;
      let clean =
        write_file dir "clean_r1.ml"
          "let f a b = String.compare a b\n\
           let g v values = List.exists (String.equal v) values\n\
           let h x = String.hash x\n\
           let eq a b = a = b\n"
      in
      expect_clean ~what:"R1 clean" (run_lint [ "--rule"; "R1"; clean ]);
      let allowed =
        write_file dir "allow_r1.ml"
          "let ok a b = (compare a b) [@lint.allow polycmp]\n"
      in
      expect_clean ~what:"R1 allowlisted" (run_lint [ "--rule"; "R1"; allowed ]))

(* a file that defines its own compare may call it bare *)
let test_r1_shadowed_compare () =
  with_fixture_dir (fun dir ->
      let f =
        write_file dir "own_compare.ml"
          "let compare a b = String.compare a b\n\
           let sort l = List.sort compare l\n"
      in
      expect_clean ~what:"R1 shadowed compare" (run_lint [ "--rule"; "R1"; f ]))

(* --- R2: printing / blocking I/O in hot paths --- *)

let test_r2 () =
  with_fixture_dir (fun dir ->
      let viol =
        write_file dir "viol_r2.ml"
          "let f x = Printf.printf \"%d\\n\" x\n\
           let g () = print_endline \"hi\"\n\
           let h fd buf = Unix.read fd buf 0 1\n"
      in
      let code, out = run_lint [ "--rule"; "R2"; viol ] in
      expect_dirty ~what:"R2 violating" (code, out);
      expect_violations ~rule:"R2" viol [ 1; 2; 3 ] out;
      let clean =
        write_file dir "clean_r2.ml"
          "let f x = Printf.sprintf \"%d\" x\n\
           let pp ppf x = Format.fprintf ppf \"%d\" x\n"
      in
      expect_clean ~what:"R2 clean" (run_lint [ "--rule"; "R2"; clean ]);
      let allowed =
        write_file dir "allow_r2.ml"
          "[@@@lint.allow io]\n\
           let f x = Printf.printf \"%d\\n\" x\n"
      in
      expect_clean ~what:"R2 allowlisted" (run_lint [ "--rule"; "R2"; allowed ]))

(* --- R3: unguarded top-level mutable state --- *)

let test_r3 () =
  with_fixture_dir (fun dir ->
      let viol =
        write_file dir "viol_r3.ml"
          "let table = Hashtbl.create 16\n\
           let counter = ref 0\n"
      in
      let code, out = run_lint [ "--rule"; "R3"; viol ] in
      expect_dirty ~what:"R3 violating" (code, out);
      expect_violations ~rule:"R3" viol [ 1; 2 ] out;
      let clean =
        write_file dir "clean_r3.ml"
          "let limit = 16\n\
           let make () = Hashtbl.create 16\n\
           let scoped () = let c = ref 0 in incr c; !c\n"
      in
      expect_clean ~what:"R3 clean" (run_lint [ "--rule"; "R3"; clean ]);
      let guarded =
        write_file dir "guarded_r3.ml"
          "let table = Hashtbl.create 16 [@@lint.guarded_by state_mu]\n\
           let counter = ref 0 [@@lint.guarded_by state_mu]\n"
      in
      expect_clean ~what:"R3 guarded" (run_lint [ "--rule"; "R3"; guarded ]))

(* bindings nested in sub-modules are still top-level state *)
let test_r3_submodule () =
  with_fixture_dir (fun dir ->
      let f =
        write_file dir "sub_r3.ml"
          "module Cache = struct\n\
          \  let table = Hashtbl.create 16\n\
           end\n"
      in
      let code, out = run_lint [ "--rule"; "R3"; f ] in
      expect_dirty ~what:"R3 submodule" (code, out);
      expect_violations ~rule:"R3" f [ 2 ] out)

(* --- R4: bare failure in reply paths --- *)

let test_r4 () =
  with_fixture_dir (fun dir ->
      let viol =
        write_file dir "viol_r4.ml"
          "let f () = failwith \"boom\"\n\
           let g () = assert false\n"
      in
      let code, out = run_lint [ "--rule"; "R4"; viol ] in
      expect_dirty ~what:"R4 violating" (code, out);
      expect_violations ~rule:"R4" viol [ 1; 2 ] out;
      let clean =
        write_file dir "clean_r4.ml"
          "exception Bad_request of string\n\
           let f () = raise (Bad_request \"boom\")\n\
           let g x = assert (x > 0)\n"
      in
      expect_clean ~what:"R4 clean" (run_lint [ "--rule"; "R4"; clean ]);
      let allowed =
        write_file dir "allow_r4.ml"
          "let f () = (failwith \"boom\") [@lint.allow bare_fail]\n"
      in
      expect_clean ~what:"R4 allowlisted" (run_lint [ "--rule"; "R4"; allowed ]))

(* --- R5: every library module has an .mli --- *)

let test_r5 () =
  with_fixture_dir (fun dir ->
      let lone = write_file dir "lone.ml" "let x = 1\n" in
      let code, out = run_lint [ "--rule"; "R5"; lone ] in
      expect_dirty ~what:"R5 missing mli" (code, out);
      check_bool "R5 names the missing interface" true
        (contains_s out "[R5]" && contains_s out "lone.mli");
      let paired = write_file dir "paired.ml" "let x = 1\n" in
      let _mli = write_file dir "paired.mli" "val x : int\n" in
      expect_clean ~what:"R5 with mli" (run_lint [ "--rule"; "R5"; paired ]);
      let allowed =
        write_file dir "allow_r5.ml" "[@@@lint.allow mli]\nlet x = 1\n"
      in
      expect_clean ~what:"R5 allowlisted" (run_lint [ "--rule"; "R5"; allowed ]))

(* --- default path-based scoping (no --rule) --- *)

let test_default_scoping () =
  with_fixture_dir (fun dir ->
      (* same polymorphic-compare body in three places: lib/core (R1
         applies), lib/textformats (R1 does not), and bin (no lib rules
         at all) — each with an .mli / outside lib so R5 stays quiet *)
      let body = "let f a b = compare a b\n" in
      let core = write_file dir "lib/core/fixture_scope.ml" body in
      let _ = write_file dir "lib/core/fixture_scope.mli" "val f : 'a -> 'a -> int\n" in
      let other = write_file dir "lib/textformats/fixture_scope.ml" body in
      let _ =
        write_file dir "lib/textformats/fixture_scope.mli" "val f : 'a -> 'a -> int\n"
      in
      let bin = write_file dir "bin/fixture_scope.ml" body in
      let code, out = run_lint [ Filename.concat dir "lib"; Filename.concat dir "bin" ] in
      if code <> 1 then
        Alcotest.failf "scoping: expected exit 1, got %d:\n%s" code out;
      check_bool "lib/core file flagged" true (contains_s out core);
      check_bool "lib/textformats file not flagged" false (contains_s out other);
      check_bool "bin file not flagged" false (contains_s out bin))

(* --- driver behaviour --- *)

let test_usage_errors () =
  let code, _ = run_lint [] in
  check_int "no paths is a usage error" 2 code;
  let code, _ = run_lint [ "--rule"; "R9"; "lib" ] in
  check_int "unknown rule is a usage error" 2 code;
  let code, _ = run_lint [ "/nonexistent/nscq/path" ] in
  check_int "missing path is a usage error" 2 code

let test_parse_error_reported () =
  with_fixture_dir (fun dir ->
      let bad = write_file dir "bad.ml" "let = in (\n" in
      let code, out = run_lint [ "--rule"; "R1"; bad ] in
      check_int "parse failure exits 1" 1 code;
      check_bool "parse diagnostic present" true (contains_s out "[parse]"))

let () =
  Alcotest.run "lint"
    [
      ( "rules",
        [
          Alcotest.test_case "R1 polycmp" `Quick test_r1;
          Alcotest.test_case "R1 shadowed compare" `Quick
            test_r1_shadowed_compare;
          Alcotest.test_case "R2 io" `Quick test_r2;
          Alcotest.test_case "R3 guarded" `Quick test_r3;
          Alcotest.test_case "R3 submodule" `Quick test_r3_submodule;
          Alcotest.test_case "R4 bare_fail" `Quick test_r4;
          Alcotest.test_case "R5 mli" `Quick test_r5;
        ] );
      ( "driver",
        [
          Alcotest.test_case "default scoping" `Quick test_default_scoping;
          Alcotest.test_case "usage errors" `Quick test_usage_errors;
          Alcotest.test_case "parse error" `Quick test_parse_error_reported;
        ] );
    ]
