(* End-to-end tests of nscq-lint: for each rule, a violating fixture
   (asserting exit code and file:line positions), a clean fixture, and
   an allowlisted one. Fixtures are written to a fresh temp directory
   and checked with `--rule RX`, which bypasses the path-based scoping;
   the scoping itself is tested last with a fake lib/ tree. *)

(* Resolve the built linter whether we run under `dune runtest` (cwd =
   _build/default/test) or `dune exec` from the project root. *)
let lint_exe =
  let candidates =
    (match Sys.getenv_opt "NSCQ_LINT_BIN" with Some p -> [ p ] | None -> [])
    @ [
        "../tools/lint/nscq_lint.exe";
        "_build/default/tools/lint/nscq_lint.exe";
        "tools/lint/nscq_lint.exe";
      ]
  in
  match List.find_opt Sys.file_exists candidates with
  | Some p -> p
  | None -> "../tools/lint/nscq_lint.exe"

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let contains_s haystack needle =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

(* Runs the linter, returns (exit code, combined output). *)
let run_lint args =
  let out_file = Filename.temp_file "nscq_lint" ".out" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove out_file with Sys_error _ -> ())
    (fun () ->
      let cmd =
        Printf.sprintf "%s %s > %s 2>&1" (Filename.quote lint_exe)
          (String.concat " " (List.map Filename.quote args))
          (Filename.quote out_file)
      in
      let code = Sys.command cmd in
      let ic = open_in_bin out_file in
      let contents = really_input_string ic (in_channel_length ic) in
      close_in ic;
      (code, contents))

(* Fresh directory under the system temp dir; caller's files are
   removed afterwards. *)
let with_fixture_dir f =
  let dir = Filename.temp_file "nscq_lintfix" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o700;
  let rec rm path =
    if Sys.is_directory path then begin
      Array.iter (fun e -> rm (Filename.concat path e)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path
  in
  Fun.protect ~finally:(fun () -> try rm dir with Sys_error _ -> ()) (fun () -> f dir)

let write_file dir name contents =
  let path = Filename.concat dir name in
  let rec ensure_parent d =
    if not (Sys.file_exists d) then begin
      ensure_parent (Filename.dirname d);
      Sys.mkdir d 0o700
    end
  in
  ensure_parent (Filename.dirname path);
  let oc = open_out path in
  output_string oc contents;
  close_out oc;
  path

(* Asserts the run found exactly the expected diagnostics: one
   "<file>:<line>:" position with the rule tag per entry. *)
let expect_violations ~rule path lines out =
  List.iter
    (fun line ->
      let pos = Printf.sprintf "%s:%d:" (Filename.basename path) line in
      check_bool
        (Printf.sprintf "diagnostic at %s with [%s]" pos rule)
        true
        (contains_s out pos && contains_s out ("[" ^ rule ^ "]")))
    lines

let expect_clean ~what (code, out) =
  if code <> 0 then Alcotest.failf "%s: expected exit 0, got %d:\n%s" what code out

let expect_dirty ~what (code, out) =
  if code <> 1 then Alcotest.failf "%s: expected exit 1, got %d:\n%s" what code out;
  check_bool (what ^ ": summary line present") true
    (contains_s out "violation(s)")

(* --- R1: polymorphic comparison --- *)

let test_r1 () =
  with_fixture_dir (fun dir ->
      let viol =
        write_file dir "viol_r1.ml"
          "let f a b = compare a b\n\
           let g v values = List.mem v values\n\
           let h x = Hashtbl.hash x\n\
           let i v w = List.exists (( = ) v) w\n"
      in
      let code, out = run_lint [ "--rule"; "R1"; viol ] in
      expect_dirty ~what:"R1 violating" (code, out);
      expect_violations ~rule:"R1" viol [ 1; 2; 3; 4 ] out;
      let clean =
        write_file dir "clean_r1.ml"
          "let f a b = String.compare a b\n\
           let g v values = List.exists (String.equal v) values\n\
           let h x = String.hash x\n\
           let eq a b = a = b\n"
      in
      expect_clean ~what:"R1 clean" (run_lint [ "--rule"; "R1"; clean ]);
      let allowed =
        write_file dir "allow_r1.ml"
          "let ok a b = (compare a b) [@lint.allow polycmp]\n"
      in
      expect_clean ~what:"R1 allowlisted" (run_lint [ "--rule"; "R1"; allowed ]))

(* a file that defines its own compare may call it bare *)
let test_r1_shadowed_compare () =
  with_fixture_dir (fun dir ->
      let f =
        write_file dir "own_compare.ml"
          "let compare a b = String.compare a b\n\
           let sort l = List.sort compare l\n"
      in
      expect_clean ~what:"R1 shadowed compare" (run_lint [ "--rule"; "R1"; f ]))

(* --- R2: printing / blocking I/O in hot paths --- *)

let test_r2 () =
  with_fixture_dir (fun dir ->
      let viol =
        write_file dir "viol_r2.ml"
          "let f x = Printf.printf \"%d\\n\" x\n\
           let g () = print_endline \"hi\"\n\
           let h fd buf = Unix.read fd buf 0 1\n"
      in
      let code, out = run_lint [ "--rule"; "R2"; viol ] in
      expect_dirty ~what:"R2 violating" (code, out);
      expect_violations ~rule:"R2" viol [ 1; 2; 3 ] out;
      let clean =
        write_file dir "clean_r2.ml"
          "let f x = Printf.sprintf \"%d\" x\n\
           let pp ppf x = Format.fprintf ppf \"%d\" x\n"
      in
      expect_clean ~what:"R2 clean" (run_lint [ "--rule"; "R2"; clean ]);
      let allowed =
        write_file dir "allow_r2.ml"
          "[@@@lint.allow io]\n\
           let f x = Printf.printf \"%d\\n\" x\n"
      in
      expect_clean ~what:"R2 allowlisted" (run_lint [ "--rule"; "R2"; allowed ]))

(* --- R3: unguarded top-level mutable state --- *)

let test_r3 () =
  with_fixture_dir (fun dir ->
      let viol =
        write_file dir "viol_r3.ml"
          "let table = Hashtbl.create 16\n\
           let counter = ref 0\n"
      in
      let code, out = run_lint [ "--rule"; "R3"; viol ] in
      expect_dirty ~what:"R3 violating" (code, out);
      expect_violations ~rule:"R3" viol [ 1; 2 ] out;
      let clean =
        write_file dir "clean_r3.ml"
          "let limit = 16\n\
           let make () = Hashtbl.create 16\n\
           let scoped () = let c = ref 0 in incr c; !c\n"
      in
      expect_clean ~what:"R3 clean" (run_lint [ "--rule"; "R3"; clean ]);
      let guarded =
        write_file dir "guarded_r3.ml"
          "let table = Hashtbl.create 16 [@@lint.guarded_by state_mu]\n\
           let counter = ref 0 [@@lint.guarded_by state_mu]\n"
      in
      expect_clean ~what:"R3 guarded" (run_lint [ "--rule"; "R3"; guarded ]))

(* bindings nested in sub-modules are still top-level state *)
let test_r3_submodule () =
  with_fixture_dir (fun dir ->
      let f =
        write_file dir "sub_r3.ml"
          "module Cache = struct\n\
          \  let table = Hashtbl.create 16\n\
           end\n"
      in
      let code, out = run_lint [ "--rule"; "R3"; f ] in
      expect_dirty ~what:"R3 submodule" (code, out);
      expect_violations ~rule:"R3" f [ 2 ] out)

(* --- R4: bare failure in reply paths --- *)

let test_r4 () =
  with_fixture_dir (fun dir ->
      let viol =
        write_file dir "viol_r4.ml"
          "let f () = failwith \"boom\"\n\
           let g () = assert false\n"
      in
      let code, out = run_lint [ "--rule"; "R4"; viol ] in
      expect_dirty ~what:"R4 violating" (code, out);
      expect_violations ~rule:"R4" viol [ 1; 2 ] out;
      let clean =
        write_file dir "clean_r4.ml"
          "exception Bad_request of string\n\
           let f () = raise (Bad_request \"boom\")\n\
           let g x = assert (x > 0)\n"
      in
      expect_clean ~what:"R4 clean" (run_lint [ "--rule"; "R4"; clean ]);
      let allowed =
        write_file dir "allow_r4.ml"
          "let f () = (failwith \"boom\") [@lint.allow bare_fail]\n"
      in
      expect_clean ~what:"R4 allowlisted" (run_lint [ "--rule"; "R4"; allowed ]))

(* --- R5: every library module has an .mli --- *)

let test_r5 () =
  with_fixture_dir (fun dir ->
      let lone = write_file dir "lone.ml" "let x = 1\n" in
      let code, out = run_lint [ "--rule"; "R5"; lone ] in
      expect_dirty ~what:"R5 missing mli" (code, out);
      check_bool "R5 names the missing interface" true
        (contains_s out "[R5]" && contains_s out "lone.mli");
      let paired = write_file dir "paired.ml" "let x = 1\n" in
      let _mli = write_file dir "paired.mli" "val x : int\n" in
      expect_clean ~what:"R5 with mli" (run_lint [ "--rule"; "R5"; paired ]);
      let allowed =
        write_file dir "allow_r5.ml" "[@@@lint.allow mli]\nlet x = 1\n"
      in
      expect_clean ~what:"R5 allowlisted" (run_lint [ "--rule"; "R5"; allowed ]))

(* --- R6: checked guarded_by contracts (lockset analysis) --- *)

(* prelude shared by the R6 fixtures: two distinct locks *)
let r6_prelude =
  "let mu_a = Mutex.create ()\n\
   let mu_b = Mutex.create ()\n\
   let table = Hashtbl.create 8 [@@lint.guarded_by mu_a]\n"

let test_r6_wrong_lock () =
  with_fixture_dir (fun dir ->
      let f =
        write_file dir "wrong_lock.ml"
          (r6_prelude
          ^ "let f k = Mutex.protect mu_b (fun () -> Hashtbl.find_opt table k)\n")
      in
      let code, out = run_lint [ "--rule"; "R6"; f ] in
      expect_dirty ~what:"R6 wrong lock" (code, out);
      expect_violations ~rule:"R6" f [ 4 ] out;
      check_bool "message names the declared lock" true
        (contains_s out "guarded by \"mu_a\""))

let test_r6_no_lock () =
  with_fixture_dir (fun dir ->
      let f =
        write_file dir "no_lock.ml"
          (r6_prelude ^ "let f k = Hashtbl.find_opt table k\n")
      in
      let code, out = run_lint [ "--rule"; "R6"; f ] in
      expect_dirty ~what:"R6 no lock" (code, out);
      expect_violations ~rule:"R6" f [ 4 ] out)

let test_r6_correct_lock () =
  with_fixture_dir (fun dir ->
      let f =
        write_file dir "correct_lock.ml"
          (r6_prelude
          ^ "let f k = Mutex.protect mu_a (fun () -> Hashtbl.find_opt table k)\n\
             let g k v =\n\
            \  Mutex.lock mu_a;\n\
            \  Hashtbl.replace table k v;\n\
            \  Mutex.unlock mu_a\n\
             let seeded = Hashtbl.length table\n")
      in
      (* protect, lock/unlock sequence, and module-init (which runs
         before any domain exists) are all in-contract *)
      expect_clean ~what:"R6 correct lock" (run_lint [ "--rule"; "R6"; f ]))

let test_r6_atomic_exempt () =
  with_fixture_dir (fun dir ->
      let f =
        write_file dir "atomic_ok.ml"
          "let hits = Atomic.make 0\n\
           let bump () = Atomic.incr hits\n\
           let read () = Atomic.get hits\n"
      in
      expect_clean ~what:"R6 atomic exempt" (run_lint [ "--rule"; "R6"; f ]))

let test_r6_requires_lock () =
  with_fixture_dir (fun dir ->
      let f =
        write_file dir "contract.ml"
          (r6_prelude
          ^ "let helper k = Hashtbl.find_opt table k [@@lint.requires_lock mu_a]\n\
             let good k = Mutex.protect mu_a (fun () -> helper k)\n\
             let bad k = helper k\n")
      in
      let code, out = run_lint [ "--rule"; "R6"; f ] in
      expect_dirty ~what:"R6 requires_lock" (code, out);
      (* the helper body is in-contract; the bare call site is not *)
      expect_violations ~rule:"R6" f [ 6 ] out;
      check_bool "call-site message names the contract" true
        (contains_s out "requires holding mu_a"))

let test_r6_lock_wrapper_inference () =
  with_fixture_dir (fun dir ->
      let f =
        write_file dir "wrapper.ml"
          (r6_prelude
          ^ "let with_a f = Mutex.protect mu_a f\n\
             let f k = with_a (fun () -> Hashtbl.find_opt table k)\n")
      in
      expect_clean ~what:"R6 wrapper inference"
        (run_lint [ "--rule"; "R6"; f ]))

let test_r6_submodule () =
  with_fixture_dir (fun dir ->
      let f =
        write_file dir "sub.ml"
          ("module Cache = struct\n" ^ r6_prelude
          ^ "  let bad k = Hashtbl.find_opt table k\n\
             end\n")
      in
      let code, out = run_lint [ "--rule"; "R6"; f ] in
      expect_dirty ~what:"R6 submodule" (code, out);
      expect_violations ~rule:"R6" f [ 5 ] out)

let test_r6_cross_module () =
  with_fixture_dir (fun dir ->
      let _store =
        write_file dir "store_r6.ml"
          "let mu = Mutex.create ()\n\
           let table = Hashtbl.create 8 [@@lint.guarded_by mu]\n"
      in
      let user =
        write_file dir "user_r6.ml"
          "let bad k = Hashtbl.find_opt Store_r6.table k\n"
      in
      let code, out =
        run_lint
          [ "--rule"; "R6"; Filename.concat dir "store_r6.ml"; user ]
      in
      expect_dirty ~what:"R6 cross-module" (code, out);
      expect_violations ~rule:"R6" user [ 1 ] out)

let test_r6_spawn_escape () =
  with_fixture_dir (fun dir ->
      let f =
        write_file dir "escape.ml"
          "[@@@lint.allow guarded]\n\
           let shared = Hashtbl.create 8\n\
           let run () = Domain.spawn (fun () -> Hashtbl.length shared)\n\
           let local_ok () = let t = Hashtbl.create 8 in Hashtbl.length t\n"
      in
      let code, out = run_lint [ "--rule"; "R6"; f ] in
      expect_dirty ~what:"R6 spawn escape" (code, out);
      expect_violations ~rule:"R6" f [ 3 ] out;
      check_bool "escape message mentions the domain closure" true
        (contains_s out "domain closure"))

let test_r6_allowlisted () =
  with_fixture_dir (fun dir ->
      let f =
        write_file dir "allowed.ml"
          (r6_prelude
          ^ "let f k = (Hashtbl.find_opt table k) [@lint.allow lockset]\n")
      in
      expect_clean ~what:"R6 allowlisted" (run_lint [ "--rule"; "R6"; f ]))

let test_r6_unknown_guard () =
  with_fixture_dir (fun dir ->
      let f =
        write_file dir "badguard.ml"
          "let table = Hashtbl.create 8 [@@lint.guarded_by no_such_lock]\n"
      in
      let code, out = run_lint [ "--rule"; "R6"; f ] in
      expect_dirty ~what:"R6 unknown guard" (code, out);
      check_bool "unknown-lock message" true
        (contains_s out "names no lock"))

(* --- default path-based scoping (no --rule) --- *)

let test_default_scoping () =
  with_fixture_dir (fun dir ->
      (* same polymorphic-compare body in three places: lib/core and bin
         (R1 applies to both), and lib/textformats (R1 does not) — each
         with an .mli / a file-level mli allow so R5 stays quiet. Every
         fixture directory gets a dune file: the walk only picks up
         dune-tracked sources. *)
      let body = "let f a b = compare a b\n" in
      let core = write_file dir "lib/core/fixture_scope.ml" body in
      let _ = write_file dir "lib/core/fixture_scope.mli" "val f : 'a -> 'a -> int\n" in
      let _ = write_file dir "lib/core/dune" "(library (name fixcore))\n" in
      let other = write_file dir "lib/textformats/fixture_scope.ml" body in
      let _ =
        write_file dir "lib/textformats/fixture_scope.mli" "val f : 'a -> 'a -> int\n"
      in
      let _ = write_file dir "lib/textformats/dune" "(library (name fixtf))\n" in
      let bin =
        write_file dir "bin/fixture_scope.ml" ("[@@@lint.allow mli]\n" ^ body)
      in
      let _ = write_file dir "bin/dune" "(executable (name fixture_scope))\n" in
      let code, out = run_lint [ Filename.concat dir "lib"; Filename.concat dir "bin" ] in
      if code <> 1 then
        Alcotest.failf "scoping: expected exit 1, got %d:\n%s" code out;
      check_bool "lib/core file flagged" true (contains_s out core);
      check_bool "lib/textformats file not flagged" false (contains_s out other);
      check_bool "bin file flagged" true (contains_s out bin))

(* the directory walk skips .ml files dune does not track: no sibling
   dune file, or a dotted (generated) name *)
let test_dune_tracked_discovery () =
  with_fixture_dir (fun dir ->
      let _untracked =
        write_file dir "lib/core/scratch.ml" "this does not parse((\n"
      in
      let code, out = run_lint [ Filename.concat dir "lib" ] in
      expect_clean ~what:"untracked scratch file skipped" (code, out);
      let _dune = write_file dir "lib/core/dune" "(library (name fixcore))\n" in
      let _gen =
        write_file dir "lib/core/scratch.pp.ml" "also not parseable((\n"
      in
      let code, out = run_lint [ Filename.concat dir "lib" ] in
      check_int "tracked file now linted (parse error)" 1 code;
      check_bool "parse diagnostic for tracked file" true
        (contains_s out "[parse]");
      check_bool "generated .pp.ml still skipped" false
        (contains_s out "scratch.pp.ml"))

(* --- machine-readable output --- *)

let test_json_output () =
  with_fixture_dir (fun dir ->
      let viol = write_file dir "viol_json.ml" "let f a b = compare a b\n" in
      let code, out = run_lint [ "--json"; "--rule"; "R1"; viol ] in
      check_int "json run exits 1" 1 code;
      check_bool "json array with rule field" true
        (contains_s out "\"rule\":\"R1\"");
      check_bool "json has file field" true
        (contains_s out "\"file\":");
      check_bool "json has line field" true (contains_s out "\"line\":1");
      check_bool "no human summary in json mode" false
        (contains_s out "violation(s)");
      let clean = write_file dir "clean_json.ml" "let x = 1\n" in
      let code, out = run_lint [ "--json"; "--rule"; "R1"; clean ] in
      check_int "clean json run exits 0" 0 code;
      check_bool "empty json array" true (contains_s out "[]"))

(* --- driver behaviour --- *)

let test_usage_errors () =
  let code, _ = run_lint [] in
  check_int "no paths is a usage error" 2 code;
  let code, _ = run_lint [ "--rule"; "R9"; "lib" ] in
  check_int "unknown rule is a usage error" 2 code;
  let code, _ = run_lint [ "/nonexistent/nscq/path" ] in
  check_int "missing path is a usage error" 2 code

let test_parse_error_reported () =
  with_fixture_dir (fun dir ->
      let bad = write_file dir "bad.ml" "let = in (\n" in
      let code, out = run_lint [ "--rule"; "R1"; bad ] in
      check_int "parse failure exits 1" 1 code;
      check_bool "parse diagnostic present" true (contains_s out "[parse]"))

let () =
  Alcotest.run "lint"
    [
      ( "rules",
        [
          Alcotest.test_case "R1 polycmp" `Quick test_r1;
          Alcotest.test_case "R1 shadowed compare" `Quick
            test_r1_shadowed_compare;
          Alcotest.test_case "R2 io" `Quick test_r2;
          Alcotest.test_case "R3 guarded" `Quick test_r3;
          Alcotest.test_case "R3 submodule" `Quick test_r3_submodule;
          Alcotest.test_case "R4 bare_fail" `Quick test_r4;
          Alcotest.test_case "R5 mli" `Quick test_r5;
        ] );
      ( "lockset",
        [
          Alcotest.test_case "R6 wrong lock" `Quick test_r6_wrong_lock;
          Alcotest.test_case "R6 no lock" `Quick test_r6_no_lock;
          Alcotest.test_case "R6 correct lock" `Quick test_r6_correct_lock;
          Alcotest.test_case "R6 atomic exempt" `Quick test_r6_atomic_exempt;
          Alcotest.test_case "R6 requires_lock" `Quick test_r6_requires_lock;
          Alcotest.test_case "R6 wrapper inference" `Quick
            test_r6_lock_wrapper_inference;
          Alcotest.test_case "R6 submodule" `Quick test_r6_submodule;
          Alcotest.test_case "R6 cross module" `Quick test_r6_cross_module;
          Alcotest.test_case "R6 spawn escape" `Quick test_r6_spawn_escape;
          Alcotest.test_case "R6 allowlisted" `Quick test_r6_allowlisted;
          Alcotest.test_case "R6 unknown guard" `Quick test_r6_unknown_guard;
        ] );
      ( "driver",
        [
          Alcotest.test_case "default scoping" `Quick test_default_scoping;
          Alcotest.test_case "dune-tracked discovery" `Quick
            test_dune_tracked_discovery;
          Alcotest.test_case "json output" `Quick test_json_output;
          Alcotest.test_case "usage errors" `Quick test_usage_errors;
          Alcotest.test_case "parse error" `Quick test_parse_error_reported;
        ] );
    ]
