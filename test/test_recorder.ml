(* The flight recorder in isolation: enable/disable gating, ring
   overwrite with dropped-event accounting, the name table, dump
   write/read round-trips (including corrupt-file rejection), the
   Lockdep contention hook, and the per-domain merge. The recorder's
   behaviour under server load is exercised by test_server.ml. *)

module R = Obs.Recorder

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let contains ~sub s =
  let n = String.length sub in
  let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

(* The ring size is fixed per ring at creation; configure before any
   emit so the main domain's ring is small enough to overflow in a
   test. Every test resets and re-enables, so order does not matter. *)
let () = R.configure ~slots:16

let fresh () =
  R.disable ();
  R.reset ();
  R.enable ()

(* --- gating --- *)

let test_disabled_records_nothing () =
  R.disable ();
  R.reset ();
  R.emit ~a16:3 R.Batch;
  R.wal_fsync ~dur_us:100;
  check_int "begin_query is 0 when disabled" 0 (R.begin_query ());
  R.end_query 0 ~results:5;
  check_int "no events recorded" 0 (List.length (R.events ()));
  let total, dropped = R.stats () in
  check_int "no events counted" 0 total;
  check_int "nothing dropped" 0 dropped

let test_enable_disable_toggle () =
  fresh ();
  R.batch ~size:1;
  R.disable ();
  R.batch ~size:2;
  R.enable ();
  R.batch ~size:3;
  let sizes =
    List.filter_map
      (fun (e : R.event) ->
        match e.R.kind with R.Batch -> Some e.R.a16 | _ -> None)
      (R.events ())
  in
  Alcotest.(check (list int)) "only enabled-window events" [ 1; 3 ] sizes

(* --- ring overwrite --- *)

let test_ring_overwrite_keeps_newest () =
  fresh ();
  for i = 0 to 39 do
    R.emit ~a16:i R.Batch
  done;
  let total, dropped = R.stats () in
  check_int "every emit counted" 40 total;
  check_int "overflow beyond 16 slots dropped" 24 dropped;
  let sizes =
    List.filter_map
      (fun (e : R.event) ->
        match e.R.kind with R.Batch -> Some e.R.a16 | _ -> None)
      (R.events ())
  in
  check_int "ring holds one ring's worth" 16 (List.length sizes);
  Alcotest.(check (list int))
    "the survivors are the newest 16, in order"
    (List.init 16 (fun i -> 24 + i))
    sizes

(* --- query / phase events --- *)

let test_query_phase_pairing () =
  fresh ();
  let qid = R.begin_query () in
  check_bool "fresh query id" true (qid <> 0);
  let code = R.intern "eval" in
  R.phase_begin code ~qid;
  R.phase_end code ~qid;
  R.end_query qid ~results:3;
  let evs = R.events () in
  Alcotest.(check (list string))
    "event sequence"
    [ "query.begin"; "phase.begin"; "phase.end"; "query.end" ]
    (List.map (fun (e : R.event) -> R.kind_name e.R.kind) evs);
  List.iter
    (fun (e : R.event) -> check_int "all carry the query id" qid e.R.a32)
    evs;
  (match List.rev evs with
  | last :: _ -> check_int "result count on query.end" 3 last.R.a16
  | [] -> Alcotest.fail "no events");
  (* the text rendering names the phase and annotates ends with a
     duration; the JSON rendering names the kind *)
  let names = [ (code, "eval") ] in
  let text = R.render ~names evs in
  check_bool "phase named in text" true
    (contains ~sub:"eval" text);
  check_bool "end annotated with elapsed time" true
    (contains ~sub:"ms)" text);
  check_bool "json kinds" true
    (contains ~sub:"\"kind\":\"query.begin\""
       (R.render_json ~names evs))

(* --- the name table --- *)

let test_intern_stable () =
  let c = R.intern "test.recorder.alpha" in
  check_bool "non-zero code" true (c > 0 && c < 256);
  check_int "interning twice is stable" c (R.intern "test.recorder.alpha");
  (match R.name_of c with
  | Some "test.recorder.alpha" -> ()
  | Some other -> Alcotest.failf "wrong name %S" other
  | None -> Alcotest.fail "name not found");
  match R.name_of 0 with
  | None -> ()
  | Some n -> Alcotest.failf "code 0 should be unknown, got %S" n

(* --- dumps --- *)

let test_dump_round_trip () =
  fresh ();
  let qid = R.begin_query () in
  let code = R.intern "test.recorder.phase" in
  R.phase_begin code ~qid;
  R.phase_end code ~qid;
  R.wal_fsync ~dur_us:123;
  R.end_query qid ~results:7;
  let live = R.events () in
  Testutil.with_temp_path ".bin" (fun path ->
      let n = R.write_dump path in
      check_int "write_dump reports the event count" (List.length live) n;
      let names, evs = R.read_dump path in
      check_bool "interned name in the table" true
        (List.exists (fun (_, s) -> s = "test.recorder.phase") names);
      check_int "event count survives" (List.length live) (List.length evs);
      List.iter2
        (fun (a : R.event) (b : R.event) ->
          check_bool "event survives byte-identically" true (a = b))
        live evs)

let test_dump_rejects_garbage () =
  Testutil.with_temp_path ".bin" (fun path ->
      let oc = open_out_bin path in
      output_string oc "definitely not a flight dump";
      close_out oc;
      (match R.read_dump path with
      | exception R.Corrupt _ -> ()
      | _ -> Alcotest.fail "garbage accepted");
      (* right magic, truncated body *)
      let oc = open_out_bin path in
      output_string oc "NSCQFR1\n\x05\x00";
      close_out oc;
      match R.read_dump path with
      | exception R.Corrupt _ -> ()
      | _ -> Alcotest.fail "truncated dump accepted")

(* --- Lockdep contention hook --- *)

let test_lock_wait_hook () =
  fresh ();
  let mu = Lockdep.create "test.recorder.lock" in
  let held = Atomic.make false in
  let t =
    Thread.create
      (fun () ->
        Lockdep.lock mu;
        Atomic.set held true;
        Thread.delay 0.02;
        Lockdep.unlock mu)
      ()
  in
  while not (Atomic.get held) do
    Thread.yield ()
  done;
  (* contended acquire: try_lock fails, so the hook fires on release *)
  Lockdep.lock mu;
  Lockdep.unlock mu;
  Thread.join t;
  let waits =
    List.filter
      (fun (e : R.event) ->
        match e.R.kind with R.Lock_wait -> true | _ -> false)
      (R.events ())
  in
  check_bool "a lock-wait event was recorded" true (waits <> []);
  List.iter
    (fun (e : R.event) ->
      (match R.name_of e.R.a8 with
      | Some "test.recorder.lock" -> ()
      | Some other -> Alcotest.failf "wrong lock class %S" other
      | None -> Alcotest.fail "lock class not interned");
      check_bool "waited a positive time" true (e.R.a32 > 0))
    waits

(* --- per-domain merge --- *)

let test_per_domain_merge () =
  fresh ();
  R.batch ~size:1;
  let d =
    Domain.spawn (fun () ->
        R.batch ~size:2;
        (Domain.self () :> int))
  in
  let other = Domain.join d in
  R.batch ~size:3;
  let evs = R.events () in
  let domains =
    List.sort_uniq Int.compare
      (List.map (fun (e : R.event) -> e.R.domain) evs)
  in
  check_int "two domains contributed" 2 (List.length domains);
  check_bool "the spawned domain's ring is merged" true
    (List.mem other domains);
  (* merged timeline is time-sorted *)
  let rec sorted = function
    | (a : R.event) :: (b :: _ as rest) ->
      Int64.compare a.R.time_us b.R.time_us <= 0 && sorted rest
    | _ -> true
  in
  check_bool "timeline sorted by timestamp" true (sorted evs)

let () =
  Alcotest.run "recorder"
    [
      ( "gating",
        [
          Alcotest.test_case "disabled records nothing" `Quick
            test_disabled_records_nothing;
          Alcotest.test_case "toggle" `Quick test_enable_disable_toggle;
        ] );
      ( "ring",
        [
          Alcotest.test_case "overwrite keeps newest" `Quick
            test_ring_overwrite_keeps_newest;
          Alcotest.test_case "per-domain merge" `Quick test_per_domain_merge;
        ] );
      ( "events",
        [
          Alcotest.test_case "query/phase pairing" `Quick
            test_query_phase_pairing;
          Alcotest.test_case "intern stable" `Quick test_intern_stable;
          Alcotest.test_case "lock-wait hook" `Quick test_lock_wait_hook;
        ] );
      ( "dump",
        [
          Alcotest.test_case "round-trip" `Quick test_dump_round_trip;
          Alcotest.test_case "rejects garbage" `Quick test_dump_rejects_garbage;
        ] );
    ]
