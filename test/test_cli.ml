(* End-to-end tests of the nscq command-line tool: the full pipeline
   generate → build → stats → query → sql → workload, as a user would run
   it, against each storage backend. *)

(* Resolve the built binary whether we run under `dune runtest` (cwd =
   _build/default/test) or `dune exec` from the project root. *)
let nscq =
  let candidates =
    (match Sys.getenv_opt "NSCQ_BIN" with Some p -> [ p ] | None -> [])
    @ [ "../bin/nscq.exe"; "_build/default/bin/nscq.exe"; "bin/nscq.exe" ]
  in
  match List.find_opt Sys.file_exists candidates with
  | Some p -> p
  | None -> "../bin/nscq.exe"

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* Runs the binary, returns (exit code, stdout). *)
let run_cli args =
  let out_file = Filename.temp_file "nscq_cli" ".out" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove out_file with Sys_error _ -> ())
    (fun () ->
      let cmd =
        Printf.sprintf "%s %s > %s 2>&1" (Filename.quote nscq)
          (String.concat " " (List.map Filename.quote args))
          (Filename.quote out_file)
      in
      let code = Sys.command cmd in
      let ic = open_in_bin out_file in
      let contents = really_input_string ic (in_channel_length ic) in
      close_in ic;
      (code, contents))

let expect_ok args =
  let code, out = run_cli args in
  if code <> 0 then
    Alcotest.failf "nscq %s exited %d:\n%s" (String.concat " " args) code out;
  out

let contains_s haystack needle =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

let with_store backend f () =
  Testutil.with_temp_path ".ns" (fun data ->
      Testutil.with_temp_path ".store" (fun store ->
          let oc = open_out data in
          List.iter (fun s -> output_string oc (s ^ "\n")) Testutil.licences_strings;
          close_out oc;
          let _ =
            expect_ok [ "build"; "-i"; data; "-o"; store; "--backend"; backend ]
          in
          f ~store ~backend))

let test_build_reports backend =
  with_store backend (fun ~store:_ ~backend:_ -> ())

let test_stats backend =
  with_store backend (fun ~store ~backend ->
      let out = expect_ok [ "stats"; "-s"; store; "--backend"; backend ] in
      check_bool "records reported" true (contains_s out "records        4");
      let out = expect_ok [ "stats"; "-s"; store; "--backend"; backend; "--detailed" ] in
      check_bool "detailed histograms" true (contains_s out "nodes per depth"))

let test_query backend =
  with_store backend (fun ~store ~backend ->
      let out =
        expect_ok
          [ "query"; "-s"; store; "--backend"; backend; "--cache"; "10";
            "{{UK, {A, motorbike}}}" ]
      in
      check_bool "three matches" true (contains_s out "3 matching record(s)");
      let out =
        expect_ok
          [ "query"; "-s"; store; "--backend"; backend; "--join"; "superset";
            (List.hd Testutil.licences_strings) ]
      in
      check_bool "superset matches itself" true (contains_s out "1 matching record(s)");
      let out =
        expect_ok
          [ "query"; "-s"; store; "--backend"; backend; "--embedding"; "homeo";
            "--explain"; "{{C}}" ]
      in
      check_bool "explain plan shown" true (contains_s out "candidates="))

let test_sql backend =
  with_store backend (fun ~store ~backend ->
      let out =
        expect_ok
          [ "sql"; "-s"; store; "--backend"; backend;
            "COUNT CONTAINS {{UK, {A, motorbike}}}" ]
      in
      check_bool "count is 3" true (contains_s out "3");
      let out =
        expect_ok
          [ "sql"; "-s"; store; "--backend"; backend; "WITNESS CONTAINS {Boston}" ]
      in
      check_bool "witness rendered" true (contains_s out "match at node");
      (* parse errors exit non-zero *)
      let code, _ = run_cli [ "sql"; "-s"; store; "--backend"; backend; "FROB {a}" ] in
      check_int "bad statement fails" 1 code)

let test_workload backend =
  with_store backend (fun ~store ~backend ->
      let out =
        expect_ok
          [ "workload"; "-s"; store; "--backend"; backend; "-n"; "4"; "--cache"; "5" ]
      in
      check_bool "stats line" true (contains_s out "4 queries in"))

let test_generate_roundtrip () =
  Testutil.with_temp_path ".ns" (fun data ->
      Testutil.with_temp_path ".store" (fun store ->
          let _ =
            expect_ok
              [ "generate"; "--kind"; "wide-zipf"; "-n"; "50"; "--seed"; "3"; "-o"; data ]
          in
          let out = expect_ok [ "build"; "-i"; data; "-o"; store ] in
          check_bool "indexed 50" true (contains_s out "indexed 50 records")))

let test_generate_json_xml () =
  Testutil.with_temp_path ".jsonl" (fun data ->
      Testutil.with_temp_path ".store" (fun store ->
          let _ = expect_ok [ "generate"; "--kind"; "twitter"; "-n"; "30"; "-o"; data ] in
          let out = expect_ok [ "build"; "-i"; data; "--format"; "json"; "-o"; store ] in
          check_bool "json indexed" true (contains_s out "indexed 30 records")));
  Testutil.with_temp_path ".xml" (fun data ->
      Testutil.with_temp_path ".store" (fun store ->
          let _ = expect_ok [ "generate"; "--kind"; "dblp"; "-n"; "30"; "-o"; data ] in
          let out =
            expect_ok
              [ "build"; "-i"; data; "--format"; "xml"; "--tokenize"; "-o"; store ]
          in
          check_bool "xml indexed" true (contains_s out "indexed 30 records")))

let test_admin_commands () =
  (* check / export / merge / compact over the log backend *)
  Testutil.with_temp_path ".ns" (fun data ->
      Testutil.with_temp_path ".store" (fun store ->
          Testutil.with_temp_path ".store2" (fun store2 ->
              Testutil.with_temp_path ".export" (fun export ->
                  let oc = open_out data in
                  List.iter (fun s -> output_string oc (s ^ "\n")) Testutil.licences_strings;
                  close_out oc;
                  ignore (expect_ok [ "build"; "-i"; data; "-o"; store; "--backend"; "log" ]);
                  ignore (expect_ok [ "build"; "-i"; data; "-o"; store2; "--backend"; "log" ]);
                  let out = expect_ok [ "check"; "-s"; store; "--backend"; "log" ] in
                  check_bool "consistent" true (contains_s out "consistent");
                  let out =
                    expect_ok
                      [ "merge"; "-s"; store; "--backend"; "log"; "--from"; store2;
                        "--from-backend"; "log" ]
                  in
                  check_bool "merged to 8" true (contains_s out "-> 8");
                  let out = expect_ok [ "check"; "-s"; store; "--backend"; "log" ] in
                  check_bool "still consistent" true (contains_s out "consistent");
                  ignore (expect_ok [ "export"; "-s"; store; "--backend"; "log"; "-o"; export ]);
                  let ic = open_in export in
                  let lines = ref 0 in
                  (try
                     while true do
                       ignore (input_line ic);
                       incr lines
                     done
                   with End_of_file -> close_in ic);
                  check_int "exported 8 records" 8 !lines;
                  let out = expect_ok [ "compact"; "-s"; store; "--backend"; "log" ] in
                  check_bool "compacted" true (contains_s out "compacted")))))

let test_malformed_endpoints_fail () =
  (* malformed HOST:PORT and unresolvable hosts: a one-line diagnostic
     and exit 1, never a backtrace *)
  List.iter
    (fun args ->
      let code, out = run_cli args in
      check_int (String.concat " " args) 1 code;
      check_bool "one-line diagnostic" true (contains_s out "nscq:");
      check_bool "no backtrace" false (contains_s out "Fatal error"))
    [
      [ "query"; "--connect"; "nohostport"; "{a}" ];
      [ "query"; "--connect"; "127.0.0.1:notaport"; "{a}" ];
      [ "query"; "--connect"; "127.0.0.1:99999"; "{a}" ];
      [ "stats"; "--connect"; ":" ];
      [ "serve"; "--host"; "definitely.not.a.real.host.invalid" ];
    ]

let test_shard_cli () =
  Testutil.with_temp_path ".ns" @@ fun data ->
  Testutil.with_temp_path ".manifest" @@ fun manifest ->
  Testutil.with_temp_path ".manifest" @@ fun resharded ->
  let oc = open_out data in
  List.iter (fun s -> output_string oc (s ^ "\n")) Testutil.licences_strings;
  close_out oc;
  let rm_shards () =
    List.iter
      (fun m ->
        let dir = Filename.dirname m and base = Filename.basename m in
        let stem = Filename.remove_extension base in
        Array.iter
          (fun f ->
            if
              String.length f > String.length stem
              && String.sub f 0 (String.length stem) = stem
              && contains_s f ".shard"
            then try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
          (Sys.readdir dir))
      [ manifest; resharded ]
  in
  Fun.protect ~finally:rm_shards @@ fun () ->
  let out =
    expect_ok [ "shard"; "build"; "-i"; data; "--shards"; "3"; "-o"; manifest ]
  in
  check_bool "3 shards built" true (contains_s out "3 shard(s)");
  let out = expect_ok [ "shard"; "status"; "-m"; manifest ] in
  check_bool "status lists live records" true (contains_s out "4/4 live record(s)");
  (* plain query auto-detects the manifest and routes over the shards *)
  let out = expect_ok [ "query"; "-s"; manifest; "{{UK, {A, motorbike}}}" ] in
  check_bool "sharded query matches" true (contains_s out "3 matching record(s)");
  let out = expect_ok [ "stats"; "-s"; manifest ] in
  check_bool "stats shows manifest" true (contains_s out "shard manifest");
  let out =
    expect_ok
      [ "shard"; "reshard"; "-m"; manifest; "--shards"; "2"; "-o"; resharded ]
  in
  check_bool "resharded to 2" true (contains_s out "2 shard(s)");
  let out = expect_ok [ "query"; "-s"; resharded; "{{UK, {A, motorbike}}}" ] in
  check_bool "resharded query matches" true (contains_s out "3 matching record(s)")

(* The live-store lifecycle as a user drives it: build --live, online
   insert/delete, flush, compact, and every read/admin command detecting
   the directory. *)
let test_live_cli () =
  Testutil.with_temp_path ".ns" @@ fun data ->
  Testutil.with_temp_path ".live" @@ fun dir ->
  Testutil.with_temp_path ".export" @@ fun export ->
  Sys.remove dir;
  let rec rm path =
    if Sys.file_exists path then
      if Sys.is_directory path then begin
        Array.iter (fun e -> rm (Filename.concat path e)) (Sys.readdir path);
        Sys.rmdir path
      end
      else Sys.remove path
  in
  Fun.protect ~finally:(fun () -> rm dir) @@ fun () ->
  let oc = open_out data in
  List.iter (fun s -> output_string oc (s ^ "\n")) Testutil.licences_strings;
  close_out oc;
  let out = expect_ok [ "build"; "-i"; data; "-o"; dir; "--live" ] in
  check_bool "live build reports" true (contains_s out "ingested 4 record(s)");
  (* reads auto-detect the directory *)
  let out = expect_ok [ "query"; "-s"; dir; "{{UK, {A, motorbike}}}" ] in
  check_bool "live query matches" true (contains_s out "3 matching record(s)");
  (* online writes *)
  let out = expect_ok [ "insert"; "-s"; dir; "{UK, {fresh}}" ] in
  check_bool "insert answers the id" true (contains_s out "record 4 inserted");
  let out = expect_ok [ "delete"; "-s"; dir; "4" ] in
  check_bool "delete confirms" true (contains_s out "record 4 deleted");
  let code, out = run_cli [ "delete"; "-s"; dir; "4" ] in
  check_int "re-delete exits 1" 1 code;
  check_bool "re-delete says why" true (contains_s out "no such live record");
  (* seal + merge *)
  ignore (expect_ok [ "insert"; "-s"; dir; "{more, {data}}" ]);
  let out = expect_ok [ "flush"; "-s"; dir ] in
  check_bool "flush seals" true (contains_s out "sealed 1 record(s)");
  let out = expect_ok [ "compact"; "-s"; dir; "--all" ] in
  check_bool "compact merges" true (contains_s out "compacted");
  (* the answer survives the churn *)
  let out = expect_ok [ "query"; "-s"; dir; "{{UK, {A, motorbike}}}" ] in
  check_bool "query still matches" true (contains_s out "3 matching record(s)");
  (* admin commands detect the directory too *)
  let out = expect_ok [ "stats"; "-s"; dir ] in
  check_bool "stats lists live records" true (contains_s out "records_live");
  let out = expect_ok [ "check"; "-s"; dir ] in
  check_bool "check is clean" true (contains_s out "consistent");
  let out = expect_ok [ "repair"; "-s"; dir; "--dry-run" ] in
  check_bool "nothing to repair" true (contains_s out "nothing to repair");
  ignore (expect_ok [ "export"; "-s"; dir; "-o"; export ]);
  let ic = open_in export in
  let lines = ref 0 in
  (try
     while true do
       ignore (input_line ic);
       incr lines
     done
   with End_of_file -> close_in ic);
  check_int "exported the live records" 5 !lines;
  let out = expect_ok [ "trace"; "-s"; dir; "{{UK, {A, motorbike}}}" ] in
  check_bool "trace spans the parts" true
    (contains_s out "memtable" && contains_s out "segment:");
  (* a fresh store file is NOT misdetected as live *)
  let code, out = run_cli [ "insert"; "-s"; data; "{a}" ] in
  check_int "insert into a flat file fails" 1 code;
  check_bool "says it is not live" true (contains_s out "not a live store");
  (* commands without a live path refuse a live dir cleanly, not with an
     uncaught backend exception *)
  let code, out = run_cli [ "sql"; "-s"; dir; "COUNT CONTAINS {a}" ] in
  check_int "sql over a live dir fails cleanly" 1 code;
  check_bool "sql names the live store" true (contains_s out "is a live store")

let test_trace_cli () =
  with_store "hash" (fun ~store ~backend ->
      let out =
        expect_ok
          [ "trace"; "-s"; store; "--backend"; backend; "--cache"; "10";
            "{{UK, {A, motorbike}}}" ]
      in
      check_bool "result count" true (contains_s out "3 matching record(s)");
      check_bool "trace header" true (contains_s out "trace ");
      check_bool "retrieve phase" true (contains_s out "retrieve");
      check_bool "eval phase" true (contains_s out "eval");
      check_bool "per-atom spans" true (contains_s out "atom:");
      check_bool "io attrs" true (contains_s out "lookups="))
    ()

let test_stats_metrics_cli () =
  with_store "hash" (fun ~store ~backend ->
      let out =
        expect_ok [ "stats"; "-s"; store; "--backend"; backend; "--metrics" ]
      in
      check_bool "text exposition" true
        (contains_s out "# TYPE nscq_io_reads_total counter");
      check_bool "both io sources" true
        (contains_s out "{source=\"store\"}");
      let out =
        expect_ok [ "stats"; "-s"; store; "--backend"; backend; "--json" ]
      in
      check_bool "json dump" true
        (contains_s out "\"name\":\"nscq_io_reads_total\""))
    ()

let test_missing_store_fails () =
  List.iter
    (fun args ->
      let code, out = run_cli args in
      check_int "exit code 1" 1 code;
      check_bool "one-line diagnostic" true (contains_s out "does not exist");
      (* a clean message, not a raw exception trace *)
      check_bool "no backtrace" false (contains_s out "Fatal error"))
    [
      [ "stats"; "-s"; "/nonexistent/store.tch" ];
      [ "query"; "-s"; "/nonexistent/store.tch"; "{a}" ];
    ]

let backend_cases backend =
  [
    Alcotest.test_case (backend ^ ": build") `Quick (test_build_reports backend);
    Alcotest.test_case (backend ^ ": stats") `Quick (test_stats backend);
    Alcotest.test_case (backend ^ ": query") `Quick (test_query backend);
    Alcotest.test_case (backend ^ ": sql") `Quick (test_sql backend);
    Alcotest.test_case (backend ^ ": workload") `Quick (test_workload backend);
  ]

let () =
  Alcotest.run "cli"
    [
      ("hash backend", backend_cases "hash");
      ("btree backend", backend_cases "btree");
      ("log backend", backend_cases "log");
      ( "pipelines",
        [
          Alcotest.test_case "generate → build" `Quick test_generate_roundtrip;
          Alcotest.test_case "json/xml ingestion" `Quick test_generate_json_xml;
          Alcotest.test_case "admin commands" `Quick test_admin_commands;
          Alcotest.test_case "missing store" `Quick test_missing_store_fails;
          Alcotest.test_case "malformed endpoints" `Quick
            test_malformed_endpoints_fail;
          Alcotest.test_case "shard build/status/query/reshard" `Quick
            test_shard_cli;
          Alcotest.test_case "live build/insert/delete/flush/compact" `Quick
            test_live_cli;
        ] );
      ( "observability",
        [
          Alcotest.test_case "trace prints the span tree" `Quick
            test_trace_cli;
          Alcotest.test_case "stats --metrics/--json" `Quick
            test_stats_metrics_cli;
        ] );
    ]
