(* The server end to end: results over the wire must match the in-process
   engine (including under concurrent clients), backpressure must shed
   load with Overloaded rather than queue unboundedly, and a SIGINT'd
   server must leave the store clean. *)

module IF = Invfile.Inverted_file
module E = Containment.Engine
module V = Nested.Value
module S = Server.Service
module C = Server.Client
module W = Server.Wire

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let contains_s haystack needle =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

(* --- a deterministic collection and query set (as test_parallel) --- *)

let collection_strings =
  let st = Random.State.make [| 23 |] in
  let gen _ =
    V.to_string (Testutil.gen_leafy_set ~max_depth:3 ~max_width:4 st)
  in
  Testutil.licences_strings @ List.init 40 gen

let queries =
  let st = Random.State.make [| 5 |] in
  let all = List.map Testutil.v collection_strings in
  let subs =
    List.filteri (fun i _ -> i mod 4 = 0) all
    |> List.map (fun r ->
           let q = Testutil.shrink_to_subquery st r in
           if V.is_set q && V.elements q <> [] then q else r)
  in
  let probes =
    List.init 6 (fun _ -> Testutil.gen_leafy_set ~max_depth:2 ~max_width:3 st)
  in
  subs @ probes

let build path =
  let store = Storage.Log_store.create path in
  let b = Invfile.Builder.create store in
  List.iter (fun s -> ignore (Invfile.Builder.add_string b s)) collection_strings;
  IF.close (Invfile.Builder.finish b)

let open_handle path () = IF.open_store (Storage.Log_store.open_existing path)

(* What the server must answer for each query: the in-process engine's
   record ids, space-separated — the wire payload format. *)
let expected_payloads path =
  let inv = open_handle path () in
  Fun.protect ~finally:(fun () -> IF.close inv) @@ fun () ->
  List.map
    (fun q ->
      ( V.to_string q,
        String.concat " " (List.map string_of_int (E.query inv q).E.records) ))
    queries

let with_server ?paused ~domains ?(queue_cap = 16) ?(max_batch = 4)
    ?(slow_query_ms = 0.) path f =
  let cfg =
    { S.default_config with S.port = 0; domains; queue_cap; max_batch;
      stats_interval_s = 0.; slow_query_ms }
  in
  let srv = S.start ?paused cfg ~open_handle:(open_handle path) in
  Fun.protect ~finally:(fun () -> S.stop srv) (fun () -> f srv)

let rec wait_until ?(timeout = 5.) cond =
  if cond () then true
  else if timeout <= 0. then false
  else begin
    Thread.delay 0.02;
    wait_until ~timeout:(timeout -. 0.02) cond
  end

(* --- batched execution must equal one-at-a-time execution --- *)

let test_query_batch_matches_singles () =
  Testutil.with_temp_path ".log" @@ fun path ->
  build path;
  let inv = open_handle path () in
  Fun.protect ~finally:(fun () -> IF.close inv) @@ fun () ->
  let singles = List.map (fun q -> (E.query inv q).E.records) queries in
  let batched = List.map (fun r -> r.E.records) (E.query_batch inv queries) in
  check_int "one result per query" (List.length singles) (List.length batched);
  List.iteri
    (fun i (s, b) ->
      Alcotest.(check (list int)) (Printf.sprintf "query %d records" i) s b)
    (List.combine singles batched)

(* --- smoke: one client, every verb, clean shutdown --- *)

let test_smoke () =
  Testutil.with_temp_path ".log" @@ fun path ->
  build path;
  let expected = expected_payloads path in
  with_server ~domains:2 path @@ fun srv ->
  let c = C.connect ~port:(S.port srv) () in
  Fun.protect ~finally:(fun () -> C.close c) @@ fun () ->
  (* literal queries match the in-process engine *)
  List.iter
    (fun (text, want) ->
      match C.query c text with
      | Ok got -> Alcotest.(check string) ("query " ^ text) want got
      | Error (code, msg) ->
        Alcotest.failf "query %s refused: %a: %s" text W.pp_error_code code msg)
    expected;
  (* an NSCQL statement over the wire *)
  (match C.query c "COUNT CONTAINS {{UK, {A, motorbike}}}" with
  | Ok out -> check_bool "count rendered" true (contains_s out "3")
  | Error (_, msg) -> Alcotest.failf "NSCQL refused: %s" msg);
  (* the server is read-only *)
  (match C.query c "INSERT {a, {b}}" with
  | Error (W.Bad_request, msg) ->
    check_bool "read-only message" true (contains_s msg "read-only")
  | Ok _ -> Alcotest.fail "INSERT accepted by a read-only server"
  | Error (code, _) ->
    Alcotest.failf "INSERT refused with %a, want bad-request" W.pp_error_code
      code);
  (* unparsable text is a Bad_request, not a dropped connection *)
  (match C.query c "{unclosed" with
  | Error (W.Bad_request, _) -> ()
  | Ok _ -> Alcotest.fail "garbage accepted"
  | Error (code, _) ->
    Alcotest.failf "garbage refused with %a" W.pp_error_code code);
  (* the stats verb serves the counters *)
  (match C.stats c with
  | Ok out ->
    check_bool "stats mention accepted" true (contains_s out "accepted");
    check_bool "stats mention latency" true (contains_s out "latency_ms")
  | Error (_, msg) -> Alcotest.failf "stats refused: %s" msg);
  check_bool "server completed the workload" true
    (Server.Server_stats.completed (S.stats srv) >= List.length expected)

(* --- ≥ 4 concurrent clients, results equal the engine's --- *)

let test_concurrent_clients () =
  Testutil.with_temp_path ".log" @@ fun path ->
  build path;
  let expected = expected_payloads path in
  with_server ~domains:3 ~queue_cap:64 path @@ fun srv ->
  let clients = 5 in
  let failures = Atomic.make 0 in
  let fail _ = Atomic.incr failures in
  let threads =
    List.init clients (fun _ ->
        Thread.create
          (fun () ->
            match C.connect ~port:(S.port srv) () with
            | exception _ -> fail ()
            | c ->
              Fun.protect ~finally:(fun () -> C.close c) @@ fun () ->
              List.iter
                (fun (text, want) ->
                  match C.query c text with
                  | Ok got when got = want -> ()
                  | Ok _ | Error _ | (exception _) -> fail ())
                expected)
          ())
  in
  List.iter Thread.join threads;
  check_int "no mismatching or failed replies" 0 (Atomic.get failures);
  let stats = S.stats srv in
  check_int "every request answered"
    (Server.Server_stats.accepted stats)
    (Server.Server_stats.completed stats);
  check_bool "work was batched" true (Server.Server_stats.batches stats > 0)

(* --- backpressure: a full queue sheds with Overloaded --- *)

let test_overload_and_resume () =
  Testutil.with_temp_path ".log" @@ fun path ->
  build path;
  let expected = expected_payloads path in
  let text, want = List.hd expected in
  (* one paused worker, room for two requests: of six concurrent clients
     exactly two are admitted (and parked) and four are shed *)
  with_server ~paused:true ~domains:1 ~queue_cap:2 path @@ fun srv ->
  let results = Array.make 6 None in
  let threads =
    List.init 6 (fun i ->
        Thread.create
          (fun () ->
            let c = C.connect ~port:(S.port srv) () in
            Fun.protect
              ~finally:(fun () -> C.close c)
              (fun () -> results.(i) <- Some (C.query c text)))
          ())
  in
  check_bool "four requests shed" true
    (wait_until (fun () -> Server.Server_stats.overloaded (S.stats srv) = 4));
  check_int "two requests parked in the queue" 2 (S.queue_depth srv);
  S.resume srv;
  List.iter Thread.join threads;
  let ok, refused =
    Array.fold_left
      (fun (ok, refused) r ->
        match r with
        | Some (Ok got) ->
          Alcotest.(check string) "admitted query answered correctly" want got;
          (ok + 1, refused)
        | Some (Error (W.Overloaded, _)) -> (ok, refused + 1)
        | Some (Error (code, msg)) ->
          Alcotest.failf "unexpected refusal %a: %s" W.pp_error_code code msg
        | None -> Alcotest.fail "a client thread did not finish")
      (0, 0) results
  in
  check_int "admitted" 2 ok;
  check_int "shed with Overloaded" 4 refused

(* --- a queued request whose deadline passes is answered, not run --- *)

let test_deadline_expires_in_queue () =
  Testutil.with_temp_path ".log" @@ fun path ->
  build path;
  let text, _ = List.hd (expected_payloads path) in
  with_server ~paused:true ~domains:1 path @@ fun srv ->
  let resumer =
    Thread.create
      (fun () ->
        Thread.delay 0.15;
        S.resume srv)
      ()
  in
  let c = C.connect ~port:(S.port srv) () in
  Fun.protect
    ~finally:(fun () ->
      C.close c;
      Thread.join resumer)
    (fun () ->
      match C.query c ~deadline_ms:20 text with
      | Error (W.Deadline_exceeded, _) -> ()
      | Ok _ -> Alcotest.fail "ran despite an expired deadline"
      | Error (code, msg) ->
        Alcotest.failf "unexpected refusal %a: %s" W.pp_error_code code msg)

(* --- a drained dispatcher refuses instead of queueing --- *)

let test_drained_dispatch_refuses () =
  Testutil.with_temp_path ".log" @@ fun path ->
  build path;
  let stats = Server.Server_stats.create () in
  let d =
    Server.Dispatch.create ~domains:1 ~queue_cap:4 ~max_batch:4
      ~open_backend:
        (Server.Dispatch.store_backend ~cache_budget:16
           ~open_handle:(open_handle path))
      ~stats ()
  in
  Server.Dispatch.drain d;
  match
    Server.Dispatch.submit d
      ~request:(Server.Batcher.parse "{a}" |> Result.get_ok)
      ~reply:(fun _ -> Alcotest.fail "reply after drain")
      ()
  with
  | `Shutting_down -> ()
  | `Accepted | `Overloaded -> Alcotest.fail "drained dispatcher took work"

(* --- SIGINT during load leaves a clean store --- *)

let nscq =
  let candidates =
    (match Sys.getenv_opt "NSCQ_BIN" with Some p -> [ p ] | None -> [])
    @ [ "../bin/nscq.exe"; "_build/default/bin/nscq.exe"; "bin/nscq.exe" ]
  in
  match List.find_opt Sys.file_exists candidates with
  | Some p -> p
  | None -> "../bin/nscq.exe"

let wait_exit pid ~timeout_s =
  let deadline = Unix.gettimeofday () +. timeout_s in
  let rec go () =
    match Unix.waitpid [ Unix.WNOHANG ] pid with
    | 0, _ ->
      if Unix.gettimeofday () > deadline then None
      else begin
        Thread.delay 0.05;
        go ()
      end
    | _, status -> Some status
  in
  go ()

let test_sigint_leaves_clean_store () =
  Testutil.with_temp_path ".log" @@ fun path ->
  build path;
  let r, w = Unix.pipe () in
  let pid =
    Unix.create_process nscq
      [| nscq; "serve"; "-s"; path; "--backend"; "log"; "--port"; "0";
         "--domains"; "2"; "--stats-interval"; "0" |]
      Unix.stdin w Unix.stderr
  in
  Unix.close w;
  let ic = Unix.in_channel_of_descr r in
  Fun.protect
    ~finally:(fun () ->
      (try close_in ic with Sys_error _ -> ());
      (* belt and braces: never leave the child behind *)
      match Unix.waitpid [ Unix.WNOHANG ] pid with
      | 0, _ ->
        (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
        ignore (Unix.waitpid [] pid)
      | _ -> ()
      | exception Unix.Unix_error _ -> ())
    (fun () ->
      (* parse the ephemeral port from the announce line *)
      let marker = "listening on 127.0.0.1:" in
      let rec find_port tries =
        if tries = 0 then Alcotest.fail "server never announced its port";
        match input_line ic with
        | exception End_of_file -> Alcotest.fail "server exited before listening"
        | line ->
          if contains_s line marker then begin
            let rec find_at i =
              if String.sub line i (String.length marker) = marker then
                i + String.length marker
              else find_at (i + 1)
            in
            let start = find_at 0 in
            let stop = ref start in
            while
              !stop < String.length line
              && line.[!stop] >= '0'
              && line.[!stop] <= '9'
            do
              incr stop
            done;
            int_of_string (String.sub line start (!stop - start))
          end
          else find_port (tries - 1)
      in
      let port = find_port 10 in
      (* put it under load, then interrupt it mid-conversation *)
      let c = C.connect ~port () in
      List.iter
        (fun q -> ignore (C.query c (V.to_string q)))
        (List.filteri (fun i _ -> i < 5) queries);
      Unix.kill pid Sys.sigint;
      (match wait_exit pid ~timeout_s:10. with
      | Some (Unix.WEXITED 0) -> ()
      | Some (Unix.WEXITED n) -> Alcotest.failf "server exited %d" n
      | Some _ -> Alcotest.fail "server killed by signal"
      | None -> Alcotest.fail "server did not exit within 10s of SIGINT");
      (try C.close c with _ -> ());
      (* the store must reopen with nothing to recover *)
      let kv = Storage.Log_store.open_existing path in
      check_bool "no pending journal" false (Invfile.Journal.pending kv);
      check_int "no recovery replay" 0
        (Storage.Io_stats.recoveries kv.Storage.Kv.stats);
      let inv = IF.open_store kv in
      Fun.protect
        ~finally:(fun () -> IF.close inv)
        (fun () ->
          check_int "integrity clean" 0 (List.length (Invfile.Integrity.check inv))))

(* --- observability over the wire --- *)

(* The Trace verb must answer the same record ids as Query, plus a span
   tree that parses and carries the query's phases; the caller's trace id
   must come back on the tree so distributed spans correlate. *)
let test_trace_verb () =
  Testutil.with_temp_path ".log" @@ fun path ->
  build path;
  let expected = expected_payloads path in
  with_server ~domains:2 path @@ fun srv ->
  let c = C.connect ~port:(S.port srv) () in
  Fun.protect ~finally:(fun () -> C.close c) @@ fun () ->
  List.iteri
    (fun i (text, want) ->
      if i < 8 then
        match C.trace c ~trace_id:(0x1000 + i) text with
        | Error (code, msg) ->
          Alcotest.failf "trace %s refused: %a: %s" text W.pp_error_code code
            msg
        | Ok payload -> (
          let result, spans = W.split_traced payload in
          Alcotest.(check string) ("trace ids for " ^ text) want result;
          match Obs.Trace.of_wire spans with
          | None -> Alcotest.failf "unparsable span tree:\n%s" spans
          | Some (id, root) ->
            check_int "caller's trace id echoed" (0x1000 + i) id;
            check_bool "eval phase recorded" true
              (List.exists
                 (fun (s : Obs.Trace.span) -> s.Obs.Trace.name = "eval")
                 root.Obs.Trace.children)))
    expected;
  (* NSCQL under the Trace verb is refused, not crashed *)
  match C.trace c "COUNT CONTAINS {a}" with
  | Error (W.Bad_request, _) -> ()
  | Ok _ -> Alcotest.fail "NSCQL accepted under Trace"
  | Error (code, _) ->
    Alcotest.failf "NSCQL under Trace refused with %a" W.pp_error_code code

let test_stats_carries_registry () =
  Testutil.with_temp_path ".log" @@ fun path ->
  build path;
  with_server ~domains:1 path @@ fun srv ->
  let c = C.connect ~port:(S.port srv) () in
  Fun.protect ~finally:(fun () -> C.close c) @@ fun () ->
  ignore (C.query c (V.to_string (List.hd queries)));
  match C.stats c with
  | Error (_, msg) -> Alcotest.failf "stats refused: %s" msg
  | Ok out ->
    (* the human-readable digest and the text exposition ride together *)
    List.iter
      (fun needle ->
        check_bool ("stats carry " ^ needle) true (contains_s out needle))
      [
        "accepted"; "# TYPE nscq_requests_accepted_total counter";
        "nscq_requests_accepted_total"; "nscq_request_latency_us_bucket";
        "nscq_list_lookups_total";
      ]

let test_slow_query_log_counts () =
  Testutil.with_temp_path ".log" @@ fun path ->
  build path;
  (* a threshold every request crosses: every completed query is slow *)
  with_server ~domains:1 ~slow_query_ms:0.0001 path @@ fun srv ->
  let c = C.connect ~port:(S.port srv) () in
  Fun.protect ~finally:(fun () -> C.close c) @@ fun () ->
  let n = 5 in
  List.iteri
    (fun i (text, _) -> if i < n then ignore (C.query c text))
    (expected_payloads path);
  ignore (C.trace c (V.to_string (List.hd queries)));
  check_bool "slow queries counted" true
    (wait_until (fun () -> Server.Server_stats.slow (S.stats srv) >= n + 1));
  match C.stats c with
  | Ok out ->
    check_bool "slow count rendered" true (contains_s out "slow_queries");
    check_bool "slow counter exported" true
      (contains_s out "nscq_slow_queries_total")
  | Error (_, msg) -> Alcotest.failf "stats refused: %s" msg

(* --- live stores over the wire: writes, writable NSCQL, coalescing --- *)

module L = Live.Live_store

let with_temp_dir f =
  let dir = Filename.temp_file "nscq_live_srv_" "" in
  Sys.remove dir;
  let rec rm path =
    if Sys.is_directory path then begin
      Array.iter (fun e -> rm (Filename.concat path e)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path
  in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists dir then rm dir)
    (fun () -> f dir)

let with_live_server ?paused ~domains ?(queue_cap = 16) ?(max_batch = 4) store f
    =
  let cfg =
    { S.default_config with S.port = 0; domains; queue_cap; max_batch;
      stats_interval_s = 0.; writable = true }
  in
  let srv =
    S.start_with ?paused cfg
      ~open_backend:(fun () -> Server.Dispatch.live_backend ~store ())
  in
  Fun.protect ~finally:(fun () -> S.stop srv) (fun () -> f srv)

(* Wire Insert/Delete and writable NSCQL against one shared live store:
   every worker sees a write as soon as it is acknowledged, and the
   server's answers equal the store's own. *)
let test_live_server_writes () =
  with_temp_dir @@ fun dir ->
  let store = L.create ~config:{ L.default with L.flush_records = 4 } dir in
  Fun.protect ~finally:(fun () -> L.close store) @@ fun () ->
  with_live_server ~domains:2 store @@ fun srv ->
  let c = C.connect ~port:(S.port srv) () in
  Fun.protect ~finally:(fun () -> C.close c) @@ fun () ->
  let ids =
    List.init 6 (fun i ->
        match C.insert c (Printf.sprintf "{k%d, {shared, m%d}}" i (i mod 2)) with
        | Ok id -> id
        | Error (_, m) -> Alcotest.failf "insert %d refused: %s" i m)
  in
  Alcotest.(check (list int)) "ids are monotonic" [ 0; 1; 2; 3; 4; 5 ] ids;
  check_bool "enough inserts crossed the auto-flush threshold" true
    (L.segment_count store >= 1);
  (* reads see every write, across the sealed segment + memtable split *)
  (match C.query c "{{shared}}" with
  | Ok got -> Alcotest.(check string) "query sees all inserts" "0 1 2 3 4 5" got
  | Error (_, m) -> Alcotest.failf "query refused: %s" m);
  (* wire Delete: true for a live id, false once it is gone *)
  (match C.delete c 2 with
  | Ok deleted -> check_bool "delete a live record" true deleted
  | Error (_, m) -> Alcotest.failf "delete refused: %s" m);
  (match C.delete c 2 with
  | Ok deleted -> check_bool "re-delete answers false" false deleted
  | Error (_, m) -> Alcotest.failf "re-delete refused: %s" m);
  (* NSCQL INSERT/DELETE ride the Query verb on a writable server *)
  (match C.query c "INSERT {nscql, {shared}}" with
  | Ok got -> Alcotest.(check string) "NSCQL INSERT answers the new id" "6" got
  | Error (_, m) -> Alcotest.failf "NSCQL INSERT refused: %s" m);
  (match C.query c "DELETE 6" with
  | Ok got -> Alcotest.(check string) "NSCQL DELETE" "deleted" got
  | Error (_, m) -> Alcotest.failf "NSCQL DELETE refused: %s" m);
  (* the server's view equals the store's own *)
  let want =
    String.concat " " (List.map string_of_int (L.query store (Testutil.v "{{shared}}")))
  in
  (match C.query c "{{shared}}" with
  | Ok got -> Alcotest.(check string) "server = in-process store" want got
  | Error (_, m) -> Alcotest.failf "query refused: %s" m);
  (* a bare atom is a Bad_request, not a dead connection *)
  match C.insert c "atom" with
  | Error (W.Bad_request, _) -> ()
  | Ok _ -> Alcotest.fail "bare-atom insert accepted"
  | Error (code, _) ->
    Alcotest.failf "bare-atom insert refused with %a" W.pp_error_code code

(* The wire write verbs against a read-only store backend refuse with
   Bad_request at execution (admission cannot know the backend). *)
let test_read_only_write_verbs () =
  Testutil.with_temp_path ".log" @@ fun path ->
  build path;
  with_server ~domains:1 path @@ fun srv ->
  let c = C.connect ~port:(S.port srv) () in
  Fun.protect ~finally:(fun () -> C.close c) @@ fun () ->
  (match C.insert c "{a, {b}}" with
  | Error (W.Bad_request, msg) ->
    check_bool "refusal names the fix" true (contains_s msg "read-only")
  | Ok _ -> Alcotest.fail "insert accepted by a read-only backend"
  | Error (code, _) ->
    Alcotest.failf "insert refused with %a" W.pp_error_code code);
  match C.delete c 0 with
  | Error (W.Bad_request, _) -> ()
  | Ok _ -> Alcotest.fail "delete accepted by a read-only backend"
  | Error (code, _) ->
    Alcotest.failf "delete refused with %a" W.pp_error_code code

(* S1: identical concurrent joins coalesce into one evaluation — five
   queued joins dequeue as a single batch (one prefix-tree build), and
   every client still gets the full correct answer. *)
let test_identical_joins_coalesce () =
  with_temp_dir @@ fun dir ->
  let store = L.create dir in
  Fun.protect ~finally:(fun () -> L.close store) @@ fun () ->
  List.iter
    (fun s -> ignore (L.insert store (Testutil.v s)))
    [ "{a, {b, c}}"; "{a, d}"; "{x, {y, {b}}}"; "{a, {b}, e}" ];
  let outer = "{a}\n{{b}}" in
  let want =
    W.join_payload
      (Join.Engine.group ~outer:2
         (L.join store [ Testutil.v "{a}"; Testutil.v "{{b}}" ]))
  in
  with_live_server ~paused:true ~domains:1 ~queue_cap:16 store @@ fun srv ->
  let clients = 5 in
  let results = Array.make clients None in
  let threads =
    List.init clients (fun i ->
        Thread.create
          (fun () ->
            let c = C.connect ~port:(S.port srv) () in
            Fun.protect
              ~finally:(fun () -> C.close c)
              (fun () -> results.(i) <- Some (C.join c outer)))
          ())
  in
  check_bool "all joins queued" true
    (wait_until (fun () -> S.queue_depth srv = clients));
  S.resume srv;
  List.iter Thread.join threads;
  Array.iteri
    (fun i r ->
      match r with
      | Some (Ok got) ->
        Alcotest.(check string) (Printf.sprintf "client %d payload" i) want got
      | Some (Error (_, m)) -> Alcotest.failf "join %d refused: %s" i m
      | None -> Alcotest.fail "a client thread did not finish")
    results;
  let stats = S.stats srv in
  check_int "five joins ran as one coalesced batch" 1
    (Server.Server_stats.batches stats);
  check_int "all five were answered" clients
    (Server.Server_stats.completed stats)

let () =
  Alcotest.run "server"
    [
      ( "engine",
        [
          Alcotest.test_case "query_batch = singles" `Quick
            test_query_batch_matches_singles;
        ] );
      ( "protocol",
        [
          Alcotest.test_case "smoke: verbs round-trip" `Quick test_smoke;
          Alcotest.test_case "5 concurrent clients match engine" `Quick
            test_concurrent_clients;
        ] );
      ( "backpressure",
        [
          Alcotest.test_case "overload sheds, resume completes" `Quick
            test_overload_and_resume;
          Alcotest.test_case "deadline expires while queued" `Quick
            test_deadline_expires_in_queue;
          Alcotest.test_case "drained dispatcher refuses" `Quick
            test_drained_dispatch_refuses;
        ] );
      ( "lifecycle",
        [
          Alcotest.test_case "SIGINT leaves a clean store" `Quick
            test_sigint_leaves_clean_store;
        ] );
      ( "live",
        [
          Alcotest.test_case "writes over the wire" `Quick
            test_live_server_writes;
          Alcotest.test_case "read-only backends refuse write verbs" `Quick
            test_read_only_write_verbs;
          Alcotest.test_case "identical joins coalesce" `Quick
            test_identical_joins_coalesce;
        ] );
      ( "observability",
        [
          Alcotest.test_case "trace verb round-trips spans" `Quick
            test_trace_verb;
          Alcotest.test_case "stats carries the registry" `Quick
            test_stats_carries_registry;
          Alcotest.test_case "slow-query log counts" `Quick
            test_slow_query_log_counts;
        ] );
    ]
