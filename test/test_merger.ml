(* Merger.append edge cases — empty sides, all-tombstoned sources — and
   the law the shard subsystem leans on: appending store B onto store A
   answers every query exactly like one store built from A's records
   followed by B's. *)

module IF = Invfile.Inverted_file
module E = Containment.Engine
module V = Nested.Value

let check_int = Alcotest.(check int)
let check_ids = Alcotest.(check (list int))

let build path values =
  let store = Storage.Log_store.create path in
  let b = Invfile.Builder.create store in
  List.iter (fun v -> ignore (Invfile.Builder.add_value b v)) values;
  Invfile.Builder.finish b

let with_store values f =
  Testutil.with_temp_path ".log" @@ fun path ->
  let inv = build path values in
  Fun.protect ~finally:(fun () -> IF.close inv) (fun () -> f inv)

let records inv q = (E.query inv q).E.records

let licences = List.map Testutil.v Testutil.licences_strings

let probe_queries =
  List.map Testutil.v
    [ "{UK, {A, motorbike}}"; "{USA}"; "{car}"; "{nothere}"; "{B, car}" ]

(* --- empty source: a no-op append --- *)

let test_empty_src () =
  with_store licences @@ fun dst ->
  with_store [] @@ fun src ->
  Invfile.Merger.append ~dst ~src;
  check_int "record count unchanged" (List.length licences) (IF.record_count dst);
  List.iter
    (fun q ->
      with_store licences @@ fun oracle ->
      check_ids (V.to_string q) (records oracle q) (records dst q))
    probe_queries

(* --- empty destination: append becomes a copy --- *)

let test_empty_dst () =
  with_store [] @@ fun dst ->
  with_store licences @@ fun src ->
  Invfile.Merger.append ~dst ~src;
  check_int "all records copied" (List.length licences) (IF.record_count dst);
  List.iter
    (fun q ->
      with_store licences @@ fun oracle ->
      check_ids (V.to_string q) (records oracle q) (records dst q))
    probe_queries

(* --- all-tombstoned source contributes nothing --- *)

let test_all_tombstoned_src () =
  with_store licences @@ fun dst ->
  with_store licences @@ fun src ->
  for i = 0 to List.length licences - 1 do
    Alcotest.(check bool)
      "delete succeeds" true
      (Invfile.Updater.delete_record src i)
  done;
  Invfile.Merger.append ~dst ~src;
  check_int "no records appended" (List.length licences) (IF.record_count dst);
  List.iter
    (fun q ->
      with_store licences @@ fun oracle ->
      check_ids (V.to_string q) (records oracle q) (records dst q))
    probe_queries

(* --- property: append = build from the concatenation --- *)

let arbitrary_two_collections =
  QCheck.make
    ~print:(fun (a, b) ->
      String.concat "\n" (List.map V.to_string a)
      ^ "\n--\n"
      ^ String.concat "\n" (List.map V.to_string b))
    (fun st ->
      let n a = QCheck.Gen.int_range 0 6 st + a in
      ( List.init (n 0) (fun _ ->
            Testutil.gen_leafy_set ~max_depth:3 ~max_width:4 st),
        List.init (n 0) (fun _ ->
            Testutil.gen_leafy_set ~max_depth:3 ~max_width:4 st) ))

let prop_append_is_concat (a, b) =
  with_store a @@ fun dst ->
  with_store b @@ fun src ->
  with_store (a @ b) @@ fun oracle ->
  Invfile.Merger.append ~dst ~src;
  if IF.record_count dst <> IF.record_count oracle then
    QCheck.Test.fail_reportf "record counts differ: %d vs %d"
      (IF.record_count dst) (IF.record_count oracle);
  let st = Random.State.make [| 97 |] in
  let queries =
    probe_queries
    @ List.map (fun r -> Testutil.shrink_to_subquery st r) (a @ b)
  in
  List.for_all
    (fun q ->
      V.is_set q
      &&
      let got = records dst q and want = records oracle q in
      if got <> want then
        QCheck.Test.fail_reportf "results differ on %s: [%s] vs [%s]"
          (V.to_string q)
          (String.concat ";" (List.map string_of_int got))
          (String.concat ";" (List.map string_of_int want))
      else true)
    (List.filter V.is_set queries)

let () =
  Alcotest.run "merger"
    [
      ( "edges",
        [
          Alcotest.test_case "empty source is a no-op" `Quick test_empty_src;
          Alcotest.test_case "empty destination becomes a copy" `Quick
            test_empty_dst;
          Alcotest.test_case "all-tombstoned source contributes nothing"
            `Quick test_all_tombstoned_src;
        ] );
      ( "laws",
        [
          Testutil.qcheck_case ~count:25
            ~name:"append ≡ build from concatenation"
            arbitrary_two_collections prop_append_is_concat;
        ] );
    ]
