(* Merger.append edge cases — empty sides, all-tombstoned sources — and
   the law the shard subsystem leans on: appending store B onto store A
   answers every query exactly like one store built from A's records
   followed by B's. *)

module IF = Invfile.Inverted_file
module E = Containment.Engine
module V = Nested.Value

let check_int = Alcotest.(check int)
let check_ids = Alcotest.(check (list int))

let build path values =
  let store = Storage.Log_store.create path in
  let b = Invfile.Builder.create store in
  List.iter (fun v -> ignore (Invfile.Builder.add_value b v)) values;
  Invfile.Builder.finish b

let with_store values f =
  Testutil.with_temp_path ".log" @@ fun path ->
  let inv = build path values in
  Fun.protect ~finally:(fun () -> IF.close inv) (fun () -> f inv)

let records inv q = (E.query inv q).E.records

let licences = List.map Testutil.v Testutil.licences_strings

let probe_queries =
  List.map Testutil.v
    [ "{UK, {A, motorbike}}"; "{USA}"; "{car}"; "{nothere}"; "{B, car}" ]

(* --- empty source: a no-op append --- *)

let test_empty_src () =
  with_store licences @@ fun dst ->
  with_store [] @@ fun src ->
  Invfile.Merger.append ~dst ~src;
  check_int "record count unchanged" (List.length licences) (IF.record_count dst);
  List.iter
    (fun q ->
      with_store licences @@ fun oracle ->
      check_ids (V.to_string q) (records oracle q) (records dst q))
    probe_queries

(* --- empty destination: append becomes a copy --- *)

let test_empty_dst () =
  with_store [] @@ fun dst ->
  with_store licences @@ fun src ->
  Invfile.Merger.append ~dst ~src;
  check_int "all records copied" (List.length licences) (IF.record_count dst);
  List.iter
    (fun q ->
      with_store licences @@ fun oracle ->
      check_ids (V.to_string q) (records oracle q) (records dst q))
    probe_queries

(* --- all-tombstoned source contributes nothing --- *)

let test_all_tombstoned_src () =
  with_store licences @@ fun dst ->
  with_store licences @@ fun src ->
  for i = 0 to List.length licences - 1 do
    Alcotest.(check bool)
      "delete succeeds" true
      (Invfile.Updater.delete_record src i)
  done;
  Invfile.Merger.append ~dst ~src;
  check_int "no records appended" (List.length licences) (IF.record_count dst);
  List.iter
    (fun q ->
      with_store licences @@ fun oracle ->
      check_ids (V.to_string q) (records oracle q) (records dst q))
    probe_queries

(* --- mixed payload representations --- *)

(* Append across every pairing of list codecs: the merger must read the
   source's representation and keep the destination homogeneous in its
   own. Integrity.check's canonical-bytes rule then catches any list the
   merge re-encoded in the wrong format. *)

let build_with_codec path codec values =
  let store = Storage.Log_store.create path in
  let b = Invfile.Builder.create ~codec store in
  List.iter (fun v -> ignore (Invfile.Builder.add_value b v)) values;
  Invfile.Builder.finish b

let with_store_codec codec values f =
  Testutil.with_temp_path ".log" @@ fun path ->
  let inv = build_with_codec path codec values in
  Fun.protect ~finally:(fun () -> IF.close inv) (fun () -> f inv)

let codec_name = function
  | Invfile.Plist.Varint -> "varint"
  | Invfile.Plist.Bitpacked -> "bitpacked"
  | Invfile.Plist.Blocked -> "blocked"

let test_mixed_codec_append () =
  let half = List.length licences / 2 in
  let a = List.filteri (fun i _ -> i < half) licences in
  let b = List.filteri (fun i _ -> i >= half) licences in
  let codecs = Invfile.Plist.[ Varint; Bitpacked; Blocked ] in
  List.iter
    (fun dst_codec ->
      List.iter
        (fun src_codec ->
          let ctx =
            Printf.sprintf "%s <- %s" (codec_name dst_codec)
              (codec_name src_codec)
          in
          with_store_codec dst_codec a @@ fun dst ->
          with_store_codec src_codec b @@ fun src ->
          Invfile.Merger.append ~dst ~src;
          (match E.verify_store dst with
          | [] -> ()
          | problems ->
            Alcotest.failf "%s: %d integrity problem(s), first: %s" ctx
              (List.length problems)
              (Format.asprintf "%a" Invfile.Integrity.pp_problem
                 (List.hd problems)));
          List.iter
            (fun q ->
              with_store licences @@ fun oracle ->
              check_ids
                (ctx ^ ": " ^ V.to_string q)
                (records oracle q) (records dst q))
            probe_queries)
        codecs)
    codecs

(* --- crash mid-merge: repair must restore a consistent store --- *)

module F = Storage.Fault

(* Run [Merger.append] onto the log store at [dst_path] behind a fault
   wrapper; returns the wrapper (for op counts) and whether it crashed. *)
let append_with_faults ?(config = F.default) dst_path src =
  let wrapper = F.wrap ~config (Storage.Log_store.open_existing dst_path) in
  let crashed = ref false in
  (try
     let dst = IF.open_store (F.kv wrapper) in
     Invfile.Merger.append ~dst ~src
   with F.Crashed _ -> crashed := true);
  (F.kv wrapper).Storage.Kv.close ();
  (wrapper, !crashed)

let copy_file src dst =
  let ic = open_in_bin src in
  let contents = really_input_string ic (in_channel_length ic) in
  close_in ic;
  let oc = open_out_bin dst in
  output_string oc contents;
  close_out oc

(* Kill the destination store at every write boundary of an append whose
   lists are blocked-compressed, then require Engine.repair to leave
   Engine.verify_store clean and queries agreeing with an oracle over the
   records that actually survived. *)
let test_mid_merge_crash_sweep () =
  let half = List.length licences / 2 in
  let a = List.filteri (fun i _ -> i < half) licences in
  let b = List.filteri (fun i _ -> i >= half) licences in
  with_store_codec Invfile.Plist.Blocked b @@ fun src ->
  Testutil.with_temp_path ".log" @@ fun pristine ->
  IF.close (build_with_codec pristine Invfile.Plist.Blocked a);
  let total =
    let wrapper, crashed = append_with_faults pristine src in
    Alcotest.(check bool) "no crash without a crash config" false crashed;
    F.write_ops wrapper
  in
  Alcotest.(check bool)
    (Printf.sprintf "enough write boundaries (%d)" total)
    true (total > 10);
  (* the counting run mutated its destination, so rebuild it *)
  IF.close (build_with_codec pristine Invfile.Plist.Blocked a);
  for n = 1 to total do
    Testutil.with_temp_path ".log" @@ fun work ->
    copy_file pristine work;
    let config = { F.default with F.crash_after = Some n } in
    let _, crashed = append_with_faults ~config work src in
    Alcotest.(check bool)
      (Printf.sprintf "crashed at boundary %d" n)
      true crashed;
    let kv = Storage.Log_store.open_existing work in
    let inv = IF.open_store kv in
    Fun.protect ~finally:(fun () -> IF.close inv) @@ fun () ->
    (match E.verify_store inv with
    | [] -> ()
    | _ :: _ ->
      let report = E.repair inv in
      if report.E.problems_after <> [] then
        Alcotest.failf "repair left %d problem(s) at boundary %d"
          (List.length report.E.problems_after) n);
    (* whatever survived, queries must agree with the value-level oracle *)
    let live =
      List.filter_map
        (fun id ->
          Option.map (fun value -> (id, value)) (IF.record_value_opt inv id))
        (List.init (IF.record_count inv) Fun.id)
    in
    List.iter
      (fun q ->
        let expected =
          List.filter_map
            (fun (id, s) ->
              if
                Containment.Embed.check Containment.Semantics.Containment
                  Containment.Semantics.Hom ~q ~s
              then Some id
              else None)
            live
        in
        check_ids
          (Printf.sprintf "boundary %d: %s" n (V.to_string q))
          expected
          (records inv q))
      probe_queries
  done

(* --- property: append = build from the concatenation --- *)

let arbitrary_two_collections =
  QCheck.make
    ~print:(fun (a, b) ->
      String.concat "\n" (List.map V.to_string a)
      ^ "\n--\n"
      ^ String.concat "\n" (List.map V.to_string b))
    (fun st ->
      let n a = QCheck.Gen.int_range 0 6 st + a in
      ( List.init (n 0) (fun _ ->
            Testutil.gen_leafy_set ~max_depth:3 ~max_width:4 st),
        List.init (n 0) (fun _ ->
            Testutil.gen_leafy_set ~max_depth:3 ~max_width:4 st) ))

let prop_append_is_concat (a, b) =
  with_store a @@ fun dst ->
  with_store b @@ fun src ->
  with_store (a @ b) @@ fun oracle ->
  Invfile.Merger.append ~dst ~src;
  if IF.record_count dst <> IF.record_count oracle then
    QCheck.Test.fail_reportf "record counts differ: %d vs %d"
      (IF.record_count dst) (IF.record_count oracle);
  let st = Random.State.make [| 97 |] in
  let queries =
    probe_queries
    @ List.map (fun r -> Testutil.shrink_to_subquery st r) (a @ b)
  in
  List.for_all
    (fun q ->
      V.is_set q
      &&
      let got = records dst q and want = records oracle q in
      if got <> want then
        QCheck.Test.fail_reportf "results differ on %s: [%s] vs [%s]"
          (V.to_string q)
          (String.concat ";" (List.map string_of_int got))
          (String.concat ";" (List.map string_of_int want))
      else true)
    (List.filter V.is_set queries)

let () =
  Alcotest.run "merger"
    [
      ( "edges",
        [
          Alcotest.test_case "empty source is a no-op" `Quick test_empty_src;
          Alcotest.test_case "empty destination becomes a copy" `Quick
            test_empty_dst;
          Alcotest.test_case "all-tombstoned source contributes nothing"
            `Quick test_all_tombstoned_src;
          Alcotest.test_case "mixed codec pairings" `Quick
            test_mixed_codec_append;
        ] );
      ( "faults",
        [
          Alcotest.test_case "crash sweep mid-merge, repair recovers" `Slow
            test_mid_merge_crash_sweep;
        ] );
      ( "laws",
        [
          Testutil.qcheck_case ~count:25
            ~name:"append ≡ build from concatenation"
            arbitrary_two_collections prop_append_is_concat;
        ] );
    ]
