(* Crash-consistency suite.

   The systematic sweep at the heart of this file: for a scripted update
   workload against an on-disk log store, kill the process (via
   Storage.Fault) at *every* write boundary, reopen the store, let
   recovery run, and require that

   - Invfile.Integrity.check finds a fully consistent index, and
   - every engine query returns exactly what the value-level Embed oracle
     computes over the records that actually survived.

   A companion test runs the same sweep with the update journal disabled
   and demonstrates the corruption the journal prevents. *)

module IF = Invfile.Inverted_file
module E = Containment.Engine
module S = Containment.Semantics
module F = Storage.Fault

let v = Nested.Syntax.of_string
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* --- the scripted workload --- *)

let initial_records =
  [
    "{London, UK, {UK, {A, B, C, car, motorbike}}, {UK, {A, motorbike}}}";
    "{Boston, USA, {USA, VA, {A, B, car}}, {UK, {A, motorbike}}}";
    "{Paris, FR, {FR, {B, car}}, {DE, {B, car, truck}}}";
    "{Austin, USA, {USA, TX, {A, motorbike}}, {UK, {A, motorbike}}}";
  ]

let updates =
  [
    `Add "{Berlin, DE, {DE, {A, car}}, {UK, {B, motorbike}}}";
    `Delete 1;
    `Add "{Kyoto, JP, {JP, {C, car, truck}}}";
    `Delete 0;
    `Add "{Oslo, NO, {NO, {A, B}}, {UK, {A, motorbike}}}";
    `Delete 4;
  ]

let probes =
  [
    (S.Containment, S.Hom, v "{UK, {A, motorbike}}");
    (S.Containment, S.Hom, v "{car}");
    (S.Containment, S.Homeo, v "{A, B}");
    (S.Superset, S.Hom, v "{Kyoto, JP, extra, {JP, {C, car, truck}}}");
  ]

let build path =
  let store = Storage.Log_store.create path in
  let b = Invfile.Builder.create store in
  List.iter (fun s -> ignore (Invfile.Builder.add_string b s)) initial_records;
  IF.close (Invfile.Builder.finish b)

let copy_file src dst =
  let ic = open_in_bin src in
  let contents = really_input_string ic (in_channel_length ic) in
  close_in ic;
  let oc = open_out_bin dst in
  output_string oc contents;
  close_out oc

let apply_updates ~journal inv =
  List.iter
    (function
      | `Add s -> ignore (Invfile.Updater.add_string ~journal inv s)
      | `Delete id -> ignore (Invfile.Updater.delete_record ~journal inv id))
    updates

(* Runs the workload against [path] behind a fault wrapper; returns the
   wrapper so callers can read op counts, and whether it crashed. *)
let run_with_faults ?(config = F.default) ~journal path =
  let wrapper = F.wrap ~config (Storage.Log_store.open_existing path) in
  let crashed = ref false in
  (try
     let inv = IF.open_store (F.kv wrapper) in
     apply_updates ~journal inv
   with F.Crashed _ -> crashed := true);
  (F.kv wrapper).Storage.Kv.close ();
  (wrapper, !crashed)

(* Reopen after a (possible) crash and hold the store to the two oracles:
   structural integrity, and query/value-level agreement. *)
let assert_recovered ~ctx path =
  let kv = Storage.Log_store.open_existing path in
  let inv = IF.open_store kv in
  Fun.protect ~finally:(fun () -> IF.close inv) @@ fun () ->
  (match Invfile.Integrity.check inv with
  | [] -> ()
  | problems ->
    Alcotest.failf "%s: %d integrity problem(s), first: %s" ctx
      (List.length problems)
      (Format.asprintf "%a" Invfile.Integrity.pp_problem (List.hd problems)));
  let live =
    List.filter_map
      (fun id -> Option.map (fun value -> (id, value)) (IF.record_value_opt inv id))
      (List.init (IF.record_count inv) Fun.id)
  in
  List.iter
    (fun (join, embedding, q) ->
      let expected =
        List.filter_map
          (fun (id, s) ->
            if Containment.Embed.check join embedding ~q ~s then Some id else None)
          live
      in
      let config = { E.default with E.join; E.embedding } in
      let got = (E.query ~config inv q).E.records in
      Alcotest.(check (list int))
        (Printf.sprintf "%s: query agrees with oracle" ctx)
        expected got)
    probes

(* --- the sweep --- *)

let count_write_boundaries () =
  Testutil.with_temp_path ".log" @@ fun path ->
  build path;
  let wrapper, crashed = run_with_faults ~journal:true path in
  check_bool "no crash without a crash config" false crashed;
  F.write_ops wrapper

let test_sweep_counts_boundaries () =
  let w = count_write_boundaries () in
  (* the scripted workload must exercise a meaningful number of write
     boundaries, or the sweep proves nothing *)
  check_bool (Printf.sprintf "enough write boundaries (%d)" w) true (w > 30)

let crash_sweep ~mode () =
  Testutil.with_temp_path ".log" @@ fun pristine ->
  build pristine;
  let total =
    let wrapper, _ = run_with_faults ~journal:true pristine in
    F.write_ops wrapper
  in
  (* the unfaulted counting run above mutated its input, so rebuild *)
  build pristine;
  for n = 1 to total do
    Testutil.with_temp_path ".log" @@ fun work ->
    copy_file pristine work;
    let config = { F.default with F.crash_after = Some n; crash_mode = mode } in
    let _, crashed = run_with_faults ~config ~journal:true work in
    check_bool (Printf.sprintf "crashed at boundary %d" n) true crashed;
    assert_recovered ~ctx:(Printf.sprintf "boundary %d/%d" n total) work
  done

let test_crash_sweep_clean () = crash_sweep ~mode:F.Clean ()
let test_crash_sweep_torn () = crash_sweep ~mode:F.Torn ()

(* Without the journal, some crash point must leave the index diverged
   from the records — the corruption the journal exists to prevent — and
   Engine.repair must then be able to rebuild it. *)
let test_unjournaled_crash_corrupts_and_repair_fixes () =
  Testutil.with_temp_path ".log" @@ fun pristine ->
  build pristine;
  let total =
    let wrapper, _ = run_with_faults ~journal:false pristine in
    F.write_ops wrapper
  in
  build pristine;
  let corrupted = ref 0 in
  let repaired = ref 0 in
  for n = 1 to total do
    Testutil.with_temp_path ".log" @@ fun work ->
    copy_file pristine work;
    let config = { F.default with F.crash_after = Some n } in
    ignore (run_with_faults ~config ~journal:false work);
    let kv = Storage.Log_store.open_existing work in
    let inv = IF.open_store kv in
    Fun.protect ~finally:(fun () -> IF.close inv) @@ fun () ->
    match E.verify_store inv with
    | [] -> ()
    | _ :: _ ->
      incr corrupted;
      (* the repair path must restore full consistency *)
      let report = E.repair inv in
      if report.E.problems_after = [] then incr repaired
      else
        Alcotest.failf "repair left %d problem(s) at boundary %d"
          (List.length report.E.problems_after) n
  done;
  check_bool
    (Printf.sprintf "unjournaled crashes corrupt the index (%d/%d boundaries)"
       !corrupted total)
    true (!corrupted > 0);
  check_int "every corruption was repaired" !corrupted !repaired

(* --- fault wrapper semantics --- *)

let test_fault_trace_deterministic () =
  Testutil.with_temp_path ".log" @@ fun path ->
  build path;
  let w1, _ = run_with_faults ~journal:true path in
  build path;
  let w2, _ = run_with_faults ~journal:true path in
  check_int "same op count" (F.write_ops w1) (F.write_ops w2);
  check_bool "same trace" true (F.trace w1 = F.trace w2)

let test_read_errors_and_fault_counter () =
  Testutil.with_temp_path ".log" @@ fun path ->
  build path;
  let inner = Storage.Log_store.open_existing path in
  let wrapper = F.wrap ~config:{ F.default with F.read_error_every = Some 1 } inner in
  let kv = F.kv wrapper in
  (match kv.Storage.Kv.get "anything" with
  | exception F.Injected _ -> ()
  | _ -> Alcotest.fail "expected an injected read error");
  check_int "fault recorded" 1 (Storage.Io_stats.faults kv.Storage.Kv.stats);
  kv.Storage.Kv.close ()

let test_dropped_syncs_count_as_faults () =
  Testutil.with_temp_path ".log" @@ fun path ->
  build path;
  let inner = Storage.Log_store.open_existing path in
  let wrapper = F.wrap ~config:{ F.default with F.drop_syncs = true } inner in
  let kv = F.kv wrapper in
  kv.Storage.Kv.sync ();
  kv.Storage.Kv.sync ();
  check_int "faults" 2 (Storage.Io_stats.faults kv.Storage.Kv.stats);
  kv.Storage.Kv.close ()

let test_write_error_recovers_on_reopen () =
  Testutil.with_temp_path ".log" @@ fun path ->
  build path;
  let inner = Storage.Log_store.open_existing path in
  let wrapper =
    F.wrap ~config:{ F.default with F.write_error_every = Some 3 } inner
  in
  let inv = IF.open_store (F.kv wrapper) in
  (* an update fails on an injected error; the in-place rollback itself
     also hits injected errors, so the journal may survive — the contract
     is that reopening the store recovers it *)
  let failures = ref 0 in
  (try apply_updates ~journal:true inv with F.Injected _ -> incr failures);
  check_bool "an update failed" true (!failures = 1);
  IF.close inv;
  assert_recovered ~ctx:"after injected write errors" path

(* --- journal unit behavior --- *)

let test_journal_rollback_restores_preimages () =
  let store = Storage.Mem_store.create () in
  store.Storage.Kv.put "x" "1";
  store.Storage.Kv.put "y" "2";
  (try
     Invfile.Journal.with_txn store ~keys:[ "x"; "y"; "z" ] (fun () ->
         store.Storage.Kv.put "x" "changed";
         ignore (store.Storage.Kv.delete "y");
         store.Storage.Kv.put "z" "new";
         failwith "boom")
   with Failure _ -> ());
  Alcotest.(check (option string)) "x restored" (Some "1") (store.Storage.Kv.get "x");
  Alcotest.(check (option string)) "y restored" (Some "2") (store.Storage.Kv.get "y");
  Alcotest.(check (option string)) "z gone" None (store.Storage.Kv.get "z");
  check_bool "journal cleared" false (Invfile.Journal.pending store)

let test_journal_recover_survives_torn_record () =
  let store = Storage.Mem_store.create () in
  store.Storage.Kv.put "x" "1";
  (* a torn journal write: garbage that fails the CRC *)
  store.Storage.Kv.put Invfile.Journal.key "\x01\x02\x03";
  check_int "nothing restored" 0 (Invfile.Journal.recover store);
  check_bool "journal dropped" false (Invfile.Journal.pending store);
  Alcotest.(check (option string)) "data untouched" (Some "1") (store.Storage.Kv.get "x");
  check_int "recovery counted" 1 (Storage.Io_stats.recoveries store.Storage.Kv.stats)

(* --- log-store commit fences --- *)

let test_log_commit_fence_rollback () =
  Testutil.with_temp_path ".log" @@ fun path ->
  let kv = Storage.Log_store.create path in
  kv.Storage.Kv.put "a" "1";
  kv.Storage.Kv.put "b" "2";
  Storage.Log_store.mark_commit kv;
  kv.Storage.Kv.put "b" "overwritten";
  kv.Storage.Kv.put "c" "uncommitted";
  kv.Storage.Kv.close ();
  (* default recovery keeps the whole intact tail *)
  let kv = Storage.Log_store.open_existing path in
  Alcotest.(check (option string)) "tail kept" (Some "overwritten")
    (kv.Storage.Kv.get "b");
  kv.Storage.Kv.close ();
  (* commit-fence recovery rolls the uncommitted batch back *)
  let kv = Storage.Log_store.open_existing ~to_last_commit:true path in
  Alcotest.(check (option string)) "a survives" (Some "1") (kv.Storage.Kv.get "a");
  Alcotest.(check (option string)) "b rolled back" (Some "2") (kv.Storage.Kv.get "b");
  Alcotest.(check (option string)) "c rolled back" None (kv.Storage.Kv.get "c");
  check_int "rollback counted as recovery" 1
    (Storage.Io_stats.recoveries kv.Storage.Kv.stats);
  kv.Storage.Kv.close ()

let () =
  Alcotest.run "faults"
    [
      ( "crash sweep",
        [
          Alcotest.test_case "workload has enough boundaries" `Quick
            test_sweep_counts_boundaries;
          Alcotest.test_case "every boundary, clean crash" `Slow
            test_crash_sweep_clean;
          Alcotest.test_case "every boundary, torn write" `Slow
            test_crash_sweep_torn;
          Alcotest.test_case "unjournaled updates corrupt; repair fixes" `Slow
            test_unjournaled_crash_corrupts_and_repair_fixes;
        ] );
      ( "fault wrapper",
        [
          Alcotest.test_case "deterministic trace" `Quick test_fault_trace_deterministic;
          Alcotest.test_case "read errors + fault counter" `Quick
            test_read_errors_and_fault_counter;
          Alcotest.test_case "dropped syncs" `Quick test_dropped_syncs_count_as_faults;
          Alcotest.test_case "write errors recover on reopen" `Quick
            test_write_error_recovers_on_reopen;
        ] );
      ( "journal",
        [
          Alcotest.test_case "rollback restores pre-images" `Quick
            test_journal_rollback_restores_preimages;
          Alcotest.test_case "torn journal record is dropped" `Quick
            test_journal_recover_survives_torn_record;
        ] );
      ( "log commit fences",
        [ Alcotest.test_case "roll back to last fence" `Quick test_log_commit_fence_rollback ] );
    ]
