(* Tests for the inverted file: postings, the sorted-list algebra, the
   builder (against the paper's Table 2), and caches. *)

module P = Invfile.Posting
module L = Invfile.Plist
module IF = Invfile.Inverted_file

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let posting ?(leaf_count = 1) ?(post = 0) ?(parent = -1) node children =
  { P.node; children = Array.of_list children; leaf_count; post; parent }

let plist specs = L.of_list (List.map (fun (n, cs) -> posting n cs) specs)

let nodes_of l = Array.to_list (L.nodes l)

(* --- Plist algebra --- *)

let test_of_list_sorts_and_rejects_dups () =
  let l = plist [ (5, []); (2, [ 3 ]); (9, []) ] in
  Alcotest.(check (list int)) "sorted" [ 2; 5; 9 ] (nodes_of l);
  Alcotest.check_raises "duplicates"
    (Invalid_argument "Plist.of_list: duplicate node id") (fun () ->
      ignore (plist [ (1, []); (1, []) ]))

let test_find_mem () =
  let l = plist [ (2, [ 3 ]); (5, []); (9, []) ] in
  check_bool "mem 5" true (L.mem l 5);
  check_bool "mem 4" false (L.mem l 4);
  (match L.find l 2 with
  | Some p -> Alcotest.(check (array int)) "payload" [| 3 |] p.P.children
  | None -> Alcotest.fail "find 2");
  check_bool "find absent" true (L.find l 7 = None)

let test_inter () =
  let a = plist [ (1, []); (3, []); (5, []); (7, []) ] in
  let b = plist [ (3, []); (4, []); (7, []); (9, []) ] in
  Alcotest.(check (list int)) "inter" [ 3; 7 ] (nodes_of (L.inter a b));
  Alcotest.(check (list int)) "inter sym" [ 3; 7 ] (nodes_of (L.inter b a));
  Alcotest.(check (list int)) "with empty" [] (nodes_of (L.inter a L.empty))

let test_inter_gallop_path () =
  (* small * 16 < big triggers the binary-search branch *)
  let small = plist [ (100, []); (500, []) ] in
  let big = plist (List.init 200 (fun i -> (i * 5, []))) in
  Alcotest.(check (list int)) "gallop" [ 100; 500 ] (nodes_of (L.inter small big))

let test_inter_many () =
  let a = plist [ (1, []); (2, []); (3, []) ] in
  let b = plist [ (2, []); (3, []) ] in
  let c = plist [ (3, []); (4, []) ] in
  Alcotest.(check (list int)) "3-way" [ 3 ] (nodes_of (L.inter_many [ a; b; c ]));
  Alcotest.(check (list int)) "singleton" [ 1; 2; 3 ] (nodes_of (L.inter_many [ a ]));
  (* One message for Plist, Plist_stream and Plist_ref: the engine guards
     the degenerate family once, whichever path executes. *)
  Alcotest.check_raises "empty family"
    (Invalid_argument "inter_many: empty intersection is the node universe")
    (fun () -> ignore (L.inter_many []))

let test_union_with_counts () =
  let a = plist [ (1, []); (2, []) ] in
  let b = plist [ (2, []); (3, []) ] in
  let c = plist [ (2, []); (3, []) ] in
  let u = L.union_with_counts [ a; b; c ] in
  Alcotest.(check (list (pair int int)))
    "counts"
    [ (1, 1); (2, 3); (3, 2) ]
    (Array.to_list (Array.map (fun (p, c) -> (p.P.node, c)) u))

let test_leaf_count_filters () =
  let l =
    L.of_list
      [ posting ~leaf_count:1 1 []; posting ~leaf_count:2 2 []; posting ~leaf_count:3 3 [] ]
  in
  Alcotest.(check (list int)) "eq 2" [ 2 ] (nodes_of (L.filter_leaf_count_eq 2 l));
  Alcotest.(check (list int)) "ge 2" [ 2; 3 ] (nodes_of (L.filter_leaf_count_ge 2 l))

(* --- the ▷◁_IF join (paper Sec. 2 worked example) --- *)

let test_join_child_paper_example () =
  (* S_IF(London) ▷◁ S_IF(UK) = ⟨(r_sue, {n2})⟩ with the ids of Fig. 1
     renamed: r_sue = 0, n1 = 1, n2 = 2, n3 = 3 (second UK set), m4 = 4. *)
  let london = plist [ (0, [ 1; 3 ]) ] in
  let uk = plist [ (0, [ 1; 3 ]); (1, [ 2 ]); (3, [ 4 ]) ] in
  let joined = L.join_child (L.paths_of_candidates london) uk in
  Alcotest.(check (list (pair int int)))
    "heads and matched nodes"
    [ (0, 1); (0, 3) ]
    (Array.to_list (Array.map (fun { L.head; cur } -> (head, cur.P.node)) joined))

let test_join_child_propagates_head () =
  let p0 = L.paths_of_candidates (plist [ (0, [ 5 ]); (10, [ 15 ]) ]) in
  let cand = plist [ (5, [ 6 ]); (15, [] ) ] in
  let j = L.join_child p0 cand in
  Alcotest.(check (list (pair int int)))
    "heads preserved"
    [ (0, 5); (10, 15) ]
    (Array.to_list (Array.map (fun { L.head; cur } -> (head, cur.P.node)) j));
  Alcotest.(check (list int)) "π₁" [ 0; 10 ] (Array.to_list (L.heads j))

let test_join_descendant () =
  (* Record: 0 (post 3) → 1 (post 1) → 2 (post 0); 0 → 3 (post 2).
     DFS: pre 0 1 2 3; post: node2=0, node1=1, node3=2, node0=3. *)
  let mk node post children =
    { P.node; children = Array.of_list children; leaf_count = 1; post; parent = -1 }
  in
  let paths =
    L.paths_of_candidates (L.of_list [ mk 0 3 [ 1; 3 ] ])
  in
  let cand = L.of_list [ mk 2 0 []; mk 3 2 [] ] in
  let j = L.join_descendant paths cand in
  Alcotest.(check (list int))
    "both descendants found (grandchild too)"
    [ 2; 3 ]
    (List.map (fun { L.cur; _ } -> cur.P.node) (Array.to_list j));
  (* from node 1, only node 2 is a descendant *)
  let paths1 = L.paths_of_candidates (L.of_list [ mk 1 1 [ 2 ] ]) in
  let j1 = L.join_descendant paths1 cand in
  Alcotest.(check (list int)) "subtree only" [ 2 ]
    (List.map (fun { L.cur; _ } -> cur.P.node) (Array.to_list j1))

let test_idset_covers () =
  let p = posting 1 [ 4; 7; 9 ] in
  let h = L.idset_of_postings (plist [ (7, []); (20, []) ]) in
  check_bool "covers via 7" true (L.covers_child p h);
  let h2 = L.idset_of_postings (plist [ (5, []); (20, []) ]) in
  check_bool "no cover" false (L.covers_child p h2);
  check_bool "empty idset" false (L.covers_child p (L.idset_of_postings L.empty))

let test_covers_descendant () =
  let anc = { P.node = 10; children = [| 11 |]; leaf_count = 0; post = 15; parent = -1 } in
  (* descendant: node 12 with post 12 < 15; non-descendant: node 30, post 40 *)
  let h_desc = L.idset_of_postings (L.of_list [ { P.node = 12; children = [||]; leaf_count = 0; post = 12; parent = 10 } ]) in
  let h_far = L.idset_of_postings (L.of_list [ { P.node = 30; children = [||]; leaf_count = 0; post = 40; parent = -1 } ]) in
  check_bool "descendant" true (L.covers_descendant anc h_desc);
  check_bool "not descendant" false (L.covers_descendant anc h_far);
  check_bool "self not descendant" false
    (L.covers_descendant anc (L.idset_of_postings (L.of_list [ anc ])))

let test_plist_codec_roundtrip () =
  let l =
    L.of_list
      [
        { P.node = 3; children = [| 4; 9 |]; leaf_count = 2; post = 7; parent = 1 };
        { P.node = 12; children = [||]; leaf_count = 5; post = 1; parent = -1 };
      ]
  in
  let l' = L.of_bytes (L.to_bytes l) in
  check_int "length" 2 (L.length l');
  Alcotest.(check (array int)) "children" [| 4; 9 |] (Option.get (L.find l' 3)).P.children;
  check_int "leaf_count" 5 (Option.get (L.find l' 12)).P.leaf_count;
  check_int "post" 7 (Option.get (L.find l' 3)).P.post

let prop_inter_correct =
  Testutil.qcheck_case ~name:"inter = set intersection"
    (QCheck.pair
       (QCheck.list_of_size (QCheck.Gen.int_range 0 30) (QCheck.int_bound 50))
       (QCheck.list_of_size (QCheck.Gen.int_range 0 30) (QCheck.int_bound 50)))
    (fun (xs, ys) ->
      let mk l = plist (List.map (fun n -> (n, [])) (List.sort_uniq Int.compare l)) in
      let expected =
        List.filter (fun x -> List.mem x ys) (List.sort_uniq Int.compare xs)
      in
      nodes_of (L.inter (mk xs) (mk ys)) = expected)

let prop_codec_roundtrip =
  Testutil.qcheck_case ~name:"plist codec roundtrip"
    (QCheck.list_of_size (QCheck.Gen.int_range 0 20)
       (QCheck.triple (QCheck.int_bound 1000) (QCheck.int_bound 5) (QCheck.int_bound 1000)))
    (fun specs ->
      let seen = Hashtbl.create 16 in
      let postings =
        List.filter_map
          (fun (node, lc, post) ->
            if Hashtbl.mem seen node then None
            else begin
              Hashtbl.replace seen node ();
              Some
                {
                  P.node;
                  children = [| node + 1; node + 5 |];
                  leaf_count = lc;
                  post;
                  parent = (if node = 0 then -1 else node - 1);
                }
            end)
          specs
      in
      let l = L.of_list postings in
      let l' = L.of_bytes (L.to_bytes l) in
      Array.to_list l = Array.to_list l')

(* --- join spec properties: the ▷◁ join against a brute-force model --- *)

(* Random forest of postings: parents own disjoint child ranges with valid
   pre/post intervals, as the tree encoder would produce. *)
let gen_forest =
  QCheck.make
    ~print:(fun l ->
      String.concat "; "
        (List.map (fun p -> Format.asprintf "%a" P.pp p) l))
    (fun st ->
      let n_parents = QCheck.Gen.int_range 1 6 st in
      let next = ref 0 and posts = ref [] in
      let parents =
        List.init n_parents (fun _ ->
            let id = !next in
            incr next;
            let n_children = QCheck.Gen.int_range 0 3 st in
            let children = Array.init n_children (fun _ ->
                let c = !next in
                incr next;
                c)
            in
            (* post: children (leaves here) first, then the parent *)
            Array.iter (fun c -> posts := (c, List.length !posts) :: !posts) children;
            posts := (id, List.length !posts) :: !posts;
            (id, children))
      in
      let post_of x = List.assoc x !posts in
      List.concat_map
        (fun (id, children) ->
          { P.node = id; children; leaf_count = 1; post = post_of id; parent = -1 }
          :: Array.to_list
               (Array.map
                  (fun c ->
                    { P.node = c; children = [||]; leaf_count = 1; post = post_of c;
                      parent = id })
                  children))
        parents)

let prop_join_child_spec =
  Testutil.qcheck_case ~count:300 ~name:"join_child = brute-force spec"
    (QCheck.pair gen_forest QCheck.(list_of_size (Gen.int_range 0 8) (int_bound 20)))
    (fun (forest, picks) ->
      let all = L.of_list forest in
      (* left: paths over a random subset of postings; right: candidates *)
      let lefts =
        List.sort_uniq Int.compare picks
        |> List.filter_map (L.find all)
        |> Array.of_list
      in
      let paths = L.paths_of_candidates (L.of_list (Array.to_list lefts)) in
      let joined = L.join_child paths all in
      let expected =
        Array.to_list lefts
        |> List.concat_map (fun p ->
               Array.to_list p.P.children
               |> List.filter_map (fun c ->
                      Option.map (fun p' -> (p.P.node, p'.P.node)) (L.find all c)))
        |> List.sort_uniq compare
      in
      let got =
        Array.to_list joined
        |> List.map (fun { L.head; cur } -> (head, cur.P.node))
        |> List.sort_uniq compare
      in
      got = expected)

let prop_join_descendant_spec =
  Testutil.qcheck_case ~count:300 ~name:"join_descendant = interval spec"
    Testutil.arbitrary_value (fun v ->
      QCheck.assume (Nested.Value.is_set v);
      let tree = Nested.Tree.of_value (Nested.Tree.allocator ()) ~record_id:0 v in
      let postings =
        Nested.Tree.fold (fun acc n -> P.of_tree_node n :: acc) [] tree
        |> List.rev |> Array.of_list
      in
      let all = L.of_list (Array.to_list postings) in
      let paths = L.paths_of_candidates all in
      let joined = L.join_descendant paths all in
      let got =
        Array.to_list joined
        |> List.map (fun { L.head; cur } -> (head, cur.P.node))
        |> List.sort_uniq compare
      in
      let expected =
        Array.to_list postings
        |> List.concat_map (fun a ->
               Array.to_list postings
               |> List.filter_map (fun d ->
                      if
                        a.P.node <> d.P.node
                        && Nested.Tree.is_descendant tree ~anc:a.P.node ~desc:d.P.node
                      then Some (a.P.node, d.P.node)
                      else None))
        |> List.sort_uniq compare
      in
      got = expected)

(* --- Builder vs Table 2 --- *)

(* The collection of Table 1 / Fig. 1. With DFS pre-order ids:
   Sue: root 0 = {London, UK, n1=1, n3=3}, 1 = {UK, n2=2}, 2 = {A,B,C,car,motorbike},
        3 = {UK, m4'=4}, 4 = {A, motorbike}
   Tim: root 5 = {Boston, USA, m3=6?, m1=8?} — canonical order decides; we
   compute the expectation from the tree encoding itself. *)
let test_builder_reproduces_table2 () =
  let inv = Testutil.mem_collection (List.filteri (fun i _ -> i < 2) Testutil.licences_strings) in
  let postings atom =
    Array.to_list (IF.lookup inv atom) |> List.map (fun p -> (p.P.node, Array.to_list p.P.children))
  in
  (* Sue = record 0 (ids 0-4), Tim = record 1 (ids 5-9). Canonical element
     order in Tim: {UK,{A,motorbike}} = node 6 (with child 7), then
     {USA,VA,{A,B,car}} = node 8 (with child 9). *)
  Alcotest.(check (list (pair int (list int))))
    "London" [ (0, [ 1; 3 ]) ] (postings "London");
  Alcotest.(check (list (pair int (list int))))
    "UK" [ (0, [ 1; 3 ]); (1, [ 2 ]); (3, [ 4 ]); (6, [ 7 ]) ]
    (postings "UK");
  Alcotest.(check (list (pair int (list int))))
    "A" [ (2, []); (4, []); (7, []); (9, []) ] (postings "A");
  Alcotest.(check (list (pair int (list int)))) "B" [ (2, []); (9, []) ] (postings "B");
  Alcotest.(check (list (pair int (list int)))) "C" [ (2, []) ] (postings "C");
  Alcotest.(check (list (pair int (list int))))
    "car" [ (2, []); (9, []) ] (postings "car");
  Alcotest.(check (list (pair int (list int))))
    "motorbike" [ (2, []); (4, []); (7, []) ] (postings "motorbike");
  Alcotest.(check (list (pair int (list int))))
    "Boston" [ (5, [ 6; 8 ]) ] (postings "Boston");
  Alcotest.(check (list (pair int (list int))))
    "USA" [ (5, [ 6; 8 ]); (8, [ 9 ]) ] (postings "USA");
  Alcotest.(check (list (pair int (list int)))) "VA" [ (8, [ 9 ]) ] (postings "VA");
  Alcotest.(check (list (pair int (list int)))) "unknown" [] (postings "XX")

let test_builder_metadata () =
  let inv = Testutil.mem_collection Testutil.licences_strings in
  check_int "records" 4 (IF.record_count inv);
  Alcotest.(check (array int)) "roots" [| 0; 5; 10; 15 |] (IF.roots inv);
  check_bool "is_root" true (IF.is_root inv 5);
  check_bool "inner not root" false (IF.is_root inv 6);
  check_int "root_of_node" 5 (IF.root_of_node inv 9);
  check_int "record_of_root" 2 (IF.record_of_root inv 10);
  check_int "node_count: 4 records x 5 nodes" 20 (IF.node_count inv);
  check_bool "atom known" true (IF.mem_atom inv "London");
  check_bool "atom unknown" false (IF.mem_atom inv "Berlin")

let test_builder_record_values () =
  let inv = Testutil.mem_collection Testutil.licences_strings in
  let v1 = IF.record_value inv 1 in
  Alcotest.check Testutil.value_testable "Tim stored"
    (Nested.Syntax.of_string (List.nth Testutil.licences_strings 1))
    v1;
  let seen = ref 0 in
  IF.iter_records inv (fun _ _ -> incr seen);
  check_int "iter_records" 4 !seen

let test_builder_node_table () =
  let inv = Testutil.mem_collection Testutil.licences_strings in
  let all = IF.all_nodes inv in
  check_int "all internal nodes" 20 (L.length all);
  Alcotest.(check (array int)) "ids 0..19" (Array.init 20 (fun i -> i)) (L.nodes all)

let test_builder_top_atoms () =
  let inv = Testutil.mem_collection (List.filteri (fun i _ -> i < 2) Testutil.licences_strings) in
  match IF.top_atoms inv with
  | (top, count) :: _ ->
    (* "A" and "UK" both occur at 4 nodes; ties break alphabetically *)
    Alcotest.(check string) "most frequent atom" "A" top;
    check_int "posting count" 4 count
  | [] -> Alcotest.fail "no top atoms"

let test_record_tree_ids_match () =
  let inv = Testutil.mem_collection Testutil.licences_strings in
  let t = IF.record_tree inv 2 in
  check_int "first_id = root" 10 t.Nested.Tree.root;
  (* canonical order puts {DE, …} before {FR, …} in the Paris record *)
  Alcotest.check Testutil.value_testable "subtree_value at inner node"
    (Nested.Syntax.of_string "{DE, {B, car, truck}}")
    (IF.subtree_value inv 11)

let test_open_store_missing_meta () =
  let store = Storage.Mem_store.create () in
  match IF.open_store store with
  | exception IF.Malformed _ -> ()
  | _ -> Alcotest.fail "expected Malformed"

(* --- caches --- *)

let test_cache_static_preload_and_bounds () =
  let c = Invfile.Cache.create Invfile.Cache.Static ~capacity:2 in
  Invfile.Cache.preload c [ ("a", L.empty); ("b", L.empty); ("c", L.empty) ];
  check_int "capacity respected" 2 (Invfile.Cache.size c);
  check_bool "a cached" true (Invfile.Cache.find c "a" <> None);
  (* static ignores inserts once full *)
  Invfile.Cache.insert c "z" L.empty;
  check_bool "z not admitted" true (Invfile.Cache.find c "z" = None)

let test_cache_lru_eviction () =
  let c = Invfile.Cache.create Invfile.Cache.Lru ~capacity:2 in
  Invfile.Cache.insert c "a" L.empty;
  Invfile.Cache.insert c "b" L.empty;
  ignore (Invfile.Cache.find c "a");
  (* "b" is now least recently used *)
  Invfile.Cache.insert c "c" L.empty;
  check_bool "a survives" true (Invfile.Cache.find c "a" <> None);
  check_bool "b evicted" true (Invfile.Cache.find c "b" = None);
  check_bool "c admitted" true (Invfile.Cache.find c "c" <> None)

let test_cache_lfu_eviction () =
  let c = Invfile.Cache.create Invfile.Cache.Lfu ~capacity:2 in
  Invfile.Cache.insert c "hot" L.empty;
  Invfile.Cache.insert c "cold" L.empty;
  ignore (Invfile.Cache.find c "hot");
  ignore (Invfile.Cache.find c "hot");
  Invfile.Cache.insert c "new" L.empty;
  check_bool "hot survives" true (Invfile.Cache.find c "hot" <> None);
  check_bool "cold evicted" true (Invfile.Cache.find c "cold" = None)

let test_cache_zero_capacity () =
  let c = Invfile.Cache.create Invfile.Cache.Lru ~capacity:0 in
  Invfile.Cache.insert c "a" L.empty;
  check_int "nothing cached" 0 (Invfile.Cache.size c)

let test_attached_cache_hits () =
  let inv = Testutil.mem_collection Testutil.licences_strings in
  Invfile.Cache.create Invfile.Cache.Static ~capacity:3 |> IF.attach_cache inv;
  let stats = IF.lookup_stats inv in
  Storage.Io_stats.reset stats;
  (* UK is the most frequent atom → preloaded *)
  ignore (IF.lookup inv "UK");
  ignore (IF.lookup inv "UK");
  check_int "hits" 2 (Storage.Io_stats.hits stats);
  ignore (IF.lookup inv "Paris");
  check_int "miss on cold atom" 1 (Storage.Io_stats.misses stats);
  (* cached lookup agrees with store lookup *)
  IF.detach_cache inv;
  let direct = IF.lookup inv "UK" in
  Invfile.Cache.create Invfile.Cache.Static ~capacity:3 |> IF.attach_cache inv;
  let cached = IF.lookup inv "UK" in
  check_bool "cache transparent" true (direct = cached)

(* Accounting invariant: whatever the cache configuration, every lookup
   lands in exactly one of the hit or miss buckets. *)
let prop_lookup_accounting =
  let arb =
    QCheck.triple
      (QCheck.int_bound 3) (* 0 = no cache, else a policy *)
      (QCheck.int_bound 8) (* capacity *)
      (QCheck.list_of_size (QCheck.Gen.int_range 0 40)
         (QCheck.oneofa
            [| "UK"; "USA"; "A"; "B"; "car"; "motorbike"; "London"; "absent"; "zz" |]))
  in
  Testutil.qcheck_case ~count:300 ~name:"cache stats: hits + misses = lookups" arb
    (fun (policy, capacity, atoms) ->
      let inv = Testutil.mem_collection Testutil.licences_strings in
      (match policy with
      | 0 -> ()
      | 1 -> IF.attach_cache inv (Invfile.Cache.create Invfile.Cache.Static ~capacity)
      | 2 -> IF.attach_cache inv (Invfile.Cache.create Invfile.Cache.Lru ~capacity)
      | _ -> IF.attach_cache inv (Invfile.Cache.create Invfile.Cache.Lfu ~capacity));
      let stats = IF.lookup_stats inv in
      Storage.Io_stats.reset stats;
      List.iter (fun a -> ignore (IF.lookup inv a)) atoms;
      Storage.Io_stats.lookups stats = List.length atoms
      && Storage.Io_stats.hits stats + Storage.Io_stats.misses stats
         = Storage.Io_stats.lookups stats)

(* --- payload codecs --- *)

let test_bitpacked_payload_roundtrip () =
  let l =
    L.of_list
      [
        { P.node = 3; children = [| 4; 9 |]; leaf_count = 2; post = 7; parent = 1 };
        { P.node = 12; children = [||]; leaf_count = 5; post = 1; parent = -1 };
        { P.node = 500; children = [| 501; 502; 600 |]; leaf_count = 0; post = 99; parent = 12 };
      ]
  in
  let payload = L.to_bytes ~codec:L.Bitpacked l in
  check_bool "tagged bitpacked" true (L.codec_of_bytes payload = L.Bitpacked);
  Alcotest.(check bool) "roundtrip" true (Array.to_list (L.of_bytes payload) = Array.to_list l);
  let v = L.to_bytes l in
  check_bool "default is blocked" true (L.codec_of_bytes v = L.Blocked)

let prop_codecs_agree =
  Testutil.qcheck_case ~name:"varint and bitpacked payloads decode identically"
    (QCheck.list_of_size (QCheck.Gen.int_range 0 30)
       (QCheck.triple (QCheck.int_bound 1000) (QCheck.int_bound 5) (QCheck.int_bound 1000)))
    (fun specs ->
      let seen = Hashtbl.create 16 in
      let postings =
        List.filter_map
          (fun (node, lc, post) ->
            if Hashtbl.mem seen node then None
            else begin
              Hashtbl.replace seen node ();
              Some
                { P.node; children = [| node + 1; node + 5 |]; leaf_count = lc;
                  post; parent = (if node = 0 then -1 else node - 1) }
            end)
          specs
      in
      let l = L.of_list postings in
      Array.to_list (L.of_bytes (L.to_bytes ~codec:L.Bitpacked l)) = Array.to_list l
      && Array.to_list (L.of_bytes (L.to_bytes ~codec:L.Varint l)) = Array.to_list l)

let test_bitpacked_collection_end_to_end () =
  let store = Storage.Mem_store.create () in
  let builder = Invfile.Builder.create ~codec:L.Bitpacked store in
  List.iter
    (fun s -> ignore (Invfile.Builder.add_string builder s))
    Testutil.licences_strings;
  let inv = Invfile.Builder.finish builder in
  let plain = Testutil.mem_collection Testutil.licences_strings in
  List.iter
    (fun atom ->
      check_bool ("lookup agrees for " ^ atom) true
        (IF.lookup inv atom = IF.lookup plain atom))
    [ "UK"; "A"; "motorbike"; "London"; "unknown" ];
  check_int "node table intact" 20 (L.length (IF.all_nodes inv))

(* --- atom dictionary & binary record format --- *)

let test_dict_roundtrip () =
  let store = Storage.Mem_store.create () in
  let d = Invfile.Dict.create store in
  let a = Invfile.Dict.intern d "alpha" in
  let b = Invfile.Dict.intern d "beta" in
  check_int "dense ids" 1 (b - a);
  check_int "idempotent" a (Invfile.Dict.intern d "alpha");
  Alcotest.(check string) "reverse" "beta" (Invfile.Dict.atom_of_id d b);
  Alcotest.(check (option int)) "find without alloc" None (Invfile.Dict.find d "gamma");
  check_int "size" 2 (Invfile.Dict.size d);
  (* persists across a fresh handle on the same store *)
  let d2 = Invfile.Dict.create store in
  Alcotest.(check (option int)) "persisted" (Some a) (Invfile.Dict.find d2 "alpha");
  check_int "allocation cursor persisted" 2
    (Invfile.Dict.intern d2 "gamma")

let test_value_codec_roundtrip () =
  let store = Storage.Mem_store.create () in
  let d = Invfile.Dict.create store in
  List.iter
    (fun s ->
      let v = Nested.Syntax.of_string s in
      let payload = Invfile.Value_codec.encode d v in
      Alcotest.check Testutil.value_testable ("binary roundtrip " ^ s) v
        (Invfile.Value_codec.decode d payload);
      Alcotest.check Testutil.value_testable ("syntax roundtrip " ^ s) v
        (Invfile.Value_codec.decode d (Invfile.Value_codec.encode_syntax v)))
    ([ "{}"; "{a}"; "{a, b, {c, {d, e}}, {f}}"; "{\"x y\", {\"{\"}}" ]
    @ Testutil.licences_strings)

let test_value_codec_compression () =
  (* repeated atoms across records shrink: ids replace strings *)
  let store = Storage.Mem_store.create () in
  let d = Invfile.Dict.create store in
  let v =
    Nested.Syntax.of_string
      "{a_rather_long_atom_name, {a_rather_long_atom_name, {a_rather_long_atom_name}}}"
  in
  let binary = Invfile.Value_codec.encode d v in
  (* after the first record interned the atom, later records pay ~1 byte *)
  let binary2 = Invfile.Value_codec.encode d v in
  check_bool "second record small" true (String.length binary2 < 12);
  check_bool "smaller than syntax" true
    (String.length binary2 < String.length (Nested.Syntax.to_string v));
  check_int "encoding is stable" (String.length binary) (String.length binary2)

let prop_value_codec_roundtrip =
  Testutil.qcheck_case ~name:"binary record codec roundtrip"
    Testutil.arbitrary_value (fun v ->
      QCheck.assume (Nested.Value.is_set v);
      let d = Invfile.Dict.create (Storage.Mem_store.create ()) in
      Nested.Value.equal v (Invfile.Value_codec.decode d (Invfile.Value_codec.encode d v)))

let test_binary_record_collection () =
  let store = Storage.Mem_store.create () in
  let builder = Invfile.Builder.create ~record_format:`Binary store in
  List.iter
    (fun s -> ignore (Invfile.Builder.add_string builder s))
    Testutil.licences_strings;
  let inv = Invfile.Builder.finish builder in
  check_bool "format recorded" true (IF.record_format inv = `Binary);
  Alcotest.check Testutil.value_testable "values decode"
    (Nested.Syntax.of_string (List.nth Testutil.licences_strings 1))
    (IF.record_value inv 1);
  (* updates keep the binary format *)
  let id = Invfile.Updater.add_string inv "{Oslo, NO, {NO, {B}}}" in
  Alcotest.check Testutil.value_testable "updated record decodes"
    (Nested.Syntax.of_string "{Oslo, NO, {NO, {B}}}")
    (IF.record_value inv id);
  check_bool "stored in binary" true
    (match (IF.store inv).Storage.Kv.get ("r:" ^ string_of_int id) with
    | Some payload -> payload.[0] = 'B'
    | None -> false)

(* --- stats --- *)

let test_stats_compute () =
  let inv = Testutil.mem_collection Testutil.licences_strings in
  let st = Invfile.Stats.compute inv in
  check_int "records" 4 st.Invfile.Stats.records;
  check_int "internal nodes" 20 st.Invfile.Stats.internal_nodes;
  check_int "max depth" 3 st.Invfile.Stats.max_depth;
  check_int "leaves: count all leaf occurrences" 39 st.Invfile.Stats.leaves;
  check_bool "atoms match handle" true
    (st.Invfile.Stats.atoms = IF.atom_count inv);
  (* histograms cover everything *)
  let total_by_depth =
    List.fold_left (fun acc (_, c) -> acc + c) 0 st.Invfile.Stats.depth_histogram
  in
  check_int "depth histogram total" 20 total_by_depth;
  let atoms_in_hist =
    List.fold_left (fun acc (_, c) -> acc + c) 0 st.Invfile.Stats.posting_histogram
  in
  check_int "posting histogram total" st.Invfile.Stats.atoms atoms_in_hist;
  (* the licences data has no list longer than 8 postings: buckets must
     reflect actual lengths, not payload artifacts *)
  List.iter
    (fun (bucket, _) -> check_bool "bucket bounded by longest list" true (bucket <= 8))
    st.Invfile.Stats.posting_histogram;
  check_bool "singleton lists exist" true
    (List.mem_assoc 1 st.Invfile.Stats.posting_histogram);
  check_bool "skew in [0,1]" true
    (let s = Invfile.Stats.skew_estimate st in
     s >= 0. && s <= 1.)

let test_stats_skew_orders () =
  let mk dist seed =
    Containment.Collection.of_values
      (Datagen.Synthetic.values
         (Datagen.Synthetic.make ~seed
            ~params:(Datagen.Synthetic.params_of_shape Datagen.Synthetic.Wide)
            dist)
         300)
  in
  let uniform = Invfile.Stats.compute (mk Datagen.Synthetic.Uniform 31) in
  let skewed = Invfile.Stats.compute (mk (Datagen.Synthetic.Zipfian 0.9) 31) in
  check_bool "zipf collection reads as more skewed" true
    (Invfile.Stats.skew_estimate skewed > Invfile.Stats.skew_estimate uniform)

let () =
  Alcotest.run "invfile"
    [
      ( "plist",
        [
          Alcotest.test_case "of_list" `Quick test_of_list_sorts_and_rejects_dups;
          Alcotest.test_case "find/mem" `Quick test_find_mem;
          Alcotest.test_case "inter" `Quick test_inter;
          Alcotest.test_case "inter gallop" `Quick test_inter_gallop_path;
          Alcotest.test_case "inter_many" `Quick test_inter_many;
          Alcotest.test_case "union with counts" `Quick test_union_with_counts;
          Alcotest.test_case "leaf-count filters" `Quick test_leaf_count_filters;
          prop_inter_correct;
        ] );
      ( "joins",
        [
          Alcotest.test_case "▷◁ paper example" `Quick test_join_child_paper_example;
          Alcotest.test_case "head propagation" `Quick test_join_child_propagates_head;
          Alcotest.test_case "descendant join" `Quick test_join_descendant;
          Alcotest.test_case "idset covers" `Quick test_idset_covers;
          Alcotest.test_case "covers_descendant" `Quick test_covers_descendant;
        ] );
      ( "join specs",
        [ prop_join_child_spec; prop_join_descendant_spec ] );
      ( "codec",
        [
          Alcotest.test_case "roundtrip" `Quick test_plist_codec_roundtrip;
          prop_codec_roundtrip;
        ] );
      ( "builder",
        [
          Alcotest.test_case "Table 2 postings" `Quick test_builder_reproduces_table2;
          Alcotest.test_case "metadata" `Quick test_builder_metadata;
          Alcotest.test_case "record values" `Quick test_builder_record_values;
          Alcotest.test_case "node table" `Quick test_builder_node_table;
          Alcotest.test_case "top atoms" `Quick test_builder_top_atoms;
          Alcotest.test_case "record_tree ids" `Quick test_record_tree_ids_match;
          Alcotest.test_case "malformed store" `Quick test_open_store_missing_meta;
        ] );
      ( "codecs",
        [
          Alcotest.test_case "bitpacked roundtrip" `Quick test_bitpacked_payload_roundtrip;
          prop_codecs_agree;
          Alcotest.test_case "bitpacked collection" `Quick
            test_bitpacked_collection_end_to_end;
        ] );
      ( "record formats",
        [
          Alcotest.test_case "dict" `Quick test_dict_roundtrip;
          Alcotest.test_case "value codec roundtrip" `Quick test_value_codec_roundtrip;
          Alcotest.test_case "compression" `Quick test_value_codec_compression;
          prop_value_codec_roundtrip;
          Alcotest.test_case "binary collection end-to-end" `Quick
            test_binary_record_collection;
        ] );
      ( "stats",
        [
          Alcotest.test_case "compute" `Quick test_stats_compute;
          Alcotest.test_case "skew ordering" `Quick test_stats_skew_orders;
        ] );
      ( "cache",
        [
          Alcotest.test_case "static preload" `Quick test_cache_static_preload_and_bounds;
          Alcotest.test_case "lru eviction" `Quick test_cache_lru_eviction;
          Alcotest.test_case "lfu eviction" `Quick test_cache_lfu_eviction;
          Alcotest.test_case "zero capacity" `Quick test_cache_zero_capacity;
          Alcotest.test_case "attached cache hits" `Quick test_attached_cache_hits;
          prop_lookup_accounting;
        ] );
    ]
