(* Parallel workload execution must be a pure scale-up: the same results
   as the sequential engine, for any number of domains. *)

module IF = Invfile.Inverted_file
module E = Containment.Engine
module P = Containment.Parallel
module V = Nested.Value

let check_int = Alcotest.(check int)

(* A deterministic medium-size collection: the licences records plus
   generated data so slices are non-trivial at 4 domains. *)
let collection_strings =
  let st = Random.State.make [| 42 |] in
  let gen _ =
    V.to_string (Testutil.gen_leafy_set ~max_depth:3 ~max_width:4 st)
  in
  Testutil.licences_strings @ List.init 60 gen

let queries =
  let st = Random.State.make [| 7 |] in
  let all = List.map Testutil.v collection_strings in
  (* subqueries of actual records (guaranteed hits under hom) plus some
     independent random probes *)
  let subs =
    List.filteri (fun i _ -> i mod 3 = 0) all
    |> List.map (fun r ->
           let q = Testutil.shrink_to_subquery st r in
           if V.is_set q && V.elements q <> [] then q else r)
  in
  let probes =
    List.init 10 (fun _ -> Testutil.gen_leafy_set ~max_depth:2 ~max_width:3 st)
  in
  subs @ probes

let build path =
  let store = Storage.Log_store.create path in
  let b = Invfile.Builder.create store in
  List.iter (fun s -> ignore (Invfile.Builder.add_string b s)) collection_strings;
  IF.close (Invfile.Builder.finish b)

let sequential_baseline path config =
  let inv = IF.open_store (Storage.Log_store.open_existing path) in
  Fun.protect ~finally:(fun () -> IF.close inv) @@ fun () ->
  let stats = E.run_workload ~config inv queries in
  (stats.E.results_total, stats.E.positives)

let test_domains_match_sequential () =
  Testutil.with_temp_path ".log" @@ fun path ->
  build path;
  let config = E.default in
  let expected_total, expected_pos = sequential_baseline path config in
  Alcotest.(check bool) "workload finds something" true (expected_pos > 0);
  List.iter
    (fun domains ->
      let r =
        P.run_workload ~domains
          ~open_handle:(fun () ->
            IF.open_store (Storage.Log_store.open_existing path))
          ~config ~cache_budget:64 queries
      in
      check_int
        (Printf.sprintf "results_total with %d domain(s)" domains)
        expected_total r.P.results_total;
      check_int
        (Printf.sprintf "positives with %d domain(s)" domains)
        expected_pos r.P.positives)
    [ 1; 2; 4 ]

let test_domains_match_top_down () =
  Testutil.with_temp_path ".log" @@ fun path ->
  build path;
  let config = { E.default with E.algorithm = E.Top_down } in
  let expected_total, expected_pos = sequential_baseline path config in
  List.iter
    (fun domains ->
      let r =
        P.run_workload ~domains
          ~open_handle:(fun () ->
            IF.open_store (Storage.Log_store.open_existing path))
          ~config queries
      in
      check_int
        (Printf.sprintf "top-down results_total with %d domain(s)" domains)
        expected_total r.P.results_total;
      check_int
        (Printf.sprintf "top-down positives with %d domain(s)" domains)
        expected_pos r.P.positives)
    [ 2; 4 ]

(* default_domains must never answer 0, whatever NSCQ_DOMAINS holds —
   every consumer passes the result straight to Domain.spawn loops. *)
let test_default_domains_never_zero () =
  let saved = Sys.getenv_opt "NSCQ_DOMAINS" in
  Fun.protect ~finally:(fun () ->
      (* putenv cannot unset; empty parses as garbage → fallback, which
         matches the unset behaviour *)
      Unix.putenv "NSCQ_DOMAINS" (Option.value saved ~default:""))
  @@ fun () ->
  Unix.putenv "NSCQ_DOMAINS" "0";
  check_int "NSCQ_DOMAINS=0 clamps to 1" 1 (P.default_domains ());
  Unix.putenv "NSCQ_DOMAINS" "-3";
  check_int "negative clamps to 1" 1 (P.default_domains ());
  Unix.putenv "NSCQ_DOMAINS" "5";
  check_int "positive value is honoured" 5 (P.default_domains ());
  List.iter
    (fun garbage ->
      Unix.putenv "NSCQ_DOMAINS" garbage;
      Alcotest.(check bool)
        (Printf.sprintf "NSCQ_DOMAINS=%S falls back to >= 1" garbage)
        true
        (P.default_domains () >= 1))
    [ "garbage"; ""; "2.5" ]

let () =
  Alcotest.run "parallel"
    [
      ( "equivalence",
        [
          Alcotest.test_case "1/2/4 domains = sequential (bottom-up)" `Quick
            test_domains_match_sequential;
          Alcotest.test_case "2/4 domains = sequential (top-down)" `Quick
            test_domains_match_top_down;
        ] );
      ( "default_domains",
        [
          Alcotest.test_case "never returns 0 for any NSCQ_DOMAINS" `Quick
            test_default_domains_never_zero;
        ] );
    ]
