(* The sharded collection must be indistinguishable from one store: for
   every semantics and algorithm, the scatter-gather router's global
   record ids are byte-identical to the single-store oracle's — locally,
   through remote shard servers, after resharding either direction, and
   (degraded, minus the dead shard's records) when a shard is down. *)

module IF = Invfile.Inverted_file
module E = Containment.Engine
module Sem = Containment.Semantics
module V = Nested.Value
module M = Shard.Manifest
module P = Shard.Partitioner
module R = Shard.Router

let check_ids = Alcotest.(check (list int))

(* --- the shared collection, oracle, and query set --- *)

let collection =
  let st = Random.State.make [| 11 |] in
  List.map Testutil.v Testutil.licences_strings
  @ List.init 36 (fun _ -> Testutil.gen_leafy_set ~max_depth:3 ~max_width:4 st)

let queries =
  let st = Random.State.make [| 23 |] in
  let subs =
    List.filteri (fun i _ -> i mod 3 = 0) collection
    |> List.map (fun r ->
           let q = Testutil.shrink_to_subquery st r in
           if V.is_set q && V.elements q <> [] then q else r)
  in
  List.map Testutil.v [ "{UK, {A, motorbike}}"; "{car}"; "{nothere}" ] @ subs

let with_oracle f =
  Testutil.with_temp_path ".log" @@ fun path ->
  let b = Invfile.Builder.create (Storage.Log_store.create path) in
  List.iter (fun v -> ignore (Invfile.Builder.add_value b v)) collection;
  let inv = Invfile.Builder.finish b in
  Fun.protect ~finally:(fun () -> IF.close inv) (fun () -> f inv)

let remove_stores (m : M.t) =
  Array.iter
    (fun (s : M.shard) ->
      match s.M.location with
      | M.Local { path; _ } -> ( try Sys.remove path with Sys_error _ -> ())
      | M.Remote _ -> ())
    m.M.shards

let with_built ?(policy = M.Hash) ~shards f =
  Testutil.with_temp_path ".manifest" @@ fun mpath ->
  let m = P.build ~policy ~shards ~manifest_path:mpath collection in
  Fun.protect ~finally:(fun () -> remove_stores m) (fun () -> f mpath m)

(* Unsupported algorithm × join combinations must refuse identically on
   both sides; when the router prunes every shard first it cannot see
   the refusal, so such pairs are simply skipped. *)
let oracle_records config inv q =
  match E.query ~config inv q with
  | r -> Some r.E.records
  | exception Sem.Unsupported _ -> None

(* --- result equivalence, local shards --- *)

let configs =
  List.concat_map
    (fun algorithm ->
      List.map
        (fun join -> { E.default with E.algorithm; join })
        [ Sem.Containment; Sem.Equality; Sem.Superset ])
    [ E.Bottom_up; E.Top_down ]

let config_label (c : E.config) =
  Format.asprintf "%s/%a"
    (match c.E.algorithm with E.Bottom_up -> "bottom-up" | _ -> "top-down")
    Sem.pp_join c.E.join

let test_local_equivalence policy () =
  with_built ~policy ~shards:3 @@ fun _mpath m ->
  with_oracle @@ fun oracle ->
  List.iter
    (fun config ->
      let r = R.open_manifest ~config:{ R.default_config with R.engine = config } m in
      Fun.protect ~finally:(fun () -> R.close r) @@ fun () ->
      List.iter
        (fun q ->
          match oracle_records config oracle q with
          | None -> ()
          | Some want ->
            let o = R.query r q in
            Alcotest.(check (list (pair int string)))
              "no warnings" [] o.R.warnings;
            check_ids
              (Printf.sprintf "%s %s" (config_label config) (V.to_string q))
              want o.R.records)
        queries)
    configs

let test_record_value_roundtrip () =
  with_built ~shards:3 @@ fun _mpath m ->
  with_oracle @@ fun oracle ->
  let r = R.open_manifest m in
  Fun.protect ~finally:(fun () -> R.close r) @@ fun () ->
  List.iteri
    (fun i _ ->
      match R.record_value r i with
      | None -> Alcotest.failf "global record %d not found" i
      | Some v ->
        Alcotest.check Testutil.value_testable
          (Printf.sprintf "record %d" i)
          (IF.record_value oracle i) v)
    collection;
  Alcotest.(check (option Testutil.value_testable))
    "unknown id" None
    (R.record_value r 100_000)

(* --- remote shards through real servers --- *)

let serve_cfg =
  {
    Server.Service.default_config with
    Server.Service.port = 0;
    domains = 1;
    stats_interval_s = 0.;
  }

let serve_shard (s : M.shard) =
  match s.M.location with
  | M.Remote _ -> assert false
  | M.Local { path; backend } ->
    Server.Service.start serve_cfg ~open_handle:(fun () ->
        IF.open_store (P.open_store backend path))

let remote_manifest (m : M.t) ports =
  M.make ~policy:m.M.policy ~total_records:m.M.total_records
    (List.mapi
       (fun i (s : M.shard) ->
         { s with M.location = M.Remote { host = "127.0.0.1"; port = ports.(i) } })
       (Array.to_list m.M.shards))

let test_remote_equivalence () =
  with_built ~shards:3 @@ fun _mpath m ->
  with_oracle @@ fun oracle ->
  let servers = Array.map serve_shard m.M.shards in
  Fun.protect ~finally:(fun () -> Array.iter Server.Service.stop servers)
  @@ fun () ->
  let rm = remote_manifest m (Array.map Server.Service.port servers) in
  let r = R.open_manifest rm in
  Fun.protect ~finally:(fun () -> R.close r) @@ fun () ->
  List.iter
    (fun q ->
      match oracle_records E.default oracle q with
      | None -> ()
      | Some want ->
        let o = R.query r q in
        check_ids (V.to_string q) want o.R.records;
        Alcotest.(check int) "all shards queried" 3 o.R.shards_queried)
    queries

(* --- a dead shard: Partial degrades, Fail_fast raises --- *)

let test_dead_shard () =
  with_built ~shards:3 @@ fun _mpath m ->
  with_oracle @@ fun oracle ->
  (* serve shards 0 and 1; shard 2 points at a port nobody listens on *)
  let s0 = serve_shard m.M.shards.(0) and s1 = serve_shard m.M.shards.(1) in
  let dead_port =
    let tmp = serve_shard m.M.shards.(2) in
    let p = Server.Service.port tmp in
    Server.Service.stop tmp;
    p
  in
  Fun.protect
    ~finally:(fun () ->
      Server.Service.stop s0;
      Server.Service.stop s1)
  @@ fun () ->
  let rm =
    remote_manifest m
      [| Server.Service.port s0; Server.Service.port s1; dead_port |]
  in
  let dead_ids =
    Array.fold_left (fun acc id -> id :: acc) [] m.M.shards.(2).M.ids
  in
  (* Partial: the surviving shards' records, plus one warning *)
  let r =
    R.open_manifest ~config:{ R.default_config with R.fail_mode = R.Partial } rm
  in
  Fun.protect ~finally:(fun () -> R.close r) @@ fun () ->
  List.iter
    (fun q ->
      match oracle_records E.default oracle q with
      | None -> ()
      | Some want ->
        let o = R.query r q in
        Alcotest.(check (list int))
          ("degraded " ^ V.to_string q)
          (List.filter (fun id -> not (List.mem id dead_ids)) want)
          o.R.records;
        (match o.R.warnings with
        | [ (2, _) ] -> ()
        | ws ->
          Alcotest.failf "expected one warning for shard 2, got %d"
            (List.length ws)))
    queries;
  (* Fail_fast: the first dead shard aborts the query *)
  let rf = R.open_manifest rm in
  Fun.protect ~finally:(fun () -> R.close rf) @@ fun () ->
  match R.query rf (Testutil.v "{car}") with
  | exception R.Shard_failed (2, _) -> ()
  | exception R.Shard_failed (i, _) ->
    Alcotest.failf "wrong shard blamed: %d" i
  | _ -> Alcotest.fail "expected Shard_failed"

(* --- resharding preserves answers --- *)

let with_resharded ~from_shards ~to_shards f =
  with_built ~shards:from_shards @@ fun _mpath m ->
  Testutil.with_temp_path ".manifest" @@ fun out ->
  let m' = P.reshard ~shards:to_shards ~output:out m in
  Fun.protect ~finally:(fun () -> remove_stores m') (fun () -> f m')

let test_reshard_equivalence ~from_shards ~to_shards () =
  with_resharded ~from_shards ~to_shards @@ fun m' ->
  with_oracle @@ fun oracle ->
  Alcotest.(check int)
    "shard count" to_shards
    (Array.length m'.M.shards);
  let r = R.open_manifest m' in
  Fun.protect ~finally:(fun () -> R.close r) @@ fun () ->
  List.iter
    (fun q ->
      match oracle_records E.default oracle q with
      | None -> ()
      | Some want -> check_ids (V.to_string q) want (R.query r q).R.records)
    queries

(* --- serving a manifest: nscq serve --shard-manifest in-process --- *)

let test_serve_sharded () =
  with_built ~shards:3 @@ fun _mpath m ->
  with_oracle @@ fun oracle ->
  let srv =
    Server.Service.start_with serve_cfg
      ~open_backend:(R.dispatch_backend m)
  in
  Fun.protect ~finally:(fun () -> Server.Service.stop srv) @@ fun () ->
  let c = Server.Client.connect ~port:(Server.Service.port srv) () in
  Fun.protect ~finally:(fun () -> Server.Client.close c) @@ fun () ->
  List.iter
    (fun q ->
      match oracle_records E.default oracle q with
      | None -> ()
      | Some want -> (
        match Server.Client.query c (V.to_string q) with
        | Ok payload ->
          let got =
            if payload = "" then []
            else List.map int_of_string (String.split_on_char ' ' payload)
          in
          check_ids ("served " ^ V.to_string q) want got
        | Error (code, msg) ->
          Alcotest.failf "server refused %s: %a %s" (V.to_string q)
            Server.Wire.pp_error_code code msg))
    queries;
  (* NSCQL has no sharded execution: a clean refusal, not a crash *)
  match Server.Client.query c "COUNT CONTAINS {car}" with
  | Error (Server.Wire.Server_error, _) | Error (Server.Wire.Bad_request, _) ->
    ()
  | Ok _ -> Alcotest.fail "NSCQL over shards should be refused"
  | Error (code, _) ->
    Alcotest.failf "unexpected refusal code %a" Server.Wire.pp_error_code code

(* --- manifest encoding --- *)

let sample_manifest =
  M.make ~policy:M.Round_robin ~total_records:7
    [
      {
        M.location = M.Local { path = "/tmp/a.shard0.tch"; backend = `Hash };
        records = 3;
        atoms = 10;
        nodes = 4;
        ids = [| 0; 3; 6 |];
      };
      {
        M.location = M.Remote { host = "10.1.2.3"; port = 7411 };
        records = 4;
        (* non-monotonic ids, as a merge reshard produces *)
        atoms = 12;
        nodes = 5;
        ids = [| 5; 1; 4; 2 |];
      };
    ]

let test_manifest_roundtrip () =
  Testutil.with_temp_path ".manifest" @@ fun path ->
  M.save sample_manifest path;
  Alcotest.(check bool) "detected" true (M.is_manifest_file path);
  let m = M.load path in
  Alcotest.(check bool) "roundtrip" true (m = sample_manifest);
  Alcotest.(check int) "live records" 7 (M.live_records m);
  Alcotest.(check (option (pair int int)))
    "id range of merged shard" (Some (1, 5))
    (M.id_range m.M.shards.(1))

let test_manifest_corruption () =
  Testutil.with_temp_path ".manifest" @@ fun path ->
  M.save sample_manifest path;
  let bytes =
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> Bytes.of_string (really_input_string ic (in_channel_length ic)))
  in
  (* flip one body byte: the checksum must catch it *)
  let flipped = Bytes.copy bytes in
  Bytes.set flipped 12 (Char.chr (Char.code (Bytes.get flipped 12) lxor 0xff));
  let write b =
    let oc = open_out_bin path in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () -> output_bytes oc b)
  in
  write flipped;
  (match M.load path with
  | exception M.Corrupt _ -> ()
  | _ -> Alcotest.fail "flipped byte not detected");
  (* truncation *)
  write (Bytes.sub bytes 0 6);
  (match M.load path with
  | exception M.Corrupt _ -> ()
  | _ -> Alcotest.fail "truncation not detected");
  (* a non-manifest file is not mistaken for one *)
  write (Bytes.of_string "not a manifest at all");
  Alcotest.(check bool) "foreign file" false (M.is_manifest_file path)

(* --- observability: per-shard spans and the metrics registry --- *)

module T = Obs.Trace

let shard_spans (root : T.span) =
  List.filter
    (fun (s : T.span) ->
      String.length s.T.name > 6 && String.sub s.T.name 0 6 = "shard:")
    root.T.children

let test_traced_scatter_local () =
  with_built ~shards:3 @@ fun _mpath m ->
  let r = R.open_manifest m in
  Fun.protect ~finally:(fun () -> R.close r) @@ fun () ->
  let q = Testutil.v "{car}" in
  let plain = (R.query r q).R.records in
  let trace = T.create "query" in
  let o = R.query ~trace r q in
  let root = T.finish trace in
  check_ids "tracing does not change the answer" plain o.R.records;
  let spans = shard_spans root in
  Alcotest.(check int)
    "one span per queried shard (skipped shards get none)"
    o.R.shards_queried (List.length spans);
  (* each local shard span carries the engine's phase spans inside *)
  List.iter
    (fun (s : T.span) ->
      Alcotest.(check bool)
        (s.T.name ^ " has an eval phase")
        true
        (List.exists (fun (c : T.span) -> c.T.name = "eval") s.T.children))
    spans;
  Alcotest.(check (option string))
    "shards_queried attr"
    (Some (string_of_int o.R.shards_queried))
    (List.assoc_opt "shards_queried" root.T.attrs);
  Alcotest.(check (option string))
    "shards_skipped attr"
    (Some (string_of_int o.R.shards_skipped))
    (List.assoc_opt "shards_skipped" root.T.attrs)

let test_traced_scatter_remote () =
  with_built ~shards:3 @@ fun _mpath m ->
  let servers = Array.map serve_shard m.M.shards in
  Fun.protect ~finally:(fun () -> Array.iter Server.Service.stop servers)
  @@ fun () ->
  let rm = remote_manifest m (Array.map Server.Service.port servers) in
  let r = R.open_manifest rm in
  Fun.protect ~finally:(fun () -> R.close r) @@ fun () ->
  let q = Testutil.v "{car}" in
  let trace = T.create "query" in
  let o = R.query ~trace r q in
  let root = T.finish trace in
  let spans = shard_spans root in
  Alcotest.(check int) "a span per remote shard" 3 (List.length spans);
  Alcotest.(check int) "all queried" 3 o.R.shards_queried;
  List.iter
    (fun (s : T.span) ->
      Alcotest.(check (option string))
        (s.T.name ^ " marked remote") (Some "true")
        (List.assoc_opt "remote" s.T.attrs);
      (* the server-side tree is nested inside, phases and all *)
      match s.T.children with
      | [ server_root ] ->
        Alcotest.(check bool)
          (s.T.name ^ " carries server phases")
          true
          (List.exists
             (fun (c : T.span) -> c.T.name = "eval")
             server_root.T.children)
      | l -> Alcotest.failf "%s: %d server roots" s.T.name (List.length l))
    spans

let test_router_register () =
  with_built ~shards:3 @@ fun _mpath m ->
  let r = R.open_manifest m in
  Fun.protect ~finally:(fun () -> R.close r) @@ fun () ->
  List.iter (fun q -> ignore (R.query r q)) queries;
  let reg = Obs.Metrics.create () in
  R.register reg r;
  let out = Obs.Metrics.render_text reg in
  let contains needle =
    let nl = String.length needle and hl = String.length out in
    let rec go i = i + nl <= hl && (String.sub out i nl = needle || go (i + 1)) in
    go 0
  in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("registry carries " ^ needle) true (contains needle))
    [
      Printf.sprintf "nscq_router_queries_total %d" (List.length queries);
      "nscq_shard_queries_total{shard=\"0\"}";
      "nscq_shard_queries_total{shard=\"2\"}";
      "nscq_shard_skips_total{shard=\"1\"}";
      "nscq_io_lookups_total{shard=\"0\",source=\"lists\"}";
      "nscq_shard_query_ms_max";
    ]

let () =
  Alcotest.run "shard"
    [
      ( "manifest",
        [
          Alcotest.test_case "save/load roundtrip" `Quick test_manifest_roundtrip;
          Alcotest.test_case "corruption detected" `Quick test_manifest_corruption;
        ] );
      ( "router",
        [
          Alcotest.test_case "hash placement = oracle (all configs)" `Quick
            (test_local_equivalence M.Hash);
          Alcotest.test_case "round-robin placement = oracle (all configs)"
            `Quick
            (test_local_equivalence M.Round_robin);
          Alcotest.test_case "record_value translates globals" `Quick
            test_record_value_roundtrip;
        ] );
      ( "remote",
        [
          Alcotest.test_case "remote shards = oracle" `Quick
            test_remote_equivalence;
          Alcotest.test_case "dead shard: partial + fail-fast" `Quick
            test_dead_shard;
          Alcotest.test_case "serve --shard-manifest = oracle" `Quick
            test_serve_sharded;
        ] );
      ( "reshard",
        [
          Alcotest.test_case "4 -> 2 (merge) = oracle" `Quick
            (test_reshard_equivalence ~from_shards:4 ~to_shards:2);
          Alcotest.test_case "2 -> 3 (grow) = oracle" `Quick
            (test_reshard_equivalence ~from_shards:2 ~to_shards:3);
        ] );
      ( "observability",
        [
          Alcotest.test_case "local scatter traced" `Quick
            test_traced_scatter_local;
          Alcotest.test_case "remote scatter traced" `Quick
            test_traced_scatter_remote;
          Alcotest.test_case "registry registration" `Quick
            test_router_register;
        ] );
    ]
